#include "src/core/types.h"

#include <gtest/gtest.h>

namespace bsplogp {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(10, 3), 4);
}

TEST(Types, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Types, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Types, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Types, MessageEquality) {
  const Message a{1, 2, 42, 7, 9};
  Message b = a;
  EXPECT_EQ(a, b);
  b.payload = 43;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace bsplogp

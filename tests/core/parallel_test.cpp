// ThreadPool / parallel_for_indexed: every index runs exactly once, results
// land in their own slots regardless of job count, exceptions propagate
// after the batch drains, and rng_for_index gives each grid point an
// independent deterministic stream — the contract the deterministic sweep
// runner (bench/harness.h SweepRunner, DESIGN.md §9) is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/rng.h"

namespace bsplogp::core {
namespace {

TEST(Parallel, HardwareJobsIsAtLeastOne) {
  EXPECT_GE(hardware_jobs(), 1);
}

TEST(Parallel, EveryIndexRunsExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_indexed(n, 4, [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, JobsOneRunsInlineOnTheCallingThread) {
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  parallel_for_indexed(64, 1, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(Parallel, ZeroItemBatchIsANoOp) {
  parallel_for_indexed(0, 4, [&](std::size_t) { FAIL() << "ran an item"; });
}

TEST(Parallel, ResultsByIndexMatchSerialForEveryJobCount) {
  // The determinism contract: fn(i) depends only on i (its own rng stream),
  // results are committed by index, so the output vector is identical for
  // any job count.
  const std::size_t n = 64;
  auto run = [n](int jobs) {
    std::vector<std::uint64_t> out(n);
    parallel_for_indexed(n, jobs, [&](std::size_t i) {
      Rng rng = rng_for_index(12345, i);
      std::uint64_t acc = 0;
      for (int k = 0; k < 100; ++k) acc ^= rng();
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(7), serial);
}

TEST(Parallel, FirstExceptionPropagatesAfterTheBatchDrains) {
  const std::size_t n = 200;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for_indexed(n, 4,
                           [&](std::size_t i) {
                             ran += 1;
                             if (i == 37) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  // The remaining items still ran; nothing was abandoned mid-batch.
  EXPECT_EQ(ran.load(), static_cast<int>(n));
}

TEST(Parallel, PoolIsReusableAcrossBatches) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<std::int64_t> sum{0};
    pool.for_indexed(100, [&](std::size_t i) {
      sum += static_cast<std::int64_t>(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(Parallel, ZeroWorkerPoolRunsOnTheCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::vector<int> hits(10, 0);
  pool.for_indexed(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, RngForIndexIsDeterministicPerIndex) {
  for (const std::size_t i : {0u, 1u, 5u, 1000u}) {
    Rng a = rng_for_index(99, i);
    Rng b = rng_for_index(99, i);
    for (int k = 0; k < 10; ++k) EXPECT_EQ(a(), b()) << i;
  }
}

TEST(Parallel, RngForIndexStreamsAreDistinct) {
  // Adjacent indices (and adjacent base seeds) must not collide — the
  // SplitMix64 scramble decorrelates the +index arithmetic.
  std::set<std::uint64_t> firsts;
  for (std::size_t i = 0; i < 64; ++i) {
    Rng rng = rng_for_index(7, i);
    firsts.insert(rng());
  }
  EXPECT_EQ(firsts.size(), 64u);
}

}  // namespace
}  // namespace bsplogp::core

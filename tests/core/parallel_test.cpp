// ThreadPool / parallel_for_indexed: every index runs exactly once, results
// land in their own slots regardless of job count, exceptions propagate
// after the batch drains, and rng_for_index gives each grid point an
// independent deterministic stream — the contract the deterministic sweep
// runner (bench/harness.h SweepRunner, DESIGN.md §9) is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/rng.h"

namespace bsplogp::core {
namespace {

TEST(Parallel, HardwareJobsIsAtLeastOne) {
  EXPECT_GE(hardware_jobs(), 1);
}

TEST(Parallel, EveryIndexRunsExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_indexed(n, 4, [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, JobsOneRunsInlineOnTheCallingThread) {
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  parallel_for_indexed(64, 1, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(Parallel, ZeroItemBatchIsANoOp) {
  parallel_for_indexed(0, 4, [&](std::size_t) { FAIL() << "ran an item"; });
}

TEST(Parallel, ResultsByIndexMatchSerialForEveryJobCount) {
  // The determinism contract: fn(i) depends only on i (its own rng stream),
  // results are committed by index, so the output vector is identical for
  // any job count.
  const std::size_t n = 64;
  auto run = [n](int jobs) {
    std::vector<std::uint64_t> out(n);
    parallel_for_indexed(n, jobs, [&](std::size_t i) {
      Rng rng = rng_for_index(12345, i);
      std::uint64_t acc = 0;
      for (int k = 0; k < 100; ++k) acc ^= rng();
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(7), serial);
}

TEST(Parallel, FirstExceptionPropagatesAfterTheBatchDrains) {
  const std::size_t n = 200;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for_indexed(n, 4,
                           [&](std::size_t i) {
                             ran += 1;
                             if (i == 37) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  // The remaining items still ran; nothing was abandoned mid-batch.
  EXPECT_EQ(ran.load(), static_cast<int>(n));
}

TEST(Parallel, PoolIsReusableAcrossBatches) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<std::int64_t> sum{0};
    pool.for_indexed(100, [&](std::size_t i) {
      sum += static_cast<std::int64_t>(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(Parallel, SweepChunkStaysWithinBounds) {
  // requested wins verbatim but is clamped to [1, n]; the automatic size
  // targets a few claims per thread and never exceeds n.
  EXPECT_EQ(sweep_chunk(100, 4, 7), 7u);
  EXPECT_EQ(sweep_chunk(100, 4, 1000), 100u);
  EXPECT_EQ(sweep_chunk(5, 4, 0), sweep_chunk(5, 4, 0));  // stable
  for (const int threads : {1, 2, 8}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{5},
                                std::size_t{1000}}) {
      const std::size_t c = sweep_chunk(n, threads, 0);
      EXPECT_GE(c, 1u);
      EXPECT_LE(c, n);
    }
  }
}

TEST(Parallel, ResultsMatchForPathologicalChunkSizes) {
  // Chunked range claims must not change what runs or where results land:
  // chunk 1 (maximal claim traffic), a prime that misaligns every range,
  // n (one chunk), and far beyond n (clamped) all produce the serial
  // output.
  const std::size_t n = 64;
  auto run = [n](int jobs, std::size_t chunk) {
    std::vector<std::uint64_t> out(n);
    parallel_for_indexed(
        n, jobs,
        [&](std::size_t i) {
          Rng rng = rng_for_index(4242, i);
          out[i] = rng() ^ (rng() << 1);
        },
        chunk);
    return out;
  };
  const auto serial = run(1, 0);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, n, n + 7}) {
    EXPECT_EQ(run(2, chunk), serial) << "chunk " << chunk;
    EXPECT_EQ(run(4, chunk), serial) << "chunk " << chunk;
  }
}

TEST(Parallel, ThrowInsideAChunkStillRunsTheChunksOtherItems) {
  // for_indexed isolates items even when a claim spans many of them: a
  // throw at i=10 inside a 50-item chunk must not abandon items 11..49.
  const std::size_t n = 100;
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for_indexed(
                   n, 4,
                   [&](std::size_t i) {
                     ran += 1;
                     if (i == 10) throw std::runtime_error("mid-chunk");
                   },
                   /*chunk=*/50),
               std::runtime_error);
  EXPECT_EQ(ran.load(), static_cast<int>(n));
}

TEST(Parallel, PoolStaysReusableAfterAThrowingBatch) {
  // The S3 regression: a batch that throws must drain (every item still
  // runs) and leave the pool fully usable for the next batch — no wedged
  // workers, no stale batch state, no re-thrown stale exception.
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.for_indexed(200,
                                  [&](std::size_t i) {
                                    ran += 1;
                                    if (i == 17)
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 200);
    std::atomic<std::int64_t> sum{0};
    pool.for_indexed(100, [&](std::size_t i) {
      sum += static_cast<std::int64_t>(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);  // clean batch after the throw
  }
}

TEST(Parallel, ForRangesCoversEveryIndexExactlyOnce) {
  const std::size_t n = 257;  // prime: misaligns every chunk size
  std::vector<std::atomic<int>> hits(n);
  parallel_for_ranges(n, 4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, ForRangesThrowAbandonsOnlyItsOwnRange) {
  // The documented contract: a throwing range callback loses the rest of
  // that one range; every other range still runs and the first exception
  // is rethrown after the batch drains. The pool survives.
  ThreadPool pool(3);
  const std::size_t n = 100;
  std::vector<std::atomic<int>> hits(n);
  EXPECT_THROW(pool.for_ranges(
                   n,
                   [&](std::size_t b, std::size_t e) {
                     for (std::size_t i = b; i < e; ++i) {
                       if (i == 30) throw std::runtime_error("range boom");
                       hits[i] += 1;
                     }
                   },
                   /*chunk=*/10),
               std::runtime_error);
  int total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(hits[i].load(), 1) << i;  // never runs twice
    total += hits[i].load();
  }
  // Exactly the throwing range's tail [30, 40) is lost.
  EXPECT_EQ(total, static_cast<int>(n) - 10);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  for (std::size_t i = 40; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  std::atomic<int> ran{0};
  pool.for_ranges(50, [&](std::size_t b, std::size_t e) {
    ran += static_cast<int>(e - b);
  });
  EXPECT_EQ(ran.load(), 50);
}

TEST(Parallel, ZeroWorkerPoolRunsOnTheCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::vector<int> hits(10, 0);
  pool.for_indexed(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, RngForIndexIsDeterministicPerIndex) {
  for (const std::size_t i : {0u, 1u, 5u, 1000u}) {
    Rng a = rng_for_index(99, i);
    Rng b = rng_for_index(99, i);
    for (int k = 0; k < 10; ++k) EXPECT_EQ(a(), b()) << i;
  }
}

TEST(Parallel, RngForIndexStreamsAreDistinct) {
  // Adjacent indices (and adjacent base seeds) must not collide — the
  // SplitMix64 scramble decorrelates the +index arithmetic.
  std::set<std::uint64_t> firsts;
  for (std::size_t i = 0; i < 64; ++i) {
    Rng rng = rng_for_index(7, i);
    firsts.insert(rng());
  }
  EXPECT_EQ(firsts.size(), 64u);
}

}  // namespace
}  // namespace bsplogp::core

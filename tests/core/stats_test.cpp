#include "src/core/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/rng.h"

namespace bsplogp::core {
namespace {

TEST(Stats, FitRecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitOnNoisyLineIsClose) {
  Rng r(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = static_cast<double>(i);
    x.push_back(xi);
    y.push_back(7.0 * xi + 100.0 + (r.uniform01() - 0.5) * 4.0);
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 7.0, 0.05);
  EXPECT_NEAR(f.intercept, 100.0, 5.0);
  EXPECT_GT(f.r_squared, 0.999);
}

TEST(Stats, FitConstantYGivesZeroSlope) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{4, 4, 4, 4};
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 4.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);  // degenerate: perfect by convention
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(mean(v), 5.0, 1e-12);
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);  // sample stddev
}

TEST(Stats, QuantileEndpointsAndMedian) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_NEAR(quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(v, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.5), 3.0, 1e-12);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_NEAR(quantile(v, 0.25), 2.5, 1e-12);
  EXPECT_NEAR(quantile(v, 0.75), 7.5, 1e-12);
}

}  // namespace
}  // namespace bsplogp::core

#include "src/core/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bsplogp::core {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "123456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  // Every row should start at the same column offset for field 2.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  const auto header_col = line.find("value");
  std::getline(is, line);  // separator
  std::getline(is, line);
  EXPECT_EQ(line.find('1'), header_col);
}

TEST(Table, RowCountTracksAdds) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Table, FmtInt) { EXPECT_EQ(fmt(std::int64_t{-42}), "-42"); }

}  // namespace
}  // namespace bsplogp::core

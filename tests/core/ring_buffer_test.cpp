// RingBuffer: the flat circular FIFO behind the engine's per-processor
// input buffers and per-destination pending-submission queues. The engine
// relies on deque-equivalent semantics (FIFO order, indexed access,
// order-preserving erase for the Random accept policy) with recycled
// storage; these tests pin that contract, including wrap-around states a
// straight std::vector never sees.
#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <vector>

#include "src/core/ring_buffer.h"

namespace bsplogp::core {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBuffer, FifoOrderAcrossGrowth) {
  RingBuffer<int> rb;
  for (int i = 0; i < 100; ++i) rb.push_back(i);  // forces several grows
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapAroundPreservesOrderAndIndexing) {
  // Drive head around the ring: interleaved push/pop keeps size small while
  // head circles the power-of-two storage many times.
  RingBuffer<int> rb;
  std::deque<int> model;
  int next = 0;
  for (int round = 0; round < 500; ++round) {
    for (int k = 0; k < 3; ++k) {
      rb.push_back(next);
      model.push_back(next);
      ++next;
    }
    for (int k = 0; k < 2; ++k) {
      ASSERT_EQ(rb.front(), model.front());
      rb.pop_front();
      model.pop_front();
    }
    ASSERT_EQ(rb.size(), model.size());
    for (std::size_t i = 0; i < model.size(); ++i)
      ASSERT_EQ(rb[i], model[i]) << "round " << round << " index " << i;
  }
}

TEST(RingBuffer, BackAndPopBack) {
  RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(i);
  EXPECT_EQ(rb.back(), 9);
  rb.pop_back();
  EXPECT_EQ(rb.back(), 8);
  EXPECT_EQ(rb.front(), 0);
  EXPECT_EQ(rb.size(), 9u);
}

TEST(RingBuffer, EraseMatchesDequeAtEveryIndex) {
  // The Random accept policy erases by index; order of the survivors must
  // match std::deque::erase exactly. Exercised in a wrapped state.
  for (std::size_t victim = 0; victim < 12; ++victim) {
    RingBuffer<int> rb;
    std::deque<int> model;
    for (int i = 0; i < 8; ++i) rb.push_back(-1);  // occupy, then drain:
    for (int i = 0; i < 8; ++i) rb.pop_front();    // head now mid-ring
    for (int i = 0; i < 12; ++i) {
      rb.push_back(i);
      model.push_back(i);
    }
    rb.erase(victim);
    model.erase(model.begin() + static_cast<std::ptrdiff_t>(victim));
    ASSERT_EQ(rb.size(), model.size());
    for (std::size_t i = 0; i < model.size(); ++i)
      ASSERT_EQ(rb[i], model[i]) << "victim " << victim << " index " << i;
  }
}

TEST(RingBuffer, ClearKeepsStorageAndResetsState) {
  RingBuffer<int> rb;
  for (int i = 0; i < 50; ++i) rb.push_back(i);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push_back(7);
  EXPECT_EQ(rb.front(), 7);
  EXPECT_EQ(rb.back(), 7);
}

TEST(RingBuffer, ReserveThenFillDoesNotLoseElements) {
  RingBuffer<int> rb;
  rb.reserve(100);
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rb.front(), i);
    rb.pop_front();
  }
}

}  // namespace
}  // namespace bsplogp::core

#include "src/core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace bsplogp::core {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, UniformInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(13);
  std::array<int, 8> buckets{};
  const int n = 80'000;
  for (int i = 0; i < n; ++i) buckets[r.below(8)] += 1;
  for (int count : buckets) {
    EXPECT_GT(count, n / 8 - n / 80);
    EXPECT_LT(count, n / 8 + n / 80);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent2(23);
  (void)parent2();  // parent advanced once during split
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child() == parent2());
  EXPECT_LT(same, 3);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> orig = v;
  Rng r(29);
  std::shuffle(v.begin(), v.end(), r);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, FlipRespectsProbability) {
  Rng r(31);
  int heads = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) heads += r.flip(0.25);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace bsplogp::core

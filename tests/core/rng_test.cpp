#include "src/core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace bsplogp::core {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, UniformInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(13);
  std::array<int, 8> buckets{};
  const int n = 80'000;
  for (int i = 0; i < n; ++i) buckets[r.below(8)] += 1;
  for (int count : buckets) {
    EXPECT_GT(count, n / 8 - n / 80);
    EXPECT_LT(count, n / 8 + n / 80);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent2(23);
  (void)parent2();  // parent advanced once during split
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child() == parent2());
  EXPECT_LT(same, 3);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> orig = v;
  Rng r(29);
  std::shuffle(v.begin(), v.end(), r);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, PinnedKnownAnswers) {
  // Frozen outputs of the exact generators in rng.h. Any change to the
  // seeding path or the xoshiro step silently invalidates every recorded
  // experiment seed; this test turns that into a loud failure. The
  // splitmix64 values are the published SplitMix64 reference vector for
  // state 0, so they also pin us to the upstream algorithm.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64(s), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(splitmix64(s), 0x06c45d188009454full);

  Rng r(42);
  EXPECT_EQ(r(), 0x15780b2e0c2ec716ull);
  EXPECT_EQ(r(), 0x6104d9866d113a7eull);
  EXPECT_EQ(r(), 0xae17533239e499a1ull);
  EXPECT_EQ(r(), 0xecb8ad4703b360a1ull);

  Rng idx = rng_for_index(7, 3);
  EXPECT_EQ(idx(), 0x67ed1a8843edbab4ull);
  EXPECT_EQ(idx(), 0x4229ab7c2c0c231dull);
  EXPECT_EQ(idx(), 0xccff1603bac65013ull);

  Rng b(9);
  EXPECT_EQ(b.below(1000), 2u);
  EXPECT_EQ(b.below(1000), 251u);
  EXPECT_EQ(b.below(1000), 132u);
  EXPECT_EQ(b.below(1000), 732u);
}

TEST(Rng, IndexStreamsAreDisjoint) {
  // rng_for_index gives every grid point its own stream; the native sweep
  // runner relies on streams never colliding across indices. 1000 indices
  // x 4 draws must all be distinct 64-bit values (a single collision among
  // 4000 uniform draws has probability ~4e-13 — a repeatable collision
  // means correlated streams, not bad luck).
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < 1000; ++index) {
    Rng r = rng_for_index(123, index);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(seen.insert(r()).second)
        << "collision at index " << index << " draw " << i;
  }
  EXPECT_EQ(seen.size(), 4000u);
}

TEST(Rng, IndexStreamsDifferAcrossBaseSeeds) {
  // The same index under different base seeds must not replay.
  Rng a = rng_for_index(1, 5);
  Rng b = rng_for_index(2, 5);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, FlipRespectsProbability) {
  Rng r(31);
  int heads = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) heads += r.flip(0.25);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace bsplogp::core

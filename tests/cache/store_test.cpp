// The on-disk cache store (src/cache/store.h): commit/lookup round trips,
// the stale-generation eviction path, and the damage matrix — corrupt,
// truncated, foreign, and preimage-tampered entries must all degrade to
// misses, never to wrong payloads or crashes.
#include "src/cache/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace bsplogp::cache {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("bsplogp_store_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string read_entry(const Store& store,
                                       const Key& key) const {
    std::ifstream in(dir_ / store.entry_name(key), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void write_entry(const Store& store, const Key& key,
                   const std::string& text) const {
    std::ofstream out(dir_ / store.entry_name(key),
                      std::ios::binary | std::ios::trunc);
    out << text;
  }

  fs::path dir_;
  Key key_{"thm1", "wl=hotspot;p=16;gr=2", 42, "hotspot"};
};

TEST_F(StoreTest, LookupAgainstMissingDirectoryIsAMiss) {
  const Store store(dir_.string(), "build-a");
  EXPECT_EQ(store.lookup(key_).outcome, Store::Outcome::Miss);
  EXPECT_FALSE(fs::exists(dir_));  // lookups never create the directory
}

TEST_F(StoreTest, CommitThenLookupRoundTripsThePayload) {
  const Store store(dir_.string(), "build-a");
  store.commit(key_, "[1, 2.5, \"x\", true]");
  const Store::Lookup found = store.lookup(key_);
  ASSERT_EQ(found.outcome, Store::Outcome::Hit);
  ASSERT_EQ(found.payload.type, core::JsonValue::Type::Array);
  ASSERT_EQ(found.payload.array.size(), 4u);
  EXPECT_EQ(found.payload.array[0].raw, "1");
  EXPECT_EQ(found.payload.array[1].raw, "2.5");
  EXPECT_EQ(found.payload.array[2].str, "x");
  EXPECT_TRUE(found.payload.array[3].boolean);

  // The entry records the full audit trail.
  const std::string text = read_entry(store, key_);
  EXPECT_NE(text.find("\"build_id\": \"build-a\""), std::string::npos);
  EXPECT_NE(text.find("\"key\": \"" + store.key_hex(key_) + "\""),
            std::string::npos);
  EXPECT_NE(text.find("\"seed\": \"42\""), std::string::npos);
}

TEST_F(StoreTest, DistinctKeysNeverAlias) {
  const Store store(dir_.string(), "build-a");
  Key other = key_;
  other.point += ";i=1";
  store.commit(key_, "[1]");
  store.commit(other, "[2]");
  EXPECT_NE(store.entry_name(key_), store.entry_name(other));
  EXPECT_EQ(store.lookup(key_).payload.array[0].raw, "1");
  EXPECT_EQ(store.lookup(other).payload.array[0].raw, "2");

  Key reseeded = key_;
  reseeded.seed += 1;
  EXPECT_EQ(store.lookup(reseeded).outcome, Store::Outcome::Miss);
}

TEST_F(StoreTest, EntryNameIgnoresBuildButKeyHexCoversIt) {
  const Store a(dir_.string(), "build-a");
  const Store b(dir_.string(), "build-b");
  // Filenames must match across generations so a new binary can find (and
  // evict) an old binary's entries...
  EXPECT_EQ(a.entry_name(key_), b.entry_name(key_));
  // ...while the recorded audit key distinguishes them.
  EXPECT_NE(a.key_hex(key_), b.key_hex(key_));
  EXPECT_EQ(a.entry_name(key_).size(), 32u + 5u);  // <hex128>.json
}

TEST_F(StoreTest, StaleGenerationIsEvictedFromDisk) {
  const Store old_gen(dir_.string(), "build-a");
  old_gen.commit(key_, "[7]");
  const Store new_gen(dir_.string(), "build-b");
  EXPECT_EQ(new_gen.lookup(key_).outcome, Store::Outcome::Stale);
  // The stale file is gone: the next lookup is a plain miss.
  EXPECT_FALSE(fs::exists(dir_ / new_gen.entry_name(key_)));
  EXPECT_EQ(new_gen.lookup(key_).outcome, Store::Outcome::Miss);
}

TEST_F(StoreTest, DamagedEntriesDegradeToMisses) {
  const Store store(dir_.string(), "build-a");
  store.commit(key_, "[7]");
  const std::string good = read_entry(store, key_);

  // Truncated mid-document.
  write_entry(store, key_, good.substr(0, good.size() / 2));
  EXPECT_EQ(store.lookup(key_).outcome, Store::Outcome::Miss);

  // Not JSON at all.
  write_entry(store, key_, "{garbage");
  EXPECT_EQ(store.lookup(key_).outcome, Store::Outcome::Miss);

  // Valid JSON, wrong shape.
  write_entry(store, key_, "[1, 2, 3]\n");
  EXPECT_EQ(store.lookup(key_).outcome, Store::Outcome::Miss);

  // Unknown format version.
  write_entry(store, key_,
              good.substr(0, good.find('1')) + "2" +
                  good.substr(good.find('1') + 1));
  EXPECT_EQ(store.lookup(key_).outcome, Store::Outcome::Miss);

  // A tampered preimage field no longer matches the requested key — the
  // store trusts the preimage, not the filename.
  std::string tampered = good;
  const auto at = tampered.find("hotspot");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 7, "hotspoX");
  write_entry(store, key_, tampered);
  EXPECT_EQ(store.lookup(key_).outcome, Store::Outcome::Miss);

  // And a fresh commit repairs the entry in place.
  store.commit(key_, "[7]");
  EXPECT_EQ(store.lookup(key_).outcome, Store::Outcome::Hit);
}

TEST_F(StoreTest, CommitOverwritesAndLeavesNoTempFiles) {
  const Store store(dir_.string(), "build-a");
  store.commit(key_, "[1]");
  store.commit(key_, "[2]");
  const Store::Lookup found = store.lookup(key_);
  ASSERT_EQ(found.outcome, Store::Outcome::Hit);
  EXPECT_EQ(found.payload.array[0].raw, "2");
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(e.path().extension(), ".json") << e.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(StoreTest, KeysWithSpecialCharactersRoundTrip) {
  const Store store(dir_.string(), "build \"quoted\"\\slash");
  const Key weird{"bench\nline", "point\twith\"quotes\"", 0,
                  "workload\\back"};
  store.commit(weird, "[3]");
  EXPECT_EQ(store.lookup(weird).outcome, Store::Outcome::Hit);
}

}  // namespace
}  // namespace bsplogp::cache

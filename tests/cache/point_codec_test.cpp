// cache::PointCodec (src/cache/point_codec.h): the byte-exact result
// codec shared by the sweep cache's disk entries and the farm's wire
// payloads. Round-trip fuzz proves decode(encode(v)) == v bit for bit
// over randomized values (including doubles with full mantissas);
// rejection fuzz proves a mutated payload never yields a silent partial
// decode — it either still parses to a full valid value or decode
// returns false and leaves the output untouched.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "src/cache/point_codec.h"
#include "src/core/json.h"
#include "src/core/rng.h"

namespace bsplogp::cache {
namespace {

struct Inner {
  std::int64_t count = 0;
  double ratio = 0;

  friend bool operator==(const Inner&, const Inner&) = default;

  template <class Ar>
  void io(Ar& ar) {
    ar(count);
    ar(ratio);
  }
};

struct Outer {
  std::int64_t t = 0;
  double x = 0;
  bool flag = false;
  std::string label;
  Inner inner;

  friend bool operator==(const Outer&, const Outer&) = default;

  template <class Ar>
  void io(Ar& ar) {
    ar(t);
    ar(x);
    ar(flag);
    ar(label);
    ar(inner);
  }
};

double random_double(core::Rng& rng) {
  // Full-mantissa values across magnitudes: the %.17g contract must
  // survive exponents, not just friendly decimals.
  const double mantissa =
      static_cast<double>(rng()) / static_cast<double>(UINT64_MAX);
  const int exp = static_cast<int>(rng() % 600) - 300;
  return std::ldexp(mantissa * 2 - 1, exp);
}

std::string random_label(core::Rng& rng) {
  static const char alphabet[] =
      "abcXYZ 0123456789\"\\\n\t\r\x01\x1f{}[],:";
  std::string s;
  const std::size_t len = rng() % 12;
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(alphabet[rng() % (sizeof alphabet - 1)]);
  return s;
}

TEST(PointCodec, RoundTripFuzzIsBitExact) {
  core::Rng rng(0xC0DEC);
  for (int iter = 0; iter < 500; ++iter) {
    Outer v;
    v.t = static_cast<std::int64_t>(rng());
    v.x = random_double(rng);
    v.flag = (rng() & 1) != 0;
    v.label = random_label(rng);
    v.inner.count = static_cast<std::int64_t>(rng() % 1000) - 500;
    v.inner.ratio = random_double(rng);

    const std::string payload = PointCodec::encode(v);
    Outer back;
    ASSERT_TRUE(PointCodec::decode(payload, &back)) << payload;
    EXPECT_EQ(back, v) << payload;
    // And the re-encode is byte-identical — the property the farm's
    // end-of-sweep broadcast and the warm-cache replay both lean on.
    EXPECT_EQ(PointCodec::encode(back), payload);
  }
}

TEST(PointCodec, RoundTripsExtremeScalars) {
  for (const double d :
       {0.0, -0.0, 0.1, 1e308, -1e-308, 4e-324,
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::epsilon()}) {
    double back = 99;
    ASSERT_TRUE(PointCodec::decode(PointCodec::encode(d), &back));
    EXPECT_EQ(std::signbit(back), std::signbit(d));
    EXPECT_EQ(back, d);
  }
  for (const std::int64_t i :
       {std::int64_t{0}, std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    std::int64_t back = 7;
    ASSERT_TRUE(PointCodec::decode(PointCodec::encode(i), &back));
    EXPECT_EQ(back, i);
  }
}

TEST(PointCodec, RejectsMalformedShapes) {
  Outer out;
  out.t = 42;
  const Outer untouched = out;
  // Not JSON at all; not an array; wrong arity (short and long); type
  // mismatches; integer where the schema narrows.
  for (const char* bad :
       {"", "garbage", "{\"a\": 1}", "3", "[]", "[1, 2]",
        "[1, 2.5, true, \"x\", [1, 0.5], 9]",
        "[\"one\", 2.5, true, \"x\", [1, 0.5]]",
        "[1, 2.5, 7, \"x\", [1, 0.5]]",
        "[1, 2.5, true, \"x\", [0.25, 0.5]]",
        "[1, 2.5, true, \"x\", 3]"}) {
    EXPECT_FALSE(PointCodec::decode(std::string(bad), &out)) << bad;
    EXPECT_EQ(out, untouched) << "partial decode leaked from: " << bad;
  }
}

TEST(PointCodec, MutationFuzzNeverYieldsAPartialDecode) {
  core::Rng rng(0xBADC0DE);
  Outer v;
  v.t = 1234567890123;
  v.x = 0.1;
  v.flag = true;
  v.label = "hot\"spot";
  v.inner = Inner{-9, 2.5};
  const std::string payload = PointCodec::encode(v);
  int rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mut = payload;
    // 1-3 random byte edits: overwrite, delete, or insert.
    const int edits = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < edits && !mut.empty(); ++e) {
      const std::size_t pos = rng() % mut.size();
      switch (rng() % 3) {
        case 0: mut[pos] = static_cast<char>(rng() % 96 + 32); break;
        case 1: mut.erase(pos, 1); break;
        default: mut.insert(pos, 1, static_cast<char>(rng() % 96 + 32));
      }
    }
    Outer got = v;
    if (!PointCodec::decode(mut, &got)) {
      EXPECT_EQ(got, v) << "rejected decode touched the output: " << mut;
      ++rejected;
    }
    // Accepted mutants are fine (e.g. a digit edit is just another valid
    // value) — the contract is no partial/corrupt decode, not detection
    // of every edit.
  }
  EXPECT_GT(rejected, 0);  // the fuzz actually exercised the reject path
}

TEST(PointCodec, UnicodeEscapesRoundTripGridShapedKeys) {
  // Grid-shaped point keys (the bench_app_crossover style: family, grid
  // dims, and sizes packed into one string) with every control byte
  // embedded: the encoder must spell them \u00XX and the decoder must
  // restore the exact bytes. Multi-byte UTF-8 passes through raw.
  for (int ctrl = 0; ctrl < 0x20; ++ctrl) {
    Outer v;
    v.label = "f=stencil-2d;grid=2x3;nx=12;ny=8";
    v.label.push_back(static_cast<char>(ctrl));
    v.label += "\xc3\xa9\xe2\x82\xac";  // é and the euro sign, as UTF-8
    const std::string payload = PointCodec::encode(v);
    if (ctrl != '\n' && ctrl != '\t' && ctrl != '\r') {
      char esc[8];
      std::snprintf(esc, sizeof esc, "\\u%04x", ctrl);
      EXPECT_NE(payload.find(esc), std::string::npos) << payload;
    }
    Outer back;
    ASSERT_TRUE(PointCodec::decode(payload, &back)) << payload;
    EXPECT_EQ(back.label, v.label) << "ctrl byte " << ctrl;
    EXPECT_EQ(PointCodec::encode(back), payload);
  }
}

TEST(PointCodec, CoreParserDecodesUnicodeEscapesToUtf8) {
  // \uXXXX above 0x7F decodes to multi-byte UTF-8: one-, two-, and
  // three-byte sequences from the same escape syntax.
  core::JsonValue doc;
  ASSERT_TRUE(
      core::JsonParser("[\"g=2x3;\\u0041\\u00e9\\u20ac\"]").parse(doc));
  ASSERT_EQ(doc.array.size(), 1u);
  EXPECT_EQ(doc.array[0].str, "g=2x3;A\xc3\xa9\xe2\x82\xac");
  // Truncated and non-hex escapes are malformed, not silently accepted.
  core::JsonValue bad;
  EXPECT_FALSE(core::JsonParser(R"(["\u12"])").parse(bad));
  EXPECT_FALSE(core::JsonParser(R"(["\u12zz"])").parse(bad));
}

}  // namespace
}  // namespace bsplogp::cache

// The cache policy layer (src/cache/point_cache.h): the result codec's
// byte-exact round trip (the foundation of the replay byte-identity
// guarantee), its rejection of mismatched payloads, PointCache mode
// semantics and hit/miss/stale accounting, and concurrent commits from
// SweepRunner-style worker threads.
#include "src/cache/point_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace bsplogp::cache {
namespace {

namespace fs = std::filesystem;

struct Inner {
  std::int64_t ticks = 0;
  bool ok = false;

  friend bool operator==(const Inner&, const Inner&) = default;

  template <class Ar>
  void io(Ar& ar) {
    ar(ticks);
    ar(ok);
  }
};

struct Outer {
  std::int64_t big = 0;
  double ratio = 0;
  std::string note;
  Inner inner;

  friend bool operator==(const Outer&, const Outer&) = default;

  template <class Ar>
  void io(Ar& ar) {
    ar(big);
    ar(ratio);
    ar(note);
    ar(inner);
  }
};

template <typename R>
R reencode(const R& r) {
  core::JsonValue payload;
  EXPECT_TRUE(core::JsonParser(encode_result(r)).parse(payload));
  R out{};
  EXPECT_TRUE(decode_result(payload, &out));
  return out;
}

TEST(ResultCodec, RoundTripsExtremeValuesExactly) {
  Outer r;
  r.big = std::numeric_limits<std::int64_t>::max();  // > 2^53: needs raw
  r.ratio = 0.1;                                     // not binary-exact
  r.note = "line\nwith \"quotes\" and \\slash";
  r.inner = Inner{std::numeric_limits<std::int64_t>::min(), true};
  EXPECT_EQ(reencode(r), r);

  // Byte-exactness, not just equality: re-encoding the decoded value
  // reproduces the identical payload string.
  core::JsonValue payload;
  ASSERT_TRUE(core::JsonParser(encode_result(r)).parse(payload));
  Outer decoded{};
  ASSERT_TRUE(decode_result(payload, &decoded));
  EXPECT_EQ(encode_result(decoded), encode_result(r));
}

struct One {
  double v = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(v);
  }
};

TEST(ResultCodec, RoundTripsDoubleBitPatterns) {
  for (const double d :
       {1.0 / 3.0, 1e300, 5e-324, -0.0, 123456789.123456789}) {
    One r{d}, out{};
    core::JsonValue payload;
    ASSERT_TRUE(core::JsonParser(encode_result(r)).parse(payload));
    ASSERT_TRUE(decode_result(payload, &out));
    EXPECT_EQ(std::signbit(out.v), std::signbit(d));
    EXPECT_EQ(out.v, d);
  }
}

TEST(ResultCodec, RejectsArityAndTypeMismatches) {
  Inner out{};
  core::JsonValue payload;
  // Too few fields.
  ASSERT_TRUE(core::JsonParser("[1]").parse(payload));
  EXPECT_FALSE(decode_result(payload, &out));
  // Too many fields.
  ASSERT_TRUE(core::JsonParser("[1, true, 3]").parse(payload));
  EXPECT_FALSE(decode_result(payload, &out));
  // Wrong type where the bool belongs.
  ASSERT_TRUE(core::JsonParser("[1, 2]").parse(payload));
  EXPECT_FALSE(decode_result(payload, &out));
  // Fractional number where the integer belongs.
  ASSERT_TRUE(core::JsonParser("[1.5, true]").parse(payload));
  EXPECT_FALSE(decode_result(payload, &out));
  // A failed decode leaves the output untouched at the call site's
  // default — decode_result only writes through on full success.
  out = Inner{77, true};
  ASSERT_TRUE(core::JsonParser("[1]").parse(payload));
  EXPECT_FALSE(decode_result(payload, &out));
  EXPECT_EQ(out, (Inner{77, true}));
}

TEST(ParseMode, AcceptsExactlyTheThreeModes) {
  Mode m = Mode::kOff;
  EXPECT_TRUE(parse_mode("on", &m));
  EXPECT_EQ(m, Mode::kOn);
  EXPECT_TRUE(parse_mode("off", &m));
  EXPECT_EQ(m, Mode::kOff);
  EXPECT_TRUE(parse_mode("readonly", &m));
  EXPECT_EQ(m, Mode::kReadOnly);
  for (const char* bad : {"", "On", "ON", "read-only", "true", "1"})
    EXPECT_FALSE(parse_mode(bad, &m)) << bad;
  EXPECT_STREQ(to_string(Mode::kOn), "on");
  EXPECT_STREQ(to_string(Mode::kOff), "off");
  EXPECT_STREQ(to_string(Mode::kReadOnly), "readonly");
}

class PointCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("bsplogp_point_cache_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] PointCache make(Mode mode, const std::string& build) const {
    return PointCache(mode, dir_.string(), "unit", "hotspot", build);
  }

  fs::path dir_;
};

TEST_F(PointCacheTest, MissThenPutThenHitWithExactStats) {
  PointCache pc = make(Mode::kOn, "build-a");
  EXPECT_TRUE(pc.enabled());
  const PointKey key{"p=16;k=2", 7};
  const Inner computed{123, true};

  Inner out{};
  EXPECT_FALSE(pc.try_get(key, &out));
  pc.put(key, computed);
  EXPECT_TRUE(pc.try_get(key, &out));
  EXPECT_EQ(out, computed);
  EXPECT_EQ(pc.stats().hits, 1);
  EXPECT_EQ(pc.stats().misses, 1);
  EXPECT_EQ(pc.stats().stale_evictions, 0);

  // A second cache over the same directory (the warm run) hits cold.
  PointCache warm = make(Mode::kOn, "build-a");
  EXPECT_TRUE(warm.try_get(key, &out));
  EXPECT_EQ(warm.stats().hits, 1);
  EXPECT_EQ(warm.stats().misses, 0);
}

TEST_F(PointCacheTest, OffModeNeverTouchesDiskOrCounters) {
  PointCache pc = make(Mode::kOff, "build-a");
  EXPECT_FALSE(pc.enabled());
  const PointKey key{"p=16", 0};
  Inner out{};
  EXPECT_FALSE(pc.try_get(key, &out));
  pc.put(key, Inner{1, true});
  EXPECT_FALSE(fs::exists(dir_));
  EXPECT_EQ(pc.stats().hits, 0);
  EXPECT_EQ(pc.stats().misses, 0);
}

TEST_F(PointCacheTest, ReadOnlyReadsButNeverWrites) {
  const PointKey key{"p=16", 0};
  {
    PointCache writer = make(Mode::kOn, "build-a");
    writer.put(key, Inner{9, false});
  }
  PointCache ro = make(Mode::kReadOnly, "build-a");
  Inner out{};
  EXPECT_TRUE(ro.try_get(key, &out));
  EXPECT_EQ(out.ticks, 9);

  const PointKey fresh{"p=32", 0};
  EXPECT_FALSE(ro.try_get(fresh, &out));
  ro.put(fresh, Inner{1, true});  // silently dropped
  EXPECT_FALSE(ro.try_get(fresh, &out));
  EXPECT_EQ(ro.stats().hits, 1);
  EXPECT_EQ(ro.stats().misses, 2);
}

TEST_F(PointCacheTest, NewBuildEvictsAndRecomputesOldGeneration) {
  const PointKey key{"p=16", 0};
  {
    PointCache old_gen = make(Mode::kOn, "build-a");
    old_gen.put(key, Inner{5, true});
  }
  PointCache new_gen = make(Mode::kOn, "build-b");
  Inner out{};
  EXPECT_FALSE(new_gen.try_get(key, &out));  // stale: counted miss + eviction
  EXPECT_EQ(new_gen.stats().stale_evictions, 1);
  EXPECT_EQ(new_gen.stats().misses, 1);
  new_gen.put(key, Inner{6, true});
  EXPECT_TRUE(new_gen.try_get(key, &out));
  EXPECT_EQ(out.ticks, 6);
  EXPECT_EQ(new_gen.stats().stale_evictions, 1);
}

TEST_F(PointCacheTest, MismatchedResultShapeDemotesHitToMiss) {
  const PointKey key{"p=16", 0};
  PointCache pc = make(Mode::kOn, "build-a");
  pc.put(key, Inner{5, true});
  // Same key read back as a different result type: the decode fails and
  // the caller recomputes — never a type-confused hit.
  Outer wrong{};
  EXPECT_FALSE(pc.try_get(key, &wrong));
  EXPECT_EQ(pc.stats().misses, 1);
  EXPECT_EQ(pc.stats().hits, 0);
}

TEST_F(PointCacheTest, ConcurrentWorkersCommitAndReplayConsistently) {
  // 4 SweepRunner-style workers share one cache: each computes-and-puts
  // its own stripe, then every worker try_gets every point.
  constexpr int kThreads = 4;
  constexpr int kPoints = 32;
  PointCache pc = make(Mode::kOn, "build-a");
  const auto key_for = [](int i) {
    return PointKey{"i=" + std::to_string(i),
                    static_cast<std::uint64_t>(i)};
  };
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&, t] {
        for (int i = t; i < kPoints; i += kThreads)
          pc.put(key_for(i), Inner{i * 10, i % 2 == 0});
      });
    for (auto& w : workers) w.join();
  }
  std::atomic<int> bad{0};
  {
    std::vector<std::thread> readers;
    readers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      readers.emplace_back([&] {
        for (int i = 0; i < kPoints; ++i) {
          Inner out{};
          if (!pc.try_get(key_for(i), &out) || out.ticks != i * 10)
            bad.fetch_add(1);
        }
      });
    for (auto& r : readers) r.join();
  }
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(pc.stats().hits, kThreads * kPoints);
  EXPECT_EQ(pc.stats().misses, 0);
}

}  // namespace
}  // namespace bsplogp::cache

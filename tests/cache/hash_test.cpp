// The cache key hash (src/cache/hash.h). The lane constants are on-disk
// format: the known-answer tests below pin them so a change can never
// land silently (it would orphan every existing cache directory). The
// framing tests pin the property lookups rely on — field sequences hash
// by (length, bytes) pairs, never by concatenation.
#include "src/cache/hash.h"

#include <gtest/gtest.h>

#include <string>

namespace bsplogp::cache {
namespace {

TEST(Hash, KnownAnswersPinTheOnDiskFormat) {
  // Empty input exposes the two lane offsets verbatim.
  EXPECT_EQ(to_hex(Hasher().digest()), "6c62272e07bb0142cbf29ce484222325");
  // The low lane of "abc" is textbook 64-bit FNV-1a; the high lane is the
  // perturbed companion.
  EXPECT_EQ(to_hex(Hasher().bytes("abc", 3).digest()),
            "aa27d32f0b6c99a2e71fa2190541574b");
  EXPECT_EQ(to_hex(Hasher().field("abc").digest()),
            "759d575a69c902f3c11ab6d2519bc2b2");
  EXPECT_EQ(to_hex(Hasher().u64(1).digest()),
            "9bed7fce5f03c84389cd31291d2aefa4");
}

TEST(Hash, HexIs32LowercaseDigitsHiLaneFirst) {
  const Hash128 h{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(to_hex(h), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(to_hex(Hash128{}), std::string(32, '0'));
}

TEST(Hash, FieldFramingSeparatesPermutedSplits) {
  // ("ab","c") vs ("a","bc") vs raw "abc": all distinct, because field()
  // length-prefixes each piece.
  const Hash128 ab_c = Hasher().field("ab").field("c").digest();
  const Hash128 a_bc = Hasher().field("a").field("bc").digest();
  const Hash128 raw = Hasher().bytes("abc", 3).digest();
  EXPECT_FALSE(ab_c == a_bc);
  EXPECT_FALSE(ab_c == raw);
  EXPECT_FALSE(a_bc == raw);
  // And the empty field is not a no-op.
  EXPECT_FALSE(Hasher().field("").digest() == Hasher().digest());
}

TEST(Hash, LanesDoNotCancelOnSwappedBytes) {
  const Hash128 ab = Hasher().bytes("ab", 2).digest();
  const Hash128 ba = Hasher().bytes("ba", 2).digest();
  EXPECT_NE(ab.lo, ba.lo);
  EXPECT_NE(ab.hi, ba.hi);
}

TEST(Hash, IncrementalAndOneShotAgree) {
  const Hash128 once = Hasher().bytes("stall-free", 10).digest();
  const Hash128 split =
      Hasher().bytes("stall", 5).bytes("-free", 5).digest();
  EXPECT_TRUE(once == split);
}

}  // namespace
}  // namespace bsplogp::cache

#include "src/routing/bitonic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/rng.h"

namespace bsplogp::routing {
namespace {

TEST(Bitonic, ScheduleDepthFormula) {
  EXPECT_EQ(bitonic_schedule(2).size(), 1u);
  EXPECT_EQ(bitonic_schedule(4).size(), 3u);
  EXPECT_EQ(bitonic_schedule(8).size(), 6u);
  EXPECT_EQ(bitonic_schedule(64).size(), 21u);
  EXPECT_EQ(bitonic_depth(64), 21);
}

TEST(Bitonic, EveryRoundIsAPerfectMatching) {
  for (const ProcId p : {2, 4, 16, 128}) {
    for (const auto& round : bitonic_schedule(p)) {
      std::vector<int> seen(static_cast<std::size_t>(p), 0);
      for (const CompareExchange& ce : round) {
        EXPECT_LT(ce.lo, ce.hi);
        seen[static_cast<std::size_t>(ce.lo)] += 1;
        seen[static_cast<std::size_t>(ce.hi)] += 1;
      }
      for (const int s : seen) EXPECT_EQ(s, 1);  // perfect matching
    }
  }
}

TEST(Bitonic, SortsSingleRecordBlocks) {
  core::Rng rng(21);
  for (const ProcId p : {2, 8, 64, 256}) {
    std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
    std::vector<Word> all;
    for (auto& b : blocks) {
      b.push_back(rng.uniform(-1'000'000, 1'000'000));
      all.push_back(b[0]);
    }
    bitonic_sort_blocks(blocks);
    std::sort(all.begin(), all.end());
    for (ProcId i = 0; i < p; ++i)
      EXPECT_EQ(blocks[static_cast<std::size_t>(i)][0],
                all[static_cast<std::size_t>(i)])
          << "p=" << p << " i=" << i;
  }
}

TEST(Bitonic, SortsMultiRecordBlocks) {
  core::Rng rng(22);
  for (const ProcId p : {2, 4, 16, 32}) {
    for (const std::size_t r : {1u, 3u, 16u}) {
      std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
      std::vector<Word> all;
      for (auto& b : blocks)
        for (std::size_t j = 0; j < r; ++j) {
          b.push_back(rng.uniform(0, 99));  // duplicates exercised
          all.push_back(b.back());
        }
      bitonic_sort_blocks(blocks);
      std::sort(all.begin(), all.end());
      std::vector<Word> got;
      for (const auto& b : blocks) {
        EXPECT_EQ(b.size(), r);
        EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
        got.insert(got.end(), b.begin(), b.end());
      }
      EXPECT_EQ(got, all) << "p=" << p << " r=" << r;
    }
  }
}

TEST(Bitonic, ZeroOnePrinciple) {
  // Random 0/1 inputs are the classic adversaries for oblivious networks.
  core::Rng rng(23);
  const ProcId p = 64;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
    int ones = 0;
    for (auto& b : blocks) {
      b.push_back(static_cast<Word>(rng.below(2)));
      ones += static_cast<int>(b[0]);
    }
    bitonic_sort_blocks(blocks);
    for (ProcId i = 0; i < p; ++i) {
      const Word expect = i < p - ones ? 0 : 1;
      ASSERT_EQ(blocks[static_cast<std::size_t>(i)][0], expect)
          << "trial " << trial << " pos " << i;
    }
  }
}

TEST(Bitonic, MergeSplitKeepsHalves) {
  std::vector<Word> lo{1, 5, 9};
  std::vector<Word> hi{2, 3, 10};
  merge_split(lo, hi);
  EXPECT_EQ(lo, (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(hi, (std::vector<Word>{5, 9, 10}));
}

TEST(BitonicDeath, RequiresPowerOfTwo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH((void)bitonic_schedule(12), "precondition");
}

}  // namespace
}  // namespace bsplogp::routing

// The Hall/König decomposition behind Section 4.2's off-line routing: any
// h-relation splits into at most h partial permutations.
#include "src/routing/decompose.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace bsplogp::routing {
namespace {

void expect_valid_decomposition(const HRelation& rel,
                                const std::vector<std::vector<Message>>& layers,
                                Time max_layers) {
  std::int64_t total = 0;
  for (const auto& layer : layers) {
    EXPECT_TRUE(is_partial_permutation(rel.nprocs(), layer));
    total += static_cast<std::int64_t>(layer.size());
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(rel.size()));
  EXPECT_LE(static_cast<Time>(layers.size()), max_layers);

  // Multiset equality: every input message appears exactly once.
  auto key = [](const Message& m) {
    return std::tuple{m.src, m.dst, m.payload, m.tag};
  };
  std::map<std::tuple<ProcId, ProcId, Word, std::int32_t>, int> counts;
  for (const Message& m : rel.messages()) counts[key(m)] += 1;
  for (const auto& layer : layers)
    for (const Message& m : layer) counts[key(m)] -= 1;
  for (const auto& [k, v] : counts) EXPECT_EQ(v, 0);
}

TEST(Decompose, RegularRelationUsesExactlyHColors) {
  core::Rng rng(11);
  for (const ProcId p : {4, 16, 32}) {
    for (const Time h : {1, 2, 7, 16}) {
      const HRelation rel = random_regular(p, h, rng);
      const auto layers = decompose_into_1_relations(rel);
      expect_valid_decomposition(rel, layers, h);
      // An h-regular relation needs at least h layers.
      EXPECT_EQ(static_cast<Time>(layers.size()), h);
      // Each layer of a regular relation is a full permutation here? Not
      // necessarily, but total size must be p*h.
    }
  }
}

TEST(Decompose, IrregularRelationStaysWithinDegree) {
  core::Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    const HRelation rel = random_messages(24, 600, rng);
    const auto layers = decompose_into_1_relations(rel);
    expect_valid_decomposition(rel, layers, rel.degree());
  }
}

TEST(Decompose, HotspotDecomposesIntoFanIn) {
  const HRelation rel = hotspot(10, 0, 2);
  const auto layers = decompose_into_1_relations(rel);
  // Degree = 18 (proc 0 receives 18); each layer can carry only 1 message
  // to proc 0, so exactly 18 layers of size 1.
  expect_valid_decomposition(rel, layers, 18);
  EXPECT_EQ(layers.size(), 18u);
  for (const auto& layer : layers) EXPECT_EQ(layer.size(), 1u);
}

TEST(Decompose, EmptyRelation) {
  const HRelation rel(5);
  EXPECT_TRUE(decompose_into_1_relations(rel).empty());
}

TEST(Decompose, SingleMessage) {
  HRelation rel(3);
  rel.add(2, 0, 42);
  const auto layers = decompose_into_1_relations(rel);
  ASSERT_EQ(layers.size(), 1u);
  ASSERT_EQ(layers[0].size(), 1u);
  EXPECT_EQ(layers[0][0].payload, 42);
}

TEST(Decompose, ParallelEdgesSplitAcrossLayers) {
  // Two identical messages (a multigraph edge of multiplicity 2) must land
  // in different layers.
  HRelation rel(4);
  rel.add(1, 2, 7, 0);
  rel.add(1, 2, 8, 1);
  const auto layers = decompose_into_1_relations(rel);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].size(), 1u);
  EXPECT_EQ(layers[1].size(), 1u);
}

TEST(Decompose, IsPartialPermutationDetectsViolations) {
  EXPECT_TRUE(is_partial_permutation(4, {}));
  EXPECT_TRUE(is_partial_permutation(
      4, {Message{0, 1, 0, 0}, Message{1, 0, 0, 0}}));
  // Shared source.
  EXPECT_FALSE(is_partial_permutation(
      4, {Message{0, 1, 0, 0}, Message{0, 2, 0, 0}}));
  // Shared destination.
  EXPECT_FALSE(is_partial_permutation(
      4, {Message{0, 2, 0, 0}, Message{1, 2, 0, 0}}));
  // Out of range.
  EXPECT_FALSE(is_partial_permutation(2, {Message{0, 5, 0, 0}}));
}

TEST(Decompose, StressManyShapes) {
  core::Rng rng(13);
  for (const ProcId p : {2, 3, 8, 50}) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto m = static_cast<std::int64_t>(rng.below(400));
      const HRelation rel = random_messages(p, m, rng);
      const auto layers = decompose_into_1_relations(rel);
      expect_valid_decomposition(rel, layers, rel.degree());
    }
  }
}

}  // namespace
}  // namespace bsplogp::routing

#include "src/routing/h_relation.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace bsplogp::routing {
namespace {

TEST(HRelation, DegreeIsMaxOfInAndOut) {
  HRelation rel(4);
  rel.add(0, 1);
  rel.add(0, 2);
  rel.add(0, 3);
  rel.add(1, 3);
  EXPECT_EQ(rel.max_out_degree(), 3);  // proc 0 sends 3
  EXPECT_EQ(rel.max_in_degree(), 2);   // proc 3 receives 2
  EXPECT_EQ(rel.degree(), 3);
}

TEST(HRelation, EmptyRelationHasDegreeZero) {
  HRelation rel(8);
  EXPECT_EQ(rel.degree(), 0);
  EXPECT_EQ(rel.size(), 0u);
}

TEST(HRelation, RandomRegularHasExactDegree) {
  core::Rng rng(3);
  for (const ProcId p : {2, 5, 16, 33}) {
    for (const Time h : {1, 3, 8}) {
      const HRelation rel = random_regular(p, h, rng);
      EXPECT_EQ(rel.size(), static_cast<std::size_t>(p) *
                                static_cast<std::size_t>(h));
      for (const Time d : rel.out_degrees()) EXPECT_EQ(d, h);
      for (const Time d : rel.in_degrees()) EXPECT_EQ(d, h);
      for (const Message& m : rel.messages()) EXPECT_NE(m.src, m.dst);
    }
  }
}

TEST(HRelation, RandomSendsHasExactOutDegree) {
  core::Rng rng(4);
  const HRelation rel = random_sends(16, 10, rng);
  for (const Time d : rel.out_degrees()) EXPECT_EQ(d, 10);
  EXPECT_GE(rel.max_in_degree(), 10);  // some processor is above average
  for (const Message& m : rel.messages()) EXPECT_NE(m.src, m.dst);
}

TEST(HRelation, RandomPermutationIsOneRelation) {
  core::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const HRelation rel = random_permutation(64, rng);
    EXPECT_EQ(rel.degree(), 1);
    EXPECT_EQ(rel.size(), 64u);
    for (const Message& m : rel.messages()) EXPECT_NE(m.src, m.dst);
  }
}

TEST(HRelation, PartialPermutationRespectsFill) {
  core::Rng rng(6);
  const HRelation rel = random_permutation(1000, rng, 0.3);
  EXPECT_LE(rel.degree(), 1);
  EXPECT_GT(rel.size(), 200u);
  EXPECT_LT(rel.size(), 400u);
}

TEST(HRelation, HotspotShape) {
  const HRelation rel = hotspot(9, 4, 3);
  EXPECT_EQ(rel.size(), 8u * 3u);
  EXPECT_EQ(rel.max_in_degree(), 24);
  EXPECT_EQ(rel.max_out_degree(), 3);
  EXPECT_EQ(rel.in_degrees()[4], 24);
}

TEST(HRelation, RandomMessagesDegreeConcentrates) {
  core::Rng rng(7);
  const ProcId p = 64;
  const std::int64_t m = 64 * 50;
  const HRelation rel = random_messages(p, m, rng);
  EXPECT_EQ(rel.size(), static_cast<std::size_t>(m));
  // mean degree 50; max should be within a small factor.
  EXPECT_LT(rel.degree(), 110);
  EXPECT_GT(rel.degree(), 50);
}

}  // namespace
}  // namespace bsplogp::routing

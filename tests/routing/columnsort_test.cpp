#include "src/routing/columnsort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/rng.h"

namespace bsplogp::routing {
namespace {

TEST(Columnsort, ApplicabilityRule) {
  EXPECT_TRUE(columnsort_applicable(8, 2));     // 8 >= 2*1, 2 | 8
  EXPECT_TRUE(columnsort_applicable(32, 4));    // 32 >= 2*9=18, 4 | 32
  EXPECT_FALSE(columnsort_applicable(16, 4));   // 16 < 18
  EXPECT_FALSE(columnsort_applicable(18, 4));   // 4 does not divide 18
  EXPECT_TRUE(columnsort_applicable(100, 1));   // single column
  EXPECT_FALSE(columnsort_applicable(0, 3));
}

TEST(Columnsort, TransposeMapsAreInverse) {
  for (const std::int64_t r : {8, 32, 64}) {
    for (const std::int64_t s : {2, 4, 8}) {
      for (std::int64_t c = 0; c < s; ++c)
        for (std::int64_t i = 0; i < r; ++i) {
          const MatrixPos from{c, i};
          const MatrixPos mid = transpose_pos(r, s, from);
          EXPECT_GE(mid.col, 0);
          EXPECT_LT(mid.col, s);
          EXPECT_GE(mid.row, 0);
          EXPECT_LT(mid.row, r);
          EXPECT_EQ(untranspose_pos(r, s, mid), from);
        }
    }
  }
}

TEST(Columnsort, TransposeIsABijection) {
  const std::int64_t r = 32, s = 4;
  std::vector<int> hit(static_cast<std::size_t>(r * s), 0);
  for (std::int64_t c = 0; c < s; ++c)
    for (std::int64_t i = 0; i < r; ++i) {
      const MatrixPos to = transpose_pos(r, s, MatrixPos{c, i});
      hit[static_cast<std::size_t>(to.col * r + to.row)] += 1;
    }
  for (const int hcount : hit) EXPECT_EQ(hcount, 1);
}

TEST(Columnsort, TransposeDealsColumnsEvenly) {
  // Each source column's records spread across destination columns in
  // near-equal shares — this is what bounds the per-destination load of the
  // LogP redistribution rounds.
  const std::int64_t r = 32, s = 4;
  for (std::int64_t c = 0; c < s; ++c) {
    std::vector<int> per_dst(static_cast<std::size_t>(s), 0);
    for (std::int64_t i = 0; i < r; ++i)
      per_dst[static_cast<std::size_t>(
          transpose_pos(r, s, MatrixPos{c, i}).col)] += 1;
    for (const int k : per_dst) EXPECT_EQ(k, r / s);
  }
}

void expect_sorts(std::int64_t r, std::int64_t s, core::Rng& rng,
                  std::int64_t key_range) {
  std::vector<std::vector<Word>> cols(static_cast<std::size_t>(s));
  std::vector<Word> all;
  for (auto& col : cols)
    for (std::int64_t i = 0; i < r; ++i) {
      col.push_back(rng.uniform(0, key_range));
      all.push_back(col.back());
    }
  columnsort(cols);
  std::sort(all.begin(), all.end());
  std::vector<Word> got;
  for (const auto& col : cols) got.insert(got.end(), col.begin(), col.end());
  ASSERT_EQ(got, all) << "r=" << r << " s=" << s;
}

TEST(Columnsort, SortsRandomInputs) {
  core::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    expect_sorts(8, 2, rng, 1'000'000);
    expect_sorts(32, 4, rng, 1'000'000);
    expect_sorts(128, 8, rng, 1'000'000);
  }
}

TEST(Columnsort, SortsSmallKeyRanges) {
  // Destination-keyed sorting (keys in [0, p]) is the Theorem-2 use case;
  // heavy duplication is the norm there.
  core::Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    expect_sorts(32, 4, rng, 4);
    expect_sorts(128, 8, rng, 8);
    expect_sorts(98, 7, rng, 2);
  }
}

TEST(Columnsort, AdversarialPatterns) {
  for (const bool reversed : {false, true}) {
    const std::int64_t r = 72, s = 6;
    std::vector<std::vector<Word>> cols(static_cast<std::size_t>(s));
    std::vector<Word> all;
    for (std::int64_t c = 0; c < s; ++c)
      for (std::int64_t i = 0; i < r; ++i) {
        const Word v = reversed ? (r * s - (c * r + i)) : ((c * r + i) % 9);
        cols[static_cast<std::size_t>(c)].push_back(v);
        all.push_back(v);
      }
    columnsort(cols);
    std::sort(all.begin(), all.end());
    std::vector<Word> got;
    for (const auto& col : cols)
      got.insert(got.end(), col.begin(), col.end());
    EXPECT_EQ(got, all);
  }
}

TEST(Columnsort, SingleColumnDegenerate) {
  std::vector<std::vector<Word>> cols{{5, 3, 1, 4, 2}};
  columnsort(cols);
  EXPECT_EQ(cols[0], (std::vector<Word>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace bsplogp::routing

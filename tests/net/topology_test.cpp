#include "src/net/topology.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bsplogp::net {
namespace {

TEST(Topology, RingShape) {
  const Topology t = make_topology(TopologyKind::Ring, 10);
  EXPECT_EQ(t.size(), 10);
  EXPECT_EQ(t.nprocs(), 10);
  EXPECT_EQ(t.max_degree(), 2);
  EXPECT_EQ(t.diameter(), 5);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, Mesh2DShape) {
  const Topology t = make_topology(TopologyKind::Mesh2D, 16);
  EXPECT_EQ(t.size(), 16);  // 4x4 torus
  EXPECT_EQ(t.max_degree(), 4);
  EXPECT_EQ(t.diameter(), 4);  // 2 + 2 with wraparound
}

TEST(Topology, Mesh2DRoundsUp) {
  const Topology t = make_topology(TopologyKind::Mesh2D, 10);
  EXPECT_EQ(t.size(), 16);  // next square
}

TEST(Topology, Mesh3DShape) {
  const Topology t = make_topology(TopologyKind::Mesh3D, 27);
  EXPECT_EQ(t.size(), 27);
  EXPECT_EQ(t.max_degree(), 6);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, HypercubeShape) {
  const Topology t = make_topology(TopologyKind::HypercubeMulti, 32);
  EXPECT_EQ(t.size(), 32);
  EXPECT_EQ(t.max_degree(), 5);
  EXPECT_EQ(t.diameter(), 5);  // = dimension
  EXPECT_FALSE(t.single_port());
  const Topology s = make_topology(TopologyKind::HypercubeSingle, 32);
  EXPECT_TRUE(s.single_port());
}

TEST(Topology, ButterflyShape) {
  const Topology t = make_topology(TopologyKind::Butterfly, 32);
  // n * 2^n >= 32: n = 3 gives 24 < 32, n = 4 gives 64.
  EXPECT_EQ(t.size(), 64);
  EXPECT_EQ(t.max_degree(), 4);  // 2 forward + 2 backward edges
  EXPECT_TRUE(t.connected());
  EXPECT_GE(t.diameter(), 4);
  EXPECT_LE(t.diameter(), 10);  // O(n)
}

TEST(Topology, CccShape) {
  const Topology t = make_topology(TopologyKind::CubeConnectedCycles, 24);
  EXPECT_EQ(t.size(), 24);  // 3 * 2^3
  EXPECT_EQ(t.max_degree(), 3);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, ShuffleExchangeShape) {
  const Topology t = make_topology(TopologyKind::ShuffleExchange, 16);
  EXPECT_EQ(t.size(), 16);
  EXPECT_LE(t.max_degree(), 3);
  EXPECT_TRUE(t.connected());
  EXPECT_LE(t.diameter(), 2 * 4);  // 2 log p
}

TEST(Topology, MeshOfTreesShape) {
  const Topology t = make_topology(TopologyKind::MeshOfTrees, 16);
  EXPECT_EQ(t.nprocs(), 16);            // 4x4 leaves
  EXPECT_GT(t.size(), t.nprocs());      // internal tree nodes exist
  EXPECT_EQ(t.size(), 16 + 2 * 4 * 3);  // 2 * side * (side - 1) internals
  EXPECT_TRUE(t.connected());
  // Leaves sit in one row tree and one column tree.
  for (ProcId i = 0; i < 16; ++i)
    EXPECT_EQ(t.neighbors(t.processors()[static_cast<std::size_t>(i)]).size(),
              2u);
}

class AllTopologies : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(AllTopologies, BasicInvariants) {
  for (const ProcId p : {8, 16, 64}) {
    const Topology t = make_topology(GetParam(), p);
    EXPECT_GE(t.nprocs(), p);
    EXPECT_TRUE(t.connected());
    EXPECT_GT(t.analytic_gamma(), 0.0);
    EXPECT_GT(t.analytic_delta(), 0.0);
    // Adjacency is symmetric.
    for (NodeId v = 0; v < t.size(); ++v)
      for (const NodeId u : t.neighbors(v)) {
        const auto& back = t.neighbors(u);
        EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
            << to_string(GetParam()) << " edge " << v << "-" << u;
      }
    // Diameter is at least the analytic delta's order (sanity) and finite.
    EXPECT_GE(t.diameter(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllTopologies,
    ::testing::Values(TopologyKind::Ring, TopologyKind::Mesh2D,
                      TopologyKind::Mesh3D, TopologyKind::HypercubeMulti,
                      TopologyKind::HypercubeSingle, TopologyKind::Butterfly,
                      TopologyKind::CubeConnectedCycles,
                      TopologyKind::ShuffleExchange,
                      TopologyKind::MeshOfTrees),
    [](const auto& info) {
      std::string name = to_string(info.param);
      std::erase(name, '-');
      return name;
    });

TEST(Topology, DiameterTracksAnalyticDelta) {
  // Within each family the measured diameter should scale like delta(p).
  for (const auto kind :
       {TopologyKind::Ring, TopologyKind::Mesh2D,
        TopologyKind::HypercubeMulti}) {
    const Topology small = make_topology(kind, 16);
    const Topology big = make_topology(kind, 256);
    const double measured_ratio =
        static_cast<double>(big.diameter()) /
        static_cast<double>(small.diameter());
    const double analytic_ratio =
        big.analytic_delta() / small.analytic_delta();
    EXPECT_NEAR(measured_ratio, analytic_ratio, analytic_ratio * 0.5 + 0.5)
        << to_string(kind);
  }
}

}  // namespace
}  // namespace bsplogp::net

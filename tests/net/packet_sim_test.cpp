#include "src/net/packet_sim.h"

#include <gtest/gtest.h>

#include "src/core/rng.h"

namespace bsplogp::net {
namespace {

TEST(PacketSim, SingleMessageTakesDistanceSteps) {
  const PacketSim sim(make_topology(TopologyKind::Ring, 8));
  routing::HRelation rel(8);
  rel.add(0, 4);  // antipodal on the ring: distance 4
  const auto res = sim.route(rel, {});
  EXPECT_EQ(res.steps, 4);
  EXPECT_EQ(res.packets, 1);
  EXPECT_EQ(res.total_hops, 4);
  EXPECT_FALSE(res.timed_out);
}

TEST(PacketSim, EmptyRelationIsFree) {
  const PacketSim sim(make_topology(TopologyKind::Mesh2D, 16));
  const auto res = sim.route(routing::HRelation(16), {});
  EXPECT_EQ(res.steps, 0);
}

TEST(PacketSim, PermutationCompletesOnEveryTopology) {
  core::Rng rng(17);
  for (const auto kind :
       {TopologyKind::Ring, TopologyKind::Mesh2D, TopologyKind::Mesh3D,
        TopologyKind::HypercubeMulti, TopologyKind::HypercubeSingle,
        TopologyKind::Butterfly, TopologyKind::CubeConnectedCycles,
        TopologyKind::ShuffleExchange, TopologyKind::MeshOfTrees}) {
    const PacketSim sim(make_topology(kind, 16));
    const auto rel =
        routing::random_permutation(sim.topology().nprocs(), rng);
    const auto res = sim.route(rel, {});
    EXPECT_FALSE(res.timed_out) << to_string(kind);
    EXPECT_GT(res.steps, 0) << to_string(kind);
    EXPECT_GE(res.steps, 1);
    // Every packet walked at least a shortest path's worth of hops.
    EXPECT_GE(res.total_hops, static_cast<std::int64_t>(rel.size()));
  }
}

TEST(PacketSim, HRelationScalesWithH) {
  core::Rng rng(19);
  const PacketSim sim(make_topology(TopologyKind::Mesh2D, 64));
  auto steps_at = [&](Time h) {
    const auto rel = routing::random_regular(64, h, rng);
    return sim.route(rel, {}).steps;
  };
  const Time t1 = steps_at(1);
  const Time t16 = steps_at(16);
  EXPECT_GT(t16, t1);
  EXPECT_LT(t16, 64 * t1);  // far from serial: pipelining works
}

TEST(PacketSim, SinglePortIsSlowerThanMultiPort) {
  core::Rng rng(23);
  const auto rel = routing::random_regular(32, 8, rng);
  const PacketSim multi(make_topology(TopologyKind::HypercubeMulti, 32));
  const PacketSim single(make_topology(TopologyKind::HypercubeSingle, 32));
  const auto tm = multi.route(rel, {}).steps;
  const auto ts = single.route(rel, {}).steps;
  EXPECT_GT(ts, tm);
}

TEST(PacketSim, ValiantHandlesAdversarialPattern) {
  // Bit-reversal-like pattern on a mesh concentrates direct routes;
  // Valiant's random intermediate must complete within a sane bound and
  // deliver everything.
  const ProcId p = 64;
  const PacketSim sim(make_topology(TopologyKind::Mesh2D, p));
  routing::HRelation rel(p);
  for (ProcId i = 0; i < p; ++i) {
    const ProcId j = static_cast<ProcId>(p - 1 - i);
    if (j != i) rel.add(i, j);
  }
  PacketSim::Options direct;
  PacketSim::Options valiant;
  valiant.valiant = true;
  valiant.seed = 5;
  const auto rd = sim.route(rel, direct);
  const auto rv = sim.route(rel, valiant);
  EXPECT_FALSE(rd.timed_out);
  EXPECT_FALSE(rv.timed_out);
  EXPECT_LE(rv.steps, 4 * rd.steps + 32);  // no catastrophic blowup
}

TEST(PacketSim, TimesOutOnTinyBudget) {
  core::Rng rng(29);
  const PacketSim sim(make_topology(TopologyKind::Ring, 64));
  const auto rel = routing::random_regular(64, 8, rng);
  PacketSim::Options opt;
  opt.max_steps = 2;
  EXPECT_TRUE(sim.route(rel, opt).timed_out);
}

TEST(PacketSim, FitRecoversRingBandwidth) {
  // On a p-ring, a random h-relation needs ~ h*p/4 steps (bisection):
  // gamma_hat should scale linearly with p.
  const std::vector<Time> hs{1, 2, 4, 8, 16};
  const PacketSim sim32(make_topology(TopologyKind::Ring, 32));
  const PacketSim sim64(make_topology(TopologyKind::Ring, 64));
  const auto f32 = fit_route_params(sim32, hs, 3, 7);
  const auto f64 = fit_route_params(sim64, hs, 3, 7);
  EXPECT_GT(f32.gamma_hat(), 0.0);
  const double ratio = f64.gamma_hat() / f32.gamma_hat();
  EXPECT_GT(ratio, 1.4);  // doubling p should ~double gamma
  EXPECT_LT(ratio, 3.0);
  EXPECT_GT(f64.fit.r_squared, 0.95);
}

TEST(PacketSim, FitHypercubeGammaNearlyConstant) {
  const std::vector<Time> hs{1, 2, 4, 8, 16};
  const PacketSim sim16(make_topology(TopologyKind::HypercubeMulti, 16));
  const PacketSim sim128(make_topology(TopologyKind::HypercubeMulti, 128));
  const auto f16 = fit_route_params(sim16, hs, 3, 11);
  const auto f128 = fit_route_params(sim128, hs, 3, 11);
  // Table 1: gamma = 1 for the multi-port hypercube; the fitted slope must
  // not grow materially with p.
  EXPECT_LT(f128.gamma_hat() / std::max(f16.gamma_hat(), 0.1), 2.5);
}

TEST(PacketSim, DeterministicPerSeed) {
  core::Rng rng(31);
  const PacketSim sim(make_topology(TopologyKind::Mesh2D, 16));
  const auto rel = routing::random_regular(16, 4, rng);
  PacketSim::Options opt;
  opt.seed = 77;
  EXPECT_EQ(sim.route(rel, opt).steps, sim.route(rel, opt).steps);
}

}  // namespace
}  // namespace bsplogp::net

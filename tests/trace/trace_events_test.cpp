// The trace subsystem against the machines that feed it: event streams
// must narrate exactly what the engines did (counts match RunStats, spans
// match the stall accounting), must be identical across scheduler cores,
// and must never perturb the execution they observe.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <utility>
#include <vector>

#include "src/bsp/machine.h"
#include "src/logp/machine.h"
#include "src/trace/sink.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"
#include "src/xsim/logp_on_bsp.h"

namespace bsplogp::trace {
namespace {

// Workload throughout: workload::hotspot — p-1 senders overrun processor
// 0's capacity, so the stream contains every LogP event kind (submits,
// stalls, deliveries, acquisitions, gap waits, queue samples).

logp::RunStats run_logp(const std::vector<logp::ProgramFn>& progs, ProcId p,
                        const logp::Params& prm, TraceSink* sink,
                        logp::SchedulerKind sched = logp::SchedulerKind::Bucket) {
  logp::Machine::Options o;
  o.scheduler = sched;
  o.sink = sink;
  logp::Machine m(p, prm, o);
  return m.run(std::span<const logp::ProgramFn>(progs));
}

TEST(TraceEvents, LogpRunLifecycleAndCountsMatchRunStats) {
  const ProcId p = 9;
  const logp::Params prm{16, 1, 4};
  const auto progs = workload::hotspot(p, 3);
  RecordingSink rec;
  const logp::RunStats st = run_logp(progs, p, prm, &rec);

  EXPECT_EQ(rec.runs(), 1);
  EXPECT_EQ(rec.info().machine, "logp");
  EXPECT_EQ(rec.info().nprocs, p);
  EXPECT_EQ(rec.info().L, prm.L);
  EXPECT_EQ(rec.info().capacity, prm.capacity());
  EXPECT_EQ(rec.finish(), st.finish_time);

  std::int64_t submits = 0, accepts = 0, deliveries = 0, acquires = 0,
               stall_ends = 0;
  Time stall_total = 0;
  for (const Event& e : rec.events()) {
    switch (e.kind) {
      case EventKind::Submit: submits += 1; break;
      case EventKind::Accept:
        accepts += 1;
        EXPECT_GE(e.t, e.t2);  // acceptance at or after submission
        break;
      case EventKind::Delivery: deliveries += 1; break;
      case EventKind::Acquire: acquires += 1; break;
      case EventKind::StallEnd:
        stall_ends += 1;
        EXPECT_GT(e.t, e.t2);  // stall spans are strictly positive
        stall_total += e.t - e.t2;
        break;
      default: break;
    }
  }
  EXPECT_EQ(submits, st.messages_submitted);
  EXPECT_EQ(accepts, st.messages_submitted);  // every message gets accepted
  EXPECT_EQ(deliveries, st.messages);
  EXPECT_EQ(acquires, st.messages_acquired);
  EXPECT_EQ(stall_ends, st.stall_events);
  EXPECT_EQ(stall_total, st.stall_time_total);
  EXPECT_GT(st.stall_events, 0);  // the workload actually stalls
}

TEST(TraceEvents, PerProcessorTimestampsNonDecreasingPerKind) {
  const ProcId p = 9;
  const auto progs = workload::hotspot(p, 2);
  RecordingSink rec;
  run_logp(progs, p, logp::Params{16, 1, 4}, &rec);
  // Per (proc, kind), discovery order is non-decreasing in t — the sink
  // contract documented in sink.h.
  std::map<std::pair<ProcId, EventKind>, Time> last;
  for (const Event& e : rec.events()) {
    auto& prev = last[{e.proc, e.kind}];
    EXPECT_LE(prev, e.t) << "kind " << kind_name(e.kind) << " proc "
                         << e.proc;
    prev = e.t;
  }
}

TEST(TraceEvents, StreamsIdenticalAcrossSchedulerKinds) {
  const ProcId p = 12;
  const logp::Params prm{12, 1, 3};
  const auto progs = workload::hotspot(p, 2);
  RecordingSink bucket, heap;
  run_logp(progs, p, prm, &bucket, logp::SchedulerKind::Bucket);
  run_logp(progs, p, prm, &heap, logp::SchedulerKind::ReferenceHeap);
  // The determinism guard extends to the trace: both cores narrate the
  // exact same event sequence, element for element.
  EXPECT_EQ(bucket.events().size(), heap.events().size());
  EXPECT_TRUE(bucket.events() == heap.events());
}

TEST(TraceEvents, TracingNeverPerturbsTheRun) {
  const ProcId p = 9;
  const logp::Params prm{16, 1, 4};
  const auto progs = workload::hotspot(p, 3);
  RecordingSink rec;
  const logp::RunStats traced = run_logp(progs, p, prm, &rec);
  const logp::RunStats bare = run_logp(progs, p, prm, nullptr);
  EXPECT_TRUE(traced == bare);
}

TEST(TraceEvents, BspSuperstepRecordsCarryTheCostDecomposition) {
  const ProcId p = 4;
  const bsp::Params prm{3, 17};
  auto progs = bsp::make_programs(p, [](bsp::Ctx& c) {
    c.charge(5);
    c.send(static_cast<ProcId>((c.pid() + 1) % c.nprocs()), 1);
    return c.superstep() < 2;
  });
  RecordingSink rec;
  bsp::Machine::Options o;
  o.sink = &rec;
  bsp::Machine m(p, prm, o);
  const bsp::RunStats st = m.run(progs);

  EXPECT_EQ(rec.info().machine, "bsp");
  EXPECT_EQ(rec.info().g, prm.g);
  EXPECT_EQ(rec.info().l, prm.l);
  EXPECT_EQ(rec.finish(), st.finish_time);

  std::vector<Event> begins, ends;
  for (const Event& e : rec.events()) {
    if (e.kind == EventKind::SuperstepBegin) begins.push_back(e);
    if (e.kind == EventKind::SuperstepEnd) ends.push_back(e);
  }
  ASSERT_EQ(static_cast<std::int64_t>(begins.size()), st.supersteps);
  ASSERT_EQ(begins.size(), ends.size());
  ASSERT_EQ(st.trace.size(), ends.size());
  Time cost = 0;
  for (std::size_t s = 0; s < ends.size(); ++s) {
    EXPECT_EQ(begins[s].idx, static_cast<std::int64_t>(s));
    EXPECT_EQ(begins[s].t, cost);       // cumulative cost before
    EXPECT_EQ(ends[s].t2, cost);        // interval start == begin time
    EXPECT_EQ(ends[s].a, st.trace[s].w);
    EXPECT_EQ(ends[s].b, st.trace[s].h);
    cost += st.trace[s].total(prm);
    EXPECT_EQ(ends[s].t, cost);
  }
  EXPECT_EQ(cost, st.finish_time);
}

TEST(TraceEvents, BspOnLogpEmitsBalancedPhaseMarkers) {
  const ProcId p = 4;
  auto progs = bsp::make_programs(p, [p](bsp::Ctx& c) {
    for (ProcId d = 0; d < p; ++d)
      if (d != c.pid()) c.send(d, c.pid());
    return c.superstep() < 1;
  });
  RecordingSink rec;
  xsim::BspOnLogpOptions opt;
  opt.engine.sink = &rec;
  xsim::BspOnLogp sim(p, logp::Params{8, 1, 2}, opt);
  const auto rep = sim.run(progs);
  ASSERT_GT(rep.supersteps, 0);

  // The protocol narrates its phases on top of the engine's message-level
  // events: every processor opens and closes each phase it enters, and a
  // superstep that routes traffic passes through all five.
  std::map<std::pair<ProcId, std::int64_t>, std::int64_t> open;
  std::int64_t seen_phase[kNumSimPhases] = {};
  for (const Event& e : rec.events()) {
    if (e.kind == EventKind::PhaseBegin) {
      open[{e.proc, e.a}] += 1;
      seen_phase[e.a] += 1;
    } else if (e.kind == EventKind::PhaseEnd) {
      const std::int64_t depth = (open[{e.proc, e.a}] -= 1);
      EXPECT_GE(depth, 0);
    }
  }
  for (const auto& [key, depth] : open) EXPECT_EQ(depth, 0);
  for (int ph = 0; ph < kNumSimPhases; ++ph)
    EXPECT_GT(seen_phase[ph], 0)
        << "phase " << phase_name(static_cast<SimPhase>(ph)) << " missing";
  // The engine's own events ride the same stream.
  std::int64_t deliveries = 0;
  for (const Event& e : rec.events())
    if (e.kind == EventKind::Delivery) deliveries += 1;
  EXPECT_EQ(deliveries, rep.logp.messages);
}

TEST(TraceEvents, LogpOnBspReportsSimulatedLogpInteractions) {
  const ProcId p = 4;
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([p](logp::Proc& pr) -> logp::Task<> {
      co_await pr.send(static_cast<ProcId>((pr.id() + 1) % p), 7);
      (void)co_await pr.recv();
    });
  RecordingSink rec;
  xsim::LogpOnBspOptions opt;
  opt.bsp = bsp::Params{4, 16};
  opt.sink = &rec;
  xsim::LogpOnBsp sim(p, logp::Params{8, 1, 2}, opt);
  const auto rep = sim.run(std::span<const logp::ProgramFn>(progs));
  ASSERT_TRUE(rep.capacity_ok);

  // The host BSP machine owns the run (superstep records); the simulated
  // LogP interactions ride inside it at LogP model times.
  EXPECT_EQ(rec.info().machine, "bsp");
  std::int64_t submits = 0, accepts = 0, deliveries = 0, acquires = 0,
               supersteps = 0;
  for (const Event& e : rec.events()) {
    switch (e.kind) {
      case EventKind::Submit: submits += 1; break;
      case EventKind::Accept: accepts += 1; break;
      case EventKind::Delivery: deliveries += 1; break;
      case EventKind::Acquire: acquires += 1; break;
      case EventKind::SuperstepEnd: supersteps += 1; break;
      default: break;
    }
  }
  EXPECT_EQ(submits, p);  // one send per processor
  EXPECT_EQ(accepts, p);
  EXPECT_EQ(deliveries, p);
  EXPECT_EQ(acquires, p);
  EXPECT_EQ(supersteps, rep.bsp.supersteps);
}

TEST(TraceEvents, TeeSinkFansOutToAllChildren) {
  const ProcId p = 5;
  const auto progs = workload::hotspot(p, 1);
  RecordingSink a, b;
  TeeSink tee({&a, &b});
  run_logp(progs, p, logp::Params{8, 1, 2}, &tee);
  EXPECT_EQ(a.runs(), 1);
  EXPECT_EQ(b.runs(), 1);
  EXPECT_FALSE(a.events().empty());
  EXPECT_TRUE(a.events() == b.events());
}

}  // namespace
}  // namespace bsplogp::trace

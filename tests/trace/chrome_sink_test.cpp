// ChromeTraceSink: the exported document must be valid JSON of the trace
// event "JSON Object Format" (a traceEvents array), and its rows must
// round-trip the event stream (one row per drawable event, metadata rows
// naming every processor track).
//
// Well-formedness is checked with the shared minimal JSON parser
// (tests/support/json.h) — the repo has no JSON dependency, and
// hand-checking strings would not prove well-formedness.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/logp/machine.h"
#include "src/trace/chrome_sink.h"
#include "src/workload/workload.h"
#include "tests/support/json.h"

namespace bsplogp::trace {
namespace {

using testsupport::JsonParser;
using testsupport::JsonValue;

// ---- The traced workload ----------------------------------------------------

logp::RunStats traced_run(ChromeTraceSink& sink, ProcId p) {
  const auto progs = workload::hotspot(p, /*k=*/1);
  logp::Machine::Options o;
  o.sink = &sink;
  logp::Machine m(p, logp::Params{16, 1, 4}, o);
  return m.run(std::span<const logp::ProgramFn>(progs));
}

TEST(ChromeTraceSink, DocumentParsesAsJson) {
  ChromeTraceSink sink;
  traced_run(sink, 9);
  std::ostringstream os;
  sink.write(os);
  const std::string doc = os.str();
  JsonValue root;
  ASSERT_TRUE(JsonParser(doc).parse(root)) << doc.substr(0, 200);
  ASSERT_EQ(root.type, JsonValue::Type::Object);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->type, JsonValue::Type::Array);
}

TEST(ChromeTraceSink, RowsRoundTripEventAndMetadataCounts) {
  const ProcId p = 9;
  ChromeTraceSink sink;
  const logp::RunStats st = traced_run(sink, p);

  std::ostringstream os;
  sink.write(os);
  const std::string doc = os.str();
  JsonValue root;
  ASSERT_TRUE(JsonParser(doc).parse(root));
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::int64_t meta = 0, drawable = 0, instants = 0, deliveries = 0;
  for (const JsonValue& row : events->array) {
    ASSERT_EQ(row.type, JsonValue::Type::Object);
    const JsonValue* ph = row.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(row.find("pid"), nullptr);
    ASSERT_NE(row.find("tid"), nullptr);
    ASSERT_NE(row.find("name"), nullptr);
    if (ph->str == "M") {
      meta += 1;
    } else {
      drawable += 1;
      ASSERT_NE(row.find("ts"), nullptr);
      if (ph->str == "X") {
        ASSERT_NE(row.find("dur"), nullptr);
      }
    }
    if (ph->str == "i") instants += 1;
    if (row.find("name")->str == "delivery") deliveries += 1;
  }
  // One process_name + p thread names + the machine track.
  EXPECT_EQ(meta, 1 + p + 1);
  EXPECT_EQ(drawable, sink.event_rows());
  EXPECT_GT(instants, 0);
  EXPECT_EQ(deliveries, st.messages);
  EXPECT_EQ(sink.runs(), 1);
}

TEST(ChromeTraceSink, MultipleRunsGetDistinctPids) {
  ChromeTraceSink sink;
  traced_run(sink, 5);
  traced_run(sink, 5);
  std::ostringstream os;
  sink.write(os);
  const std::string doc = os.str();
  JsonValue root;
  ASSERT_TRUE(JsonParser(doc).parse(root));
  std::map<double, int> rows_per_pid;
  for (const JsonValue& row : root.find("traceEvents")->array)
    rows_per_pid[row.find("pid")->number] += 1;
  EXPECT_EQ(sink.runs(), 2);
  EXPECT_EQ(rows_per_pid.size(), 2u);  // one Perfetto process per run
}

TEST(ChromeTraceSink, EscapedStringsStayValidJson) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  const std::string doc = "{\"k\": \"" + json_escape("\"\\\n\t\x01") + "\"}";
  JsonValue root;
  EXPECT_TRUE(JsonParser(doc).parse(root));
}

TEST(ChromeTraceSink, AutoWritePathRewritesAtRunEnd) {
  const std::string path =
      ::testing::TempDir() + "/bsplogp_chrome_sink_test.json";
  ChromeTraceSink sink(path);
  traced_run(sink, 5);  // run_end writes the file
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string doc = buf.str();
  JsonValue root;
  EXPECT_TRUE(JsonParser(doc).parse(root)) << doc.substr(0, 200);
}

}  // namespace
}  // namespace bsplogp::trace

// ChromeTraceSink: the exported document must be valid JSON of the trace
// event "JSON Object Format" (a traceEvents array), and its rows must
// round-trip the event stream (one row per drawable event, metadata rows
// naming every processor track).
//
// The test carries its own minimal JSON parser — the repo has no JSON
// dependency, and hand-checking strings would not prove well-formedness.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/logp/machine.h"
#include "src/trace/chrome_sink.h"

namespace bsplogp::trace {
namespace {

// ---- Minimal JSON parser (values become a tagged tree) ----------------------

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      pos_ += 1;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = JsonValue::Type::String;
      return string(out.str);
    }
    if (c == 't') {
      out.type = JsonValue::Type::Bool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = JsonValue::Type::Bool;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    return number(out);
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    pos_ += 1;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        pos_ += 1;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return false;
            pos_ += 4;  // keep the escape opaque; well-formedness only
            out += '?';
            break;
          default: return false;
        }
        pos_ += 1;
      } else {
        out += s_[pos_];
        pos_ += 1;
      }
    }
    if (pos_ >= s_.size()) return false;
    pos_ += 1;  // closing quote
    return true;
  }
  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) pos_ += 1;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      pos_ += 1;
    if (pos_ == start) return false;
    out.type = JsonValue::Type::Number;
    out.number = std::stod(s_.substr(start, pos_ - start));
    return true;
  }
  bool array(JsonValue& out) {
    out.type = JsonValue::Type::Array;
    pos_ += 1;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      pos_ += 1;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        pos_ += 1;
        continue;
      }
      if (s_[pos_] == ']') {
        pos_ += 1;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue& out) {
    out.type = JsonValue::Type::Object;
    pos_ += 1;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      pos_ += 1;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      pos_ += 1;
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        pos_ += 1;
        continue;
      }
      if (s_[pos_] == '}') {
        pos_ += 1;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- The traced workload ----------------------------------------------------

std::vector<logp::ProgramFn> hotspot(ProcId p) {
  std::vector<logp::ProgramFn> progs;
  progs.emplace_back([p](logp::Proc& pr) -> logp::Task<> {
    for (ProcId k = 1; k < p; ++k) (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([](logp::Proc& pr) -> logp::Task<> {
      co_await pr.send(0, 3);
    });
  return progs;
}

logp::RunStats traced_run(ChromeTraceSink& sink, ProcId p) {
  const auto progs = hotspot(p);
  logp::Machine::Options o;
  o.sink = &sink;
  logp::Machine m(p, logp::Params{16, 1, 4}, o);
  return m.run(std::span<const logp::ProgramFn>(progs));
}

TEST(ChromeTraceSink, DocumentParsesAsJson) {
  ChromeTraceSink sink;
  traced_run(sink, 9);
  std::ostringstream os;
  sink.write(os);
  const std::string doc = os.str();
  JsonValue root;
  ASSERT_TRUE(JsonParser(doc).parse(root)) << doc.substr(0, 200);
  ASSERT_EQ(root.type, JsonValue::Type::Object);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->type, JsonValue::Type::Array);
}

TEST(ChromeTraceSink, RowsRoundTripEventAndMetadataCounts) {
  const ProcId p = 9;
  ChromeTraceSink sink;
  const logp::RunStats st = traced_run(sink, p);

  std::ostringstream os;
  sink.write(os);
  const std::string doc = os.str();
  JsonValue root;
  ASSERT_TRUE(JsonParser(doc).parse(root));
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::int64_t meta = 0, drawable = 0, instants = 0, deliveries = 0;
  for (const JsonValue& row : events->array) {
    ASSERT_EQ(row.type, JsonValue::Type::Object);
    const JsonValue* ph = row.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(row.find("pid"), nullptr);
    ASSERT_NE(row.find("tid"), nullptr);
    ASSERT_NE(row.find("name"), nullptr);
    if (ph->str == "M") {
      meta += 1;
    } else {
      drawable += 1;
      ASSERT_NE(row.find("ts"), nullptr);
      if (ph->str == "X") ASSERT_NE(row.find("dur"), nullptr);
    }
    if (ph->str == "i") instants += 1;
    if (row.find("name")->str == "delivery") deliveries += 1;
  }
  // One process_name + p thread names + the machine track.
  EXPECT_EQ(meta, 1 + p + 1);
  EXPECT_EQ(drawable, sink.event_rows());
  EXPECT_GT(instants, 0);
  EXPECT_EQ(deliveries, st.messages);
  EXPECT_EQ(sink.runs(), 1);
}

TEST(ChromeTraceSink, MultipleRunsGetDistinctPids) {
  ChromeTraceSink sink;
  traced_run(sink, 5);
  traced_run(sink, 5);
  std::ostringstream os;
  sink.write(os);
  const std::string doc = os.str();
  JsonValue root;
  ASSERT_TRUE(JsonParser(doc).parse(root));
  std::map<double, int> rows_per_pid;
  for (const JsonValue& row : root.find("traceEvents")->array)
    rows_per_pid[row.find("pid")->number] += 1;
  EXPECT_EQ(sink.runs(), 2);
  EXPECT_EQ(rows_per_pid.size(), 2u);  // one Perfetto process per run
}

TEST(ChromeTraceSink, EscapedStringsStayValidJson) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  const std::string doc = "{\"k\": \"" + json_escape("\"\\\n\t\x01") + "\"}";
  JsonValue root;
  EXPECT_TRUE(JsonParser(doc).parse(root));
}

TEST(ChromeTraceSink, AutoWritePathRewritesAtRunEnd) {
  const std::string path =
      ::testing::TempDir() + "/bsplogp_chrome_sink_test.json";
  ChromeTraceSink sink(path);
  traced_run(sink, 5);  // run_end writes the file
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string doc = buf.str();
  JsonValue root;
  EXPECT_TRUE(JsonParser(doc).parse(root)) << doc.substr(0, 200);
}

}  // namespace
}  // namespace bsplogp::trace

// MutexSink under real contention: many raw threads emitting through the
// serializing adapter into ordinary single-threaded sinks must yield
// exact aggregate counts — no torn events, no lost increments. Run under
// the tsan preset this is also a positive data-race check on the adapter.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/trace/counting_sink.h"
#include "src/trace/event.h"
#include "src/trace/sink.h"

namespace bsplogp::trace {
namespace {

constexpr int kThreads = 8;
constexpr int kEventsPerThread = 2000;

void hammer(TraceSink& sink) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      const auto me = static_cast<ProcId>(t);
      for (int i = 0; i < kEventsPerThread; ++i) {
        sink.emit(Event::submit(me, i, static_cast<ProcId>((t + 1) % kThreads)));
        sink.emit(Event::delivery(static_cast<ProcId>((t + 1) % kThreads), i, me));
        sink.emit(Event::acquire(me, i, static_cast<ProcId>((t + 1) % kThreads)));
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

TEST(ConcurrentSink, CountingThroughMutexIsExact) {
  CountingSink counts;
  MutexSink sink(&counts);
  sink.run_begin(RunInfo{"test", kThreads});
  hammer(sink);
  sink.run_end(123);

  const auto per_kind =
      static_cast<std::int64_t>(kThreads) * kEventsPerThread;
  EXPECT_EQ(counts.count(EventKind::Submit), per_kind);
  EXPECT_EQ(counts.count(EventKind::Delivery), per_kind);
  EXPECT_EQ(counts.count(EventKind::Acquire), per_kind);
  EXPECT_EQ(counts.total(), 3 * per_kind);
  for (int t = 0; t < kThreads; ++t) {
    const auto me = static_cast<ProcId>(t);
    EXPECT_EQ(counts.count(EventKind::Submit, me), kEventsPerThread);
    EXPECT_EQ(counts.count(EventKind::Delivery, me), kEventsPerThread);
    EXPECT_EQ(counts.count(EventKind::Acquire, me), kEventsPerThread);
  }
  EXPECT_EQ(counts.runs(), 1);
  EXPECT_EQ(counts.last_finish(), 123);
}

TEST(ConcurrentSink, TeeFanOutThroughMutexKeepsEverySinkConsistent) {
  CountingSink counts;
  RecordingSink recording;
  TeeSink tee({&counts, &recording});
  MutexSink sink(&tee);
  sink.run_begin(RunInfo{"test", kThreads});
  hammer(sink);
  sink.run_end(7);

  const auto total = static_cast<std::int64_t>(3) * kThreads * kEventsPerThread;
  EXPECT_EQ(counts.total(), total);
  ASSERT_EQ(recording.events().size(), static_cast<std::size_t>(total));
  // The recorder must agree with the counter event for event.
  std::int64_t submits = 0;
  for (const Event& e : recording.events())
    if (e.kind == EventKind::Submit) submits += 1;
  EXPECT_EQ(submits, counts.count(EventKind::Submit));
  EXPECT_EQ(recording.finish(), 7);
  EXPECT_EQ(recording.runs(), 1);
}

}  // namespace
}  // namespace bsplogp::trace

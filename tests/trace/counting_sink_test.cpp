// CountingSink: the aggregate view must agree with the engine's own
// RunStats accounting, attribute events to the right processors, pair
// phase markers, and accumulate across runs.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "src/bsp/machine.h"
#include "src/logp/machine.h"
#include "src/trace/counting_sink.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"

namespace bsplogp::trace {
namespace {

logp::RunStats run_logp(CountingSink& sink, ProcId p, Time k,
                        const logp::Params& prm) {
  const auto progs = workload::hotspot(p, k);
  logp::Machine::Options o;
  o.sink = &sink;
  logp::Machine m(p, prm, o);
  return m.run(std::span<const logp::ProgramFn>(progs));
}

TEST(CountingSink, CountersAgreeWithRunStats) {
  CountingSink sink;
  const ProcId p = 9;
  const logp::Params prm{16, 1, 4};
  const logp::RunStats st = run_logp(sink, p, 3, prm);

  EXPECT_EQ(sink.runs(), 1);
  EXPECT_EQ(sink.last_finish(), st.finish_time);
  EXPECT_EQ(sink.count(EventKind::Submit), st.messages_submitted);
  EXPECT_EQ(sink.count(EventKind::Delivery), st.messages);
  EXPECT_EQ(sink.count(EventKind::Acquire), st.messages_acquired);
  EXPECT_EQ(sink.count(EventKind::StallEnd), st.stall_events);

  const DurationSummary stalls = sink.stall_summary();
  EXPECT_EQ(stalls.count, st.stall_events);
  EXPECT_EQ(stalls.total, st.stall_time_total);
  EXPECT_EQ(stalls.max, st.stall_time_max);
  EXPECT_LE(sink.max_queue_depth(), st.max_inbox);
}

TEST(CountingSink, AttributesEventsToProcessors) {
  CountingSink sink;
  const ProcId p = 5;
  run_logp(sink, p, 2, logp::Params{16, 1, 4});
  // All deliveries land on the hot spot (processor 0); every sender
  // submitted, the receiver submitted nothing.
  EXPECT_EQ(sink.count(EventKind::Delivery, 0), sink.count(EventKind::Delivery));
  EXPECT_EQ(sink.count(EventKind::Submit, 0), 0);
  std::int64_t submits = 0;
  for (ProcId i = 1; i < p; ++i)
    submits += sink.count(EventKind::Submit, i);
  EXPECT_EQ(submits, sink.count(EventKind::Submit));
  // Out-of-range processors simply count zero.
  EXPECT_EQ(sink.count(EventKind::Submit, 1000), 0);
}

TEST(CountingSink, AccumulatesAcrossRuns) {
  CountingSink sink;
  const logp::Params prm{16, 1, 4};
  const logp::RunStats first = run_logp(sink, 7, 2, prm);
  run_logp(sink, 7, 2, prm);
  EXPECT_EQ(sink.runs(), 2);
  EXPECT_EQ(sink.count(EventKind::Delivery), 2 * first.messages);
  EXPECT_EQ(sink.total(),
            sink.count(EventKind::Submit) + sink.count(EventKind::Accept) +
                sink.count(EventKind::StallBegin) +
                sink.count(EventKind::StallEnd) +
                sink.count(EventKind::Delivery) +
                sink.count(EventKind::Acquire) +
                sink.count(EventKind::GapWait) +
                sink.count(EventKind::QueueDepth));
}

TEST(CountingSink, PhaseOccupancyFromXsimMarkers) {
  const ProcId p = 4;
  auto progs = bsp::make_programs(p, [p](bsp::Ctx& c) {
    for (ProcId d = 0; d < p; ++d)
      if (d != c.pid()) c.send(d, 1);
    return c.superstep() < 1;
  });
  CountingSink sink;
  xsim::BspOnLogpOptions opt;
  opt.engine.sink = &sink;
  xsim::BspOnLogp sim(p, logp::Params{8, 1, 2}, opt);
  (void)sim.run(progs);

  for (int ph = 0; ph < kNumSimPhases; ++ph) {
    const auto phase = static_cast<SimPhase>(ph);
    EXPECT_GT(sink.phase_count(phase), 0) << phase_name(phase);
    EXPECT_GE(sink.time_in_phase(phase), 0) << phase_name(phase);
  }
  // Phases with network round-trips occupy real model time.
  EXPECT_GT(sink.time_in_phase(SimPhase::Cb), 0);
  EXPECT_GT(sink.time_in_phase(SimPhase::Sort), 0);
}

TEST(CountingSink, BspSuperstepCounting) {
  const ProcId p = 3;
  auto progs = bsp::make_programs(p, [](bsp::Ctx& c) {
    return c.superstep() < 3;
  });
  CountingSink sink;
  bsp::Machine::Options o;
  o.sink = &sink;
  bsp::Machine m(p, bsp::Params{2, 8}, o);
  const bsp::RunStats st = m.run(progs);
  EXPECT_EQ(sink.count(EventKind::SuperstepBegin), st.supersteps);
  EXPECT_EQ(sink.count(EventKind::SuperstepEnd), st.supersteps);
}

}  // namespace
}  // namespace bsplogp::trace

// InvariantSink: clean engine runs must produce zero violations, and a
// deliberately corrupted stream must be caught — proof the checks re-derive
// the model rules from the events rather than trusting the engine.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "src/logp/machine.h"
#include "src/trace/invariant_sink.h"

namespace bsplogp::trace {
namespace {

RunInfo logp_info(ProcId p, const logp::Params& prm) {
  return RunInfo{"logp", p, prm.L, prm.o, prm.G, prm.capacity(), 0, 0};
}

TEST(InvariantSink, CleanHotspotRunHasZeroViolations) {
  const ProcId p = 17;
  const logp::Params prm{16, 1, 4};  // capacity 4: heavy stalling
  std::vector<logp::ProgramFn> progs;
  progs.emplace_back([p](logp::Proc& pr) -> logp::Task<> {
    for (ProcId k = 1; k < p; ++k) (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([](logp::Proc& pr) -> logp::Task<> {
      co_await pr.send(0, 1);
    });
  InvariantSink sink;
  logp::Machine::Options o;
  o.sink = &sink;
  logp::Machine m(p, prm, o);
  const logp::RunStats st = m.run(std::span<const logp::ProgramFn>(progs));
  EXPECT_TRUE(st.completed());
  EXPECT_GT(st.stall_events, 0);  // the capacity constraint was binding
  EXPECT_TRUE(sink.ok()) << (sink.messages().empty()
                                 ? std::string{}
                                 : sink.messages().front());
  EXPECT_EQ(sink.violations(), 0);
}

TEST(InvariantSink, CatchesCapacityOverrun) {
  const logp::Params prm{8, 1, 2};  // capacity 4
  InvariantSink sink;
  sink.run_begin(logp_info(4, prm));
  // Five acceptances for destination 0 with no intervening delivery: one
  // beyond ceil(L/G).
  for (Time t = 0; t < 5; ++t)
    sink.emit(Event::accept(1, t * prm.G, 0, t * prm.G));
  sink.run_end(100);
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(sink.violations(), 1);
}

TEST(InvariantSink, CatchesDoubleDeliveryInOneStep) {
  const logp::Params prm{8, 1, 2};
  InvariantSink sink;
  sink.run_begin(logp_info(4, prm));
  sink.emit(Event::accept(1, 0, 0, 0));
  sink.emit(Event::accept(2, 2, 0, 2));
  sink.emit(Event::delivery(0, 6, 1));
  sink.emit(Event::delivery(0, 6, 2));  // same destination, same step
  sink.run_end(10);
  EXPECT_FALSE(sink.ok());
  EXPECT_GE(sink.violations(), 1);
}

TEST(InvariantSink, CatchesDeliveryWithoutAcceptance) {
  const logp::Params prm{8, 1, 2};
  InvariantSink sink;
  sink.run_begin(logp_info(4, prm));
  sink.emit(Event::delivery(0, 5, 1));  // nothing was ever accepted
  sink.run_end(10);
  EXPECT_FALSE(sink.ok());
}

TEST(InvariantSink, CatchesAcceptanceBeforeSubmission) {
  const logp::Params prm{8, 1, 2};
  InvariantSink sink;
  sink.run_begin(logp_info(4, prm));
  sink.emit(Event::accept(1, 3, 0, 7));  // accepted before submitted
  sink.run_end(10);
  EXPECT_FALSE(sink.ok());
}

TEST(InvariantSink, RunBeginResetsPerRunState) {
  const logp::Params prm{8, 1, 2};
  InvariantSink sink;
  sink.run_begin(logp_info(4, prm));
  for (Time t = 0; t < 4; ++t)
    sink.emit(Event::accept(1, t * prm.G, 0, t * prm.G));  // at capacity
  sink.run_end(50);
  ASSERT_TRUE(sink.ok());
  // A fresh run starts from an empty medium: four more acceptances are
  // fine; violations would only accumulate if state leaked across runs.
  sink.run_begin(logp_info(4, prm));
  for (Time t = 0; t < 4; ++t)
    sink.emit(Event::accept(1, t * prm.G, 0, t * prm.G));
  sink.run_end(50);
  EXPECT_TRUE(sink.ok());
}

}  // namespace
}  // namespace bsplogp::trace

// The native SPMD backend's primitives: spawn placement, barrier
// visibility, registered-variable put/get semantics, failure handling.
#include "src/native/spmd.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/types.h"

namespace bsplogp::native {
namespace {

TEST(NativeSpmd, SpawnRunsEveryPidOnItsOwnThread) {
  const ProcId p = 6;
  std::vector<ProcId> pids(6, -1);
  std::vector<std::thread::id> tids(6);
  spawn(p, [&](World& w) {
    EXPECT_EQ(w.nprocs(), p);
    pids[static_cast<std::size_t>(w.pid())] = w.pid();
    tids[static_cast<std::size_t>(w.pid())] = std::this_thread::get_id();
    // All instances are live concurrently: the barrier can only release if
    // every pid reached it, which a sequential execution never would.
    w.barrier();
  });
  for (ProcId i = 0; i < p; ++i) EXPECT_EQ(pids[static_cast<std::size_t>(i)], i);
  const std::set<std::thread::id> distinct(tids.begin(), tids.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(p));
}

TEST(NativeSpmd, SingleProcessorWorldWorks) {
  int syncs = 0;
  spawn(1, [&](World& w) {
    var<Word> x(w, 7);
    w.put(0, Word{42}, x);
    w.sync();
    syncs += 1;
    EXPECT_EQ(x.value(), 42);
  });
  EXPECT_EQ(syncs, 1);
}

TEST(NativeSpmd, BarrierPublishesWrites) {
  const ProcId p = 8;
  std::vector<Word> slots(static_cast<std::size_t>(p), 0);
  std::vector<Word> sums(static_cast<std::size_t>(p), 0);
  spawn(p, [&](World& w) {
    slots[static_cast<std::size_t>(w.pid())] = w.pid() + 1;
    w.barrier();
    Word sum = 0;
    for (const Word v : slots) sum += v;
    sums[static_cast<std::size_t>(w.pid())] = sum;
  });
  for (const Word s : sums) EXPECT_EQ(s, p * (p + 1) / 2);
}

TEST(NativeSpmd, PutDeliversAtSync) {
  const ProcId p = 5;
  std::vector<Word> after(static_cast<std::size_t>(p), -1);
  spawn(p, [&](World& w) {
    var<Word> x(w, Word{-1});
    const auto right = static_cast<ProcId>((w.pid() + 1) % p);
    w.put(right, static_cast<Word>(w.pid()), x);
    EXPECT_EQ(x.value(), -1);  // buffered, not yet applied
    w.sync();
    after[static_cast<std::size_t>(w.pid())] = x.value();
  });
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(after[static_cast<std::size_t>(i)], (i + p - 1) % p);
}

TEST(NativeSpmd, GetReadsThePrePutValue) {
  const ProcId p = 4;
  std::vector<Word> got(static_cast<std::size_t>(p), -1);
  std::vector<Word> landed(static_cast<std::size_t>(p), -1);
  spawn(p, [&](World& w) {
    var<Word> x(w, static_cast<Word>(w.pid()));
    const auto right = static_cast<ProcId>((w.pid() + 1) % p);
    future<Word> f = w.get(right, x);
    w.put(right, 100 + static_cast<Word>(w.pid()), x);
    w.sync();
    // The get resolved against the neighbor's value as of the start of the
    // sync — before the same superstep's puts landed (bsp_get semantics).
    got[static_cast<std::size_t>(w.pid())] = f.value();
    landed[static_cast<std::size_t>(w.pid())] = x.value();
  });
  for (ProcId i = 0; i < p; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], (i + 1) % p);
    EXPECT_EQ(landed[static_cast<std::size_t>(i)], 100 + (i + p - 1) % p);
  }
}

TEST(NativeSpmd, RacingPutsResolveInSenderIdOrder) {
  const ProcId p = 6;
  Word winner = -1;
  spawn(p, [&](World& w) {
    var<Word> x(w, Word{-1});
    w.put(0, static_cast<Word>(w.pid()), x);  // everyone targets pid 0
    w.sync();
    if (w.pid() == 0) winner = x.value();
  });
  EXPECT_EQ(winner, p - 1);  // highest sender id applies last
}

TEST(NativeSpmd, ValuesChainAcrossSupersteps) {
  const ProcId p = 4;
  const int rounds = 10;
  std::vector<Word> final_values(static_cast<std::size_t>(p), -1);
  spawn(p, [&](World& w) {
    var<Word> x(w, static_cast<Word>(w.pid()));
    for (int r = 0; r < rounds; ++r) {
      w.put(static_cast<ProcId>((w.pid() + 1) % p), x.value(), x);
      w.sync();
    }
    final_values[static_cast<std::size_t>(w.pid())] = x.value();
  });
  // Rotating the initial values `rounds` times.
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(final_values[static_cast<std::size_t>(i)],
              ((i - rounds) % p + p) % p);
}

TEST(NativeSpmd, ThrowingProcessorPropagatesItsOwnException) {
  const ProcId p = 4;
  try {
    spawn(p, [&](World& w) {
      if (w.pid() == 2) throw std::runtime_error("proc 2 boom");
      // Siblings park in the barrier; the poisoned barrier must unblock
      // them (as AbortedError, swallowed by spawn) instead of deadlocking.
      for (int r = 0; r < 3; ++r) w.sync();
    });
    FAIL() << "spawn should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "proc 2 boom");
  }
}

TEST(NativeSpmd, EarlyReturnersLeaveTheBarrierGroup) {
  const ProcId p = 5;
  std::vector<int> rounds_done(static_cast<std::size_t>(p), 0);
  spawn(p, [&](World& w) {
    // Processor i participates in i+1 supersteps, then leaves (bsp_end
    // style); the remaining group keeps synchronizing.
    for (ProcId r = 0; r <= w.pid(); ++r) {
      w.barrier();
      rounds_done[static_cast<std::size_t>(w.pid())] += 1;
    }
  });
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(rounds_done[static_cast<std::size_t>(i)], i + 1);
}

TEST(NativeSpmd, SharedPoolIsReusableAcrossSpawnsAndBatches) {
  core::ThreadPool pool(7);
  for (int iter = 0; iter < 3; ++iter) {
    std::atomic<int> visits{0};
    spawn(8, [&](World& w) {
      w.barrier();
      visits.fetch_add(1, std::memory_order_relaxed);
    }, &pool);
    EXPECT_EQ(visits.load(), 8);
  }
  // The pool still serves ordinary data-parallel batches afterwards.
  std::vector<int> marks(64, 0);
  pool.for_indexed(64, [&](std::size_t i) { marks[i] = 1; });
  for (const int m : marks) EXPECT_EQ(m, 1);
}

TEST(NativeSpmd, FutureCopiesShareTheResolvedValue) {
  spawn(2, [&](World& w) {
    var<Word> x(w, static_cast<Word>(10 + w.pid()));
    future<Word> f = w.get(static_cast<ProcId>(1 - w.pid()), x);
    future<Word> copy = f;  // copies observe the same resolution
    w.sync();
    EXPECT_EQ(f.value(), 10 + (1 - w.pid()));
    EXPECT_EQ(copy.value(), f.value());
  });
}

}  // namespace
}  // namespace bsplogp::native

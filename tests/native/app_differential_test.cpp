// Differential + oracle coverage for the partitioned application families
// (src/workload/apps.h). Each family runs SIX ways — LogP programs on
// native::run_logp, logp::Machine, and xsim::LogpOnBsp; BSP programs on
// native::run_bsp, bsp::Machine, and xsim::BspOnLogp — and every executor
// must reproduce the serial oracle's per-processor result vector exactly.
// This is the full executor matrix the registry-driven differential test
// doesn't reach (it has no oracle and never runs BSP programs through
// Theorem 2's sort-and-route).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/bsp/machine.h"
#include "src/core/parallel.h"
#include "src/logp/machine.h"
#include "src/native/bsp_exec.h"
#include "src/native/logp_exec.h"
#include "src/workload/apps.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"
#include "src/xsim/logp_on_bsp.h"

namespace bsplogp {
namespace {

core::ThreadPool& shared_pool() {
  static core::ThreadPool pool(7);
  return pool;
}

constexpr logp::Params kLogpParams{16, 1, 4};
constexpr bsp::Params kBspParams{3, 5};

struct Family {
  const char* name;
  std::vector<logp::ProgramFn> (*logp)(const workload::Spec&);
  std::vector<std::unique_ptr<bsp::ProcProgram>> (*bsp)(
      const workload::Spec&);
  std::vector<Word> (*expected)(const workload::Spec&);
};

constexpr Family kFamilies[] = {
    {"stencil-2d", workload::stencil2d_logp, workload::stencil2d_bsp,
     workload::stencil2d_expected},
    {"sample-sort", workload::samplesort_logp, workload::samplesort_bsp,
     workload::samplesort_expected},
    {"bsf-iterative", workload::bsf_logp, workload::bsf_bsp,
     workload::bsf_expected},
};

void check_all_executors(const Family& fam, workload::Spec spec) {
  const std::vector<Word> oracle = fam.expected(spec);
  ASSERT_EQ(oracle.size(), static_cast<std::size_t>(spec.p));

  std::vector<Word> result;
  spec.result = &result;
  {
    const auto programs = fam.logp(spec);
    native::NativeLogpOptions options;
    options.pool = &shared_pool();
    (void)native::run_logp(programs, kLogpParams, options);
    EXPECT_EQ(result, oracle) << "native logp";
  }
  {
    const auto programs = fam.logp(spec);
    logp::Machine machine(spec.p, kLogpParams);
    EXPECT_TRUE(machine.run(programs).completed());
    EXPECT_EQ(result, oracle) << "logp machine";
  }
  {
    const auto programs = fam.logp(spec);
    xsim::LogpOnBsp sim(spec.p, kLogpParams,
                        xsim::LogpOnBspOptions{kBspParams});
    EXPECT_FALSE(sim.run(programs).stuck);
    EXPECT_EQ(result, oracle) << "logp on bsp";
  }
  {
    const auto programs = fam.bsp(spec);
    native::NativeBspOptions options;
    options.pool = &shared_pool();
    options.params = kBspParams;
    (void)native::run_bsp(programs, options);
    EXPECT_EQ(result, oracle) << "native bsp";
  }
  {
    const auto programs = fam.bsp(spec);
    bsp::Machine machine(spec.p, kBspParams);
    (void)machine.run(programs);
    EXPECT_EQ(result, oracle) << "bsp machine";
  }
  {
    const auto programs = fam.bsp(spec);
    xsim::BspOnLogp sim(spec.p, kLogpParams);
    const xsim::BspOnLogpReport report = sim.run(programs);
    EXPECT_TRUE(report.logp.completed());
    EXPECT_EQ(report.schedule_violations, 0);
    EXPECT_EQ(result, oracle) << "bsp on logp";
  }
}

workload::Spec app_spec(ProcId p, std::int64_t nx, std::int64_t ny,
                        int rounds, ProcId grid_rows = 0) {
  workload::Spec spec;
  spec.p = p;
  spec.nx = nx;
  spec.ny = ny;
  spec.rounds = rounds;
  spec.grid_rows = grid_rows;
  spec.seed = 21;
  return spec;
}

TEST(AppDifferential, StencilMatchesOracleOnEveryExecutor) {
  for (const auto& spec :
       {app_spec(4, 10, 7, 3), app_spec(6, 9, 11, 2, 2),
        app_spec(5, 3, 2, 2),  // more procs than rows: empty partitions
        app_spec(1, 5, 4, 2), app_spec(8, 16, 16, 1, 8)}) {
    SCOPED_TRACE(testing::Message() << "p=" << spec.p << " nx=" << spec.nx
                                    << " ny=" << spec.ny
                                    << " rows=" << spec.grid_rows);
    check_all_executors(kFamilies[0], spec);
  }
}

TEST(AppDifferential, SampleSortMatchesOracleOnEveryExecutor) {
  for (const auto& spec : {app_spec(4, 40, 1, 1), app_spec(6, 96, 1, 1),
                           app_spec(1, 8, 1, 1), app_spec(8, 32, 1, 1)}) {
    SCOPED_TRACE(testing::Message() << "p=" << spec.p << " nx=" << spec.nx);
    check_all_executors(kFamilies[1], spec);
  }
}

TEST(AppDifferential, BsfMatchesOracleOnEveryExecutor) {
  for (const auto& spec :
       {app_spec(4, 23, 1, 4), app_spec(6, 40, 1, 3),
        app_spec(5, 3, 1, 3),  // workers with zero elements
        app_spec(1, 5, 1, 4)}) {
    SCOPED_TRACE(testing::Message() << "p=" << spec.p << " nx=" << spec.nx
                                    << " rounds=" << spec.rounds);
    check_all_executors(kFamilies[2], spec);
  }
}

TEST(AppDifferential, NativeRunsAreDeterministic) {
  // Real-thread arrival order varies run to run; results must not.
  for (const Family& fam : kFamilies) {
    SCOPED_TRACE(fam.name);
    workload::Spec spec = app_spec(6, 30, 5, 3);
    std::vector<Word> first, second;
    for (std::vector<Word>* result : {&first, &second}) {
      spec.result = result;
      const auto programs = fam.logp(spec);
      native::NativeLogpOptions options;
      options.pool = &shared_pool();
      (void)native::run_logp(programs, kLogpParams, options);
    }
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, fam.expected(spec));
  }
}

TEST(AppDifferential, RegistryEntriesRouteToTheAppFactories) {
  // The registry is how benches and the farm reach these families; a
  // misrouted entry would silently benchmark the wrong program.
  for (const Family& fam : kFamilies) {
    const workload::Entry* entry = workload::find(fam.name);
    ASSERT_NE(entry, nullptr) << fam.name;
    workload::Spec spec = app_spec(4, 20, 6, 2);
    std::vector<Word> via_entry, via_factory;
    spec.result = &via_entry;
    {
      const auto programs = entry->bsp(spec);
      bsp::Machine machine(spec.p, kBspParams);
      (void)machine.run(programs);
    }
    spec.result = &via_factory;
    {
      const auto programs = fam.bsp(spec);
      bsp::Machine machine(spec.p, kBspParams);
      (void)machine.run(programs);
    }
    EXPECT_EQ(via_entry, via_factory) << fam.name;
  }
}

}  // namespace
}  // namespace bsplogp

// Concurrency stress: hammer the native backend's synchronization paths
// (barrier waves, put resolution order, arrival queues, shared-pool reuse,
// concurrent trace emission) hard enough that a data race or a lost wakeup
// has a realistic chance of firing — these are the tests the TSan CI leg
// exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/parallel.h"
#include "src/native/logp_exec.h"
#include "src/native/spmd.h"
#include "src/trace/counting_sink.h"
#include "src/trace/sink.h"
#include "src/workload/workload.h"

namespace bsplogp {
namespace {

core::ThreadPool& shared_pool() {
  static core::ThreadPool pool(7);
  return pool;
}

TEST(NativeStress, PutGetStorm) {
  // Every round, every processor puts to a rotating target while getting
  // from another — sender-id-order resolution must hold on every one of
  // the rounds, not just a quiet first superstep.
  const ProcId p = 8;
  const int rounds = 30;
  std::vector<int> bad_rounds(static_cast<std::size_t>(p), 0);
  native::spawn(p, [&](native::World& w) {
    native::var<Word> x(w, Word{0});
    for (int r = 0; r < rounds; ++r) {
      // Everyone targets processor (r mod p); highest sender must win.
      const auto target = static_cast<ProcId>(r % p);
      const auto peer = static_cast<ProcId>((w.pid() + r) % p);
      native::future<Word> f = w.get(peer, x);
      w.put(target, static_cast<Word>(1000 * r + w.pid()), x);
      w.sync();
      if (w.pid() == target && x.value() != 1000 * r + (p - 1))
        bad_rounds[static_cast<std::size_t>(w.pid())] += 1;
      (void)f.value();  // resolved pre-put; just must not crash or race
      w.sync();         // keep the group in lockstep between rounds
    }
  }, &shared_pool());
  for (const int bad : bad_rounds) EXPECT_EQ(bad, 0);
}

TEST(NativeStress, BarrierHammer) {
  const ProcId p = 8;
  const int rounds = 200;
  std::vector<Word> counters(static_cast<std::size_t>(p), 0);
  native::spawn(p, [&](native::World& w) {
    for (int r = 0; r < rounds; ++r) {
      counters[static_cast<std::size_t>(w.pid())] += 1;
      w.barrier();
      // Between the two barriers every counter must read exactly r+1.
      for (const Word c : counters) {
        if (c != r + 1) {
          ADD_FAILURE() << "round " << r << " saw counter " << c;
          break;
        }
      }
      w.barrier();
    }
  }, &shared_pool());
}

TEST(NativeStress, HotspotFanInSumsExactly) {
  // (p-1)*k messages funneled into one arrival queue; the closed-form sum
  // catches any lost or duplicated message.
  const ProcId p = 8;
  const Time k = 20;
  std::vector<Word> sum;
  const auto programs = workload::hotspot(p, k, false, &sum);
  native::NativeLogpOptions options;
  options.pool = &shared_pool();
  const native::NativeLogpStats stats =
      native::run_logp(programs, logp::Params{16, 1, 4}, options);
  Word expected = 0;
  for (ProcId i = 1; i < p; ++i)
    for (Time j = 0; j < k; ++j) expected += i * 100 + j;
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_EQ(sum[0], expected);
  EXPECT_EQ(stats.messages_sent, static_cast<std::int64_t>(p - 1) * k);
  EXPECT_EQ(stats.messages_acquired, stats.messages_sent);
}

TEST(NativeStress, RepeatedRunsOnASharedPool) {
  // Pool reuse across many runs: thread-local or leftover state from a
  // previous run (stale arrivals, unreset barrier phases) would surface as
  // a wrong sum in a later iteration.
  const ProcId p = 8;
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Word> sums;
    const auto programs = workload::all_to_all(p, &sums);
    native::NativeLogpOptions options;
    options.pool = &shared_pool();
    (void)native::run_logp(programs, logp::Params{16, 1, 4}, options);
    ASSERT_EQ(sums.size(), static_cast<std::size_t>(p));
    const Word all = p * (p + 1) / 2;
    for (ProcId i = 0; i < p; ++i)
      EXPECT_EQ(sums[static_cast<std::size_t>(i)], all - (i + 1))
          << "iter " << iter << " pid " << i;
  }
}

TEST(NativeStress, ConcurrentEmissionCountsAreExact) {
  // p threads emit through MutexSink(CountingSink) simultaneously; the
  // serialized counts must balance: every submit delivered, every delivery
  // acquired.
  const ProcId p = 8;
  trace::CountingSink counts;
  trace::MutexSink sink(&counts);
  const auto programs = workload::all_to_all(p);
  native::NativeLogpOptions options;
  options.pool = &shared_pool();
  options.sink = &sink;
  (void)native::run_logp(programs, logp::Params{16, 1, 4}, options);
  const auto expected = static_cast<std::int64_t>(p) * (p - 1);
  EXPECT_EQ(counts.count(trace::EventKind::Submit), expected);
  EXPECT_EQ(counts.count(trace::EventKind::Delivery), expected);
  EXPECT_EQ(counts.count(trace::EventKind::Acquire), expected);
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(counts.count(trace::EventKind::Acquire, i), p - 1);
  EXPECT_EQ(counts.runs(), 1);
}

}  // namespace
}  // namespace bsplogp

// Differential testing: every workload-registry family executed natively
// (real threads, src/native) and on the simulators must produce identical
// logical outcomes.
//
// LogP families run three ways — native::run_logp, logp::Machine, and
// xsim::LogpOnBsp (Theorem 1) — and must agree on the per-processor result
// vector; the two machine-level executors must also agree on message
// counts. BSP families run two ways — native::run_bsp and bsp::Machine —
// and must agree on EVERYTHING: the per-processor per-superstep inbox logs
// (workload::logged) and the entire model accounting, because BSP
// parameters price an execution without steering it, so the native
// executor's model stats are defined to equal the simulator's.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/bsp/machine.h"
#include "src/core/parallel.h"
#include "src/logp/machine.h"
#include "src/native/bsp_exec.h"
#include "src/native/logp_exec.h"
#include "src/trace/sink.h"
#include "src/workload/workload.h"
#include "src/xsim/logp_on_bsp.h"

namespace bsplogp {
namespace {

// One warm pool for the whole suite (8 procs max → 7 workers).
core::ThreadPool& shared_pool() {
  static core::ThreadPool pool(7);
  return pool;
}

constexpr logp::Params kLogpParams{16, 1, 4};
constexpr bsp::Params kBspParams{3, 5};

struct LogpOutcome {
  std::vector<Word> result;
  std::int64_t delivered = 0;
  std::int64_t acquired = 0;
};

LogpOutcome run_native_logp(const workload::Entry& entry,
                            workload::Spec spec) {
  LogpOutcome out;
  spec.result = &out.result;
  const auto programs = entry.logp(spec);
  native::NativeLogpOptions options;
  options.pool = &shared_pool();
  const native::NativeLogpStats stats =
      native::run_logp(programs, kLogpParams, options);
  out.delivered = stats.messages_sent;
  out.acquired = stats.messages_acquired;
  return out;
}

LogpOutcome run_sim_logp(const workload::Entry& entry, workload::Spec spec) {
  LogpOutcome out;
  spec.result = &out.result;
  const auto programs = entry.logp(spec);
  logp::Machine machine(static_cast<ProcId>(programs.size()), kLogpParams);
  const logp::RunStats stats = machine.run(programs);
  EXPECT_TRUE(stats.completed()) << entry.name;
  out.delivered = stats.messages;
  out.acquired = stats.messages_acquired;
  return out;
}

LogpOutcome run_xsim_logp(const workload::Entry& entry, workload::Spec spec) {
  LogpOutcome out;
  spec.result = &out.result;
  const auto programs = entry.logp(spec);
  xsim::LogpOnBsp sim(static_cast<ProcId>(programs.size()), kLogpParams,
                      xsim::LogpOnBspOptions{kBspParams});
  const xsim::LogpOnBspReport report = sim.run(programs);
  EXPECT_FALSE(report.stuck) << entry.name;
  return out;
}

workload::Spec differential_spec() {
  workload::Spec spec;
  spec.p = 6;
  spec.k = 2;
  spec.rounds = 3;
  spec.max_jump = 8;
  spec.seed = 7;
  return spec;
}

TEST(NativeDifferential, EveryLogpFamilyMatchesBothSimulators) {
  int families = 0;
  for (const workload::Entry& entry : workload::registry()) {
    if (!entry.logp) continue;
    families += 1;
    SCOPED_TRACE(entry.name);
    const workload::Spec spec = differential_spec();
    const LogpOutcome native = run_native_logp(entry, spec);
    const LogpOutcome sim = run_sim_logp(entry, spec);
    const LogpOutcome onbsp = run_xsim_logp(entry, spec);
    EXPECT_EQ(native.result, sim.result);
    EXPECT_EQ(native.result, onbsp.result);
    EXPECT_EQ(native.delivered, sim.delivered);
    EXPECT_EQ(native.acquired, sim.acquired);
    EXPECT_GT(native.delivered, 0);
  }
  EXPECT_GE(families, 6) << "registry lost LogP families";
}

TEST(NativeDifferential, HotspotMatchesInBothVariants) {
  const workload::Entry* entry = workload::find("hotspot");
  ASSERT_NE(entry, nullptr);
  for (const bool staged : {false, true}) {
    SCOPED_TRACE(staged ? "staged" : "naive");
    workload::Spec spec = differential_spec();
    spec.k = 3;
    spec.staged = staged;
    const LogpOutcome native = run_native_logp(*entry, spec);
    const LogpOutcome sim = run_sim_logp(*entry, spec);
    EXPECT_EQ(native.result, sim.result);
    EXPECT_EQ(native.delivered, sim.delivered);
    // Closed form: senders 1..p-1 fire payloads i*100 + j, j < k.
    Word expected = 0;
    for (ProcId i = 1; i < spec.p; ++i)
      for (Time j = 0; j < spec.k; ++j) expected += i * 100 + j;
    ASSERT_EQ(native.result.size(), 1u);
    EXPECT_EQ(native.result[0], expected);
  }
}

struct BspOutcome {
  workload::InboxLog log;
  bsp::RunStats model;
  std::vector<trace::Event> events;
  Time trace_finish = 0;
};

BspOutcome run_native_bsp(const workload::Entry& entry,
                          const workload::Spec& spec,
                          std::int64_t max_supersteps = 1'000'000) {
  BspOutcome out;
  trace::RecordingSink sink;
  const auto programs = workload::logged(entry.bsp(spec), out.log);
  native::NativeBspOptions options;
  options.pool = &shared_pool();
  options.sink = &sink;
  options.params = kBspParams;
  options.max_supersteps = max_supersteps;
  out.model = native::run_bsp(programs, options).model;
  out.events = sink.events();
  out.trace_finish = sink.finish();
  return out;
}

BspOutcome run_sim_bsp(const workload::Entry& entry,
                       const workload::Spec& spec,
                       std::int64_t max_supersteps = 1'000'000) {
  BspOutcome out;
  trace::RecordingSink sink;
  const auto programs = workload::logged(entry.bsp(spec), out.log);
  bsp::Machine::Options options;
  options.sink = &sink;
  options.max_supersteps = max_supersteps;
  bsp::Machine machine(spec.p, kBspParams, options);
  out.model = machine.run(programs);
  out.events = sink.events();
  out.trace_finish = sink.finish();
  return out;
}

void expect_bsp_equal(const BspOutcome& native, const BspOutcome& sim) {
  // Logical outcome: what every processor saw, superstep by superstep.
  EXPECT_EQ(native.log.per_pid, sim.log.per_pid);
  // Model accounting: field for field.
  EXPECT_EQ(native.model.finish_time, sim.model.finish_time);
  EXPECT_EQ(native.model.supersteps, sim.model.supersteps);
  EXPECT_EQ(native.model.messages, sim.model.messages);
  EXPECT_EQ(native.model.proc_finish, sim.model.proc_finish);
  EXPECT_EQ(native.model.blocked_procs, sim.model.blocked_procs);
  EXPECT_EQ(native.model.hit_superstep_limit, sim.model.hit_superstep_limit);
  ASSERT_EQ(native.model.trace.size(), sim.model.trace.size());
  for (std::size_t s = 0; s < sim.model.trace.size(); ++s) {
    EXPECT_EQ(native.model.trace[s].w, sim.model.trace[s].w) << "superstep " << s;
    EXPECT_EQ(native.model.trace[s].h, sim.model.trace[s].h) << "superstep " << s;
  }
  // Even the event stream is identical: one emitter, same order.
  EXPECT_EQ(native.events, sim.events);
  EXPECT_EQ(native.trace_finish, sim.trace_finish);
}

TEST(NativeDifferential, EveryBspFamilyMatchesTheMachineExactly) {
  int families = 0;
  for (const workload::Entry& entry : workload::registry()) {
    if (!entry.bsp) continue;
    families += 1;
    SCOPED_TRACE(entry.name);
    workload::Spec spec = differential_spec();
    spec.k = 4;       // relation degree / sort block size
    spec.rounds = 5;  // fuzz supersteps
    expect_bsp_equal(run_native_bsp(entry, spec), run_sim_bsp(entry, spec));
  }
  EXPECT_GE(families, 3) << "registry lost BSP families";
}

TEST(NativeDifferential, UnevenHaltingKeepsExecutorsAligned) {
  // Processors halt in different supersteps; halted ones keep receiving.
  // This exercises proc_finish bookkeeping and the never-re-stepped rule.
  const workload::Spec spec = [] {
    workload::Spec s;
    s.p = 6;
    return s;
  }();
  const auto family = [](const workload::Spec& s) {
    return bsp::make_programs(s.p, [](bsp::Ctx& c) {
      for (ProcId d = 0; d < c.nprocs(); ++d)
        if (d != c.pid()) c.send(d, c.superstep());
      return c.superstep() < c.pid();  // proc i halts after superstep i
    });
  };
  workload::Entry entry{"uneven-halting", "", nullptr, family};
  expect_bsp_equal(run_native_bsp(entry, spec), run_sim_bsp(entry, spec));
}

TEST(NativeDifferential, SuperstepLimitCutsBothExecutorsIdentically) {
  const workload::Spec spec = [] {
    workload::Spec s;
    s.p = 4;
    return s;
  }();
  const auto family = [](const workload::Spec& s) {
    return bsp::make_programs(s.p, [](bsp::Ctx& c) {
      c.send(static_cast<ProcId>((c.pid() + 1) % c.nprocs()), c.superstep());
      return true;  // never halts; the limit must cut the run
    });
  };
  workload::Entry entry{"endless", "", nullptr, family};
  const BspOutcome native = run_native_bsp(entry, spec, 5);
  const BspOutcome sim = run_sim_bsp(entry, spec, 5);
  EXPECT_TRUE(native.model.hit_superstep_limit);
  EXPECT_EQ(native.model.supersteps, 5);
  expect_bsp_equal(native, sim);
}

TEST(NativeDifferential, NativeAcquiredMultisetsMatchSimulatorDeliveries) {
  // Per-processor acquired payload multisets: the native arrival order is
  // real (not simulated), so compare as sorted multisets per processor.
  const ProcId p = 6;
  std::vector<Word> native_sums;
  const auto programs = workload::all_to_all(p, &native_sums);
  std::vector<std::vector<Message>> acquired;
  native::NativeLogpOptions options;
  options.pool = &shared_pool();
  options.acquired = &acquired;
  (void)native::run_logp(programs, kLogpParams, options);
  ASSERT_EQ(acquired.size(), static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i) {
    std::vector<Word> payloads;
    for (const Message& m : acquired[static_cast<std::size_t>(i)]) {
      EXPECT_EQ(m.dst, i);
      payloads.push_back(m.payload);
    }
    std::sort(payloads.begin(), payloads.end());
    // Everyone receives 1..p except its own id+1.
    std::vector<Word> expected;
    for (ProcId s = 0; s < p; ++s)
      if (s != i) expected.push_back(s + 1);
    EXPECT_EQ(payloads, expected);
  }
}

}  // namespace
}  // namespace bsplogp

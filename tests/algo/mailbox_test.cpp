// Mailbox demultiplexing: layered protocols must be able to receive from
// their own channel even when deliveries interleave.
#include "src/algo/mailbox.h"

#include <gtest/gtest.h>

#include <vector>

namespace bsplogp::algo {
namespace {

using logp::Machine;
using logp::Params;
using logp::Proc;
using logp::ProgramFn;
using logp::Task;

TEST(Mailbox, ChannelsReceiveIndependentlyOfArrivalOrder) {
  const Params prm{8, 1, 2};
  Machine m(3, prm);
  std::vector<Word> ch1_payloads, ch2_payloads;
  std::vector<ProgramFn> progs;
  // Proc 1 and 2 send to proc 0 on different channels, interleaved.
  progs.emplace_back([&](Proc& p) -> Task<> {
    Mailbox mb(p);
    // Ask for channel 2 first even though channel 1 traffic arrives too.
    for (int i = 0; i < 3; ++i)
      ch2_payloads.push_back((co_await mb.recv_channel(2)).payload);
    for (int i = 0; i < 3; ++i)
      ch1_payloads.push_back((co_await mb.recv_channel(1)).payload);
    EXPECT_EQ(mb.stashed(), 0u);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    for (Word i = 0; i < 3; ++i) co_await p.send(0, 10 + i, 0, 0, 1);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    for (Word i = 0; i < 3; ++i) co_await p.send(0, 20 + i, 0, 0, 2);
  });
  const auto st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_EQ(ch1_payloads, (std::vector<Word>{10, 11, 12}));
  EXPECT_EQ(ch2_payloads, (std::vector<Word>{20, 21, 22}));
}

TEST(Mailbox, TaggedReceiveSkipsOtherTags) {
  const Params prm{8, 1, 2};
  Machine m(2, prm);
  std::vector<Word> got;
  std::vector<ProgramFn> progs;
  progs.emplace_back([&](Proc& p) -> Task<> {
    Mailbox mb(p);
    // Receive tags in reverse order of sending.
    for (std::int32_t tag = 2; tag >= 0; --tag)
      got.push_back((co_await mb.recv_channel_tag(7, tag)).payload);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    for (std::int32_t tag = 0; tag < 3; ++tag)
      co_await p.send(0, 100 + tag, tag, 0, 7);
  });
  EXPECT_TRUE(m.run(progs).completed());
  EXPECT_EQ(got, (std::vector<Word>{102, 101, 100}));
}

TEST(Mailbox, StashPreservesFifoWithinChannel) {
  const Params prm{8, 1, 2};
  Machine m(2, prm);
  std::vector<Word> got;
  std::vector<ProgramFn> progs;
  progs.emplace_back([&](Proc& p) -> Task<> {
    Mailbox mb(p);
    // First drain channel 9 (arrives last), forcing channel 4 messages
    // through the stash; then read channel 4 — order must be preserved.
    (void)co_await mb.recv_channel(9);
    for (int i = 0; i < 4; ++i)
      got.push_back((co_await mb.recv_channel(4)).payload);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    for (Word i = 0; i < 4; ++i) co_await p.send(0, i, 0, 0, 4);
    co_await p.send(0, 99, 0, 0, 9);
  });
  EXPECT_TRUE(m.run(progs).completed());
  EXPECT_EQ(got, (std::vector<Word>{0, 1, 2, 3}));
}

TEST(Mailbox, AvailableCountsStashAndInbox) {
  const Params prm{8, 1, 2};
  Machine m(2, prm);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    Mailbox mb(p);
    // Wait until both messages have certainly been delivered.
    co_await p.wait_until(100);
    EXPECT_EQ(mb.available(), 2u);
    (void)co_await mb.recv_channel(2);  // stashes the channel-1 message
    EXPECT_EQ(mb.stashed(), 1u);
    EXPECT_EQ(mb.available(), 1u);
    (void)co_await mb.recv_channel(1);
    EXPECT_EQ(mb.available(), 0u);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.send(0, 1, 0, 0, 1);
    co_await p.send(0, 2, 0, 0, 2);
  });
  EXPECT_TRUE(m.run(progs).completed());
}

}  // namespace
}  // namespace bsplogp::algo

// The BSP model leaves input-pool order unspecified (bsp::Ctx documents
// it), so every shipped BSP algorithm must be order-robust. We run each of
// them under InboxOrder::Shuffled with several seeds and require the same
// results as the canonical SourceOrder run.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/algo/bsp_algorithms.h"
#include "src/core/rng.h"

namespace bsplogp::algo {
namespace {

bsp::Machine shuffled_machine(ProcId p, std::uint64_t seed) {
  bsp::Machine::Options opt;
  opt.inbox_order = bsp::InboxOrder::Shuffled;
  opt.shuffle_seed = seed;
  return bsp::Machine(p, bsp::Params{1, 1}, opt);
}

TEST(OrderRobustness, PrefixScan) {
  const ProcId p = 16;
  std::vector<Word> in(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    in[static_cast<std::size_t>(i)] = i * 3 - 7;
  std::vector<Word> reference;
  {
    auto progs = bsp_prefix_scan(p, in, ReduceOp::Sum, reference);
    bsp::Machine m(p, bsp::Params{1, 1});
    (void)m.run(progs);
  }
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<Word> out;
    auto progs = bsp_prefix_scan(p, in, ReduceOp::Sum, out);
    auto m = shuffled_machine(p, seed);
    (void)m.run(progs);
    EXPECT_EQ(out, reference) << "seed " << seed;
  }
}

TEST(OrderRobustness, AllReduce) {
  const ProcId p = 13;
  std::vector<Word> in(static_cast<std::size_t>(p), 0);
  for (ProcId i = 0; i < p; ++i)
    in[static_cast<std::size_t>(i)] = (i * 11) % 17;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<Word> out;
    auto progs = bsp_allreduce(p, in, ReduceOp::Max, out);
    auto m = shuffled_machine(p, seed);
    (void)m.run(progs);
    const Word expect = *std::max_element(in.begin(), in.end());
    for (const Word w : out) EXPECT_EQ(w, expect) << "seed " << seed;
  }
}

TEST(OrderRobustness, SortsStaySorted) {
  core::Rng rng(67);
  const ProcId p = 8;
  std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
  std::vector<Word> all;
  for (auto& blk : blocks)
    for (int j = 0; j < 12; ++j) {
      blk.push_back(rng.uniform(0, 500));
      all.push_back(blk.back());
    }
  std::sort(all.begin(), all.end());

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    {
      std::vector<std::vector<Word>> out;
      auto progs = bsp_odd_even_sort(p, blocks, out);
      auto m = shuffled_machine(p, seed);
      (void)m.run(progs);
      std::vector<Word> got;
      for (const auto& blk : out)
        got.insert(got.end(), blk.begin(), blk.end());
      EXPECT_EQ(got, all) << "odd-even seed " << seed;
    }
    {
      std::vector<std::vector<Word>> out;
      auto progs = bsp_sample_sort(p, blocks, out);
      auto m = shuffled_machine(p, seed);
      (void)m.run(progs);
      std::vector<Word> got;
      for (const auto& blk : out)
        got.insert(got.end(), blk.begin(), blk.end());
      EXPECT_EQ(got, all) << "sample seed " << seed;
    }
    {
      // Radix sort's stability is defined over (src, tag), not pool
      // order, so shuffling must not affect the multiset or sortedness.
      std::vector<std::vector<Word>> out;
      auto progs = bsp_radix_sort(p, blocks, 501, out);
      auto m = shuffled_machine(p, seed);
      (void)m.run(progs);
      std::vector<Word> got;
      for (const auto& blk : out)
        got.insert(got.end(), blk.begin(), blk.end());
      EXPECT_EQ(got, all) << "radix seed " << seed;
    }
  }
}

TEST(OrderRobustness, Matvec) {
  const ProcId p = 4;
  const std::int64_t n = 8;
  std::vector<Word> x(static_cast<std::size_t>(n), 2);
  std::vector<Word> reference;
  {
    auto progs = bsp_matvec(p, n, x, 5, reference);
    bsp::Machine m(p, bsp::Params{1, 1});
    (void)m.run(progs);
  }
  std::vector<Word> out;
  auto progs = bsp_matvec(p, n, x, 5, out);
  auto m = shuffled_machine(p, 9);
  (void)m.run(progs);
  EXPECT_EQ(out, reference);
}

}  // namespace
}  // namespace bsplogp::algo

// Tests for the LogP collectives of Section 4.1: CB correctness across
// operators, parameters (including the capacity-1 parity-rule regime) and
// join times; stall-freeness; the Proposition-2 time bound; prefix scan;
// tree and optimal broadcast.
#include "src/algo/logp_collectives.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/algo/logp_broadcast_opt.h"
#include "src/algo/mailbox.h"

namespace bsplogp::algo {
namespace {

using logp::Machine;
using logp::Params;
using logp::Proc;
using logp::ProgramFn;
using logp::RunStats;
using logp::Task;

struct CbCase {
  ProcId p;
  Params prm;
};

class CbSweep : public ::testing::TestWithParam<CbCase> {};

RunStats run_cb(ProcId p, Params prm, ReduceOp op,
                std::vector<Word> inputs, std::vector<Word>& outputs,
                bool staggered_join = false) {
  outputs.assign(static_cast<std::size_t>(p), -999);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i, op, staggered_join](Proc& pr) -> Task<> {
      if (staggered_join) co_await pr.compute((i * 37) % 101);
      Mailbox mb(pr);
      outputs[static_cast<std::size_t>(i)] = co_await combine_broadcast(
          mb, inputs[static_cast<std::size_t>(i)], op);
    });
  Machine m(p, prm);
  return m.run(progs);
}

TEST_P(CbSweep, SumIsCorrectAndStallFree) {
  const auto& [p, prm] = GetParam();
  std::vector<Word> in(static_cast<std::size_t>(p));
  Word expect = 0;
  for (ProcId i = 0; i < p; ++i) {
    in[static_cast<std::size_t>(i)] = 3 * i + 1;
    expect += 3 * i + 1;
  }
  std::vector<Word> out;
  const RunStats st = run_cb(p, prm, ReduceOp::Sum, in, out);
  EXPECT_TRUE(st.completed());
  EXPECT_TRUE(st.stall_free()) << "CB must be stall-free by construction";
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expect) << "proc " << i;
}

TEST_P(CbSweep, CompletesWithinPropositionTwoBound) {
  const auto& [p, prm] = GetParam();
  std::vector<Word> in(static_cast<std::size_t>(p), 1);
  std::vector<Word> out;
  const RunStats st = run_cb(p, prm, ReduceOp::And, in, out);
  EXPECT_TRUE(st.completed());
  EXPECT_LE(st.finish_time, cb_time_bound(prm, p))
      << "p=" << p << " L=" << prm.L << " o=" << prm.o << " G=" << prm.G;
}

TEST_P(CbSweep, CorrectWithStaggeredJoinTimes) {
  const auto& [p, prm] = GetParam();
  std::vector<Word> in(static_cast<std::size_t>(p));
  Word expect = std::numeric_limits<Word>::min();
  for (ProcId i = 0; i < p; ++i) {
    in[static_cast<std::size_t>(i)] = (i * 7919) % 1000;
    expect = std::max(expect, in[static_cast<std::size_t>(i)]);
  }
  std::vector<Word> out;
  const RunStats st =
      run_cb(p, prm, ReduceOp::Max, in, out, /*staggered_join=*/true);
  EXPECT_TRUE(st.completed());
  EXPECT_TRUE(st.stall_free());
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expect);
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, CbSweep,
    ::testing::Values(
        CbCase{1, Params{8, 1, 2}}, CbCase{2, Params{8, 1, 2}},
        CbCase{7, Params{8, 1, 2}}, CbCase{16, Params{8, 1, 2}},
        CbCase{33, Params{8, 1, 2}}, CbCase{128, Params{8, 1, 2}},
        // capacity 1: binary tree + parity slot rule
        CbCase{16, Params{4, 1, 4}}, CbCase{64, Params{4, 2, 4}},
        CbCase{37, Params{3, 1, 2}},
        // large capacity: wide trees
        CbCase{64, Params{32, 1, 2}}, CbCase{256, Params{64, 2, 4}},
        CbCase{100, Params{16, 4, 4}}),
    [](const auto& info) {
      const auto& c = info.param;
      return "p" + std::to_string(c.p) + "L" + std::to_string(c.prm.L) + "o" +
             std::to_string(c.prm.o) + "G" + std::to_string(c.prm.G);
    });

TEST(Collectives, CbAllOperators) {
  const ProcId p = 9;
  const Params prm{8, 1, 2};
  const std::vector<Word> in{4, 0, 7, 1, 9, 2, 2, 5, 3};
  struct Case {
    ReduceOp op;
    Word expect;
  };
  for (const auto& [op, expect] :
       {Case{ReduceOp::Sum, 33}, Case{ReduceOp::Max, 9},
        Case{ReduceOp::Min, 0}, Case{ReduceOp::And, 0},
        Case{ReduceOp::Or, 1}}) {
    std::vector<Word> out;
    const RunStats st = run_cb(p, prm, op, in, out);
    EXPECT_TRUE(st.completed());
    for (const Word w : out) EXPECT_EQ(w, expect);
  }
}

TEST(Collectives, BarrierHoldsEveryoneUntilLastJoins) {
  const ProcId p = 12;
  const Params prm{8, 1, 2};
  const Time slowest = 500;
  std::vector<Time> release(static_cast<std::size_t>(p), 0);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      co_await pr.compute(i == 5 ? slowest : 5);
      Mailbox mb(pr);
      co_await barrier(mb);
      release[static_cast<std::size_t>(i)] = pr.now();
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  for (ProcId i = 0; i < p; ++i)
    EXPECT_GT(release[static_cast<std::size_t>(i)], slowest) << "proc " << i;
  // And no one is released absurdly late: within the CB bound of the join.
  for (ProcId i = 0; i < p; ++i)
    EXPECT_LE(release[static_cast<std::size_t>(i)],
              slowest + cb_time_bound(prm, p));
}

TEST(Collectives, TreeBroadcastDeliversRootValue) {
  const ProcId p = 40;
  const Params prm{8, 1, 2};
  std::vector<Word> out(static_cast<std::size_t>(p), -1);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      out[static_cast<std::size_t>(i)] =
          co_await tree_broadcast(mb, i == 0 ? 4242 : -7);
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_TRUE(st.stall_free());
  for (const Word w : out) EXPECT_EQ(w, 4242);
}

TEST(Collectives, PrefixScanMatchesSerialScan) {
  for (const ProcId p : {1, 2, 3, 8, 13, 32, 100}) {
    const Params prm{8, 1, 2};
    std::vector<Word> out(static_cast<std::size_t>(p), -1);
    std::vector<ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([&, i](Proc& pr) -> Task<> {
        Mailbox mb(pr);
        out[static_cast<std::size_t>(i)] =
            co_await prefix_scan(mb, 2 * i + 1, ReduceOp::Sum);
      });
    Machine m(p, prm);
    const RunStats st = m.run(progs);
    EXPECT_TRUE(st.completed()) << "p=" << p;
    Word acc = 0;
    for (ProcId i = 0; i < p; ++i) {
      acc += 2 * i + 1;
      EXPECT_EQ(out[static_cast<std::size_t>(i)], acc) << "p=" << p;
    }
  }
}

TEST(Collectives, PrefixScanMaxWorksToo) {
  const ProcId p = 17;
  const Params prm{12, 1, 3};
  const std::vector<Word> in{5, 2, 8, 1, 9, 3, 9, 0, 4,
                             11, 2, 7, 6, 10, 1, 12, 3};
  std::vector<Word> out(static_cast<std::size_t>(p), -1);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      out[static_cast<std::size_t>(i)] = co_await prefix_scan(
          mb, in[static_cast<std::size_t>(i)], ReduceOp::Max);
    });
  Machine m(p, prm);
  EXPECT_TRUE(m.run(progs).completed());
  Word acc = std::numeric_limits<Word>::min();
  for (ProcId i = 0; i < p; ++i) {
    acc = std::max(acc, in[static_cast<std::size_t>(i)]);
    EXPECT_EQ(out[static_cast<std::size_t>(i)], acc);
  }
}

TEST(Collectives, OptimalBroadcastScheduleCoversEveryoneOnce) {
  const Params prm{10, 2, 3};
  for (const ProcId p : {1, 2, 5, 16, 63, 200}) {
    const BroadcastSchedule s = optimal_broadcast_schedule(p, prm);
    std::vector<int> informed(static_cast<std::size_t>(p), 0);
    informed[0] = 1;
    for (ProcId i = 0; i < p; ++i)
      for (const ProcId c : s.children[static_cast<std::size_t>(i)]) {
        informed[static_cast<std::size_t>(c)] += 1;
        // A sender must be informed before its sends matter.
        EXPECT_LT(s.informed_at[static_cast<std::size_t>(i)],
                  s.informed_at[static_cast<std::size_t>(c)]);
      }
    for (const int k : informed) EXPECT_EQ(k, 1);
  }
}

TEST(Collectives, OptimalBroadcastRunsAndBeatsOrMatchesTree) {
  const ProcId p = 64;
  const Params prm{10, 2, 3};
  const BroadcastSchedule sched = optimal_broadcast_schedule(p, prm);

  std::vector<Word> out(static_cast<std::size_t>(p), -1);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      out[static_cast<std::size_t>(i)] =
          co_await broadcast_opt(mb, i == 0 ? 99 : 0, sched);
    });
  Machine m(p, prm);
  const RunStats opt = m.run(progs);
  EXPECT_TRUE(opt.completed());
  EXPECT_TRUE(opt.stall_free());
  for (const Word w : out) EXPECT_EQ(w, 99);

  std::vector<ProgramFn> tree_progs;
  for (ProcId i = 0; i < p; ++i)
    tree_progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      (void)co_await tree_broadcast(mb, i == 0 ? 99 : 0);
    });
  const RunStats tree = m.run(tree_progs);
  EXPECT_LE(opt.finish_time, tree.finish_time);
  // The schedule's worst-case prediction is an upper bound on the engine's
  // Latest-delivery execution (plus the final acquisition overhead).
  EXPECT_LE(opt.finish_time, sched.makespan() + prm.o + prm.G);
}

TEST(Collectives, RepeatedCbInstancesDoNotInterfere) {
  const ProcId p = 10;
  const Params prm{8, 1, 2};
  std::vector<Word> out(static_cast<std::size_t>(p), 0);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      Word v = i;
      for (int round = 0; round < 5; ++round)
        v = co_await combine_broadcast(mb, v + 1, ReduceOp::Max);
      out[static_cast<std::size_t>(i)] = v;
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  // Round 1: max(i+1) = p. Each later round: max(v+1) = previous + 1.
  for (const Word w : out) EXPECT_EQ(w, p + 4);
}

}  // namespace
}  // namespace bsplogp::algo

// Correctness and cost-shape tests for the BSP algorithm library.
#include "src/algo/bsp_algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/core/rng.h"

namespace bsplogp::algo {
namespace {

bsp::RunStats run(ProcId p, bsp::Params prm, const BspPrograms& progs) {
  bsp::Machine m(p, prm);
  return m.run(progs);
}

TEST(BspAlgorithms, DirectBroadcast) {
  for (const ProcId p : {1, 2, 7, 32}) {
    std::vector<Word> out;
    const auto progs = bsp_broadcast_direct(p, 123, out);
    const auto st = run(p, bsp::Params{2, 5}, progs);
    for (const Word w : out) EXPECT_EQ(w, 123);
    if (p > 1) {
      // One h-relation with h = p-1.
      EXPECT_EQ(st.trace[0].h, p - 1);
    }
  }
}

TEST(BspAlgorithms, TreeBroadcastCorrectAndLowDegree) {
  for (const ProcId p : {1, 2, 9, 64, 100}) {
    for (const ProcId d : {2, 4}) {
      std::vector<Word> out;
      const auto progs = bsp_broadcast_tree(p, d, 77, out);
      const auto st = run(p, bsp::Params{2, 5}, progs);
      for (const Word w : out) EXPECT_EQ(w, 77) << "p=" << p << " d=" << d;
      for (const auto& sc : st.trace) EXPECT_LE(sc.h, d);
    }
  }
}

TEST(BspAlgorithms, TreeVsDirectBroadcastCostTradeoff) {
  // The classic BSP tradeoff: with large g and small l, the tree wins;
  // with large l and small g, direct wins.
  const ProcId p = 256;
  std::vector<Word> out;
  auto time_of = [&](bsp::Params prm, bool tree) {
    const auto progs = tree ? bsp_broadcast_tree(p, 2, 1, out)
                            : bsp_broadcast_direct(p, 1, out);
    return run(p, prm, progs).finish_time;
  };
  EXPECT_LT(time_of(bsp::Params{100, 1}, true),
            time_of(bsp::Params{100, 1}, false));
  EXPECT_LT(time_of(bsp::Params{1, 10'000}, false),
            time_of(bsp::Params{1, 10'000}, true));
}

TEST(BspAlgorithms, AllReduceSumAndMax) {
  for (const ProcId p : {1, 2, 3, 16, 31, 64}) {
    std::vector<Word> in(static_cast<std::size_t>(p));
    for (ProcId i = 0; i < p; ++i)
      in[static_cast<std::size_t>(i)] = (i * 13) % 29 - 7;
    const Word sum = std::accumulate(in.begin(), in.end(), Word{0});
    const Word mx = *std::max_element(in.begin(), in.end());

    std::vector<Word> out;
    auto progs = bsp_allreduce(p, in, ReduceOp::Sum, out);
    EXPECT_FALSE(run(p, bsp::Params{1, 1}, progs).hit_superstep_limit);
    for (const Word w : out) EXPECT_EQ(w, sum) << "p=" << p;

    progs = bsp_allreduce(p, in, ReduceOp::Max, out);
    EXPECT_FALSE(run(p, bsp::Params{1, 1}, progs).hit_superstep_limit);
    for (const Word w : out) EXPECT_EQ(w, mx) << "p=" << p;
  }
}

TEST(BspAlgorithms, AllReduceDegreeBoundedByArity) {
  const ProcId p = 100;
  std::vector<Word> in(100, 1);
  std::vector<Word> out;
  const auto progs = bsp_allreduce(p, in, ReduceOp::Sum, out);
  const auto st = run(p, bsp::Params{1, 1}, progs);
  for (const auto& sc : st.trace) EXPECT_LE(sc.h, 2);
}

TEST(BspAlgorithms, PrefixScanMatchesSerial) {
  for (const ProcId p : {1, 2, 5, 16, 33, 128}) {
    std::vector<Word> in(static_cast<std::size_t>(p));
    for (ProcId i = 0; i < p; ++i)
      in[static_cast<std::size_t>(i)] = (i % 7) - 3;
    std::vector<Word> out;
    const auto progs = bsp_prefix_scan(p, in, ReduceOp::Sum, out);
    const auto st = run(p, bsp::Params{1, 1}, progs);
    EXPECT_FALSE(st.hit_superstep_limit);
    Word acc = 0;
    for (ProcId i = 0; i < p; ++i) {
      acc += in[static_cast<std::size_t>(i)];
      EXPECT_EQ(out[static_cast<std::size_t>(i)], acc) << "p=" << p;
    }
    // ceil(log2 p) communication supersteps, degree 1 each.
    for (const auto& sc : st.trace) EXPECT_LE(sc.h, 1);
    EXPECT_LE(st.supersteps, (p > 1 ? ceil_log2(p) : 0) + 1);
  }
}

TEST(BspAlgorithms, OddEvenSortSortsRandomInput) {
  core::Rng rng(2026);
  for (const ProcId p : {1, 2, 4, 8, 13}) {
    const std::size_t b = 16;
    std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
    std::vector<Word> all;
    for (auto& blk : blocks)
      for (std::size_t j = 0; j < b; ++j) {
        blk.push_back(rng.uniform(-1000, 1000));
        all.push_back(blk.back());
      }
    std::vector<std::vector<Word>> out;
    const auto progs = bsp_odd_even_sort(p, blocks, out);
    const auto st = run(p, bsp::Params{1, 1}, progs);
    EXPECT_FALSE(st.hit_superstep_limit);

    std::sort(all.begin(), all.end());
    std::vector<Word> got;
    for (const auto& blk : out) {
      EXPECT_EQ(blk.size(), b);
      EXPECT_TRUE(std::is_sorted(blk.begin(), blk.end()));
      got.insert(got.end(), blk.begin(), blk.end());
    }
    EXPECT_EQ(got, all) << "p=" << p;
  }
}

TEST(BspAlgorithms, OddEvenSortHEqualsBlockSize) {
  const ProcId p = 8;
  const std::size_t b = 32;
  std::vector<std::vector<Word>> blocks(
      static_cast<std::size_t>(p), std::vector<Word>(b, 1));
  std::vector<std::vector<Word>> out;
  const auto progs = bsp_odd_even_sort(p, blocks, out);
  const auto st = run(p, bsp::Params{1, 1}, progs);
  Time max_h = 0;
  for (const auto& sc : st.trace) max_h = std::max(max_h, sc.h);
  EXPECT_EQ(max_h, static_cast<Time>(b));
}

TEST(BspAlgorithms, MatvecMatchesSerialReference) {
  const ProcId p = 4;
  const std::int64_t n = 16;
  std::vector<Word> x(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] = i - 8;
  std::vector<Word> y;
  const auto progs = bsp_matvec(p, n, x, 77, y);
  const auto st = run(p, bsp::Params{2, 3}, progs);
  EXPECT_FALSE(st.hit_superstep_limit);

  // Serial reference with the same deterministic entry function.
  auto entry = [](std::int64_t r, std::int64_t col) -> Word {
    std::uint64_t h = 77ULL ^ (static_cast<std::uint64_t>(r) * 0x9e3779b9ULL) ^
                      (static_cast<std::uint64_t>(col) * 0x85ebca6bULL);
    h = core::splitmix64(h);
    return static_cast<Word>(h % 10);
  };
  for (std::int64_t r = 0; r < n; ++r) {
    Word acc = 0;
    for (std::int64_t col = 0; col < n; ++col)
      acc += entry(r, col) * x[static_cast<std::size_t>(col)];
    EXPECT_EQ(y[static_cast<std::size_t>(r)], acc) << "row " << r;
  }
  // Communication superstep routes an (n - n/p)-relation.
  EXPECT_EQ(st.trace[0].h, n - n / p);
}

}  // namespace
}  // namespace bsplogp::algo

// Tests for the BSP radix sort and sample sort, natively and — the point
// of the radix workload — through Theorem 2's LogP simulation, where its
// lopsided per-round relations must still run stall-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/algo/bsp_algorithms.h"
#include "src/core/rng.h"
#include "src/xsim/bsp_on_logp.h"

namespace bsplogp::algo {
namespace {

std::vector<std::vector<Word>> random_blocks(ProcId p, std::size_t n,
                                             Word key_range,
                                             core::Rng& rng) {
  std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
  for (auto& blk : blocks)
    for (std::size_t j = 0; j < n; ++j)
      blk.push_back(rng.uniform(0, key_range - 1));
  return blocks;
}

std::vector<Word> flatten_sorted(const std::vector<std::vector<Word>>& b) {
  std::vector<Word> all;
  for (const auto& blk : b) all.insert(all.end(), blk.begin(), blk.end());
  std::sort(all.begin(), all.end());
  return all;
}

void expect_globally_sorted(const std::vector<std::vector<Word>>& out,
                            const std::vector<Word>& reference) {
  std::vector<Word> got;
  for (const auto& blk : out) {
    EXPECT_TRUE(std::is_sorted(blk.begin(), blk.end()));
    got.insert(got.end(), blk.begin(), blk.end());
  }
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got, reference);
}

TEST(BspRadixSort, SortsRandomKeys) {
  core::Rng rng(41);
  for (const ProcId p : {2, 4, 8}) {
    for (const Word range : {Word{7}, Word{64}, Word{1000}}) {
      const auto blocks = random_blocks(p, 12, range, rng);
      std::vector<std::vector<Word>> out;
      const auto progs = bsp_radix_sort(p, blocks, range, out);
      bsp::Machine m(p, bsp::Params{1, 1});
      const auto st = m.run(progs);
      EXPECT_FALSE(st.hit_superstep_limit);
      expect_globally_sorted(out, flatten_sorted(blocks));
    }
  }
}

TEST(BspRadixSort, HandlesHeavyDuplication) {
  core::Rng rng(43);
  const ProcId p = 4;
  const auto blocks = random_blocks(p, 30, 3, rng);  // keys in {0,1,2}
  std::vector<std::vector<Word>> out;
  const auto progs = bsp_radix_sort(p, blocks, 3, out);
  bsp::Machine m(p, bsp::Params{1, 1});
  (void)m.run(progs);
  expect_globally_sorted(out, flatten_sorted(blocks));
  // All equal keys land on one processor: extremely lopsided buckets.
  std::size_t max_bucket = 0;
  for (const auto& blk : out) max_bucket = std::max(max_bucket, blk.size());
  EXPECT_GT(max_bucket, 30u);
}

TEST(BspRadixSort, RunsStallFreeUnderTheorem2) {
  // Section 6's remark: LogP Radixsort's relations can violate the
  // capacity constraint; routed through Theorem 2's protocol they must
  // not stall.
  core::Rng rng(47);
  const ProcId p = 8;
  const auto blocks = random_blocks(p, 10, 16, rng);
  std::vector<std::vector<Word>> out;
  const auto progs = bsp_radix_sort(p, blocks, 16, out);
  xsim::BspOnLogp sim(p, logp::Params{8, 1, 2});
  const auto rep = sim.run(progs);
  EXPECT_TRUE(rep.logp.completed());
  EXPECT_TRUE(rep.logp.stall_free());
  EXPECT_EQ(rep.schedule_violations, 0);
  expect_globally_sorted(out, flatten_sorted(blocks));
}

TEST(BspSampleSort, SortsRandomKeys) {
  core::Rng rng(53);
  for (const ProcId p : {2, 4, 8, 16}) {
    const auto blocks = random_blocks(p, 24, 100000, rng);
    std::vector<std::vector<Word>> out;
    const auto progs = bsp_sample_sort(p, blocks, out);
    bsp::Machine m(p, bsp::Params{1, 1});
    const auto st = m.run(progs);
    EXPECT_FALSE(st.hit_superstep_limit);
    EXPECT_LE(st.supersteps, 5);  // O(1) supersteps: the "direct" style
    expect_globally_sorted(out, flatten_sorted(blocks));
  }
}

TEST(BspSampleSort, BalancedBucketsOnUniformInput) {
  core::Rng rng(59);
  const ProcId p = 8;
  const std::size_t n = 200;
  const auto blocks = random_blocks(p, n, 1 << 30, rng);
  std::vector<std::vector<Word>> out;
  const auto progs = bsp_sample_sort(p, blocks, out);
  bsp::Machine m(p, bsp::Params{1, 1});
  (void)m.run(progs);
  for (const auto& blk : out) {
    EXPECT_GT(blk.size(), n / 4);      // regular sampling keeps buckets
    EXPECT_LT(blk.size(), 4 * n);      // within a small factor of n
  }
}

TEST(BspSampleSort, DegenerateInputs) {
  // All-equal keys: every key lands in one bucket; still sorted.
  const ProcId p = 4;
  std::vector<std::vector<Word>> blocks(
      static_cast<std::size_t>(p), std::vector<Word>(10, 7));
  std::vector<std::vector<Word>> out;
  const auto progs = bsp_sample_sort(p, blocks, out);
  bsp::Machine m(p, bsp::Params{1, 1});
  (void)m.run(progs);
  expect_globally_sorted(out, flatten_sorted(blocks));

  // Empty blocks.
  std::vector<std::vector<Word>> empty(static_cast<std::size_t>(p));
  const auto progs2 = bsp_sample_sort(p, empty, out);
  (void)m.run(progs2);
  for (const auto& blk : out) EXPECT_TRUE(blk.empty());
}

TEST(BspSampleSort, RunsUnderTheorem2) {
  core::Rng rng(61);
  const ProcId p = 4;
  const auto blocks = random_blocks(p, 16, 5000, rng);
  std::vector<std::vector<Word>> out;
  const auto progs = bsp_sample_sort(p, blocks, out);
  xsim::BspOnLogp sim(p, logp::Params{8, 1, 2});
  const auto rep = sim.run(progs);
  EXPECT_TRUE(rep.logp.completed());
  EXPECT_TRUE(rep.logp.stall_free());
  expect_globally_sorted(out, flatten_sorted(blocks));
}

}  // namespace
}  // namespace bsplogp::algo

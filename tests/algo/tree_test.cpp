#include "src/algo/tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bsplogp::algo {
namespace {

TEST(DAryTree, BinaryTreeStructure) {
  const DAryTree t(7, 2);
  EXPECT_TRUE(t.is_root(0));
  EXPECT_EQ(t.children(0), (std::vector<ProcId>{1, 2}));
  EXPECT_EQ(t.children(1), (std::vector<ProcId>{3, 4}));
  EXPECT_EQ(t.children(2), (std::vector<ProcId>{5, 6}));
  EXPECT_TRUE(t.children(3).empty());
  EXPECT_EQ(t.parent(5), 2);
  EXPECT_EQ(t.child_index(5), 0);
  EXPECT_EQ(t.child_index(6), 1);
  EXPECT_EQ(t.height(), 2);
}

TEST(DAryTree, IncompleteLastLevel) {
  const DAryTree t(5, 3);
  EXPECT_EQ(t.children(0), (std::vector<ProcId>{1, 2, 3}));
  EXPECT_EQ(t.children(1), (std::vector<ProcId>{4}));
  EXPECT_TRUE(t.children(2).empty());
  EXPECT_EQ(t.height(), 2);
}

TEST(DAryTree, SingleNode) {
  const DAryTree t(1, 2);
  EXPECT_TRUE(t.children(0).empty());
  EXPECT_EQ(t.height(), 0);
  EXPECT_EQ(t.depth(0), 0);
}

class TreeSweep : public ::testing::TestWithParam<std::pair<ProcId, ProcId>> {
};

TEST_P(TreeSweep, ParentChildRelationsAreConsistent) {
  const auto [p, d] = GetParam();
  const DAryTree t(p, d);
  std::vector<int> child_count(static_cast<std::size_t>(p), 0);
  for (ProcId i = 0; i < p; ++i) {
    const auto kids = t.children(i);
    EXPECT_LE(kids.size(), static_cast<std::size_t>(d));
    for (std::size_t k = 0; k < kids.size(); ++k) {
      EXPECT_EQ(t.parent(kids[k]), i);
      EXPECT_EQ(t.child_index(kids[k]), static_cast<ProcId>(k));
      EXPECT_EQ(t.depth(kids[k]), t.depth(i) + 1);
      child_count[static_cast<std::size_t>(kids[k])] += 1;
    }
  }
  // Every non-root node is the child of exactly one node.
  EXPECT_EQ(child_count[0], 0);
  for (ProcId i = 1; i < p; ++i)
    EXPECT_EQ(child_count[static_cast<std::size_t>(i)], 1) << "node " << i;
}

TEST_P(TreeSweep, HeightMatchesLogBound) {
  const auto [p, d] = GetParam();
  const DAryTree t(p, d);
  int max_depth = 0;
  for (ProcId i = 0; i < p; ++i) max_depth = std::max(max_depth, t.depth(i));
  EXPECT_EQ(t.height(), max_depth);
  if (p > 1) {
    // height ~ log_d p up to rounding.
    const double logd = std::log(static_cast<double>(p)) /
                        std::log(static_cast<double>(d));
    EXPECT_LE(t.height(), static_cast<int>(logd) + 1);
    EXPECT_GE(t.height(), static_cast<int>(logd) - 1);
  }
}

using PP = std::pair<ProcId, ProcId>;
INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeSweep,
    ::testing::Values(PP{1, 2}, PP{2, 2}, PP{3, 2}, PP{15, 2}, PP{16, 2},
                      PP{17, 2}, PP{100, 2}, PP{5, 3}, PP{27, 3}, PP{40, 3},
                      PP{100, 4}, PP{1000, 7}, PP{64, 8}, PP{257, 16}));

}  // namespace
}  // namespace bsplogp::algo

// Tests for the extended collectives: scatter, gather (staggered and
// stalling variants), forced-arity CB, and the time-reversed optimal
// reduction.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/algo/logp_broadcast_opt.h"
#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"

namespace bsplogp::algo {
namespace {

using logp::Machine;
using logp::Params;
using logp::Proc;
using logp::ProgramFn;
using logp::RunStats;
using logp::Task;

TEST(Scatter, DeliversOneWordPerProcessor) {
  const ProcId p = 12;
  const Params prm{8, 1, 2};
  std::vector<Word> values(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    values[static_cast<std::size_t>(i)] = 10 * i + 1;
  std::vector<Word> got(static_cast<std::size_t>(p), -1);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      got[static_cast<std::size_t>(i)] = co_await scatter(mb, values);
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_TRUE(st.stall_free());
  EXPECT_EQ(got, values);
  // Root pipelines at the gap: finish ~ o + (p-1)G + L + o.
  EXPECT_LE(st.finish_time, prm.o + (p - 1) * prm.G + prm.L + prm.o + prm.G);
}

TEST(Gather, StaggeredGatherIsStallFree) {
  const ProcId p = 16;
  const Params prm{8, 1, 2};  // capacity 4 << p-1 senders
  std::vector<Word> got;
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      auto v = co_await gather(mb, i * i, /*start=*/0);
      if (pr.id() == 0) got = std::move(v);
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_TRUE(st.stall_free());
  ASSERT_EQ(got.size(), static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i * i);
}

TEST(Gather, UnstaggeredGatherStallsButMatches) {
  const ProcId p = 16;
  const Params prm{8, 1, 2};
  std::vector<Word> got;
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      auto v = co_await gather(mb, i + 1);  // no common start: burst
      if (pr.id() == 0) got = std::move(v);
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_GT(st.stall_events, 0);  // the burst exceeds capacity 4
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i + 1);
}

TEST(CbArity, ForcedAritiesAgreeOnTheResult) {
  const ProcId p = 27;
  const Params prm{16, 1, 2};  // capacity 8
  for (const ProcId arity : {2, 4, 8, 16}) {
    std::vector<Word> out(static_cast<std::size_t>(p), -1);
    std::vector<ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([&, i, arity](Proc& pr) -> Task<> {
        Mailbox mb(pr);
        out[static_cast<std::size_t>(i)] = co_await combine_broadcast_arity(
            mb, i, ReduceOp::Sum, arity);
      });
    Machine m(p, prm);
    const RunStats st = m.run(progs);
    EXPECT_TRUE(st.completed()) << "arity " << arity;
    for (const Word w : out) EXPECT_EQ(w, p * (p - 1) / 2);
    if (arity <= prm.capacity())
      EXPECT_TRUE(st.stall_free()) << "arity " << arity;
  }
}

TEST(CbArity, OverwideTreeCanStall) {
  // Fan-in beyond the capacity threshold is exactly what the Stalling Rule
  // punishes — the reason the paper picks arity max{2, ceil(L/G)}.
  const ProcId p = 40;
  const Params prm{8, 1, 4};  // capacity 2
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      (void)co_await combine_broadcast_arity(mb, i, ReduceOp::Max, 13);
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_GT(st.stall_events, 0);
}

TEST(ReduceOpt, MatchesSerialReduction) {
  const Params prm{10, 2, 3};
  for (const ProcId p : {1, 2, 7, 32, 100}) {
    const BroadcastSchedule sched = optimal_broadcast_schedule(p, prm);
    std::vector<Word> roots(static_cast<std::size_t>(p), -1);
    std::vector<ProgramFn> progs;
    for (ProcId i = 0; i < p; ++i)
      progs.emplace_back([&, i](Proc& pr) -> Task<> {
        Mailbox mb(pr);
        roots[static_cast<std::size_t>(i)] =
            co_await reduce_opt(mb, 3 * i + 1, ReduceOp::Sum, sched);
      });
    Machine m(p, prm);
    const RunStats st = m.run(progs);
    EXPECT_TRUE(st.completed()) << "p=" << p;
    EXPECT_TRUE(st.stall_free()) << "p=" << p;
    Word expect = 0;
    for (ProcId i = 0; i < p; ++i) expect += 3 * i + 1;
    EXPECT_EQ(roots[0], expect) << "p=" << p;
  }
}

TEST(ReduceOpt, MakespanMirrorsBroadcast) {
  const ProcId p = 64;
  const Params prm{10, 2, 3};
  const BroadcastSchedule sched = optimal_broadcast_schedule(p, prm);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      (void)co_await reduce_opt(mb, i, ReduceOp::Max, sched);
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  // The reversed schedule runs inside horizon = makespan + 2(L+o).
  EXPECT_LE(st.finish_time, sched.makespan() + 3 * (prm.L + prm.o));
}

TEST(ReduceOpt, BeatsOrMatchesTreeCbAscent) {
  // Sanity ablation: the greedy reversed schedule should not lose badly to
  // the d-ary-tree CB on the same machine (both are O(L log p / ...)).
  const ProcId p = 64;
  const Params prm{10, 2, 3};
  const BroadcastSchedule sched = optimal_broadcast_schedule(p, prm);

  std::vector<ProgramFn> opt_progs, cb_progs;
  for (ProcId i = 0; i < p; ++i) {
    opt_progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      (void)co_await reduce_opt(mb, i, ReduceOp::Sum, sched);
    });
    cb_progs.emplace_back([&, i](Proc& pr) -> Task<> {
      Mailbox mb(pr);
      (void)co_await combine_broadcast(mb, i, ReduceOp::Sum);
    });
  }
  Machine m(p, prm);
  const Time t_opt = m.run(opt_progs).finish_time;
  const Time t_cb = m.run(cb_progs).finish_time;
  EXPECT_LE(t_opt, 2 * t_cb);  // same order; CB also pays the broadcast leg
}

}  // namespace
}  // namespace bsplogp::algo

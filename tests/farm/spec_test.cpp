// --farm / --connect spec parsing (src/farm/spec.h): accepted forms land
// in the right Spec fields; every rejection's complaint enumerates the
// valid forms (the harness forwards these verbatim to the exit-2 path).
#include <gtest/gtest.h>

#include <string>

#include "src/farm/spec.h"

namespace bsplogp::farm {
namespace {

TEST(FarmSpec, SpawnFormParsesCountAndDefaults) {
  Spec s;
  std::string err;
  ASSERT_TRUE(parse_farm_spec("3", &s, &err)) << err;
  EXPECT_EQ(s.role, Spec::Role::kServer);
  EXPECT_EQ(s.spawn_workers, 3);
  EXPECT_EQ(s.listen_host, "127.0.0.1");
  EXPECT_EQ(s.listen_port, 0);  // ephemeral
  EXPECT_DOUBLE_EQ(s.timeout_s, 30.0);
  EXPECT_DOUBLE_EQ(s.grace_s, 10.0);
  EXPECT_EQ(s.respawns, 4);
}

TEST(FarmSpec, SpawnFormAcceptsEveryKnob) {
  Spec s;
  std::string err;
  ASSERT_TRUE(parse_farm_spec("2,timeout=5,respawns=1,grace=0.5", &s, &err))
      << err;
  EXPECT_EQ(s.spawn_workers, 2);
  EXPECT_DOUBLE_EQ(s.timeout_s, 5.0);
  EXPECT_EQ(s.respawns, 1);
  EXPECT_DOUBLE_EQ(s.grace_s, 0.5);
}

TEST(FarmSpec, ListenFormParsesPortAndWorkers) {
  Spec s;
  std::string err;
  ASSERT_TRUE(parse_farm_spec("listen:7000,workers=4,timeout=60", &s, &err))
      << err;
  EXPECT_EQ(s.role, Spec::Role::kServer);
  EXPECT_EQ(s.spawn_workers, 0);
  EXPECT_EQ(s.listen_host, "");  // all interfaces
  EXPECT_EQ(s.listen_port, 7000);
  EXPECT_EQ(s.expect_workers, 4);
  EXPECT_DOUBLE_EQ(s.timeout_s, 60.0);
}

TEST(FarmSpec, RejectionsEnumerateTheValidForms) {
  Spec s;
  std::string err;
  for (const char* bad :
       {"", "zero", "0", "-1", "1025", "2,unknown=1", "2,timeout=-3",
        "2,workers=2",          // workers is listen-only
        "listen:0", "listen:respawns=1",
        "listen:7000,respawns=1"}) {  // respawns is spawn-only
    EXPECT_FALSE(parse_farm_spec(bad, &s, &err)) << bad;
    EXPECT_NE(err.find(farm_spec_forms()), std::string::npos)
        << "complaint for '" << bad << "' does not enumerate the forms: "
        << err;
  }
}

TEST(ConnectSpec, ParsesHostPortAndRejectsTheRest) {
  Spec s;
  std::string err;
  ASSERT_TRUE(parse_connect_spec("farmhost:7000", &s, &err)) << err;
  EXPECT_EQ(s.role, Spec::Role::kWorker);
  EXPECT_EQ(s.connect_host, "farmhost");
  EXPECT_EQ(s.connect_port, 7000);

  for (const char* bad : {"", "nohost", ":7000", "host:", "host:0",
                          "host:65536", "host:port"}) {
    EXPECT_FALSE(parse_connect_spec(bad, &s, &err)) << bad;
    EXPECT_NE(err.find("HOST:PORT"), std::string::npos) << err;
  }
}

}  // namespace
}  // namespace bsplogp::farm

// Farm wire protocol (src/farm/wire.h): every frame builder round-trips
// through write_frame/read_frame over a real socketpair, WireReader
// rejects short reads, and read_frame rejects the poisoned framings —
// zero length, oversize length, unknown type, EOF mid-frame.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "src/farm/wire.h"

namespace bsplogp::farm {
namespace {

/// A connected local socket pair; [0] and [1] are the two ends.
class Pair {
 public:
  Pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~Pair() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  [[nodiscard]] int a() const { return fds_[0]; }
  [[nodiscard]] int b() const { return fds_[1]; }
  void close_b() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }

 private:
  int fds_[2] = {-1, -1};
};

TEST(Wire, HelloRoundTripsThroughARealSocket) {
  Pair p;
  ASSERT_TRUE(write_frame(p.a(), make_hello("build-abc", "thm1")));
  Frame f;
  ASSERT_TRUE(read_frame(p.b(), &f));
  EXPECT_EQ(f.type, Type::kHello);
  WireReader r(f.payload);
  EXPECT_EQ(r.u32(), kProtocolVersion);
  EXPECT_EQ(r.str(), "build-abc");
  EXPECT_EQ(r.str(), "thm1");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
}

TEST(Wire, EveryFrameTypeRoundTrips) {
  Pair p;
  ASSERT_TRUE(write_frame(p.a(), make_welcome()));
  ASSERT_TRUE(write_frame(p.a(), make_reject("build id mismatch")));
  ASSERT_TRUE(write_frame(p.a(), make_sweep(3, 240)));
  ASSERT_TRUE(write_frame(p.a(), make_range(16, 32)));
  ASSERT_TRUE(write_frame(p.a(), make_result(17, "[1, 2.5, true]")));
  ASSERT_TRUE(write_frame(p.a(), make_sweep_done(3)));
  ASSERT_TRUE(write_frame(p.a(), make_shutdown()));

  Frame f;
  ASSERT_TRUE(read_frame(p.b(), &f));
  EXPECT_EQ(f.type, Type::kWelcome);
  EXPECT_TRUE(f.payload.empty());

  ASSERT_TRUE(read_frame(p.b(), &f));
  EXPECT_EQ(f.type, Type::kReject);
  EXPECT_EQ(WireReader(f.payload).str(), "build id mismatch");

  ASSERT_TRUE(read_frame(p.b(), &f));
  EXPECT_EQ(f.type, Type::kSweep);
  {
    WireReader r(f.payload);
    EXPECT_EQ(r.u64(), 3u);
    EXPECT_EQ(r.u64(), 240u);
    EXPECT_TRUE(r.done());
  }

  ASSERT_TRUE(read_frame(p.b(), &f));
  EXPECT_EQ(f.type, Type::kRange);
  {
    WireReader r(f.payload);
    EXPECT_EQ(r.u64(), 16u);
    EXPECT_EQ(r.u64(), 32u);
  }

  ASSERT_TRUE(read_frame(p.b(), &f));
  EXPECT_EQ(f.type, Type::kResult);
  {
    WireReader r(f.payload);
    EXPECT_EQ(r.u64(), 17u);
    EXPECT_EQ(r.rest(), "[1, 2.5, true]");
  }

  ASSERT_TRUE(read_frame(p.b(), &f));
  EXPECT_EQ(f.type, Type::kSweepDone);
  EXPECT_EQ(WireReader(f.payload).u64(), 3u);

  ASSERT_TRUE(read_frame(p.b(), &f));
  EXPECT_EQ(f.type, Type::kShutdown);
}

TEST(Wire, ReaderPoisonsOnShortReadsAndStaysPoisoned) {
  const std::string two_bytes("\x01\x02", 2);
  WireReader r(two_bytes);
  EXPECT_EQ(r.u32(), 0u);  // needs 4 bytes, has 2
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // poisoned forever
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.rest(), "");
}

TEST(Wire, ReaderRejectsStringLengthPastTheEnd) {
  // Declared string length 100 with 1 byte of body.
  std::string s;
  put_u32(&s, 100);
  s.push_back('x');
  WireReader r(s);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

void write_raw(int fd, const std::string& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

TEST(Wire, RejectsZeroLengthFrame) {
  Pair p;
  std::string raw;
  put_u32(&raw, 0);  // a frame must at least carry its type byte
  write_raw(p.a(), raw);
  Frame f;
  EXPECT_FALSE(read_frame(p.b(), &f));
}

TEST(Wire, RejectsOversizeFrameWithoutReadingTheBody) {
  Pair p;
  std::string raw;
  put_u32(&raw, kMaxFrameBytes + 1);
  write_raw(p.a(), raw);
  Frame f;
  // Rejected on the header alone — no 64 MiB allocation, no body wait.
  EXPECT_FALSE(read_frame(p.b(), &f));
}

TEST(Wire, RejectsUnknownFrameType) {
  Pair p;
  std::string raw;
  put_u32(&raw, 1);
  raw.push_back(static_cast<char>(0x7f));
  write_raw(p.a(), raw);
  Frame f;
  EXPECT_FALSE(read_frame(p.b(), &f));
}

TEST(Wire, EofMidFrameFailsTheRead) {
  Pair p;
  std::string raw;
  put_u32(&raw, 10);  // promises 10 bytes...
  raw.push_back(static_cast<char>(Type::kResult));
  write_raw(p.a(), raw);  // ...delivers 1
  ::shutdown(p.a(), SHUT_WR);
  Frame f;
  EXPECT_FALSE(read_frame(p.b(), &f));
}

TEST(Wire, EofBeforeAnyFrameFailsTheRead) {
  Pair p;
  ::shutdown(p.a(), SHUT_WR);
  Frame f;
  EXPECT_FALSE(read_frame(p.b(), &f));
}

TEST(Wire, WriteToAClosedPeerFailsInsteadOfRaisingSigpipe) {
  Pair p;
  p.close_b();
  // First write may land in the kernel buffer; keep writing until the
  // RST surfaces. The contract: failure comes back as `false`, never as
  // a fatal SIGPIPE.
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i)
    failed = !write_frame(p.a(), make_result(1, std::string(1024, 'x')));
  EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace bsplogp::farm

// The sweep-server coordinator's failure matrix (src/farm/server.h),
// driven by fake in-process workers over real TCP:
//   - happy path: workers serve ranges, results merge by grid index
//   - handshake: a mismatched build id is REJECTed and never assigned
//   - worker killed mid-range: the unfinished tail is re-queued
//   - silent worker: the progress timeout re-queues its range
//   - no workers at all: the coordinator computes everything itself
//   - multi-sweep late joiner: history replay fast-forwards it
// Every test asserts the merged result vector equals the locally
// computed one — value-identical merge is what the byte-identity e2e
// check (cmake/farm_e2e.cmake) rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/farm/server.h"
#include "src/farm/socket.h"
#include "src/farm/wire.h"

namespace bsplogp::farm {
namespace {

long long value_at(std::size_t i) {
  return 1000 + static_cast<long long>(i) * static_cast<long long>(i);
}

/// A test grid over long long slots; payloads are plain decimal strings
/// (the server treats payloads as opaque bytes).
struct TestGrid {
  explicit TestGrid(std::size_t n) : out(n, -1) {}

  [[nodiscard]] GridView view() {
    GridView g;
    g.n = out.size();
    g.compute_range = [this](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        out[i] = value_at(i);
        ++computed_locally;
      }
    };
    g.replay = [](std::size_t) { return false; };
    g.reencode = [this](std::size_t i) { return std::to_string(out[i]); };
    g.install = [this](std::size_t i, const std::string& p) {
      out[i] = std::strtoll(p.c_str(), nullptr, 10);
      return true;
    };
    g.accept = g.install;
    return g;
  }

  void expect_complete() const {
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], value_at(i)) << "slot " << i;
  }

  std::vector<long long> out;
  int computed_locally = 0;
};

ServerOptions options(double timeout_s, double grace_s) {
  ServerOptions opt;
  opt.spec.role = Spec::Role::kServer;
  opt.spec.listen_host = "127.0.0.1";
  opt.spec.listen_port = 0;  // ephemeral
  opt.spec.timeout_s = timeout_s;
  opt.spec.grace_s = grace_s;
  opt.build_id = "test-build";
  opt.bench = "unit";
  return opt;
}

/// Dials the server and completes the handshake; returns the socket
/// (invalid on REJECT, with the reason in *reject_reason).
Socket join(int port, const std::string& build,
            std::string* reject_reason = nullptr) {
  Socket s = tcp_connect("127.0.0.1", port);
  EXPECT_TRUE(s.valid());
  EXPECT_TRUE(write_frame(s.fd(), make_hello(build, "unit")));
  Frame f;
  EXPECT_TRUE(read_frame(s.fd(), &f));
  if (f.type == Type::kReject) {
    if (reject_reason != nullptr) {
      WireReader r(f.payload);
      *reject_reason = r.str();
    }
    return Socket{};
  }
  EXPECT_EQ(f.type, Type::kWelcome);
  return s;
}

/// A scripted worker: serves every RANGE of the current sweep, dying
/// after `die_after_results` total sends (< 0 = never), until SWEEP_DONE.
/// Returns the indices received via the end-of-sweep broadcast.
std::vector<long long> serve_one_sweep(Socket& s, int die_after_results) {
  std::vector<long long> broadcast;
  Frame f;
  if (!read_frame(s.fd(), &f)) return broadcast;
  EXPECT_EQ(f.type, Type::kSweep);
  int sent = 0;
  for (;;) {
    if (!read_frame(s.fd(), &f)) return broadcast;
    if (f.type == Type::kRange) {
      WireReader r(f.payload);
      const std::uint64_t b = r.u64();
      const std::uint64_t e = r.u64();
      for (std::uint64_t i = b; i < e; ++i) {
        if (die_after_results >= 0 && sent >= die_after_results) {
          s.close();  // abrupt death mid-range
          return broadcast;
        }
        EXPECT_TRUE(write_frame(
            s.fd(), make_result(i, std::to_string(value_at(i)))));
        ++sent;
      }
    } else if (f.type == Type::kResult) {
      WireReader r(f.payload);
      r.u64();
      broadcast.push_back(std::strtoll(r.rest().c_str(), nullptr, 10));
    } else if (f.type == Type::kSweepDone) {
      return broadcast;
    } else {
      ADD_FAILURE() << "unexpected frame type "
                    << static_cast<int>(f.type);
      return broadcast;
    }
  }
}

TEST(FarmServer, SingleWorkerServesTheWholeGridAndMergesInOrder) {
  FarmServerDispatcher server(options(5.0, 5.0));
  server.start();
  ASSERT_GT(server.port(), 0);

  std::vector<long long> broadcast;
  std::thread worker([&] {
    Socket s = join(server.port(), "test-build");
    ASSERT_TRUE(s.valid());
    broadcast = serve_one_sweep(s, -1);
  });

  TestGrid grid(17);
  server.run(grid.view());
  worker.join();

  grid.expect_complete();
  EXPECT_EQ(grid.computed_locally, 0);  // everything farmed
  EXPECT_EQ(server.stats().joined, 1);
  EXPECT_EQ(server.stats().farmed, 17);
  EXPECT_EQ(server.stats().fallback, 0);
  // The broadcast carried every slot, in grid order.
  ASSERT_EQ(broadcast.size(), 17u);
  for (std::size_t i = 0; i < broadcast.size(); ++i)
    EXPECT_EQ(broadcast[i], value_at(i));
}

TEST(FarmServer, TwoWorkersShareTheGrid) {
  FarmServerDispatcher server(options(5.0, 5.0));
  server.start();

  auto work = [&] {
    Socket s = join(server.port(), "test-build");
    ASSERT_TRUE(s.valid());
    (void)serve_one_sweep(s, -1);
  };
  std::thread w1(work), w2(work);

  TestGrid grid(64);
  server.run(grid.view());
  w1.join();
  w2.join();

  grid.expect_complete();
  EXPECT_EQ(grid.computed_locally, 0);
  EXPECT_EQ(server.stats().joined, 2);
  EXPECT_EQ(server.stats().farmed, 64);
  EXPECT_GE(server.stats().ranges, 2);
}

TEST(FarmServer, MismatchedBuildIdIsRejectedAtHandshake) {
  // Short grace: after the poisoned worker is turned away the server
  // gives up waiting and computes the sweep itself.
  FarmServerDispatcher server(options(5.0, 0.3));
  server.start();

  std::string reason;
  std::thread worker([&] {
    Socket s = join(server.port(), "stale-build", &reason);
    EXPECT_FALSE(s.valid());
  });

  TestGrid grid(9);
  server.run(grid.view());
  worker.join();

  grid.expect_complete();
  EXPECT_EQ(server.stats().rejected, 1);
  EXPECT_EQ(server.stats().joined, 0);
  EXPECT_EQ(server.stats().farmed, 0);
  EXPECT_EQ(server.stats().fallback, 9);
  EXPECT_NE(reason.find("build id mismatch"), std::string::npos) << reason;
}

TEST(FarmServer, WorkerKilledMidRangeHasItsTailRequeued) {
  FarmServerDispatcher server(options(5.0, 0.3));
  server.start();

  std::thread worker([&] {
    Socket s = join(server.port(), "test-build");
    ASSERT_TRUE(s.valid());
    (void)serve_one_sweep(s, 2);  // 2 results, then abrupt close
  });

  TestGrid grid(12);
  server.run(grid.view());
  worker.join();

  // The dead worker's unfinished tail was re-queued and (no replacement
  // worker ever came) computed by the coordinator — the merged vector is
  // still exactly the local one.
  grid.expect_complete();
  EXPECT_EQ(server.stats().farmed, 2);
  EXPECT_EQ(server.stats().fallback, 10);
  EXPECT_EQ(grid.computed_locally, 10);
  EXPECT_EQ(server.stats().deaths, 1);
}

TEST(FarmServer, SilentWorkerTimesOutAndItsRangeIsRequeued) {
  // Progress timeout 0.3s, grace 0.6s: the wedged worker is cut loose at
  // ~0.3s and the remainder falls back locally.
  FarmServerDispatcher server(options(0.3, 0.6));
  server.start();

  std::thread worker([&] {
    Socket s = join(server.port(), "test-build");
    ASSERT_TRUE(s.valid());
    Frame f;
    ASSERT_TRUE(read_frame(s.fd(), &f));  // SWEEP
    EXPECT_EQ(f.type, Type::kSweep);
    ASSERT_TRUE(read_frame(s.fd(), &f));  // RANGE...
    EXPECT_EQ(f.type, Type::kRange);
    // ...and then silence. Wait for the server to hang up on us.
    while (read_frame(s.fd(), &f)) {
    }
  });

  TestGrid grid(8);
  server.run(grid.view());
  worker.join();

  grid.expect_complete();
  EXPECT_EQ(server.stats().timeouts, 1);
  EXPECT_EQ(server.stats().farmed, 0);
  EXPECT_EQ(server.stats().fallback, 8);
}

TEST(FarmServer, NoWorkersMeansLocalFallbackAfterGrace) {
  FarmServerDispatcher server(options(1.0, 0.05));
  TestGrid grid(5);
  server.run(grid.view());
  grid.expect_complete();
  EXPECT_EQ(grid.computed_locally, 5);
  EXPECT_EQ(server.stats().fallback, 5);
  EXPECT_EQ(server.stats().farmed, 0);
}

TEST(FarmServer, LateJoinerIsFastForwardedThroughCompletedSweeps) {
  FarmServerDispatcher server(options(5.0, 0.2));
  server.start();

  // Sweep 1 completes with no workers at all (local fallback)...
  TestGrid sweep1(6);
  server.run(sweep1.view());
  sweep1.expect_complete();

  // ...then a worker joins before sweep 2. Its own main() would be at
  // *its* sweep 1, so the server must replay sweep 1's frames first.
  std::vector<long long> replayed;
  std::vector<long long> broadcast2;
  std::atomic<bool> hello_sent{false};
  std::thread worker([&] {
    Socket s = tcp_connect("127.0.0.1", server.port());
    EXPECT_TRUE(s.valid());
    EXPECT_TRUE(write_frame(s.fd(), make_hello("test-build", "unit")));
    hello_sent = true;
    Frame f;
    EXPECT_TRUE(read_frame(s.fd(), &f));  // blocks until sweep 2 accepts
    EXPECT_EQ(f.type, Type::kWelcome);
    replayed = serve_one_sweep(s, -1);    // sweep 1: broadcast only
    broadcast2 = serve_one_sweep(s, -1);  // sweep 2: serves ranges
  });

  // Only start sweep 2 once the join is in flight: its HELLO is then
  // already buffered, so the accept beats the (short) grace deadline.
  while (!hello_sent)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  TestGrid sweep2(10);
  server.run(sweep2.view());
  worker.join();

  sweep2.expect_complete();
  // The replayed sweep-1 history matches what the server computed.
  ASSERT_EQ(replayed.size(), 6u);
  for (std::size_t i = 0; i < replayed.size(); ++i)
    EXPECT_EQ(replayed[i], value_at(i));
  ASSERT_EQ(broadcast2.size(), 10u);
  // Sweep 2 was actually farmed to the late joiner.
  EXPECT_EQ(server.stats().farmed, 10);
  EXPECT_EQ(sweep2.computed_locally, 0);
}

}  // namespace
}  // namespace bsplogp::farm

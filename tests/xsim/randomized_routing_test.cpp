// Theorem-3 protocol tests: known-degree h-relations complete, are usually
// clean (no stalls, no cleanup) when capacity is large relative to log p,
// and respect the beta*G*h time shape.
#include "src/xsim/randomized_routing.h"

#include <gtest/gtest.h>

#include "src/core/rng.h"

namespace bsplogp::xsim {
namespace {

TEST(RandomizedRouting, DeliversEverything) {
  core::Rng rng(3);
  const logp::Params prm{32, 1, 2};  // capacity 16
  for (const ProcId p : {4, 8, 16}) {
    for (const Time h : {4, 16}) {
      const auto rel = routing::random_regular(p, h, rng);
      RandomizedRoutingOptions opt;
      opt.seed = 42;
      const auto rep = route_randomized(rel, prm, opt);
      EXPECT_TRUE(rep.logp.completed()) << "p=" << p << " h=" << h;
      EXPECT_EQ(rep.logp.messages,
                static_cast<std::int64_t>(rel.size()));
      EXPECT_EQ(rep.logp.messages_acquired,
                static_cast<std::int64_t>(rel.size()));
    }
  }
}

TEST(RandomizedRouting, UsuallyCleanWithLargeCapacity) {
  // capacity 16 >= 4*log2(16): the theorem's regime. With oversample 2 the
  // per-round overflow probability is tiny; most seeds must be clean.
  core::Rng rng(5);
  const logp::Params prm{64, 1, 4};  // capacity 16
  const ProcId p = 16;
  const Time h = 64;
  int clean = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const auto rel = routing::random_regular(p, h, rng);
    RandomizedRoutingOptions opt;
    opt.oversample = 3.0;  // 1 + delta with delta = 2, the theorem's shape
    opt.seed = 1000 + static_cast<std::uint64_t>(t);
    const auto rep = route_randomized(rel, prm, opt);
    EXPECT_TRUE(rep.logp.completed());
    clean += rep.clean();
    if (rep.clean())
      EXPECT_LE(rep.protocol_time(),
                RandomizedRoutingReport::bound(prm, h, opt.oversample));
  }
  EXPECT_GE(clean, 8) << "stalling should be rare in the theorem's regime";
}

TEST(RandomizedRouting, RoundCountFollowsFormula) {
  const logp::Params prm{32, 1, 2};  // capacity 16
  core::Rng rng(6);
  const auto rel = routing::random_regular(8, 32, rng);
  RandomizedRoutingOptions opt;
  opt.oversample = 2.0;
  const auto rep = route_randomized(rel, prm, opt);
  EXPECT_EQ(rep.h, 32);
  EXPECT_EQ(rep.rounds, 4);  // ceil(2 * 32 / 16)
}

TEST(RandomizedRouting, HigherOversampleReducesLeftovers) {
  core::Rng rng(7);
  const logp::Params prm{8, 1, 2};  // capacity 4: tight, overflows likely
  const ProcId p = 8;
  const Time h = 32;
  std::int64_t tight_left = 0, loose_left = 0;
  for (int t = 0; t < 5; ++t) {
    const auto rel = routing::random_regular(p, h, rng);
    RandomizedRoutingOptions tight;
    tight.oversample = 1.0;
    tight.seed = static_cast<std::uint64_t>(t);
    tight_left += route_randomized(rel, prm, tight).leftover;
    RandomizedRoutingOptions loose;
    loose.oversample = 4.0;
    loose.seed = static_cast<std::uint64_t>(t);
    loose_left += route_randomized(rel, prm, loose).leftover;
  }
  EXPECT_GE(tight_left, loose_left);
}

TEST(RandomizedRouting, HotspotCompletesDespiteStalling) {
  // All-to-one violates any capacity eventually; the Stalling Rule must
  // carry the cleanup phase to completion.
  const logp::Params prm{8, 1, 2};
  const auto rel = routing::hotspot(9, 0, 4);
  const auto rep = route_randomized(rel, prm);
  EXPECT_TRUE(rep.logp.completed());
  EXPECT_EQ(rep.logp.messages,
            static_cast<std::int64_t>(rel.size()));
}

TEST(RandomizedRouting, DeterministicPerSeed) {
  core::Rng rng(8);
  const logp::Params prm{16, 1, 2};
  const auto rel = routing::random_regular(8, 8, rng);
  RandomizedRoutingOptions opt;
  opt.seed = 99;
  const auto a = route_randomized(rel, prm, opt);
  const auto b = route_randomized(rel, prm, opt);
  EXPECT_EQ(a.protocol_time(), b.protocol_time());
  EXPECT_EQ(a.leftover, b.leftover);
  EXPECT_EQ(a.logp.stall_events, b.logp.stall_events);
}

}  // namespace
}  // namespace bsplogp::xsim

// Theorem-1 simulation tests: the same LogP coroutine program must compute
// the same results natively and under the BSP-backed cycle executor, with
// the predicted cost shape.
#include "src/xsim/logp_on_bsp.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"

namespace bsplogp::xsim {
namespace {

using logp::Params;
using logp::Proc;
using logp::ProgramFn;
using logp::Task;

// End-to-end exchange tests run the registry's all_to_all family (payload
// sums checked against the native machine); the compute path is exercised
// by the local programs further down.

TEST(LogpOnBsp, AllToAllMatchesNativeResults) {
  const ProcId p = 8;
  const Params prm{8, 1, 2};

  std::vector<Word> native_sums;
  logp::Machine native(p, prm);
  const auto native_stats = native.run(workload::all_to_all(p, &native_sums));
  ASSERT_TRUE(native_stats.completed());
  ASSERT_TRUE(native_stats.stall_free());

  std::vector<Word> sim_sums;
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{prm.G, prm.L};
  LogpOnBsp sim(p, prm, opt);
  const LogpOnBspReport rep = sim.run(workload::all_to_all(p, &sim_sums));

  EXPECT_EQ(sim_sums, native_sums);
  EXPECT_FALSE(rep.stuck);
  // 7 submissions per destination per run, spread over G-paced cycles of
  // L/2 = 4 steps: at most 2 per cycle <= capacity 4.
  EXPECT_TRUE(rep.capacity_ok);
  EXPECT_GT(rep.logical_finish, 0);
  EXPECT_GT(rep.bsp.finish_time, 0);
}

TEST(LogpOnBsp, CyclesAreHalfL) {
  const Params prm{16, 1, 2};
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{2, 16};
  LogpOnBsp sim(4, prm, opt);
  EXPECT_EQ(sim.cycle_length(), 8);
}

TEST(LogpOnBsp, CombineBroadcastRunsUnderSimulation) {
  const ProcId p = 16;
  const Params prm{8, 1, 2};
  std::vector<Word> out(static_cast<std::size_t>(p), -1);
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([&out, i](Proc& pr) -> Task<> {
      algo::Mailbox mb(pr);
      out[static_cast<std::size_t>(i)] =
          co_await algo::combine_broadcast(mb, i + 1, algo::ReduceOp::Sum);
    });
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{prm.G, prm.L};
  LogpOnBsp sim(p, prm, opt);
  const LogpOnBspReport rep = sim.run(progs);
  EXPECT_FALSE(rep.stuck);
  EXPECT_TRUE(rep.capacity_ok);
  for (const Word w : out) EXPECT_EQ(w, 16 * 17 / 2);
}

TEST(LogpOnBsp, SlowdownScalesWithGRatio) {
  // Theorem 1: slowdown O(1 + g/G + l/L). Fixing l = L and raising g must
  // raise the BSP time by (close to) the communication term only.
  const ProcId p = 8;
  const Params prm{8, 1, 2};
  auto bsp_time = [&](Time g) {
    std::vector<Word> sums;
    LogpOnBspOptions opt;
    opt.bsp = bsp::Params{g, prm.L};
    LogpOnBsp sim(p, prm, opt);
    return sim.run(workload::all_to_all(p, &sums)).bsp.finish_time;
  };
  const Time t1 = bsp_time(prm.G);
  const Time t8 = bsp_time(8 * prm.G);
  EXPECT_GT(t8, t1);
  // The increase is bounded by the h-relation volume: (8-1)*G * sum of h.
  // Sanity-check the shape rather than the constant:
  EXPECT_LT(static_cast<double>(t8) / static_cast<double>(t1), 9.0);
}

TEST(LogpOnBsp, HotspotTripsCapacityFlag) {
  // 9 simultaneous senders to one destination exceed capacity 4 within one
  // cycle: the program is not stall-free and the simulation must say so.
  const ProcId p = 10;
  const Params prm{8, 1, 2};
  std::vector<ProgramFn> progs;
  progs.emplace_back([p](Proc& pr) -> Task<> {
    for (ProcId k = 1; k < p; ++k) (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([](Proc& pr) -> Task<> { co_await pr.send(0, 1); });
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{prm.G, prm.L};
  LogpOnBsp sim(p, prm, opt);
  const LogpOnBspReport rep = sim.run(progs);
  EXPECT_FALSE(rep.capacity_ok);
  EXPECT_GT(rep.max_cycle_fan_in, prm.capacity());
  EXPECT_FALSE(rep.stuck);  // still completes; only the guarantee is void
}

TEST(LogpOnBsp, DeadlockedProgramReportsStuck) {
  const Params prm{8, 1, 2};
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& pr) -> Task<> { (void)co_await pr.recv(); });
  progs.emplace_back([](Proc& pr) -> Task<> { co_await pr.compute(1); });
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{2, 8};
  opt.max_supersteps = 50;
  LogpOnBsp sim(2, prm, opt);
  const LogpOnBspReport rep = sim.run(progs);
  EXPECT_TRUE(rep.stuck);
}

TEST(LogpOnBsp, GapTimingPreservedAcrossCycleBoundaries) {
  // A burst of sends longer than one cycle must keep the G spacing across
  // the boundary: sender's logical finish = o + (n-1)G, same as native.
  const ProcId p = 2;
  const Params prm{8, 1, 4};  // cycle = 4, one send every G = 4
  const int n = 6;
  auto make = [&](std::vector<Time>& finish) {
    std::vector<ProgramFn> progs;
    progs.emplace_back([&finish, n](Proc& pr) -> Task<> {
      for (int k = 0; k < n; ++k) co_await pr.send(1, k);
      finish[0] = pr.now();
    });
    progs.emplace_back([&finish, n](Proc& pr) -> Task<> {
      for (int k = 0; k < n; ++k) (void)co_await pr.recv();
      finish[1] = pr.now();
    });
    return progs;
  };
  std::vector<Time> native_finish(2), sim_finish(2);
  logp::Machine native(p, prm);
  (void)native.run(make(native_finish));
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{4, 8};
  LogpOnBsp sim(p, prm, opt);
  const auto rep = sim.run(make(sim_finish));
  EXPECT_TRUE(rep.capacity_ok);
  EXPECT_EQ(sim_finish[0], native_finish[0]);  // o + (n-1)G on both
}

TEST(LogpOnBsp, PredictedSlowdownFormula) {
  const Params prm{16, 1, 4};
  EXPECT_DOUBLE_EQ(predicted_slowdown_thm1(prm, bsp::Params{4, 16}), 3.0);
  EXPECT_DOUBLE_EQ(predicted_slowdown_thm1(prm, bsp::Params{8, 32}), 5.0);
}

}  // namespace
}  // namespace bsplogp::xsim

// Theorem-2 simulation tests: BSP programs must produce identical outputs
// on the native BSP machine and under the LogP superstep simulation, and
// the protocol must run stall-free with clean windows.
#include "src/xsim/bsp_on_logp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/algo/bsp_algorithms.h"
#include "src/core/rng.h"

namespace bsplogp::xsim {
namespace {

using algo::BspPrograms;
using algo::ReduceOp;

void expect_clean(const BspOnLogpReport& rep) {
  EXPECT_TRUE(rep.logp.completed());
  EXPECT_TRUE(rep.logp.stall_free())
      << "Theorem 2's protocol must not stall (stalls: "
      << rep.logp.stall_events << ")";
  EXPECT_EQ(rep.schedule_violations, 0);
}

TEST(BspOnLogp, PrefixScanMatchesNativeBsp) {
  for (const ProcId p : {2, 4, 8, 16}) {
    const logp::Params prm{8, 1, 2};
    std::vector<Word> in(static_cast<std::size_t>(p));
    for (ProcId i = 0; i < p; ++i)
      in[static_cast<std::size_t>(i)] = (i * 17) % 23 - 5;

    std::vector<Word> native_out;
    auto native_progs = algo::bsp_prefix_scan(p, in, ReduceOp::Sum,
                                              native_out);
    bsp::Machine native(p, bsp::Params{1, 1});
    (void)native.run(native_progs);

    std::vector<Word> sim_out;
    auto sim_progs = algo::bsp_prefix_scan(p, in, ReduceOp::Sum, sim_out);
    BspOnLogp sim(p, prm);
    const BspOnLogpReport rep = sim.run(sim_progs);

    expect_clean(rep);
    EXPECT_EQ(sim_out, native_out) << "p=" << p;
  }
}

TEST(BspOnLogp, BroadcastRecordsExpectedDegrees) {
  const ProcId p = 8;
  const logp::Params prm{8, 1, 2};
  std::vector<Word> out;
  auto progs = algo::bsp_broadcast_direct(p, 55, out);
  BspOnLogp sim(p, prm);
  const BspOnLogpReport rep = sim.run(progs);
  expect_clean(rep);
  for (const Word w : out) EXPECT_EQ(w, 55);
  // Superstep 0 routes the (p-1)-relation: r = p-1 sends from the root,
  // every receiver gets exactly 1, so s = 1 and h = p-1.
  ASSERT_GE(rep.steps.size(), 1u);
  EXPECT_EQ(rep.steps[0].r, p - 1);
  EXPECT_EQ(rep.steps[0].s, 1);
  EXPECT_EQ(rep.steps[0].h, p - 1);
}

TEST(BspOnLogp, FanInRecordsExactReceiveDegree) {
  // Everyone sends 2 messages to proc 0: r = 2 but s = 2(p-1) — the
  // distributed max-group-length computation must find the cross-processor
  // run exactly.
  const ProcId p = 8;
  const logp::Params prm{8, 1, 2};
  std::vector<int> got(1, 0);
  auto progs = bsp::make_programs(p, [&](bsp::Ctx& c) {
    if (c.superstep() == 0) {
      if (c.pid() != 0) {
        c.send(0, 1);
        c.send(0, 2);
      }
      return true;
    }
    if (c.pid() == 0) got[0] = static_cast<int>(c.inbox().size());
    return false;
  });
  BspOnLogp sim(p, prm);
  const BspOnLogpReport rep = sim.run(progs);
  expect_clean(rep);
  EXPECT_EQ(got[0], 2 * (p - 1));
  ASSERT_GE(rep.steps.size(), 1u);
  EXPECT_EQ(rep.steps[0].s, 2 * (p - 1));
  EXPECT_EQ(rep.steps[0].h, 2 * (p - 1));
}

TEST(BspOnLogp, OddEvenSortMatchesNativeBsp) {
  core::Rng rng(77);
  const ProcId p = 8;
  const std::size_t b = 8;
  const logp::Params prm{8, 1, 2};
  std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
  for (auto& blk : blocks)
    for (std::size_t j = 0; j < b; ++j)
      blk.push_back(rng.uniform(-500, 500));

  std::vector<std::vector<Word>> native_out;
  auto native_progs = algo::bsp_odd_even_sort(p, blocks, native_out);
  bsp::Machine native(p, bsp::Params{1, 1});
  (void)native.run(native_progs);

  std::vector<std::vector<Word>> sim_out;
  auto sim_progs = algo::bsp_odd_even_sort(p, blocks, sim_out);
  BspOnLogp sim(p, prm);
  const BspOnLogpReport rep = sim.run(sim_progs);

  expect_clean(rep);
  EXPECT_EQ(sim_out, native_out);
}

TEST(BspOnLogp, AllReduceOnNonPowerOfTwoProcessorCount) {
  // Non-power-of-two p exercises the Columnsort path end to end.
  for (const ProcId p : {3, 5, 6, 7}) {
    const logp::Params prm{8, 1, 2};
    std::vector<Word> in(static_cast<std::size_t>(p));
    Word expect = 0;
    for (ProcId i = 0; i < p; ++i) {
      in[static_cast<std::size_t>(i)] = i * i + 1;
      expect += i * i + 1;
    }
    std::vector<Word> out;
    auto progs = algo::bsp_allreduce(p, in, ReduceOp::Sum, out);
    BspOnLogp sim(p, prm);
    const BspOnLogpReport rep = sim.run(progs);
    expect_clean(rep);
    for (const Word w : out) EXPECT_EQ(w, expect) << "p=" << p;
  }
}

TEST(BspOnLogp, ForcedColumnsortMatchesForcedBitonic) {
  const ProcId p = 4;
  const logp::Params prm{8, 1, 2};
  core::Rng rng(5);
  std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
  for (auto& blk : blocks)
    for (int j = 0; j < 20; ++j) blk.push_back(rng.uniform(0, 99));

  auto run_with = [&](SortMethod method) {
    std::vector<std::vector<Word>> out;
    auto progs = algo::bsp_odd_even_sort(p, blocks, out);
    BspOnLogpOptions opt;
    opt.sort = method;
    BspOnLogp sim(p, prm, opt);
    const BspOnLogpReport rep = sim.run(progs);
    expect_clean(rep);
    return out;
  };
  const auto a = run_with(SortMethod::Bitonic);
  const auto c = run_with(SortMethod::Columnsort);
  EXPECT_EQ(a, c);
}

TEST(BspOnLogp, MatvecMatchesNativeBsp) {
  const ProcId p = 4;
  const std::int64_t n = 16;
  const logp::Params prm{12, 2, 3};
  std::vector<Word> x(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = i;

  std::vector<Word> native_y;
  auto native_progs = algo::bsp_matvec(p, n, x, 9, native_y);
  bsp::Machine native(p, bsp::Params{1, 1});
  (void)native.run(native_progs);

  std::vector<Word> sim_y;
  auto sim_progs = algo::bsp_matvec(p, n, x, 9, sim_y);
  BspOnLogp sim(p, prm);
  const BspOnLogpReport rep = sim.run(sim_progs);
  expect_clean(rep);
  EXPECT_EQ(sim_y, native_y);
}

TEST(BspOnLogp, ResultsStableAcrossEnginePolicies) {
  const ProcId p = 8;
  const logp::Params prm{8, 1, 2};
  std::vector<Word> in(static_cast<std::size_t>(p), 3);
  auto run_with = [&](logp::DeliverySchedule d, std::uint64_t seed) {
    std::vector<Word> out;
    auto progs = algo::bsp_prefix_scan(p, in, ReduceOp::Sum, out);
    BspOnLogpOptions opt;
    opt.engine.delivery = d;
    opt.engine.seed = seed;
    BspOnLogp sim(p, prm, opt);
    const BspOnLogpReport rep = sim.run(progs);
    EXPECT_TRUE(rep.logp.completed());
    EXPECT_TRUE(rep.logp.stall_free());
    return out;
  };
  const auto a = run_with(logp::DeliverySchedule::Latest, 0);
  const auto b = run_with(logp::DeliverySchedule::Earliest, 0);
  const auto c = run_with(logp::DeliverySchedule::UniformRandom, 11);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(BspOnLogp, LargerCapacityParamsStayClean) {
  const ProcId p = 16;
  const logp::Params prm{32, 2, 4};  // capacity 8
  std::vector<Word> in(static_cast<std::size_t>(p), 1);
  std::vector<Word> out;
  auto progs = algo::bsp_allreduce(p, in, ReduceOp::Sum, out);
  BspOnLogp sim(p, prm);
  const BspOnLogpReport rep = sim.run(progs);
  expect_clean(rep);
  for (const Word w : out) EXPECT_EQ(w, p);
}

TEST(BspOnLogp, CapacityOneParamsStayCorrect) {
  // ceil(L/G) = 1: binary CB tree with the parity rule, tight capacity
  // everywhere. Correctness must hold; stall-freeness of every phase is
  // also expected from the global clocking.
  const ProcId p = 4;
  const logp::Params prm{4, 1, 4};
  std::vector<Word> in{5, 1, 4, 2};
  std::vector<Word> out;
  auto progs = algo::bsp_prefix_scan(p, in, ReduceOp::Max, out);
  BspOnLogp sim(p, prm);
  const BspOnLogpReport rep = sim.run(progs);
  EXPECT_TRUE(rep.logp.completed());
  EXPECT_EQ(out, (std::vector<Word>{5, 5, 5, 5}));
}

TEST(BspOnLogp, UnclockedCyclesStallButStayCorrect) {
  // Ablation: without the global cycle clock the routed relation collides
  // at its destinations — the Stalling Rule absorbs it (results intact),
  // but the stall-free guarantee is gone. This is what the paper's
  // pipelined-cycles decomposition buys.
  const ProcId p = 8;
  const logp::Params prm{8, 1, 2};  // capacity 4
  auto make = [&](std::vector<int>& got) {
    return bsp::make_programs(p, [&got](bsp::Ctx& c) {
      if (c.superstep() == 0) {
        if (c.pid() != 0)
          for (int k = 0; k < 4; ++k) c.send(0, c.pid() * 10 + k);
        return true;
      }
      if (c.pid() == 0) got[0] = static_cast<int>(c.inbox().size());
      return false;
    });
  };
  std::vector<int> clocked_got(1, 0), unclocked_got(1, 0);

  auto clocked_progs = make(clocked_got);
  BspOnLogp clocked(p, prm);
  const auto rep_c = clocked.run(clocked_progs);
  EXPECT_TRUE(rep_c.logp.stall_free());

  auto unclocked_progs = make(unclocked_got);
  BspOnLogpOptions opt;
  opt.clocked_cycles = false;
  BspOnLogp unclocked(p, prm, opt);
  const auto rep_u = unclocked.run(unclocked_progs);
  EXPECT_TRUE(rep_u.logp.completed());
  EXPECT_GT(rep_u.logp.stall_events, 0);  // 28 messages to one dest, cap 4
  EXPECT_EQ(unclocked_got[0], clocked_got[0]);
  EXPECT_EQ(unclocked_got[0], 4 * (p - 1));
}

TEST(BspOnLogp, ReferenceTimeAndSlowdownArePositive) {
  const ProcId p = 8;
  const logp::Params prm{8, 1, 2};
  std::vector<Word> out;
  auto progs = algo::bsp_broadcast_direct(p, 7, out);
  BspOnLogp sim(p, prm);
  const BspOnLogpReport rep = sim.run(progs);
  EXPECT_GT(rep.bsp_reference_time(bsp::Params{prm.G, prm.L}), 0);
  EXPECT_GT(rep.slowdown(prm), 1.0);  // simulation cannot beat native BSP
}

}  // namespace
}  // namespace bsplogp::xsim

// Section-3 regime tests: the cycle simulation executes *stalling* LogP
// programs faithfully — results match the native machine, senders are
// paused per the Stalling Rule's hot-spot bandwidth, and the preprocessing
// cost model is available for the implementable variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/logp/machine.h"
#include "src/workload/workload.h"
#include "src/xsim/logp_on_bsp.h"

namespace bsplogp::xsim {
namespace {

using logp::Params;
using logp::Proc;
using logp::ProgramFn;
using logp::Task;

// Stalling traffic throughout: workload::hotspot with the payload-sum out
// parameter, so native and simulated runs can be compared end to end.

TEST(StallingSim, HotspotResultsMatchNative) {
  const ProcId p = 10;
  const Time k = 3;
  const Params prm{8, 1, 2};  // capacity 4 << 27 concurrent submissions

  std::vector<Word> native_out(1, 0);
  logp::Machine native(p, prm);
  const auto native_stats =
      native.run(workload::hotspot(p, k, false, &native_out));
  ASSERT_TRUE(native_stats.completed());
  ASSERT_GT(native_stats.stall_events, 0);

  std::vector<Word> sim_out(1, 0);
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{prm.G, prm.L};
  LogpOnBsp sim(p, prm, opt);
  const auto rep = sim.run(workload::hotspot(p, k, false, &sim_out));

  EXPECT_FALSE(rep.stuck);
  EXPECT_EQ(sim_out[0], native_out[0]);
  EXPECT_FALSE(rep.capacity_ok);  // the program is not stall-free
  EXPECT_GT(rep.stall_events, 0);
  EXPECT_GT(rep.stall_time_total, 0);
  EXPECT_GT(rep.overloaded_supersteps, 0);
}

TEST(StallingSim, EmulatedDrainTracksNativeHotspotTime) {
  // The Stalling-Rule emulation admits one message per G at the hot spot,
  // so the simulated logical time must track the native o + nG + L drain
  // (within the cycle-granularity slack), not blow up.
  const ProcId p = 33;
  const Params prm{16, 1, 4};  // capacity 4
  std::vector<Word> out(1, 0);

  logp::Machine native(p, prm);
  const auto native_stats = native.run(workload::hotspot(p, 1, false, &out));

  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{prm.G, prm.L};
  LogpOnBsp sim(p, prm, opt);
  const auto rep = sim.run(workload::hotspot(p, 1, false, &out));

  EXPECT_FALSE(rep.stuck);
  EXPECT_GE(rep.logical_finish,
            native_stats.finish_time / 2);  // same Theta(nG) order
  EXPECT_LE(rep.logical_finish, 2 * native_stats.finish_time + 4 * prm.L);
}

TEST(StallingSim, StallFreeProgramsReportNoStalls) {
  const ProcId p = 8;
  const Params prm{8, 1, 2};
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([p](Proc& pr) -> Task<> {
      co_await pr.send(static_cast<ProcId>((pr.id() + 1) % p), 1);
      (void)co_await pr.recv();
    });
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{prm.G, prm.L};
  LogpOnBsp sim(p, prm, opt);
  const auto rep = sim.run(progs);
  EXPECT_TRUE(rep.capacity_ok);
  EXPECT_EQ(rep.stall_events, 0);
  EXPECT_EQ(rep.stall_time_total, 0);
  EXPECT_EQ(rep.overloaded_supersteps, 0);
}

TEST(StallingSim, PreprocessedTimeChargesOnlyOverloadedSupersteps) {
  const ProcId p = 10;
  const Params prm{8, 1, 2};
  std::vector<Word> out(1, 0);
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{prm.G, prm.L};
  LogpOnBsp sim(p, prm, opt);
  const auto rep = sim.run(workload::hotspot(p, 2, false, &out));
  ASSERT_GT(rep.overloaded_supersteps, 0);

  const Time naive = rep.bsp.finish_time;
  const Time preproc =
      rep.preprocessed_time(opt.bsp, p, prm.capacity());
  EXPECT_GT(preproc, naive);
  // The surcharge is exactly (overloaded supersteps) * log p * O(l+g*cap).
  const Time per = static_cast<Time>(ceil_log2(p)) *
                   (opt.bsp.l + opt.bsp.g * prm.capacity() +
                    prm.capacity());
  EXPECT_EQ(preproc - naive, rep.overloaded_supersteps * per);
}

TEST(StallingSim, MixedTrafficStaysCorrectUnderPartialStalling) {
  // Some destinations overload, others stay clean; every payload must
  // arrive exactly once.
  const ProcId p = 12;
  const Params prm{8, 1, 2};  // capacity 4
  std::vector<Word> sums(2, 0);
  auto make = [&]() {
    std::vector<ProgramFn> progs;
    for (ProcId r = 0; r < 2; ++r)
      progs.emplace_back([&sums, p, r](Proc& pr) -> Task<> {
        Word s = 0;
        const int expect = r == 0 ? (p - 2) * 2 : (p - 2);
        for (int j = 0; j < expect; ++j)
          s += (co_await pr.recv()).payload;
        sums[static_cast<std::size_t>(r)] = s;
      });
    for (ProcId i = 2; i < p; ++i)
      progs.emplace_back([i](Proc& pr) -> Task<> {
        co_await pr.send(0, i);      // hot spot
        co_await pr.send(0, 1000 + i);
        co_await pr.send(1, i);      // light destination
      });
    return progs;
  };
  logp::Machine native(p, prm);
  (void)native.run(make());
  const auto native_sums = sums;

  sums.assign(2, 0);
  LogpOnBspOptions opt;
  opt.bsp = bsp::Params{prm.G, prm.L};
  LogpOnBsp sim(p, prm, opt);
  const auto rep = sim.run(make());
  EXPECT_FALSE(rep.stuck);
  EXPECT_EQ(sums, native_sums);
}

}  // namespace
}  // namespace bsplogp::xsim

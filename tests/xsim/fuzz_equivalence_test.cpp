// Randomized differential testing of Theorem 2's simulation: arbitrary
// multi-superstep BSP programs with irregular traffic (including empty
// supersteps, self-sends, hot spots) must deliver, on the LogP machine,
// exactly the per-superstep message multisets the native BSP machine
// delivers — under every engine policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/bsp/machine.h"
#include "src/core/rng.h"
#include "src/xsim/bsp_on_logp.h"

namespace bsplogp::xsim {
namespace {

/// A deterministic random BSP program: in each superstep every processor
/// sends a random number of messages to random destinations and logs the
/// (sorted) multiset of what it received. The behavior depends only on
/// (seed, pid, superstep), so two instances built from the same seed run
/// identically on any correct executor.
struct FuzzLog {
  // log[superstep][pid] = sorted (src, payload, tag) triples received.
  std::vector<std::vector<std::vector<std::tuple<ProcId, Word, std::int32_t>>>>
      received;
};

std::vector<std::unique_ptr<bsp::ProcProgram>> make_fuzz_program(
    ProcId p, std::int64_t supersteps, std::uint64_t seed, FuzzLog& log) {
  log.received.assign(
      static_cast<std::size_t>(supersteps) + 1,
      std::vector<std::vector<std::tuple<ProcId, Word, std::int32_t>>>(
          static_cast<std::size_t>(p)));
  return bsp::make_programs(p, [&log, p, supersteps, seed](bsp::Ctx& c) {
    auto& slot = log.received[static_cast<std::size_t>(c.superstep())]
                             [static_cast<std::size_t>(c.pid())];
    slot.clear();
    for (const Message& m : c.inbox())
      slot.emplace_back(m.src, m.payload, m.tag);
    std::sort(slot.begin(), slot.end());

    if (c.superstep() >= supersteps) return false;
    // Deterministic per (seed, pid, superstep) traffic.
    core::Rng rng(seed ^ (static_cast<std::uint64_t>(c.pid()) << 32) ^
                  static_cast<std::uint64_t>(c.superstep()));
    const auto kind = rng.below(4);
    std::int64_t count = 0;
    if (kind == 0) count = 0;                                  // silent
    else if (kind == 1) count = static_cast<std::int64_t>(rng.below(4));
    else if (kind == 2) count = static_cast<std::int64_t>(rng.below(12));
    else count = c.pid() == 0 ? 0 : 3;  // fan-in to processor 0
    for (std::int64_t k = 0; k < count; ++k) {
      const auto dst =
          kind == 3 ? ProcId{0}
                    : static_cast<ProcId>(
                          rng.below(static_cast<std::uint64_t>(p)));
      c.send(dst, rng.uniform(-1000, 1000),
             static_cast<std::int32_t>(rng.below(100)));
    }
    c.charge(static_cast<Time>(rng.below(20)));
    return true;
  });
}

class FuzzEquivalence
    : public ::testing::TestWithParam<std::tuple<ProcId, std::uint64_t>> {};

TEST_P(FuzzEquivalence, NativeAndSimulatedReceiveIdenticalMultisets) {
  const auto [p, seed] = GetParam();
  const std::int64_t supersteps = 4;

  FuzzLog native_log;
  auto native_progs = make_fuzz_program(p, supersteps, seed, native_log);
  bsp::Machine native(p, bsp::Params{1, 1});
  const auto native_stats = native.run(native_progs);
  ASSERT_FALSE(native_stats.hit_superstep_limit);

  FuzzLog sim_log;
  auto sim_progs = make_fuzz_program(p, supersteps, seed, sim_log);
  BspOnLogp sim(p, logp::Params{16, 1, 2});
  const auto rep = sim.run(sim_progs);
  EXPECT_TRUE(rep.logp.completed());
  EXPECT_TRUE(rep.logp.stall_free());
  EXPECT_EQ(rep.schedule_violations, 0);

  ASSERT_EQ(sim_log.received.size(), native_log.received.size());
  for (std::size_t s = 0; s < native_log.received.size(); ++s)
    for (ProcId i = 0; i < p; ++i)
      EXPECT_EQ(sim_log.received[s][static_cast<std::size_t>(i)],
                native_log.received[s][static_cast<std::size_t>(i)])
          << "superstep " << s << " proc " << i << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzEquivalence,
    ::testing::Combine(::testing::Values<ProcId>(2, 3, 8, 16),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FuzzEquivalence, PolicySweepOnOneSeed) {
  const ProcId p = 8;
  const std::int64_t supersteps = 3;
  const std::uint64_t seed = 99;

  FuzzLog reference;
  auto ref_progs = make_fuzz_program(p, supersteps, seed, reference);
  bsp::Machine native(p, bsp::Params{1, 1});
  (void)native.run(ref_progs);

  for (const auto accept :
       {logp::AcceptOrder::Fifo, logp::AcceptOrder::Random}) {
    for (const auto delivery :
         {logp::DeliverySchedule::Latest, logp::DeliverySchedule::Earliest,
          logp::DeliverySchedule::UniformRandom}) {
      FuzzLog log;
      auto progs = make_fuzz_program(p, supersteps, seed, log);
      BspOnLogpOptions opt;
      opt.engine.accept_order = accept;
      opt.engine.delivery = delivery;
      opt.engine.seed = 7;
      BspOnLogp sim(p, logp::Params{12, 1, 3}, opt);
      const auto rep = sim.run(progs);
      EXPECT_TRUE(rep.logp.completed());
      EXPECT_EQ(log.received, reference.received);
    }
  }
}

}  // namespace
}  // namespace bsplogp::xsim

// Randomized differential testing of Theorem 2's simulation: arbitrary
// multi-superstep BSP programs with irregular traffic (including empty
// supersteps, self-sends, hot spots) must deliver, on the LogP machine,
// exactly the per-superstep message multisets the native BSP machine
// delivers — under every engine policy.
//
// The fuzz program family lives in the workload registry
// (workload::fuzz_supersteps); its behavior depends only on (seed, pid,
// superstep). The (p, seed) grid runs through core::parallel_for_indexed —
// each point owns its machines and logs, results land in index-addressed
// slots, and all gtest assertions happen serially afterwards (gtest
// assertions are not thread-safe).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/bsp/machine.h"
#include "src/core/parallel.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"

namespace bsplogp::xsim {
namespace {

TEST(FuzzEquivalence, NativeAndSimulatedReceiveIdenticalMultisets) {
  struct Point {
    ProcId p;
    std::uint64_t seed;
  };
  std::vector<Point> grid;
  for (const ProcId p : {2, 3, 8, 16})
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u})
      grid.push_back(Point{p, seed});

  const std::int64_t supersteps = 4;
  struct Result {
    workload::FuzzLog native;
    workload::FuzzLog sim;
    bool native_hit_limit = true;
    bool sim_completed = false;
    bool sim_stall_free = false;
    std::int64_t schedule_violations = -1;
  };
  std::vector<Result> results(grid.size());
  core::parallel_for_indexed(
      grid.size(), core::hardware_jobs(), [&](std::size_t i) {
        const auto [p, seed] = grid[i];
        Result& r = results[i];
        auto native_progs =
            workload::fuzz_supersteps(p, supersteps, seed, r.native);
        bsp::Machine native(p, bsp::Params{1, 1});
        r.native_hit_limit = native.run(native_progs).hit_superstep_limit;

        auto sim_progs =
            workload::fuzz_supersteps(p, supersteps, seed, r.sim);
        BspOnLogp sim(p, logp::Params{16, 1, 2});
        const auto rep = sim.run(sim_progs);
        r.sim_completed = rep.logp.completed();
        r.sim_stall_free = rep.logp.stall_free();
        r.schedule_violations = rep.schedule_violations;
      });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto [p, seed] = grid[i];
    const Result& r = results[i];
    ASSERT_FALSE(r.native_hit_limit) << "p=" << p << " seed=" << seed;
    EXPECT_TRUE(r.sim_completed) << "p=" << p << " seed=" << seed;
    EXPECT_TRUE(r.sim_stall_free) << "p=" << p << " seed=" << seed;
    EXPECT_EQ(r.schedule_violations, 0) << "p=" << p << " seed=" << seed;
    ASSERT_EQ(r.sim.received.size(), r.native.received.size());
    for (std::size_t s = 0; s < r.native.received.size(); ++s)
      for (ProcId pid = 0; pid < p; ++pid)
        EXPECT_EQ(r.sim.received[s][static_cast<std::size_t>(pid)],
                  r.native.received[s][static_cast<std::size_t>(pid)])
            << "superstep " << s << " proc " << pid << " seed " << seed;
  }
}

TEST(FuzzEquivalence, PolicySweepOnOneSeed) {
  const ProcId p = 8;
  const std::int64_t supersteps = 3;
  const std::uint64_t seed = 99;

  workload::FuzzLog reference;
  auto ref_progs = workload::fuzz_supersteps(p, supersteps, seed, reference);
  bsp::Machine native(p, bsp::Params{1, 1});
  (void)native.run(ref_progs);

  for (const auto accept :
       {logp::AcceptOrder::Fifo, logp::AcceptOrder::Random}) {
    for (const auto delivery :
         {logp::DeliverySchedule::Latest, logp::DeliverySchedule::Earliest,
          logp::DeliverySchedule::UniformRandom}) {
      workload::FuzzLog log;
      auto progs = workload::fuzz_supersteps(p, supersteps, seed, log);
      BspOnLogpOptions opt;
      opt.engine.accept_order = accept;
      opt.engine.delivery = delivery;
      opt.engine.seed = 7;
      BspOnLogp sim(p, logp::Params{12, 1, 3}, opt);
      const auto rep = sim.run(progs);
      EXPECT_TRUE(rep.logp.completed());
      EXPECT_EQ(log.received, reference.received);
    }
  }
}

}  // namespace
}  // namespace bsplogp::xsim

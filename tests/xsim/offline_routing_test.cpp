// Section 4.2's off-line routing claim: any h-relation routes in exactly
// the optimal 2o + G(h-1) + L (plus the final acquisition), stall-free.
#include "src/xsim/offline_routing.h"

#include <gtest/gtest.h>

#include "src/core/rng.h"

namespace bsplogp::xsim {
namespace {

TEST(OfflineRouting, RegularRelationHitsOptimalBound) {
  core::Rng rng(5);
  const logp::Params prm{16, 1, 4};
  for (const ProcId p : {4, 8, 32}) {
    for (const Time h : {1, 4, 16}) {
      const auto rel = routing::random_regular(p, h, rng);
      const auto rep = route_offline(rel, prm);
      EXPECT_TRUE(rep.logp.completed());
      EXPECT_TRUE(rep.logp.stall_free()) << "p=" << p << " h=" << h;
      EXPECT_EQ(rep.layers, h);
      // Last delivery by o + (h-1)G + L; last acquisition may add the
      // receiver-side o and gap-pipelining tail.
      const Time bound = OfflineRoutingReport::optimal_bound(prm, h);
      EXPECT_LE(rep.logp.finish_time, bound + prm.G + prm.o)
          << "p=" << p << " h=" << h;
      EXPECT_GE(rep.logp.finish_time, prm.o + (h - 1) * prm.G + 1);
      EXPECT_EQ(rep.logp.messages,
                static_cast<std::int64_t>(rel.size()));
    }
  }
}

TEST(OfflineRouting, IrregularRelationStaysWithinDegreeBound) {
  core::Rng rng(6);
  const logp::Params prm{8, 1, 2};
  for (int trial = 0; trial < 5; ++trial) {
    const auto rel = routing::random_messages(16, 200, rng);
    const auto rep = route_offline(rel, prm);
    EXPECT_TRUE(rep.logp.completed());
    EXPECT_TRUE(rep.logp.stall_free());
    EXPECT_LE(rep.layers, rel.degree());
    // Irregular in-degrees plus adversarial (latest-slot) deliveries can
    // defer a receiver's drain by up to one extra latency window; the
    // additive slack is constant in h, so the 2o+G(h-1)+L asymptotics
    // stand.
    EXPECT_LE(rep.logp.finish_time,
              OfflineRoutingReport::optimal_bound(prm, rel.degree()) +
                  prm.L + 2 * prm.G + 2 * prm.o);
  }
}

TEST(OfflineRouting, HotspotRoutesAtBandwidth) {
  // All-to-one has h = p-1 but each layer is a single message; the paper's
  // off-line schedule still gives 2o + G(h-1) + L.
  const logp::Params prm{16, 2, 4};
  const auto rel = routing::hotspot(17, 3, 1);
  const auto rep = route_offline(rel, prm);
  EXPECT_TRUE(rep.logp.stall_free());
  EXPECT_EQ(rep.layers, 16);
  EXPECT_LE(rep.logp.finish_time,
            OfflineRoutingReport::optimal_bound(prm, 16) + prm.G + prm.o);
}

TEST(OfflineRouting, EmptyRelation) {
  const logp::Params prm{8, 1, 2};
  const auto rep = route_offline(routing::HRelation(4), prm);
  EXPECT_TRUE(rep.logp.completed());
  EXPECT_EQ(rep.layers, 0);
  EXPECT_EQ(rep.logp.finish_time, 0);
}

TEST(OfflineRouting, PayloadsArriveIntact) {
  core::Rng rng(7);
  const logp::Params prm{8, 1, 2};
  routing::HRelation rel(4);
  rel.add(0, 1, 100, 1);
  rel.add(0, 2, 200, 2);
  rel.add(3, 1, 300, 3);
  const auto rep = route_offline(rel, prm);
  EXPECT_TRUE(rep.logp.completed());
  EXPECT_EQ(rep.logp.messages_acquired, 3);
}

}  // namespace
}  // namespace bsplogp::xsim

// Property tests for the decomposition library: every (scheme, shape,
// grid, block) draw must satisfy the three partitioning laws — local/global
// round-trip, ownership totality + disjointness, and extent sums matching
// the global shape. Randomized cases draw through core::rng_for_index so
// each case is a pure function of its index, like every sweep in the repo.
#include <vector>

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/part/partition.h"

namespace bsplogp::part {
namespace {

// Enumerates every global point of `shape` in row-major order.
std::vector<Point> all_points(const Point& shape) {
  std::vector<Point> pts;
  for (const Index n : shape)
    if (n == 0) return pts;  // an empty axis has no points
  Point cur(shape.size(), 0);
  for (;;) {
    pts.push_back(cur);
    std::size_t d = shape.size();
    while (d-- > 0) {
      if (++cur[d] < shape[d]) break;
      cur[d] = 0;
      if (d == 0) return pts;
    }
  }
}

void check_laws(const Partitioning& part) {
  const Point& shape = part.global_shape();
  const auto p = static_cast<ProcId>(part.grid().size());

  // Per-axis extents must sum to the axis' global extent.
  for (int d = 0; d < part.grid().ndims(); ++d) {
    const AxisPart& ax = part.axis(d);
    Index sum = 0;
    for (Index pos = 0; pos < ax.g; ++pos) {
      const Index e = ax.extent(pos);
      ASSERT_GE(e, 0);
      sum += e;
    }
    ASSERT_EQ(sum, ax.n) << "axis " << d;
  }

  // local_count over all processors must cover the global space once.
  Index total = 0;
  for (ProcId r = 0; r < p; ++r) total += part.local_count(r);
  ASSERT_EQ(total, part.global_count());

  // Round-trip + ownership totality: every global point maps to exactly
  // one (owner, local) pair, and to_global inverts it.
  std::vector<int> covered(static_cast<std::size_t>(part.global_count()), 0);
  Index flat = 0;
  for (const Point& g : all_points(shape)) {
    const ProcId r = part.owner(g);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, p);
    const Point l = part.to_local(g);
    const Point& ls = part.local_shape(r);
    for (std::size_t d = 0; d < l.size(); ++d) {
      ASSERT_GE(l[d], 0);
      ASSERT_LT(l[d], ls[d]);
    }
    ASSERT_EQ(part.to_global(r, l), g);
    covered[static_cast<std::size_t>(flat++)] += 1;
  }

  // Disjointness: enumerating every processor's local space through
  // to_global hits each global point exactly once.
  for (ProcId r = 0; r < p; ++r) {
    for (const Point& l : all_points(part.local_shape(r))) {
      const Point g = part.to_global(r, l);
      ASSERT_EQ(part.owner(g), r);
      Index flat_g = 0;
      for (std::size_t d = 0; d < g.size(); ++d)
        flat_g = flat_g * shape[d] + g[d];
      covered[static_cast<std::size_t>(flat_g)] += 1;
    }
  }
  for (const int c : covered) ASSERT_EQ(c, 2);
}

TEST(Grid, RectangleFactorsNearSquare) {
  EXPECT_EQ(Grid::rectangle(12).dims(), (std::vector<Index>{3, 4}));
  EXPECT_EQ(Grid::rectangle(16).dims(), (std::vector<Index>{4, 4}));
  EXPECT_EQ(Grid::rectangle(7).dims(), (std::vector<Index>{1, 7}));
  EXPECT_EQ(Grid::rectangle(1).dims(), (std::vector<Index>{1, 1}));
  EXPECT_EQ(Grid::rectangle(12, 2).dims(), (std::vector<Index>{2, 6}));
}

TEST(Grid, RankCoordsRoundTrip) {
  const Grid g({3, 4, 2});
  ASSERT_EQ(g.size(), 24);
  for (ProcId r = 0; r < 24; ++r) EXPECT_EQ(g.rank(g.coords(r)), r);
  // Row-major: the last axis varies fastest.
  EXPECT_EQ(g.rank({0, 0, 1}), 1);
  EXPECT_EQ(g.rank({0, 1, 0}), 2);
  EXPECT_EQ(g.rank({1, 0, 0}), 8);
}

TEST(AxisPart, BlockExtentsMatchCeilDiv) {
  // 10 indices over 3 positions in blocks of ceil(10/3) = 4: 4, 4, 2.
  const AxisPart ax{10, 3, 4};
  EXPECT_EQ(ax.extent(0), 4);
  EXPECT_EQ(ax.extent(1), 4);
  EXPECT_EQ(ax.extent(2), 2);
  EXPECT_EQ(ax.owner(0), 0);
  EXPECT_EQ(ax.owner(7), 1);
  EXPECT_EQ(ax.owner(9), 2);
}

TEST(AxisPart, CyclicDealsRoundRobin) {
  const AxisPart ax{7, 3, 1};
  for (Index i = 0; i < 7; ++i) {
    EXPECT_EQ(ax.owner(i), i % 3);
    EXPECT_EQ(ax.to_local(i), i / 3);
  }
  EXPECT_EQ(ax.extent(0), 3);
  EXPECT_EQ(ax.extent(1), 2);
  EXPECT_EQ(ax.extent(2), 2);
}

TEST(Partitioning, LawsHoldOnHandPickedCases) {
  check_laws(Partitioning(Scheme::Block, {10}, Grid({3})));
  check_laws(Partitioning(Scheme::Cyclic, {10}, Grid({3})));
  check_laws(Partitioning(Scheme::BlockCyclic, {10}, Grid({3}), 2));
  check_laws(Partitioning(Scheme::Block, {7, 5}, Grid({2, 3})));
  check_laws(Partitioning(Scheme::Cyclic, {4, 4, 4}, Grid({2, 1, 2})));
  // Degenerate: more processors than indices (some extents are zero).
  check_laws(Partitioning(Scheme::Block, {2}, Grid({5})));
  check_laws(Partitioning(Scheme::BlockCyclic, {3, 2}, Grid({4, 3}), 2));
}

TEST(Partitioning, LawsHoldOnRandomDraws) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    core::Rng rng = core::rng_for_index(0x9a57, i);
    const int dims = static_cast<int>(rng.uniform(1, 3));
    Point shape;
    std::vector<Index> gdims;
    for (int d = 0; d < dims; ++d) {
      shape.push_back(rng.uniform(1, 12));
      gdims.push_back(rng.uniform(1, 4));
    }
    const auto scheme = static_cast<Scheme>(rng.uniform(0, 2));
    const Index block = rng.uniform(1, 3);
    check_laws(Partitioning(scheme, shape, Grid(gdims), block));
  }
}

}  // namespace
}  // namespace bsplogp::part

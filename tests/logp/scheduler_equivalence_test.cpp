// Determinism guard for the scheduler rewrite: the calendar/bucket queue
// (SchedulerKind::Bucket) and the original priority-queue scheduler
// (SchedulerKind::ReferenceHeap) must produce bit-identical RunStats for
// identical seeds and options, across every AcceptOrder x DeliverySchedule
// combination and on workloads that exercise hotspot stalling, randomized
// traffic, and sparse timers beyond the wheel horizon. Engine invariants
// (capacity threshold, one delivery per destination per step) are asserted
// from the trace sink's Delivery events.
//
// The workloads come from the registry (workload::hotspot,
// workload::random_traffic). The accept x delivery x seed grids run through
// core::parallel_for_indexed: each point runs both schedulers on its own
// machines and commits the RunStats pair by index; the bit-identity
// assertions happen serially afterwards (gtest assertions are not
// thread-safe).
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/core/parallel.h"
#include "src/logp/machine.h"
#include "src/trace/sink.h"
#include "src/workload/workload.h"

namespace bsplogp::logp {
namespace {

constexpr AcceptOrder kAccepts[] = {AcceptOrder::Fifo, AcceptOrder::Lifo,
                                    AcceptOrder::Random};
constexpr DeliverySchedule kDeliveries[] = {DeliverySchedule::Latest,
                                            DeliverySchedule::Earliest,
                                            DeliverySchedule::UniformRandom};

/// Sink that records each Delivery event's (destination, step), checking
/// that the medium never delivers twice to one destination in one step —
/// the successor of the old Options::on_delivery probe.
class DeliveryProbe final : public trace::TraceSink {
 public:
  void emit(const trace::Event& e) override {
    if (e.kind != trace::EventKind::Delivery) return;
    deliveries += 1;
    const bool fresh = delivered[e.proc].insert(e.t).second;
    EXPECT_TRUE(fresh) << "two deliveries to proc " << e.proc << " at step "
                       << e.t;
  }

  std::map<ProcId, std::set<Time>> delivered;
  std::int64_t deliveries = 0;
};

RunStats run_with(SchedulerKind sched, AcceptOrder accept,
                  DeliverySchedule delivery, std::uint64_t seed,
                  const Params& prm, ProcId p,
                  std::span<const ProgramFn> progs,
                  trace::TraceSink* sink = nullptr) {
  Machine::Options o;
  o.scheduler = sched;
  o.accept_order = accept;
  o.delivery = delivery;
  o.seed = seed;
  o.sink = sink;
  Machine m(p, prm, o);
  return m.run(progs);
}

/// One (accept, delivery, seed) policy-grid point.
struct PolicyPoint {
  AcceptOrder accept;
  DeliverySchedule delivery;
  std::uint64_t seed;
};

std::vector<PolicyPoint> policy_grid(std::vector<std::uint64_t> seeds) {
  std::vector<PolicyPoint> grid;
  for (const AcceptOrder ao : kAccepts)
    for (const DeliverySchedule ds : kDeliveries)
      for (const std::uint64_t seed : seeds)
        grid.push_back(PolicyPoint{ao, ds, seed});
  return grid;
}

struct SchedulerPair {
  RunStats bucket;
  RunStats heap;
};

TEST(SchedulerEquivalence, HotspotStatsBitIdenticalAcrossSchedulers) {
  const ProcId p = 17;
  const Params prm{16, 1, 4};  // capacity 4: heavy stalling
  const auto progs = workload::hotspot(p, 3);
  const auto grid = policy_grid({0, 1, 42});

  std::vector<SchedulerPair> results(grid.size());
  core::parallel_for_indexed(
      grid.size(), core::hardware_jobs(), [&](std::size_t i) {
        const PolicyPoint& pt = grid[i];
        results[i].bucket = run_with(SchedulerKind::Bucket, pt.accept,
                                     pt.delivery, pt.seed, prm, p, progs);
        results[i].heap = run_with(SchedulerKind::ReferenceHeap, pt.accept,
                                   pt.delivery, pt.seed, prm, p, progs);
      });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PolicyPoint& pt = grid[i];
    EXPECT_TRUE(results[i].bucket == results[i].heap)
        << "accept=" << static_cast<int>(pt.accept)
        << " delivery=" << static_cast<int>(pt.delivery)
        << " seed=" << pt.seed << " finish "
        << results[i].bucket.finish_time << " vs "
        << results[i].heap.finish_time;
    EXPECT_TRUE(results[i].bucket.completed());
  }
}

TEST(SchedulerEquivalence, RandomTrafficStatsBitIdenticalAcrossSchedulers) {
  const ProcId p = 12;
  const Params prm{12, 1, 3};
  const auto grid = policy_grid({7, 99});

  std::vector<SchedulerPair> results(grid.size());
  core::parallel_for_indexed(
      grid.size(), core::hardware_jobs(), [&](std::size_t i) {
        const PolicyPoint& pt = grid[i];
        const auto progs = workload::random_traffic(p, 12, 20, pt.seed);
        results[i].bucket = run_with(SchedulerKind::Bucket, pt.accept,
                                     pt.delivery, pt.seed, prm, p, progs);
        results[i].heap = run_with(SchedulerKind::ReferenceHeap, pt.accept,
                                   pt.delivery, pt.seed, prm, p, progs);
      });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PolicyPoint& pt = grid[i];
    EXPECT_TRUE(results[i].bucket == results[i].heap)
        << "accept=" << static_cast<int>(pt.accept)
        << " delivery=" << static_cast<int>(pt.delivery)
        << " seed=" << pt.seed;
    EXPECT_TRUE(results[i].bucket.completed());
  }
}

TEST(SchedulerEquivalence, SparseTimersCrossTheWheelHorizon) {
  // Compute jumps far beyond the 1024-step wheel window force events
  // through the bucket queue's overflow map.
  const ProcId p = 6;
  const Params prm{8, 1, 2};
  for (const std::uint64_t seed : {3u, 11u}) {
    const auto progs = workload::random_traffic(p, 6, 5000, seed);
    const RunStats bucket =
        run_with(SchedulerKind::Bucket, AcceptOrder::Fifo,
                 DeliverySchedule::Latest, seed, prm, p, progs);
    const RunStats heap =
        run_with(SchedulerKind::ReferenceHeap, AcceptOrder::Fifo,
                 DeliverySchedule::Latest, seed, prm, p, progs);
    EXPECT_TRUE(bucket == heap) << "seed=" << seed;
    EXPECT_TRUE(bucket.completed());
    EXPECT_GT(bucket.finish_time, 1024);  // the horizon was actually crossed
  }
}

TEST(SchedulerEquivalence, InvariantsHoldUnderStress) {
  // Randomized stress across the full policy grid: capacity never exceeds
  // ceil(L/G), the medium delivers at most one message per destination per
  // step, and every message is delivered within (accept, accept + L] —
  // observed through the trace sink's Delivery events. Serial on purpose:
  // the probe raises gtest assertions from inside emit().
  const ProcId p = 24;
  const Params prm{16, 2, 4};  // capacity 4
  const auto progs = workload::hotspot(p, 2);
  for (const AcceptOrder ao : kAccepts)
    for (const DeliverySchedule ds : kDeliveries) {
      DeliveryProbe probe;
      const RunStats st = run_with(SchedulerKind::Bucket, ao, ds, 5, prm, p,
                                   progs, &probe);
      EXPECT_TRUE(st.completed());
      EXPECT_LE(st.max_in_transit, prm.capacity());
      EXPECT_EQ(probe.deliveries, st.messages);
      EXPECT_EQ(st.messages, static_cast<Time>(p - 1) * 2);
    }
}

TEST(SchedulerEquivalence, EventsProcessedMatchesAcrossSchedulers) {
  const ProcId p = 9;
  const Params prm{8, 1, 2};
  const auto progs = workload::hotspot(p, 2);
  const RunStats bucket =
      run_with(SchedulerKind::Bucket, AcceptOrder::Fifo,
               DeliverySchedule::Latest, 0, prm, p, progs);
  const RunStats heap =
      run_with(SchedulerKind::ReferenceHeap, AcceptOrder::Fifo,
               DeliverySchedule::Latest, 0, prm, p, progs);
  EXPECT_GT(bucket.events_processed, 0);
  EXPECT_EQ(bucket.events_processed, heap.events_processed);
}

}  // namespace
}  // namespace bsplogp::logp

// Determinism guard for the scheduler rewrite: the calendar/bucket queue
// (SchedulerKind::Bucket) and the original priority-queue scheduler
// (SchedulerKind::ReferenceHeap) must produce bit-identical RunStats for
// identical seeds and options, across every AcceptOrder x DeliverySchedule
// combination and on workloads that exercise hotspot stalling, randomized
// traffic, and sparse timers beyond the wheel horizon. Engine invariants
// (capacity threshold, one delivery per destination per step) are asserted
// from the trace sink's Delivery events.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/core/rng.h"
#include "src/logp/machine.h"
#include "src/trace/sink.h"

namespace bsplogp::logp {
namespace {

constexpr AcceptOrder kAccepts[] = {AcceptOrder::Fifo, AcceptOrder::Lifo,
                                    AcceptOrder::Random};
constexpr DeliverySchedule kDeliveries[] = {DeliverySchedule::Latest,
                                            DeliverySchedule::Earliest,
                                            DeliverySchedule::UniformRandom};

/// Hotspot traffic: every other processor fires k messages at processor 0,
/// deliberately overrunning the capacity threshold to exercise stalling.
std::vector<ProgramFn> hotspot(ProcId p, Time k) {
  std::vector<ProgramFn> progs;
  progs.emplace_back([p, k](Proc& pr) -> Task<> {
    for (Time j = 0; j < static_cast<Time>(p - 1) * k; ++j)
      (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([k](Proc& pr) -> Task<> {
      for (Time j = 0; j < k; ++j) co_await pr.send(0, j);
    });
  return progs;
}

/// Randomized point-to-point traffic with compute jitter. The traffic
/// matrix is drawn up front from a seeded Rng so every processor knows how
/// many messages to receive; `max_jump` controls compute bursts (large
/// values push events past the bucket queue's wheel horizon, covering the
/// overflow path).
std::vector<ProgramFn> random_traffic(ProcId p, int msgs_per_proc,
                                      Time max_jump, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<std::vector<std::pair<ProcId, Time>>> plan(
      static_cast<std::size_t>(p));
  std::vector<int> expected(static_cast<std::size_t>(p), 0);
  for (ProcId i = 0; i < p; ++i)
    for (int m = 0; m < msgs_per_proc; ++m) {
      auto dst = static_cast<ProcId>(
          rng.below(static_cast<std::uint64_t>(p - 1)));
      if (dst >= i) dst += 1;  // uniform over the other processors
      const Time jump = static_cast<Time>(
          rng.below(static_cast<std::uint64_t>(max_jump) + 1));
      plan[static_cast<std::size_t>(i)].emplace_back(dst, jump);
      expected[static_cast<std::size_t>(dst)] += 1;
    }
  std::vector<ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([mine = std::move(plan[static_cast<std::size_t>(i)]),
                        need = expected[static_cast<std::size_t>(i)]](
                           Proc& pr) -> Task<> {
      for (const auto& [dst, jump] : mine) {
        co_await pr.compute(jump);
        co_await pr.send(dst, jump);
      }
      for (int m = 0; m < need; ++m) (void)co_await pr.recv();
    });
  return progs;
}

/// Sink that records each Delivery event's (destination, step), checking
/// that the medium never delivers twice to one destination in one step —
/// the successor of the old Options::on_delivery probe.
class DeliveryProbe final : public trace::TraceSink {
 public:
  void emit(const trace::Event& e) override {
    if (e.kind != trace::EventKind::Delivery) return;
    deliveries += 1;
    const bool fresh = delivered[e.proc].insert(e.t).second;
    EXPECT_TRUE(fresh) << "two deliveries to proc " << e.proc << " at step "
                       << e.t;
  }

  std::map<ProcId, std::set<Time>> delivered;
  std::int64_t deliveries = 0;
};

RunStats run_with(SchedulerKind sched, AcceptOrder accept,
                  DeliverySchedule delivery, std::uint64_t seed,
                  const Params& prm, ProcId p,
                  std::span<const ProgramFn> progs,
                  trace::TraceSink* sink = nullptr) {
  Machine::Options o;
  o.scheduler = sched;
  o.accept_order = accept;
  o.delivery = delivery;
  o.seed = seed;
  o.sink = sink;
  Machine m(p, prm, o);
  return m.run(progs);
}

TEST(SchedulerEquivalence, HotspotStatsBitIdenticalAcrossSchedulers) {
  const ProcId p = 17;
  const Params prm{16, 1, 4};  // capacity 4: heavy stalling
  const auto progs = hotspot(p, 3);
  for (const AcceptOrder ao : kAccepts)
    for (const DeliverySchedule ds : kDeliveries)
      for (const std::uint64_t seed : {0u, 1u, 42u}) {
        const RunStats bucket = run_with(SchedulerKind::Bucket, ao, ds, seed,
                                         prm, p, progs);
        const RunStats heap = run_with(SchedulerKind::ReferenceHeap, ao, ds,
                                       seed, prm, p, progs);
        EXPECT_TRUE(bucket == heap)
            << "accept=" << static_cast<int>(ao)
            << " delivery=" << static_cast<int>(ds) << " seed=" << seed
            << " finish " << bucket.finish_time << " vs " << heap.finish_time;
        EXPECT_TRUE(bucket.completed());
      }
}

TEST(SchedulerEquivalence, RandomTrafficStatsBitIdenticalAcrossSchedulers) {
  const ProcId p = 12;
  const Params prm{12, 1, 3};
  for (const AcceptOrder ao : kAccepts)
    for (const DeliverySchedule ds : kDeliveries)
      for (const std::uint64_t seed : {7u, 99u}) {
        const auto progs = random_traffic(p, 12, 20, seed);
        const RunStats bucket = run_with(SchedulerKind::Bucket, ao, ds, seed,
                                         prm, p, progs);
        const RunStats heap = run_with(SchedulerKind::ReferenceHeap, ao, ds,
                                       seed, prm, p, progs);
        EXPECT_TRUE(bucket == heap)
            << "accept=" << static_cast<int>(ao)
            << " delivery=" << static_cast<int>(ds) << " seed=" << seed;
        EXPECT_TRUE(bucket.completed());
      }
}

TEST(SchedulerEquivalence, SparseTimersCrossTheWheelHorizon) {
  // Compute jumps far beyond the 1024-step wheel window force events
  // through the bucket queue's overflow map.
  const ProcId p = 6;
  const Params prm{8, 1, 2};
  for (const std::uint64_t seed : {3u, 11u}) {
    const auto progs = random_traffic(p, 6, 5000, seed);
    const RunStats bucket =
        run_with(SchedulerKind::Bucket, AcceptOrder::Fifo,
                 DeliverySchedule::Latest, seed, prm, p, progs);
    const RunStats heap =
        run_with(SchedulerKind::ReferenceHeap, AcceptOrder::Fifo,
                 DeliverySchedule::Latest, seed, prm, p, progs);
    EXPECT_TRUE(bucket == heap) << "seed=" << seed;
    EXPECT_TRUE(bucket.completed());
    EXPECT_GT(bucket.finish_time, 1024);  // the horizon was actually crossed
  }
}

TEST(SchedulerEquivalence, InvariantsHoldUnderStress) {
  // Randomized stress across the full policy grid: capacity never exceeds
  // ceil(L/G), the medium delivers at most one message per destination per
  // step, and every message is delivered within (accept, accept + L] —
  // observed through the trace sink's Delivery events.
  const ProcId p = 24;
  const Params prm{16, 2, 4};  // capacity 4
  const auto progs = hotspot(p, 2);
  for (const AcceptOrder ao : kAccepts)
    for (const DeliverySchedule ds : kDeliveries) {
      DeliveryProbe probe;
      const RunStats st = run_with(SchedulerKind::Bucket, ao, ds, 5, prm, p,
                                   progs, &probe);
      EXPECT_TRUE(st.completed());
      EXPECT_LE(st.max_in_transit, prm.capacity());
      EXPECT_EQ(probe.deliveries, st.messages);
      EXPECT_EQ(st.messages, static_cast<Time>(p - 1) * 2);
    }
}

TEST(SchedulerEquivalence, EventsProcessedMatchesAcrossSchedulers) {
  const ProcId p = 9;
  const Params prm{8, 1, 2};
  const auto progs = hotspot(p, 2);
  const RunStats bucket =
      run_with(SchedulerKind::Bucket, AcceptOrder::Fifo,
               DeliverySchedule::Latest, 0, prm, p, progs);
  const RunStats heap =
      run_with(SchedulerKind::ReferenceHeap, AcceptOrder::Fifo,
               DeliverySchedule::Latest, 0, prm, p, progs);
  EXPECT_GT(bucket.events_processed, 0);
  EXPECT_EQ(bucket.events_processed, heap.events_processed);
}

}  // namespace
}  // namespace bsplogp::logp

// Model-level properties the paper argues in prose, checked on the
// engines:
//  * Section 6 / 2.2: LogP computations on disjoint processor sets do not
//    interfere — partitionability "leads to natural solutions";
//  * Section 2.1: BSP's global barrier couples unrelated computations;
//  * Section 2.2's G <= L discussion: within the admitted parameter range,
//    paced streams need only bounded input buffers.
#include <gtest/gtest.h>

#include <vector>

#include "src/bsp/machine.h"
#include "src/logp/machine.h"

namespace bsplogp::logp {
namespace {

/// A ring of `group` processors starting at `base` circulates a token
/// `laps` times; finish times per member are recorded.
ProgramFn ring_member(ProcId base, ProcId group, int laps,
                      std::vector<Time>* finish) {
  return [base, group, laps, finish](Proc& pr) -> Task<> {
    const ProcId local = pr.id() - base;
    const ProcId next = base + (local + 1) % group;
    for (int lap = 0; lap < laps; ++lap) {
      if (local == 0) {
        co_await pr.send(next, lap);
        (void)co_await pr.recv();
      } else {
        (void)co_await pr.recv();
        co_await pr.send(next, lap);
      }
    }
    (*finish)[static_cast<std::size_t>(pr.id())] = pr.now();
  };
}

TEST(ModelProperties, LogpDisjointGroupsDoNotInterfere) {
  const Params prm{8, 1, 2};
  const ProcId a = 4, b = 6;

  // Run group A alone.
  std::vector<Time> alone(static_cast<std::size_t>(a), 0);
  {
    std::vector<ProgramFn> progs;
    for (ProcId i = 0; i < a; ++i)
      progs.push_back(ring_member(0, a, 5, &alone));
    Machine m(a, prm);
    ASSERT_TRUE(m.run(progs).completed());
  }

  // Run group A next to a busy group B on one machine.
  std::vector<Time> together(static_cast<std::size_t>(a + b), 0);
  {
    std::vector<ProgramFn> progs;
    for (ProcId i = 0; i < a; ++i)
      progs.push_back(ring_member(0, a, 5, &together));
    for (ProcId i = 0; i < b; ++i)
      progs.push_back(ring_member(a, b, 40, &together));  // much longer
    Machine m(a + b, prm);
    ASSERT_TRUE(m.run(progs).completed());
  }

  // Partitionability: group A's timing is bit-identical with or without B.
  for (ProcId i = 0; i < a; ++i)
    EXPECT_EQ(together[static_cast<std::size_t>(i)],
              alone[static_cast<std::size_t>(i)])
        << "proc " << i;
}

TEST(ModelProperties, BspGlobalBarrierCouplesDisjointGroups) {
  // The contrast the paper draws: in BSP the barrier is global, so a group
  // that is done keeps paying l for every superstep of the busier group.
  const bsp::Params prm{1, 100};
  auto run_cost = [&](ProcId p, std::int64_t busy_steps) {
    auto progs = bsp::make_programs(p, [busy_steps](bsp::Ctx& c) {
      // Processors in the upper half run busy_steps supersteps; the lower
      // half is done after one.
      const bool busy = c.pid() >= c.nprocs() / 2;
      return c.superstep() < (busy ? busy_steps : 1);
    });
    bsp::Machine m(p, prm);
    return m.run(progs).finish_time;
  };
  const Time short_run = run_cost(8, 1);
  const Time long_run = run_cost(8, 20);
  // Everyone pays for 20 supersteps of barriers even though half the
  // machine had nothing to do.
  EXPECT_GE(long_run, 20 * prm.l);
  EXPECT_LE(short_run, 3 * prm.l);
}

TEST(ModelProperties, PacedStreamNeedsOnlyBoundedBuffers) {
  // Section 2.2 argues G <= L is what keeps input buffers bounded. Within
  // the admitted range, a sender paced at the gap and a receiver acquiring
  // at the same rate keep the buffer at O(L/G) even over long runs.
  const Params prm{16, 1, 4};
  Machine m(2, prm);
  const int n = 200;
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& pr) -> Task<> {
    for (int k = 0; k < n; ++k) co_await pr.send(1, k);
  });
  progs.emplace_back([](Proc& pr) -> Task<> {
    for (int k = 0; k < n; ++k) (void)co_await pr.recv();
  });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_LE(st.max_inbox, prm.capacity() + 1)
      << "paced stream must not accumulate unbounded buffer";
}

TEST(ModelProperties, UnacquiredTrafficDoesMeasureBufferGrowth) {
  // The complementary observation: if the receiver refuses to acquire, the
  // buffer grows with the traffic — the engine's max_inbox statistic is
  // the measurement tool for buffer analyses.
  const Params prm{16, 1, 4};
  Machine m(2, prm);
  const int n = 50;
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& pr) -> Task<> {
    for (int k = 0; k < n; ++k) co_await pr.send(1, k);
  });
  progs.emplace_back([](Proc& pr) -> Task<> {
    co_await pr.wait_until(10'000);  // ignore everything, then drain
    for (int k = 0; k < n; ++k) (void)co_await pr.recv();
  });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_EQ(st.max_inbox, n);
}

TEST(ModelProperties, LogpResultsIndependentOfParameterScaling) {
  // BSP guarantees parameter-independence of results by construction; for
  // LogP the paper notes correctness can depend on (L, G). For programs in
  // the disciplined style (tagged receives, no timing assumptions) results
  // should survive parameter changes — the portability style the
  // literature advocates.
  auto run_with = [&](Params prm) {
    std::vector<Word> sums(4, 0);
    std::vector<ProgramFn> progs;
    for (ProcId i = 0; i < 4; ++i)
      progs.emplace_back([&sums](Proc& pr) -> Task<> {
        for (ProcId d = 0; d < 4; ++d)
          if (d != pr.id()) co_await pr.send(d, pr.id() + 1);
        Word s = 0;
        for (int k = 0; k < 3; ++k) s += (co_await pr.recv()).payload;
        sums[static_cast<std::size_t>(pr.id())] = s;
      });
    Machine m(4, prm);
    (void)m.run(progs);
    return sums;
  };
  const auto a = run_with(Params{4, 1, 2});
  const auto b = run_with(Params{64, 4, 16});
  const auto c = run_with(Params{17, 2, 5});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace bsplogp::logp

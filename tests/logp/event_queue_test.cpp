// Direct unit coverage for the calendar-queue scheduler's edges —
// previously reached only indirectly through scheduler_equivalence:
// overflow spill past the wheel horizon, migration ordering against direct
// wheel pushes, the wheel-empty jump to the overflow minimum time, the
// payload pool's slot recycling, and the never-into-the-past contract.
// Throughout, the HeapQueue reference is the ordering oracle: both
// implementations must pop any pushed stream in the identical order.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/types.h"
#include "src/logp/event_queue.h"

namespace bsplogp::logp::detail {
namespace {

// The wheel horizon in event_queue.h (kWheelBits = 10). Mirrored here so a
// wheel resize breaks this test loudly instead of silently weakening it.
constexpr Time kHorizon = 1024;

struct Popped {
  Time t;
  ProcId proc;
  EventKind kind;
  bool operator==(const Popped&) const = default;
};

std::vector<Popped> drain(EventQueue& q) {
  std::vector<Popped> out;
  while (!q.empty()) {
    const Event ev = q.pop();
    out.push_back(Popped{ev.t, ev.proc, ev.kind});
    if (ev.payload != kNoPayload) q.release(ev.payload);
  }
  return out;
}

TEST(EventQueue, PopsTimePhaseFifoOrder) {
  for (const bool bucket : {true, false}) {
    EventQueue q;
    q.reset(bucket);
    // Same step, pushed in reverse phase order; plus a later step pushed
    // first. Pop must yield time-major, phase-minor, FIFO within a lane.
    q.push(7, Phase::Processor, EventKind::Resume, 3);
    q.push(2, Phase::Accept, EventKind::Accept, 0);
    q.push(2, Phase::Processor, EventKind::Submit, 1);
    q.push(2, Phase::Processor, EventKind::Submit, 2);
    q.push(2, Phase::Delivery, EventKind::Delivery, 4);
    const std::vector<Popped> got = drain(q);
    const std::vector<Popped> want = {
        {2, 4, EventKind::Delivery}, {2, 1, EventKind::Submit},
        {2, 2, EventKind::Submit},   {2, 0, EventKind::Accept},
        {7, 3, EventKind::Resume},
    };
    EXPECT_EQ(got, want) << (bucket ? "bucket" : "heap");
  }
}

TEST(EventQueue, OverflowSpillMigratesInOrder) {
  // Events beyond cur + 1024 land in the overflow lane. Interleave
  // beyond-horizon pushes with a (later) direct wheel push at the same
  // time: after migration both kinds must drain FIFO per (t, phase),
  // overflow entries first — they were pushed first.
  //
  // The stepping-stone event at t = 600 makes this a genuine race: popping
  // it moves the cursor — and the horizon — past `far` in one scan jump,
  // and the push at `far` that follows goes directly into the wheel lane.
  // Migration must already have run at the scanned-to cursor (not just at
  // the pre-scan one), or the direct push would order ahead of the
  // earlier-pushed overflow entries and diverge from the heap.
  for (const bool bucket : {true, false}) {
    EventQueue q;
    q.reset(bucket);
    q.push(0, Phase::Processor, EventKind::Start, 0);
    q.push(600, Phase::Processor, EventKind::Resume, 9);
    const Time far = kHorizon + 500;  // beyond the horizon from t = 0
    q.push(far, Phase::Processor, EventKind::Resume, 1);
    q.push(far + 1, Phase::Processor, EventKind::Resume, 2);
    q.push(far, Phase::Processor, EventKind::Resume, 3);

    EXPECT_EQ(q.pop().proc, 0);
    EXPECT_EQ(q.pop().proc, 9);  // cursor now at 600; far is in horizon
    // Direct wheel push at the same step must queue behind the migrated
    // entries.
    q.push(far, Phase::Processor, EventKind::Resume, 4);
    const std::vector<Popped> got = drain(q);
    const std::vector<Popped> want = {
        {far, 1, EventKind::Resume},
        {far, 3, EventKind::Resume},
        {far, 4, EventKind::Resume},
        {far + 1, 2, EventKind::Resume},
    };
    EXPECT_EQ(got, want) << (bucket ? "bucket" : "heap");
  }
}

TEST(EventQueue, EmptyWheelJumpsToOverflowMinTime) {
  EventQueue q;
  q.reset(true);
  q.push(0, Phase::Processor, EventKind::Start, 0);
  // Two overflow generations: one just past the horizon, one far past it.
  q.push(kHorizon + 7, Phase::Accept, EventKind::Accept, 1);
  q.push(10 * kHorizon, Phase::Delivery, EventKind::Delivery, 2);
  EXPECT_EQ(q.pop().proc, 0);
  // The wheel is now empty; pop must jump to the overflow minimum, not
  // scan 1024 empty steps per generation.
  Event ev = q.pop();
  EXPECT_EQ(ev.t, kHorizon + 7);
  EXPECT_EQ(ev.proc, 1);
  ev = q.pop();
  EXPECT_EQ(ev.t, 10 * kHorizon);
  EXPECT_EQ(ev.proc, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PayloadPoolRoundTripAndRecycling) {
  EventQueue q;
  q.reset(true);
  const Message a{0, 1, 42, 7, 9, 2};
  const Message b{3, 1, 43, 8, 10, 1};
  q.push_msg(1, Phase::Delivery, EventKind::Delivery, 1, a);
  q.push_msg(2, Phase::Delivery, EventKind::Delivery, 1, b);

  Event ev = q.pop();
  ASSERT_NE(ev.payload, kNoPayload);
  const Message& got_a = q.payload(ev.payload);
  EXPECT_EQ(got_a.payload, a.payload);
  EXPECT_EQ(got_a.tag, a.tag);
  EXPECT_EQ(got_a.src, a.src);
  const PayloadSlot first_slot = ev.payload;
  q.release(ev.payload);

  // A released slot is recycled by the next push_msg (LIFO free list) —
  // the pool must not grow while in-flight count does not.
  q.push_msg(3, Phase::Delivery, EventKind::Delivery, 1, a);
  ev = q.pop();  // b at t = 2
  EXPECT_EQ(q.payload(ev.payload).payload, b.payload);
  q.release(ev.payload);
  ev = q.pop();  // recycled a at t = 3
  EXPECT_EQ(ev.payload, first_slot);
  EXPECT_EQ(q.payload(ev.payload).payload, a.payload);
  q.release(ev.payload);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, BucketMatchesHeapOnRandomStreams) {
  // Randomized differential: any interleaving of pushes and pops (with
  // pushes never into the past) yields the same pop order on both
  // schedulers. Seeds cover wraps of the wheel and overflow spills.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EventQueue bucket;
    EventQueue heap;
    bucket.reset(true);
    heap.reset(false);
    core::Rng rng(seed);
    Time now = 0;
    std::vector<Popped> got_bucket;
    std::vector<Popped> got_heap;
    int pushed = 0;
    int popped = 0;
    while (popped < 4000) {
      const bool do_push =
          pushed < 4000 && (popped == pushed || rng.below(100) < 55);
      if (do_push) {
        // Mix near-future (wheel) and far-future (overflow) times.
        const Time dt = rng.below(100) < 85
                            ? static_cast<Time>(rng.below(64))
                            : static_cast<Time>(1000 + rng.below(3000));
        const auto phase = static_cast<Phase>(rng.below(3));
        const auto proc = static_cast<ProcId>(pushed);
        bucket.push(now + dt, phase, EventKind::Resume, proc);
        heap.push(now + dt, phase, EventKind::Resume, proc);
        pushed += 1;
      } else {
        const Event eb = bucket.pop();
        const Event eh = heap.pop();
        got_bucket.push_back(Popped{eb.t, eb.proc, eb.kind});
        got_heap.push_back(Popped{eh.t, eh.proc, eh.kind});
        ASSERT_GE(eb.t, now) << "seed " << seed;
        now = eb.t;  // future pushes respect the no-past contract
        popped += 1;
      }
    }
    EXPECT_EQ(got_bucket, got_heap) << "seed " << seed;
    EXPECT_TRUE(bucket.empty());
    EXPECT_TRUE(heap.empty());
  }
}

TEST(EventQueueDeathTest, PushIntoThePastAborts) {
  EventQueue q;
  q.reset(true);
  q.push(50, Phase::Processor, EventKind::Resume, 0);
  (void)q.pop();  // cursor is now at t = 50
  EXPECT_DEATH(q.push(10, Phase::Processor, EventKind::Resume, 1),
               "invariant");
}

}  // namespace
}  // namespace bsplogp::logp::detail

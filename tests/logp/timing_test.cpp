// Step-exact timing tests for the LogP engine: overhead, gap, latency and
// their interplay, checked against hand-computed schedules.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/logp/machine.h"

namespace bsplogp::logp {
namespace {

using enum DeliverySchedule;

Machine::Options opts(DeliverySchedule d) {
  Machine::Options o;
  o.delivery = d;
  return o;
}

TEST(LogpTiming, SingleMessageLatestDelivery) {
  // L=8,o=1,G=2. Sender submits at t=o=1, accepted immediately, delivered
  // at the latest admissible slot t=1+L=9; receiver acquires at 9, done at
  // 9+o=10. Completion = 2o+L, the paper's single-message cost.
  const Params prm{8, 1, 2};
  Machine m(2, prm, opts(Latest));
  std::vector<Word> got(2, -1);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> { co_await p.send(1, 42); });
  progs.emplace_back([&](Proc& p) -> Task<> {
    const Message msg = co_await p.recv();
    got[1] = msg.payload;
  });
  const RunStats st = m.run(progs);
  EXPECT_EQ(got[1], 42);
  EXPECT_EQ(st.proc_finish[0], 1);   // o
  EXPECT_EQ(st.proc_finish[1], 10);  // o + L + o
  EXPECT_EQ(st.finish_time, 10);
  EXPECT_TRUE(st.stall_free());
  EXPECT_TRUE(st.completed());
}

TEST(LogpTiming, SingleMessageEarliestDelivery) {
  const Params prm{8, 1, 2};
  Machine m(2, prm, opts(Earliest));
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> { co_await p.send(1, 1); });
  progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
  const RunStats st = m.run(progs);
  // Earliest admissible delivery is accept+1 = 2; acquire at 2, +o.
  EXPECT_EQ(st.proc_finish[1], 3);
}

TEST(LogpTiming, SubmissionGapPacesDistinctDestinations) {
  // Three sends to distinct destinations: submissions at o, o+G, o+2G.
  const Params prm{8, 1, 2};
  Machine m(4, prm, opts(Latest));
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.send(1, 0);
    co_await p.send(2, 0);
    co_await p.send(3, 0);
  });
  for (ProcId i = 1; i < 4; ++i)
    progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
  const RunStats st = m.run(progs);
  EXPECT_EQ(st.proc_finish[0], 1 + 2 * 2);  // o + (k-1)G
  // Last submission at 5, latest delivery at 13, acquire +o.
  EXPECT_EQ(st.finish_time, 14);
  EXPECT_TRUE(st.stall_free());
}

TEST(LogpTiming, AcquisitionGapPacesReceiver) {
  // Three messages to one receiver with Earliest delivery: arrivals at
  // 2, 4, 6 (slots are per-destination unique); acquisitions at 2, 4, 6
  // (already G apart), receiver finishes at 6+o=7.
  const Params prm{8, 1, 2};
  Machine m(2, prm, opts(Earliest));
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.send(1, 0);
    co_await p.send(1, 1);
    co_await p.send(1, 2);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    for (int i = 0; i < 3; ++i) (void)co_await p.recv();
  });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.stall_free());  // capacity ceil(8/2)=4 >= 3
  EXPECT_EQ(st.proc_finish[1], 7);
}

TEST(LogpTiming, ComputeDelaysSubmission) {
  const Params prm{8, 1, 2};
  Machine m(2, prm, opts(Latest));
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.compute(5);
    co_await p.send(1, 0);
  });
  progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
  const RunStats st = m.run(progs);
  EXPECT_EQ(st.proc_finish[0], 6);             // 5 + o
  EXPECT_EQ(st.proc_finish[1], 6 + 8 + 1);     // submit+L, +o
}

TEST(LogpTiming, ComputeZeroIsFree) {
  const Params prm{8, 1, 2};
  Machine m(1, prm);
  const RunStats st = m.run([](Proc& p) -> Task<> {
    co_await p.compute(0);
    co_await p.compute(0);
  });
  EXPECT_EQ(st.finish_time, 0);
}

TEST(LogpTiming, OverheadChargedPerAcquisition) {
  // o=2, G=4: back-to-back receives are gap-limited, and each costs o on
  // top of the acquisition start.
  const Params prm{8, 2, 4};
  Machine m(2, prm, opts(Earliest));
  std::vector<Time> finish(2);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.send(1, 0);
    co_await p.send(1, 1);
  });
  progs.emplace_back([&](Proc& p) -> Task<> {
    (void)co_await p.recv();
    const Time after_first = p.now();
    (void)co_await p.recv();
    finish[1] = p.now();
    EXPECT_GE(finish[1] - after_first, prm.G - prm.o);
  });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  // Submissions at 2, 6; deliveries (earliest) at 3, 7; acquisitions at
  // 3 (done 5) and 7 (done 9).
  EXPECT_EQ(st.proc_finish[1], 9);
}

TEST(LogpTiming, RecvBeforeSendParksAndWakes) {
  const Params prm{8, 1, 2};
  Machine m(2, prm, opts(Earliest));
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.compute(100);  // make the receiver wait a long time
    co_await p.send(1, 5);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    const Message msg = co_await p.recv();
    EXPECT_EQ(msg.payload, 5);
  });
  const RunStats st = m.run(progs);
  EXPECT_EQ(st.proc_finish[1], 100 + 1 + 1 + 1);  // compute+o, +1 slot, +o
}

TEST(LogpTiming, PipelinedStreamSustainsRateG) {
  // A long one-to-one stream: completion ~ o + (n-1)G + L + o; the
  // per-message cost converges to G (the model's bandwidth).
  const Params prm{16, 1, 4};
  const int n = 64;
  Machine m(2, prm, opts(Latest));
  std::vector<ProgramFn> progs;
  progs.emplace_back([&](Proc& p) -> Task<> {
    for (int i = 0; i < n; ++i) co_await p.send(1, i);
  });
  progs.emplace_back([&](Proc& p) -> Task<> {
    for (int i = 0; i < n; ++i) (void)co_await p.recv();
  });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.stall_free());  // steady-state in-transit is L/G
  EXPECT_EQ(st.proc_finish[0], 1 + (n - 1) * 4);
  EXPECT_EQ(st.finish_time, 1 + (n - 1) * 4 + 16 + 1);
}

TEST(LogpTiming, MessageFieldsRoundTrip) {
  const Params prm{8, 1, 2};
  Machine m(2, prm);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.send(1, 123, 45, 678);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    const Message msg = co_await p.recv();
    EXPECT_EQ(msg.src, 0);
    EXPECT_EQ(msg.dst, 1);
    EXPECT_EQ(msg.payload, 123);
    EXPECT_EQ(msg.tag, 45);
    EXPECT_EQ(msg.aux, 678);
  });
  const RunStats st = m.run(progs);
  EXPECT_EQ(st.messages_acquired, 1);
}

TEST(LogpTiming, DeadlockIsDetectedAndReported) {
  const Params prm{8, 1, 2};
  Machine m(2, prm);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> { co_await p.compute(3); });
  progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.deadlock);
  ASSERT_EQ(st.blocked_procs.size(), 1u);
  EXPECT_EQ(st.blocked_procs[0], 1);
}

TEST(LogpTiming, RunawayComputeHitsTimeLimit) {
  const Params prm{8, 1, 2};
  Machine::Options o;
  o.max_time = 10'000;
  Machine m(1, prm, o);
  const RunStats st = m.run([](Proc& p) -> Task<> {
    for (;;) co_await p.compute(100);
  });
  EXPECT_TRUE(st.timed_out);
  EXPECT_FALSE(st.completed());
}

TEST(LogpTiming, FutureEventPastLimitStopsRun) {
  const Params prm{8, 1, 2};
  Machine::Options o;
  o.max_time = 50;
  Machine m(2, prm, o);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.compute(200);  // single jump past the limit
    co_await p.send(1, 0);
  });
  progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.timed_out);
}

TEST(LogpTiming, AcquisitionGapAppliesAcrossCloseArrivals) {
  // Two senders hit one receiver with deliveries 1 step apart (Earliest
  // slots 2 and 3); the second acquisition must wait for the acquisition
  // gap: start = max(clock, last_acquire + G) = max(3, 2 + 4) = 6, done 7.
  const Params prm{12, 1, 4};
  Machine m(3, prm, opts(Earliest));
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    for (int i = 0; i < 2; ++i) (void)co_await p.recv();
  });
  progs.emplace_back([](Proc& p) -> Task<> { co_await p.send(0, 1); });
  progs.emplace_back([](Proc& p) -> Task<> { co_await p.send(0, 2); });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_TRUE(st.stall_free());
  EXPECT_EQ(st.messages_acquired, 2);
  EXPECT_EQ(st.proc_finish[0], 7);
}

TEST(LogpTiming, TimeoutClampsFinishTimeForParkedComputeWait) {
  // A processor that jumped its clock past the horizon must not push the
  // reported finish time beyond max_time.
  const Params prm{8, 1, 2};
  Machine::Options o;
  o.max_time = 50;
  Machine m(2, prm, o);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.compute(200);  // parked in ComputeWait with clock 200
    co_await p.send(1, 0);
  });
  progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.timed_out);
  EXPECT_EQ(st.finish_time, 50);
  ASSERT_EQ(st.blocked_procs.size(), 2u);
  EXPECT_EQ(st.blocked_procs[0], 0);
  EXPECT_EQ(st.blocked_procs[1], 1);
}

TEST(LogpTiming, TimeoutClampsFinishTimeForParkedSubmitWait) {
  // G = 8 pushes the second submission to t = 9 > max_time = 5: the sender
  // sits in SubmitWait with clock 9, but the run ends at the horizon.
  const Params prm{8, 1, 8};
  Machine::Options o;
  o.max_time = 5;
  Machine m(2, prm, o);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> {
    co_await p.send(1, 0);
    co_await p.send(1, 1);
  });
  progs.emplace_back([](Proc& p) -> Task<> {
    for (int i = 0; i < 2; ++i) (void)co_await p.recv();
  });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.timed_out);
  EXPECT_FALSE(st.deadlock);
  EXPECT_EQ(st.finish_time, 5);
  ASSERT_EQ(st.blocked_procs.size(), 2u);
}

TEST(LogpTiming, ThrowingProgramIsNotRecordedAsFinished) {
  const Params prm{8, 1, 2};
  Machine m(2, prm);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> { co_await p.send(1, 1); });
  progs.emplace_back([](Proc& p) -> Task<> {
    (void)co_await p.recv();
    throw std::runtime_error("program failure");
  });
  EXPECT_THROW(m.run(progs), std::runtime_error);
  // The failure surfaced before completion bookkeeping: the thrower has no
  // recorded finish time.
  EXPECT_EQ(m.last_run_stats().proc_finish[1], 0);

  // The machine stays usable after a failed run.
  progs.pop_back();
  progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
  EXPECT_TRUE(m.run(progs).completed());
}

TEST(LogpTiming, MachineIsReusableAcrossRuns) {
  const Params prm{8, 1, 2};
  Machine m(2, prm);
  std::vector<ProgramFn> progs;
  progs.emplace_back([](Proc& p) -> Task<> { co_await p.send(1, 9); });
  progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
  const RunStats a = m.run(progs);
  const RunStats b = m.run(progs);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.messages, 1);
  EXPECT_EQ(b.messages, 1);
}

TEST(LogpTimingDeath, SelfSendViolatesModel) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto violate = [] {
    Machine m(2, Params{8, 1, 2});
    (void)m.run([](Proc& p) -> Task<> { co_await p.send(p.id(), 0); });
  };
  EXPECT_DEATH(violate(), "precondition");
}

TEST(LogpTimingDeath, ParamsRejectGBelowTwo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto violate = [] { Machine m(2, Params{8, 1, 1}); };
  EXPECT_DEATH(violate(), "precondition");
}

TEST(LogpTimingDeath, ParamsRejectGAboveL) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto violate = [] { Machine m(2, Params{4, 1, 8}); };
  EXPECT_DEATH(violate(), "precondition");
}

}  // namespace
}  // namespace bsplogp::logp

// Pins the zero-allocation property of the engine's steady state: after a
// warmup run has sized every container (the proc arena, inbox rings,
// pending rings, the event wheel, the payload pool, the coroutine-frame
// recycler), re-running the same workload must touch the global heap
// exactly zero times. Counted by core::AllocCounter via the replacement
// operator new/delete in alloc_hooks.cpp, which this binary links; the
// test skips (loudly) if the hooks are absent rather than pass vacuously.
//
// This is the property behind the throughput claims in
// BENCH_engine_throughput.json — O(1) allocations per run, not O(events)
// — so a regression here is a perf bug even when every behavioural test
// still passes.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/alloc_counter.h"
#include "src/logp/machine.h"
#include "src/logp/proc.h"
#include "src/workload/workload.h"

namespace bsplogp {
namespace {

// Allocations observed across a single run() after warmup.
std::int64_t steady_state_allocs(logp::Machine& m,
                                 const std::vector<logp::ProgramFn>& progs,
                                 int warmup_runs) {
  for (int i = 0; i < warmup_runs; ++i) (void)m.run(progs);
  const auto before = core::AllocCounter::now();
  (void)m.run(progs);
  return core::AllocCounter::since(before).allocs;
}

TEST(MachineAlloc, HotspotSteadyStateIsAllocationFree) {
  if (!core::AllocCounter::installed())
    GTEST_SKIP() << "alloc hooks not linked into this binary";

  // The p = 65536 hotspot from the engine-throughput micro benchmark: the
  // largest machine the bench exercises, with every sender aimed at proc 0
  // so the pending ring and input buffer both see their worst-case growth
  // during warmup.
  constexpr ProcId kProcs = 65536;
  logp::Machine m(kProcs, logp::Params{256, 1, 2});
  const auto progs = workload::hotspot(kProcs, 1);

  // Two warmups: the first sizes every container, the second proves the
  // sizes are stable before we start counting.
  EXPECT_EQ(steady_state_allocs(m, progs, 2), 0);
}

TEST(MachineAlloc, SteadyStateFreeOnBothSchedulersAndPolicies) {
  if (!core::AllocCounter::installed())
    GTEST_SKIP() << "alloc hooks not linked into this binary";

  // The property is not special to the calendar queue or to the default
  // policies: the reference heap reuses its backing vector, and the Random
  // policies draw from the machine's own Rng without allocating.
  for (const auto scheduler : {logp::SchedulerKind::Bucket,
                               logp::SchedulerKind::ReferenceHeap}) {
    logp::Machine::Options opt;
    opt.scheduler = scheduler;
    opt.accept_order = logp::AcceptOrder::Random;
    opt.delivery = logp::DeliverySchedule::UniformRandom;
    opt.seed = 7;
    logp::Machine m(256, logp::Params{64, 1, 2}, opt);
    const auto progs = workload::hotspot(256, 4);
    EXPECT_EQ(steady_state_allocs(m, progs, 2), 0)
        << (scheduler == logp::SchedulerKind::Bucket ? "bucket" : "heap");
  }
}

TEST(MachineAlloc, FirstRunAllocationsAreBounded) {
  if (!core::AllocCounter::installed())
    GTEST_SKIP() << "alloc hooks not linked into this binary";

  // Sanity bound on the warmup itself: the first run allocates O(p)
  // container growth (ring doublings, root frames, the payload pool —
  // about 12p on this workload), never O(events). The p = 256, k = 16
  // hotspot processes ~20k events; a per-event allocation regime would
  // blow far past this cap.
  constexpr ProcId kProcs = 256;
  logp::Machine m(kProcs, logp::Params{64, 1, 2});
  const auto progs = workload::hotspot(kProcs, 16);
  const auto before = core::AllocCounter::now();
  (void)m.run(progs);
  const auto delta = core::AllocCounter::since(before);
  EXPECT_LT(delta.allocs, 16 * static_cast<std::int64_t>(kProcs));
}

}  // namespace
}  // namespace bsplogp

// Tests of the capacity constraint and the Stalling Rule (Section 2.2):
// at each step, per destination, min{k, s} pending submissions are accepted
// where s is the number of free capacity slots; senders stall meanwhile;
// the hot spot still drains at the full bandwidth 1/G.
#include <gtest/gtest.h>

#include <vector>

#include "src/logp/machine.h"
#include "src/workload/workload.h"

namespace bsplogp::logp {
namespace {

// All-to-one fan-in throughout: the registry's hotspot family with k = 1
// (procs 1..p-1 each send one message to proc 0, who acquires them all).

TEST(LogpStalling, WithinCapacityNeverStalls) {
  // capacity = ceil(8/2) = 4 and exactly 4 simultaneous senders.
  const Params prm{8, 1, 2};
  Machine m(5, prm);
  const RunStats st = m.run(workload::hotspot(5, 1));
  EXPECT_TRUE(st.stall_free());
  EXPECT_EQ(st.messages, 4);
  EXPECT_LE(st.max_in_transit, prm.capacity());
}

TEST(LogpStalling, OneOverCapacityStallsExactlyOne) {
  const Params prm{8, 1, 2};  // capacity 4
  Machine m(6, prm);
  const RunStats st = m.run(workload::hotspot(6, 1));
  EXPECT_EQ(st.stall_events, 1);
  EXPECT_EQ(st.messages, 5);
}

TEST(LogpStalling, StallCountIsExcessOverCapacity) {
  const Params prm{4, 1, 2};  // capacity 2
  for (ProcId p : {4, 6, 9, 12}) {
    Machine m(p, prm);
    const RunStats st = m.run(workload::hotspot(p, 1));
    // p-1 simultaneous submissions, 2 accepted on the spot; every later
    // acceptance is a recorded stall.
    EXPECT_EQ(st.stall_events, (p - 1) - prm.capacity()) << "p=" << p;
    EXPECT_LE(st.max_in_transit, prm.capacity());
    EXPECT_EQ(st.messages, p - 1);
    EXPECT_TRUE(st.completed());
  }
}

TEST(LogpStalling, CapacityInvariantHoldsUnderAllPolicies) {
  const Params prm{6, 1, 3};  // capacity 2
  for (auto ao : {AcceptOrder::Fifo, AcceptOrder::Lifo, AcceptOrder::Random})
    for (auto ds : {DeliverySchedule::Latest, DeliverySchedule::Earliest,
                    DeliverySchedule::UniformRandom}) {
      Machine::Options o;
      o.accept_order = ao;
      o.delivery = ds;
      o.seed = 99;
      Machine m(10, prm, o);
      const RunStats st = m.run(workload::hotspot(10, 1));
      EXPECT_LE(st.max_in_transit, prm.capacity());
      EXPECT_EQ(st.messages, 9);
      EXPECT_TRUE(st.completed());
    }
}

TEST(LogpStalling, HotSpotDrainsAtBandwidthRate) {
  // Section 2.2's observation: under the Stalling Rule the hot spot still
  // receives at the maximum rate, one message every G steps (up to edge
  // effects), so total drain time for n messages is ~ o + nG + L.
  const Params prm{16, 1, 4};
  const ProcId p = 33;  // 32 senders, capacity 4
  Machine m(p, prm);
  const RunStats st = m.run(workload::hotspot(p, 1));
  const Time n = p - 1;
  const Time lower = prm.o + (n - 1) * prm.G;           // bandwidth bound
  const Time upper = prm.o + n * prm.G + 2 * prm.L + 8; // + pipeline fill
  EXPECT_GE(st.finish_time, lower);
  EXPECT_LE(st.finish_time, upper);
  EXPECT_GT(st.stall_events, 0);
}

TEST(LogpStalling, StallTimeAccountedToSenders) {
  const Params prm{4, 1, 2};  // capacity 2
  Machine m(8, prm);
  const RunStats st = m.run(workload::hotspot(8, 1));
  EXPECT_EQ(st.stall_events, 5);
  EXPECT_GT(st.stall_time_total, 0);
  EXPECT_GE(st.stall_time_max, st.stall_time_total / 5);
  EXPECT_LE(st.stall_time_max, st.stall_time_total);
}

TEST(LogpStalling, StalledSenderResumesAndContinues) {
  // A sender that stalls must resume at acceptance and run its remaining
  // program; its finish time includes the stall.
  const Params prm{4, 1, 2};  // capacity 2
  const ProcId p = 6;
  std::vector<Time> after_send(static_cast<std::size_t>(p), 0);
  std::vector<ProgramFn> progs;
  progs.emplace_back([p](Proc& pr) -> Task<> {
    for (ProcId i = 1; i < p; ++i) (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([&](Proc& pr) -> Task<> {
      co_await pr.send(0, 0);
      after_send[static_cast<std::size_t>(pr.id())] = pr.now();
      co_await pr.compute(10);
    });
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  // All senders submitted at t=o=1; the two accepted immediately resume at
  // 1, the stalled ones strictly later.
  int stalled = 0;
  for (ProcId i = 1; i < p; ++i)
    stalled += after_send[static_cast<std::size_t>(i)] > prm.o;
  EXPECT_EQ(stalled, 3);
  for (ProcId i = 1; i < p; ++i)
    EXPECT_EQ(st.proc_finish[static_cast<std::size_t>(i)],
              after_send[static_cast<std::size_t>(i)] + 10);
}

TEST(LogpStalling, TwoHotSpotsStallIndependently) {
  // Saturating destination 0 must not delay traffic to destination 1
  // (the capacity constraint is per-destination).
  const Params prm{4, 1, 2};  // capacity 2
  const ProcId p = 10;        // 0,1 receivers; 2..5 -> 0, 6..9 -> 1
  std::vector<ProgramFn> progs;
  for (ProcId r = 0; r < 2; ++r)
    progs.emplace_back([](Proc& pr) -> Task<> {
      for (int i = 0; i < 4; ++i) (void)co_await pr.recv();
    });
  for (ProcId s = 2; s < p; ++s) {
    const ProcId dst = s < 6 ? 0 : 1;
    progs.emplace_back(
        [dst](Proc& pr) -> Task<> { co_await pr.send(dst, 0); });
  }
  Machine m(p, prm);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  // 4 senders per destination, capacity 2: exactly 2 stalls per hot spot.
  EXPECT_EQ(st.stall_events, 4);
}

TEST(LogpStalling, AllToOneCompletesWithinQuadraticWorstCase) {
  // Section 4.3's worst-case argument: total stall time per sender is at
  // most Gh, so an h-relation finishes in O(Gh^2) even when it stalls.
  const Params prm{8, 1, 4};
  for (ProcId p : {9, 17, 33}) {
    Machine m(p, prm);
    const RunStats st = m.run(workload::hotspot(p, 1));
    const Time h = p - 1;
    EXPECT_TRUE(st.completed());
    EXPECT_LE(st.finish_time, prm.G * h * h + 2 * prm.L + 2 * prm.o)
        << "p=" << p;
  }
}

}  // namespace
}  // namespace bsplogp::logp

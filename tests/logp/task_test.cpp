// Tests of the coroutine Task type and its composition on the LogP engine:
// sub-tasks (the building block for collectives), value return, exception
// propagation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/logp/machine.h"
#include "src/logp/task.h"

namespace bsplogp::logp {
namespace {

Task<Word> double_after_compute(Proc& p, Word x) {
  co_await p.compute(3);
  co_return 2 * x;
}

TEST(LogpTask, SubTaskReturnsValueAndAdvancesClock) {
  const Params prm{8, 1, 2};
  Machine m(1, prm);
  Word result = 0;
  Time after = -1;
  const RunStats st = m.run([&](Proc& p) -> Task<> {
    result = co_await double_after_compute(p, 21);
    after = p.now();
  });
  EXPECT_TRUE(st.completed());
  EXPECT_EQ(result, 42);
  EXPECT_EQ(after, 3);
}

Task<Word> nested_twice(Proc& p, Word x) {
  const Word once = co_await double_after_compute(p, x);
  co_return co_await double_after_compute(p, once);
}

TEST(LogpTask, DeeplyNestedTasksCompose) {
  const Params prm{8, 1, 2};
  Machine m(1, prm);
  Word result = 0;
  const RunStats st = m.run([&](Proc& p) -> Task<> {
    result = co_await nested_twice(p, 5);
  });
  EXPECT_EQ(result, 20);
  EXPECT_EQ(st.finish_time, 6);
}

Task<Word> echo_server(Proc& p) {
  const Message msg = co_await p.recv();
  co_await p.send(msg.src, msg.payload + 1);
  co_return msg.payload;
}

TEST(LogpTask, SubTasksCanCommunicate) {
  const Params prm{8, 1, 2};
  Machine m(2, prm);
  Word server_saw = -1, client_got = -1;
  std::vector<ProgramFn> progs;
  progs.emplace_back([&](Proc& p) -> Task<> {
    co_await p.send(1, 10);
    client_got = (co_await p.recv()).payload;
  });
  progs.emplace_back([&](Proc& p) -> Task<> {
    server_saw = co_await echo_server(p);
  });
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.completed());
  EXPECT_EQ(server_saw, 10);
  EXPECT_EQ(client_got, 11);
}

TEST(LogpTask, ExceptionPropagatesOutOfRun) {
  const Params prm{8, 1, 2};
  Machine m(1, prm);
  EXPECT_THROW(
      (void)m.run([](Proc& p) -> Task<> {
        co_await p.compute(1);
        throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

Task<Word> throwing_child(Proc& p) {
  co_await p.compute(1);
  throw std::runtime_error("child boom");
}

TEST(LogpTask, ChildExceptionReachesParentCatch) {
  const Params prm{8, 1, 2};
  Machine m(1, prm);
  bool caught = false;
  const RunStats st = m.run([&](Proc& p) -> Task<> {
    try {
      (void)co_await throwing_child(p);
    } catch (const std::runtime_error&) {
      caught = true;
    }
    co_await p.compute(1);
  });
  EXPECT_TRUE(caught);
  EXPECT_TRUE(st.completed());
  EXPECT_EQ(st.finish_time, 2);
}

TEST(LogpTask, LoopOfSubTasksReusesFramesSafely) {
  const Params prm{8, 1, 2};
  Machine m(1, prm);
  Word total = 0;
  const RunStats st = m.run([&](Proc& p) -> Task<> {
    for (Word i = 0; i < 50; ++i) total += co_await double_after_compute(p, i);
  });
  EXPECT_EQ(total, 2 * (49 * 50 / 2));
  EXPECT_EQ(st.finish_time, 150);
}

TEST(LogpTask, DefaultConstructedTaskIsInvalid) {
  Task<> t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.done());
}

}  // namespace
}  // namespace bsplogp::logp

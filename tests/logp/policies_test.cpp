// The two sources of nondeterminism in LogP (Section 2.2) — delivery-time
// choice and acceptance order — are policy options here. These tests check
// that (a) every policy combination respects the model rules, (b) runs are
// reproducible per seed, and (c) a correct program computes the same
// input-output map under all admissible executions we can generate.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/logp/machine.h"
#include "src/workload/workload.h"

namespace bsplogp::logp {
namespace {

struct PolicyCase {
  AcceptOrder accept;
  DeliverySchedule delivery;
  std::uint64_t seed;
};

class AllPolicies : public ::testing::TestWithParam<PolicyCase> {};

// The traffic under test is the registry's all_to_all family: every
// processor sends payload (id + 1) to each other processor, then sums its
// p-1 received payloads, so processor i must end with sum(1..p) - (i + 1).
std::vector<Word> expected_sums(ProcId p) {
  const Word total = static_cast<Word>(p) * (p + 1) / 2;
  std::vector<Word> sums(static_cast<std::size_t>(p), 0);
  for (ProcId i = 0; i < p; ++i)
    sums[static_cast<std::size_t>(i)] = total - (i + 1);
  return sums;
}

TEST_P(AllPolicies, AllToAllComputesSameResultEverywhere) {
  const PolicyCase pc = GetParam();
  const ProcId p = 8;
  const Params prm{12, 1, 3};
  Machine::Options o;
  o.accept_order = pc.accept;
  o.delivery = pc.delivery;
  o.seed = pc.seed;
  Machine m(p, prm, o);
  std::vector<Word> sums;
  const RunStats st = m.run(workload::all_to_all(p, &sums));
  EXPECT_TRUE(st.completed());
  EXPECT_EQ(sums, expected_sums(p));
  EXPECT_LE(st.max_in_transit, prm.capacity());
  EXPECT_EQ(st.messages, p * (p - 1));
  EXPECT_EQ(st.messages_acquired, p * (p - 1));
}

TEST_P(AllPolicies, RunsAreReproduciblePerSeed) {
  const PolicyCase pc = GetParam();
  const ProcId p = 6;
  const Params prm{8, 1, 2};
  Machine::Options o;
  o.accept_order = pc.accept;
  o.delivery = pc.delivery;
  o.seed = pc.seed;
  auto run_once = [&] {
    Machine m(p, prm, o);
    std::vector<Word> sums;
    const RunStats st = m.run(workload::all_to_all(p, &sums));
    return std::pair{st.finish_time, st.stall_events};
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, AllPolicies,
    ::testing::Values(
        PolicyCase{AcceptOrder::Fifo, DeliverySchedule::Latest, 1},
        PolicyCase{AcceptOrder::Fifo, DeliverySchedule::Earliest, 1},
        PolicyCase{AcceptOrder::Fifo, DeliverySchedule::UniformRandom, 1},
        PolicyCase{AcceptOrder::Lifo, DeliverySchedule::Latest, 1},
        PolicyCase{AcceptOrder::Lifo, DeliverySchedule::Earliest, 1},
        PolicyCase{AcceptOrder::Lifo, DeliverySchedule::UniformRandom, 2},
        PolicyCase{AcceptOrder::Random, DeliverySchedule::Latest, 3},
        PolicyCase{AcceptOrder::Random, DeliverySchedule::Earliest, 4},
        PolicyCase{AcceptOrder::Random, DeliverySchedule::UniformRandom, 5}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      const auto& pc = info.param;
      std::string name;
      switch (pc.accept) {
        case AcceptOrder::Fifo: name += "Fifo"; break;
        case AcceptOrder::Lifo: name += "Lifo"; break;
        case AcceptOrder::Random: name += "RandAcc"; break;
      }
      switch (pc.delivery) {
        case DeliverySchedule::Latest: name += "Latest"; break;
        case DeliverySchedule::Earliest: name += "Earliest"; break;
        case DeliverySchedule::UniformRandom: name += "RandDel"; break;
      }
      return name + "Seed" + std::to_string(pc.seed);
    });

TEST(LogpPolicies, LatestDeliveryIsWorstCaseForLatency) {
  const Params prm{32, 1, 4};
  auto finish_with = [&](DeliverySchedule d) {
    Machine::Options o;
    o.delivery = d;
    Machine m(2, prm, o);
    std::vector<ProgramFn> progs;
    progs.emplace_back([](Proc& p) -> Task<> { co_await p.send(1, 0); });
    progs.emplace_back([](Proc& p) -> Task<> { (void)co_await p.recv(); });
    return m.run(progs).finish_time;
  };
  const Time latest = finish_with(DeliverySchedule::Latest);
  const Time earliest = finish_with(DeliverySchedule::Earliest);
  Machine::Options o;
  o.delivery = DeliverySchedule::UniformRandom;
  EXPECT_GT(latest, earliest);
  EXPECT_EQ(latest - earliest, prm.L - 1);
}

TEST(LogpPolicies, RandomDeliveryStaysWithinWindow) {
  const Params prm{16, 1, 2};
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Machine::Options o;
    o.delivery = DeliverySchedule::UniformRandom;
    o.seed = seed;
    Machine m(2, prm, o);
    std::vector<ProgramFn> progs;
    Time send_done = 0;
    progs.emplace_back([&](Proc& p) -> Task<> {
      co_await p.send(1, 0);
      send_done = p.now();
    });
    Time recv_done = 0;
    progs.emplace_back([&](Proc& p) -> Task<> {
      (void)co_await p.recv();
      recv_done = p.now();
    });
    const RunStats st = m.run(progs);
    EXPECT_TRUE(st.completed());
    // Delivery within (accept, accept+L]; acquisition adds o.
    EXPECT_GE(recv_done, send_done + 1 + prm.o);
    EXPECT_LE(recv_done, send_done + prm.L + prm.o);
  }
}

TEST(LogpPolicies, AcceptOrderChangesWhoStallsNotHowMany) {
  const Params prm{4, 1, 2};  // capacity 2
  const ProcId p = 8;
  auto stalls_with = [&](AcceptOrder ao, std::uint64_t seed) {
    Machine::Options o;
    o.accept_order = ao;
    o.seed = seed;
    Machine m(p, prm, o);
    std::vector<ProgramFn> progs;
    progs.emplace_back([p](Proc& pr) -> Task<> {
      for (ProcId i = 1; i < p; ++i) (void)co_await pr.recv();
    });
    for (ProcId i = 1; i < p; ++i)
      progs.emplace_back(
          [](Proc& pr) -> Task<> { co_await pr.send(0, 0); });
    return m.run(progs).stall_events;
  };
  const auto expected = (p - 1) - prm.capacity();
  EXPECT_EQ(stalls_with(AcceptOrder::Fifo, 0), expected);
  EXPECT_EQ(stalls_with(AcceptOrder::Lifo, 0), expected);
  EXPECT_EQ(stalls_with(AcceptOrder::Random, 7), expected);
}

}  // namespace
}  // namespace bsplogp::logp

// SlotBitmap rank/select: count_free and nth_free are the word-at-a-time
// core of the UniformRandom delivery schedule on the Bucket scheduler — a
// draw below count_free(lo, hi) selects nth_free(lo, hi, k), and both must
// agree exactly with a naive per-slot scan (the ReferenceHeap fallback
// materializes precisely that list, and scheduler equivalence demands the
// same k map to the same slot).
#include <gtest/gtest.h>

#include <vector>

#include "src/core/rng.h"
#include "src/core/types.h"
#include "src/logp/slot_bitmap.h"

namespace bsplogp::logp::detail {
namespace {

std::vector<Time> naive_free(const SlotBitmap& bm, Time lo, Time hi) {
  std::vector<Time> out;
  for (Time s = lo; s <= hi; ++s)
    if (!bm.occupied(s)) out.push_back(s);
  return out;
}

TEST(SlotBitmap, CountFreeOnEmptyWindowIsWindowSize) {
  SlotBitmap bm;
  bm.init(128);
  EXPECT_EQ(bm.count_free(1, 128), 128);
  EXPECT_EQ(bm.count_free(5, 5), 1);
}

TEST(SlotBitmap, CountAndNthMatchNaiveScanAcrossPatterns) {
  // Windows chosen to cross word boundaries and wrap the ring; occupancy
  // patterns from a fixed rng so word-skip and in-word-rank paths both
  // trigger.
  SlotBitmap bm;
  bm.init(200);  // ring rounds up to 256 bits
  core::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    bm.init(200);
    const Time lo = static_cast<Time>(rng.below(400)) + 1;
    const Time hi = lo + static_cast<Time>(rng.below(190));
    for (Time s = lo; s <= hi; ++s)
      if (rng.below(3) == 0) bm.set(s);
    const std::vector<Time> expect = naive_free(bm, lo, hi);
    ASSERT_EQ(bm.count_free(lo, hi), static_cast<Time>(expect.size()))
        << "trial " << trial << " window [" << lo << ", " << hi << "]";
    for (Time k = 0; k < static_cast<Time>(expect.size()); ++k)
      ASSERT_EQ(bm.nth_free(lo, hi, k), expect[static_cast<std::size_t>(k)])
          << "trial " << trial << " k " << k;
    EXPECT_EQ(bm.nth_free(lo, hi, static_cast<Time>(expect.size())), -1);
  }
}

TEST(SlotBitmap, FullWindowHasNoFreeSlots) {
  SlotBitmap bm;
  bm.init(64);
  for (Time s = 10; s <= 40; ++s) bm.set(s);
  EXPECT_EQ(bm.count_free(10, 40), 0);
  EXPECT_EQ(bm.nth_free(10, 40, 0), -1);
}

TEST(SlotBitmap, NthFreeZeroEqualsFirstFree) {
  SlotBitmap bm;
  bm.init(128);
  for (const Time s : {3, 4, 5, 70, 71, 100}) bm.set(s);
  for (const Time lo : {1, 3, 64, 65}) {
    const Time hi = lo + 60;
    EXPECT_EQ(bm.nth_free(lo, hi, 0), bm.first_free(lo, hi)) << lo;
  }
}

TEST(SlotBitmap, LastFreeAgreesWithHighestRank) {
  SlotBitmap bm;
  bm.init(128);
  core::Rng rng(7);
  for (Time s = 1; s <= 120; ++s)
    if (rng.below(2) == 0) bm.set(s);
  const Time lo = 5, hi = 110;
  const Time cnt = bm.count_free(lo, hi);
  ASSERT_GT(cnt, 0);
  EXPECT_EQ(bm.nth_free(lo, hi, cnt - 1), bm.last_free(lo, hi));
}

}  // namespace
}  // namespace bsplogp::logp::detail

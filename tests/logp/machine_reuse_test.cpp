// Machine reuse and the shared-program contract: one Machine's proc arena
// and queues are recycled across run() calls, and the SPMD run(program)
// overload shares a single functor across processors instead of copying it
// per proc. Reruns must be bit-identical (no state leaks between runs) and
// the shared functor must observe exactly nprocs invocations against the
// one captured state.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "src/core/types.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"

namespace bsplogp::logp {
namespace {

bool same_stats(const RunStats& a, const RunStats& b) {
  return a.finish_time == b.finish_time &&
         a.events_processed == b.events_processed &&
         a.messages_submitted == b.messages_submitted &&
         a.messages_acquired == b.messages_acquired &&
         a.deadlock == b.deadlock && a.timed_out == b.timed_out;
}

TEST(MachineReuse, RerunsAreBitIdentical) {
  const ProcId p = 17;
  const auto progs = workload::hotspot(p, 3);
  Machine m(p, Params{16, 1, 2});
  const RunStats first = m.run(std::span<const ProgramFn>(progs));
  for (int round = 0; round < 3; ++round) {
    const RunStats again = m.run(std::span<const ProgramFn>(progs));
    EXPECT_TRUE(same_stats(first, again)) << "round " << round;
  }
}

TEST(MachineReuse, RerunsAreBitIdenticalUnderRandomPolicies) {
  // The Random policies reseed per run; leftover queue or slot state from
  // a previous run would shift the draw sequence and change the results.
  Machine::Options o;
  o.accept_order = AcceptOrder::Random;
  o.delivery = DeliverySchedule::UniformRandom;
  o.seed = 99;
  const ProcId p = 17;
  const auto progs = workload::hotspot(p, 3);
  Machine m(p, Params{16, 1, 2}, o);
  const RunStats first = m.run(std::span<const ProgramFn>(progs));
  const RunStats again = m.run(std::span<const ProgramFn>(progs));
  EXPECT_TRUE(same_stats(first, again));
}

TEST(MachineReuse, SharedProgramMatchesPerProcCopies) {
  // all_to_all-style SPMD program defined inline so both overloads see the
  // exact same logic: everyone sends one message to the next proc, then
  // receives one.
  const ProcId p = 9;
  const ProgramFn ring = [](Proc& me) -> Task<> {
    const ProcId dst = (me.id() + 1) % me.nprocs();
    co_await me.send(dst, static_cast<Word>(me.id()));
    (void)co_await me.recv();
  };
  Machine shared_m(p, Params{8, 1, 2});
  const RunStats shared = shared_m.run(ring);

  const std::vector<ProgramFn> copies(static_cast<std::size_t>(p), ring);
  Machine span_m(p, Params{8, 1, 2});
  const RunStats per_proc = span_m.run(std::span<const ProgramFn>(copies));
  EXPECT_TRUE(same_stats(shared, per_proc));
}

TEST(MachineReuse, SharedProgramIsNotCopiedPerProc) {
  // A shared_ptr captured by the functor counts the live copies: the SPMD
  // overload must add none beyond the caller's own (the old implementation
  // materialized nprocs copies in a vector).
  const ProcId p = 33;
  auto counter = std::make_shared<int>(0);
  long during = 0;
  const ProgramFn prog = [counter, &during](Proc& me) -> Task<> {
    *counter += 1;
    during = counter.use_count();
    if (me.id() != 0) co_await me.send(0, 1);
    co_return;
  };
  Machine m(p, Params{64, 1, 2});
  (void)m.run(prog);
  EXPECT_EQ(*counter, static_cast<int>(p));  // invoked once per proc
  // Copies alive while running: the caller's `counter`, the one inside
  // `prog`, and nothing per processor.
  EXPECT_EQ(during, 2);
}

}  // namespace
}  // namespace bsplogp::logp

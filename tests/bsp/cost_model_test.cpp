// Cost-model tests: the machine must account exactly
// T_superstep = w + g*h + l with w = max local ops and h = max messages
// sent or received by any processor (paper, Relation (1)).
#include <gtest/gtest.h>

#include "src/bsp/machine.h"

namespace bsplogp::bsp {
namespace {

RunStats run_one(ProcId p, Params prm,
                 const std::function<bool(Ctx&)>& fn) {
  auto progs = make_programs(p, fn);
  Machine m(p, prm);
  return m.run(progs);
}

TEST(BspCost, PureComputeSuperstep) {
  const Params prm{3, 17};
  const RunStats st =
      run_one(4, prm, [](Ctx& c) {
        c.charge(c.pid() == 2 ? 100 : 10);  // w is a max, not a sum
        return false;
      });
  ASSERT_EQ(st.trace.size(), 1u);
  EXPECT_EQ(st.trace[0].w, 100);
  EXPECT_EQ(st.trace[0].h, 0);
  EXPECT_EQ(st.finish_time, 100 + 17);
}

TEST(BspCost, EmptySuperstepStillPaysBarrier) {
  const Params prm{5, 23};
  const RunStats st = run_one(3, prm, [](Ctx&) { return false; });
  EXPECT_EQ(st.finish_time, 23);
}

TEST(BspCost, HCountsMaxOfFanInAndFanOut) {
  const Params prm{7, 1};
  // Proc 0 sends one message to each of the other 7: fan-out 7, every
  // receiver gets 1. h must be 7.
  const RunStats st = run_one(8, prm, [](Ctx& c) {
    if (c.superstep() == 0 && c.pid() == 0)
      for (ProcId d = 1; d < 8; ++d) c.send(d, 0);
    return c.superstep() < 1;
  });
  ASSERT_EQ(st.trace.size(), 2u);
  EXPECT_EQ(st.trace[0].h, 7);
  EXPECT_EQ(st.trace[1].h, 0);
}

TEST(BspCost, HCountsFanInToo) {
  const Params prm{2, 1};
  // Everyone sends to proc 0: senders have degree 1, receiver degree 7.
  const RunStats st = run_one(8, prm, [](Ctx& c) {
    if (c.superstep() == 0 && c.pid() != 0) c.send(0, 1);
    return c.superstep() < 1;
  });
  EXPECT_EQ(st.trace[0].h, 7);
}

TEST(BspCost, PermutationIsOneRelation) {
  const Params prm{4, 9};
  const RunStats st = run_one(8, prm, [](Ctx& c) {
    if (c.superstep() == 0) c.send((c.pid() + 3) % 8, 0);
    return c.superstep() < 1;
  });
  EXPECT_EQ(st.trace[0].h, 1);
}

TEST(BspCost, SendChargesOneLocalOp) {
  const Params prm{1, 1};
  const RunStats st = run_one(2, prm, [](Ctx& c) {
    if (c.superstep() == 0 && c.pid() == 0) {
      c.send(1, 0);
      c.send(1, 1);
      c.send(1, 2);
    }
    return c.superstep() < 1;
  });
  // Superstep 0: proc 0 does 3 pool insertions -> w = 3.
  EXPECT_EQ(st.trace[0].w, 3);
  // Superstep 1: proc 1 pays 3 extractions -> w = 3.
  EXPECT_EQ(st.trace[1].w, 3);
}

TEST(BspCost, TotalIsSumOfSupersteps) {
  const Params prm{3, 11};
  const RunStats st = run_one(4, prm, [](Ctx& c) {
    c.charge(5);
    if (c.superstep() < 2) c.send((c.pid() + 1) % 4, 0);
    return c.superstep() < 2;
  });
  ASSERT_EQ(st.trace.size(), 3u);
  Time expect = 0;
  for (const SuperstepCost& sc : st.trace) expect += sc.total(prm);
  EXPECT_EQ(st.finish_time, expect);
  // Steps 0,1: w=5+1(send)+extraction(1 except step 0), h=1.
  EXPECT_EQ(st.trace[0].w, 6);
  EXPECT_EQ(st.trace[0].h, 1);
  EXPECT_EQ(st.trace[1].w, 7);  // 1 extraction + 5 charge + 1 send
  EXPECT_EQ(st.trace[1].h, 1);
  EXPECT_EQ(st.trace[2].w, 6);  // 1 extraction + 5 charge
  EXPECT_EQ(st.trace[2].h, 0);
}

TEST(BspCost, GScalesCommunicationOnly) {
  auto time_with_g = [&](Time g) {
    return run_one(4, Params{g, 1}, [](Ctx& c) {
      if (c.superstep() == 0)
        for (ProcId d = 0; d < 4; ++d)
          if (d != c.pid()) c.send(d, 0);
      return c.superstep() < 1;
    }).finish_time;
  };
  const Time t1 = time_with_g(1);
  const Time t10 = time_with_g(10);
  // h = 3 in superstep 0; raising g from 1 to 10 adds exactly 9*3.
  EXPECT_EQ(t10 - t1, 9 * 3);
}

TEST(BspCost, LChargedPerSuperstep) {
  auto time_with_l = [&](Time l) {
    return run_one(2, Params{1, l},
                   [](Ctx& c) { return c.superstep() < 4; }).finish_time;
  };
  EXPECT_EQ(time_with_l(100) - time_with_l(1), 99 * 5);  // 5 supersteps run
}

}  // namespace
}  // namespace bsplogp::bsp

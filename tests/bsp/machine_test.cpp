// Execution-semantics tests for the BSP machine: superstep structure,
// message pool lifecycle, halting, inbox ordering, run limits.
#include "src/bsp/machine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace bsplogp::bsp {
namespace {

TEST(BspMachine, RingShiftDeliversNextSuperstep) {
  const ProcId p = 8;
  std::vector<Word> got(static_cast<std::size_t>(p), -1);
  auto progs = make_programs(p, [&](Ctx& c) {
    if (c.superstep() == 0) {
      c.send((c.pid() + 1) % c.nprocs(), c.pid());
      return true;
    }
    EXPECT_EQ(c.inbox().size(), 1u);
    got[static_cast<std::size_t>(c.pid())] = c.inbox()[0].payload;
    return false;
  });
  Machine m(p, Params{2, 5});
  const RunStats st = m.run(progs);
  EXPECT_EQ(st.supersteps, 2);
  EXPECT_EQ(st.messages, p);
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)], (i + p - 1) % p);
}

TEST(BspMachine, MessagesOnlyVisibleInNextSuperstepAndThenDiscarded) {
  const ProcId p = 2;
  std::vector<std::vector<std::size_t>> inbox_sizes(2);
  auto progs = make_programs(p, [&](Ctx& c) {
    inbox_sizes[static_cast<std::size_t>(c.pid())].push_back(
        c.inbox().size());
    if (c.superstep() == 0 && c.pid() == 0) c.send(1, 99);
    return c.superstep() < 2;  // run supersteps 0,1,2
  });
  Machine m(p, Params{1, 1});
  m.run(progs);
  // Proc 1 sees nothing in step 0, one message in step 1, nothing in step 2
  // (previous pool contents are discarded, not accumulated).
  EXPECT_EQ(inbox_sizes[1], (std::vector<std::size_t>{0, 1, 0}));
  EXPECT_EQ(inbox_sizes[0], (std::vector<std::size_t>{0, 0, 0}));
}

TEST(BspMachine, SelfSendArrivesNextSuperstep) {
  std::vector<Word> seen;
  auto progs = make_programs(1, [&](Ctx& c) {
    if (c.superstep() == 0) {
      c.send(0, 7);
      return true;
    }
    for (const Message& msg : c.inbox()) seen.push_back(msg.payload);
    return false;
  });
  Machine m(1, Params{1, 1});
  m.run(progs);
  EXPECT_EQ(seen, (std::vector<Word>{7}));
}

TEST(BspMachine, HaltsOnlyWhenAllProcessorsAgree) {
  const ProcId p = 4;
  std::vector<int> steps(static_cast<std::size_t>(p), 0);
  auto progs = make_programs(p, [&](Ctx& c) {
    steps[static_cast<std::size_t>(c.pid())] += 1;
    // Processor i wants to run i+1 supersteps; the machine keeps running
    // until the slowest halts, but a halted processor is never re-stepped.
    return c.superstep() < c.pid();
  });
  Machine m(p, Params{1, 1});
  const RunStats st = m.run(progs);
  EXPECT_EQ(st.supersteps, p);
  for (ProcId i = 0; i < p; ++i)
    EXPECT_EQ(steps[static_cast<std::size_t>(i)], i + 1);
}

TEST(BspMachine, HaltedProcessorCannotResurrect) {
  // Processor 0 halts in superstep 0 but would return true (and emit
  // traffic) on any later step; processor 1 runs three supersteps. The
  // halted program must stay halted: with re-stepping it would resurrect
  // and the machine would never reach the all-halted exit.
  const ProcId p = 2;
  std::vector<int> steps(static_cast<std::size_t>(p), 0);
  std::vector<std::unique_ptr<ProcProgram>> progs;
  progs.push_back(std::make_unique<FnProgram>([&](Ctx& c) {
    steps[0] += 1;
    if (c.superstep() > 0) {
      c.send(1, 99);  // resurrection traffic: must never happen
      return true;
    }
    return false;
  }));
  progs.push_back(std::make_unique<FnProgram>([&](Ctx& c) {
    steps[1] += 1;
    for (const Message& m : c.inbox()) EXPECT_NE(m.payload, 99);
    return c.superstep() < 2;
  }));
  Machine::Options opt;
  opt.max_supersteps = 50;
  Machine m(p, Params{1, 1}, opt);
  const RunStats st = m.run(progs);
  EXPECT_FALSE(st.hit_superstep_limit);
  EXPECT_EQ(st.supersteps, 3);
  EXPECT_EQ(steps[0], 1);
  EXPECT_EQ(steps[1], 3);
  EXPECT_EQ(st.messages, 0);
}

TEST(BspMachine, StaggeredHaltsStepEachProcessorExactlyUntilItsHalt) {
  // Staggered halt times with ongoing traffic: processor i halts after
  // superstep 2*i; messages sent to already-halted processors are still
  // delivered (and charged to h) even though nobody extracts them.
  const ProcId p = 3;
  std::vector<int> steps(static_cast<std::size_t>(p), 0);
  auto progs = make_programs(p, [&](Ctx& c) {
    steps[static_cast<std::size_t>(c.pid())] += 1;
    c.send(static_cast<ProcId>((c.pid() + 1) % c.nprocs()), c.superstep());
    return c.superstep() < 2 * c.pid();
  });
  Machine m(p, Params{1, 1});
  const RunStats st = m.run(progs);
  EXPECT_EQ(st.supersteps, 5);  // proc 2 halts after superstep 4
  EXPECT_EQ(steps[0], 1);
  EXPECT_EQ(steps[1], 3);
  EXPECT_EQ(steps[2], 5);
  EXPECT_EQ(st.messages, 1 + 3 + 5);
}

TEST(BspMachine, SuperstepLimitStopsRunawayPrograms) {
  auto progs = make_programs(2, [](Ctx&) { return true; });
  Machine::Options opt;
  opt.max_supersteps = 10;
  Machine m(2, Params{1, 1}, opt);
  const RunStats st = m.run(progs);
  EXPECT_TRUE(st.hit_superstep_limit);
  EXPECT_EQ(st.supersteps, 10);
}

TEST(BspMachine, SourceOrderInboxIsSortedBySender) {
  const ProcId p = 6;
  std::vector<Word> order;
  auto progs = make_programs(p, [&](Ctx& c) {
    if (c.superstep() == 0) {
      if (c.pid() != 0) c.send(0, c.pid());
      return true;
    }
    if (c.pid() == 0)
      for (const Message& msg : c.inbox()) order.push_back(msg.payload);
    return false;
  });
  Machine m(p, Params{1, 1});
  m.run(progs);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.size(), static_cast<std::size_t>(p - 1));
}

TEST(BspMachine, ShuffledInboxIsDeterministicPerSeed) {
  const ProcId p = 16;
  auto run_once = [&](std::uint64_t seed) {
    std::vector<Word> order;
    auto progs = make_programs(p, [&](Ctx& c) {
      if (c.superstep() == 0) {
        if (c.pid() != 0) c.send(0, c.pid());
        return true;
      }
      if (c.pid() == 0)
        for (const Message& msg : c.inbox()) order.push_back(msg.payload);
      return false;
    });
    Machine::Options opt;
    opt.inbox_order = InboxOrder::Shuffled;
    opt.shuffle_seed = seed;
    Machine m(p, Params{1, 1}, opt);
    m.run(progs);
    return order;
  };
  const auto a = run_once(1), b = run_once(1), c = run_once(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 15! orderings: collision chance is negligible
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  std::vector<Word> expect(15);
  std::iota(expect.begin(), expect.end(), 1);
  EXPECT_EQ(sorted, expect);
}

TEST(BspMachine, ProgramsSeeConsistentSuperstepIndex) {
  std::vector<std::int64_t> indices;
  auto progs = make_programs(1, [&](Ctx& c) {
    indices.push_back(c.superstep());
    return c.superstep() < 3;
  });
  Machine m(1, Params{1, 1});
  m.run(progs);
  EXPECT_EQ(indices, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(BspMachine, ResultsIndependentOfParams) {
  // The defining portability property (Section 2.1): g and l affect cost,
  // never results.
  auto run_with = [&](Params prm) {
    std::vector<Word> sums(4, 0);
    auto progs = make_programs(4, [&](Ctx& c) {
      if (c.superstep() == 0) {
        for (ProcId d = 0; d < c.nprocs(); ++d)
          if (d != c.pid()) c.send(d, c.pid() + 1);
        return true;
      }
      Word s = 0;
      for (const Message& msg : c.inbox()) s += msg.payload;
      sums[static_cast<std::size_t>(c.pid())] = s;
      return false;
    });
    Machine m(4, prm);
    m.run(progs);
    return sums;
  };
  const auto a = run_with(Params{1, 1});
  const auto b = run_with(Params{64, 4096});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], 2 + 3 + 4);
}

}  // namespace
}  // namespace bsplogp::bsp

// The bench reporting harness (bench/harness.h): Cell rendering, Series /
// Reporter JSON that parses back losslessly, json_escape on control
// characters, the strict CLI protocol (unknown flags die with usage, exit
// 2), --list enumeration, and the SweepRunner determinism contract — the
// whole JSON document is byte-identical whether a sweep ran on 1 thread or
// 4.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/rng.h"
#include "src/core/table.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"
#include "tests/support/json.h"

namespace bsplogp::bench {
namespace {

using testsupport::JsonParser;
using testsupport::JsonValue;

/// Owns a fake argv (argv[0] plus the given flags) for Reporter tests.
class Argv {
 public:
  explicit Argv(std::initializer_list<const char*> args) {
    strings_.emplace_back("bench_test");
    for (const char* a : args) strings_.emplace_back(a);
    ptrs_.reserve(strings_.size());
    for (auto& s : strings_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(Cell, DisplayFollowsCoreFmtAndJsonIsLossless) {
  EXPECT_EQ(Cell(static_cast<std::int64_t>(42)).json(), "42");
  EXPECT_EQ(Cell(-7).json(), "-7");
  EXPECT_EQ(Cell("plain").display(), "plain");
  EXPECT_EQ(Cell("a\"b").json(), "\"a\\\"b\"");

  EXPECT_EQ(Cell(static_cast<std::int64_t>(42)).display(),
            core::fmt(std::int64_t{42}));
  EXPECT_EQ(Cell(3.14159, 3).display(), core::fmt(3.14159, 3));

  // JSON reals are full-precision: the parsed value is bit-exact.
  const std::string j = Cell(0.1, 1).json();
  JsonValue v;
  ASSERT_TRUE(JsonParser(j).parse(v));
  ASSERT_EQ(v.type, JsonValue::Type::Number);
  EXPECT_EQ(v.number, 0.1);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("\n\t\r"), "\\n\\t\\r");
  EXPECT_EQ(json_escape(std::string("\x01\x1f")), "\\u0001\\u001f");
  // Escaped control characters must survive a parse round-trip.
  const std::string doc = "{\"k\": \"" + json_escape("\x02 mid \x03") + "\"}";
  JsonValue root;
  EXPECT_TRUE(JsonParser(doc).parse(root));
}

TEST(Series, JsonRoundTripsColumnsAndTypedRows) {
  Series s("my_series", {"p", "ratio", "note"});
  s.row({8, Cell(1.5, 2), "fast"});
  s.row({16, Cell(2.25, 2), "needs \"quoting\""});
  ASSERT_EQ(s.rows(), 2u);

  std::ostringstream os;
  s.write_json(os);
  JsonValue v;
  ASSERT_TRUE(JsonParser(os.str()).parse(v)) << os.str();
  ASSERT_EQ(v.type, JsonValue::Type::Object);
  EXPECT_EQ(v.find("id")->str, "my_series");
  const JsonValue* cols = v.find("columns");
  ASSERT_NE(cols, nullptr);
  ASSERT_EQ(cols->array.size(), 3u);
  EXPECT_EQ(cols->array[2].str, "note");
  const JsonValue* rows = v.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 2u);
  EXPECT_EQ(rows->array[0].array[0].number, 8);
  EXPECT_EQ(rows->array[0].array[1].number, 1.5);
  EXPECT_EQ(rows->array[1].array[2].str, "needs \"quoting\"");
}

TEST(Reporter, DocumentRoundTripsMetricsAndSeries) {
  Argv args({"--smoke", "--jobs", "3"});
  Reporter rep(args.argc(), args.argv(), "unit");
  EXPECT_TRUE(rep.smoke());
  EXPECT_EQ(rep.jobs(), 3);
  EXPECT_FALSE(rep.list());
  EXPECT_EQ(rep.trace_sink(), nullptr);

  rep.metric("count", static_cast<std::int64_t>(5));
  rep.metric("ratio", 2.5);
  Series& s = rep.series("s1", {"a"});
  s.row({1});

  std::ostringstream os;
  rep.write_json(os);
  JsonValue v;
  ASSERT_TRUE(JsonParser(os.str()).parse(v)) << os.str();
  EXPECT_EQ(v.find("bench")->str, "unit");
  EXPECT_TRUE(v.find("smoke")->boolean);
  EXPECT_EQ(v.find("jobs")->number, 3);
  EXPECT_EQ(v.find("metrics")->find("count")->number, 5);
  EXPECT_EQ(v.find("metrics")->find("ratio")->number, 2.5);
  ASSERT_EQ(v.find("series")->array.size(), 1u);
  EXPECT_EQ(v.find("series")->array[0].find("id")->str, "s1");
}

TEST(ReporterDeathTest, UnknownFlagDiesWithUsageAndExitCode2) {
  Argv args({"--frobnicate"});
  EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
              ::testing::ExitedWithCode(2), "unknown flag '--frobnicate'");
}

TEST(ReporterDeathTest, BadJobsValuesDieWithExitCode2) {
  {
    Argv args({"--jobs", "0"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "bad --jobs value");
  }
  {
    Argv args({"--jobs", "many"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "bad --jobs value");
  }
  {
    Argv args({"--jobs"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "--jobs needs a count");
  }
}

TEST(Reporter, ParsesRepeatAndRecordsItInTheDocument) {
  Argv args({"--repeat", "5"});
  Reporter rep(args.argc(), args.argv(), "unit");
  EXPECT_EQ(rep.repeat(), 5);

  std::ostringstream os;
  rep.write_json(os);
  JsonValue v;
  ASSERT_TRUE(JsonParser(os.str()).parse(v)) << os.str();
  EXPECT_EQ(v.find("repeat")->number, 5);

  Argv none({});
  EXPECT_EQ(Reporter(none.argc(), none.argv(), "unit").repeat(), 1);
}

TEST(ReporterDeathTest, BadRepeatValuesDieWithExitCode2) {
  {
    Argv args({"--repeat", "0"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "bad --repeat value");
  }
  {
    Argv args({"--repeat", "1001"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "bad --repeat value");
  }
  {
    Argv args({"--repeat", "twice"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "bad --repeat value");
  }
  {
    Argv args({"--repeat"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "--repeat needs a count");
  }
}

TEST(ReporterDeathTest, UnregisteredWorkloadNameDiesWithExitCode2) {
  Argv args({});
  EXPECT_EXIT(
      {
        Reporter rep(args.argc(), args.argv(), "unit");
        rep.use_workloads({"hotspot", "not-a-family"});
      },
      ::testing::ExitedWithCode(2), "not in workload::registry");
}

TEST(Reporter, ListModeEnumeratesWorkloadsAndSeriesAndRunsNothing) {
  Argv args({"--list"});
  Reporter rep(args.argc(), args.argv(), "unit");
  EXPECT_TRUE(rep.list());
  rep.use_workloads({"hotspot", "all-to-all"});
  rep.series("s1", {"a"});
  rep.series("s2", {"b"});
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(rep.finish(), 0);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("bench_unit"), std::string::npos);
  EXPECT_NE(out.find("hotspot"), std::string::npos);
  EXPECT_NE(out.find("all-to-all"), std::string::npos);
  EXPECT_NE(out.find("s1"), std::string::npos);
  EXPECT_NE(out.find("s2"), std::string::npos);
}

TEST(SweepRunner, MapCommitsResultsByIndex) {
  const SweepRunner runner(4);
  EXPECT_EQ(runner.jobs(), 4);
  const auto out = runner.map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

/// Point result for sweep_document (namespace scope: every map() result
/// type must carry the io() member template the codec needs — the sweep
/// could be farmed — and local classes cannot declare member templates).
struct SweepDocResult {
  Time finish = 0;
  std::int64_t messages = 0;
  std::int64_t stalls = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(finish);
    ar(messages);
    ar(stalls);
  }
};

/// Builds the full JSON document of a model-time sweep (the grid every real
/// bench follows: per-point machine + rng_for_index stream, results
/// committed in grid order) with the given SweepRunner.
std::string sweep_document(const SweepRunner& runner) {
  Argv args({"--smoke"});
  Reporter rep(args.argc(), args.argv(), "determinism");
  Series& s = rep.series("sweep", {"p", "T", "messages", "stalls"});

  struct Point {
    ProcId p;
    int msgs;
  };
  const std::vector<Point> grid{{4, 3}, {5, 6}, {6, 2}, {8, 5},
                                {9, 4}, {12, 3}, {16, 2}};
  using Result = SweepDocResult;
  const auto results = runner.map<Result>(grid.size(), [&](std::size_t i) {
    core::Rng rng = core::rng_for_index(2026, i);
    const std::uint64_t seed = rng();
    logp::Machine m(grid[i].p, logp::Params{12, 1, 3});
    const auto st =
        m.run(workload::random_traffic(grid[i].p, grid[i].msgs, 10, seed));
    return Result{st.finish_time, st.messages, st.stall_events};
  });
  Time total = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    s.row({grid[i].p, results[i].finish, results[i].messages,
           results[i].stalls});
    total += results[i].finish;
  }
  rep.metric("total_model_time", static_cast<std::int64_t>(total));

  std::ostringstream os;
  rep.write_json(os);
  return os.str();
}

TEST(ReporterDeathTest, BadCacheFlagsDieWithExitCode2) {
  {
    Argv args({"--cache", "sometimes"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2),
                "bad --cache value 'sometimes'");
  }
  {
    Argv args({"--cache"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "--cache needs a mode");
  }
  {
    Argv args({"--cache-dir"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "--cache-dir needs a path");
  }
}

TEST(ReporterDeathTest, BadFarmFlagsDieEnumeratingTheValidForms) {
  {
    // A bad --farm value must name every accepted form, not just complain.
    Argv args({"--farm", "zero"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2),
                "want N\\[,timeout=S\\]\\[,respawns=R\\]\\[,grace=S\\] or "
                "listen:PORT");
  }
  {
    Argv args({"--farm", "2,respawns=lots"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "bad respawns 'lots'");
  }
  {
    Argv args({"--farm", "listen:99999"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "bad listen port");
  }
  {
    Argv args({"--farm"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "--farm needs a spec");
  }
  {
    Argv args({"--connect", "no-port-here"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2),
                "want HOST:PORT, port 1..65535");
  }
  {
    // One process cannot be both ends of the farm.
    Argv args({"--farm", "2", "--connect", "localhost:9"});
    EXPECT_EXIT(Reporter(args.argc(), args.argv(), "unit"),
                ::testing::ExitedWithCode(2), "mutually exclusive");
  }
}

TEST(Reporter, JsonCarriesTheCacheBlock) {
  Argv args({"--smoke"});
  Reporter rep(args.argc(), args.argv(), "unit");
  std::ostringstream os;
  rep.write_json(os);
  JsonValue v;
  ASSERT_TRUE(JsonParser(os.str()).parse(v)) << os.str();
  const JsonValue* c = v.find("cache");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->find("mode")->str, "off");  // default
  EXPECT_EQ(c->find("hits")->number, 0);
  EXPECT_EQ(c->find("misses")->number, 0);
  EXPECT_EQ(c->find("stale_evictions")->number, 0);
}

TEST(Reporter, TraceForcesCacheOff) {
  const std::string trace_path =
      ::testing::TempDir() + "/bsplogp_harness_trace_cache.json";
  Argv args({"--trace", trace_path.c_str(), "--cache", "on"});
  ::testing::internal::CaptureStderr();
  Reporter rep(args.argc(), args.argv(), "unit");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--trace forces --cache off"), std::string::npos);
  ASSERT_NE(rep.trace_sink(), nullptr);
  EXPECT_EQ(rep.cache()->mode(), cache::Mode::kOff);
}

/// Point result for the cached-map replay test (namespace scope: local
/// classes cannot carry the io() member template the codec needs).
struct CachedSweepResult {
  Time finish = 0;
  double ratio = 0;

  friend bool operator==(const CachedSweepResult&,
                         const CachedSweepResult&) = default;

  template <class Ar>
  void io(Ar& ar) {
    ar(finish);
    ar(ratio);
  }
};

TEST(SweepRunner, CachedMapReplaysTheColdRunByteExactly) {
  const std::string dir =
      ::testing::TempDir() + "/bsplogp_harness_map_cached";
  std::filesystem::remove_all(dir);
  const std::vector<ProcId> ps{4, 8, 16};
  const auto key_fn = [&](std::size_t i) {
    return cache::PointKey{"p=" + std::to_string(ps[i])};
  };
  std::atomic<int> computed{0};
  const auto compute = [&](std::size_t i) {
    computed.fetch_add(1);
    logp::Machine m(ps[i], logp::Params{12, 1, 3});
    const auto st = m.run(workload::hotspot(ps[i], 2));
    return CachedSweepResult{st.finish_time,
                             static_cast<double>(st.messages) / 3.0};
  };

  const auto sweep = [&](cache::PointCache* pc) {
    return SweepRunner(2, pc).map<CachedSweepResult>(ps.size(), key_fn,
                                                     compute);
  };
  cache::PointCache cold(cache::Mode::kOn, dir, "unit", "hotspot", "b1");
  cache::PointCache warm(cache::Mode::kOn, dir, "unit", "hotspot", "b1");
  const auto first = sweep(&cold);
  EXPECT_EQ(computed.load(), 3);
  const auto second = sweep(&warm);
  EXPECT_EQ(computed.load(), 3);  // warm run computed nothing
  EXPECT_EQ(second, first);
  EXPECT_EQ(warm.stats().hits, 3);
  EXPECT_EQ(warm.stats().misses, 0);

  // A cacheless runner and a disabled cache both take the plain path.
  cache::PointCache off(cache::Mode::kOff, dir, "unit", "hotspot", "b1");
  EXPECT_EQ(sweep(nullptr), first);
  EXPECT_EQ(sweep(&off), first);
  EXPECT_EQ(computed.load(), 9);
  std::filesystem::remove_all(dir);
}

TEST(SweepRunner, DocumentIsByteIdenticalAcrossJobCounts) {
  // The §9 determinism contract, end to end: the same grid swept on 1 and
  // on 4 threads yields byte-identical documents (not merely equal values).
  const std::string serial = sweep_document(SweepRunner(1));
  EXPECT_EQ(sweep_document(SweepRunner(4)), serial);
  EXPECT_EQ(sweep_document(SweepRunner(3)), serial);
  JsonValue v;
  ASSERT_TRUE(JsonParser(serial).parse(v));  // and it is valid JSON
  EXPECT_GT(v.find("metrics")->find("total_model_time")->number, 0);
}

TEST(SweepRunner, RepeatReVerifiesEveryPointWithoutChangingTheDocument) {
  // --repeat 3 evaluates every live point three times, asserts the
  // encodings byte-identical, and must not change a byte of the document
  // relative to a single-evaluation sweep — on any jobs count.
  const std::string baseline = sweep_document(SweepRunner(1));
  EXPECT_EQ(sweep_document(SweepRunner(1, nullptr, nullptr, 3)), baseline);
  EXPECT_EQ(sweep_document(SweepRunner(4, nullptr, nullptr, 3)), baseline);

  std::atomic<int> computed{0};
  const auto out = SweepRunner(2, nullptr, nullptr, 3).map<std::size_t>(
      10, [&](std::size_t i) {
        computed.fetch_add(1);
        return i * 7;
      });
  EXPECT_EQ(computed.load(), 30);  // every point computed repeat times
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 7);
}

TEST(SweepRunner, RepeatSkipsCacheReplaysAndCommitsOneResult) {
  // Replayed points never re-compute (there is nothing to verify against
  // the wire payload), and a repeated live point commits exactly one
  // cache entry.
  const std::string dir = ::testing::TempDir() + "/bsplogp_harness_repeat";
  std::filesystem::remove_all(dir);
  const auto key_fn = [](std::size_t i) {
    return cache::PointKey{"rp=" + std::to_string(i)};
  };
  std::atomic<int> computed{0};
  const auto compute = [&](std::size_t i) {
    computed.fetch_add(1);
    return CachedSweepResult{static_cast<Time>(i * 3), 0.5};
  };
  cache::PointCache cold(cache::Mode::kOn, dir, "unit", "repeat", "b1");
  const auto first = SweepRunner(1, &cold, nullptr, 2)
                         .map<CachedSweepResult>(4, key_fn, compute);
  EXPECT_EQ(computed.load(), 8);  // 4 points x repeat 2
  cache::PointCache warm(cache::Mode::kOn, dir, "unit", "repeat", "b1");
  const auto second = SweepRunner(1, &warm, nullptr, 2)
                          .map<CachedSweepResult>(4, key_fn, compute);
  EXPECT_EQ(computed.load(), 8);  // all replayed, none re-verified
  EXPECT_EQ(second, first);
  EXPECT_EQ(warm.stats().hits, 4);
  std::filesystem::remove_all(dir);
}

TEST(SweepRunnerDeathTest, NondeterministicPointDiesUnderRepeat) {
  // A point whose result differs between evaluations is a determinism bug
  // (wall-clock or global state leaking into a model result); under
  // --repeat it must die loudly, not poison the trajectory.
  EXPECT_DEATH(
      {
        int calls = 0;
        (void)SweepRunner(1, nullptr, nullptr, 2)
            .map<std::size_t>(1, [&](std::size_t) {
              return static_cast<std::size_t>(calls++);
            });
      },
      "nondeterministic across --repeat");
}

}  // namespace
}  // namespace bsplogp::bench

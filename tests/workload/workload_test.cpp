// The workload registry (src/workload): families are registered exactly
// once under unique names, every factory produces p runnable programs, and
// the program semantics the experiments depend on (all-to-all sums, CB
// results, staged-hotspot stall-freeness, h-relation delivery, fuzz-log
// determinism) hold on the native machines.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/algo/reduce_op.h"
#include "src/bsp/machine.h"
#include "src/core/rng.h"
#include "src/logp/machine.h"
#include "src/workload/apps.h"
#include "src/workload/workload.h"

namespace bsplogp::workload {
namespace {

logp::RunStats run_logp(ProcId p, const logp::Params& prm,
                        std::vector<logp::ProgramFn> progs) {
  logp::Machine m(p, prm);
  return m.run(std::move(progs));
}

TEST(WorkloadRegistry, EntriesAreNamedDescribedAndUnique) {
  const auto& reg = registry();
  ASSERT_FALSE(reg.empty());
  std::set<std::string> names;
  for (const Entry& e : reg) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.description.empty()) << e.name;
    EXPECT_TRUE(e.logp != nullptr || e.bsp != nullptr) << e.name;
    EXPECT_TRUE(names.insert(e.name).second)
        << "duplicate registry name " << e.name;
  }
}

TEST(WorkloadRegistry, FindLooksUpByNameOrReturnsNull) {
  const Entry* e = find("hotspot");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->name, "hotspot");
  EXPECT_EQ(find("no-such-family"), nullptr);
  EXPECT_EQ(find(""), nullptr);
}

TEST(WorkloadRegistry, EveryFactoryProducesPRunnablePrograms) {
  // Generic Spec instantiation of every registered family must yield
  // exactly p programs that run to completion on the native machine.
  Spec spec;
  spec.p = 6;
  spec.k = 2;
  spec.rounds = 2;
  spec.seed = 5;
  for (const Entry& e : registry()) {
    if (e.logp) {
      auto progs = e.logp(spec);
      ASSERT_EQ(progs.size(), static_cast<std::size_t>(spec.p)) << e.name;
      const auto st = run_logp(spec.p, logp::Params{16, 1, 4},
                               std::move(progs));
      EXPECT_TRUE(st.completed()) << e.name;
    }
    if (e.bsp) {
      auto progs = e.bsp(spec);
      ASSERT_EQ(progs.size(), static_cast<std::size_t>(spec.p)) << e.name;
      bsp::Machine m(spec.p, bsp::Params{1, 1});
      const auto st = m.run(progs);
      EXPECT_FALSE(st.hit_superstep_limit) << e.name;
    }
  }
}

TEST(Workload, AllToAllSumsAreCorrect) {
  const ProcId p = 4;
  std::vector<Word> sums;
  const auto st = run_logp(p, logp::Params{16, 1, 4}, all_to_all(p, &sums));
  EXPECT_TRUE(st.completed());
  EXPECT_EQ(st.messages, static_cast<Time>(p) * (p - 1));
  ASSERT_EQ(sums.size(), static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i) {
    // Everyone else's (id + 1): sum of 1..p minus my own contribution.
    EXPECT_EQ(sums[static_cast<std::size_t>(i)], 10 - (i + 1)) << i;
  }
}

TEST(Workload, CbRoundsCombinesEveryContribution) {
  const ProcId p = 8;
  std::vector<Word> out;
  const auto st = run_logp(
      p, logp::Params{16, 1, 4},
      cb_rounds(
          p, /*rounds=*/1, algo::ReduceOp::Sum,
          [](ProcId i) { return static_cast<Word>(i) + 1; }, &out));
  EXPECT_TRUE(st.completed());
  ASSERT_EQ(out.size(), static_cast<std::size_t>(p));
  for (const Word v : out) EXPECT_EQ(v, 36);  // sum of 1..8, broadcast
}

TEST(Workload, StagedHotspotIsStallFreeWhereNaiveStalls) {
  const ProcId p = 9;
  const Time k = 2;
  const logp::Params prm{16, 1, 4};  // capacity 4 < p - 1: naive must stall
  const auto naive = run_logp(p, prm, hotspot(p, k, /*staged=*/false));
  const auto staged = run_logp(p, prm, hotspot(p, k, /*staged=*/true));
  EXPECT_TRUE(naive.completed());
  EXPECT_TRUE(staged.completed());
  EXPECT_GT(naive.stall_events, 0);
  EXPECT_EQ(staged.stall_events, 0);
  EXPECT_EQ(naive.messages, static_cast<Time>(p - 1) * k);
  EXPECT_EQ(staged.messages, static_cast<Time>(p - 1) * k);
}

TEST(Workload, RelationStepRoutesExactlyTheRelation) {
  const ProcId p = 5;
  const routing::HRelation rel = all_pairs(p);
  EXPECT_EQ(rel.messages().size(), static_cast<std::size_t>(p) * (p - 1));
  bsp::Machine m(p, bsp::Params{1, 1});
  const auto st = m.run(relation_step(rel));
  EXPECT_FALSE(st.hit_superstep_limit);
  EXPECT_EQ(st.supersteps, 2);  // send, then read-and-halt
  EXPECT_EQ(st.messages, static_cast<Time>(p) * (p - 1));
}

TEST(Workload, FuzzSuperstepsLogsAreAPureFunctionOfTheSeed) {
  const ProcId p = 6;
  const std::int64_t supersteps = 3;
  FuzzLog a, b, c;
  {
    bsp::Machine m(p, bsp::Params{1, 1});
    (void)m.run(fuzz_supersteps(p, supersteps, 42, a));
  }
  {
    bsp::Machine m(p, bsp::Params{1, 1});
    (void)m.run(fuzz_supersteps(p, supersteps, 42, b));
  }
  {
    bsp::Machine m(p, bsp::Params{1, 1});
    (void)m.run(fuzz_supersteps(p, supersteps, 43, c));
  }
  EXPECT_EQ(a.received, b.received);
  EXPECT_NE(a.received, c.received);
}

TEST(Workload, RandomBlocksAreDeterministicAndInRange) {
  const ProcId p = 4;
  const std::size_t n = 32;
  core::Rng rng_a(7), rng_b(7);
  const auto a = random_blocks(p, n, -50, 50, rng_a);
  const auto b = random_blocks(p, n, -50, 50, rng_b);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), static_cast<std::size_t>(p));
  for (const auto& blk : a) {
    ASSERT_EQ(blk.size(), n);
    for (const Word w : blk) {
      EXPECT_GE(w, -50);
      EXPECT_LE(w, 50);
    }
  }
}

TEST(Workload, RingShiftCompletesWithOneMessagePerProcPerRound) {
  const ProcId p = 6;
  const int rounds = 3;
  const auto st = run_logp(p, logp::Params{16, 1, 4}, ring_shift(p, rounds));
  EXPECT_TRUE(st.completed());
  EXPECT_TRUE(st.stall_free());  // balanced 1-relations never stall
  EXPECT_EQ(st.messages, static_cast<Time>(p) * rounds);
}

TEST(WorkloadDomains, DescribeDomainsNamesEveryKnob) {
  const Entry* stencil = find("stencil-2d");
  ASSERT_NE(stencil, nullptr);
  const std::string d = describe_domains(*stencil);
  EXPECT_NE(d.find("p in 1..512"), std::string::npos) << d;
  EXPECT_NE(d.find("nx in 1..4096 (mesh rows)"), std::string::npos) << d;
  EXPECT_NE(d.find("grid_rows in 0..512 (0 = auto near-square)"),
            std::string::npos)
      << d;
  // Families without knob domains describe to the empty string.
  const Entry* a2a = find("all-to-all");
  ASSERT_NE(a2a, nullptr);
  EXPECT_EQ(describe_domains(*a2a), "");
}

TEST(WorkloadDomains, ValidateAcceptsTheDefaultSpecEverywhere) {
  Spec spec;
  spec.p = 6;
  spec.k = 2;
  spec.rounds = 2;
  for (const Entry& e : registry()) {
    std::string error;
    EXPECT_TRUE(validate(e, spec, &error)) << e.name << ": " << error;
  }
}

TEST(WorkloadDomains, ValidateNamesTheFieldTheValueAndTheDomain) {
  const Entry* stencil = find("stencil-2d");
  ASSERT_NE(stencil, nullptr);
  Spec spec;
  spec.p = 6;
  spec.rounds = 99;
  std::string error;
  EXPECT_FALSE(validate(*stencil, spec, &error));
  EXPECT_EQ(error, "bad rounds '99' for stencil-2d (want 1..64, iterations)");
}

TEST(WorkloadDomains, CrossFieldConstraintsReportTheirRule) {
  const Entry* stencil = find("stencil-2d");
  ASSERT_NE(stencil, nullptr);
  Spec spec;
  spec.p = 6;
  spec.grid_rows = 5;  // does not divide 6
  std::string error;
  EXPECT_FALSE(validate(*stencil, spec, &error));
  EXPECT_EQ(error,
            "bad grid_rows '5' for stencil-2d (want a divisor of p=6, "
            "or 0 = auto)");

  const Entry* sort = find("sample-sort");
  ASSERT_NE(sort, nullptr);
  Spec small;
  small.p = 4;
  small.nx = 8;  // needs >= 4*p = 16
  error.clear();
  EXPECT_FALSE(validate(*sort, small, &error));
  EXPECT_EQ(error, "bad nx '8' for sample-sort (want >= 4*p = 16)");
}

TEST(WorkloadDomains, AppFactoriesRefuseOutOfDomainSpecs) {
  Spec spec;
  spec.p = 6;
  spec.grid_rows = 5;
  EXPECT_THROW((void)stencil2d_bsp(spec), std::invalid_argument);
  Spec small;
  small.p = 4;
  small.nx = 8;
  EXPECT_THROW((void)samplesort_logp(small), std::invalid_argument);
  Spec rounds;
  rounds.p = 4;
  rounds.rounds = 1000;
  EXPECT_THROW((void)bsf_bsp(rounds), std::invalid_argument);
}

}  // namespace
}  // namespace bsplogp::workload

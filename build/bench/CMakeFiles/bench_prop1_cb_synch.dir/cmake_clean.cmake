file(REMOVE_RECURSE
  "CMakeFiles/bench_prop1_cb_synch.dir/bench_prop1_cb_synch.cpp.o"
  "CMakeFiles/bench_prop1_cb_synch.dir/bench_prop1_cb_synch.cpp.o.d"
  "bench_prop1_cb_synch"
  "bench_prop1_cb_synch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop1_cb_synch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_prop1_cb_synch.
# This may be replaced when dependencies are built.

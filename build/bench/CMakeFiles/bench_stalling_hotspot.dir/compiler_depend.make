# Empty compiler generated dependencies file for bench_stalling_hotspot.
# This may be replaced when dependencies are built.

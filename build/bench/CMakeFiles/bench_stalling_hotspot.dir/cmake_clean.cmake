file(REMOVE_RECURSE
  "CMakeFiles/bench_stalling_hotspot.dir/bench_stalling_hotspot.cpp.o"
  "CMakeFiles/bench_stalling_hotspot.dir/bench_stalling_hotspot.cpp.o.d"
  "bench_stalling_hotspot"
  "bench_stalling_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stalling_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_thm1_logp_on_bsp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_logp_on_bsp.dir/bench_thm1_logp_on_bsp.cpp.o"
  "CMakeFiles/bench_thm1_logp_on_bsp.dir/bench_thm1_logp_on_bsp.cpp.o.d"
  "bench_thm1_logp_on_bsp"
  "bench_thm1_logp_on_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_logp_on_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_sorting_crossover.dir/bench_sorting_crossover.cpp.o"
  "CMakeFiles/bench_sorting_crossover.dir/bench_sorting_crossover.cpp.o.d"
  "bench_sorting_crossover"
  "bench_sorting_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sorting_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

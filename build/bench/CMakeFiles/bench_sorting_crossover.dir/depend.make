# Empty dependencies file for bench_sorting_crossover.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_bsp_on_logp.dir/bench_thm2_bsp_on_logp.cpp.o"
  "CMakeFiles/bench_thm2_bsp_on_logp.dir/bench_thm2_bsp_on_logp.cpp.o.d"
  "bench_thm2_bsp_on_logp"
  "bench_thm2_bsp_on_logp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_bsp_on_logp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_thm2_bsp_on_logp.
# This may be replaced when dependencies are built.

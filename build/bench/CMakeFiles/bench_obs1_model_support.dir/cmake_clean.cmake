file(REMOVE_RECURSE
  "CMakeFiles/bench_obs1_model_support.dir/bench_obs1_model_support.cpp.o"
  "CMakeFiles/bench_obs1_model_support.dir/bench_obs1_model_support.cpp.o.d"
  "bench_obs1_model_support"
  "bench_obs1_model_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs1_model_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_obs1_model_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_randomized.dir/bench_thm3_randomized.cpp.o"
  "CMakeFiles/bench_thm3_randomized.dir/bench_thm3_randomized.cpp.o.d"
  "bench_thm3_randomized"
  "bench_thm3_randomized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_randomized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

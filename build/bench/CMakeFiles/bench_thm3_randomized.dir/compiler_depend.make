# Empty compiler generated dependencies file for bench_thm3_randomized.
# This may be replaced when dependencies are built.

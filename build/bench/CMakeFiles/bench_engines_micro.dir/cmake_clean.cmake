file(REMOVE_RECURSE
  "CMakeFiles/bench_engines_micro.dir/bench_engines_micro.cpp.o"
  "CMakeFiles/bench_engines_micro.dir/bench_engines_micro.cpp.o.d"
  "bench_engines_micro"
  "bench_engines_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engines_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_stalling_sim_gap.dir/bench_stalling_sim_gap.cpp.o"
  "CMakeFiles/bench_stalling_sim_gap.dir/bench_stalling_sim_gap.cpp.o.d"
  "bench_stalling_sim_gap"
  "bench_stalling_sim_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stalling_sim_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_stalling_sim_gap.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_bsp[1]_include.cmake")
include("/root/repo/build/tests/test_algo[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_xsim[1]_include.cmake")
include("/root/repo/build/tests/test_logp[1]_include.cmake")

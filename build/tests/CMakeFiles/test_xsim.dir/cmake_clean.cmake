file(REMOVE_RECURSE
  "CMakeFiles/test_xsim.dir/xsim/bsp_on_logp_test.cpp.o"
  "CMakeFiles/test_xsim.dir/xsim/bsp_on_logp_test.cpp.o.d"
  "CMakeFiles/test_xsim.dir/xsim/fuzz_equivalence_test.cpp.o"
  "CMakeFiles/test_xsim.dir/xsim/fuzz_equivalence_test.cpp.o.d"
  "CMakeFiles/test_xsim.dir/xsim/logp_on_bsp_test.cpp.o"
  "CMakeFiles/test_xsim.dir/xsim/logp_on_bsp_test.cpp.o.d"
  "CMakeFiles/test_xsim.dir/xsim/offline_routing_test.cpp.o"
  "CMakeFiles/test_xsim.dir/xsim/offline_routing_test.cpp.o.d"
  "CMakeFiles/test_xsim.dir/xsim/randomized_routing_test.cpp.o"
  "CMakeFiles/test_xsim.dir/xsim/randomized_routing_test.cpp.o.d"
  "CMakeFiles/test_xsim.dir/xsim/stalling_sim_test.cpp.o"
  "CMakeFiles/test_xsim.dir/xsim/stalling_sim_test.cpp.o.d"
  "test_xsim"
  "test_xsim.pdb"
  "test_xsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/rng_test.cpp" "tests/CMakeFiles/test_core.dir/core/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/rng_test.cpp.o.d"
  "/root/repo/tests/core/stats_test.cpp" "tests/CMakeFiles/test_core.dir/core/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/stats_test.cpp.o.d"
  "/root/repo/tests/core/table_test.cpp" "tests/CMakeFiles/test_core.dir/core/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/table_test.cpp.o.d"
  "/root/repo/tests/core/types_test.cpp" "tests/CMakeFiles/test_core.dir/core/types_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/types_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsplogp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bsp/CMakeFiles/bsplogp_bsp.dir/DependInfo.cmake"
  "/root/repo/build/src/logp/CMakeFiles/bsplogp_logp.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bsplogp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/bsplogp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/bsplogp_xsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsplogp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

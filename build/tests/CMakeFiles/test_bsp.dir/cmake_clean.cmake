file(REMOVE_RECURSE
  "CMakeFiles/test_bsp.dir/bsp/cost_model_test.cpp.o"
  "CMakeFiles/test_bsp.dir/bsp/cost_model_test.cpp.o.d"
  "CMakeFiles/test_bsp.dir/bsp/machine_test.cpp.o"
  "CMakeFiles/test_bsp.dir/bsp/machine_test.cpp.o.d"
  "test_bsp"
  "test_bsp.pdb"
  "test_bsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

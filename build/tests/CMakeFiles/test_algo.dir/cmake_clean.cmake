file(REMOVE_RECURSE
  "CMakeFiles/test_algo.dir/algo/bsp_algorithms_test.cpp.o"
  "CMakeFiles/test_algo.dir/algo/bsp_algorithms_test.cpp.o.d"
  "CMakeFiles/test_algo.dir/algo/bsp_sorting_test.cpp.o"
  "CMakeFiles/test_algo.dir/algo/bsp_sorting_test.cpp.o.d"
  "CMakeFiles/test_algo.dir/algo/collectives_extra_test.cpp.o"
  "CMakeFiles/test_algo.dir/algo/collectives_extra_test.cpp.o.d"
  "CMakeFiles/test_algo.dir/algo/collectives_test.cpp.o"
  "CMakeFiles/test_algo.dir/algo/collectives_test.cpp.o.d"
  "CMakeFiles/test_algo.dir/algo/mailbox_test.cpp.o"
  "CMakeFiles/test_algo.dir/algo/mailbox_test.cpp.o.d"
  "CMakeFiles/test_algo.dir/algo/order_robustness_test.cpp.o"
  "CMakeFiles/test_algo.dir/algo/order_robustness_test.cpp.o.d"
  "CMakeFiles/test_algo.dir/algo/tree_test.cpp.o"
  "CMakeFiles/test_algo.dir/algo/tree_test.cpp.o.d"
  "test_algo"
  "test_algo.pdb"
  "test_algo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

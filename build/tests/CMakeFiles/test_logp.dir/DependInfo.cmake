
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logp/model_properties_test.cpp" "tests/CMakeFiles/test_logp.dir/logp/model_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_logp.dir/logp/model_properties_test.cpp.o.d"
  "/root/repo/tests/logp/policies_test.cpp" "tests/CMakeFiles/test_logp.dir/logp/policies_test.cpp.o" "gcc" "tests/CMakeFiles/test_logp.dir/logp/policies_test.cpp.o.d"
  "/root/repo/tests/logp/stalling_test.cpp" "tests/CMakeFiles/test_logp.dir/logp/stalling_test.cpp.o" "gcc" "tests/CMakeFiles/test_logp.dir/logp/stalling_test.cpp.o.d"
  "/root/repo/tests/logp/task_test.cpp" "tests/CMakeFiles/test_logp.dir/logp/task_test.cpp.o" "gcc" "tests/CMakeFiles/test_logp.dir/logp/task_test.cpp.o.d"
  "/root/repo/tests/logp/timing_test.cpp" "tests/CMakeFiles/test_logp.dir/logp/timing_test.cpp.o" "gcc" "tests/CMakeFiles/test_logp.dir/logp/timing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsplogp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bsp/CMakeFiles/bsplogp_bsp.dir/DependInfo.cmake"
  "/root/repo/build/src/logp/CMakeFiles/bsplogp_logp.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bsplogp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/bsplogp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/bsplogp_xsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsplogp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

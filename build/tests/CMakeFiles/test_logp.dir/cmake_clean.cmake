file(REMOVE_RECURSE
  "CMakeFiles/test_logp.dir/logp/model_properties_test.cpp.o"
  "CMakeFiles/test_logp.dir/logp/model_properties_test.cpp.o.d"
  "CMakeFiles/test_logp.dir/logp/policies_test.cpp.o"
  "CMakeFiles/test_logp.dir/logp/policies_test.cpp.o.d"
  "CMakeFiles/test_logp.dir/logp/stalling_test.cpp.o"
  "CMakeFiles/test_logp.dir/logp/stalling_test.cpp.o.d"
  "CMakeFiles/test_logp.dir/logp/task_test.cpp.o"
  "CMakeFiles/test_logp.dir/logp/task_test.cpp.o.d"
  "CMakeFiles/test_logp.dir/logp/timing_test.cpp.o"
  "CMakeFiles/test_logp.dir/logp/timing_test.cpp.o.d"
  "test_logp"
  "test_logp.pdb"
  "test_logp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

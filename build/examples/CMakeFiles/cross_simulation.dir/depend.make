# Empty dependencies file for cross_simulation.
# This may be replaced when dependencies are built.

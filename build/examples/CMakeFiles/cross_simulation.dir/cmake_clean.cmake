file(REMOVE_RECURSE
  "CMakeFiles/cross_simulation.dir/cross_simulation.cpp.o"
  "CMakeFiles/cross_simulation.dir/cross_simulation.cpp.o.d"
  "cross_simulation"
  "cross_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/topology_params.dir/topology_params.cpp.o"
  "CMakeFiles/topology_params.dir/topology_params.cpp.o.d"
  "topology_params"
  "topology_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for topology_params.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/topology_params.cpp" "examples/CMakeFiles/topology_params.dir/topology_params.cpp.o" "gcc" "examples/CMakeFiles/topology_params.dir/topology_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsplogp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bsp/CMakeFiles/bsplogp_bsp.dir/DependInfo.cmake"
  "/root/repo/build/src/logp/CMakeFiles/bsplogp_logp.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bsplogp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/bsplogp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/bsplogp_xsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsplogp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/hotspot_stalling.dir/hotspot_stalling.cpp.o"
  "CMakeFiles/hotspot_stalling.dir/hotspot_stalling.cpp.o.d"
  "hotspot_stalling"
  "hotspot_stalling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_stalling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

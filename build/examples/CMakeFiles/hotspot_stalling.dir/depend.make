# Empty dependencies file for hotspot_stalling.
# This may be replaced when dependencies are built.

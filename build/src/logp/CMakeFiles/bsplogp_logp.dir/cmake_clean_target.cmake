file(REMOVE_RECURSE
  "libbsplogp_logp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsplogp_logp.dir/machine.cpp.o"
  "CMakeFiles/bsplogp_logp.dir/machine.cpp.o.d"
  "libbsplogp_logp.a"
  "libbsplogp_logp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsplogp_logp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

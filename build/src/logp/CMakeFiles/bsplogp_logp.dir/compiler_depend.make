# Empty compiler generated dependencies file for bsplogp_logp.
# This may be replaced when dependencies are built.

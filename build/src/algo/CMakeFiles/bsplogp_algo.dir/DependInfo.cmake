
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/bsp_algorithms.cpp" "src/algo/CMakeFiles/bsplogp_algo.dir/bsp_algorithms.cpp.o" "gcc" "src/algo/CMakeFiles/bsplogp_algo.dir/bsp_algorithms.cpp.o.d"
  "/root/repo/src/algo/logp_broadcast_opt.cpp" "src/algo/CMakeFiles/bsplogp_algo.dir/logp_broadcast_opt.cpp.o" "gcc" "src/algo/CMakeFiles/bsplogp_algo.dir/logp_broadcast_opt.cpp.o.d"
  "/root/repo/src/algo/logp_collectives.cpp" "src/algo/CMakeFiles/bsplogp_algo.dir/logp_collectives.cpp.o" "gcc" "src/algo/CMakeFiles/bsplogp_algo.dir/logp_collectives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsplogp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/logp/CMakeFiles/bsplogp_logp.dir/DependInfo.cmake"
  "/root/repo/build/src/bsp/CMakeFiles/bsplogp_bsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bsplogp_algo.dir/bsp_algorithms.cpp.o"
  "CMakeFiles/bsplogp_algo.dir/bsp_algorithms.cpp.o.d"
  "CMakeFiles/bsplogp_algo.dir/logp_broadcast_opt.cpp.o"
  "CMakeFiles/bsplogp_algo.dir/logp_broadcast_opt.cpp.o.d"
  "CMakeFiles/bsplogp_algo.dir/logp_collectives.cpp.o"
  "CMakeFiles/bsplogp_algo.dir/logp_collectives.cpp.o.d"
  "libbsplogp_algo.a"
  "libbsplogp_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsplogp_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

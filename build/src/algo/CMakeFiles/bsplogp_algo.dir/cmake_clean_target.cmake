file(REMOVE_RECURSE
  "libbsplogp_algo.a"
)

# Empty dependencies file for bsplogp_algo.
# This may be replaced when dependencies are built.

# Empty dependencies file for bsplogp_routing.
# This may be replaced when dependencies are built.

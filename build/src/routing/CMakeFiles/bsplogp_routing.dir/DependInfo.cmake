
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bitonic.cpp" "src/routing/CMakeFiles/bsplogp_routing.dir/bitonic.cpp.o" "gcc" "src/routing/CMakeFiles/bsplogp_routing.dir/bitonic.cpp.o.d"
  "/root/repo/src/routing/columnsort.cpp" "src/routing/CMakeFiles/bsplogp_routing.dir/columnsort.cpp.o" "gcc" "src/routing/CMakeFiles/bsplogp_routing.dir/columnsort.cpp.o.d"
  "/root/repo/src/routing/decompose.cpp" "src/routing/CMakeFiles/bsplogp_routing.dir/decompose.cpp.o" "gcc" "src/routing/CMakeFiles/bsplogp_routing.dir/decompose.cpp.o.d"
  "/root/repo/src/routing/h_relation.cpp" "src/routing/CMakeFiles/bsplogp_routing.dir/h_relation.cpp.o" "gcc" "src/routing/CMakeFiles/bsplogp_routing.dir/h_relation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsplogp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libbsplogp_routing.a"
)

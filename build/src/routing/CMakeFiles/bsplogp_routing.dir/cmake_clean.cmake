file(REMOVE_RECURSE
  "CMakeFiles/bsplogp_routing.dir/bitonic.cpp.o"
  "CMakeFiles/bsplogp_routing.dir/bitonic.cpp.o.d"
  "CMakeFiles/bsplogp_routing.dir/columnsort.cpp.o"
  "CMakeFiles/bsplogp_routing.dir/columnsort.cpp.o.d"
  "CMakeFiles/bsplogp_routing.dir/decompose.cpp.o"
  "CMakeFiles/bsplogp_routing.dir/decompose.cpp.o.d"
  "CMakeFiles/bsplogp_routing.dir/h_relation.cpp.o"
  "CMakeFiles/bsplogp_routing.dir/h_relation.cpp.o.d"
  "libbsplogp_routing.a"
  "libbsplogp_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsplogp_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

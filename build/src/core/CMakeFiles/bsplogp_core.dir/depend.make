# Empty dependencies file for bsplogp_core.
# This may be replaced when dependencies are built.

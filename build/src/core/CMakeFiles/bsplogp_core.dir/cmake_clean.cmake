file(REMOVE_RECURSE
  "CMakeFiles/bsplogp_core.dir/rng.cpp.o"
  "CMakeFiles/bsplogp_core.dir/rng.cpp.o.d"
  "CMakeFiles/bsplogp_core.dir/stats.cpp.o"
  "CMakeFiles/bsplogp_core.dir/stats.cpp.o.d"
  "CMakeFiles/bsplogp_core.dir/table.cpp.o"
  "CMakeFiles/bsplogp_core.dir/table.cpp.o.d"
  "libbsplogp_core.a"
  "libbsplogp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsplogp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

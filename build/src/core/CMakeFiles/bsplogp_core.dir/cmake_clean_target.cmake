file(REMOVE_RECURSE
  "libbsplogp_core.a"
)

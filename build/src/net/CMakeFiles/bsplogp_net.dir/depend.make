# Empty dependencies file for bsplogp_net.
# This may be replaced when dependencies are built.

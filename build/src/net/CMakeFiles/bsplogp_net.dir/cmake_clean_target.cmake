file(REMOVE_RECURSE
  "libbsplogp_net.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsplogp_net.dir/packet_sim.cpp.o"
  "CMakeFiles/bsplogp_net.dir/packet_sim.cpp.o.d"
  "CMakeFiles/bsplogp_net.dir/topology.cpp.o"
  "CMakeFiles/bsplogp_net.dir/topology.cpp.o.d"
  "libbsplogp_net.a"
  "libbsplogp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsplogp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bsplogp_xsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbsplogp_xsim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsplogp_xsim.dir/bsp_on_logp.cpp.o"
  "CMakeFiles/bsplogp_xsim.dir/bsp_on_logp.cpp.o.d"
  "CMakeFiles/bsplogp_xsim.dir/logp_on_bsp.cpp.o"
  "CMakeFiles/bsplogp_xsim.dir/logp_on_bsp.cpp.o.d"
  "CMakeFiles/bsplogp_xsim.dir/offline_routing.cpp.o"
  "CMakeFiles/bsplogp_xsim.dir/offline_routing.cpp.o.d"
  "CMakeFiles/bsplogp_xsim.dir/randomized_routing.cpp.o"
  "CMakeFiles/bsplogp_xsim.dir/randomized_routing.cpp.o.d"
  "libbsplogp_xsim.a"
  "libbsplogp_xsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsplogp_xsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bsplogp_bsp.
# This may be replaced when dependencies are built.

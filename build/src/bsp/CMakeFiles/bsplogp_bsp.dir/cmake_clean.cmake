file(REMOVE_RECURSE
  "CMakeFiles/bsplogp_bsp.dir/machine.cpp.o"
  "CMakeFiles/bsplogp_bsp.dir/machine.cpp.o.d"
  "libbsplogp_bsp.a"
  "libbsplogp_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsplogp_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbsplogp_bsp.a"
)

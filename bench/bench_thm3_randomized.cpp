// E4 (Theorem 3): with the degree h known in advance and capacity
// ceil(L/G) = Omega(log p), the randomized batch protocol routes an
// h-relation without stalling in <= beta*G*h time, with failure
// probability polynomially small in p.
//
// We sweep h and the capacity/log p ratio, run many seeds per point, and
// report the clean-run fraction (no stall, no cleanup leftovers) plus the
// completion time normalized by G*h.
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "src/core/rng.h"
#include "src/core/stats.h"
#include "src/xsim/randomized_routing.h"

using namespace bsplogp;

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "thm3_randomized");
  const int seeds = rep.smoke() ? 3 : 20;
  std::cout << "E4 / Theorem 3: randomized routing of known-degree "
               "h-relations\noversample = 2 (R = 2h/cap rounds); "
            << seeds << " seeds per point\n\n";
  const ProcId p = 32;
  struct Regime {
    logp::Params prm;
    const char* label;
  };
  // log2(32) = 5: capacities below/at/above the theorem's threshold.
  const Regime regimes[] = {
      {{8, 1, 2}, "cap=4  (< log p)"},
      {{16, 1, 2}, "cap=8  (~ 1.6 log p)"},
      {{64, 1, 2}, "cap=32 (~ 6 log p)"},
  };
  core::Rng rng(9);

  auto& table = rep.series(
      "clean_runs", {"regime", "h", "clean", "stalls(avg)", "leftover(avg)",
                     "time/Gh (avg)", "bound/Gh"});
  const std::vector<Time> hs = rep.smoke() ? std::vector<Time>{8}
                                           : std::vector<Time>{8, 32, 128};
  for (const auto& [prm, label] : regimes) {
    for (const Time h : hs) {
      int clean = 0;
      double stalls = 0, leftover = 0;
      std::vector<double> norm;
      for (int t = 0; t < seeds; ++t) {
        const auto rel = routing::random_regular(p, h, rng);
        xsim::RandomizedRoutingOptions opt;
        opt.oversample = 2.0;
        opt.seed = 1000 + static_cast<std::uint64_t>(t);
        const auto rp = route_randomized(rel, prm, opt);
        clean += rp.clean();
        stalls += static_cast<double>(rp.logp.stall_events);
        leftover += static_cast<double>(rp.leftover);
        norm.push_back(static_cast<double>(rp.protocol_time()) /
                       static_cast<double>(prm.G * h));
      }
      const double bound =
          static_cast<double>(
              xsim::RandomizedRoutingReport::bound(prm, h, 2.0)) /
          static_cast<double>(prm.G * h);
      table.row({label, h,
                 std::to_string(clean) + "/" + std::to_string(seeds),
                 bench::Cell(stalls / seeds, 1),
                 bench::Cell(leftover / seeds, 1),
                 bench::Cell(core::mean(norm), 2), bench::Cell(bound, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: clean-run fraction rises toward 1 as "
               "capacity/log p grows (the\ntheorem's hypothesis); "
               "normalized time stays below the 4(1+delta) bound, i.e.\n"
               "completion is Theta(Gh) — asymptotically optimal "
               "bandwidth.\n";
  return rep.finish();
}

// E4 (Theorem 3): with the degree h known in advance and capacity
// ceil(L/G) = Omega(log p), the randomized batch protocol routes an
// h-relation without stalling in <= beta*G*h time, with failure
// probability polynomially small in p.
//
// We sweep h and the capacity/log p ratio, run many seeds per point, and
// report the clean-run fraction (no stall, no cleanup leftovers) plus the
// completion time normalized by G*h.
#include <cmath>
#include <iostream>

#include "src/core/rng.h"
#include "src/core/stats.h"
#include "src/core/table.h"
#include "src/xsim/randomized_routing.h"

using namespace bsplogp;

int main() {
  std::cout << "E4 / Theorem 3: randomized routing of known-degree "
               "h-relations\n"
               "oversample = 2 (R = 2h/cap rounds); 20 seeds per point\n\n";
  const ProcId p = 32;
  const int seeds = 20;
  struct Regime {
    logp::Params prm;
    const char* label;
  };
  // log2(32) = 5: capacities below/at/above the theorem's threshold.
  const Regime regimes[] = {
      {{8, 1, 2}, "cap=4  (< log p)"},
      {{16, 1, 2}, "cap=8  (~ 1.6 log p)"},
      {{64, 1, 2}, "cap=32 (~ 6 log p)"},
  };
  core::Rng rng(9);

  core::Table table({"regime", "h", "clean", "stalls(avg)", "leftover(avg)",
                     "time/Gh (avg)", "bound/Gh"});
  for (const auto& [prm, label] : regimes) {
    for (const Time h : {8, 32, 128}) {
      int clean = 0;
      double stalls = 0, leftover = 0;
      std::vector<double> norm;
      for (int t = 0; t < seeds; ++t) {
        const auto rel = routing::random_regular(p, h, rng);
        xsim::RandomizedRoutingOptions opt;
        opt.oversample = 2.0;
        opt.seed = 1000 + static_cast<std::uint64_t>(t);
        const auto rep = route_randomized(rel, prm, opt);
        clean += rep.clean();
        stalls += static_cast<double>(rep.logp.stall_events);
        leftover += static_cast<double>(rep.leftover);
        norm.push_back(static_cast<double>(rep.protocol_time()) /
                       static_cast<double>(prm.G * h));
      }
      const double bound =
          static_cast<double>(
              xsim::RandomizedRoutingReport::bound(prm, h, 2.0)) /
          static_cast<double>(prm.G * h);
      table.add_row({label, core::fmt(h),
                     std::to_string(clean) + "/" + std::to_string(seeds),
                     core::fmt(stalls / seeds, 1),
                     core::fmt(leftover / seeds, 1),
                     core::fmt(core::mean(norm), 2), core::fmt(bound, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: clean-run fraction rises toward 1 as "
               "capacity/log p grows (the\ntheorem's hypothesis); "
               "normalized time stays below the 4(1+delta) bound, i.e.\n"
               "completion is Theta(Gh) — asymptotically optimal "
               "bandwidth.\n";
  return 0;
}

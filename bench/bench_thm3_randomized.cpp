// E4 (Theorem 3): with the degree h known in advance and capacity
// ceil(L/G) = Omega(log p), the randomized batch protocol routes an
// h-relation without stalling in <= beta*G*h time, with failure
// probability polynomially small in p.
//
// We sweep h and the capacity/log p ratio, run many seeds per point, and
// report the clean-run fraction (no stall, no cleanup leftovers) plus the
// completion time normalized by G*h.
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "src/core/rng.h"
#include "src/core/stats.h"
#include "src/xsim/randomized_routing.h"

using namespace bsplogp;

namespace {

struct Regime {
  logp::Params prm;
  const char* label;
};

struct Point {
  const Regime* regime;
  Time h;
};

struct PointResult {
  int clean = 0;
  double stalls = 0;
  double leftover = 0;
  double mean_norm = 0;
  double bound = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(clean);
    ar(stalls);
    ar(leftover);
    ar(mean_norm);
    ar(bound);
  }
};

PointResult run_point(const Point& pt, ProcId p, int seeds,
                      std::uint64_t base_seed, std::size_t index) {
  const auto& [prm, label] = *pt.regime;
  core::Rng rng = core::rng_for_index(base_seed, index);
  PointResult r;
  std::vector<double> norm;
  for (int t = 0; t < seeds; ++t) {
    const auto rel = routing::random_regular(p, pt.h, rng);
    xsim::RandomizedRoutingOptions opt;
    opt.oversample = 2.0;
    opt.seed = 1000 + static_cast<std::uint64_t>(t);
    const auto rp = route_randomized(rel, prm, opt);
    r.clean += rp.clean();
    r.stalls += static_cast<double>(rp.logp.stall_events);
    r.leftover += static_cast<double>(rp.leftover);
    norm.push_back(static_cast<double>(rp.protocol_time()) /
                   static_cast<double>(prm.G * pt.h));
  }
  r.stalls /= seeds;
  r.leftover /= seeds;
  r.mean_norm = core::mean(norm);
  r.bound = static_cast<double>(
                xsim::RandomizedRoutingReport::bound(prm, pt.h, 2.0)) /
            static_cast<double>(prm.G * pt.h);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "thm3_randomized");
  rep.use_workloads({"h-relation-step"});
  const int seeds = rep.smoke() ? 3 : 20;
  auto& table = rep.series(
      "clean_runs", {"regime", "h", "clean", "stalls(avg)", "leftover(avg)",
                     "time/Gh (avg)", "bound/Gh"});
  if (rep.list()) return rep.finish();

  std::cout << "E4 / Theorem 3: randomized routing of known-degree "
               "h-relations\noversample = 2 (R = 2h/cap rounds); "
            << seeds << " seeds per point\n\n";
  const ProcId p = 32;
  // log2(32) = 5: capacities below/at/above the theorem's threshold.
  const Regime regimes[] = {
      {{8, 1, 2}, "cap=4  (< log p)"},
      {{16, 1, 2}, "cap=8  (~ 1.6 log p)"},
      {{64, 1, 2}, "cap=32 (~ 6 log p)"},
  };
  const std::vector<Time> hs = rep.smoke() ? std::vector<Time>{8}
                                           : std::vector<Time>{8, 32, 128};
  std::vector<Point> grid;
  for (const auto& regime : regimes)
    for (const Time h : hs) grid.push_back(Point{&regime, h});

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      grid.size(),
      [&](std::size_t i) {
        const auto& prm = grid[i].regime->prm;
        // seeds (the per-point repetition count) and the grid index both
        // shape the drawn relations, so both are part of the key.
        return cache::PointKey{
            "L=" + std::to_string(prm.L) + ";o=" + std::to_string(prm.o) +
                ";G=" + std::to_string(prm.G) + ";h=" +
                std::to_string(grid[i].h) + ";p=" + std::to_string(p) +
                ";seeds=" + std::to_string(seeds) + ";i=" + std::to_string(i),
            9};
      },
      [&](std::size_t i) { return run_point(grid[i], p, seeds, 9, i); });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PointResult& r = results[i];
    table.row({grid[i].regime->label, grid[i].h,
               std::to_string(r.clean) + "/" + std::to_string(seeds),
               bench::Cell(r.stalls, 1), bench::Cell(r.leftover, 1),
               bench::Cell(r.mean_norm, 2), bench::Cell(r.bound, 2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: clean-run fraction rises toward 1 as "
               "capacity/log p grows (the\ntheorem's hypothesis); "
               "normalized time stays below the 4(1+delta) bound, i.e.\n"
               "completion is Theta(Gh) — asymptotically optimal "
               "bandwidth.\n";
  return rep.finish();
}

// Wall-clock throughput of the simulators themselves (google-benchmark).
// The experiment harnesses report model time; this binary tells you how
// fast the engines chew through model events, so you can size sweeps.
#include <benchmark/benchmark.h>

#include "src/bsp/machine.h"
#include "src/core/rng.h"
#include "src/logp/machine.h"
#include "src/net/packet_sim.h"
#include "src/routing/bitonic.h"
#include "src/routing/decompose.h"
#include "src/workload/workload.h"

using namespace bsplogp;

namespace {

void BM_BspAllToAllSuperstep(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  auto progs = workload::relation_step(workload::all_pairs(p));
  bsp::Machine machine(p, bsp::Params{2, 8});
  std::int64_t messages = 0;
  for (auto _ : state) {
    const auto st = machine.run(progs);
    messages += st.messages;
    benchmark::DoNotOptimize(st.finish_time);
  }
  state.SetItemsProcessed(messages);
}
BENCHMARK(BM_BspAllToAllSuperstep)->Arg(16)->Arg(64)->Arg(256);

void BM_LogpAllToAll(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  const logp::Params prm{16, 1, 2};
  logp::Machine machine(p, prm);
  const auto progs = workload::all_to_all(p);
  std::int64_t messages = 0;
  for (auto _ : state) {
    const auto st = machine.run(progs);
    messages += st.messages;
    benchmark::DoNotOptimize(st.finish_time);
  }
  state.SetItemsProcessed(messages);
}
BENCHMARK(BM_LogpAllToAll)->Arg(16)->Arg(64)->Arg(128);

void BM_LogpCombineBroadcast(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  const logp::Params prm{16, 1, 2};
  logp::Machine machine(p, prm);
  const auto progs = workload::cb_rounds(p, 1);
  for (auto _ : state) {
    const auto st = machine.run(progs);
    benchmark::DoNotOptimize(st.finish_time);
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_LogpCombineBroadcast)->Arg(64)->Arg(512)->Arg(2048);

void BM_PacketSimPermutation(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  const net::PacketSim sim(
      net::make_topology(net::TopologyKind::Mesh2D, p));
  core::Rng rng(7);
  const auto rel = routing::random_regular(sim.topology().nprocs(), 8, rng);
  std::int64_t hops = 0;
  for (auto _ : state) {
    const auto res = sim.route(rel, {});
    hops += res.total_hops;
  }
  state.SetItemsProcessed(hops);
}
BENCHMARK(BM_PacketSimPermutation)->Arg(64)->Arg(256);

void BM_BitonicSortBlocks(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  core::Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
    for (auto& b : blocks)
      for (int j = 0; j < 16; ++j) b.push_back(rng.uniform(0, 1 << 20));
    state.ResumeTiming();
    routing::bitonic_sort_blocks(blocks);
    benchmark::DoNotOptimize(blocks);
  }
  state.SetItemsProcessed(state.iterations() * p * 16);
}
BENCHMARK(BM_BitonicSortBlocks)->Arg(64)->Arg(256);

void BM_EdgeColoringDecomposition(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  core::Rng rng(13);
  const auto rel = routing::random_regular(p, 16, rng);
  for (auto _ : state) {
    auto layers = routing::decompose_into_1_relations(rel);
    benchmark::DoNotOptimize(layers);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rel.size()));
}
BENCHMARK(BM_EdgeColoringDecomposition)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

// Ablation of the synchronization primitive's design choices (DESIGN.md):
//
//  (a) tree arity — the paper picks max{2, ceil(L/G)}. Narrower trees add
//      depth; wider trees exceed the capacity constraint and stall. We
//      sweep the arity and report time + stalls.
//  (b) CB structure — the paper's d-ary tree vs. the Karp-et-al greedy
//      schedule pair (reduce_opt + broadcast_opt).
//  (c) delivery-policy sensitivity — the adversarial Latest schedule vs.
//      Earliest vs. seeded-random, for the canonical CB.
#include <iostream>

#include "bench/harness.h"
#include "src/algo/logp_broadcast_opt.h"
#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"
#include "src/bsp/machine.h"
#include "src/core/rng.h"
#include "src/core/table.h"
#include "src/logp/machine.h"
#include "src/routing/h_relation.h"
#include "src/xsim/bsp_on_logp.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

struct Run {
  Time time = 0;
  std::int64_t stalls = 0;
};

Run run_cb_arity(ProcId p, const logp::Params& prm, ProcId arity,
                 logp::Machine::Options opt = {}) {
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([i, arity](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      (void)co_await algo::combine_broadcast_arity(mb, i, algo::ReduceOp::Max,
                                                   arity);
    });
  logp::Machine m(p, prm, opt);
  const auto st = m.run(progs);
  return Run{st.finish_time, st.stall_events};
}

Run run_greedy_pair(ProcId p, const logp::Params& prm) {
  const algo::BroadcastSchedule sched =
      algo::optimal_broadcast_schedule(p, prm);
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([i, &sched](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      const Word total =
          co_await algo::reduce_opt(mb, i, algo::ReduceOp::Max, sched);
      (void)co_await algo::broadcast_opt(mb, total, sched);
    });
  logp::Machine m(p, prm);
  const auto st = m.run(progs);
  return Run{st.finish_time, st.stall_events};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "ablation_cb");
  std::cout << "Ablation: Combine-and-Broadcast design choices\n\n";
  const ProcId big_p = rep.smoke() ? 32 : 256;

  {
    std::cout << "(a) tree arity sweep, p=" << big_p
              << " (paper's choice: max{2, ceil(L/G)})\n";
    auto& table = rep.series(
        "arity_sweep", {"L", "G", "cap", "arity", "T_CB", "stalls", "note"});
    const std::vector<ProcId> arities =
        rep.smoke() ? std::vector<ProcId>{2, 4, 8}
                    : std::vector<ProcId>{2, 4, 8, 16, 32};
    for (const auto& prm : {logp::Params{16, 1, 2}, logp::Params{8, 1, 4}}) {
      const Time cap = prm.capacity();
      for (const ProcId arity : arities) {
        const Run r = run_cb_arity(big_p, prm, arity);
        std::string note;
        if (arity == std::max<Time>(2, cap)) note = "<- paper's choice";
        else if (arity > cap) note = "(beyond capacity)";
        table.row({prm.L, prm.G, cap, static_cast<std::int64_t>(arity),
                   r.time, r.stalls, note});
      }
    }
    table.print(std::cout);
    std::cout << "Reading: widening up to the capacity threshold shrinks "
                 "depth for free; beyond it\nthe ascend phase stalls and "
                 "gains flatten or reverse — max{2,ceil(L/G)} is the "
                 "knee.\n\n";
  }

  {
    std::cout << "(b) d-ary tree CB vs greedy reduce+broadcast pair\n";
    auto& table =
        rep.series("tree_vs_greedy",
                   {"p", "L", "G", "tree CB", "greedy pair", "ratio"});
    const logp::Params prm{10, 2, 3};
    const std::vector<ProcId> ps =
        rep.smoke() ? std::vector<ProcId>{16, 64}
                    : std::vector<ProcId>{16, 64, 256, 1024};
    for (const ProcId p : ps) {
      const Run tree = run_cb_arity(p, prm, algo::cb_arity(prm));
      const Run greedy = run_greedy_pair(p, prm);
      table.row({p, prm.L, prm.G, tree.time, greedy.time,
                 bench::Cell(static_cast<double>(greedy.time) /
                                 static_cast<double>(tree.time),
                             2)});
    }
    table.print(std::cout);
    std::cout << "Reading: both are Theta(L log p / log(1+cap)); the "
                 "greedy pair's constants win\nwhen capacity is small "
                 "(deep pipelining), the simple tree is competitive "
                 "otherwise.\n\n";
  }

  {
    std::cout << "(c) delivery-policy sensitivity of CB, p=" << big_p
              << "\n";
    auto& table = rep.series("delivery_policy", {"policy", "T_CB"});
    const logp::Params prm{16, 1, 2};
    for (const auto& [policy, label] :
         {std::pair{logp::DeliverySchedule::Latest, "Latest (adversarial)"},
          {logp::DeliverySchedule::Earliest, "Earliest"},
          {logp::DeliverySchedule::UniformRandom, "UniformRandom"}}) {
      logp::Machine::Options opt;
      opt.delivery = policy;
      opt.seed = 3;
      const Run r = run_cb_arity(big_p, prm, algo::cb_arity(prm), opt);
      table.row({label, r.time});
    }
    table.print(std::cout);
    std::cout << "Reading: the spread bounds how much of T_CB is the "
                 "adversarial latency choice\n(at most ~L per level) — "
                 "the asymptotic shape is policy-independent.\n\n";
  }

  {
    std::cout << "(d) Theorem 2's routing cycles: globally clocked vs "
                 "free-running\n";
    const logp::Params prm{16, 1, 2};  // capacity 8
    auto& table = rep.series("clocked_cycles",
                             {"p", "workload", "mode", "T_LogP", "stalls"});
    core::Rng rng(71);
    const std::vector<ProcId> ps =
        rep.smoke() ? std::vector<ProcId>{8} : std::vector<ProcId>{8, 16};
    for (const ProcId p : ps) {
      struct Workload {
        routing::HRelation rel;
        std::string label;
      };
      const Workload workloads[] = {
          {routing::random_regular(p, 32, rng), "regular h=32"},
          {routing::hotspot(p, 0, 8), "fan-in 8(p-1)"},
      };
      for (const auto& [rel, label] : workloads) {
        auto messages =
            std::make_shared<std::vector<std::vector<Message>>>(
                static_cast<std::size_t>(p));
        for (const Message& m : rel.messages())
          (*messages)[static_cast<std::size_t>(m.src)].push_back(m);
        auto make = [&] {
          return bsp::make_programs(p, [messages](bsp::Ctx& c) {
            if (c.superstep() == 0) {
              for (const Message& m :
                   (*messages)[static_cast<std::size_t>(c.pid())])
                c.send(m.dst, m.payload, m.tag);
              return true;
            }
            return false;
          });
        };
        for (const bool clocked : {true, false}) {
          auto progs = make();
          xsim::BspOnLogpOptions opt;
          opt.clocked_cycles = clocked;
          xsim::BspOnLogp sim(p, prm, opt);
          const auto rp = sim.run(progs);
          table.row({p, label, clocked ? "clocked" : "free-running",
                     rp.logp.finish_time, rp.logp.stall_events});
        }
      }
    }
    table.print(std::cout);
    std::cout << "Reading: free-running transmission lets destinations "
                 "collide and stall; the\nglobal G-spaced cycle clock "
                 "(the paper's rank-mod-h decomposition) is what makes\n"
                 "Theorem 2's protocol stall-free, at little or no cost "
                 "in completion time.\n\n";
  }

  {
    std::cout << "(e) Theorem 1's cycle length: L/2 vs shorter and longer "
                 "cycles\n";
    // The proof of Theorem 1 needs: a stall-free program submits at most
    // ceil(L/G) messages per destination per cycle, which holds for cycles
    // of L/2 steps but not for longer ones (up to 2*ceil(L/G) fit in L
    // steps) — while shorter cycles just pay more barriers.
    const ProcId p = 16;
    const logp::Params prm{16, 1, 2};  // capacity 8
    auto& table = rep.series("cycle_length",
                             {"cycle", "supersteps", "T_BSP",
                              "per-cycle cap ok", "max fan-in"});
    auto make = [&] {
      std::vector<logp::ProgramFn> progs;
      for (ProcId i = 0; i < p; ++i)
        progs.emplace_back([p](logp::Proc& pr) -> logp::Task<> {
          for (ProcId d = 1; d < p; ++d)
            co_await pr.send(static_cast<ProcId>((pr.id() + d) % p), d);
          for (ProcId k = 1; k < p; ++k) (void)co_await pr.recv();
        });
      return progs;
    };
    for (const Time cycle : {prm.L / 4, prm.L / 2, prm.L, 2 * prm.L}) {
      xsim::LogpOnBspOptions opt;
      opt.bsp = bsp::Params{prm.G, prm.L};
      opt.cycle_length = cycle;
      xsim::LogpOnBsp sim(p, prm, opt);
      const auto rp = sim.run(make());
      std::string label = core::fmt(cycle);
      if (cycle == prm.L / 2) label += " (= L/2, paper)";
      table.row({label, rp.bsp.supersteps, rp.bsp.finish_time,
                 rp.capacity_ok ? "yes" : "NO", rp.max_cycle_fan_in});
    }
    table.print(std::cout);
    std::cout << "Reading: short cycles multiply the barrier cost; cycles "
                 "longer than L/2 let a\nstall-free program exceed "
                 "ceil(L/G) submissions per destination per cycle\n"
                 "('cap ok' = NO), voiding the delivery-schedule argument "
                 "behind Theorem 1 —\nL/2 is the largest safe cycle.\n";
  }
  return rep.finish();
}

// Ablation of the synchronization primitive's design choices (DESIGN.md):
//
//  (a) tree arity — the paper picks max{2, ceil(L/G)}. Narrower trees add
//      depth; wider trees exceed the capacity constraint and stall. We
//      sweep the arity and report time + stalls.
//  (b) CB structure — the paper's d-ary tree vs. the Karp-et-al greedy
//      schedule pair (reduce_opt + broadcast_opt).
//  (c) delivery-policy sensitivity — the adversarial Latest schedule vs.
//      Earliest vs. seeded-random, for the canonical CB.
#include <iostream>

#include "bench/harness.h"
#include "src/algo/logp_collectives.h"
#include "src/core/rng.h"
#include "src/core/table.h"
#include "src/logp/machine.h"
#include "src/routing/h_relation.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

struct Run {
  Time time = 0;
  std::int64_t stalls = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(time);
    ar(stalls);
  }
};

Run run_logp(ProcId p, const logp::Params& prm,
             std::vector<logp::ProgramFn> progs,
             logp::Machine::Options opt = {}) {
  logp::Machine m(p, prm, opt);
  const auto st = m.run(std::move(progs));
  return Run{st.finish_time, st.stall_events};
}

// Cacheable section results (file scope: local classes cannot carry the
// io() member template the cache codec needs).

/// Section (b): the d-ary tree CB next to the greedy schedule pair.
struct Pair {
  Run tree;
  Run greedy;

  template <class Ar>
  void io(Ar& ar) {
    ar(tree);
    ar(greedy);
  }
};

/// Section (d): the same relation routed clocked and free-running.
struct ModeRuns {
  Run clocked;
  Run free_running;

  template <class Ar>
  void io(Ar& ar) {
    ar(clocked);
    ar(free_running);
  }
};

/// Section (e): one cycle-length choice under Theorem 1's simulation.
struct CycleRun {
  std::int64_t supersteps = 0;
  Time finish = 0;
  bool capacity_ok = false;
  Time max_fan_in = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(supersteps);
    ar(finish);
    ar(capacity_ok);
    ar(max_fan_in);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "ablation_cb");
  rep.use_workloads(
      {"cb-arity", "cb-greedy-pair", "h-relation-step", "all-to-all"});
  const ProcId big_p = rep.smoke() ? 32 : 256;
  const bench::SweepRunner runner(rep);

  auto& arity_table = rep.series(
      "arity_sweep", {"L", "G", "cap", "arity", "T_CB", "stalls", "note"});
  auto& greedy_table = rep.series(
      "tree_vs_greedy", {"p", "L", "G", "tree CB", "greedy pair", "ratio"});
  auto& policy_table = rep.series("delivery_policy", {"policy", "T_CB"});
  auto& clocked_table = rep.series(
      "clocked_cycles", {"p", "workload", "mode", "T_LogP", "stalls"});
  auto& cycle_table = rep.series(
      "cycle_length",
      {"cycle", "supersteps", "T_BSP", "per-cycle cap ok", "max fan-in"});
  if (rep.list()) return rep.finish();

  std::cout << "Ablation: Combine-and-Broadcast design choices\n\n";

  {
    std::cout << "(a) tree arity sweep, p=" << big_p
              << " (paper's choice: max{2, ceil(L/G)})\n";
    const std::vector<ProcId> arities =
        rep.smoke() ? std::vector<ProcId>{2, 4, 8}
                    : std::vector<ProcId>{2, 4, 8, 16, 32};
    struct Point {
      logp::Params prm;
      ProcId arity;
    };
    std::vector<Point> grid;
    for (const auto& prm : {logp::Params{16, 1, 2}, logp::Params{8, 1, 4}})
      for (const ProcId arity : arities) grid.push_back(Point{prm, arity});
    const auto runs = runner.map<Run>(
        grid.size(),
        [&](std::size_t i) {
          return cache::PointKey{
              "sec=arity;L=" + std::to_string(grid[i].prm.L) + ";o=" +
              std::to_string(grid[i].prm.o) + ";G=" +
              std::to_string(grid[i].prm.G) + ";arity=" +
              std::to_string(grid[i].arity) + ";p=" + std::to_string(big_p)};
        },
        [&](std::size_t i) {
          return run_logp(big_p, grid[i].prm,
                          workload::cb_arity(big_p, grid[i].arity));
        });
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& [prm, arity] = grid[i];
      const Time cap = prm.capacity();
      std::string note;
      if (arity == std::max<Time>(2, cap)) note = "<- paper's choice";
      else if (arity > cap) note = "(beyond capacity)";
      arity_table.row({prm.L, prm.G, cap, static_cast<std::int64_t>(arity),
                       runs[i].time, runs[i].stalls, note});
    }
    arity_table.print(std::cout);
    std::cout << "Reading: widening up to the capacity threshold shrinks "
                 "depth for free; beyond it\nthe ascend phase stalls and "
                 "gains flatten or reverse — max{2,ceil(L/G)} is the "
                 "knee.\n\n";
  }

  {
    std::cout << "(b) d-ary tree CB vs greedy reduce+broadcast pair\n";
    const logp::Params prm{10, 2, 3};
    const std::vector<ProcId> ps =
        rep.smoke() ? std::vector<ProcId>{16, 64}
                    : std::vector<ProcId>{16, 64, 256, 1024};
    const auto runs = runner.map<Pair>(
        ps.size(),
        [&](std::size_t i) {
          return cache::PointKey{"sec=greedy;p=" + std::to_string(ps[i]) +
                                 ";L=" + std::to_string(prm.L) + ";o=" +
                                 std::to_string(prm.o) + ";G=" +
                                 std::to_string(prm.G)};
        },
        [&](std::size_t i) {
          const ProcId p = ps[i];
          return Pair{
              run_logp(p, prm, workload::cb_arity(p, algo::cb_arity(prm))),
              run_logp(p, prm, workload::cb_greedy_pair(p, prm))};
        });
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const auto& [tree, greedy] = runs[i];
      greedy_table.row({ps[i], prm.L, prm.G, tree.time, greedy.time,
                        bench::Cell(static_cast<double>(greedy.time) /
                                        static_cast<double>(tree.time),
                                    2)});
    }
    greedy_table.print(std::cout);
    std::cout << "Reading: both are Theta(L log p / log(1+cap)); the "
                 "greedy pair's constants win\nwhen capacity is small "
                 "(deep pipelining), the simple tree is competitive "
                 "otherwise.\n\n";
  }

  {
    std::cout << "(c) delivery-policy sensitivity of CB, p=" << big_p
              << "\n";
    const logp::Params prm{16, 1, 2};
    const std::vector<std::pair<logp::DeliverySchedule, const char*>>
        policies{{logp::DeliverySchedule::Latest, "Latest (adversarial)"},
                 {logp::DeliverySchedule::Earliest, "Earliest"},
                 {logp::DeliverySchedule::UniformRandom, "UniformRandom"}};
    const auto runs = runner.map<Run>(
        policies.size(),
        [&](std::size_t i) {
          return cache::PointKey{"sec=policy;policy=" +
                                     std::string(policies[i].second) + ";p=" +
                                     std::to_string(big_p) + ";L=" +
                                     std::to_string(prm.L) + ";o=" +
                                     std::to_string(prm.o) + ";G=" +
                                     std::to_string(prm.G),
                                 3};
        },
        [&](std::size_t i) {
          logp::Machine::Options opt;
          opt.delivery = policies[i].first;
          opt.seed = 3;
          return run_logp(big_p, prm,
                          workload::cb_arity(big_p, algo::cb_arity(prm)),
                          opt);
        });
    for (std::size_t i = 0; i < policies.size(); ++i)
      policy_table.row({policies[i].second, runs[i].time});
    policy_table.print(std::cout);
    std::cout << "Reading: the spread bounds how much of T_CB is the "
                 "adversarial latency choice\n(at most ~L per level) — "
                 "the asymptotic shape is policy-independent.\n\n";
  }

  {
    std::cout << "(d) Theorem 2's routing cycles: globally clocked vs "
                 "free-running\n";
    const logp::Params prm{16, 1, 2};  // capacity 8
    const std::vector<ProcId> ps =
        rep.smoke() ? std::vector<ProcId>{8} : std::vector<ProcId>{8, 16};
    struct Point {
      ProcId p;
      bool regular;  // random h=32 relation vs hot-spot fan-in
    };
    std::vector<Point> grid;
    for (const ProcId p : ps)
      for (const bool regular : {true, false})
        grid.push_back(Point{p, regular});
    const auto runs = runner.map<ModeRuns>(
        grid.size(),
        [&](std::size_t i) {
          return cache::PointKey{"sec=clocked;p=" +
                                     std::to_string(grid[i].p) + ";regular=" +
                                     (grid[i].regular ? "1" : "0") + ";i=" +
                                     std::to_string(i) + ";L=" +
                                     std::to_string(prm.L) + ";o=" +
                                     std::to_string(prm.o) + ";G=" +
                                     std::to_string(prm.G),
                                 71};
        },
        [&](std::size_t i) {
      const Point& pt = grid[i];
      // Both modes must route the SAME relation, so the point draws it
      // once from its own stream and runs each mode on a fresh program.
      core::Rng rng = core::rng_for_index(71, i);
      const routing::HRelation rel =
          pt.regular ? routing::random_regular(pt.p, 32, rng)
                     : routing::hotspot(pt.p, 0, 8);
      ModeRuns mr;
      for (const bool clocked : {true, false}) {
        auto progs = workload::relation_step(rel);
        xsim::BspOnLogpOptions opt;
        opt.clocked_cycles = clocked;
        xsim::BspOnLogp sim(pt.p, prm, opt);
        const auto rp = sim.run(progs);
        (clocked ? mr.clocked : mr.free_running) =
            Run{rp.logp.finish_time, rp.logp.stall_events};
      }
      return mr;
    });
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const Point& pt = grid[i];
      const char* label = pt.regular ? "regular h=32" : "fan-in 8(p-1)";
      clocked_table.row({pt.p, label, "clocked", runs[i].clocked.time,
                         runs[i].clocked.stalls});
      clocked_table.row({pt.p, label, "free-running",
                         runs[i].free_running.time,
                         runs[i].free_running.stalls});
    }
    clocked_table.print(std::cout);
    std::cout << "Reading: free-running transmission lets destinations "
                 "collide and stall; the\nglobal G-spaced cycle clock "
                 "(the paper's rank-mod-h decomposition) is what makes\n"
                 "Theorem 2's protocol stall-free, at little or no cost "
                 "in completion time.\n\n";
  }

  {
    std::cout << "(e) Theorem 1's cycle length: L/2 vs shorter and longer "
                 "cycles\n";
    // The proof of Theorem 1 needs: a stall-free program submits at most
    // ceil(L/G) messages per destination per cycle, which holds for cycles
    // of L/2 steps but not for longer ones (up to 2*ceil(L/G) fit in L
    // steps) — while shorter cycles just pay more barriers.
    const ProcId p = 16;
    const logp::Params prm{16, 1, 2};  // capacity 8
    const std::vector<Time> cycles{prm.L / 4, prm.L / 2, prm.L, 2 * prm.L};
    const auto runs = runner.map<CycleRun>(
        cycles.size(),
        [&](std::size_t i) {
          return cache::PointKey{"sec=cycle;cycle=" +
                                 std::to_string(cycles[i]) + ";p=" +
                                 std::to_string(p) + ";L=" +
                                 std::to_string(prm.L) + ";o=" +
                                 std::to_string(prm.o) + ";G=" +
                                 std::to_string(prm.G)};
        },
        [&](std::size_t i) {
          xsim::LogpOnBspOptions opt;
          opt.bsp = bsp::Params{prm.G, prm.L};
          opt.cycle_length = cycles[i];
          xsim::LogpOnBsp sim(p, prm, opt);
          const auto rp = sim.run(workload::all_to_all(p));
          return CycleRun{rp.bsp.supersteps, rp.bsp.finish_time,
                          rp.capacity_ok, rp.max_cycle_fan_in};
        });
    for (std::size_t i = 0; i < cycles.size(); ++i) {
      std::string label = core::fmt(cycles[i]);
      if (cycles[i] == prm.L / 2) label += " (= L/2, paper)";
      cycle_table.row({label, runs[i].supersteps, runs[i].finish,
                       runs[i].capacity_ok ? "yes" : "NO",
                       runs[i].max_fan_in});
    }
    cycle_table.print(std::cout);
    std::cout << "Reading: short cycles multiply the barrier cost; cycles "
                 "longer than L/2 let a\nstall-free program exceed "
                 "ceil(L/G) submissions per destination per cycle\n"
                 "('cap ok' = NO), voiding the delivery-schedule argument "
                 "behind Theorem 1 —\nL/2 is the largest safe cycle.\n";
  }
  return rep.finish();
}

// Benchmark reporting harness: every bench_*.cpp routes its results
// through a Reporter so each experiment emits BOTH the human-readable
// aligned table it always printed AND, with `--json <path>`, a
// machine-readable JSON document for the BENCH_*.json perf trajectory.
//
// Protocol (documented in DESIGN.md §"Benchmark harness" and §9):
//   bench_foo                  # tables on stdout, as before
//   bench_foo --json out.json  # tables on stdout + JSON written to out.json
//   bench_foo --smoke          # tiny sweep: CI smoke label (ctest -L bench_smoke)
//   bench_foo --trace t.json   # Chrome trace-event JSON of the traced runs
//                              # (open in Perfetto / chrome://tracing)
//   bench_foo --jobs N         # run sweep grid points on N threads; output
//                              # is byte-identical for every N
//   bench_foo --repeat N       # run every measurement N times: sweep grid
//                              # points re-verify byte-identical results,
//                              # wall-clock loops report the median; output
//                              # is byte-identical for every N
//   bench_foo --cache on       # content-addressed sweep cache: unchanged
//                              # grid points replay from disk (DESIGN.md
//                              # §10); `readonly` reads but never writes,
//                              # `off` (default) computes everything live
//   bench_foo --cache-dir D    # cache directory (default .bsplogp-cache/)
//   bench_foo --list           # list workload families + series, run nothing
//   bench_foo --deep           # nightly grids: a strict superset of the
//                              # full grid (benches that support it)
//   bench_foo --farm SPEC      # become a sweep-server (DESIGN.md §13):
//                              # SPEC = N[,timeout=S][,respawns=R][,grace=S]
//                              # spawns N localhost workers, or
//                              # listen:PORT[,workers=N][,timeout=S][,grace=S]
//                              # for multi-host; stdout/JSON stay
//                              # byte-identical to a single-host run
//   bench_foo --connect H:P    # become a sweep-worker for the server at
//                              # host H port P (same build, same flags)
// Unknown flags are an error (usage on stderr, exit 2), and every bad
// flag VALUE enumerates the accepted forms in its complaint: a typo must
// not silently run the wrong experiment. `--trace` forces the cache off:
// a replayed point constructs no machine, so it would emit no events.
//
// JSON shape:
//   { "bench": "<name>", "smoke": false, "jobs": 1,
//     "cache": { "mode": "off", "hits": 0, "misses": 0,
//                "stale_evictions": 0 },
//     "metrics": { "<key>": <number>, ... },
//     "series": [ { "id": "<id>", "columns": [...],
//                   "rows": [[cell, ...], ...] }, ... ] }
// The document is byte-identical between a cold and a warm run except for
// the self-describing "cache" counters (cmake/cache_replay.cmake
// normalizes exactly that block before demanding byte equality); stdout
// is byte-identical unconditionally.
// Cells are numbers (integral results exact, reals full-precision) or
// strings; the table rendering applies core::fmt with the per-cell
// precision instead.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/point_cache.h"
#include "src/cache/point_codec.h"
#include "src/core/parallel.h"
#include "src/farm/dispatcher.h"
#include "src/farm/spec.h"
#include "src/trace/chrome_sink.h"
#include "src/workload/workload.h"

namespace bsplogp::farm {
class FarmServerDispatcher;
}  // namespace bsplogp::farm

namespace bsplogp::bench {

/// One table/series cell: an exact integer, a real with a display
/// precision, or a string label.
class Cell {
 public:
  Cell(std::int64_t v) : kind_(Kind::Int), int_(v) {}  // NOLINT(runtime/explicit)
  Cell(int v) : Cell(static_cast<std::int64_t>(v)) {}  // NOLINT
  Cell(double v, int precision = 2)                    // NOLINT
      : kind_(Kind::Real), real_(v), precision_(precision) {}
  Cell(std::string v) : kind_(Kind::Str), str_(std::move(v)) {}  // NOLINT
  Cell(const char* v) : Cell(std::string(v)) {}                  // NOLINT

  /// Rendering for the human table (core::fmt formatting rules).
  [[nodiscard]] std::string display() const;
  /// Rendering for JSON (numbers full-precision, strings escaped+quoted).
  [[nodiscard]] std::string json() const;

 private:
  enum class Kind { Int, Real, Str };
  Kind kind_;
  std::int64_t int_ = 0;
  double real_ = 0;
  int precision_ = 2;
  std::string str_;
};

/// A named result series: typed rows under fixed column names. Prints as a
/// core::Table; serializes losslessly into the JSON document.
class Series {
 public:
  Series(std::string id, std::vector<std::string> columns);

  void row(std::vector<Cell> cells);
  /// Renders the aligned table (same output as the pre-harness benches).
  void print(std::ostream& os) const;

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  void write_json(std::ostream& os) const;

 private:
  std::string id_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Per-binary harness: parses the CLI protocol above, collects series and
/// scalar metrics, and writes the JSON document (and the Chrome trace, if
/// requested) in finish().
class Reporter {
 public:
  Reporter(int argc, char** argv, std::string bench_name);

  /// CI smoke mode: benches shrink their sweeps to one tiny configuration.
  [[nodiscard]] bool smoke() const { return smoke_; }

  /// Worker threads for sweep grids (--jobs N, default 1). Consumed by
  /// SweepRunner; a bench whose output must be byte-identical across job
  /// counts must never branch on this value.
  [[nodiscard]] int jobs() const { return jobs_; }

  /// Repetitions per measurement (--repeat N, default 1). Two consumers:
  /// SweepRunner re-computes every live grid point N times and aborts
  /// unless the PointCodec encodings are byte-identical (model results
  /// must be a pure function of the grid point — repeats prove it, and
  /// therefore never change output); wall-clock benches run each timing
  /// loop N times and report the median, so BENCH_*.json trajectory
  /// numbers stop jittering on loaded runners.
  [[nodiscard]] int repeat() const { return repeat_; }

  /// --list mode: the bench declares its workloads and series, runs
  /// nothing, and finish() prints the enumeration instead of results.
  [[nodiscard]] bool list() const { return list_; }

  /// --deep mode: nightly grids. A bench that supports it must extend its
  /// full grid to a strict superset — never replace points — so a warm
  /// cache from the regular run replays inside the deep run.
  [[nodiscard]] bool deep() const { return deep_; }

  /// Declares which registered workload families this bench sweeps.
  /// Each name is validated against workload::registry() — a typo or a
  /// renamed family dies loudly here instead of silently drifting from
  /// the registry. Shown by --list (with each family's accepted Spec
  /// parameter domains).
  void use_workloads(std::vector<std::string> names);

  /// Validates `spec` against the named family's declared parameter
  /// domains; on violation prints the domain-naming complaint (the same
  /// farm-spec error style the flag parser uses) and exits 2. Benches
  /// call this on every grid Spec before instantiating it, so an
  /// out-of-domain sweep dies loudly instead of aborting mid-run.
  static workload::Spec checked_spec(const std::string& family,
                                     workload::Spec spec);

  /// The sweep-result cache for this run (never null; mode kOff when
  /// `--cache on|readonly` was not given, or when `--trace` is active —
  /// traced runs always execute live). Created lazily so use_workloads()
  /// declarations land in the cache key's workload spec; call it only
  /// after declaring workloads (SweepRunner's Reporter constructor does).
  [[nodiscard]] cache::PointCache* cache() const;

  /// The persistent worker pool for --jobs > 1 sweeps (null at --jobs 1).
  /// Spawned once on first use and shared by every SweepRunner built from
  /// this Reporter, so a bench with many grids pays thread start-up once,
  /// not once per map() — on tiny grids the transient pool's spawn cost
  /// was a measurable slice of the whole sweep.
  [[nodiscard]] core::ThreadPool* pool() const;

  /// The sweep dispatch backend for this run (never null): a
  /// farm::LocalDispatcher normally, the sweep-server coordinator under
  /// --farm, the sweep-worker under --connect. Created lazily on first
  /// use and shared by every SweepRunner built from this Reporter — which
  /// is what keeps a multi-sweep bench's farm connection (and its sweep
  /// sequence numbers) alive across map() calls.
  [[nodiscard]] farm::Dispatcher* dispatcher() const;

  /// Null unless `--trace <path>` was given; otherwise a ChromeTraceSink
  /// the bench plugs into machine Options. Every traced run becomes one
  /// Perfetto "process" (pid = run index). Benches pass this unchecked:
  /// the null case is exactly the sinks' zero-overhead production path,
  /// which is what the timing loops must measure. ChromeTraceSink is not
  /// thread-safe: traced runs stay on the calling thread, outside
  /// SweepRunner grids.
  [[nodiscard]] trace::TraceSink* trace_sink() const { return trace_.get(); }

  /// Starts (and owns) a new series; the reference stays valid for the
  /// Reporter's lifetime.
  Series& series(std::string id, std::vector<std::string> columns);

  /// Records a scalar summary metric (events/sec, slowdown ratio, ...).
  void metric(const std::string& key, double value);
  void metric(const std::string& key, std::int64_t value);

  /// Emits one whole diagnostic line to stderr, serialized process-wide.
  /// Sweep points run on pool workers under --jobs > 1; a worker warning
  /// interleaved with the main thread's end-of-run cache summary must
  /// never tear mid-line, so every stderr writer inside or after a sweep
  /// goes through here (finish() does for its own summaries).
  static void diag(const std::string& line);

  /// Writes the JSON document (the --json payload) to `os`.
  void write_json(std::ostream& os) const;

  /// Writes the JSON file if --json was given; in --list mode prints the
  /// workload/series enumeration instead. Returns 0 on success (use as
  /// `return rep.finish();` from main).
  int finish();

 private:
  std::string name_;
  std::string json_path_;
  std::string trace_path_;
  std::unique_ptr<trace::ChromeTraceSink> trace_;
  bool smoke_ = false;
  bool list_ = false;
  bool deep_ = false;
  int jobs_ = 1;
  int repeat_ = 1;
  cache::Mode cache_mode_ = cache::Mode::kOff;
  std::string cache_dir_ = ".bsplogp-cache";
  farm::Spec farm_;  // role kNone unless --farm / --connect was given
  std::vector<std::string> worker_argv_;  // spawn template (see ctor)
  mutable std::unique_ptr<cache::PointCache> cache_;  // lazy, see cache()
  mutable std::unique_ptr<core::ThreadPool> pool_;    // lazy, see pool()
  mutable std::unique_ptr<farm::Dispatcher> dispatcher_;  // lazy
  mutable farm::FarmServerDispatcher* server_ = nullptr;  // stats view
  std::vector<std::string> workloads_;
  std::deque<Series> series_;  // deque: stable references across growth
  std::vector<std::pair<std::string, std::string>> metrics_;  // key -> json
};

/// Deterministic parallel sweep driver. map() evaluates one function per
/// grid point and returns the results indexed by grid point; the caller
/// then walks the vector in grid order on its own thread to emit
/// rows/metrics. Because every point's result is a pure function of its
/// index (model-time simulation + rng_for_index streams) and emission is
/// serial and ordered, the bench output is byte-identical for every
/// --jobs value (DESIGN.md §9), every cache state (§10), and every farm
/// backend (§13).
///
/// PR 8 collapsed the old map/map_cached pair into one map() with an
/// optional key-fn: map(n, fn) always computes live; map(n, key_fn, fn)
/// replays points whose key is already in the cache and commits the
/// rest. Either form compiles its grid down to a type-erased
/// farm::GridView and hands it to the Reporter's Dispatcher — the local
/// thread pool, the sweep-server, or a sweep-worker — which is how every
/// bench gained `--farm` with no per-bench code. The cost of the
/// generality is a codec requirement: R must be arithmetic or provide
/// the io() member cache::PointCodec requires, because any sweep might
/// now travel the wire.
class SweepRunner {
 public:
  explicit SweepRunner(const Reporter& rep)
      : jobs_(rep.jobs()), repeat_(rep.repeat()), cache_(rep.cache()),
        local_(rep.jobs(), rep.pool()), dispatcher_(rep.dispatcher()) {}
  /// Backend-free form (tests, bench_engine's timed micro-sweeps): a
  /// plain local dispatch over `jobs`, no farm. Allocation-free — the
  /// LocalDispatcher is a value member, so constructing a SweepRunner in
  /// a timing loop costs what it did before the farm existed.
  explicit SweepRunner(int jobs, cache::PointCache* cache = nullptr,
                       core::ThreadPool* pool = nullptr, int repeat = 1)
      : jobs_(jobs), repeat_(repeat), cache_(cache), local_(jobs, pool),
        dispatcher_(&local_) {}

  SweepRunner(const SweepRunner& other)
      : jobs_(other.jobs_), repeat_(other.repeat_), cache_(other.cache_),
        local_(other.local_),
        dispatcher_(other.dispatcher_ == &other.local_ ? &local_
                                                       : other.dispatcher_) {}
  SweepRunner& operator=(const SweepRunner&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Keyless sweep: every point computes live (no cache even when one is
  /// enabled — there is no key to look up).
  template <typename R, typename F>
  [[nodiscard]] std::vector<R> map(std::size_t n, const F& fn) const {
    const auto no_key = [](std::size_t) { return cache::PointKey{}; };
    return run_grid<R>(n, false, no_key, fn);
  }

  /// Cached sweep. key_fn(i) must be a pure function of the grid
  /// definition (never of prior results); fn(i) runs only on cache
  /// misses.
  template <typename R, typename K, typename F>
  [[nodiscard]] std::vector<R> map(std::size_t n, const K& key_fn,
                                   const F& fn) const {
    const bool cached = cache_ != nullptr && cache_->enabled();
    return run_grid<R>(n, cached, key_fn, fn);
  }

 private:
  /// Compiles the typed sweep into a farm::GridView over `out` and runs
  /// the backend. The closures reference locals; the view dies with this
  /// frame, which satisfies GridView's only-during-run() lifetime rule.
  template <typename R, typename K, typename F>
  [[nodiscard]] std::vector<R> run_grid(std::size_t n, bool cached,
                                        const K& key_fn, const F& fn) const {
    std::vector<R> out(n);
    // Live compute, under --repeat N re-evaluated N times with the
    // PointCodec encodings demanded byte-identical: a sweep point must be
    // a pure function of its grid index, so repeats can only confirm the
    // result, never change it — which is what keeps output byte-identical
    // at every --repeat value. A divergence is a determinism bug
    // (wall-clock leaking into a model result, a stray global rng) and
    // dies loudly instead of poisoning the trajectory.
    const auto compute_checked = [&](std::size_t i) {
      R first = fn(i);
      for (int r = 1; r < repeat_; ++r) {
        const R again = fn(i);
        if (cache::PointCodec::encode(again) !=
            cache::PointCodec::encode(first)) {
          Reporter::diag("sweep: grid point " + std::to_string(i) +
                         " is nondeterministic across --repeat runs");
          std::abort();
        }
      }
      return first;
    };
    farm::GridView grid;
    grid.n = n;
    // Range compute: one std::function call per chunk; the per-point
    // calls inside are direct and inlinable. Results commit by index, so
    // output is byte-identical for every jobs value and chunk size
    // (jobs_determinism.cmake forces pathological chunks to prove it).
    grid.compute_range = [&, cached](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (cached) {
          const cache::PointKey key = key_fn(i);
          if (cache_->try_get(key, &out[i])) continue;
          out[i] = compute_checked(i);
          cache_->put(key, out[i]);
        } else {
          out[i] = compute_checked(i);
        }
      }
    };
    grid.replay = [&, cached](std::size_t i) {
      return cached && cache_->try_get(key_fn(i), &out[i]);
    };
    grid.reencode = [&](std::size_t i) {
      return cache::PointCodec::encode(out[i]);
    };
    grid.install = [&](std::size_t i, const std::string& payload) {
      return cache::PointCodec::decode(payload, &out[i]);
    };
    grid.accept = [&, cached](std::size_t i, const std::string& payload) {
      if (!cache::PointCodec::decode(payload, &out[i])) return false;
      if (cached) cache_->put(key_fn(i), out[i]);
      return true;
    };
    dispatcher_->run(grid);
    return out;
  }

  int jobs_;
  int repeat_ = 1;
  cache::PointCache* cache_ = nullptr;
  farm::LocalDispatcher local_;
  farm::Dispatcher* dispatcher_;
};

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace bsplogp::bench

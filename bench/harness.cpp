#include "bench/harness.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>

#include "src/core/contracts.h"
#include "src/core/table.h"
#include "src/workload/workload.h"

namespace bsplogp::bench {

namespace {

std::string real_to_json(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void usage_and_exit(const std::string& name,
                                 const std::string& complaint) {
  std::cerr << "bench_" << name << ": " << complaint << "\n"
            << "usage: bench_" << name
            << " [--smoke] [--jobs N] [--json <path>] [--trace <path>]"
               " [--cache on|off|readonly] [--cache-dir <dir>] [--list]\n"
            << "  --smoke        tiny CI sweep (ctest -L bench_smoke)\n"
            << "  --jobs N       run sweep grid points on N threads;"
               " output is identical for every N\n"
            << "  --json <path>  also write the machine-readable document\n"
            << "  --trace <path> Chrome trace-event JSON of the traced runs"
               " (forces --cache off)\n"
            << "  --cache M      sweep-result cache: on (replay unchanged"
               " grid points from disk\n"
               "                 and commit new ones), readonly (replay"
               " only), off (default)\n"
            << "  --cache-dir D  cache directory (default .bsplogp-cache/)\n"
            << "  --list         list workload families and series, run"
               " nothing\n";
  std::exit(2);
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- Cell -------------------------------------------------------------------

std::string Cell::display() const {
  switch (kind_) {
    case Kind::Int: return core::fmt(int_);
    case Kind::Real: return core::fmt(real_, precision_);
    case Kind::Str: return str_;
  }
  return {};
}

std::string Cell::json() const {
  switch (kind_) {
    case Kind::Int: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64, int_);
      return buf;
    }
    case Kind::Real: return real_to_json(real_);
    case Kind::Str: return "\"" + json_escape(str_) + "\"";
  }
  return {};
}

// ---- Series -----------------------------------------------------------------

Series::Series(std::string id, std::vector<std::string> columns)
    : id_(std::move(id)), columns_(std::move(columns)) {}

void Series::row(std::vector<Cell> cells) {
  BSPLOGP_EXPECTS(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Series::print(std::ostream& os) const {
  core::Table table(columns_);
  for (const auto& r : rows_) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const Cell& c : r) cells.push_back(c.display());
    table.add_row(std::move(cells));
  }
  table.print(os);
}

void Series::write_json(std::ostream& os) const {
  os << "{\"id\": \"" << json_escape(id_) << "\", \"columns\": [";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(columns_[i]) << "\"";
  }
  os << "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) os << ", ";
    os << "[";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) os << ", ";
      os << rows_[r][c].json();
    }
    os << "]";
  }
  os << "]}";
}

// ---- Reporter ---------------------------------------------------------------

Reporter::Reporter(int argc, char** argv, std::string bench_name)
    : name_(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_ = true;
    } else if (arg == "--list") {
      list_ = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) usage_and_exit(name_, "--json needs a path");
      json_path_ = argv[++i];
    } else if (arg == "--trace") {
      if (i + 1 >= argc) usage_and_exit(name_, "--trace needs a path");
      trace_path_ = argv[++i];
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) usage_and_exit(name_, "--jobs needs a count");
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > 4096)
        usage_and_exit(name_, std::string("bad --jobs value '") + argv[i] +
                                  "' (want an integer >= 1)");
      jobs_ = static_cast<int>(v);
    } else if (arg == "--cache") {
      if (i + 1 >= argc) usage_and_exit(name_, "--cache needs a mode");
      if (!cache::parse_mode(argv[++i], &cache_mode_))
        usage_and_exit(name_, std::string("bad --cache value '") + argv[i] +
                                  "' (want on, off, or readonly)");
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) usage_and_exit(name_, "--cache-dir needs a path");
      cache_dir_ = argv[++i];
    } else {
      usage_and_exit(name_, "unknown flag '" + arg + "'");
    }
  }
  if (!trace_path_.empty()) {
    trace_ = std::make_unique<trace::ChromeTraceSink>();
    if (cache_mode_ != cache::Mode::kOff) {
      // A replayed point constructs no machine, so it emits no events;
      // traces must observe the live execution (DESIGN.md §10).
      std::cerr << "bench_" << name_
                << ": --trace forces --cache off (traced runs always"
                   " execute live)\n";
      cache_mode_ = cache::Mode::kOff;
    }
  }
}

cache::PointCache* Reporter::cache() const {
  if (cache_ == nullptr) {
    std::string spec;
    for (const std::string& w : workloads_) {
      if (!spec.empty()) spec += ",";
      spec += w;
    }
    cache_ = std::make_unique<cache::PointCache>(cache_mode_, cache_dir_,
                                                 name_, spec);
  }
  return cache_.get();
}

core::ThreadPool* Reporter::pool() const {
  if (jobs_ <= 1) return nullptr;  // serial runs never spawn workers
  if (pool_ == nullptr) pool_ = std::make_unique<core::ThreadPool>(jobs_ - 1);
  return pool_.get();
}

void Reporter::use_workloads(std::vector<std::string> names) {
  for (const std::string& n : names)
    if (workload::find(n) == nullptr) {
      std::cerr << "bench_" << name_ << ": use_workloads(\"" << n
                << "\"): not in workload::registry()\n";
      std::exit(2);
    }
  workloads_ = std::move(names);
}

Series& Reporter::series(std::string id, std::vector<std::string> columns) {
  series_.emplace_back(std::move(id), std::move(columns));
  return series_.back();
}

void Reporter::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, real_to_json(value));
}

void Reporter::metric(const std::string& key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  metrics_.emplace_back(key, buf);
}

void Reporter::diag(const std::string& line) {
  // One mutex, one pre-composed write: a chain of operator<< calls from a
  // pool worker can interleave with another thread's chain mid-line;
  // serializing whole lines here makes stderr tear-free under --jobs > 1.
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::cerr << line << '\n';
}

void Reporter::write_json(std::ostream& os) const {
  const cache::Stats cs = cache()->stats();
  os << "{\"bench\": \"" << json_escape(name_) << "\", \"smoke\": "
     << (smoke_ ? "true" : "false") << ", \"jobs\": " << jobs_
     << ", \"cache\": {\"mode\": \"" << cache::to_string(cache_mode_)
     << "\", \"hits\": " << cs.hits << ", \"misses\": " << cs.misses
     << ", \"stale_evictions\": " << cs.stale_evictions
     << "}, \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(metrics_[i].first)
       << "\": " << metrics_[i].second;
  }
  os << "}, \"series\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) os << ", ";
    series_[i].write_json(os);
  }
  os << "]}\n";
}

int Reporter::finish() {
  if (list_) {
    std::cout << "bench_" << name_ << "\nworkloads:\n";
    for (const std::string& n : workloads_) {
      const workload::Entry* e = workload::find(n);
      std::cout << "  " << n << "  -- " << e->description << "\n";
    }
    std::cout << "series:\n";
    for (const Series& s : series_) std::cout << "  " << s.id() << "\n";
    std::cout << "cache: " << cache::to_string(cache_mode_) << ", dir "
              << cache_dir_
              << "  (--cache on|off|readonly, --cache-dir <path>; --trace"
                 " forces off)\n";
    return 0;
  }
  if (cache_mode_ != cache::Mode::kOff) {
    // stderr, never stdout: a warm run's tables must stay byte-identical
    // to the cold run's. Through diag() so a straggling worker line can
    // never tear the summary.
    const cache::Stats cs = cache()->stats();
    diag("cache[" + std::string(cache::to_string(cache_mode_)) + "]: " +
         std::to_string(cs.hits) + " hits, " + std::to_string(cs.misses) +
         " misses, " + std::to_string(cs.stale_evictions) +
         " stale evictions -> " + cache_dir_);
  }
  if (trace_ != nullptr) {
    if (!trace_->write_file(trace_path_)) {
      diag("harness: cannot write trace to " + trace_path_);
      return 1;
    }
    diag("trace: " + std::to_string(trace_->event_rows()) + " events over " +
         std::to_string(trace_->runs()) + " run(s) -> " + trace_path_ +
         " (open in ui.perfetto.dev)");
  }
  if (json_path_.empty()) return 0;
  std::ofstream os(json_path_);
  if (!os) {
    std::cerr << "harness: cannot open " << json_path_ << " for writing\n";
    return 1;
  }
  write_json(os);
  return os.good() ? 0 : 1;
}

}  // namespace bsplogp::bench

#include "bench/harness.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>

#include "src/cache/build_id.h"
#include "src/core/contracts.h"
#include "src/core/table.h"
#include "src/farm/server.h"
#include "src/farm/worker.h"
#include "src/workload/workload.h"

namespace bsplogp::bench {

namespace {

std::string real_to_json(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void usage_and_exit(const std::string& name,
                                 const std::string& complaint) {
  std::cerr << "bench_" << name << ": " << complaint << "\n"
            << "usage: bench_" << name
            << " [--smoke] [--jobs N] [--repeat N] [--json <path>]"
               " [--trace <path>]"
               " [--cache on|off|readonly] [--cache-dir <dir>] [--list]"
               " [--deep] [--farm SPEC] [--connect HOST:PORT]\n"
            << "  --smoke        tiny CI sweep (ctest -L bench_smoke)\n"
            << "  --jobs N       run sweep grid points on N threads"
               " (N in 1..4096); output is identical for every N\n"
            << "  --repeat N     run every measurement N times (N in"
               " 1..1000): sweep points re-verify\n"
               "                 byte-identical results, wall-clock loops"
               " report the median;\n"
               "                 output is identical for every N\n"
            << "  --json <path>  also write the machine-readable document\n"
            << "  --trace <path> Chrome trace-event JSON of the traced runs"
               " (forces --cache off)\n"
            << "  --cache M      sweep-result cache: on (replay unchanged"
               " grid points from disk\n"
               "                 and commit new ones), readonly (replay"
               " only), off (default)\n"
            << "  --cache-dir D  cache directory (default .bsplogp-cache/)\n"
            << "  --list         list workload families and series, run"
               " nothing\n"
            << "  --deep         nightly grids: a strict superset of the"
               " full grid\n"
            << "  --farm SPEC    become a sweep-server; SPEC is "
            << farm::farm_spec_forms() << "\n"
            << "  --connect H:P  become a sweep-worker for the server at"
               " host H, port P (1..65535)\n";
  std::exit(2);
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- Cell -------------------------------------------------------------------

std::string Cell::display() const {
  switch (kind_) {
    case Kind::Int: return core::fmt(int_);
    case Kind::Real: return core::fmt(real_, precision_);
    case Kind::Str: return str_;
  }
  return {};
}

std::string Cell::json() const {
  switch (kind_) {
    case Kind::Int: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64, int_);
      return buf;
    }
    case Kind::Real: return real_to_json(real_);
    case Kind::Str: return "\"" + json_escape(str_) + "\"";
  }
  return {};
}

// ---- Series -----------------------------------------------------------------

Series::Series(std::string id, std::vector<std::string> columns)
    : id_(std::move(id)), columns_(std::move(columns)) {}

void Series::row(std::vector<Cell> cells) {
  BSPLOGP_EXPECTS(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Series::print(std::ostream& os) const {
  core::Table table(columns_);
  for (const auto& r : rows_) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const Cell& c : r) cells.push_back(c.display());
    table.add_row(std::move(cells));
  }
  table.print(os);
}

void Series::write_json(std::ostream& os) const {
  os << "{\"id\": \"" << json_escape(id_) << "\", \"columns\": [";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(columns_[i]) << "\"";
  }
  os << "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) os << ", ";
    os << "[";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) os << ", ";
      os << rows_[r][c].json();
    }
    os << "]";
  }
  os << "]}";
}

// ---- Reporter ---------------------------------------------------------------

Reporter::Reporter(int argc, char** argv, std::string bench_name)
    : name_(std::move(bench_name)) {
  bool saw_farm = false;
  bool saw_connect = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--farm") saw_farm = true;
    if (arg == "--connect") saw_connect = true;
    if (arg == "--smoke") {
      smoke_ = true;
    } else if (arg == "--list") {
      list_ = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) usage_and_exit(name_, "--json needs a path");
      json_path_ = argv[++i];
    } else if (arg == "--trace") {
      if (i + 1 >= argc) usage_and_exit(name_, "--trace needs a path");
      trace_path_ = argv[++i];
    } else if (arg == "--deep") {
      deep_ = true;
    } else if (arg == "--farm") {
      if (i + 1 >= argc)
        usage_and_exit(name_, std::string("--farm needs a spec (want ") +
                                  farm::farm_spec_forms() + ")");
      std::string complaint;
      if (!farm::parse_farm_spec(argv[++i], &farm_, &complaint))
        usage_and_exit(name_, complaint);
    } else if (arg == "--connect") {
      if (i + 1 >= argc)
        usage_and_exit(name_,
                       "--connect needs HOST:PORT (port 1..65535)");
      std::string complaint;
      if (!farm::parse_connect_spec(argv[++i], &farm_, &complaint))
        usage_and_exit(name_, complaint);
    } else if (arg == "--jobs") {
      if (i + 1 >= argc)
        usage_and_exit(name_, "--jobs needs a count (an integer 1..4096)");
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > 4096)
        usage_and_exit(name_, std::string("bad --jobs value '") + argv[i] +
                                  "' (want an integer 1..4096)");
      jobs_ = static_cast<int>(v);
    } else if (arg == "--repeat") {
      if (i + 1 >= argc)
        usage_and_exit(name_, "--repeat needs a count (an integer 1..1000)");
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > 1000)
        usage_and_exit(name_, std::string("bad --repeat value '") + argv[i] +
                                  "' (want an integer 1..1000)");
      repeat_ = static_cast<int>(v);
    } else if (arg == "--cache") {
      if (i + 1 >= argc) usage_and_exit(name_, "--cache needs a mode");
      if (!cache::parse_mode(argv[++i], &cache_mode_))
        usage_and_exit(name_, std::string("bad --cache value '") + argv[i] +
                                  "' (want on, off, or readonly)");
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) usage_and_exit(name_, "--cache-dir needs a path");
      cache_dir_ = argv[++i];
    } else {
      usage_and_exit(name_, "unknown flag '" + arg + "'");
    }
  }
  if (saw_farm && saw_connect)
    usage_and_exit(name_,
                   "--farm and --connect are mutually exclusive (a process"
                   " is either the sweep-server or a sweep-worker)");
  if (farm_.role == farm::Spec::Role::kServer && farm_.spawn_workers > 0) {
    // Spawn template: this binary with this run's sweep-relevant flags.
    // --json/--trace are stripped (the children's documents would race
    // ours on the same paths; their stdout goes to /dev/null anyway) and
    // the server appends --connect per child.
    worker_argv_.push_back(argv[0] != nullptr && argv[0][0] != '\0'
                               ? argv[0]
                               : ("bench_" + name_));
    if (smoke_) worker_argv_.push_back("--smoke");
    if (deep_) worker_argv_.push_back("--deep");
    if (jobs_ > 1) {
      worker_argv_.push_back("--jobs");
      worker_argv_.push_back(std::to_string(jobs_));
    }
    if (repeat_ > 1) {
      // Workers compute the farmed points, so they carry the repeat
      // re-verification too.
      worker_argv_.push_back("--repeat");
      worker_argv_.push_back(std::to_string(repeat_));
    }
    // --cache is deliberately NOT forwarded: the server alone owns the
    // cache (it replays hits before farming and commits every accepted
    // RESULT), so worker-side lookups would be redundant concurrent
    // writers to the same directory.
  }
  if (!trace_path_.empty()) {
    trace_ = std::make_unique<trace::ChromeTraceSink>();
    if (cache_mode_ != cache::Mode::kOff) {
      // A replayed point constructs no machine, so it emits no events;
      // traces must observe the live execution (DESIGN.md §10).
      std::cerr << "bench_" << name_
                << ": --trace forces --cache off (traced runs always"
                   " execute live)\n";
      cache_mode_ = cache::Mode::kOff;
    }
  }
}

cache::PointCache* Reporter::cache() const {
  if (cache_ == nullptr) {
    std::string spec;
    for (const std::string& w : workloads_) {
      if (!spec.empty()) spec += ",";
      spec += w;
    }
    cache_ = std::make_unique<cache::PointCache>(cache_mode_, cache_dir_,
                                                 name_, spec);
  }
  return cache_.get();
}

core::ThreadPool* Reporter::pool() const {
  if (jobs_ <= 1) return nullptr;  // serial runs never spawn workers
  if (pool_ == nullptr) pool_ = std::make_unique<core::ThreadPool>(jobs_ - 1);
  return pool_.get();
}

farm::Dispatcher* Reporter::dispatcher() const {
  if (dispatcher_ != nullptr) return dispatcher_.get();
  switch (farm_.role) {
    case farm::Spec::Role::kServer: {
      farm::ServerOptions opt;
      opt.spec = farm_;
      opt.build_id = cache::effective_build_id();
      opt.bench = name_;
      opt.worker_argv = worker_argv_;
      opt.diag = [](const std::string& line) { diag(line); };
      auto server = std::make_unique<farm::FarmServerDispatcher>(
          std::move(opt));
      server_ = server.get();
      dispatcher_ = std::move(server);
      break;
    }
    case farm::Spec::Role::kWorker: {
      farm::WorkerOptions opt;
      opt.host = farm_.connect_host;
      opt.port = farm_.connect_port;
      opt.build_id = cache::effective_build_id();
      opt.bench = name_;
      opt.jobs = jobs_;
      opt.pool = pool();
      opt.diag = [](const std::string& line) { diag(line); };
      dispatcher_ =
          std::make_unique<farm::FarmWorkerDispatcher>(std::move(opt));
      break;
    }
    case farm::Spec::Role::kNone:
      dispatcher_ = std::make_unique<farm::LocalDispatcher>(jobs_, pool());
      break;
  }
  return dispatcher_.get();
}

void Reporter::use_workloads(std::vector<std::string> names) {
  for (const std::string& n : names)
    if (workload::find(n) == nullptr) {
      std::cerr << "bench_" << name_ << ": use_workloads(\"" << n
                << "\"): not in workload::registry()\n";
      std::exit(2);
    }
  workloads_ = std::move(names);
}

workload::Spec Reporter::checked_spec(const std::string& family,
                                      workload::Spec spec) {
  const workload::Entry* e = workload::find(family);
  if (e == nullptr) {
    std::cerr << "harness: checked_spec(\"" << family
              << "\"): not in workload::registry()\n";
    std::exit(2);
  }
  std::string error;
  if (!workload::validate(*e, spec, &error)) {
    std::cerr << "harness: " << error << "\n";
    std::exit(2);
  }
  return spec;
}

Series& Reporter::series(std::string id, std::vector<std::string> columns) {
  series_.emplace_back(std::move(id), std::move(columns));
  return series_.back();
}

void Reporter::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, real_to_json(value));
}

void Reporter::metric(const std::string& key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  metrics_.emplace_back(key, buf);
}

void Reporter::diag(const std::string& line) {
  // One mutex, one pre-composed write: a chain of operator<< calls from a
  // pool worker can interleave with another thread's chain mid-line;
  // serializing whole lines here makes stderr tear-free under --jobs > 1.
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::cerr << line << '\n';
}

void Reporter::write_json(std::ostream& os) const {
  const cache::Stats cs = cache()->stats();
  os << "{\"bench\": \"" << json_escape(name_) << "\", \"smoke\": "
     << (smoke_ ? "true" : "false") << ", \"jobs\": " << jobs_
     << ", \"repeat\": " << repeat_
     << ", \"cache\": {\"mode\": \"" << cache::to_string(cache_mode_)
     << "\", \"hits\": " << cs.hits << ", \"misses\": " << cs.misses
     << ", \"stale_evictions\": " << cs.stale_evictions
     << "}, \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(metrics_[i].first)
       << "\": " << metrics_[i].second;
  }
  os << "}, \"series\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) os << ", ";
    series_[i].write_json(os);
  }
  os << "]}\n";
}

int Reporter::finish() {
  if (list_) {
    std::cout << "bench_" << name_ << "\nworkloads:\n";
    for (const std::string& n : workloads_) {
      const workload::Entry* e = workload::find(n);
      std::cout << "  " << n << "  -- " << e->description << "\n";
      const std::string domains = workload::describe_domains(*e);
      if (!domains.empty())
        std::cout << "      domain: " << domains << "\n";
    }
    std::cout << "series:\n";
    for (const Series& s : series_) std::cout << "  " << s.id() << "\n";
    std::cout << "cache: " << cache::to_string(cache_mode_) << ", dir "
              << cache_dir_
              << "  (--cache on|off|readonly, --cache-dir <path>; --trace"
                 " forces off)\n";
    return 0;
  }
  if (cache_mode_ != cache::Mode::kOff) {
    // stderr, never stdout: a warm run's tables must stay byte-identical
    // to the cold run's. Through diag() so a straggling worker line can
    // never tear the summary.
    const cache::Stats cs = cache()->stats();
    diag("cache[" + std::string(cache::to_string(cache_mode_)) + "]: " +
         std::to_string(cs.hits) + " hits, " + std::to_string(cs.misses) +
         " misses, " + std::to_string(cs.stale_evictions) +
         " stale evictions -> " + cache_dir_);
  }
  if (server_ != nullptr) {
    // stderr like the cache summary: farm accounting must never perturb
    // the byte-identical stdout/JSON contract.
    const farm::ServerStats& fs = server_->stats();
    diag("farm[server]: " + std::to_string(fs.sweeps) + " sweeps, " +
         std::to_string(fs.points) + " points (" +
         std::to_string(fs.replayed) + " replayed, " +
         std::to_string(fs.farmed) + " farmed, " +
         std::to_string(fs.fallback) + " fallback); " +
         std::to_string(fs.joined) + " workers joined, " +
         std::to_string(fs.rejected) + " rejected, " +
         std::to_string(fs.deaths) + " deaths, " +
         std::to_string(fs.timeouts) + " timeouts, " +
         std::to_string(fs.respawns) + " respawns");
  }
  if (trace_ != nullptr) {
    if (!trace_->write_file(trace_path_)) {
      diag("harness: cannot write trace to " + trace_path_);
      return 1;
    }
    diag("trace: " + std::to_string(trace_->event_rows()) + " events over " +
         std::to_string(trace_->runs()) + " run(s) -> " + trace_path_ +
         " (open in ui.perfetto.dev)");
  }
  if (json_path_.empty()) return 0;
  std::ofstream os(json_path_);
  if (!os) {
    std::cerr << "harness: cannot open " << json_path_ << " for writing\n";
    return 1;
  }
  write_json(os);
  return os.good() ? 0 : 1;
}

}  // namespace bsplogp::bench

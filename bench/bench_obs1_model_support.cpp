// E8 (Observation 1): on point-to-point networks, the best attainable
// stall-free LogP parameters match the best attainable BSP parameters:
// G* = Theta(g*) and L* = Theta(l* + g*).
//
// The conceivable gap is that LogP only needs ceil(L/G)-relations routed
// fast, while BSP needs arbitrary h-relations: maybe small-degree routing
// is cheaper per message? We test exactly that: on each topology we fit
// the per-message cost twice — once over the small-h range a LogP
// implementation needs (h <= 8, a typical ceil(L/G)) and once over the
// full range a BSP implementation needs — and compare the slopes. If the
// restriction bought nothing (slopes comparable), Observation 1 holds.
#include <iostream>

#include "bench/harness.h"
#include "src/net/packet_sim.h"
#include "src/net/topology.h"

using namespace bsplogp;

namespace {

struct PointResult {
  std::int64_t nprocs = 0;
  double gamma_small = 0;
  double gamma_large = 0;
  double delta_small = 0;
  double delta_large = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(nprocs);
    ar(gamma_small);
    ar(gamma_large);
    ar(delta_small);
    ar(delta_large);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "obs1_model_support");
  const int reps = rep.smoke() ? 2 : 6;
  auto& table = rep.series(
      "gamma_ratio", {"topology", "p", "gamma(small h)", "gamma(large h)",
                      "ratio", "delta(small h)", "delta(large h)"});
  if (rep.list()) return rep.finish();

  std::cout << "E8 / Observation 1: does restricting to small-degree "
               "relations buy better\nparameters? gamma fitted over h<=8 "
               "(LogP regime) vs h in [8,64] (BSP regime).\n\n";
  const std::vector<Time> small_h{1, 2, 4, 8};
  const std::vector<Time> large_h{8, 16, 32, 64};
  const std::vector<net::TopologyKind> kinds =
      rep.smoke()
          ? std::vector<net::TopologyKind>{net::TopologyKind::Ring,
                                           net::TopologyKind::Mesh2D,
                                           net::TopologyKind::HypercubeMulti}
          : std::vector<net::TopologyKind>{
                net::TopologyKind::Ring, net::TopologyKind::Mesh2D,
                net::TopologyKind::HypercubeMulti,
                net::TopologyKind::HypercubeSingle,
                net::TopologyKind::Butterfly,
                net::TopologyKind::CubeConnectedCycles,
                net::TopologyKind::ShuffleExchange,
                net::TopologyKind::MeshOfTrees};
  const ProcId p = rep.smoke() ? 16 : 64;

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      kinds.size(),
      [&](std::size_t i) {
        // Both fits draw from fixed seeds (31/37) inside the point; reps
        // and p select the sampled relations, so they key the point.
        return cache::PointKey{"topo=" + net::to_string(kinds[i]) + ";p=" +
                               std::to_string(p) + ";reps=" +
                               std::to_string(reps)};
      },
      [&](std::size_t i) {
        const net::Topology topo = net::make_topology(kinds[i], p);
        const net::PacketSim sim(topo);
        const auto fs = net::fit_route_params(sim, small_h, reps, 31);
        const auto fl = net::fit_route_params(sim, large_h, reps, 37);
        return PointResult{static_cast<std::int64_t>(topo.nprocs()),
                           fs.gamma_hat(), fl.gamma_hat(), fs.delta_hat(),
                           fl.delta_hat()};
      });

  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const PointResult& r = results[i];
    table.row({net::to_string(kinds[i]), r.nprocs,
               bench::Cell(r.gamma_small, 2), bench::Cell(r.gamma_large, 2),
               bench::Cell(r.gamma_large / std::max(r.gamma_small, 0.05), 2),
               bench::Cell(r.delta_small, 1), bench::Cell(r.delta_large, 1)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: the 'ratio' column stays within a small "
               "constant band around 1:\nper-message bandwidth is the "
               "same whether the machine routes the capped\nrelations "
               "stall-free LogP needs or the arbitrary h-relations BSP "
               "needs —\nG* = Theta(g*), and since any ceil(L/G)-relation "
               "must finish within L,\nL* = Theta(l* + g*).\n";
  return rep.finish();
}

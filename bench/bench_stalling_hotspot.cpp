// E5 (Section 2.2): the Stalling Rule under hot-spot traffic.
//
// Three claims become measurements:
//   (a) the hot spot drains at the full bandwidth 1/G: completion tracks
//       o + nG + L for n incoming messages;
//   (b) a stalled h-relation still completes within the O(Gh^2) worst case
//       of Section 4.3's argument;
//   (c) stalling is "free" for fan-in cores: the naive stalling program
//       matches a slot-staged stall-free program, so the model can reward
//       stalling (the anomaly the paper flags).
#include <iostream>

#include "bench/harness.h"
#include "src/logp/machine.h"

using namespace bsplogp;

namespace {

struct Outcome {
  Time finish = 0;
  std::int64_t stalls = 0;
  Time stall_total = 0;
  Time stall_max = 0;
};

Outcome hotspot(ProcId p, Time k, const logp::Params& prm, bool staged,
                trace::TraceSink* sink) {
  std::vector<logp::ProgramFn> progs;
  progs.emplace_back([p, k](logp::Proc& pr) -> logp::Task<> {
    for (Time j = 0; j < static_cast<Time>(p - 1) * k; ++j)
      (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([i, k, p, staged](logp::Proc& pr) -> logp::Task<> {
      for (Time j = 0; j < k; ++j) {
        if (staged) {
          const Time slot =
              (j * static_cast<Time>(p - 1) + i) * pr.params().G;
          co_await pr.wait_until(
              std::max<Time>(0, slot - pr.params().o));
        }
        co_await pr.send(0, j);
      }
    });
  logp::Machine::Options mo;
  mo.sink = sink;
  logp::Machine machine(p, prm, mo);
  const auto st = machine.run(progs);
  return Outcome{st.finish_time, st.stall_events, st.stall_time_total,
                 st.stall_time_max};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "stalling_hotspot");
  const logp::Params prm{16, 1, 4};  // capacity 4
  std::cout << "E5 / Section 2.2: Stalling Rule at a hot spot "
               "(L=16, o=1, G=4, capacity 4)\n\n";

  auto& table = rep.series(
      "hotspot", {"p", "msgs n", "o+nG+L", "stall run", "staged run",
                  "stalls", "stall steps", "max stall", "G*n^2 bound"});
  const std::vector<ProcId> ps = rep.smoke()
                                     ? std::vector<ProcId>{9}
                                     : std::vector<ProcId>{9, 17, 33, 65};
  const std::vector<Time> ks =
      rep.smoke() ? std::vector<Time>{1} : std::vector<Time>{1, 4};
  for (const ProcId p : ps) {
    for (const Time k : ks) {
      const Time n = static_cast<Time>(p - 1) * k;
      const auto naive = hotspot(p, k, prm, false, rep.trace_sink());
      const auto staged = hotspot(p, k, prm, true, rep.trace_sink());
      table.row({p, n, prm.o + n * prm.G + prm.L, naive.finish,
                 staged.finish, naive.stalls, naive.stall_total,
                 naive.stall_max, prm.G * n * n});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: both runs track o+nG+L (bandwidth-bound "
               "drain, claim a+c); the\nstalling run is far below the "
               "G*n^2 worst case (claim b); senders' lost time\ngrows "
               "quadratically ('stall steps'), which is the only price "
               "the model charges.\n";
  return rep.finish();
}

// E5 (Section 2.2): the Stalling Rule under hot-spot traffic.
//
// Three claims become measurements:
//   (a) the hot spot drains at the full bandwidth 1/G: completion tracks
//       o + nG + L for n incoming messages;
//   (b) a stalled h-relation still completes within the O(Gh^2) worst case
//       of Section 4.3's argument;
//   (c) stalling is "free" for fan-in cores: the naive stalling program
//       matches a slot-staged stall-free program, so the model can reward
//       stalling (the anomaly the paper flags).
#include <iostream>

#include "bench/harness.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"

using namespace bsplogp;

namespace {

struct Point {
  ProcId p;
  Time k;
};

struct Outcome {
  Time finish = 0;
  std::int64_t stalls = 0;
  Time stall_total = 0;
  Time stall_max = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(finish);
    ar(stalls);
    ar(stall_total);
    ar(stall_max);
  }
};

Outcome run_hotspot(ProcId p, Time k, const logp::Params& prm, bool staged,
                    trace::TraceSink* sink) {
  logp::Machine::Options mo;
  mo.sink = sink;
  logp::Machine machine(p, prm, mo);
  const auto st = machine.run(workload::hotspot(p, k, staged));
  return Outcome{st.finish_time, st.stall_events, st.stall_time_total,
                 st.stall_time_max};
}

struct PointResult {
  Outcome naive;
  Outcome staged;

  template <class Ar>
  void io(Ar& ar) {
    ar(naive);
    ar(staged);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "stalling_hotspot");
  rep.use_workloads({"hotspot"});
  const logp::Params prm{16, 1, 4};  // capacity 4
  auto& table = rep.series(
      "hotspot", {"p", "msgs n", "o+nG+L", "stall run", "staged run",
                  "stalls", "stall steps", "max stall", "G*n^2 bound"});
  if (rep.list()) return rep.finish();

  std::cout << "E5 / Section 2.2: Stalling Rule at a hot spot "
               "(L=16, o=1, G=4, capacity 4)\n\n";
  const std::vector<ProcId> ps = rep.smoke()
                                     ? std::vector<ProcId>{9}
                                     : std::vector<ProcId>{9, 17, 33, 65};
  const std::vector<Time> ks =
      rep.smoke() ? std::vector<Time>{1} : std::vector<Time>{1, 4};
  std::vector<Point> grid;
  for (const ProcId p : ps)
    for (const Time k : ks) grid.push_back(Point{p, k});

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      grid.size(),
      [&](std::size_t i) {
        return cache::PointKey{"p=" + std::to_string(grid[i].p) + ";k=" +
                               std::to_string(grid[i].k) + ";L=" +
                               std::to_string(prm.L) + ";o=" +
                               std::to_string(prm.o) + ";G=" +
                               std::to_string(prm.G)};
      },
      [&](std::size_t i) {
        return PointResult{
            run_hotspot(grid[i].p, grid[i].k, prm, false, nullptr),
            run_hotspot(grid[i].p, grid[i].k, prm, true, nullptr)};
      });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& [p, k] = grid[i];
    const Time n = static_cast<Time>(p - 1) * k;
    const auto& r = results[i];
    table.row({p, n, prm.o + n * prm.G + prm.L, r.naive.finish,
               r.staged.finish, r.naive.stalls, r.naive.stall_total,
               r.naive.stall_max, prm.G * n * n});
  }
  table.print(std::cout);
  if (rep.trace_sink() != nullptr) {
    (void)run_hotspot(grid.front().p, grid.front().k, prm, false,
                      rep.trace_sink());
    (void)run_hotspot(grid.front().p, grid.front().k, prm, true,
                      rep.trace_sink());
  }
  std::cout << "\nShape check: both runs track o+nG+L (bandwidth-bound "
               "drain, claim a+c); the\nstalling run is far below the "
               "G*n^2 worst case (claim b); senders' lost time\ngrows "
               "quadratically ('stall steps'), which is the only price "
               "the model charges.\n";
  return rep.finish();
}

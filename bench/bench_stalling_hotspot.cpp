// E5 (Section 2.2): the Stalling Rule under hot-spot traffic.
//
// Three claims become measurements:
//   (a) the hot spot drains at the full bandwidth 1/G: completion tracks
//       o + nG + L for n incoming messages;
//   (b) a stalled h-relation still completes within the O(Gh^2) worst case
//       of Section 4.3's argument;
//   (c) stalling is "free" for fan-in cores: the naive stalling program
//       matches a slot-staged stall-free program, so the model can reward
//       stalling (the anomaly the paper flags).
#include <iostream>

#include "src/core/table.h"
#include "src/logp/machine.h"

using namespace bsplogp;

namespace {

struct Outcome {
  Time finish = 0;
  std::int64_t stalls = 0;
  Time stall_total = 0;
  Time stall_max = 0;
};

Outcome hotspot(ProcId p, Time k, const logp::Params& prm, bool staged) {
  std::vector<logp::ProgramFn> progs;
  progs.emplace_back([p, k](logp::Proc& pr) -> logp::Task<> {
    for (Time j = 0; j < static_cast<Time>(p - 1) * k; ++j)
      (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([i, k, p, staged](logp::Proc& pr) -> logp::Task<> {
      for (Time j = 0; j < k; ++j) {
        if (staged) {
          const Time slot =
              (j * static_cast<Time>(p - 1) + i) * pr.params().G;
          co_await pr.wait_until(
              std::max<Time>(0, slot - pr.params().o));
        }
        co_await pr.send(0, j);
      }
    });
  logp::Machine machine(p, prm);
  const auto st = machine.run(progs);
  return Outcome{st.finish_time, st.stall_events, st.stall_time_total,
                 st.stall_time_max};
}

}  // namespace

int main() {
  const logp::Params prm{16, 1, 4};  // capacity 4
  std::cout << "E5 / Section 2.2: Stalling Rule at a hot spot "
               "(L=16, o=1, G=4, capacity 4)\n\n";

  core::Table table({"p", "msgs n", "o+nG+L", "stall run", "staged run",
                     "stalls", "stall steps", "max stall", "G*n^2 bound"});
  for (const ProcId p : {9, 17, 33, 65}) {
    for (const Time k : {1, 4}) {
      const Time n = static_cast<Time>(p - 1) * k;
      const auto naive = hotspot(p, k, prm, false);
      const auto staged = hotspot(p, k, prm, true);
      table.add_row({core::fmt(static_cast<std::int64_t>(p)), core::fmt(n),
                     core::fmt(prm.o + n * prm.G + prm.L),
                     core::fmt(naive.finish), core::fmt(staged.finish),
                     core::fmt(naive.stalls), core::fmt(naive.stall_total),
                     core::fmt(naive.stall_max),
                     core::fmt(prm.G * n * n)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: both runs track o+nG+L (bandwidth-bound "
               "drain, claim a+c); the\nstalling run is far below the "
               "G*n^2 worst case (claim b); senders' lost time\ngrows "
               "quadratically ('stall steps'), which is the only price "
               "the model charges.\n";
  return 0;
}

// E1 (Theorem 1): a stall-free LogP program simulated on BSP has slowdown
// O(1 + g/G + l/L) — constant when g = Theta(G) and l = Theta(L).
//
// We run two stall-free LogP workloads natively and under the cycle
// simulation across a (g/G, l/L) grid, and report measured slowdown next
// to the predicted multiplier 1 + g/G + l/L. The claim holds if the
// measured/predicted ratio stays within a constant band across the grid.
#include <iostream>

#include "bench/harness.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

/// One cell of the (workload, p, g/G, l/L) sweep grid.
struct Point {
  const char* name;
  std::function<std::vector<logp::ProgramFn>()> make;
  ProcId p;
  Time gr;
  Time lr;
};

/// What one grid point measures. Everything the table row needs comes back
/// in one value, so points can run on any thread in any order — and, via
/// io(), replay from the sweep cache without constructing a machine.
struct PointResult {
  Time t_native = 0;
  Time t_bsp = 0;
  double slowdown = 0;
  double predicted = 0;
  bool capacity_ok = false;

  template <class Ar>
  void io(Ar& ar) {
    ar(t_native);
    ar(t_bsp);
    ar(slowdown);
    ar(predicted);
    ar(capacity_ok);
  }
};

PointResult run_point(const Point& pt, const logp::Params& prm,
                      trace::TraceSink* sink) {
  logp::Machine native(pt.p, prm);
  const auto native_stats = native.run(pt.make());
  xsim::LogpOnBspOptions opt;
  opt.bsp = bsp::Params{pt.gr * prm.G, pt.lr * prm.L};
  opt.sink = sink;
  xsim::LogpOnBsp sim(pt.p, prm, opt);
  const auto rep = sim.run(pt.make());
  PointResult r;
  r.t_native = native_stats.finish_time;
  r.t_bsp = rep.bsp.finish_time;
  r.slowdown =
      static_cast<double>(r.t_bsp) / static_cast<double>(r.t_native);
  r.predicted = xsim::predicted_slowdown_thm1(prm, opt.bsp);
  r.capacity_ok = rep.capacity_ok;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "thm1_logp_on_bsp");
  rep.use_workloads({"all-to-all", "cb-rounds"});
  const logp::Params prm{16, 1, 4};
  auto& s = rep.series("slowdown_grid",
                       {"workload", "p", "g/G", "l/L", "T_LogP", "T_BSP",
                        "slowdown", "1+g/G+l/L", "ratio", "stallfree"});
  if (rep.list()) return rep.finish();

  std::cout << "E1 / Theorem 1: stall-free LogP on BSP, slowdown "
               "O(1 + g/G + l/L)\n"
               "LogP machine: L=16, o=1, G=4 (capacity 4)\n\n";
  // The --deep grids extend the full ones (never replace points): the
  // nightly farm run with a warm cache replays every regular point and
  // only farms out the extension.
  const std::vector<ProcId> ps = rep.smoke()   ? std::vector<ProcId>{8}
                                 : rep.deep()  ? std::vector<ProcId>{16, 64, 128}
                                               : std::vector<ProcId>{16, 64};
  const std::vector<Time> grs = rep.smoke()  ? std::vector<Time>{1, 4}
                                : rep.deep() ? std::vector<Time>{1, 2, 4, 8, 16}
                                             : std::vector<Time>{1, 2, 4, 8};
  const std::vector<Time> lrs = rep.smoke()  ? std::vector<Time>{1}
                                : rep.deep() ? std::vector<Time>{1, 4, 16, 64}
                                             : std::vector<Time>{1, 4, 16};

  std::vector<Point> grid;
  for (const ProcId p : ps)
    for (const auto& [name, make] :
         {std::pair<const char*, std::function<std::vector<logp::ProgramFn>()>>{
              "all-to-all", [p] { return workload::all_to_all(p); }},
          {"cb-x4", [p] { return workload::cb_rounds(p, 4); }}})
      for (const Time gr : grs)
        for (const Time lr : lrs)
          grid.push_back(Point{name, make, p, gr, lr});

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      grid.size(),
      [&](std::size_t i) {
        // Deterministic workloads: the point's parameters are its whole
        // identity (no RNG stream, so no index in the key).
        const Point& pt = grid[i];
        return cache::PointKey{
            "wl=" + std::string(pt.name) + ";p=" + std::to_string(pt.p) +
            ";gr=" + std::to_string(pt.gr) + ";lr=" + std::to_string(pt.lr) +
            ";L=" + std::to_string(prm.L) + ";o=" + std::to_string(prm.o) +
            ";G=" + std::to_string(prm.G)};
      },
      [&](std::size_t i) { return run_point(grid[i], prm, nullptr); });

  double worst_ratio = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& pt = grid[i];
    const PointResult& r = results[i];
    worst_ratio = std::max(worst_ratio, r.slowdown / r.predicted);
    s.row({pt.name, pt.p, pt.gr, pt.lr, r.t_native, r.t_bsp,
           bench::Cell(r.slowdown, 2), bench::Cell(r.predicted, 1),
           bench::Cell(r.slowdown / r.predicted, 2),
           r.capacity_ok ? "yes" : "NO"});
  }
  s.print(std::cout);
  rep.metric("worst_ratio", worst_ratio);
  // Representative traced run, on this thread: ChromeTraceSink is not
  // thread-safe, so traces never come from sweep workers.
  if (rep.trace_sink() != nullptr)
    (void)run_point(grid.front(), prm, rep.trace_sink());
  std::cout << "\nShape check: 'ratio' (measured/predicted) should stay "
               "within a constant band\nacross the grid — the paper's "
               "slowdown is Theta(1 + g/G + l/L).\n";
  return rep.finish();
}

// E1 (Theorem 1): a stall-free LogP program simulated on BSP has slowdown
// O(1 + g/G + l/L) — constant when g = Theta(G) and l = Theta(L).
//
// We run two stall-free LogP workloads natively and under the cycle
// simulation across a (g/G, l/L) grid, and report measured slowdown next
// to the predicted multiplier 1 + g/G + l/L. The claim holds if the
// measured/predicted ratio stays within a constant band across the grid.
#include <iostream>

#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"
#include "src/core/table.h"
#include "src/logp/machine.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

std::vector<logp::ProgramFn> all_to_all(ProcId p) {
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([p](logp::Proc& pr) -> logp::Task<> {
      for (ProcId d = 1; d < p; ++d)
        co_await pr.send(static_cast<ProcId>((pr.id() + d) % p), d);
      for (ProcId k = 1; k < p; ++k) (void)co_await pr.recv();
    });
  return progs;
}

std::vector<logp::ProgramFn> cb_rounds(ProcId p, int rounds) {
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([i, rounds](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      Word v = i;
      for (int k = 0; k < rounds; ++k)
        v = co_await algo::combine_broadcast(mb, v, algo::ReduceOp::Max);
    });
  return progs;
}

void sweep(const std::string& name,
           const std::function<std::vector<logp::ProgramFn>()>& make,
           ProcId p, const logp::Params& prm, core::Table& table) {
  logp::Machine native(p, prm);
  const auto native_stats = native.run(make());
  for (const Time gr : {1, 2, 4, 8}) {
    for (const Time lr : {1, 4, 16}) {
      xsim::LogpOnBspOptions opt;
      opt.bsp = bsp::Params{gr * prm.G, lr * prm.L};
      xsim::LogpOnBsp sim(p, prm, opt);
      const auto rep = sim.run(make());
      const double slow = static_cast<double>(rep.bsp.time) /
                          static_cast<double>(native_stats.finish_time);
      const double predicted = xsim::predicted_slowdown_thm1(prm, opt.bsp);
      table.add_row({name, core::fmt(static_cast<std::int64_t>(p)),
                     core::fmt(gr), core::fmt(lr),
                     core::fmt(native_stats.finish_time),
                     core::fmt(rep.bsp.time), core::fmt(slow, 2),
                     core::fmt(predicted, 1), core::fmt(slow / predicted, 2),
                     rep.capacity_ok ? "yes" : "NO"});
    }
  }
}

}  // namespace

int main() {
  std::cout << "E1 / Theorem 1: stall-free LogP on BSP, slowdown "
               "O(1 + g/G + l/L)\n"
               "LogP machine: L=16, o=1, G=4 (capacity 4)\n\n";
  const logp::Params prm{16, 1, 4};
  core::Table table({"workload", "p", "g/G", "l/L", "T_LogP", "T_BSP",
                     "slowdown", "1+g/G+l/L", "ratio", "stallfree"});
  for (const ProcId p : {16, 64}) {
    sweep("all-to-all", [p] { return all_to_all(p); }, p, prm, table);
    sweep("cb-x4", [p] { return cb_rounds(p, 4); }, p, prm, table);
  }
  table.print(std::cout);
  std::cout << "\nShape check: 'ratio' (measured/predicted) should stay "
               "within a constant band\nacross the grid — the paper's "
               "slowdown is Theta(1 + g/G + l/L).\n";
  return 0;
}

// E1 (Theorem 1): a stall-free LogP program simulated on BSP has slowdown
// O(1 + g/G + l/L) — constant when g = Theta(G) and l = Theta(L).
//
// We run two stall-free LogP workloads natively and under the cycle
// simulation across a (g/G, l/L) grid, and report measured slowdown next
// to the predicted multiplier 1 + g/G + l/L. The claim holds if the
// measured/predicted ratio stays within a constant band across the grid.
#include <iostream>

#include "bench/harness.h"
#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"
#include "src/logp/machine.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

std::vector<logp::ProgramFn> all_to_all(ProcId p) {
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([p](logp::Proc& pr) -> logp::Task<> {
      for (ProcId d = 1; d < p; ++d)
        co_await pr.send(static_cast<ProcId>((pr.id() + d) % p), d);
      for (ProcId k = 1; k < p; ++k) (void)co_await pr.recv();
    });
  return progs;
}

std::vector<logp::ProgramFn> cb_rounds(ProcId p, int rounds) {
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([i, rounds](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      Word v = i;
      for (int k = 0; k < rounds; ++k)
        v = co_await algo::combine_broadcast(mb, v, algo::ReduceOp::Max);
    });
  return progs;
}

void sweep(const std::string& name,
           const std::function<std::vector<logp::ProgramFn>()>& make,
           ProcId p, const logp::Params& prm, bool smoke, bench::Series& s,
           double& worst_ratio, trace::TraceSink* sink) {
  logp::Machine native(p, prm);
  const auto native_stats = native.run(make());
  const std::vector<Time> grs = smoke ? std::vector<Time>{1, 4}
                                      : std::vector<Time>{1, 2, 4, 8};
  const std::vector<Time> lrs =
      smoke ? std::vector<Time>{1} : std::vector<Time>{1, 4, 16};
  for (const Time gr : grs) {
    for (const Time lr : lrs) {
      xsim::LogpOnBspOptions opt;
      opt.bsp = bsp::Params{gr * prm.G, lr * prm.L};
      opt.sink = sink;
      xsim::LogpOnBsp sim(p, prm, opt);
      const auto rep = sim.run(make());
      const double slow = static_cast<double>(rep.bsp.finish_time) /
                          static_cast<double>(native_stats.finish_time);
      const double predicted = xsim::predicted_slowdown_thm1(prm, opt.bsp);
      worst_ratio = std::max(worst_ratio, slow / predicted);
      s.row({name, p, gr, lr, native_stats.finish_time, rep.bsp.finish_time,
             bench::Cell(slow, 2), bench::Cell(predicted, 1),
             bench::Cell(slow / predicted, 2),
             rep.capacity_ok ? "yes" : "NO"});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "thm1_logp_on_bsp");
  std::cout << "E1 / Theorem 1: stall-free LogP on BSP, slowdown "
               "O(1 + g/G + l/L)\n"
               "LogP machine: L=16, o=1, G=4 (capacity 4)\n\n";
  const logp::Params prm{16, 1, 4};
  auto& s = rep.series("slowdown_grid",
                       {"workload", "p", "g/G", "l/L", "T_LogP", "T_BSP",
                        "slowdown", "1+g/G+l/L", "ratio", "stallfree"});
  double worst_ratio = 0;
  const std::vector<ProcId> ps =
      rep.smoke() ? std::vector<ProcId>{8} : std::vector<ProcId>{16, 64};
  for (const ProcId p : ps) {
    sweep("all-to-all", [p] { return all_to_all(p); }, p, prm, rep.smoke(),
          s, worst_ratio, rep.trace_sink());
    sweep("cb-x4", [p] { return cb_rounds(p, 4); }, p, prm, rep.smoke(), s,
          worst_ratio, rep.trace_sink());
  }
  s.print(std::cout);
  rep.metric("worst_ratio", worst_ratio);
  std::cout << "\nShape check: 'ratio' (measured/predicted) should stay "
               "within a constant band\nacross the grid — the paper's "
               "slowdown is Theta(1 + g/G + l/L).\n";
  return rep.finish();
}

// Application crossover: the three partitioned application families
// (stencil-2d, sample-sort, bsf-iterative — src/workload/apps.h) executed
// four ways per grid point, so the Theorem 1/2 slowdown claims are
// measured on application-shaped programs instead of synthetic traffic:
//
//   T_bsp   — the family's BSP programs on the native bsp::Machine,
//   T_logp  — the family's LogP programs on the native logp::Machine,
//   T1      — the LogP programs hosted on BSP (xsim::LogpOnBsp, Thm 1):
//             the host machine's BSP finish time,
//   T2      — the BSP programs hosted on LogP (xsim::BspOnLogp, Thm 2):
//             the host machine's LogP finish time.
//
// Every point also cross-checks the per-processor result vectors of all
// four executions against each other (the differential contract), so a
// simulator that drifts logically can never report a plausible time.
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/bsp/machine.h"
#include "src/logp/machine.h"
#include "src/workload/apps.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

constexpr logp::Params kLogp{16, 1, 4};
constexpr bsp::Params kBsp{3, 5};

struct AppPoint {
  std::string family;
  workload::Spec spec;
};

struct PointResult {
  Time bsp = 0;
  Time logp = 0;
  Time thm1 = 0;
  Time thm2 = 0;
  bool consistent = true;

  template <class Ar>
  void io(Ar& ar) {
    ar(bsp);
    ar(logp);
    ar(thm1);
    ar(thm2);
    ar(consistent);
  }
};

PointResult run_point(const AppPoint& pt) {
  const workload::Entry* e = workload::find(pt.family);
  PointResult r;
  std::vector<Word> res_bsp, res_logp, res_t1, res_t2;
  {
    workload::Spec spec = pt.spec;
    spec.result = &res_bsp;
    auto progs = e->bsp(spec);
    bsp::Machine machine(spec.p, kBsp);
    r.bsp = machine.run(progs).finish_time;
  }
  {
    workload::Spec spec = pt.spec;
    spec.result = &res_logp;
    auto progs = e->logp(spec);
    logp::Machine machine(spec.p, kLogp);
    const logp::RunStats st = machine.run(progs);
    if (!st.completed()) r.consistent = false;
    r.logp = st.finish_time;
  }
  {
    workload::Spec spec = pt.spec;
    spec.result = &res_t1;
    auto progs = e->logp(spec);
    xsim::LogpOnBsp sim(spec.p, kLogp, xsim::LogpOnBspOptions{kBsp});
    const xsim::LogpOnBspReport rep = sim.run(progs);
    if (rep.stuck) r.consistent = false;
    r.thm1 = rep.bsp.finish_time;
  }
  {
    workload::Spec spec = pt.spec;
    spec.result = &res_t2;
    auto progs = e->bsp(spec);
    xsim::BspOnLogp sim(spec.p, kLogp);
    const xsim::BspOnLogpReport rep = sim.run(progs);
    if (!rep.logp.completed() || rep.schedule_violations != 0)
      r.consistent = false;
    r.thm2 = rep.logp.finish_time;
  }
  if (res_bsp != res_logp || res_bsp != res_t1 || res_bsp != res_t2)
    r.consistent = false;
  return r;
}

void add_point(std::vector<AppPoint>& pts, const std::string& family,
               ProcId p, std::int64_t nx, std::int64_t ny, int rounds) {
  workload::Spec spec;
  spec.p = p;
  spec.nx = nx;
  spec.ny = ny;
  spec.rounds = rounds;
  spec.seed = 11;
  pts.push_back(AppPoint{family, bench::Reporter::checked_spec(family, spec)});
}

double ratio(Time num, Time den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "app_crossover");
  rep.use_workloads({"stencil-2d", "sample-sort", "bsf-iterative"});
  auto& table = rep.series(
      "app_crossover", {"family", "p", "nx", "ny", "rounds", "T_bsp",
                        "T_logp", "T1 (logp-on-bsp)", "T2 (bsp-on-logp)",
                        "slow1", "slow2"});
  if (rep.list()) return rep.finish();

  std::cout << "Application crossover: partitioned app families on all "
               "four executors\nLogP machine: L=" << kLogp.L
            << ", o=" << kLogp.o << ", G=" << kLogp.G
            << "; BSP machine: g=" << kBsp.g << ", l=" << kBsp.l << "\n\n";

  // --deep appends points (point keys include the index, so extensions
  // must never shift existing points): a warm cache from the regular run
  // replays inside the nightly deep run.
  std::vector<AppPoint> pts;
  if (rep.smoke()) {
    add_point(pts, "stencil-2d", 4, 12, 8, 2);
    add_point(pts, "sample-sort", 4, 64, 1, 1);
    add_point(pts, "bsf-iterative", 4, 40, 1, 3);
  } else {
    for (const ProcId p : {4, 8, 16})
      add_point(pts, "stencil-2d", p, 32, 24, 4);
    add_point(pts, "stencil-2d", 8, 64, 48, 4);
    for (const std::int64_t n : {256, 1024, 4096})
      add_point(pts, "sample-sort", 8, n, 1, 1);
    add_point(pts, "sample-sort", 16, 4096, 1, 1);
    for (const std::int64_t n : {128, 512, 2048})
      add_point(pts, "bsf-iterative", 8, n, 1, 6);
    add_point(pts, "bsf-iterative", 16, 2048, 1, 6);
    if (rep.deep()) {
      add_point(pts, "stencil-2d", 16, 96, 64, 6);
      add_point(pts, "sample-sort", 16, 16384, 1, 1);
      add_point(pts, "bsf-iterative", 16, 8192, 1, 10);
    }
  }

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      pts.size(),
      [&](std::size_t i) {
        const AppPoint& pt = pts[i];
        return cache::PointKey{
            "f=" + pt.family + ";p=" + std::to_string(pt.spec.p) +
                ";nx=" + std::to_string(pt.spec.nx) +
                ";ny=" + std::to_string(pt.spec.ny) +
                ";r=" + std::to_string(pt.spec.rounds) +
                ";gr=" + std::to_string(pt.spec.grid_rows) +
                ";s=" + std::to_string(pt.spec.seed) +
                ";i=" + std::to_string(i) + ";L=" + std::to_string(kLogp.L) +
                ";o=" + std::to_string(kLogp.o) +
                ";G=" + std::to_string(kLogp.G) +
                ";g=" + std::to_string(kBsp.g) +
                ";l=" + std::to_string(kBsp.l),
            37};
      },
      [&](std::size_t i) { return run_point(pts[i]); });

  for (std::size_t i = 0; i < pts.size(); ++i) {
    const AppPoint& pt = pts[i];
    const PointResult& r = results[i];
    if (!r.consistent)
      bench::Reporter::diag("WARNING: executors disagree at point " +
                            std::to_string(i) + " (" + pt.family + ")");
    table.row({pt.family, pt.spec.p, pt.spec.nx, pt.spec.ny, pt.spec.rounds,
               r.bsp, r.logp, r.thm1, r.thm2,
               bench::Cell(ratio(r.thm1, r.logp), 2),
               bench::Cell(ratio(r.thm2, r.bsp), 2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: slow1 and slow2 are the Theorem 1/2 "
               "simulation slowdowns\nmeasured on application-shaped "
               "programs — both stay modest constants as the\nproblem "
               "sizes grow, which is the paper's asymptotic-equivalence "
               "claim\napplied to programs people actually run.\n";
  return rep.finish();
}

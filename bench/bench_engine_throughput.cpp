// Wall-clock throughput of the LogP discrete-event engine itself: how many
// engine events per second each scheduler core sustains, measured on the
// workloads the paper's experiments lean on. This is the perf trajectory
// anchor for the scheduler rewrite — the calendar/bucket queue
// (SchedulerKind::Bucket) versus the original priority-queue baseline
// (SchedulerKind::ReferenceHeap) — so BENCH_engine.json records events/sec,
// model finish times, and the bucket/heap speedup per workload.
//
// It also anchors the sweep-runner trajectory: a deterministic model-time
// grid is run serially and with --jobs N, the model results are asserted
// identical, and the wall-clock ratio is recorded as `sweep_speedup`.
//
//   bench_engine_throughput --json BENCH_engine.json
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"

using namespace bsplogp;

namespace {

struct Workload {
  std::string name;
  logp::Params prm;
  ProcId p;
  logp::DeliverySchedule delivery;
  std::vector<logp::ProgramFn> progs;
};

struct Measurement {
  double events_per_sec = 0;
  std::int64_t events = 0;
  Time finish = 0;
  int reps = 0;
};

Measurement measure(const Workload& w, logp::SchedulerKind sched,
                    double min_seconds) {
  logp::Machine::Options o;
  o.scheduler = sched;
  o.delivery = w.delivery;
  logp::Machine machine(w.p, w.prm, o);
  const std::span<const logp::ProgramFn> progs(w.progs);

  Measurement out;
  out.finish = machine.run(progs).finish_time;  // warmup (untimed)

  using clock = std::chrono::steady_clock;
  double elapsed = 0;
  while (elapsed < min_seconds) {
    const auto t0 = clock::now();
    const logp::RunStats st = machine.run(progs);
    elapsed += std::chrono::duration<double>(clock::now() - t0).count();
    out.events += st.events_processed;
    out.reps += 1;
  }
  out.events_per_sec = static_cast<double>(out.events) / elapsed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "engine_throughput");
  rep.use_workloads({"hotspot", "all-to-all"});
  auto& s = rep.series(
      "throughput",
      {"workload", "p", "events/run", "bucket ev/s", "heap ev/s", "speedup",
       "model finish"});
  auto& sweep_series = rep.series(
      "sweep_scaling", {"grid points", "jobs", "serial s", "parallel s",
                        "speedup", "model times equal"});
  if (rep.list()) return rep.finish();

  const double min_seconds = rep.smoke() ? 0.01 : 0.4;

  std::vector<Workload> workloads;
  if (rep.smoke()) {
    workloads.push_back(Workload{"hotspot", logp::Params{64, 1, 2}, 9,
                                 logp::DeliverySchedule::Earliest,
                                 workload::hotspot(9, 2)});
    workloads.push_back(Workload{"alltoall", logp::Params{16, 1, 2}, 8,
                                 logp::DeliverySchedule::Latest,
                                 workload::all_to_all(8)});
  } else {
    workloads.push_back(Workload{"hotspot", logp::Params{256, 1, 2}, 256,
                                 logp::DeliverySchedule::Earliest,
                                 workload::hotspot(256, 4)});
    workloads.push_back(Workload{"hotspot_smallcap", logp::Params{16, 1, 4},
                                 65, logp::DeliverySchedule::Latest,
                                 workload::hotspot(65, 8)});
    workloads.push_back(Workload{"alltoall", logp::Params{16, 1, 2}, 128,
                                 logp::DeliverySchedule::Latest,
                                 workload::all_to_all(128)});
  }

  std::cout << "Engine scheduler throughput: calendar/bucket queue vs the "
               "priority-queue baseline\n\n";
  for (const Workload& w : workloads) {
    const Measurement bucket =
        measure(w, logp::SchedulerKind::Bucket, min_seconds);
    const Measurement heap =
        measure(w, logp::SchedulerKind::ReferenceHeap, min_seconds);
    // Same seed + options => identical model results across schedulers.
    if (bucket.finish != heap.finish || bucket.events / bucket.reps !=
                                            heap.events / heap.reps) {
      std::cerr << "scheduler divergence on " << w.name << "!\n";
      return 1;
    }
    const double speedup = bucket.events_per_sec / heap.events_per_sec;
    s.row({w.name, w.p, bucket.events / bucket.reps,
           bench::Cell(bucket.events_per_sec, 0),
           bench::Cell(heap.events_per_sec, 0), bench::Cell(speedup, 2),
           bucket.finish});
    rep.metric("events_per_sec_bucket_" + w.name, bucket.events_per_sec);
    rep.metric("events_per_sec_heap_" + w.name, heap.events_per_sec);
    rep.metric("speedup_" + w.name, speedup);
    if (rep.trace_sink() != nullptr) {
      // One extra traced run per workload, outside the timed loops above:
      // the throughput numbers always measure the sink-free path.
      logp::Machine::Options o;
      o.scheduler = logp::SchedulerKind::Bucket;
      o.delivery = w.delivery;
      o.sink = rep.trace_sink();
      logp::Machine machine(w.p, w.prm, o);
      (void)machine.run(std::span<const logp::ProgramFn>(w.progs));
    }
  }
  s.print(std::cout);
  std::cout << "\nspeedup = bucket events/sec over the priority-queue "
               "baseline; both schedulers\nreplay the identical event "
               "sequence (RunStats are bit-identical per seed).\n\n";

  // SweepRunner scaling: the same deterministic model-time grid, run
  // serially and with --jobs N. Model times must be identical (that is
  // the sweep contract); the wall-clock ratio is the `sweep_speedup`
  // trajectory metric.
  {
    struct Point {
      ProcId p;
      Time k;
    };
    std::vector<Point> grid;
    const std::vector<ProcId> ps =
        rep.smoke() ? std::vector<ProcId>{9, 17}
                    : std::vector<ProcId>{17, 33, 65, 97, 129};
    const std::vector<Time> ks = rep.smoke() ? std::vector<Time>{1, 2}
                                             : std::vector<Time>{2, 4, 8, 16};
    for (const ProcId p : ps)
      for (const Time k : ks) grid.push_back(Point{p, k});

    auto run_grid = [&](int jobs, double* seconds) {
      using clock = std::chrono::steady_clock;
      const auto t0 = clock::now();
      const bench::SweepRunner grid_runner(jobs);
      auto finishes =
          grid_runner.map<Time>(grid.size(), [&](std::size_t i) {
            logp::Machine m(grid[i].p, logp::Params{16, 1, 2});
            return m.run(workload::hotspot(grid[i].p, grid[i].k))
                .finish_time;
          });
      *seconds = std::chrono::duration<double>(clock::now() - t0).count();
      return finishes;
    };
    double serial_s = 0, parallel_s = 0;
    const auto serial = run_grid(1, &serial_s);
    const auto parallel = run_grid(rep.jobs(), &parallel_s);
    const bool equal = serial == parallel;
    if (!equal) {
      std::cerr << "sweep model times diverge between --jobs 1 and --jobs "
                << rep.jobs() << "!\n";
      return 1;
    }
    const double sweep_speedup = serial_s / parallel_s;
    sweep_series.row({static_cast<std::int64_t>(grid.size()), rep.jobs(),
                      bench::Cell(serial_s, 3), bench::Cell(parallel_s, 3),
                      bench::Cell(sweep_speedup, 2), equal ? "yes" : "NO"});
    sweep_series.print(std::cout);
    rep.metric("sweep_speedup", sweep_speedup);
    rep.metric("sweep_jobs", static_cast<std::int64_t>(rep.jobs()));
    std::cout << "\nsweep_speedup = serial wall-clock over --jobs "
              << rep.jobs()
              << " wall-clock for the same grid;\nmodel finish times are "
                 "asserted identical — parallelism never changes "
                 "results.\n";
  }
  return rep.finish();
}

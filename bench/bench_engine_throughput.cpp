// Wall-clock throughput of the LogP discrete-event engine itself: how many
// engine events per second each scheduler core sustains, measured on the
// workloads the paper's experiments lean on. This is the perf trajectory
// anchor for the scheduler rewrite — the calendar/bucket queue
// (SchedulerKind::Bucket) versus the original priority-queue baseline
// (SchedulerKind::ReferenceHeap) — so BENCH_engine.json records events/sec,
// model finish times, and the bucket/heap speedup per workload.
//
// It also anchors two sweep-runner trajectories on a deterministic
// model-time grid:
//   * sweep_scaling — the grid run with --jobs 1 and --jobs max(2, hw),
//     model results asserted identical, both wall clocks recorded
//     (`sweep_speedup` = serial/parallel);
//   * cache_replay — the grid run cold and then warm against a private
//     scratch cache directory (DESIGN.md §10), results asserted
//     identical, `cache_replay_speedup` = cold/warm. This is the
//     "unchanged grid points are free" claim, measured.
//
//   bench_engine_throughput --json BENCH_engine.json
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/cache/point_cache.h"
#include "src/core/alloc_counter.h"
#include "src/core/parallel.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"

using namespace bsplogp;

namespace {

struct Workload {
  std::string name;
  logp::Params prm;
  ProcId p;
  logp::DeliverySchedule delivery;
  std::vector<logp::ProgramFn> progs;
};

struct Measurement {
  double events_per_sec = 0;
  std::int64_t events = 0;
  Time finish = 0;
  int reps = 0;
  // Steady-state allocator traffic per event across the timed loop, via
  // core::AllocCounter (-1 when the counting hooks are not linked, e.g.
  // sanitizer builds). The zero-allocation engine claim, as a trajectory
  // metric: any O(events) allocation regression shows up here long before
  // it dominates wall-clock.
  double allocs_per_event = -1;
  double bytes_per_event = -1;
};

Measurement measure_once(const Workload& w, logp::SchedulerKind sched,
                         double min_seconds) {
  logp::Machine::Options o;
  o.scheduler = sched;
  o.delivery = w.delivery;
  logp::Machine machine(w.p, w.prm, o);
  const std::span<const logp::ProgramFn> progs(w.progs);

  Measurement out;
  out.finish = machine.run(progs).finish_time;  // warmup (untimed)

  using clock = std::chrono::steady_clock;
  const auto alloc0 = core::AllocCounter::now();
  double elapsed = 0;
  while (elapsed < min_seconds) {
    const auto t0 = clock::now();
    const logp::RunStats& st = machine.run(progs);
    elapsed += std::chrono::duration<double>(clock::now() - t0).count();
    out.events += st.events_processed;
    out.reps += 1;
  }
  out.events_per_sec = static_cast<double>(out.events) / elapsed;
  if (core::AllocCounter::installed() && out.events > 0) {
    const auto d = core::AllocCounter::since(alloc0);
    out.allocs_per_event =
        static_cast<double>(d.allocs) / static_cast<double>(out.events);
    out.bytes_per_event =
        static_cast<double>(d.bytes) / static_cast<double>(out.events);
  }
  return out;
}

/// measure_once() under --repeat N: the median-throughput repetition wins,
/// so one preempted slice on a loaded runner cannot crater a trajectory
/// metric. Model results (finish, events/run) are identical across
/// repetitions by determinism; only the wall-clock rate varies.
Measurement measure(const Workload& w, logp::SchedulerKind sched,
                    double min_seconds, int repeat) {
  std::vector<Measurement> runs;
  runs.reserve(static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r)
    runs.push_back(measure_once(w, sched, min_seconds));
  std::sort(runs.begin(), runs.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.events_per_sec < b.events_per_sec;
            });
  return runs[runs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "engine_throughput");
  rep.use_workloads({"hotspot", "all-to-all"});
  auto& s = rep.series(
      "throughput",
      {"workload", "p", "events/run", "bucket ev/s", "heap ev/s", "speedup",
       "model finish"});
  auto& micro_series = rep.series(
      "micro_engine", {"p", "k", "events/run", "bucket ev/s", "model finish"});
  auto& sweep_series = rep.series(
      "sweep_scaling",
      {"grid points", "jobs", "wall s", "speedup", "model times equal"});
  auto& micro_sweep_series = rep.series(
      "micro_sweep", {"grid points", "jobs", "wall s", "points/s", "speedup"});
  auto& replay_series = rep.series(
      "cache_replay", {"grid points", "cold s", "warm s", "speedup", "hits",
                       "results equal"});
  if (rep.list()) return rep.finish();

  const double min_seconds = rep.smoke() ? 0.01 : 0.4;

  std::vector<Workload> workloads;
  if (rep.smoke()) {
    workloads.push_back(Workload{"hotspot", logp::Params{64, 1, 2}, 9,
                                 logp::DeliverySchedule::Earliest,
                                 workload::hotspot(9, 2)});
    workloads.push_back(Workload{"alltoall", logp::Params{16, 1, 2}, 8,
                                 logp::DeliverySchedule::Latest,
                                 workload::all_to_all(8)});
  } else {
    workloads.push_back(Workload{"hotspot", logp::Params{256, 1, 2}, 256,
                                 logp::DeliverySchedule::Earliest,
                                 workload::hotspot(256, 4)});
    workloads.push_back(Workload{"hotspot_smallcap", logp::Params{16, 1, 4},
                                 65, logp::DeliverySchedule::Latest,
                                 workload::hotspot(65, 8)});
    workloads.push_back(Workload{"alltoall", logp::Params{16, 1, 2}, 128,
                                 logp::DeliverySchedule::Latest,
                                 workload::all_to_all(128)});
  }

  std::cout << "Engine scheduler throughput: calendar/bucket queue vs the "
               "priority-queue baseline\n\n";
  for (const Workload& w : workloads) {
    const Measurement bucket =
        measure(w, logp::SchedulerKind::Bucket, min_seconds, rep.repeat());
    const Measurement heap = measure(w, logp::SchedulerKind::ReferenceHeap,
                                     min_seconds, rep.repeat());
    // Same seed + options => identical model results across schedulers.
    if (bucket.finish != heap.finish || bucket.events / bucket.reps !=
                                            heap.events / heap.reps) {
      std::cerr << "scheduler divergence on " << w.name << "!\n";
      return 1;
    }
    const double speedup = bucket.events_per_sec / heap.events_per_sec;
    s.row({w.name, w.p, bucket.events / bucket.reps,
           bench::Cell(bucket.events_per_sec, 0),
           bench::Cell(heap.events_per_sec, 0), bench::Cell(speedup, 2),
           bucket.finish});
    rep.metric("events_per_sec_bucket_" + w.name, bucket.events_per_sec);
    rep.metric("events_per_sec_heap_" + w.name, heap.events_per_sec);
    rep.metric("speedup_" + w.name, speedup);
    rep.metric("allocs_per_event_" + w.name, bucket.allocs_per_event);
    rep.metric("bytes_per_event_" + w.name, bucket.bytes_per_event);
    if (rep.trace_sink() != nullptr) {
      // One extra traced run per workload, outside the timed loops above:
      // the throughput numbers always measure the sink-free path.
      logp::Machine::Options o;
      o.scheduler = logp::SchedulerKind::Bucket;
      o.delivery = w.delivery;
      o.sink = rep.trace_sink();
      logp::Machine machine(w.p, w.prm, o);
      (void)machine.run(std::span<const logp::ProgramFn>(w.progs));
    }
  }
  s.print(std::cout);
  std::cout << "\nspeedup = bucket events/sec over the priority-queue "
               "baseline; both schedulers\nreplay the identical event "
               "sequence (RunStats are bit-identical per seed).\n\n";
  rep.metric("hardware_jobs", static_cast<std::int64_t>(core::hardware_jobs()));

  // Raw-engine micro series: one machine reused across runs at large p, so
  // this tracks exactly what the proc arena + ring buffers + bitmap rank
  // were built for — per-run cost with zero steady-state allocation. k
  // shrinks as p grows to keep the event count per run comparable.
  {
    struct MicroPoint {
      ProcId p;
      Time k;
    };
    const std::vector<MicroPoint> points =
        rep.smoke() ? std::vector<MicroPoint>{{17, 2}, {65, 1}, {129, 1}}
                    : std::vector<MicroPoint>{{256, 4}, {4096, 2}, {65536, 1}};
    for (const MicroPoint& mp : points) {
      const Workload w{"micro_hotspot", logp::Params{256, 1, 2}, mp.p,
                       logp::DeliverySchedule::Earliest,
                       workload::hotspot(mp.p, mp.k)};
      const Measurement m = measure(w, logp::SchedulerKind::Bucket,
                                    min_seconds / 2, rep.repeat());
      micro_series.row({mp.p, static_cast<std::int64_t>(mp.k),
                        m.events / m.reps, bench::Cell(m.events_per_sec, 0),
                        m.finish});
      rep.metric("micro_events_per_sec_p" + std::to_string(mp.p),
                 m.events_per_sec);
      rep.metric("micro_allocs_per_event_p" + std::to_string(mp.p),
                 m.allocs_per_event);
    }
    micro_series.print(std::cout);
    std::cout << "\nmicro_engine = bucket-scheduler hotspot throughput as p "
                 "grows; one machine is\nreused across runs, so the series "
                 "isolates steady-state engine cost.\n\n";
  }

  // The shared deterministic model-time grid behind both trajectory
  // sections below. Point results are a pure function of (p, k).
  struct Point {
    ProcId p;
    Time k;
  };
  std::vector<Point> grid;
  {
    const std::vector<ProcId> ps =
        rep.smoke() ? std::vector<ProcId>{9, 17}
                    : std::vector<ProcId>{17, 33, 65, 97, 129};
    const std::vector<Time> ks = rep.smoke() ? std::vector<Time>{1, 2}
                                             : std::vector<Time>{2, 4, 8, 16};
    for (const ProcId p : ps)
      for (const Time k : ks) grid.push_back(Point{p, k});
  }
  const std::function<Time(std::size_t)> compute_point = [&](std::size_t i) {
    logp::Machine m(grid[i].p, logp::Params{16, 1, 2});
    return m.run(workload::hotspot(grid[i].p, grid[i].k)).finish_time;
  };
  const std::function<cache::PointKey(std::size_t)> point_key =
      [&](std::size_t i) {
        return cache::PointKey{"sweep;p=" + std::to_string(grid[i].p) +
                               ";k=" + std::to_string(grid[i].k) +
                               ";L=16;o=1;G=2"};
      };
  auto run_grid = [&](int jobs, cache::PointCache* pc, core::ThreadPool* pool,
                      double* seconds) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const bench::SweepRunner grid_runner(jobs, pc, pool);
    auto finishes =
        pc != nullptr
            ? grid_runner.map<Time>(grid.size(), point_key,
                                           compute_point)
            : grid_runner.map<Time>(grid.size(), compute_point);
    *seconds = std::chrono::duration<double>(clock::now() - t0).count();
    return finishes;
  };

  // SweepRunner scaling: --jobs 1 vs --jobs max(2, hw) on the grid, both
  // rows recorded. Model times must be identical (the sweep contract);
  // the wall-clock ratio is the `sweep_speedup` trajectory metric. The
  // parallel leg reuses one persistent pool — spawned before the clock
  // starts, exactly as a multi-grid bench would hold it — and each leg
  // gets one untimed warm-up pass so neither side pays first-touch costs.
  // Smoke runs stick to the harness --jobs value to stay cheap.
  {
    const int par_jobs = rep.smoke() ? std::max(2, rep.jobs())
                                     : std::max(2, core::hardware_jobs());
    core::ThreadPool pool(par_jobs - 1);
    double serial_s = 0, parallel_s = 0, warm = 0;
    (void)run_grid(1, nullptr, nullptr, &warm);
    (void)run_grid(par_jobs, nullptr, &pool, &warm);
    const auto serial = run_grid(1, nullptr, nullptr, &serial_s);
    const auto parallel = run_grid(par_jobs, nullptr, &pool, &parallel_s);
    const bool equal = serial == parallel;
    if (!equal) {
      std::cerr << "sweep model times diverge between --jobs 1 and --jobs "
                << par_jobs << "!\n";
      return 1;
    }
    const double sweep_speedup = serial_s / parallel_s;
    sweep_series.row({static_cast<std::int64_t>(grid.size()), 1,
                      bench::Cell(serial_s, 3), bench::Cell(1.0, 2),
                      equal ? "yes" : "NO"});
    sweep_series.row({static_cast<std::int64_t>(grid.size()), par_jobs,
                      bench::Cell(parallel_s, 3),
                      bench::Cell(sweep_speedup, 2), equal ? "yes" : "NO"});
    sweep_series.print(std::cout);
    rep.metric("sweep_speedup", sweep_speedup);
    rep.metric("sweep_jobs", static_cast<std::int64_t>(par_jobs));
    rep.metric("sweep_serial_s", serial_s);
    rep.metric("sweep_parallel_s", parallel_s);
    std::cout << "\nsweep_speedup = --jobs 1 wall-clock over --jobs "
              << par_jobs
              << " wall-clock for the same grid;\nmodel finish times are "
                 "asserted identical — parallelism never changes "
                 "results.\n\n";
  }

  // Sweep-size micro series: the base grid tiled to {20, 200, 2000} points
  // and run at jobs {1, 2, hw} (deduped). Small grids expose dispatch
  // overhead (chunk claims, pool hand-off), large ones the steady-state
  // point rate; together they locate where parallel sweeps start paying
  // off on a given host.
  {
    const std::vector<std::size_t> sizes =
        rep.smoke() ? std::vector<std::size_t>{4, 8}
                    : std::vector<std::size_t>{20, 200, 2000};
    std::vector<int> job_counts{1, 2};
    if (!rep.smoke() && core::hardware_jobs() > 2)
      job_counts.push_back(core::hardware_jobs());
    const std::function<Time(std::size_t)> tiled_point = [&](std::size_t i) {
      const std::size_t b = i % grid.size();
      logp::Machine m(grid[b].p, logp::Params{16, 1, 2});
      return m.run(workload::hotspot(grid[b].p, grid[b].k)).finish_time;
    };
    const int max_workers =
        *std::max_element(job_counts.begin(), job_counts.end()) - 1;
    core::ThreadPool pool(max_workers);
    for (const std::size_t n : sizes) {
      double base_s = 0;
      for (const int jobs : job_counts) {
        // SweepRunner caps useful parallelism at its jobs value even when
        // the shared pool is wider; a jobs-limited chunk count keeps the
        // extra workers idle, so one max-width pool serves every leg.
        using clock = std::chrono::steady_clock;
        core::ThreadPool* p = jobs > 1 ? &pool : nullptr;
        auto leg = [&](double* seconds) {
          const auto t0 = clock::now();
          const bench::SweepRunner r(jobs, nullptr, p);
          auto out = r.map<Time>(n, tiled_point);
          *seconds =
              std::chrono::duration<double>(clock::now() - t0).count();
          return out;
        };
        double warm_s = 0, wall_s = 0;
        (void)leg(&warm_s);  // untimed warm-up
        (void)leg(&wall_s);
        if (jobs == 1) base_s = wall_s;
        const double pps = static_cast<double>(n) / wall_s;
        const double speedup = base_s / wall_s;
        micro_sweep_series.row({static_cast<std::int64_t>(n), jobs,
                                bench::Cell(wall_s, 4), bench::Cell(pps, 0),
                                bench::Cell(speedup, 2)});
        rep.metric("micro_sweep_pps_n" + std::to_string(n) + "_j" +
                       std::to_string(jobs),
                   pps);
      }
    }
    micro_sweep_series.print(std::cout);
    std::cout << "\nmicro_sweep = grid points/sec as the grid grows and jobs "
                 "scale; speedup is\nrelative to the jobs-1 leg of the same "
                 "grid size (persistent pool, warmed legs).\n\n";
  }

  // Cache replay: the same grid computed cold into a scratch cache
  // directory, then replayed warm from it. Warm results must equal cold
  // ones and every point must hit; the wall-clock ratio is the
  // `cache_replay_speedup` trajectory metric (target: >= 5x on full
  // sweeps — replayed points skip machine construction entirely).
  {
    namespace fs = std::filesystem;
    const fs::path replay_dir =
        fs::temp_directory_path() /
        ("bsplogp_replay_" + std::to_string(::getpid()));
    fs::remove_all(replay_dir);
    double cold_s = 0, warm_s = 0;
    std::vector<Time> cold, warm;
    cache::Stats warm_stats;
    {
      cache::PointCache pc(cache::Mode::kOn, replay_dir.string(),
                           "engine_throughput", "hotspot");
      cold = run_grid(1, &pc, nullptr, &cold_s);
    }
    {
      cache::PointCache pc(cache::Mode::kOn, replay_dir.string(),
                           "engine_throughput", "hotspot");
      warm = run_grid(1, &pc, nullptr, &warm_s);
      warm_stats = pc.stats();
    }
    fs::remove_all(replay_dir);
    const bool equal = warm == cold;
    if (!equal ||
        warm_stats.hits != static_cast<std::int64_t>(grid.size())) {
      std::cerr << "cache replay diverged: results equal=" << equal
                << ", hits=" << warm_stats.hits << "/" << grid.size()
                << "\n";
      return 1;
    }
    const double replay_speedup = cold_s / warm_s;
    replay_series.row({static_cast<std::int64_t>(grid.size()),
                       bench::Cell(cold_s, 3), bench::Cell(warm_s, 3),
                       bench::Cell(replay_speedup, 2), warm_stats.hits,
                       equal ? "yes" : "NO"});
    replay_series.print(std::cout);
    rep.metric("cache_replay_speedup", replay_speedup);
    rep.metric("cache_replay_hits", warm_stats.hits);
    std::cout << "\ncache_replay_speedup = cold wall-clock over warm "
                 "wall-clock for the same grid;\nwarm results are asserted "
                 "identical to cold — replay never changes results.\n";
  }
  return rep.finish();
}

// Wall-clock throughput of the LogP discrete-event engine itself: how many
// engine events per second each scheduler core sustains, measured on the
// workloads the paper's experiments lean on. This is the perf trajectory
// anchor for the scheduler rewrite — the calendar/bucket queue
// (SchedulerKind::Bucket) versus the original priority-queue baseline
// (SchedulerKind::ReferenceHeap) — so BENCH_engine.json records events/sec,
// model finish times, and the bucket/heap speedup per workload.
//
//   bench_engine_throughput --json BENCH_engine.json
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/logp/machine.h"

using namespace bsplogp;

namespace {

struct Workload {
  std::string name;
  logp::Params prm;
  ProcId p;
  logp::DeliverySchedule delivery;
  std::vector<logp::ProgramFn> progs;
};

/// Hotspot: every other processor fires k messages at processor 0. The
/// acceptance queue stays long (heavy Stalling Rule traffic) and processor
/// 0's delivery window stays full — the exact pattern that stressed the
/// std::set delivery slots and the priority queue.
Workload hotspot(std::string name, ProcId p, Time k, logp::Params prm,
                 logp::DeliverySchedule delivery) {
  std::vector<logp::ProgramFn> progs;
  progs.emplace_back([p, k](logp::Proc& pr) -> logp::Task<> {
    for (Time j = 0; j < static_cast<Time>(p - 1) * k; ++j)
      (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([k](logp::Proc& pr) -> logp::Task<> {
      for (Time j = 0; j < k; ++j) co_await pr.send(0, j);
    });
  return Workload{std::move(name), prm, p, delivery, std::move(progs)};
}

/// All-to-all: p(p-1) messages, deep event queue, every destination's
/// window active at once.
Workload all_to_all(std::string name, ProcId p, logp::Params prm) {
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([p](logp::Proc& pr) -> logp::Task<> {
      for (ProcId d = 1; d < p; ++d)
        co_await pr.send(static_cast<ProcId>((pr.id() + d) % p), d);
      for (ProcId kk = 1; kk < p; ++kk) (void)co_await pr.recv();
    });
  return Workload{std::move(name), prm, p, logp::DeliverySchedule::Latest,
                  std::move(progs)};
}

struct Measurement {
  double events_per_sec = 0;
  std::int64_t events = 0;
  Time finish = 0;
  int reps = 0;
};

Measurement measure(const Workload& w, logp::SchedulerKind sched,
                    double min_seconds) {
  logp::Machine::Options o;
  o.scheduler = sched;
  o.delivery = w.delivery;
  logp::Machine machine(w.p, w.prm, o);
  const std::span<const logp::ProgramFn> progs(w.progs);

  Measurement out;
  out.finish = machine.run(progs).finish_time;  // warmup (untimed)

  using clock = std::chrono::steady_clock;
  double elapsed = 0;
  while (elapsed < min_seconds) {
    const auto t0 = clock::now();
    const logp::RunStats st = machine.run(progs);
    elapsed += std::chrono::duration<double>(clock::now() - t0).count();
    out.events += st.events_processed;
    out.reps += 1;
  }
  out.events_per_sec = static_cast<double>(out.events) / elapsed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "engine_throughput");
  const double min_seconds = rep.smoke() ? 0.01 : 0.4;

  std::vector<Workload> workloads;
  if (rep.smoke()) {
    workloads.push_back(hotspot("hotspot", 9, 2, logp::Params{64, 1, 2},
                                logp::DeliverySchedule::Earliest));
    workloads.push_back(all_to_all("alltoall", 8, logp::Params{16, 1, 2}));
  } else {
    workloads.push_back(hotspot("hotspot", 256, 4, logp::Params{256, 1, 2},
                                logp::DeliverySchedule::Earliest));
    workloads.push_back(hotspot("hotspot_smallcap", 65, 8,
                                logp::Params{16, 1, 4},
                                logp::DeliverySchedule::Latest));
    workloads.push_back(all_to_all("alltoall", 128, logp::Params{16, 1, 2}));
  }

  std::cout << "Engine scheduler throughput: calendar/bucket queue vs the "
               "priority-queue baseline\n\n";
  auto& s = rep.series(
      "throughput",
      {"workload", "p", "events/run", "bucket ev/s", "heap ev/s", "speedup",
       "model finish"});
  for (const Workload& w : workloads) {
    const Measurement bucket =
        measure(w, logp::SchedulerKind::Bucket, min_seconds);
    const Measurement heap =
        measure(w, logp::SchedulerKind::ReferenceHeap, min_seconds);
    // Same seed + options => identical model results across schedulers.
    if (bucket.finish != heap.finish || bucket.events / bucket.reps !=
                                            heap.events / heap.reps) {
      std::cerr << "scheduler divergence on " << w.name << "!\n";
      return 1;
    }
    const double speedup = bucket.events_per_sec / heap.events_per_sec;
    s.row({w.name, w.p, bucket.events / bucket.reps,
           bench::Cell(bucket.events_per_sec, 0),
           bench::Cell(heap.events_per_sec, 0), bench::Cell(speedup, 2),
           bucket.finish});
    rep.metric("events_per_sec_bucket_" + w.name, bucket.events_per_sec);
    rep.metric("events_per_sec_heap_" + w.name, heap.events_per_sec);
    rep.metric("speedup_" + w.name, speedup);
    if (rep.trace_sink() != nullptr) {
      // One extra traced run per workload, outside the timed loops above:
      // the throughput numbers always measure the sink-free path.
      logp::Machine::Options o;
      o.scheduler = logp::SchedulerKind::Bucket;
      o.delivery = w.delivery;
      o.sink = rep.trace_sink();
      logp::Machine machine(w.p, w.prm, o);
      (void)machine.run(std::span<const logp::ProgramFn>(w.progs));
    }
  }
  s.print(std::cout);
  std::cout << "\nspeedup = bucket events/sec over the priority-queue "
               "baseline; both schedulers\nreplay the identical event "
               "sequence (RunStats are bit-identical per seed).\n";
  return rep.finish();
}

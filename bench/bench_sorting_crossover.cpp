// E6 (Section 4.2): the two sorting schemes inside Theorem 2's router and
// their crossover in r (messages per processor).
//
//   AKS-based (here: bitonic merge-split) — O((Gr + L) log^2 p) model time
//   with our substitution (the paper's AKS gives log p; see DESIGN.md) —
//   wins for small r.
//   Cubesort-based (here: Leighton Columnsort) — O(T_seq-sort(r) + Gr + L)
//   once r >= 2(p-1)^2 — wins for large r (the paper's r = p^eps regime).
//
// We route one-superstep random r-regular relations through BspOnLogp with
// each sort method forced, and report the simulated times and the winner.
#include <iostream>

#include "bench/harness.h"
#include "src/bsp/machine.h"
#include "src/core/rng.h"
#include "src/routing/h_relation.h"
#include "src/xsim/bsp_on_logp.h"

using namespace bsplogp;

namespace {

std::vector<std::unique_ptr<bsp::ProcProgram>> relation_program(
    const routing::HRelation& rel) {
  auto messages = std::make_shared<std::vector<std::vector<Message>>>(
      static_cast<std::size_t>(rel.nprocs()));
  for (const Message& m : rel.messages())
    (*messages)[static_cast<std::size_t>(m.src)].push_back(m);
  return bsp::make_programs(rel.nprocs(), [messages](bsp::Ctx& c) {
    if (c.superstep() == 0) {
      for (const Message& m :
           (*messages)[static_cast<std::size_t>(c.pid())])
        c.send(m.dst, m.payload, m.tag);
      return true;
    }
    return false;
  });
}

Time simulate(const routing::HRelation& rel, const logp::Params& prm,
              xsim::SortMethod method) {
  auto progs = relation_program(rel);
  xsim::BspOnLogpOptions opt;
  opt.sort = method;
  xsim::BspOnLogp sim(rel.nprocs(), prm, opt);
  const auto rep = sim.run(progs);
  if (!rep.logp.stall_free() || rep.schedule_violations != 0)
    std::cerr << "WARNING: unclean run (method "
              << static_cast<int>(method) << ")\n";
  return rep.logp.finish_time;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "sorting_crossover");
  const ProcId p = 8;  // columnsort threshold 2(p-1)^2 = 98
  const logp::Params prm{16, 1, 2};
  std::cout << "E6 / Section 4.2: sorting-scheme crossover at p=" << p
            << " (columnsort validity threshold r >= " << 2 * (p - 1) * (p - 1)
            << ")\nLogP machine: L=16, o=1, G=2\n\n";
  core::Rng rng(31);

  auto& table = rep.series(
      "crossover", {"r (=h)", "bitonic time", "columnsort time", "winner",
                    "col/bit ratio"});
  const std::vector<Time> rs =
      rep.smoke() ? std::vector<Time>{1, 16, 128}
                  : std::vector<Time>{1, 4, 16, 64, 128, 256, 512, 1024};
  for (const Time r : rs) {
    const auto rel = routing::random_regular(p, r, rng);
    const Time tb = simulate(rel, prm, xsim::SortMethod::Bitonic);
    const Time tc = simulate(rel, prm, xsim::SortMethod::Columnsort);
    table.row({r, tb, tc, tb <= tc ? "bitonic" : "columnsort",
               bench::Cell(static_cast<double>(tc) /
                               static_cast<double>(tb),
                           2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: bitonic (AKS stand-in) wins while r is "
               "below the columnsort\nvalidity threshold (the forced "
               "columnsort pays padding up to 2(p-1)^2);\npast the "
               "threshold columnsort takes over and the ratio drops "
               "below 1 — the\npaper's small-r vs r = p^eps crossover.\n";
  return rep.finish();
}

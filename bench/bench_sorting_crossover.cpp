// E6 (Section 4.2): the two sorting schemes inside Theorem 2's router and
// their crossover in r (messages per processor).
//
//   AKS-based (here: bitonic merge-split) — O((Gr + L) log^2 p) model time
//   with our substitution (the paper's AKS gives log p; see DESIGN.md) —
//   wins for small r.
//   Cubesort-based (here: Leighton Columnsort) — O(T_seq-sort(r) + Gr + L)
//   once r >= 2(p-1)^2 — wins for large r (the paper's r = p^eps regime).
//
// We route one-superstep random r-regular relations through BspOnLogp with
// each sort method forced, and report the simulated times and the winner.
#include <iostream>

#include "bench/harness.h"
#include "src/core/rng.h"
#include "src/routing/h_relation.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"

using namespace bsplogp;

namespace {

Time simulate(const routing::HRelation& rel, const logp::Params& prm,
              xsim::SortMethod method, bool* clean) {
  auto progs = workload::relation_step(rel);
  xsim::BspOnLogpOptions opt;
  opt.sort = method;
  xsim::BspOnLogp sim(rel.nprocs(), prm, opt);
  const auto rep = sim.run(progs);
  if (!rep.logp.stall_free() || rep.schedule_violations != 0) *clean = false;
  return rep.logp.finish_time;
}

struct PointResult {
  Time bitonic = 0;
  Time columnsort = 0;
  bool clean = true;

  template <class Ar>
  void io(Ar& ar) {
    ar(bitonic);
    ar(columnsort);
    ar(clean);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "sorting_crossover");
  rep.use_workloads({"h-relation-step"});
  const ProcId p = 8;  // columnsort threshold 2(p-1)^2 = 98
  const logp::Params prm{16, 1, 2};
  auto& table = rep.series(
      "crossover", {"r (=h)", "bitonic time", "columnsort time", "winner",
                    "col/bit ratio"});
  if (rep.list()) return rep.finish();

  std::cout << "E6 / Section 4.2: sorting-scheme crossover at p=" << p
            << " (columnsort validity threshold r >= " << 2 * (p - 1) * (p - 1)
            << ")\nLogP machine: L=16, o=1, G=2\n\n";
  // --deep appends to the full grid (point keys include the index, so an
  // extension must never shift existing points): the nightly farm run
  // with a warm cache replays the regular r values and farms the tail.
  std::vector<Time> rs = rep.smoke()
                             ? std::vector<Time>{1, 16, 128}
                             : std::vector<Time>{1,   4,   16,  64,
                                                 128, 256, 512, 1024};
  if (rep.deep() && !rep.smoke()) {
    rs.push_back(2048);
    rs.push_back(4096);
  }

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      rs.size(),
      [&](std::size_t i) {
        // Relations come from rng_for_index(31, i): index in the key.
        return cache::PointKey{"p=" + std::to_string(p) + ";r=" +
                                   std::to_string(rs[i]) + ";i=" +
                                   std::to_string(i) + ";L=" +
                                   std::to_string(prm.L) + ";o=" +
                                   std::to_string(prm.o) + ";G=" +
                                   std::to_string(prm.G),
                               31};
      },
      [&](std::size_t i) {
    core::Rng rng = core::rng_for_index(31, i);
    const auto rel = routing::random_regular(p, rs[i], rng);
    PointResult r;
    r.bitonic = simulate(rel, prm, xsim::SortMethod::Bitonic, &r.clean);
    r.columnsort = simulate(rel, prm, xsim::SortMethod::Columnsort, &r.clean);
    return r;
  });

  for (std::size_t i = 0; i < rs.size(); ++i) {
    const PointResult& r = results[i];
    if (!r.clean)
      bench::Reporter::diag("WARNING: unclean run at r=" +
                            std::to_string(rs[i]));
    table.row({rs[i], r.bitonic, r.columnsort,
               r.bitonic <= r.columnsort ? "bitonic" : "columnsort",
               bench::Cell(static_cast<double>(r.columnsort) /
                               static_cast<double>(r.bitonic),
                           2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: bitonic (AKS stand-in) wins while r is "
               "below the columnsort\nvalidity threshold (the forced "
               "columnsort pays padding up to 2(p-1)^2);\npast the "
               "threshold columnsort takes over and the ratio drops "
               "below 1 — the\npaper's small-r vs r = p^eps crossover.\n";
  return rep.finish();
}

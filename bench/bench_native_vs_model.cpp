// Measured vs modeled: do the paper's cost formulas predict this machine?
//
// For each core count p the bench first FITS the machine constants the
// Culler way (src/native/fit.h): barrier supersteps give l, full-exchange
// slopes give g, staged microbenchmarks give (L, o, G). It then runs a
// panel of registry workloads on the native shared-memory backend
// (src/native) with a wall clock, prices the very same programs with the
// fitted parameters (bsp::Machine accounting / logp::Machine simulation at
// 1 step = 1 ns), and reports measured/predicted per (workload, model, p).
//
// A ratio near 1 means the model's formula transfers to real threads; a
// systematic drift is itself a result (the models deliberately ignore
// memory hierarchy and contention beyond their parameters — Section 2 of
// the paper). Everything here is wall-clock and machine-dependent by
// design, so this bench registers no jobs-determinism or cache-replay
// checks and runs serially.
#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/bsp/machine.h"
#include "src/core/parallel.h"
#include "src/logp/machine.h"
#include "src/native/bsp_exec.h"
#include "src/native/fit.h"
#include "src/native/logp_exec.h"
#include "src/trace/sink.h"
#include "src/workload/workload.h"

namespace bsplogp {
namespace {

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

workload::Spec panel_spec(ProcId p, bool smoke) {
  workload::Spec spec;
  spec.p = p;
  spec.k = smoke ? 2 : 8;       // hotspot msgs/sender, relation degree h
  spec.rounds = smoke ? 2 : 8;  // ring-shift rounds, fuzz supersteps
  spec.seed = 42;
  return spec;
}

int run(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "native_vs_model");
  rep.use_workloads({"all-to-all", "ring-shift", "hotspot", "h-relation-step",
                     "fuzz-supersteps"});
  bench::Series& fits = rep.series(
      "fits", {"p", "l_ns", "g_ns", "L_ns", "o_ns", "G_ns"});
  bench::Series& rows = rep.series(
      "native_vs_model",
      {"workload", "model", "p", "measured_ns", "predicted_ns", "ratio"});
  if (rep.list()) return rep.finish();

  const std::vector<ProcId> core_counts =
      rep.smoke() ? std::vector<ProcId>{2} : std::vector<ProcId>{2, 4, 8};
  const int reps = rep.smoke() ? 3 : 9;

  native::FitOptions fit_options;
  if (rep.smoke()) {
    fit_options.barrier_reps = 50;
    fit_options.exchange_reps = 5;
    fit_options.pingpong_reps = 50;
    fit_options.flood_msgs = 500;
    fit_options.overhead_reps = 2000;
  }

  // One warm pool sized for the largest p, shared by fits and runs, so
  // thread start-up never pollutes a measurement.
  core::ThreadPool pool(static_cast<int>(core_counts.back()) - 1);

  // Native LogP emits from p threads at once; the Chrome trace sink is
  // single-threaded, so traced native runs go through the serializer.
  std::optional<trace::MutexSink> traced;
  if (rep.trace_sink() != nullptr) traced.emplace(rep.trace_sink());

  double log_ratio_sum = 0;
  int ratio_count = 0;

  for (const ProcId p : core_counts) {
    const native::BspFit bsp_fit = native::fit_bsp(p, &pool, fit_options);
    const native::LogpFit logp_fit = native::fit_logp(p, &pool, fit_options);
    fits.row({static_cast<std::int64_t>(p), bsp_fit.l_ns, bsp_fit.g_ns,
              logp_fit.L_ns, logp_fit.o_ns, logp_fit.G_ns});
    const bsp::Params bsp_params = bsp_fit.params();
    const logp::Params logp_params = logp_fit.params();
    const workload::Spec spec = panel_spec(p, rep.smoke());

    for (const workload::Entry& entry : workload::registry()) {
      const bool in_panel =
          entry.name == "all-to-all" || entry.name == "ring-shift" ||
          entry.name == "hotspot" || entry.name == "h-relation-step" ||
          entry.name == "fuzz-supersteps";
      if (!in_panel) continue;

      if (entry.logp) {
        const auto programs = entry.logp(spec);
        native::NativeLogpOptions options;
        options.pool = &pool;
        options.sink = traced ? &*traced : nullptr;
        std::vector<double> walls;
        for (int r = 0; r < reps; ++r)
          walls.push_back(native::run_logp(programs, logp_params, options)
                              .wall_ns);
        logp::Machine machine(p, logp_params);
        const double predicted =
            static_cast<double>(machine.run(programs).finish_time);
        const double measured = median(walls);
        const double ratio = measured / std::max(predicted, 1.0);
        rows.row({entry.name, "logp", static_cast<std::int64_t>(p), measured,
                  predicted, ratio});
        log_ratio_sum += std::log(ratio);
        ratio_count += 1;
      }

      if (entry.bsp) {
        // BSP programs are stateful: fresh instances every repetition.
        native::NativeBspOptions options;
        options.pool = &pool;
        options.sink = rep.trace_sink();
        options.params = bsp_params;
        std::vector<double> walls;
        double predicted = 0;
        for (int r = 0; r < reps; ++r) {
          const auto programs = entry.bsp(spec);
          const native::NativeBspStats stats =
              native::run_bsp(programs, options);
          walls.push_back(stats.wall_ns);
          // The native model accounting equals bsp::Machine::run's
          // (differentially tested), so it doubles as the prediction.
          predicted = static_cast<double>(stats.model.finish_time);
        }
        const double measured = median(walls);
        const double ratio = measured / std::max(predicted, 1.0);
        rows.row({entry.name, "bsp", static_cast<std::int64_t>(p), measured,
                  predicted, ratio});
        log_ratio_sum += std::log(ratio);
        ratio_count += 1;
      }
    }
  }

  rep.metric("geomean_measured_over_predicted",
             std::exp(log_ratio_sum / std::max(ratio_count, 1)));
  rep.metric("panel_rows", static_cast<std::int64_t>(ratio_count));
  return rep.finish();
}

}  // namespace
}  // namespace bsplogp

int main(int argc, char** argv) { return bsplogp::run(argc, argv); }

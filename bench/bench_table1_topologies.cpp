// E7 (Table 1): bandwidth and latency parameters of prominent topologies.
//
// For each interconnection and several machine sizes we route random
// h-relations on the packet simulator, fit T(h) = gamma_hat*h + delta_hat,
// and print the fitted values next to the paper's analytic gamma(p),
// delta(p). The claim is about growth *rates*: gamma_hat should scale like
// the table's gamma column across p within each family (and likewise
// delta_hat / the diameter).
#include <iostream>

#include "bench/harness.h"
#include "src/net/packet_sim.h"
#include "src/net/topology.h"

using namespace bsplogp;

namespace {

struct Point {
  net::TopologyKind kind;
  ProcId p;
};

struct PointResult {
  std::int64_t nprocs = 0;
  std::int64_t nodes = 0;
  std::int64_t diameter = 0;
  double gamma_hat = 0;
  double analytic_gamma = 0;
  double delta_hat = 0;
  double analytic_delta = 0;
  double r_squared = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(nprocs);
    ar(nodes);
    ar(diameter);
    ar(gamma_hat);
    ar(analytic_gamma);
    ar(delta_hat);
    ar(analytic_delta);
    ar(r_squared);
  }
};

PointResult run_point(const Point& pt, const std::vector<Time>& hs,
                      int reps) {
  const net::Topology topo = net::make_topology(pt.kind, pt.p);
  const net::PacketSim sim(topo);
  const auto fit = net::fit_route_params(sim, hs, reps, 777);
  PointResult r;
  r.nprocs = static_cast<std::int64_t>(topo.nprocs());
  r.nodes = static_cast<std::int64_t>(topo.size());
  r.diameter = static_cast<std::int64_t>(topo.diameter());
  r.gamma_hat = fit.gamma_hat();
  r.analytic_gamma = topo.analytic_gamma();
  r.delta_hat = fit.delta_hat();
  r.analytic_delta = topo.analytic_delta();
  r.r_squared = fit.fit.r_squared;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "table1_topologies");
  const int reps = rep.smoke() ? 2 : 4;
  auto& table = rep.series(
      "fits", {"topology", "p(procs)", "nodes", "gamma_hat",
               "gamma(p) Table1", "delta_hat", "delta(p) Table1", "diam",
               "r^2"});
  if (rep.list()) return rep.finish();

  std::cout << "E7 / Table 1: empirical (gamma_hat, delta_hat) per "
               "topology via T(h) fits\n("
            << reps << " random h-regular relations per h in "
                       "{1,2,4,8,16,32})\n\n";
  const std::vector<Time> hs{1, 2, 4, 8, 16, 32};
  const std::vector<ProcId> ps = rep.smoke()
                                     ? std::vector<ProcId>{16}
                                     : std::vector<ProcId>{16, 64, 256};
  std::vector<Point> grid;
  for (const auto kind :
       {net::TopologyKind::Ring, net::TopologyKind::Mesh2D,
        net::TopologyKind::Mesh3D, net::TopologyKind::HypercubeMulti,
        net::TopologyKind::HypercubeSingle, net::TopologyKind::Butterfly,
        net::TopologyKind::CubeConnectedCycles,
        net::TopologyKind::ShuffleExchange, net::TopologyKind::MeshOfTrees})
    for (const ProcId p : ps) grid.push_back(Point{kind, p});

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      grid.size(),
      [&](std::size_t i) {
        // reps shapes the fit's sampled relations (seed 777 is fixed in
        // run_point), so it belongs in the key alongside the grid params.
        return cache::PointKey{"topo=" + net::to_string(grid[i].kind) +
                                   ";p=" + std::to_string(grid[i].p) +
                                   ";reps=" + std::to_string(reps),
                               777};
      },
      [&](std::size_t i) { return run_point(grid[i], hs, reps); });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PointResult& r = results[i];
    table.row({net::to_string(grid[i].kind), r.nprocs, r.nodes,
               bench::Cell(r.gamma_hat, 2), bench::Cell(r.analytic_gamma, 2),
               bench::Cell(r.delta_hat, 2), bench::Cell(r.analytic_delta, 2),
               r.diameter, bench::Cell(r.r_squared, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check (within each family, p x16 => ...): ring "
               "gamma ~ p; 2d mesh ~ sqrt(p);\n3d mesh ~ p^(1/3); "
               "multi-port hypercube gamma ~ 1 while single-port and the\n"
               "constant-degree log-diameter networks grow ~ log p; "
               "mesh-of-trees ~ sqrt(p)\nwith log p latency.\n";
  return rep.finish();
}

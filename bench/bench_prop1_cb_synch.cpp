// E3 (Propositions 1-2): Combine-and-Broadcast on the max{2, ceil(L/G)}-ary
// tree completes in T_CB = O(L log p / log(1 + ceil(L/G))), and this is
// optimal for CB. We measure T_CB across p for several capacity regimes
// and report the ratio to the formula L*log(p)/log(1+cap) — it should stay
// within a constant band per regime (the paper's constant is ~3(L+o)/L).
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"

using namespace bsplogp;

namespace {

struct Regime {
  logp::Params prm;
  const char* label;
};

struct Point {
  const Regime* regime;
  ProcId p;
};

struct PointResult {
  Time t = 0;
  bool stall_free = true;

  template <class Ar>
  void io(Ar& ar) {
    ar(t);
    ar(stall_free);
  }
};

PointResult run_point(const Point& pt) {
  logp::Machine machine(pt.p, pt.regime->prm);
  const auto st = machine.run(workload::cb_rounds(pt.p, 1));
  return PointResult{st.finish_time, st.stall_free()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "prop1_cb_synch");
  rep.use_workloads({"cb-rounds"});
  auto& table = rep.series(
      "cb_time", {"regime", "L", "G", "cap", "p", "T_CB", "formula",
                  "ratio"});
  if (rep.list()) return rep.finish();

  std::cout << "E3 / Propositions 1-2: Combine-and-Broadcast time\n"
               "T_CB = Theta(L log p / log(1 + ceil(L/G)))\n\n";
  const Regime regimes[] = {
      {{4, 1, 4}, "cap=1 (binary + parity rule)"},
      {{8, 1, 4}, "cap=2"},
      {{16, 1, 2}, "cap=8"},
      {{64, 1, 2}, "cap=32"},
  };
  const std::vector<ProcId> ps =
      rep.smoke() ? std::vector<ProcId>{4, 16}
                  : std::vector<ProcId>{4, 16, 64, 256, 1024};
  std::vector<Point> grid;
  for (const auto& regime : regimes)
    for (const ProcId p : ps) grid.push_back(Point{&regime, p});

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      grid.size(),
      [&](std::size_t i) {
        const logp::Params& prm = grid[i].regime->prm;
        return cache::PointKey{"L=" + std::to_string(prm.L) + ";o=" +
                               std::to_string(prm.o) + ";G=" +
                               std::to_string(prm.G) + ";p=" +
                               std::to_string(grid[i].p)};
      },
      [&](std::size_t i) { return run_point(grid[i]); });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& [prm, label] = *grid[i].regime;
    const ProcId p = grid[i].p;
    if (!results[i].stall_free)
      bench::Reporter::diag("WARNING: CB stalled at p=" + std::to_string(p));
    const double cap = static_cast<double>(prm.capacity());
    const double formula = static_cast<double>(prm.L) *
                           std::log2(static_cast<double>(p)) /
                           std::log2(1.0 + cap);
    table.row({label, prm.L, prm.G, prm.capacity(), p, results[i].t,
               bench::Cell(formula, 1),
               bench::Cell(static_cast<double>(results[i].t) / formula, 2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: within each regime the ratio stabilizes as "
               "p grows (the bound is\ntight up to the paper's ~3(L+o)/L "
               "constant); larger capacity => wider tree =>\nflatter "
               "growth in p.\n";
  return rep.finish();
}

// E3 (Propositions 1-2): Combine-and-Broadcast on the max{2, ceil(L/G)}-ary
// tree completes in T_CB = O(L log p / log(1 + ceil(L/G))), and this is
// optimal for CB. We measure T_CB across p for several capacity regimes
// and report the ratio to the formula L*log(p)/log(1+cap) — it should stay
// within a constant band per regime (the paper's constant is ~3(L+o)/L).
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"
#include "src/logp/machine.h"

using namespace bsplogp;

namespace {

Time measure_cb(ProcId p, const logp::Params& prm) {
  std::vector<logp::ProgramFn> progs;
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([i](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      (void)co_await algo::combine_broadcast(mb, i, algo::ReduceOp::Max);
    });
  logp::Machine machine(p, prm);
  const auto st = machine.run(progs);
  if (!st.stall_free())
    std::cerr << "WARNING: CB stalled at p=" << p << "\n";
  return st.finish_time;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "prop1_cb_synch");
  std::cout << "E3 / Propositions 1-2: Combine-and-Broadcast time\n"
               "T_CB = Theta(L log p / log(1 + ceil(L/G)))\n\n";
  struct Regime {
    logp::Params prm;
    const char* label;
  };
  const Regime regimes[] = {
      {{4, 1, 4}, "cap=1 (binary + parity rule)"},
      {{8, 1, 4}, "cap=2"},
      {{16, 1, 2}, "cap=8"},
      {{64, 1, 2}, "cap=32"},
  };
  auto& table = rep.series(
      "cb_time", {"regime", "L", "G", "cap", "p", "T_CB", "formula",
                  "ratio"});
  const std::vector<ProcId> ps =
      rep.smoke() ? std::vector<ProcId>{4, 16}
                  : std::vector<ProcId>{4, 16, 64, 256, 1024};
  for (const auto& [prm, label] : regimes) {
    for (const ProcId p : ps) {
      const Time t = measure_cb(p, prm);
      const double cap = static_cast<double>(prm.capacity());
      const double formula =
          static_cast<double>(prm.L) *
          std::log2(static_cast<double>(p)) / std::log2(1.0 + cap);
      table.row({label, prm.L, prm.G, prm.capacity(), p, t,
                 bench::Cell(formula, 1),
                 bench::Cell(static_cast<double>(t) / formula, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: within each regime the ratio stabilizes as "
               "p grows (the bound is\ntight up to the paper's ~3(L+o)/L "
               "constant); larger capacity => wider tree =>\nflatter "
               "growth in p.\n";
  return rep.finish();
}

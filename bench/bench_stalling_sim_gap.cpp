// E9 (Section 3): simulating *stalling* LogP programs on BSP.
//
// Theorem 1's constant-slowdown simulation assumes stall-freeness. For
// stalling programs the executor emulates the Stalling Rule (senders pause
// until the hot spot's bandwidth admits them), which keeps results faithful
// and every superstep's h bounded by O(ceil(L/G)) — but that acceptance
// schedule is computed by the simulator as an oracle. An implementable BSP
// program must compute it distributively; the paper's sort/prefix sketch
// costs O(log p) extra supersteps per stalling cycle, for an overall
// O(((l+g)/G) log p) slowdown. We report:
//   * native LogP time (the engine's exact Stalling Rule),
//   * the oracle-scheduled simulation's BSP time and slowdown,
//   * the preprocessed (implementable) charged time and slowdown,
//   * the paper's ((l+g)/G) log p bound.
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "src/logp/machine.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

std::vector<logp::ProgramFn> hotspot_program(ProcId p, Time k) {
  std::vector<logp::ProgramFn> progs;
  progs.emplace_back([p, k](logp::Proc& pr) -> logp::Task<> {
    for (Time j = 0; j < static_cast<Time>(p - 1) * k; ++j)
      (void)co_await pr.recv();
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([k](logp::Proc& pr) -> logp::Task<> {
      for (Time j = 0; j < k; ++j) co_await pr.send(0, j);
    });
  return progs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "stalling_sim_gap");
  const logp::Params prm{16, 1, 4};  // capacity 4
  std::cout << "E9 / Section 3: stalling LogP programs on BSP\n"
               "workload: all-to-one (stalls by design); L=16, o=1, G=4; "
               "BSP host g=G, l=L\n\n";

  auto& table = rep.series(
      "stalling_sim",
      {"p", "msgs", "T_LogP", "T_BSP(oracle)", "oracle slow",
       "T_BSP(preproc)", "preproc slow", "((l+g)/G)log p", "stalls",
       "overloaded steps"});
  const std::vector<ProcId> ps = rep.smoke()
                                     ? std::vector<ProcId>{9}
                                     : std::vector<ProcId>{9, 17, 33, 65};
  for (const ProcId p : ps) {
    const Time k = 2;
    logp::Machine native(p, prm);
    const auto nat = native.run(hotspot_program(p, k));

    xsim::LogpOnBspOptions opt;
    opt.bsp = bsp::Params{prm.G, prm.L};
    xsim::LogpOnBsp sim(p, prm, opt);
    const auto rp = sim.run(hotspot_program(p, k));

    const auto tn = static_cast<double>(nat.finish_time);
    const Time preproc = rp.preprocessed_time(opt.bsp, p, prm.capacity());
    const double bound = (static_cast<double>(opt.bsp.l + opt.bsp.g) /
                          static_cast<double>(prm.G)) *
                         std::log2(static_cast<double>(p));
    table.row({p, static_cast<Time>(p - 1) * k, nat.finish_time,
               rp.bsp.finish_time,
               bench::Cell(static_cast<double>(rp.bsp.finish_time) / tn, 2),
               preproc, bench::Cell(static_cast<double>(preproc) / tn, 2),
               bench::Cell(bound, 1), rp.stall_events,
               rp.overloaded_supersteps});
  }
  table.print(std::cout);
  std::cout
      << "\nShape check: the oracle-scheduled simulation already pays a "
         "constant-factor\npremium over native (its acceptance schedule "
         "is free); the implementable\nvariant — charged per the paper's "
         "sort/prefix recipe on every overloaded\ncycle — lands near the "
         "O(((l+g)/G) log p) column. Whether any simulation\ncan do "
         "better is the open question the paper leaves (a lower bound "
         "here would\nmean stalling adds computational power to LogP).\n";
  return rep.finish();
}

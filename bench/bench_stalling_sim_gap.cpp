// E9 (Section 3): simulating *stalling* LogP programs on BSP.
//
// Theorem 1's constant-slowdown simulation assumes stall-freeness. For
// stalling programs the executor emulates the Stalling Rule (senders pause
// until the hot spot's bandwidth admits them), which keeps results faithful
// and every superstep's h bounded by O(ceil(L/G)) — but that acceptance
// schedule is computed by the simulator as an oracle. An implementable BSP
// program must compute it distributively; the paper's sort/prefix sketch
// costs O(log p) extra supersteps per stalling cycle, for an overall
// O(((l+g)/G) log p) slowdown. We report:
//   * native LogP time (the engine's exact Stalling Rule),
//   * the oracle-scheduled simulation's BSP time and slowdown,
//   * the preprocessed (implementable) charged time and slowdown,
//   * the paper's ((l+g)/G) log p bound.
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "src/logp/machine.h"
#include "src/workload/workload.h"
#include "src/xsim/logp_on_bsp.h"

using namespace bsplogp;

namespace {

struct PointResult {
  Time t_native = 0;
  Time t_bsp = 0;
  Time t_preproc = 0;
  std::int64_t stalls = 0;
  std::int64_t overloaded = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(t_native);
    ar(t_bsp);
    ar(t_preproc);
    ar(stalls);
    ar(overloaded);
  }
};

PointResult run_point(ProcId p, Time k, const logp::Params& prm,
                      const bsp::Params& host) {
  logp::Machine native(p, prm);
  const auto nat = native.run(workload::hotspot(p, k));

  xsim::LogpOnBspOptions opt;
  opt.bsp = host;
  xsim::LogpOnBsp sim(p, prm, opt);
  const auto rp = sim.run(workload::hotspot(p, k));

  PointResult r;
  r.t_native = nat.finish_time;
  r.t_bsp = rp.bsp.finish_time;
  r.t_preproc = rp.preprocessed_time(opt.bsp, p, prm.capacity());
  r.stalls = rp.stall_events;
  r.overloaded = rp.overloaded_supersteps;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "stalling_sim_gap");
  rep.use_workloads({"hotspot"});
  const logp::Params prm{16, 1, 4};  // capacity 4
  const bsp::Params host{prm.G, prm.L};
  auto& table = rep.series(
      "stalling_sim",
      {"p", "msgs", "T_LogP", "T_BSP(oracle)", "oracle slow",
       "T_BSP(preproc)", "preproc slow", "((l+g)/G)log p", "stalls",
       "overloaded steps"});
  if (rep.list()) return rep.finish();

  std::cout << "E9 / Section 3: stalling LogP programs on BSP\n"
               "workload: all-to-one (stalls by design); L=16, o=1, G=4; "
               "BSP host g=G, l=L\n\n";
  const std::vector<ProcId> ps = rep.smoke()
                                     ? std::vector<ProcId>{9}
                                     : std::vector<ProcId>{9, 17, 33, 65};
  const Time k = 2;

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      ps.size(),
      [&](std::size_t i) {
        return cache::PointKey{"p=" + std::to_string(ps[i]) + ";k=" +
                               std::to_string(k) + ";L=" +
                               std::to_string(prm.L) + ";o=" +
                               std::to_string(prm.o) + ";G=" +
                               std::to_string(prm.G) + ";g=" +
                               std::to_string(host.g) + ";l=" +
                               std::to_string(host.l)};
      },
      [&](std::size_t i) { return run_point(ps[i], k, prm, host); });

  for (std::size_t i = 0; i < ps.size(); ++i) {
    const ProcId p = ps[i];
    const PointResult& r = results[i];
    const auto tn = static_cast<double>(r.t_native);
    const double bound = (static_cast<double>(host.l + host.g) /
                          static_cast<double>(prm.G)) *
                         std::log2(static_cast<double>(p));
    table.row({p, static_cast<Time>(p - 1) * k, r.t_native, r.t_bsp,
               bench::Cell(static_cast<double>(r.t_bsp) / tn, 2), r.t_preproc,
               bench::Cell(static_cast<double>(r.t_preproc) / tn, 2),
               bench::Cell(bound, 1), r.stalls, r.overloaded});
  }
  table.print(std::cout);
  std::cout
      << "\nShape check: the oracle-scheduled simulation already pays a "
         "constant-factor\npremium over native (its acceptance schedule "
         "is free); the implementable\nvariant — charged per the paper's "
         "sort/prefix recipe on every overloaded\ncycle — lands near the "
         "O(((l+g)/G) log p) column. Whether any simulation\ncan do "
         "better is the open question the paper leaves (a lower bound "
         "here would\nmean stalling adds computational power to LogP).\n";
  return rep.finish();
}

// E2 (Theorem 2): a BSP superstep with w local work and an h-relation
// simulates on stall-free LogP in O(w + (Gh + L) * S(L,G,p,h)) time, with
// S = O(log p) in general and S = O(1) once h is large (h = Omega(p^eps +
// L log p)).
//
// Workload: one-superstep BSP programs routing random h-regular relations.
// For each (p, h) we report the simulated LogP time, the g=G/l=L BSP
// reference cost w + G*h + L, and their ratio — the measured S. The
// paper's shape: S decays from ~log p at small h toward a constant at
// large h.
#include <iostream>

#include "bench/harness.h"
#include "src/core/rng.h"
#include "src/routing/h_relation.h"
#include "src/workload/workload.h"
#include "src/xsim/bsp_on_logp.h"

using namespace bsplogp;

namespace {

struct Point {
  ProcId p;
  Time h;
};

struct PointResult {
  Time r = 0;
  Time s = 0;
  Time cycles = 0;
  Time t_sim = 0;
  Time ref = 0;
  bool stall_free = false;
  std::int64_t violations = 0;

  template <class Ar>
  void io(Ar& ar) {
    ar(r);
    ar(s);
    ar(cycles);
    ar(t_sim);
    ar(ref);
    ar(stall_free);
    ar(violations);
  }
};

PointResult run_point(const Point& pt, const logp::Params& prm,
                      std::uint64_t base_seed, std::size_t index,
                      trace::TraceSink* sink) {
  // Each grid point draws its relation from its own rng_for_index stream:
  // the relation is a pure function of (base_seed, index), independent of
  // which thread runs the point and in what order.
  core::Rng rng = core::rng_for_index(base_seed, index);
  const auto rel = routing::random_regular(pt.p, pt.h, rng);
  auto progs = workload::relation_step(rel);
  xsim::BspOnLogpOptions opt;
  opt.engine.sink = sink;
  xsim::BspOnLogp sim(pt.p, prm, opt);
  const auto rp = sim.run(progs);
  PointResult r;
  r.t_sim = rp.logp.finish_time;
  // The reference BSP cost of the communication superstep alone.
  for (const auto& st : rp.steps) r.ref += st.w_max + prm.G * st.h + prm.L;
  const auto& s0 = rp.steps.front();
  r.r = s0.r;
  r.s = s0.s;
  r.cycles = s0.h;
  r.stall_free = rp.logp.stall_free();
  r.violations = rp.schedule_violations;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "thm2_bsp_on_logp");
  rep.use_workloads({"h-relation-step"});
  const logp::Params prm{16, 1, 2};
  const std::uint64_t base_seed = 4242;

  auto& table =
      rep.series("slowdown_vs_h", {"p", "h", "r", "s", "cycles", "T_LogP",
                                   "w+G*h+L", "S (slowdown)", "stallfree",
                                   "violations"});
  if (rep.list()) return rep.finish();

  std::cout << "E2 / Theorem 2: BSP superstep on stall-free LogP\n"
               "LogP machine: L=16, o=1, G=2 (capacity 8); workload: random "
               "h-regular relation\n\n";
  const std::vector<ProcId> ps = rep.smoke()
                                     ? std::vector<ProcId>{4}
                                     : std::vector<ProcId>{4, 8, 16, 64};
  const std::vector<Time> hs =
      rep.smoke() ? std::vector<Time>{1, 16}
                  : std::vector<Time>{1, 4, 16, 64, 256, 1024};
  std::vector<Point> grid;
  for (const ProcId p : ps)
    for (const Time h : hs) grid.push_back(Point{p, h});

  const bench::SweepRunner runner(rep);
  const auto results = runner.map<PointResult>(
      grid.size(),
      [&](std::size_t i) {
        // The relation comes from rng_for_index(base_seed, i), so the grid
        // index is part of the point's identity: reshaping the grid moves
        // points onto different streams and must miss, not alias.
        return cache::PointKey{
            "p=" + std::to_string(grid[i].p) + ";h=" +
                std::to_string(grid[i].h) + ";i=" + std::to_string(i) +
                ";L=" + std::to_string(prm.L) + ";o=" + std::to_string(prm.o) +
                ";G=" + std::to_string(prm.G),
            base_seed};
      },
      [&](std::size_t i) {
        return run_point(grid[i], prm, base_seed, i, nullptr);
      });

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PointResult& r = results[i];
    table.row({grid[i].p, grid[i].h, r.r, r.s, r.cycles, r.t_sim, r.ref,
               bench::Cell(static_cast<double>(r.t_sim) /
                               static_cast<double>(r.ref),
                           2),
               r.stall_free ? "yes" : "NO", r.violations});
  }
  table.print(std::cout);
  if (rep.trace_sink() != nullptr)
    (void)run_point(grid.front(), prm, base_seed, 0, rep.trace_sink());
  std::cout
      << "\nShape check: for fixed p, S falls as h grows (synchronization "
         "and sorting\namortize) and flattens once Columnsort takes over "
         "(r >= 2(p-1)^2): the S=O(1)\nregime. For small h, S grows with "
         "p like the sort depth — log^2 p here, since\nthe AKS network is "
         "substituted by bitonic (DESIGN.md); the paper's AKS bound\n"
         "would give log p. Stall-free must read 'yes' everywhere: that "
         "is Theorem 2's\nprotocol guarantee.\n";
  return rep.finish();
}

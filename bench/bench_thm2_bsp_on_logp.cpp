// E2 (Theorem 2): a BSP superstep with w local work and an h-relation
// simulates on stall-free LogP in O(w + (Gh + L) * S(L,G,p,h)) time, with
// S = O(log p) in general and S = O(1) once h is large (h = Omega(p^eps +
// L log p)).
//
// Workload: one-superstep BSP programs routing random h-regular relations.
// For each (p, h) we report the simulated LogP time, the g=G/l=L BSP
// reference cost w + G*h + L, and their ratio — the measured S. The
// paper's shape: S decays from ~log p at small h toward a constant at
// large h.
#include <iostream>

#include "bench/harness.h"
#include "src/bsp/machine.h"
#include "src/core/rng.h"
#include "src/routing/h_relation.h"
#include "src/xsim/bsp_on_logp.h"

using namespace bsplogp;

namespace {

/// One-superstep program: processor i sends its part of `rel`, then reads
/// its inbox in the next superstep.
std::vector<std::unique_ptr<bsp::ProcProgram>> relation_program(
    const routing::HRelation& rel) {
  auto messages = std::make_shared<std::vector<std::vector<Message>>>(
      static_cast<std::size_t>(rel.nprocs()));
  for (const Message& m : rel.messages())
    (*messages)[static_cast<std::size_t>(m.src)].push_back(m);
  return bsp::make_programs(rel.nprocs(), [messages](bsp::Ctx& c) {
    if (c.superstep() == 0) {
      for (const Message& m :
           (*messages)[static_cast<std::size_t>(c.pid())])
        c.send(m.dst, m.payload, m.tag);
      return true;
    }
    return false;
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, "thm2_bsp_on_logp");
  std::cout << "E2 / Theorem 2: BSP superstep on stall-free LogP\n"
               "LogP machine: L=16, o=1, G=2 (capacity 8); workload: random "
               "h-regular relation\n\n";
  const logp::Params prm{16, 1, 2};
  core::Rng rng(4242);

  auto& table =
      rep.series("slowdown_vs_h", {"p", "h", "r", "s", "cycles", "T_LogP",
                                   "w+G*h+L", "S (slowdown)", "stallfree",
                                   "violations"});
  const std::vector<ProcId> ps = rep.smoke()
                                     ? std::vector<ProcId>{4}
                                     : std::vector<ProcId>{4, 8, 16, 64};
  const std::vector<Time> hs =
      rep.smoke() ? std::vector<Time>{1, 16}
                  : std::vector<Time>{1, 4, 16, 64, 256, 1024};
  for (const ProcId p : ps) {
    for (const Time h : hs) {
      const auto rel = routing::random_regular(p, h, rng);
      auto progs = relation_program(rel);
      xsim::BspOnLogpOptions opt;
      opt.engine.sink = rep.trace_sink();
      xsim::BspOnLogp sim(p, prm, opt);
      const auto rp = sim.run(progs);
      // The reference BSP cost of the communication superstep alone.
      Time ref = 0, tsim = rp.logp.finish_time;
      for (const auto& st : rp.steps)
        ref += st.w_max + prm.G * st.h + prm.L;
      const auto& s0 = rp.steps.front();
      table.row({p, h, s0.r, s0.s, s0.h, tsim, ref,
                 bench::Cell(static_cast<double>(tsim) /
                                 static_cast<double>(ref),
                             2),
                 rp.logp.stall_free() ? "yes" : "NO",
                 rp.schedule_violations});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nShape check: for fixed p, S falls as h grows (synchronization "
         "and sorting\namortize) and flattens once Columnsort takes over "
         "(r >= 2(p-1)^2): the S=O(1)\nregime. For small h, S grows with "
         "p like the sort depth — log^2 p here, since\nthe AKS network is "
         "substituted by bitonic (DESIGN.md); the paper's AKS bound\n"
         "would give log p. Stall-free must read 'yes' everywhere: that "
         "is Theorem 2's\nprotocol guarantee.\n";
  return rep.finish();
}

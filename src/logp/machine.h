// The LogP abstract machine: a step-accurate discrete-event engine
// implementing the model of Section 2.2 — overhead, gap, latency, the
// capacity constraint and the Stalling Rule — for coroutine processor
// programs written against logp::Proc (see proc.h).
//
// Model rules implemented (with their source in the paper):
//  * A processor submits a message after o preparation steps; consecutive
//    submissions by one processor are >= G apart, and likewise consecutive
//    acquisitions ("at least G time steps must elapse between consecutive
//    submissions or consecutive acquisitions by the same processor").
//  * Between submission and acceptance the sender is stalling and executes
//    nothing.
//  * Stalling Rule: at each time t, for each destination i, with
//    s = capacity() - (messages accepted for i but undelivered) free slots
//    and k submissions for i awaiting acceptance, exactly min{k, s}
//    submissions are accepted. Which k they are is unspecified by the
//    paper; Options::accept_order picks the tie-break.
//  * An accepted message is delivered at most L steps later; the exact
//    delivery time is unpredictable (nondeterminism source (i)), chosen by
//    Options::delivery within [accept+1, accept+L]; the medium delivers at
//    most one message per destination per step (the paper's G >= 2
//    discussion relies on exactly this).
//  * Delivered messages sit in an unbounded input buffer until the owner
//    acquires them (o steps each, G apart).
//
// Scheduling core (see event_queue.h / slot_bitmap.h): events live in a
// calendar/bucket queue indexed by (time step, phase), per-destination
// delivery slots in a circular bitmap over the L-window. The original
// priority-queue scheduler is retained as SchedulerKind::ReferenceHeap;
// both schedulers process the identical event sequence, so a fixed seed
// and options yield bit-identical RunStats — the determinism guard in
// tests/logp/scheduler_equivalence_test.cpp enforces this.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "src/core/frame_arena.h"
#include "src/core/ring_buffer.h"
#include "src/core/rng.h"
#include "src/core/types.h"
#include "src/logp/event_queue.h"
#include "src/logp/params.h"
#include "src/logp/proc.h"
#include "src/logp/slot_bitmap.h"
#include "src/logp/stats.h"
#include "src/logp/task.h"
#include "src/trace/sink.h"

namespace bsplogp::logp {

class Machine;

/// Acceptance tie-break when the Stalling Rule admits fewer submissions
/// than are pending: oldest-first, newest-first (adversarial for fairness),
/// or uniformly random.
enum class AcceptOrder { Fifo, Lifo, Random };

/// Delivery-time choice within the L-step window: latest admissible slot
/// (adversarial for latency — the default, since correctness claims in the
/// paper are worst-case), earliest admissible, or uniformly random.
enum class DeliverySchedule { Latest, Earliest, UniformRandom };

/// Event-scheduler implementation. Bucket is the calendar-queue core and
/// the default; ReferenceHeap is the original priority-queue scheduler,
/// kept for equivalence testing and as the throughput baseline.
enum class SchedulerKind { Bucket, ReferenceHeap };

/// The engine's Proc implementation: scheduling state for the
/// discrete-event loop.
class EngineProc final : public Proc {
 public:
  [[nodiscard]] ProcId nprocs() const override;
  [[nodiscard]] const Params& params() const override;

 private:
  friend class Machine;
  enum class Status {
    Running,      // executing / suspended on nothing engine-visible
    ComputeWait,  // compute/wait_until issued; resume scheduled
    SubmitWait,   // send issued; waiting for the submission step
    Stalling,     // submitted; waiting for acceptance
    RecvPoll,     // recv issued; earliest-acquire check scheduled
    RecvWait,     // recv issued; input buffer empty, parked
    AcquireWait,  // arrival seen; acquisition step scheduled
    Done,
  };

  EngineProc(Machine& machine, ProcId id) : Proc(id), machine_(machine) {}

  /// Back to the just-constructed state for reuse across runs. Destroys
  /// the previous run's root frame (call under the machine's arena scope
  /// so the frame parks in the recycler); keeps the inbox ring's storage.
  void reset_for_run() {
    reset_base_state();
    status_ = Status::Running;
    root_ = Task<>{};
    frame_ = {};
    out_ = Message{};
    submit_time_ = 0;
    recv_earliest_ = 0;
    stall_time_ = 0;
  }

  void issue_send(Message m, std::coroutine_handle<> frame) override;
  void issue_recv(std::coroutine_handle<> frame) override;
  void issue_wait(Time target, std::coroutine_handle<> frame) override;

  Machine& machine_;
  Status status_ = Status::Running;

  Task<> root_;
  std::coroutine_handle<> frame_;  // deepest suspended frame to resume

  Message out_{};           // pending outgoing message
  Time submit_time_ = 0;    // when out_ is/was submitted
  Time recv_earliest_ = 0;  // earliest admissible acquisition start
  Time stall_time_ = 0;
};

class Machine {
 public:
  struct Options {
    Time max_time = 100'000'000;
    AcceptOrder accept_order = AcceptOrder::Fifo;
    DeliverySchedule delivery = DeliverySchedule::Latest;
    /// Seed for the Random policies.
    std::uint64_t seed = 0;
    /// Event-scheduler implementation (identical semantics either way).
    SchedulerKind scheduler = SchedulerKind::Bucket;
    /// Observer for the run's event stream (src/trace): submissions,
    /// acceptances, stall spans, deliveries, acquisitions, gap waits,
    /// queue-depth samples. Not owned; must outlive run(). Leave null for
    /// production runs — emission is a single pointer test per site, and
    /// tracing never alters the execution.
    trace::TraceSink* sink = nullptr;
  };

  Machine(ProcId nprocs, Params params) : Machine(nprocs, params, Options{}) {}
  Machine(ProcId nprocs, Params params, Options options);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Runs `program` on every processor (SPMD) until all complete; returns
  /// exact model-time statistics (a reference to the machine's own record,
  /// valid until the next run — copy to keep). Throws whatever a program
  /// throws. The one functor is shared across processors, never copied per
  /// proc.
  const RunStats& run(const ProgramFn& program);
  /// Runs a distinct program per processor.
  const RunStats& run(std::span<const ProgramFn> programs);

  [[nodiscard]] ProcId nprocs() const { return nprocs_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Statistics of the most recent run(), including a run that ended by a
  /// program exception (in which case the stats reflect the failure: the
  /// throwing processor is not recorded as finished).
  [[nodiscard]] const RunStats& last_run_stats() const { return stats_; }

 private:
  friend class EngineProc;

  using Event = detail::Event;
  using Phase = detail::Phase;
  using EventKind = detail::EventKind;

  struct PendingSubmission {
    Message msg;
    Time submit_time = 0;
    /// A StallBegin was emitted for this submission (trace bookkeeping
    /// only; never affects scheduling or RunStats).
    bool stall_traced = false;
  };

  struct DstState {
    // Flat ring, not std::deque: in-flight submissions recycle their
    // slots in place, so steady-state acceptance churn never touches the
    // allocator (Fifo pops the front, Lifo the back, Random erases by
    // index — all supported on the ring).
    core::RingBuffer<PendingSubmission> pending;  // submitted, not accepted
    Time in_transit = 0;                          // accepted, not delivered
    detail::SlotBitmap slots;  // scheduled delivery times (Bucket)
    // Scheduled delivery times (ReferenceHeap): a flat unsorted vector,
    // membership by linear scan over <= capacity() <= L live entries.
    // Was std::set, whose node churn cost one allocation per accepted
    // message; the vector recycles its storage, so the reference
    // scheduler is as steady-state allocation-free as the bucket one
    // (the alloc test pins both).
    std::vector<Time> slots_ref;
  };

  void push(Time t, Phase phase, EventKind kind, ProcId proc) {
    events_.push(t, phase, kind, proc);
  }
  const RunStats& run_impl(std::span<const ProgramFn> programs, bool shared);
  void handle_submit(EngineProc& p, Time t);
  void handle_accept(ProcId dst, Time t);
  void handle_delivery(ProcId dst, Time t, const Message& msg);
  void handle_recv_check(EngineProc& p, Time t);
  void do_acquire(EngineProc& p, Time t);
  void resume(EngineProc& p);
  [[nodiscard]] Time choose_delivery_slot(DstState& dst, Time accept_time);
  [[nodiscard]] bool reference_scheduler() const {
    return options_.scheduler == SchedulerKind::ReferenceHeap;
  }

  /// Destroys the arena's live EngineProcs (keeps the storage).
  void destroy_procs();
  [[nodiscard]] EngineProc& proc(ProcId i) {
    return procs_[static_cast<std::size_t>(i)];
  }

  ProcId nprocs_;
  Params params_;
  Time capacity_ = 0;  // params_.capacity(), cached: ceil(L/G) divides
  Options options_;

  // Per-run state (reset by run()). The processors live in one contiguous
  // arena sized at the first run and reused afterwards — reset in place
  // between runs, not destroyed, so inbox ring capacities survive and the
  // event loop indexes procs without a pointer chase per event.
  EngineProc* procs_ = nullptr;  // arena; live_procs_ constructed
  std::size_t proc_capacity_ = 0;
  ProcId live_procs_ = 0;
  std::vector<DstState> dsts_;
  detail::EventQueue events_;
  core::Rng rng_{0};
  RunStats stats_;
  ProcId done_count_ = 0;
  // Coroutine-frame recycler, scoped as the thread's current arena for the
  // extent of run_impl: program root frames and collective sub-task frames
  // allocate from here and are returned on destruction, so steady-state
  // re-runs never touch the global heap for frames. Freed storage lives
  // until the Machine dies (destroy_procs() in ~Machine runs first, so
  // every frame is parked back before the arena releases its blocks).
  core::FrameArena frame_arena_;
  // Scratch for the ReferenceHeap UniformRandom free-slot fallback;
  // cleared per use, capacity kept (the Bucket path ranks into the slot
  // bitmap word-at-a-time instead and needs no materialized list).
  std::vector<Time> free_scratch_;
};

}  // namespace bsplogp::logp

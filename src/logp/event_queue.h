// Event queues for the LogP discrete-event engine.
//
// The engine pops events in (time, phase, seq) order: time steps ascend,
// the three phases within a step run Delivery -> Processor -> Accept, and
// ties inside a phase break FIFO by push order. Handlers may push new
// events at the *current* step (even into an earlier phase of it, e.g. a
// processor resumed during the Accept phase immediately issuing a
// same-step RecvCheck), but never into the past.
//
// Storage is SoA: the queues order 12-byte records (proc, payload slot,
// kind) — time is implicit in the wheel position, phase in the lane — and
// the one event kind that carries data (Delivery) indexes a Message in a
// free-listed payload pool owned by EventQueue. Wheel scans and lane
// drains touch only the hot ordering words; a 40-byte Message is written
// once at push and read once at delivery, never copied through the queue.
//
// Two implementations share the ordering contract:
//  * BucketQueue — a calendar/timing-wheel queue: per-step buckets holding
//    three append-only phase lanes (appends arrive in push order, so a
//    lane IS its sorted order), a 64-bit occupancy bitmap for O(1) advance
//    to the next non-empty step, and a single sorted flat overflow buffer
//    (binary-search insert, batch migration — no node allocations) for
//    events beyond the wheel horizon. Push and pop are O(1) amortized; no
//    comparator runs in the hot loop.
//  * HeapQueue — the original priority-queue formulation (on an explicit
//    vector so clear() keeps capacity), kept as the reference scheduler:
//    the determinism guard in tests/logp/scheduler_equivalence_test.cpp
//    checks bit-identical RunStats against it, and bench_engine_throughput
//    measures the bucket queue's speedup over it.
//
// Both queues assign their own internal FIFO counter at push, so the pop
// order is a pure function of the push order — bit-identical across
// SchedulerKind for the same event stream.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "src/core/contracts.h"
#include "src/core/types.h"

namespace bsplogp::logp::detail {

// Event phases within one time step: deliveries free capacity slots before
// processor actions, and acceptance (the Stalling Rule) runs after all
// submissions of the step are in.
enum class Phase : std::uint8_t { Delivery = 0, Processor = 1, Accept = 2 };

enum class EventKind : std::uint8_t {
  Start,
  Resume,
  Delivery,
  Submit,
  RecvCheck,
  Acquire,
  Accept,
};

/// Payload-pool slot index; kNoPayload for the kinds that carry none.
using PayloadSlot = std::int32_t;
inline constexpr PayloadSlot kNoPayload = -1;

/// What the engine loop consumes: when, what, who, and (for Delivery) the
/// payload-pool slot of the message. Phase and FIFO order are scheduling
/// concerns resolved inside the queues; the loop never reads them.
struct Event {
  Time t;
  ProcId proc;  // acting processor, or destination for Delivery/Accept
  PayloadSlot payload;
  EventKind kind;
};

/// The hot ordering record stored in wheel lanes: 12 bytes. Time is the
/// wheel position, phase is the lane.
struct LaneRec {
  ProcId proc;
  PayloadSlot payload;
  EventKind kind;
};

/// Reference scheduler: a binary heap ordered by (t, phase, seq), on an
/// explicit vector so clear() keeps capacity across runs.
class HeapQueue {
 public:
  void clear() {
    heap_.clear();
    next_seq_ = 0;
  }

  void push(Time t, Phase phase, EventKind kind, ProcId proc,
            PayloadSlot payload) {
    heap_.push_back(Entry{t, next_seq_++, proc, payload, kind, phase});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Entry e = heap_.back();
    heap_.pop_back();
    return Event{e.t, e.proc, e.payload, e.kind};
  }

 private:
  struct Entry {
    Time t;
    std::int64_t seq;  // FIFO tie-break for determinism
    ProcId proc;
    PayloadSlot payload;
    EventKind kind;
    Phase phase;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.seq > b.seq;
    }
  };
  std::vector<Entry> heap_;
  std::int64_t next_seq_ = 0;
};

/// Calendar-queue scheduler: a timing wheel of per-step buckets with an
/// occupancy bitmap, spilling events beyond the horizon into a sorted flat
/// buffer.
class BucketQueue {
 public:
  BucketQueue() { cur_slot_ = &wheel_[0]; }

  void clear() {
    for (Slot& s : wheel_) s.reset();
    for (std::uint64_t& w : occupied_) w = 0;
    overflow_.clear();
    overflow_head_ = 0;
    cur_ = 0;
    cur_slot_ = &wheel_[0];
    size_ = 0;
    wheel_count_ = 0;
  }

  void push(Time t, Phase phase, EventKind kind, ProcId proc,
            PayloadSlot payload) {
    BSPLOGP_ASSERT(t >= cur_);  // the engine never schedules the past
    if (t < cur_ + kWheelSize) {
      push_wheel(t, phase, LaneRec{proc, payload, kind});
    } else {
      push_overflow(t, phase, LaneRec{proc, payload, kind});
    }
    size_ += 1;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }

  Event pop() {
    BSPLOGP_ASSERT(size_ > 0);
    Slot* slot = cur_slot_;
    if (slot->remaining == 0) {
      advance();
      slot = cur_slot_;
    }
    // Lowest phase with unconsumed events. min_lane is a sound hint: every
    // lane below it is exhausted, and a handler pushing into an earlier
    // phase of this step lowers it again — so the scan usually starts at
    // the hit instead of walking empty Delivery/Processor lanes for every
    // Accept event.
    for (std::uint32_t ph = slot->min_lane; ph < 3; ++ph) {
      auto& lane = slot->lanes[static_cast<std::size_t>(ph)];
      auto& taken = slot->taken[static_cast<std::size_t>(ph)];
      if (taken < lane.size()) {
        const LaneRec rec = lane[taken];
        taken += 1;
        slot->min_lane = ph;
        slot->remaining -= 1;
        size_ -= 1;
        wheel_count_ -= 1;
        if (slot->remaining == 0) {
          slot->reset();
          clear_bit(cur_);
        }
        return Event{cur_, rec.proc, rec.payload, rec.kind};
      }
    }
    BSPLOGP_ASSERT(false && "corrupt bucket: remaining > 0 but lanes empty");
    return Event{};
  }

 private:
  static constexpr int kWheelBits = 10;
  static constexpr Time kWheelSize = Time{1} << kWheelBits;
  static constexpr std::uint64_t kMask = kWheelSize - 1;
  static constexpr std::size_t kWords = kWheelSize / 64;

  struct Slot {
    std::vector<LaneRec> lanes[3];  // one append-only lane per phase
    std::uint32_t taken[3] = {0, 0, 0};
    std::uint32_t remaining = 0;
    std::uint32_t min_lane = 3;  // no lane can have unconsumed events
    void reset() {
      for (auto& lane : lanes) lane.clear();  // keeps capacity for reuse
      taken[0] = taken[1] = taken[2] = 0;
      remaining = 0;
      min_lane = 3;
    }
  };

  /// A beyond-horizon event parked in the flat overflow buffer: the full
  /// ordering key (t, phase) plus the lane record, 24 bytes. FIFO order
  /// within equal (t, phase) is the buffer's insertion order (stable
  /// upper_bound insert).
  struct OverflowRec {
    Time t;
    LaneRec rec;
    Phase phase;
  };

  static std::size_t index_of(Time t) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) & kMask);
  }

  void set_bit(Time t) {
    const std::size_t i = index_of(t);
    occupied_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void clear_bit(Time t) {
    const std::size_t i = index_of(t);
    occupied_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void push_wheel(Time t, Phase phase, LaneRec rec) {
    Slot& slot = wheel_[index_of(t)];
    if (slot.remaining == 0) set_bit(t);
    slot.lanes[static_cast<std::size_t>(phase)].push_back(rec);
    slot.remaining += 1;
    slot.min_lane = std::min(slot.min_lane,
                             static_cast<std::uint32_t>(phase));
    wheel_count_ += 1;
  }

  /// Sorted insert by t alone: upper_bound places a new entry after every
  /// existing entry of the same t, so insertion order — which is push
  /// order, which is FIFO order — is preserved among equal times, and
  /// migration can replay the range in buffer order. Overflow pushes are
  /// rare (an event lands here only when scheduled > 1024 steps out, e.g.
  /// huge compute blocks), so the O(n) vector insert is paid where the
  /// old std::map paid a node allocation plus rebalancing.
  void push_overflow(Time t, Phase phase, LaneRec rec) {
    const auto it = std::upper_bound(
        overflow_.begin() + static_cast<std::ptrdiff_t>(overflow_head_),
        overflow_.end(), t,
        [](Time lhs, const OverflowRec& r) { return lhs < r.t; });
    overflow_.insert(it, OverflowRec{t, rec, phase});
  }

  [[nodiscard]] std::size_t overflow_size() const {
    return overflow_.size() - overflow_head_;
  }

  /// Pulls overflow entries that now fall inside the wheel horizon. An
  /// overflow entry for time t is always migrated before any direct wheel
  /// push at t can happen (pushes at t require t < cur + W, and migration
  /// runs on every cursor advance), so lane FIFO order is preserved. The
  /// consumed prefix advances by index; storage compacts (capacity kept)
  /// once the live tail is smaller than the dead prefix.
  void migrate() {
    const Time horizon = cur_ + kWheelSize;
    std::size_t head = overflow_head_;
    while (head < overflow_.size() && overflow_[head].t < horizon) {
      const OverflowRec& o = overflow_[head];
      push_wheel(o.t, o.phase, o.rec);
      head += 1;
    }
    overflow_head_ = head;
    if (overflow_head_ == overflow_.size()) {
      overflow_.clear();
      overflow_head_ = 0;
    } else if (overflow_head_ > overflow_.size() - overflow_head_) {
      overflow_.erase(overflow_.begin(),
                      overflow_.begin() +
                          static_cast<std::ptrdiff_t>(overflow_head_));
      overflow_head_ = 0;
    }
  }

  /// Moves the cursor to the next time step with events. All wheel events
  /// live in [cur_, cur_ + W), so the bitmap scan starting at the cursor's
  /// slot finds the minimum wheel time; after migrate(), any remaining
  /// overflow time is beyond the horizon and therefore later.
  void advance() {
    cur_ += 1;
    migrate();
    if (wheel_count_ == 0) {
      BSPLOGP_ASSERT(overflow_head_ < overflow_.size());
      cur_ = overflow_[overflow_head_].t;  // jump to the overflow min time
      migrate();
    }
    BSPLOGP_ASSERT(wheel_count_ > 0);
    cur_ = scan_from(cur_);
    // The scan can move the cursor — and with it the horizon — many steps
    // at once. Migrate again at the final cursor so every overflow entry
    // now inside [cur_, cur_ + W) enters its lane before any handler at
    // cur_ can push to the same step directly; otherwise a direct push
    // would order ahead of an earlier-pushed overflow entry, breaking
    // FIFO and diverging from the reference heap. (Migrated entries all
    // lie at t >= the pre-scan horizon > cur_, so the minimum found by
    // the scan is unaffected.)
    migrate();
    cur_slot_ = &wheel_[index_of(cur_)];
  }

  /// Smallest t' in [t, t + W) whose slot is occupied.
  [[nodiscard]] Time scan_from(Time t) const {
    const std::size_t start = index_of(t);
    std::size_t word = start >> 6;
    std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t i = 0; i <= kWords; ++i) {
      if (bits != 0) {
        const auto idx =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        return t + static_cast<Time>((idx - start) & kMask);
      }
      word = (word + 1) & (kWords - 1);
      bits = occupied_[word];
    }
    BSPLOGP_ASSERT(false && "occupancy bitmap empty despite wheel_count_ > 0");
    return t;
  }

  std::vector<Slot> wheel_{static_cast<std::size_t>(kWheelSize)};
  std::uint64_t occupied_[kWords] = {};
  // Flat sorted overflow: [overflow_head_, size) is live, ascending by t,
  // FIFO within t. The prefix [0, overflow_head_) is already migrated.
  std::vector<OverflowRec> overflow_;
  std::size_t overflow_head_ = 0;
  Time cur_ = 0;
  Slot* cur_slot_ = nullptr;  // == &wheel_[index_of(cur_)]; wheel_ is fixed
  std::size_t size_ = 0;
  std::size_t wheel_count_ = 0;
};

/// Scheduler selector plus the shared message-payload pool: dispatches to
/// the bucket queue (default) or the reference heap, per
/// logp::Machine::Options.
class EventQueue {
 public:
  void reset(bool use_bucket) {
    bucket_mode_ = use_bucket;
    bucket_.clear();
    heap_.clear();
    pool_.clear();      // keeps capacity
    pool_free_.clear();  // keeps capacity
  }

  /// Schedules a payload-free event.
  void push(Time t, Phase phase, EventKind kind, ProcId proc) {
    if (bucket_mode_) {
      bucket_.push(t, phase, kind, proc, kNoPayload);
    } else {
      heap_.push(t, phase, kind, proc, kNoPayload);
    }
  }

  /// Schedules an event carrying a Message (Delivery): the message is
  /// written once into a pooled slot; the queues order only the slot index.
  void push_msg(Time t, Phase phase, EventKind kind, ProcId proc,
                const Message& msg) {
    const PayloadSlot slot = alloc_payload(msg);
    if (bucket_mode_) {
      bucket_.push(t, phase, kind, proc, slot);
    } else {
      heap_.push(t, phase, kind, proc, slot);
    }
  }

  [[nodiscard]] bool empty() const {
    return bucket_mode_ ? bucket_.empty() : heap_.empty();
  }

  Event pop() { return bucket_mode_ ? bucket_.pop() : heap_.pop(); }

  /// The message parked in `slot`. The reference stays valid until the
  /// next push_msg (the pool vector may grow) — consume before pushing.
  [[nodiscard]] const Message& payload(PayloadSlot slot) const {
    BSPLOGP_ASSERT(slot >= 0 &&
                   static_cast<std::size_t>(slot) < pool_.size());
    return pool_[static_cast<std::size_t>(slot)];
  }

  /// Recycles a consumed payload slot.
  void release(PayloadSlot slot) {
    BSPLOGP_ASSERT(slot >= 0 &&
                   static_cast<std::size_t>(slot) < pool_.size());
    pool_free_.push_back(slot);
  }

 private:
  PayloadSlot alloc_payload(const Message& msg) {
    if (!pool_free_.empty()) {
      const PayloadSlot slot = pool_free_.back();
      pool_free_.pop_back();
      pool_[static_cast<std::size_t>(slot)] = msg;
      return slot;
    }
    const auto slot = static_cast<PayloadSlot>(pool_.size());
    pool_.push_back(msg);
    return slot;
  }

  bool bucket_mode_ = true;
  BucketQueue bucket_;
  HeapQueue heap_;
  // Message payload pool, shared by both queue implementations: in-flight
  // Delivery payloads live here, indexed by PayloadSlot, recycled through
  // a free list. Steady state allocates nothing.
  std::vector<Message> pool_;
  std::vector<PayloadSlot> pool_free_;
};

}  // namespace bsplogp::logp::detail

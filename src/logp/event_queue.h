// Event queues for the LogP discrete-event engine.
//
// The engine pops events in (time, phase, seq) order: time steps ascend,
// the three phases within a step run Delivery -> Processor -> Accept, and
// ties inside a phase break FIFO by a global sequence number. Handlers may
// push new events at the *current* step (even into an earlier phase of it,
// e.g. a processor resumed during the Accept phase immediately issuing a
// same-step RecvCheck), but never into the past.
//
// Two implementations share that contract:
//  * BucketQueue — a calendar/timing-wheel queue: per-step buckets holding
//    three append-only phase lanes (appends arrive in seq order by
//    construction, so a lane IS its sorted order), a 64-bit occupancy
//    bitmap for O(1) advance to the next non-empty step, and a sorted
//    overflow map for events beyond the wheel horizon. Push and pop are
//    O(1) amortized; no comparator runs in the hot loop.
//  * HeapQueue — the original std::priority_queue formulation, kept as the
//    reference scheduler: the determinism guard in
//    tests/logp/scheduler_equivalence_test.cpp checks bit-identical
//    RunStats against it, and bench_engine_throughput measures the bucket
//    queue's speedup over it.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "src/core/contracts.h"
#include "src/core/types.h"

namespace bsplogp::logp::detail {

// Event phases within one time step: deliveries free capacity slots before
// processor actions, and acceptance (the Stalling Rule) runs after all
// submissions of the step are in.
enum class Phase : int { Delivery = 0, Processor = 1, Accept = 2 };

enum class EventKind {
  Start,
  Resume,
  Delivery,
  Submit,
  RecvCheck,
  Acquire,
  Accept,
};

struct Event {
  Time t;
  Phase phase;
  std::int64_t seq;  // FIFO tie-break for determinism
  EventKind kind;
  ProcId proc;  // acting processor, or destination for Delivery/Accept
  Message msg;  // payload for Delivery
};

/// Reference scheduler: a binary heap ordered by (t, phase, seq).
class HeapQueue {
 public:
  void clear() { heap_ = {}; }
  void push(const Event& ev) { heap_.push(ev); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  Event pop() {
    const Event ev = heap_.top();
    heap_.pop();
    return ev;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

/// Calendar-queue scheduler: a timing wheel of per-step buckets with an
/// occupancy bitmap, spilling events beyond the horizon into a sorted map.
class BucketQueue {
 public:
  void clear() {
    for (Slot& s : wheel_) s.reset();
    for (std::uint64_t& w : occupied_) w = 0;
    overflow_.clear();
    cur_ = 0;
    size_ = 0;
    wheel_count_ = 0;
  }

  void push(const Event& ev) {
    BSPLOGP_ASSERT(ev.t >= cur_);  // the engine never schedules the past
    if (ev.t < cur_ + kWheelSize) {
      push_wheel(ev);
    } else {
      overflow_[ev.t].push_back(ev);
    }
    size_ += 1;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }

  Event pop() {
    BSPLOGP_ASSERT(size_ > 0);
    Slot* slot = &slot_at(cur_);
    if (slot->remaining == 0) {
      advance();
      slot = &slot_at(cur_);
    }
    // Lowest phase with unconsumed events; re-scanned from Delivery each
    // pop because handlers may push into an earlier phase of this step.
    for (int ph = 0; ph < 3; ++ph) {
      auto& lane = slot->lanes[static_cast<std::size_t>(ph)];
      auto& taken = slot->taken[static_cast<std::size_t>(ph)];
      if (taken < lane.size()) {
        const Event ev = lane[taken];
        taken += 1;
        slot->remaining -= 1;
        size_ -= 1;
        wheel_count_ -= 1;
        if (slot->remaining == 0) {
          slot->reset();
          clear_bit(cur_);
        }
        return ev;
      }
    }
    BSPLOGP_ASSERT(false && "corrupt bucket: remaining > 0 but lanes empty");
    return Event{};
  }

 private:
  static constexpr int kWheelBits = 10;
  static constexpr Time kWheelSize = Time{1} << kWheelBits;
  static constexpr std::uint64_t kMask = kWheelSize - 1;
  static constexpr std::size_t kWords = kWheelSize / 64;

  struct Slot {
    std::vector<Event> lanes[3];  // one append-only lane per phase
    std::size_t taken[3] = {0, 0, 0};
    std::size_t remaining = 0;
    void reset() {
      for (auto& lane : lanes) lane.clear();  // keeps capacity for reuse
      taken[0] = taken[1] = taken[2] = 0;
      remaining = 0;
    }
  };

  static std::size_t index_of(Time t) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) & kMask);
  }

  Slot& slot_at(Time t) { return wheel_[index_of(t)]; }

  void set_bit(Time t) {
    const std::size_t i = index_of(t);
    occupied_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void clear_bit(Time t) {
    const std::size_t i = index_of(t);
    occupied_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void push_wheel(const Event& ev) {
    Slot& slot = slot_at(ev.t);
    if (slot.remaining == 0) set_bit(ev.t);
    slot.lanes[static_cast<int>(ev.phase)].push_back(ev);
    slot.remaining += 1;
    wheel_count_ += 1;
  }

  /// Pulls overflow entries that now fall inside the wheel horizon. An
  /// overflow entry for time t is always migrated before any direct wheel
  /// push at t can happen (pushes at t require t < cur + W, and migration
  /// runs on every cursor advance), so lane seq-order is preserved.
  void migrate() {
    while (!overflow_.empty() && overflow_.begin()->first < cur_ + kWheelSize) {
      for (const Event& ev : overflow_.begin()->second) push_wheel(ev);
      overflow_.erase(overflow_.begin());
    }
  }

  /// Moves the cursor to the next time step with events. All wheel events
  /// live in [cur_, cur_ + W), so the bitmap scan starting at the cursor's
  /// slot finds the minimum wheel time; after migrate(), any remaining
  /// overflow time is beyond the horizon and therefore later.
  void advance() {
    cur_ += 1;
    migrate();
    if (wheel_count_ == 0) {
      BSPLOGP_ASSERT(!overflow_.empty());
      cur_ = overflow_.begin()->first;
      migrate();
    }
    BSPLOGP_ASSERT(wheel_count_ > 0);
    cur_ = scan_from(cur_);
  }

  /// Smallest t' in [t, t + W) whose slot is occupied.
  [[nodiscard]] Time scan_from(Time t) const {
    const std::size_t start = index_of(t);
    std::size_t word = start >> 6;
    std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t i = 0; i <= kWords; ++i) {
      if (bits != 0) {
        const auto idx =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        return t + static_cast<Time>((idx - start) & kMask);
      }
      word = (word + 1) & (kWords - 1);
      bits = occupied_[word];
    }
    BSPLOGP_ASSERT(false && "occupancy bitmap empty despite wheel_count_ > 0");
    return t;
  }

  std::vector<Slot> wheel_{static_cast<std::size_t>(kWheelSize)};
  std::uint64_t occupied_[kWords] = {};
  std::map<Time, std::vector<Event>> overflow_;
  Time cur_ = 0;
  std::size_t size_ = 0;
  std::size_t wheel_count_ = 0;
};

/// Scheduler selector: dispatches to the bucket queue (default) or the
/// reference heap, per logp::Machine::Options.
class EventQueue {
 public:
  void reset(bool use_bucket) {
    bucket_mode_ = use_bucket;
    bucket_.clear();
    heap_.clear();
  }
  void push(const Event& ev) {
    if (bucket_mode_) {
      bucket_.push(ev);
    } else {
      heap_.push(ev);
    }
  }
  [[nodiscard]] bool empty() const {
    return bucket_mode_ ? bucket_.empty() : heap_.empty();
  }
  Event pop() { return bucket_mode_ ? bucket_.pop() : heap_.pop(); }

 private:
  bool bucket_mode_ = true;
  BucketQueue bucket_;
  HeapQueue heap_;
};

}  // namespace bsplogp::logp::detail

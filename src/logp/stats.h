// Run-level observability for the LogP engine: besides the shared result
// core (core::RunStatsBase — finish time, per-proc finish/blocked,
// delivered-message count), the paper's discussion makes three quantities
// first-class — stalling (Section 2.2's Stalling Rule), in-transit load
// versus the capacity threshold, and input-buffer occupancy (the G <= L
// bounded-buffer argument). All are recorded exactly. For a full event
// timeline instead of aggregates, install a trace::TraceSink
// (Machine::Options::sink).
#pragma once

#include <vector>

#include "src/core/run_stats.h"
#include "src/core/types.h"

namespace bsplogp::logp {

struct RunStats : core::RunStatsBase {
  // Inherited: finish_time (max over processors of the model time its
  // program finished), proc_finish, blocked_procs, messages (delivered
  // into destination input buffers).

  /// True if some processors never finished and no event could make
  /// progress (e.g. a recv with no matching send).
  bool deadlock = false;
  /// True if the run was cut off at Options::max_time.
  bool timed_out = false;

  std::int64_t messages_submitted = 0;
  std::int64_t messages_acquired = 0;

  /// Engine events processed by the run loop (wall-clock throughput of the
  /// scheduler is events_processed / elapsed time; see
  /// bench_engine_throughput). Identical across SchedulerKind for a fixed
  /// seed — the schedulers replay the same event sequence.
  std::int64_t events_processed = 0;

  /// Number of submissions whose acceptance was delayed (stalls) and the
  /// total/maximum processor time lost to stalling.
  std::int64_t stall_events = 0;
  Time stall_time_total = 0;
  Time stall_time_max = 0;

  /// High-water marks: messages in transit to one destination (never
  /// exceeds ceil(L/G) by construction; recorded to show how close runs
  /// get) and buffered-but-unacquired messages at one processor.
  Time max_in_transit = 0;
  std::int64_t max_inbox = 0;

  [[nodiscard]] bool stall_free() const { return stall_events == 0; }
  [[nodiscard]] bool completed() const { return !deadlock && !timed_out; }

  /// Field-wise equality (base included): the scheduler-equivalence guard
  /// compares entire RunStats across SchedulerKind at fixed seeds.
  friend bool operator==(const RunStats&, const RunStats&) = default;
};

}  // namespace bsplogp::logp

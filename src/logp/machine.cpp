#include "src/logp/machine.h"

#include <algorithm>
#include <new>
#include <utility>

#include "src/core/contracts.h"

namespace bsplogp::logp {

// ---- EngineProc -------------------------------------------------------------

ProcId EngineProc::nprocs() const { return machine_.nprocs(); }
const Params& EngineProc::params() const { return machine_.params(); }

void EngineProc::issue_wait(Time target, std::coroutine_handle<> frame) {
  BSPLOGP_EXPECTS(target > clock_);
  frame_ = frame;
  status_ = Status::ComputeWait;
  clock_ = target;
  machine_.push(target, Machine::Phase::Processor,
                Machine::EventKind::Resume, id_);
}

void EngineProc::issue_send(Message m, std::coroutine_handle<> frame) {
  BSPLOGP_EXPECTS(m.dst >= 0 && m.dst < machine_.nprocs_);
  // The model's messages go to *another* processor; local hand-offs are
  // local operations, not communication.
  BSPLOGP_EXPECTS(m.dst != id_);
  frame_ = frame;
  status_ = Status::SubmitWait;
  // earliest_submit(), with params() resolved statically — the virtual
  // hop would cost on every send.
  const Params& prm = machine_.params_;
  Time s = clock_ + prm.o;
  if (has_submitted_) s = std::max(s, last_submit_ + prm.G);
  if (trace::TraceSink* sink = machine_.options_.sink;
      sink != nullptr && s > clock_ + machine_.params_.o)
    sink->emit(trace::Event::gap_wait(id_, clock_, s,
                                      s - (clock_ + machine_.params_.o)));
  submit_time_ = s;
  clock_ = s;  // occupied (prep + gap wait) until the submission step
  out_ = m;
  machine_.push(s, Machine::Phase::Processor, Machine::EventKind::Submit, id_);
}

void EngineProc::issue_recv(std::coroutine_handle<> frame) {
  frame_ = frame;
  // earliest_acquire() — the clock, pushed by the gap rule — with
  // params() resolved statically.
  Time a = clock_;
  if (has_acquired_) a = std::max(a, last_acquire_ + machine_.params_.G);
  recv_earliest_ = a;
  if (trace::TraceSink* sink = machine_.options_.sink;
      sink != nullptr && recv_earliest_ > clock_)
    sink->emit(trace::Event::gap_wait(id_, clock_, recv_earliest_,
                                      recv_earliest_ - clock_));
  status_ = Status::RecvPoll;
  machine_.push(recv_earliest_, Machine::Phase::Processor,
                Machine::EventKind::RecvCheck, id_);
}

// ---- Machine --------------------------------------------------------------

Machine::Machine(ProcId nprocs, Params params, Options options)
    : nprocs_(nprocs), params_(params), capacity_(params.capacity()),
      options_(std::move(options)) {
  BSPLOGP_EXPECTS(nprocs >= 1);
  params_.validate();
  BSPLOGP_EXPECTS(options_.max_time >= 1);
}

Machine::~Machine() {
  destroy_procs();
  ::operator delete(static_cast<void*>(procs_));
}

void Machine::destroy_procs() {
  for (ProcId i = 0; i < live_procs_; ++i)
    proc(i).~EngineProc();
  live_procs_ = 0;
}

const RunStats& Machine::run(const ProgramFn& program) {
  // One shared functor: every processor runs the same program object. The
  // old path copied it nprocs_ times — 64Ki functor clones per machine
  // construction at p = 65536.
  return run_impl(std::span<const ProgramFn>(&program, 1), /*shared=*/true);
}

const RunStats& Machine::run(std::span<const ProgramFn> programs) {
  BSPLOGP_EXPECTS(std::cmp_equal(programs.size(), nprocs_));
  return run_impl(programs, /*shared=*/false);
}

Time Machine::choose_delivery_slot(DstState& dst, Time accept_time) {
  const Time lo = accept_time + 1;
  const Time hi = accept_time + params_.L;
  const bool ref = reference_scheduler();
  auto free_slot = [&](Time s) {
    return ref ? std::find(dst.slots_ref.begin(), dst.slots_ref.end(), s) ==
                     dst.slots_ref.end()
               : !dst.slots.occupied(s);
  };
  switch (options_.delivery) {
    case DeliverySchedule::Earliest: {
      if (!ref) {
        const Time s = dst.slots.first_free(lo, hi);
        BSPLOGP_ASSERT(s >= 0);
        return s;
      }
      for (Time s = lo; s <= hi; ++s)
        if (free_slot(s)) return s;
      break;
    }
    case DeliverySchedule::Latest: {
      if (!ref) {
        const Time s = dst.slots.last_free(lo, hi);
        BSPLOGP_ASSERT(s >= 0);
        return s;
      }
      for (Time s = hi; s >= lo; --s)
        if (free_slot(s)) return s;
      break;
    }
    case DeliverySchedule::UniformRandom: {
      // Occupied slots number < capacity <= L, so random probing converges
      // fast; fall back to an exhaustive scan for tiny windows. The rng
      // draw sequence is identical under both schedulers, keeping runs
      // bit-reproducible across SchedulerKind: both draw below(free count)
      // and return the k-th free slot — the bitmap ranks word-at-a-time,
      // the reference path materializes the list into a reused scratch.
      for (int tries = 0; tries < 64; ++tries) {
        const Time s = lo + static_cast<Time>(rng_.below(
                                 static_cast<std::uint64_t>(hi - lo + 1)));
        if (free_slot(s)) return s;
      }
      if (!ref) {
        const Time cnt = dst.slots.count_free(lo, hi);
        BSPLOGP_ASSERT(cnt > 0);
        const auto k = static_cast<Time>(
            rng_.below(static_cast<std::uint64_t>(cnt)));
        const Time s = dst.slots.nth_free(lo, hi, k);
        BSPLOGP_ASSERT(s >= 0);
        return s;
      }
      free_scratch_.clear();
      for (Time s = lo; s <= hi; ++s)
        if (free_slot(s)) free_scratch_.push_back(s);
      BSPLOGP_ASSERT(!free_scratch_.empty());
      return free_scratch_[rng_.below(free_scratch_.size())];
    }
  }
  // The capacity constraint guarantees a free slot exists in the window.
  BSPLOGP_ASSERT(false && "no free delivery slot");
  return lo;
}

void Machine::resume(EngineProc& p) {
  p.status_ = EngineProc::Status::Running;
  p.frame_.resume();
  if (p.root_.done()) {
    // A program that ended by exception did not finish: surface the error
    // before any completion bookkeeping so stats reflect the failure.
    p.root_.rethrow_if_failed();
    p.status_ = EngineProc::Status::Done;
    done_count_ += 1;
    stats_.proc_finish[static_cast<std::size_t>(p.id_)] = p.clock_;
  }
}

void Machine::handle_submit(EngineProc& p, Time t) {
  BSPLOGP_ASSERT(p.status_ == EngineProc::Status::SubmitWait);
  BSPLOGP_ASSERT(p.submit_time_ == t);
  p.last_submit_ = t;
  p.has_submitted_ = true;
  p.status_ = EngineProc::Status::Stalling;
  stats_.messages_submitted += 1;
  if (options_.sink != nullptr)
    options_.sink->emit(trace::Event::submit(p.id_, t, p.out_.dst));
  dsts_[static_cast<std::size_t>(p.out_.dst)].pending.push_back(
      PendingSubmission{p.out_, t});
  push(t, Phase::Accept, EventKind::Accept, p.out_.dst);
}

void Machine::handle_accept(ProcId dst_id, Time t) {
  DstState& dst = dsts_[static_cast<std::size_t>(dst_id)];
  // Stalling Rule: accept min{k, s} of the k pending submissions, where
  // s is the number of free capacity slots. Which ones is unspecified by
  // the model; options_.accept_order decides.
  while (!dst.pending.empty() && dst.in_transit < capacity_) {
    // The accepted submission is consumed in place — its Message is copied
    // exactly once, ring slot -> payload pool — and popped from the ring
    // only after the pool write (push_msg never touches the ring).
    std::size_t idx = 0;
    switch (options_.accept_order) {
      case AcceptOrder::Fifo:
        break;
      case AcceptOrder::Lifo:
        idx = dst.pending.size() - 1;
        break;
      case AcceptOrder::Random:
        idx = static_cast<std::size_t>(rng_.below(dst.pending.size()));
        break;
    }
    const PendingSubmission& ps = dst.pending[idx];
    const ProcId src = ps.msg.src;
    const Time submit_time = ps.submit_time;

    EngineProc& sender = proc(src);
    BSPLOGP_ASSERT(sender.status_ == EngineProc::Status::Stalling);
    if (t > submit_time) {
      const Time stalled = t - submit_time;
      stats_.stall_events += 1;
      stats_.stall_time_total += stalled;
      stats_.stall_time_max = std::max(stats_.stall_time_max, stalled);
      sender.stall_time_ += stalled;
      if (options_.sink != nullptr)
        options_.sink->emit(
            trace::Event::stall_end(src, t, dst_id, submit_time));
    }
    if (options_.sink != nullptr)
      options_.sink->emit(trace::Event::accept(src, t, dst_id, submit_time));

    dst.in_transit += 1;
    stats_.max_in_transit = std::max(stats_.max_in_transit, dst.in_transit);
    BSPLOGP_ASSERT(dst.in_transit <= capacity_);
    const Time slot = choose_delivery_slot(dst, t);
    if (reference_scheduler()) {
      dst.slots_ref.push_back(slot);
    } else {
      dst.slots.set(slot);
    }
    events_.push_msg(slot, Phase::Delivery, EventKind::Delivery, dst_id,
                     ps.msg);
    switch (options_.accept_order) {
      case AcceptOrder::Fifo:
        dst.pending.pop_front();
        break;
      case AcceptOrder::Lifo:
        dst.pending.pop_back();
        break;
      case AcceptOrder::Random:
        dst.pending.erase(idx);
        break;
    }

    // The sender reverts to the operational state at acceptance.
    sender.clock_ = t;
    resume(sender);
  }
  // Submissions still pending were refused by the Stalling Rule at this
  // step: their senders are stalling from here until acceptance.
  if (options_.sink != nullptr) {
    for (std::size_t i = 0; i < dst.pending.size(); ++i) {
      PendingSubmission& ps = dst.pending[i];
      if (ps.stall_traced) continue;
      ps.stall_traced = true;
      options_.sink->emit(
          trace::Event::stall_begin(ps.msg.src, ps.submit_time, dst_id));
    }
  }
}

void Machine::handle_delivery(ProcId dst_id, Time t, const Message& msg) {
  DstState& dst = dsts_[static_cast<std::size_t>(dst_id)];
  dst.in_transit -= 1;
  BSPLOGP_ASSERT(dst.in_transit >= 0);
  if (reference_scheduler()) {
    // Delivery times within a destination are unique (one message per
    // slot), so this erases exactly the one entry; swap-with-back keeps
    // the erase O(1) and order is irrelevant to a membership set.
    const auto it = std::find(dst.slots_ref.begin(), dst.slots_ref.end(), t);
    BSPLOGP_ASSERT(it != dst.slots_ref.end());
    *it = dst.slots_ref.back();
    dst.slots_ref.pop_back();
  } else {
    dst.slots.clear(t);
  }
  EngineProc& p = proc(dst_id);
  p.inbox_.push_back(msg);
  stats_.messages += 1;
  stats_.max_inbox =
      std::max(stats_.max_inbox, static_cast<std::int64_t>(p.inbox_.size()));
  if (options_.sink != nullptr) {
    options_.sink->emit(trace::Event::delivery(dst_id, t, msg.src));
    options_.sink->emit(trace::Event::queue_depth(
        dst_id, t, static_cast<std::int64_t>(p.inbox_.size())));
  }

  if (p.status_ == EngineProc::Status::RecvWait) {
    p.status_ = EngineProc::Status::AcquireWait;
    push(std::max(t, p.recv_earliest_), Phase::Processor, EventKind::Acquire,
         dst_id);
  }
  // A freed capacity slot can admit a stalled submission at this very step.
  if (!dst.pending.empty()) push(t, Phase::Accept, EventKind::Accept, dst_id);
}

void Machine::handle_recv_check(EngineProc& p, Time t) {
  BSPLOGP_ASSERT(p.status_ == EngineProc::Status::RecvPoll);
  if (p.inbox_.empty()) {
    p.status_ = EngineProc::Status::RecvWait;  // parked until a delivery
    return;
  }
  do_acquire(p, t);
}

void Machine::do_acquire(EngineProc& p, Time t) {
  BSPLOGP_ASSERT(!p.inbox_.empty());
  p.acquired_ = p.inbox_.front();
  p.inbox_.pop_front();
  p.last_acquire_ = t;
  p.has_acquired_ = true;
  p.clock_ = t + params_.o;  // acquisition overhead
  stats_.messages_acquired += 1;
  if (options_.sink != nullptr) {
    options_.sink->emit(trace::Event::acquire(p.id_, t, p.acquired_.src));
    options_.sink->emit(trace::Event::queue_depth(
        p.id_, t, static_cast<std::int64_t>(p.inbox_.size())));
  }
  resume(p);
}

// flatten: inline the whole handler tree (queue pop/push, accept/submit/
// delivery, slot bitmaps) into the event loop — the engine's entire hot
// path is this one function, and the cross-handler inlining is worth ~15%
// on the hotspot series.
[[gnu::flatten]] const RunStats& Machine::run_impl(
    std::span<const ProgramFn> programs, bool shared) {
  if (options_.sink != nullptr)
    options_.sink->run_begin(trace::RunInfo{"logp", nprocs_, params_.L,
                                            params_.o, params_.G,
                                            params_.capacity(), 0, 0});

  // All coroutine frames created below — root program frames and any
  // collective sub-task frames spawned while the loop runs — recycle
  // through this machine's arena for the extent of the run.
  core::FrameArena::Scope frame_scope(&frame_arena_);

  // Reset per-run state so a Machine can be reused. Every container below
  // is reset in place — capacities (destination rings, slot-bitmap words,
  // inbox rings, the event queue's lanes and payload pool, the stats
  // vectors, the frame arena's free lists) survive across runs, so a
  // machine re-run in a timing loop or a sweep performs zero steady-state
  // allocations.
  if (dsts_.size() != static_cast<std::size_t>(nprocs_))
    dsts_.resize(static_cast<std::size_t>(nprocs_));
  for (DstState& dst : dsts_) {
    dst.pending.clear();
    dst.in_transit = 0;
    dst.slots_ref.clear();
    if (!reference_scheduler()) dst.slots.init(params_.L);
  }
  events_.reset(!reference_scheduler());
  rng_ = core::Rng(options_.seed);
  stats_.finish_time = 0;
  stats_.proc_finish.assign(static_cast<std::size_t>(nprocs_), 0);
  stats_.blocked_procs.clear();
  stats_.messages = 0;
  stats_.deadlock = false;
  stats_.timed_out = false;
  stats_.messages_submitted = 0;
  stats_.messages_acquired = 0;
  stats_.events_processed = 0;
  stats_.stall_events = 0;
  stats_.stall_time_total = 0;
  stats_.stall_time_max = 0;
  stats_.max_in_transit = 0;
  stats_.max_inbox = 0;
  done_count_ = 0;

  if (proc_capacity_ < static_cast<std::size_t>(nprocs_)) {
    destroy_procs();
    ::operator delete(static_cast<void*>(procs_));
    procs_ = static_cast<EngineProc*>(
        ::operator new(sizeof(EngineProc) * static_cast<std::size_t>(nprocs_)));
    proc_capacity_ = static_cast<std::size_t>(nprocs_);
  }
  for (ProcId i = 0; i < nprocs_; ++i) {
    // Reuse processors surviving from the previous run (their inbox rings
    // keep their capacity); construct any the arena hasn't seen yet.
    EngineProc& p = proc(i);
    if (i < live_procs_) {
      p.reset_for_run();
    } else {
      new (&p) EngineProc(*this, i);
      live_procs_ = i + 1;  // destroy_procs cleans up if a factory throws
    }
    p.root_ = programs[shared ? 0 : static_cast<std::size_t>(i)](p);
    BSPLOGP_EXPECTS(p.root_.valid());
    p.frame_ = p.root_.handle();
    push(0, Phase::Processor, EventKind::Start, i);
  }

  std::int64_t processed = 0;  // hot counter, spilled to stats_ after
  try {
  while (!events_.empty()) {
    const Event ev = events_.pop();
    if (ev.t > options_.max_time) {
      stats_.timed_out = true;
      break;
    }
    processed += 1;
    EngineProc& p = proc(ev.proc);
    switch (ev.kind) {
      case EventKind::Start:
        resume(p);
        break;
      case EventKind::Resume:
        BSPLOGP_ASSERT(p.status_ == EngineProc::Status::ComputeWait);
        resume(p);
        break;
      case EventKind::Delivery:
        // The pooled payload stays valid through the handler: deliveries
        // push only payload-free events (Accept/Acquire), so the pool
        // cannot grow or recycle this slot before it is consumed.
        handle_delivery(ev.proc, ev.t, events_.payload(ev.payload));
        events_.release(ev.payload);
        break;
      case EventKind::Submit:
        handle_submit(p, ev.t);
        break;
      case EventKind::RecvCheck:
        handle_recv_check(p, ev.t);
        break;
      case EventKind::Acquire:
        BSPLOGP_ASSERT(p.status_ == EngineProc::Status::AcquireWait);
        do_acquire(p, ev.t);
        break;
      case EventKind::Accept:
        handle_accept(ev.proc, ev.t);
        break;
    }
  }
  } catch (...) {
    // A program threw: keep the failure-state contract of
    // last_run_stats() — the count covers events up to the throw.
    stats_.events_processed = processed;
    throw;
  }
  stats_.events_processed = processed;

  Time finish = 0;
  for (ProcId i = 0; i < nprocs_; ++i) {
    const EngineProc& p = proc(i);
    if (p.status_ != EngineProc::Status::Done) {
      stats_.blocked_procs.push_back(p.id());
    }
    finish = std::max(finish, p.now());
  }
  // A processor parked past the horizon (e.g. in SubmitWait or ComputeWait)
  // has a local clock beyond max_time; a timed-out run still ends at the
  // horizon.
  if (stats_.timed_out) finish = std::min(finish, options_.max_time);
  stats_.finish_time = finish;
  stats_.deadlock = !stats_.timed_out && !stats_.blocked_procs.empty();
  if (options_.sink != nullptr) options_.sink->run_end(stats_.finish_time);
  return stats_;
}

}  // namespace bsplogp::logp

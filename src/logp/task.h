// Coroutine task type for LogP processor programs.
//
// A LogP processor is a serial machine running a sequential program whose
// only interactions with the world are timed operations (compute, send,
// recv). C++20 coroutines express that directly: a program is a coroutine
// that co_awaits machine operations; the engine resumes it when the
// operation resolves at the right model time.
//
// Task<T> supports composition: a program can `co_await` a sub-task (e.g. a
// collective like combine-and-broadcast) running on the same processor.
// Child completion resumes the parent by symmetric transfer, so arbitrarily
// deep protocol stacks cost no engine bookkeeping — the engine only ever
// sees the leaf operation awaiters.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "src/core/contracts.h"
#include "src/core/frame_arena.h"

namespace bsplogp::logp {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  /// Frame recycling: coroutine frames allocate through the thread's
  /// current core::FrameArena when one is scoped (the engine scopes its
  /// per-machine arena around run(); the native backend scopes one per
  /// processor thread), so steady-state program re-runs reuse frames
  /// instead of hitting the global heap. With no arena scoped, frames use
  /// the global heap via a headed block — Tasks created outside any
  /// machine keep working unchanged. Deallocation routes by the block
  /// header, never by thread state, so a frame may be destroyed under a
  /// different (or no) scope than it was created under.
  static void* operator new(std::size_t size) {
    return core::FrameArena::allocate_frame(size);
  }
  static void operator delete(void* p) noexcept {
    core::FrameArena::deallocate(p);
  }
  static void operator delete(void* p, std::size_t) noexcept {
    core::FrameArena::deallocate(p);
  }

  /// Parent coroutine to resume when this one finishes (nullptr for roots).
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// An eagerly-destroyed, move-only coroutine task. Created suspended; the
/// LogP engine starts root tasks, and `co_await task` starts child tasks.
template <typename T = void>
class Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }
  [[nodiscard]] std::coroutine_handle<promise_type> handle() const {
    return handle_;
  }

  /// Awaiting a task starts it; the awaiting coroutine resumes when the
  /// task completes, receiving its value (or rethrowing its exception).
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer into the child
      }
      T await_resume() {
        auto& p = child.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        BSPLOGP_ASSERT(p.value.has_value());
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }
  [[nodiscard]] std::coroutine_handle<promise_type> handle() const {
    return handle_;
  }
  /// Rethrows the task's stored exception, if any. The engine calls this on
  /// completed root tasks so user errors surface at the run() call site.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() {
        auto& p = child.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace bsplogp::logp

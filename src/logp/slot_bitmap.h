// Circular occupancy bitmap for per-destination delivery slots.
//
// The engine schedules at most one delivery per destination per time step,
// choosing a slot inside the window (accept, accept + L]. At any accept
// time t every still-occupied slot lies in [t + 1, t + L] (earlier slots
// were delivered and cleared before the Accept phase of step t runs), so a
// power-of-two ring of >= L bits maps each live slot time to a unique bit.
// This replaces the per-destination std::set<Time> — no node allocations,
// and the Earliest/Latest scans advance a word (64 slots) per iteration.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "src/core/contracts.h"
#include "src/core/types.h"

namespace bsplogp::logp::detail {

class SlotBitmap {
 public:
  /// Sizes the ring for slot windows spanning at most `span` consecutive
  /// time steps and clears it.
  void init(Time span) {
    BSPLOGP_EXPECTS(span >= 1);
    const auto bits = std::max<std::uint64_t>(
        64, std::bit_ceil(static_cast<std::uint64_t>(span)));
    words_.assign(bits / 64, 0);
    mask_ = bits - 1;
  }

  [[nodiscard]] bool occupied(Time s) const {
    const std::uint64_t i = static_cast<std::uint64_t>(s) & mask_;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(Time s) {
    const std::uint64_t i = static_cast<std::uint64_t>(s) & mask_;
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void clear(Time s) {
    const std::uint64_t i = static_cast<std::uint64_t>(s) & mask_;
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Smallest free slot in [lo, hi], or -1 if the whole window is taken.
  /// Requires hi - lo + 1 <= ring size (the L-window guarantees this).
  [[nodiscard]] Time first_free(Time lo, Time hi) const {
    Time s = lo;
    while (s <= hi) {
      const std::uint64_t i = static_cast<std::uint64_t>(s) & mask_;
      const unsigned bitpos = static_cast<unsigned>(i & 63);
      const Time chunk =
          std::min<Time>(static_cast<Time>(64 - bitpos), hi - s + 1);
      std::uint64_t free = ~words_[i >> 6] >> bitpos;  // bit 0 == time s
      if (chunk < 64) free &= (std::uint64_t{1} << chunk) - 1;
      if (free != 0) return s + std::countr_zero(free);
      s += chunk;
    }
    return -1;
  }

  /// Number of free slots in [lo, hi], popcounted a word (64 slots) per
  /// iteration. Pairs with nth_free: the UniformRandom delivery schedule
  /// draws k below this count and selects the k-th free slot, replacing
  /// the per-slot scan that rebuilt a std::vector<Time> on every fallback.
  [[nodiscard]] Time count_free(Time lo, Time hi) const {
    Time cnt = 0;
    Time s = lo;
    while (s <= hi) {
      const std::uint64_t i = static_cast<std::uint64_t>(s) & mask_;
      const unsigned bitpos = static_cast<unsigned>(i & 63);
      const Time chunk =
          std::min<Time>(static_cast<Time>(64 - bitpos), hi - s + 1);
      std::uint64_t free = ~words_[i >> 6] >> bitpos;  // bit 0 == time s
      if (chunk < 64) free &= (std::uint64_t{1} << chunk) - 1;
      cnt += std::popcount(free);
      s += chunk;
    }
    return cnt;
  }

  /// The k-th free slot in [lo, hi] (k = 0 is the smallest), or -1 if
  /// fewer than k + 1 slots are free. Word-at-a-time: whole occupied words
  /// are skipped by popcount, and the in-word rank reduces to clearing k
  /// low set bits.
  [[nodiscard]] Time nth_free(Time lo, Time hi, Time k) const {
    Time s = lo;
    while (s <= hi) {
      const std::uint64_t i = static_cast<std::uint64_t>(s) & mask_;
      const unsigned bitpos = static_cast<unsigned>(i & 63);
      const Time chunk =
          std::min<Time>(static_cast<Time>(64 - bitpos), hi - s + 1);
      std::uint64_t free = ~words_[i >> 6] >> bitpos;  // bit 0 == time s
      if (chunk < 64) free &= (std::uint64_t{1} << chunk) - 1;
      const Time in_word = std::popcount(free);
      if (k < in_word) {
        for (; k > 0; --k) free &= free - 1;  // drop k lowest set bits
        return s + std::countr_zero(free);
      }
      k -= in_word;
      s += chunk;
    }
    return -1;
  }

  /// Largest free slot in [lo, hi], or -1 if the whole window is taken.
  [[nodiscard]] Time last_free(Time lo, Time hi) const {
    Time s = hi;
    while (s >= lo) {
      const std::uint64_t i = static_cast<std::uint64_t>(s) & mask_;
      const unsigned bitpos = static_cast<unsigned>(i & 63);
      const Time chunk =
          std::min<Time>(static_cast<Time>(bitpos) + 1, s - lo + 1);
      std::uint64_t free = ~words_[i >> 6]
                           << (63 - bitpos);  // bit 63 == time s
      if (chunk < 64) free &= ~std::uint64_t{0} << (64 - chunk);
      if (free != 0) return s - std::countl_zero(free);
      s -= chunk;
    }
    return -1;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t mask_ = 63;
};

}  // namespace bsplogp::logp::detail

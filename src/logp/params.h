// LogP machine parameters (paper, Section 2.2).
//
//   L — upper bound on the latency between acceptance and delivery of a
//       message, provided the system operates within capacity;
//   o — overhead: processor-occupied steps to prepare a submission or to
//       acquire a buffered incoming message;
//   G — gap: minimum spacing between consecutive submissions, and between
//       consecutive acquisitions, by the same processor (1/G is the
//       per-processor injection/reception rate). Written G, not g, to avoid
//       confusion with the BSP bandwidth parameter, as in the paper.
//
// The capacity constraint permits at most ceil(L/G) messages in transit to
// any single destination at any time; submissions that would exceed it are
// held back by the Stalling Rule, leaving their senders stalled.
//
// Following the paper's Section-2.2 analysis we require
//   max{2, o} <= G <= L:
// G >= o because the processor spends o per message anyway; G >= 2 because
// G = 1 makes ceil(L/G) = L and forces the medium to deliver one of L
// simultaneously-submitted messages after a single step, which no real
// machine supports; G <= L because otherwise stall-free programs exist that
// need unbounded input buffers.
#pragma once

#include "src/core/contracts.h"
#include "src/core/types.h"

namespace bsplogp::logp {

struct Params {
  Time L = 8;
  Time o = 1;
  Time G = 2;

  /// The capacity threshold ceil(L/G): max messages in transit per
  /// destination.
  [[nodiscard]] Time capacity() const { return ceil_div(L, G); }

  void validate() const {
    BSPLOGP_EXPECTS(o >= 0);
    BSPLOGP_EXPECTS(G >= 2);
    BSPLOGP_EXPECTS(G >= o);
    BSPLOGP_EXPECTS(G <= L);
  }
};

}  // namespace bsplogp::logp

// The LogP processor programming interface.
//
// A LogP program is a coroutine over an abstract Proc: compute, wait_until,
// send, recv. Proc is an interface with two implementations:
//   * logp::Machine's engine processor — the native LogP machine of
//     Section 2.2 (machine.h), and
//   * xsim::LogpOnBsp's cycle processor — the Theorem-1 simulation that
//     executes the same program on a BSP machine in supersteps of L/2 LogP
//     steps.
// Programs written against Proc run unmodified on both, which is exactly
// the sense in which Theorem 1's simulation "executes LogP programs on
// BSP".
//
// Timing state that is defined by the model itself — the local clock, the
// gap bookkeeping for submissions and acquisitions, the input buffer —
// lives here; executors implement only the scheduling of the three
// interaction points (issue_send / issue_recv / issue_wait).
#pragma once

#include <algorithm>
#include <coroutine>

#include "src/core/contracts.h"
#include "src/core/ring_buffer.h"
#include "src/core/small_fn.h"
#include "src/core/types.h"
#include "src/logp/params.h"
#include "src/logp/task.h"

namespace bsplogp::logp {

class Proc {
 public:
  virtual ~Proc() = default;
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  [[nodiscard]] ProcId id() const { return id_; }
  [[nodiscard]] virtual ProcId nprocs() const = 0;
  [[nodiscard]] virtual const Params& params() const = 0;
  /// The processor's local clock: the model time its program has reached.
  [[nodiscard]] Time now() const { return clock_; }

  /// Performs n local operations (n >= 0).
  [[nodiscard]] auto compute(Time n);
  /// Idles until model time t (no-op if already past). Protocols with
  /// prescribed transmission slots (the CB parity rule for ceil(L/G) = 1,
  /// Theorem 2's routing cycles, Theorem 3's rounds) are built on this.
  [[nodiscard]] auto wait_until(Time t);
  /// Submits one message: o preparation steps, then submission (>= G after
  /// the previous one); resumes at acceptance, stalling meanwhile.
  [[nodiscard]] auto send(ProcId dst, Word payload, std::int32_t tag = 0,
                          Word aux = 0, std::int32_t channel = 0);
  /// send() for a pre-built message (src is overwritten with this
  /// processor's id; dst taken from the message).
  [[nodiscard]] auto send_msg(Message m);
  /// Acquires the oldest buffered incoming message (o steps, >= G after the
  /// previous acquisition), waiting for an arrival if the buffer is empty.
  [[nodiscard]] auto recv();

  /// Messages currently buffered (delivered, not yet acquired). A free
  /// peek: real processors know this from their buffer bookkeeping.
  [[nodiscard]] std::size_t inbox_size() const { return inbox_.size(); }

  /// The earliest model time at which a send issued now would be submitted
  /// (now + o, pushed later by the gap rule). Protocols that must align
  /// submissions to prescribed slots use this.
  [[nodiscard]] Time earliest_submit() const {
    Time s = clock_ + params().o;
    if (has_submitted_) s = std::max(s, last_submit_ + params().G);
    return s;
  }

  /// The earliest model time at which an acquisition issued now could
  /// start (now, pushed later by the acquisition gap rule). Used by
  /// protocols that interleave receives into the slack of a paced send
  /// pipeline (e.g. off-line routing's 2o + G(h-1) + L schedule).
  [[nodiscard]] Time earliest_acquire() const {
    Time a = clock_;
    if (has_acquired_) a = std::max(a, last_acquire_ + params().G);
    return a;
  }

 protected:
  explicit Proc(ProcId id) : id_(id) {}

  /// Restores the model-defined state to its just-constructed values so an
  /// executor can reuse a processor across runs without destroying it —
  /// container capacities (the inbox ring) survive, which is what keeps
  /// re-runs allocation-free.
  void reset_base_state() {
    clock_ = 0;
    last_submit_ = 0;
    last_acquire_ = 0;
    has_submitted_ = false;
    has_acquired_ = false;
    inbox_.clear();  // keeps capacity
    acquired_ = Message{};
  }

  /// Executor hooks: called from the operation awaiters with the coroutine
  /// frame to resume when the operation resolves.
  virtual void issue_send(Message m, std::coroutine_handle<> frame) = 0;
  virtual void issue_recv(std::coroutine_handle<> frame) = 0;
  virtual void issue_wait(Time target, std::coroutine_handle<> frame) = 0;

  ProcId id_;
  Time clock_ = 0;
  Time last_submit_ = 0;   // valid only if has_submitted_
  Time last_acquire_ = 0;  // valid only if has_acquired_
  bool has_submitted_ = false;
  bool has_acquired_ = false;
  // Flat ring, not std::deque: the input buffer is unbounded in the model
  // but recycles its storage in steady state, and an empty buffer costs no
  // allocation — constructing p = 65536 processors allocates nothing here.
  core::RingBuffer<Message> inbox_;
  Message acquired_{};  // message returned by the resolving recv
};

/// A per-processor program: receives its Proc handle and runs to
/// completion. Captures of external state (result arrays, parameters) are
/// how programs produce output. A SmallFn, not std::function: workload
/// factories bind p of these, and engine-sized captures (a few pointers +
/// parameters) stay inline instead of costing a heap allocation each.
using ProgramFn = core::SmallFn<Task<>(Proc&)>;

// ---- Operation awaiters ----------------------------------------------------

inline auto Proc::compute(Time n) {
  struct Awaiter {
    Proc& p;
    Time n;
    bool await_ready() const { return n == 0; }
    void await_suspend(std::coroutine_handle<> frame) {
      p.issue_wait(p.clock_ + n, frame);
    }
    void await_resume() {}
  };
  BSPLOGP_EXPECTS(n >= 0);
  return Awaiter{*this, n};
}

inline auto Proc::wait_until(Time t) {
  struct Awaiter {
    Proc& p;
    Time t;
    bool await_ready() const { return t <= p.clock_; }
    void await_suspend(std::coroutine_handle<> frame) {
      p.issue_wait(t, frame);
    }
    void await_resume() {}
  };
  return Awaiter{*this, t};
}

inline auto Proc::send_msg(Message m) {
  struct Awaiter {
    Proc& p;
    Message m;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> frame) {
      p.issue_send(m, frame);
    }
    void await_resume() {}
  };
  m.src = id_;
  return Awaiter{*this, m};
}

inline auto Proc::send(ProcId dst, Word payload, std::int32_t tag, Word aux,
                       std::int32_t channel) {
  return send_msg(Message{id_, dst, payload, tag, aux, channel});
}

inline auto Proc::recv() {
  struct Awaiter {
    Proc& p;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> frame) { p.issue_recv(frame); }
    // A reference, valid until the processor's next acquisition: programs
    // that only read a field skip a Message copy per receive; programs
    // that keep the message bind it to a value as before.
    const Message& await_resume() { return p.acquired_; }
  };
  return Awaiter{*this};
}

}  // namespace bsplogp::logp

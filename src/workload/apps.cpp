#include "src/workload/apps.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/algo/mailbox.h"
#include "src/core/contracts.h"
#include "src/core/rng.h"

namespace bsplogp::workload {
namespace {

using part::Grid;
using part::Index;
using part::Partitioning;
using part::Point;
using part::Scheme;

// ---- Deterministic value derivation ----------------------------------------

[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  std::uint64_t s = x;
  return core::splitmix64(s);
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

/// n log n-ish deterministic work charge for sorting m keys.
[[nodiscard]] Time sort_cost(std::size_t m) {
  return static_cast<Time>(m) *
         ceil_log2(static_cast<std::int64_t>(m) + 1);
}

/// Rejects out-of-domain specs with the registry's domain message; the
/// factories throw rather than abort so the harness can report and exit.
void require_valid(const char* family, const Spec& s) {
  const Entry* e = find(family);
  BSPLOGP_EXPECTS(e != nullptr);
  std::string error;
  if (!validate(*e, s, &error)) throw std::invalid_argument(error);
}

void capture(std::vector<Word>* result, ProcId me, std::uint64_t h) {
  if (result != nullptr) (*result)[static_cast<std::size_t>(me)] =
      static_cast<Word>(h);
}

// ============================================================================
// stencil-2d
// ============================================================================

/// A local cell's view of one neighbour.
struct NbRef {
  std::int8_t kind = 0;  // 0 = outside the mesh (contributes 0),
                         // 1 = local (v = local cell index),
                         // 2 = halo (v = global cell id)
  std::int64_t v = 0;
};

struct StencilPlan {
  std::vector<std::int64_t> cell_ids;  // global ids, local row-major order
  std::vector<Word> init;
  std::vector<std::array<NbRef, 4>> nbs;
  /// Boundary cells each other processor needs: (dst, local indices).
  std::vector<std::pair<ProcId, std::vector<std::size_t>>> sends;
  std::int64_t recv_count = 0;  // distinct remote cells needed per iteration
};

struct StencilSetup {
  ProcId p = 0;
  std::int64_t nx = 0, ny = 0;
  int rounds = 0;
  std::vector<StencilPlan> procs;
};

[[nodiscard]] Word cell_init(std::uint64_t seed, std::int64_t id) {
  return static_cast<Word>(
      mix(seed ^ (0x57E2C1ULL << 32) ^ static_cast<std::uint64_t>(id)) & 0xFF);
}

[[nodiscard]] std::shared_ptr<const StencilSetup> build_stencil(
    const Spec& s) {
  require_valid("stencil-2d", s);
  const Partitioning pt(Scheme::Block, {s.nx, s.ny}, app_grid(s));
  auto su = std::make_shared<StencilSetup>();
  su->p = s.p;
  su->nx = s.nx;
  su->ny = s.ny;
  su->rounds = s.rounds;
  su->procs.resize(static_cast<std::size_t>(s.p));
  constexpr std::array<std::array<Index, 2>, 4> kDirs{
      {{-1, 0}, {1, 0}, {0, -1}, {0, 1}}};
  for (ProcId r = 0; r < s.p; ++r) {
    StencilPlan& plan = su->procs[static_cast<std::size_t>(r)];
    const Point shape = pt.local_shape(r);
    std::map<ProcId, std::set<std::size_t>> send_sets;
    std::set<std::int64_t> halo_ids;
    for (Index lx = 0; lx < shape[0]; ++lx)
      for (Index ly = 0; ly < shape[1]; ++ly) {
        const Point g = pt.to_global(r, {lx, ly});
        const std::int64_t id = g[0] * s.ny + g[1];
        const std::size_t idx = plan.cell_ids.size();
        plan.cell_ids.push_back(id);
        plan.init.push_back(cell_init(s.seed, id));
        std::array<NbRef, 4> refs;
        for (std::size_t d = 0; d < 4; ++d) {
          const Index ngx = g[0] + kDirs[d][0];
          const Index ngy = g[1] + kDirs[d][1];
          if (ngx < 0 || ngx >= s.nx || ngy < 0 || ngy >= s.ny) {
            refs[d] = NbRef{0, 0};
            continue;
          }
          const ProcId o = pt.owner({ngx, ngy});
          if (o == r) {
            const Point ll = pt.to_local({ngx, ngy});
            refs[d] = NbRef{1, ll[0] * shape[1] + ll[1]};
          } else {
            // I need their cell (receive) and, symmetrically, they need
            // mine: the 4-neighbourhood relation is its own inverse.
            refs[d] = NbRef{2, ngx * s.ny + ngy};
            halo_ids.insert(ngx * s.ny + ngy);
            send_sets[o].insert(idx);
          }
        }
        plan.nbs.push_back(refs);
      }
    plan.recv_count = static_cast<std::int64_t>(halo_ids.size());
    for (auto& [dst, cells] : send_sets)
      plan.sends.emplace_back(dst,
                              std::vector<std::size_t>(cells.begin(),
                                                       cells.end()));
  }
  return su;
}

[[nodiscard]] Word stencil_new_value(
    const std::vector<Word>& values, const std::array<NbRef, 4>& nbs,
    const std::unordered_map<std::int64_t, Word>& halo, std::size_t idx) {
  Word sum = 4 * values[idx];
  for (const NbRef& nb : nbs) {
    if (nb.kind == 1) sum += values[static_cast<std::size_t>(nb.v)];
    if (nb.kind == 2) sum += halo.at(nb.v);
  }
  return sum >> 3;
}

[[nodiscard]] std::uint64_t stencil_hash(const std::vector<Word>& values,
                                         const std::vector<Word>& rhist) {
  std::uint64_t h = fold(kFnvBasis, values.size());
  for (const Word v : values) h = fold(h, static_cast<std::uint64_t>(v));
  for (const Word r : rhist) h = fold(h, static_cast<std::uint64_t>(r));
  return h;
}

// BSP tags: cell ids are >= 0, control traffic is negative.
constexpr std::int32_t kStResid = -1;
constexpr std::int32_t kStGlobal = -2;

/// Two supersteps per iteration t: even 2t = exchange (halo sends; the
/// master also folds the previous iteration's residuals and broadcasts),
/// odd 2t+1 = update (apply stencil, accumulate residual, workers send it
/// to the master). Tail: even 2T broadcasts R_{T-1}, odd 2T+1 records it.
class StencilBspProgram final : public bsp::ProcProgram {
 public:
  StencilBspProgram(std::shared_ptr<const StencilSetup> su, ProcId me,
                    std::vector<Word>* result)
      : su_(std::move(su)),
        me_(me),
        result_(result),
        values_(su_->procs[static_cast<std::size_t>(me)].init) {}

  bool step(bsp::Ctx& c) override {
    // Once halted, stay halted: bsp::Machine never re-steps a finished
    // program, but xsim::BspOnLogp keeps stepping everyone until the
    // global OR of continue flags clears, so step() must be idempotent
    // after the final capture.
    if (halted_) return false;
    const StencilPlan& plan = su_->procs[static_cast<std::size_t>(me_)];
    const std::int64_t t = c.superstep() / 2;
    const std::int64_t T = su_->rounds;
    if (c.superstep() % 2 == 0) {  // exchange phase
      if (me_ == 0 && t >= 1) {
        Word r = own_resid_;
        for (const Message& m : c.inbox())
          if (m.tag == kStResid) r += m.payload;
        rhist_.push_back(r);
        for (ProcId w = 1; w < c.nprocs(); ++w) c.send(w, r, kStGlobal);
      }
      if (t == T) {
        if (me_ == 0) {
          capture(result_, me_, stencil_hash(values_, rhist_));
          halted_ = true;
          return false;
        }
        return true;  // workers wait for the final broadcast
      }
      for (const auto& [dst, cells] : plan.sends)
        for (const std::size_t ci : cells)
          c.send(dst, values_[ci],
                 static_cast<std::int32_t>(plan.cell_ids[ci]));
      return true;
    }
    // update phase
    halo_.clear();
    for (const Message& m : c.inbox()) {
      if (m.tag >= 0) halo_[m.tag] = m.payload;
      else if (m.tag == kStGlobal) rhist_.push_back(m.payload);
    }
    if (t == T) {  // workers' final step: R_{T-1} recorded above
      capture(result_, me_, stencil_hash(values_, rhist_));
      halted_ = true;
      return false;
    }
    std::vector<Word> next(values_.size());
    Word resid = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      next[i] = stencil_new_value(values_, plan.nbs[i], halo_, i);
      resid += next[i] > values_[i] ? next[i] - values_[i]
                                    : values_[i] - next[i];
    }
    values_ = std::move(next);
    c.charge(5 * static_cast<Time>(values_.size()));
    if (me_ == 0) own_resid_ = resid;
    else c.send(0, resid, kStResid);
    return true;
  }

 private:
  std::shared_ptr<const StencilSetup> su_;
  ProcId me_;
  std::vector<Word>* result_;
  std::vector<Word> values_;
  std::unordered_map<std::int64_t, Word> halo_;
  std::vector<Word> rhist_;
  Word own_resid_ = 0;
  bool halted_ = false;
};

// LogP tags: iteration-scoped so reordered deliveries can never cross
// iterations (the Mailbox stashes early arrivals). Cell ids ride in aux.
[[nodiscard]] constexpr std::int32_t st_halo(std::int64_t t) {
  return static_cast<std::int32_t>(t * 4 + 1);
}
[[nodiscard]] constexpr std::int32_t st_resid(std::int64_t t) {
  return static_cast<std::int32_t>(t * 4 + 2);
}
[[nodiscard]] constexpr std::int32_t st_global(std::int64_t t) {
  return static_cast<std::int32_t>(t * 4 + 3);
}

[[nodiscard]] logp::Task<Message> recv_tag(algo::Mailbox& mb,
                                           std::int32_t tag) {
  return mb.recv_match([tag](const Message& m) { return m.tag == tag; });
}

}  // namespace

part::Grid app_grid(const Spec& s) {
  return part::Grid::rectangle(s.p, s.grid_rows);
}

std::vector<logp::ProgramFn> stencil2d_logp(const Spec& s) {
  auto su = build_stencil(s);
  if (s.result != nullptr) s.result->assign(static_cast<std::size_t>(s.p), 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(s.p));
  for (ProcId i = 0; i < s.p; ++i)
    progs.emplace_back([su, i, result = s.result,
                        p = s.p](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      const StencilPlan& plan = su->procs[static_cast<std::size_t>(i)];
      std::vector<Word> values = plan.init;
      std::unordered_map<std::int64_t, Word> halo;
      std::vector<Word> rhist;
      for (std::int64_t t = 0; t < su->rounds; ++t) {
        for (const auto& [dst, cells] : plan.sends)
          for (const std::size_t ci : cells)
            co_await pr.send(dst, values[ci], st_halo(t), plan.cell_ids[ci]);
        halo.clear();
        for (std::int64_t k = 0; k < plan.recv_count; ++k) {
          const Message m = co_await recv_tag(mb, st_halo(t));
          halo[m.aux] = m.payload;
        }
        std::vector<Word> next(values.size());
        Word resid = 0;
        for (std::size_t c = 0; c < values.size(); ++c) {
          next[c] = stencil_new_value(values, plan.nbs[c], halo, c);
          resid += next[c] > values[c] ? next[c] - values[c]
                                       : values[c] - next[c];
        }
        values = std::move(next);
        co_await pr.compute(5 * static_cast<Time>(values.size()));
        if (i == 0) {
          Word r = resid;
          for (ProcId w = 1; w < p; ++w)
            r += (co_await recv_tag(mb, st_resid(t))).payload;
          rhist.push_back(r);
          for (ProcId w = 1; w < p; ++w)
            co_await pr.send(w, r, st_global(t));
        } else {
          co_await pr.send(0, resid, st_resid(t));
          rhist.push_back((co_await recv_tag(mb, st_global(t))).payload);
        }
      }
      capture(result, i, stencil_hash(values, rhist));
    });
  return progs;
}

std::vector<std::unique_ptr<bsp::ProcProgram>> stencil2d_bsp(const Spec& s) {
  auto su = build_stencil(s);
  if (s.result != nullptr) s.result->assign(static_cast<std::size_t>(s.p), 0);
  std::vector<std::unique_ptr<bsp::ProcProgram>> progs;
  progs.reserve(static_cast<std::size_t>(s.p));
  for (ProcId i = 0; i < s.p; ++i)
    progs.push_back(std::make_unique<StencilBspProgram>(su, i, s.result));
  return progs;
}

std::vector<Word> stencil2d_expected(const Spec& s) {
  auto su = build_stencil(s);
  std::vector<Word> grid(static_cast<std::size_t>(s.nx * s.ny));
  for (std::int64_t id = 0; id < s.nx * s.ny; ++id)
    grid[static_cast<std::size_t>(id)] = cell_init(s.seed, id);
  std::vector<Word> rhist;
  for (int t = 0; t < s.rounds; ++t) {
    std::vector<Word> next(grid.size());
    Word resid = 0;
    for (std::int64_t gx = 0; gx < s.nx; ++gx)
      for (std::int64_t gy = 0; gy < s.ny; ++gy) {
        const std::int64_t id = gx * s.ny + gy;
        Word sum = 4 * grid[static_cast<std::size_t>(id)];
        if (gx > 0) sum += grid[static_cast<std::size_t>(id - s.ny)];
        if (gx + 1 < s.nx) sum += grid[static_cast<std::size_t>(id + s.ny)];
        if (gy > 0) sum += grid[static_cast<std::size_t>(id - 1)];
        if (gy + 1 < s.ny) sum += grid[static_cast<std::size_t>(id + 1)];
        next[static_cast<std::size_t>(id)] = sum >> 3;
        const Word d = next[static_cast<std::size_t>(id)] -
                       grid[static_cast<std::size_t>(id)];
        resid += d < 0 ? -d : d;
      }
    grid = std::move(next);
    rhist.push_back(resid);
  }
  std::vector<Word> out(static_cast<std::size_t>(s.p));
  for (ProcId r = 0; r < s.p; ++r) {
    const StencilPlan& plan = su->procs[static_cast<std::size_t>(r)];
    std::vector<Word> values;
    values.reserve(plan.cell_ids.size());
    for (const std::int64_t id : plan.cell_ids)
      values.push_back(grid[static_cast<std::size_t>(id)]);
    out[static_cast<std::size_t>(r)] =
        static_cast<Word>(stencil_hash(values, rhist));
  }
  return out;
}

// ============================================================================
// sample-sort
// ============================================================================

namespace {

struct SortSetup {
  ProcId p = 0;
  /// Owned keys per processor, block-cyclic (block 4) deal order.
  std::vector<std::vector<Word>> keys;
};

[[nodiscard]] Word key_value(std::uint64_t seed, Index g) {
  return static_cast<Word>(
      mix(seed ^ (0x5A9B7EULL << 32) ^ static_cast<std::uint64_t>(g)) &
      0xFFFFF);
}

constexpr Index kSortBlock = 4;

[[nodiscard]] std::shared_ptr<const SortSetup> build_sort(const Spec& s) {
  require_valid("sample-sort", s);
  const Partitioning pt(Scheme::BlockCyclic, {s.nx},
                        Grid({static_cast<Index>(s.p)}), kSortBlock);
  auto su = std::make_shared<SortSetup>();
  su->p = s.p;
  su->keys.resize(static_cast<std::size_t>(s.p));
  for (ProcId r = 0; r < s.p; ++r) {
    const Index count = pt.local_count(r);
    auto& mine = su->keys[static_cast<std::size_t>(r)];
    mine.reserve(static_cast<std::size_t>(count));
    for (Index l = 0; l < count; ++l)
      mine.push_back(key_value(s.seed, pt.to_global(r, {l})[0]));
  }
  return su;
}

/// p regular samples of a sorted run (positions floor(j*len/p)); len >= 4
/// is guaranteed by the nx >= 4p domain constraint.
[[nodiscard]] std::vector<Word> regular_samples(const std::vector<Word>& run,
                                                ProcId p) {
  std::vector<Word> out;
  out.reserve(static_cast<std::size_t>(p));
  for (ProcId j = 0; j < p; ++j)
    out.push_back(run[static_cast<std::size_t>(j) * run.size() /
                      static_cast<std::size_t>(p)]);
  return out;
}

/// The p-1 splitters of the sorted p*p sample pool.
[[nodiscard]] std::vector<Word> pick_splitters(std::vector<Word> pool,
                                               ProcId p) {
  std::sort(pool.begin(), pool.end());
  std::vector<Word> out;
  out.reserve(static_cast<std::size_t>(p) - 1);
  for (ProcId j = 0; j + 1 < p; ++j)
    out.push_back(pool[static_cast<std::size_t>(j + 1) *
                       static_cast<std::size_t>(p)]);
  return out;
}

/// Destination bucket (== destination processor) of a key.
[[nodiscard]] ProcId bucket_of(const std::vector<Word>& splitters, Word key) {
  return static_cast<ProcId>(
      std::upper_bound(splitters.begin(), splitters.end(), key) -
      splitters.begin());
}

[[nodiscard]] std::uint64_t sort_hash(const std::vector<Word>& bucket) {
  std::uint64_t h = fold(kFnvBasis, bucket.size());
  for (const Word k : bucket) h = fold(h, static_cast<std::uint64_t>(k));
  return h;
}

constexpr std::int32_t kSoSample = -3;
constexpr std::int32_t kSoSplit = -4;
constexpr std::int32_t kSoKey = -5;
constexpr std::int32_t kSoCount = -6;  // LogP only: per-destination count

/// Four supersteps: 0 = local sort + samples to the master, 1 = master
/// sorts the sample pool and broadcasts splitters, 2 = everyone buckets
/// and routes keys, 3 = final local sort. Lockstep: the master's own keys
/// also travel in superstep 2, so worker inboxes never mix phases.
class SortBspProgram final : public bsp::ProcProgram {
 public:
  SortBspProgram(std::shared_ptr<const SortSetup> su, ProcId me,
                 std::vector<Word>* result)
      : su_(std::move(su)), me_(me), result_(result) {}

  bool step(bsp::Ctx& c) override {
    const ProcId p = su_->p;
    switch (c.superstep()) {
      case 0: {
        sorted_ = su_->keys[static_cast<std::size_t>(me_)];
        std::sort(sorted_.begin(), sorted_.end());
        c.charge(sort_cost(sorted_.size()));
        const std::vector<Word> samples = regular_samples(sorted_, p);
        if (me_ == 0) pool_ = samples;
        else
          for (const Word v : samples) c.send(0, v, kSoSample);
        return true;
      }
      case 1: {
        if (me_ == 0) {
          for (const Message& m : c.inbox())
            if (m.tag == kSoSample) pool_.push_back(m.payload);
          splitters_ = pick_splitters(std::move(pool_), p);
          c.charge(sort_cost(static_cast<std::size_t>(p) *
                             static_cast<std::size_t>(p)));
          for (ProcId w = 1; w < p; ++w)
            for (const Word v : splitters_) c.send(w, v, kSoSplit);
        }
        return true;
      }
      case 2: {
        if (me_ != 0) {
          for (const Message& m : c.inbox())
            if (m.tag == kSoSplit) splitters_.push_back(m.payload);
          std::sort(splitters_.begin(), splitters_.end());
        }
        for (const Word k : sorted_) {
          const ProcId b = bucket_of(splitters_, k);
          if (b == me_) final_.push_back(k);
          else c.send(b, k, kSoKey);
        }
        c.charge(static_cast<Time>(sorted_.size()));
        return true;
      }
      default: {
        for (const Message& m : c.inbox())
          if (m.tag == kSoKey) final_.push_back(m.payload);
        std::sort(final_.begin(), final_.end());
        c.charge(sort_cost(final_.size()));
        capture(result_, me_, sort_hash(final_));
        return false;
      }
    }
  }

 private:
  std::shared_ptr<const SortSetup> su_;
  ProcId me_;
  std::vector<Word>* result_;
  std::vector<Word> sorted_, pool_, splitters_, final_;
};

}  // namespace

std::vector<logp::ProgramFn> samplesort_logp(const Spec& s) {
  auto su = build_sort(s);
  if (s.result != nullptr) s.result->assign(static_cast<std::size_t>(s.p), 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(s.p));
  for (ProcId i = 0; i < s.p; ++i)
    progs.emplace_back([su, i, result = s.result,
                        p = s.p](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      std::vector<Word> sorted = su->keys[static_cast<std::size_t>(i)];
      std::sort(sorted.begin(), sorted.end());
      co_await pr.compute(sort_cost(sorted.size()));
      const std::vector<Word> samples = regular_samples(sorted, p);
      std::vector<Word> splitters;
      if (i == 0) {
        std::vector<Word> pool = samples;
        for (ProcId w = 1; w < p; ++w)
          for (ProcId j = 0; j < p; ++j)
            pool.push_back((co_await recv_tag(mb, kSoSample)).payload);
        splitters = pick_splitters(std::move(pool), p);
        co_await pr.compute(sort_cost(static_cast<std::size_t>(p) *
                                      static_cast<std::size_t>(p)));
        for (ProcId w = 1; w < p; ++w)
          for (const Word v : splitters) co_await pr.send(w, v, kSoSplit);
      } else {
        for (const Word v : samples) co_await pr.send(0, v, kSoSample);
        for (ProcId j = 0; j + 1 < p; ++j)
          splitters.push_back((co_await recv_tag(mb, kSoSplit)).payload);
        std::sort(splitters.begin(), splitters.end());
      }
      // Bucket and route. Counts go first so every receiver knows its
      // exact inbound key total (BSP gets this for free from the barrier).
      std::vector<std::vector<Word>> outgoing(static_cast<std::size_t>(p));
      std::vector<Word> final_keys;
      for (const Word k : sorted) {
        const ProcId b = bucket_of(splitters, k);
        if (b == i) final_keys.push_back(k);
        else outgoing[static_cast<std::size_t>(b)].push_back(k);
      }
      co_await pr.compute(static_cast<Time>(sorted.size()));
      for (ProcId d = 0; d < p; ++d) {
        if (d == i) continue;
        const auto& out = outgoing[static_cast<std::size_t>(d)];
        co_await pr.send(d, static_cast<Word>(out.size()), kSoCount);
        for (const Word k : out) co_await pr.send(d, k, kSoKey);
      }
      Word inbound = 0;
      for (ProcId d = 0; d + 1 < p; ++d)
        inbound += (co_await recv_tag(mb, kSoCount)).payload;
      for (Word k = 0; k < inbound; ++k)
        final_keys.push_back((co_await recv_tag(mb, kSoKey)).payload);
      std::sort(final_keys.begin(), final_keys.end());
      co_await pr.compute(sort_cost(final_keys.size()));
      capture(result, i, sort_hash(final_keys));
    });
  return progs;
}

std::vector<std::unique_ptr<bsp::ProcProgram>> samplesort_bsp(const Spec& s) {
  auto su = build_sort(s);
  if (s.result != nullptr) s.result->assign(static_cast<std::size_t>(s.p), 0);
  std::vector<std::unique_ptr<bsp::ProcProgram>> progs;
  progs.reserve(static_cast<std::size_t>(s.p));
  for (ProcId i = 0; i < s.p; ++i)
    progs.push_back(std::make_unique<SortBspProgram>(su, i, s.result));
  return progs;
}

std::vector<Word> samplesort_expected(const Spec& s) {
  auto su = build_sort(s);
  std::vector<Word> pool;
  for (ProcId r = 0; r < s.p; ++r) {
    std::vector<Word> run = su->keys[static_cast<std::size_t>(r)];
    std::sort(run.begin(), run.end());
    for (const Word v : regular_samples(run, s.p)) pool.push_back(v);
  }
  const std::vector<Word> splitters = pick_splitters(std::move(pool), s.p);
  std::vector<std::vector<Word>> buckets(static_cast<std::size_t>(s.p));
  for (const auto& run : su->keys)
    for (const Word k : run)
      buckets[static_cast<std::size_t>(bucket_of(splitters, k))].push_back(k);
  std::vector<Word> out(static_cast<std::size_t>(s.p));
  for (ProcId r = 0; r < s.p; ++r) {
    auto& b = buckets[static_cast<std::size_t>(r)];
    std::sort(b.begin(), b.end());
    out[static_cast<std::size_t>(r)] = static_cast<Word>(sort_hash(b));
  }
  return out;
}

// ============================================================================
// bsf-iterative
// ============================================================================

namespace {

struct BsfSetup {
  ProcId p = 0;
  int rounds = 0;
  std::uint64_t x0 = 0;
  /// Owned (global index, element value) pairs per processor, cyclic deal.
  std::vector<std::vector<std::pair<Index, Word>>> elems;
};

[[nodiscard]] Word elem_value(std::uint64_t seed, Index g) {
  return static_cast<Word>(
      mix(seed ^ (0xB5F0E1ULL << 32) ^ static_cast<std::uint64_t>(g)) &
      0xFFFF);
}

[[nodiscard]] std::shared_ptr<const BsfSetup> build_bsf(const Spec& s) {
  require_valid("bsf-iterative", s);
  const Partitioning pt(Scheme::Cyclic, {s.nx},
                        Grid({static_cast<Index>(s.p)}));
  auto su = std::make_shared<BsfSetup>();
  su->p = s.p;
  su->rounds = s.rounds;
  su->x0 = mix(s.seed ^ 0xB5F15EEDULL) & 0xFFFF;
  su->elems.resize(static_cast<std::size_t>(s.p));
  for (ProcId r = 0; r < s.p; ++r) {
    const Index count = pt.local_count(r);
    auto& mine = su->elems[static_cast<std::size_t>(r)];
    mine.reserve(static_cast<std::size_t>(count));
    for (Index l = 0; l < count; ++l) {
      const Index g = pt.to_global(r, {l})[0];
      mine.emplace_back(g, elem_value(s.seed, g));
    }
  }
  return su;
}

/// One processor's contribution to iteration t's global reduction:
/// a wrapping fold over its owned elements, keyed by the iterate x.
[[nodiscard]] Word bsf_partial(const BsfSetup& su, ProcId me,
                               std::uint64_t x) {
  std::uint64_t acc = 0;
  for (const auto& [g, e] : su.elems[static_cast<std::size_t>(me)])
    acc += mix(x ^ (static_cast<std::uint64_t>(g) << 24) ^
               static_cast<std::uint64_t>(e));
  return static_cast<Word>(acc);
}

/// The master's next iterate from the combined partial sum S.
[[nodiscard]] std::uint64_t bsf_next(std::uint64_t x, std::uint64_t S) {
  return mix(x + S) & 0xFFFF;
}

[[nodiscard]] std::uint64_t bsf_hash(std::uint64_t x, Word last_partial) {
  return fold(fold(kFnvBasis, x), static_cast<std::uint64_t>(last_partial));
}

constexpr std::int32_t kBsfX = -7;
constexpr std::int32_t kBsfPart = -8;

/// Two supersteps per iteration t: even 2t = master combines iteration
/// t-1's partials, derives and broadcasts x_t, and computes its own
/// partial; odd 2t+1 = workers record x_t, compute partials, send them to
/// the master. The final broadcast of x_T rides even superstep 2T.
class BsfBspProgram final : public bsp::ProcProgram {
 public:
  BsfBspProgram(std::shared_ptr<const BsfSetup> su, ProcId me,
                std::vector<Word>* result)
      : su_(std::move(su)), me_(me), result_(result), x_(su_->x0) {}

  bool step(bsp::Ctx& c) override {
    // Idempotent halt: xsim::BspOnLogp keeps stepping every program until
    // the global OR of continue flags clears (see StencilBspProgram).
    if (halted_) return false;
    const std::int64_t t = c.superstep() / 2;
    const std::int64_t T = su_->rounds;
    if (c.superstep() % 2 == 0) {  // master phase
      if (me_ != 0) return true;
      if (t >= 1) {
        std::uint64_t S = static_cast<std::uint64_t>(partial_);
        for (const Message& m : c.inbox())
          if (m.tag == kBsfPart) S += static_cast<std::uint64_t>(m.payload);
        x_ = bsf_next(x_, S);
      }
      for (ProcId w = 1; w < c.nprocs(); ++w)
        c.send(w, static_cast<Word>(x_), kBsfX);
      if (t == T) {
        capture(result_, me_, bsf_hash(x_, partial_));
        halted_ = true;
        return false;
      }
      partial_ = bsf_partial(*su_, me_, x_);
      c.charge(static_cast<Time>(
          su_->elems[static_cast<std::size_t>(me_)].size()));
      return true;
    }
    // worker phase
    if (me_ == 0) return true;
    for (const Message& m : c.inbox())
      if (m.tag == kBsfX) x_ = static_cast<std::uint64_t>(m.payload);
    if (t == T) {
      capture(result_, me_, bsf_hash(x_, partial_));
      halted_ = true;
      return false;
    }
    partial_ = bsf_partial(*su_, me_, x_);
    c.charge(static_cast<Time>(
        su_->elems[static_cast<std::size_t>(me_)].size()));
    c.send(0, partial_, kBsfPart);
    return true;
  }

 private:
  std::shared_ptr<const BsfSetup> su_;
  ProcId me_;
  std::vector<Word>* result_;
  std::uint64_t x_;
  Word partial_ = 0;
  bool halted_ = false;
};

[[nodiscard]] constexpr std::int32_t bsf_x_tag(std::int64_t t) {
  return static_cast<std::int32_t>(t * 4 + 1);
}
[[nodiscard]] constexpr std::int32_t bsf_part_tag(std::int64_t t) {
  return static_cast<std::int32_t>(t * 4 + 2);
}

}  // namespace

std::vector<logp::ProgramFn> bsf_logp(const Spec& s) {
  auto su = build_bsf(s);
  if (s.result != nullptr) s.result->assign(static_cast<std::size_t>(s.p), 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(s.p));
  for (ProcId i = 0; i < s.p; ++i)
    progs.emplace_back([su, i, result = s.result,
                        p = s.p](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      std::uint64_t x = su->x0;
      Word partial = 0;
      const Time charge = static_cast<Time>(
          su->elems[static_cast<std::size_t>(i)].size());
      for (std::int64_t t = 0; t < su->rounds; ++t) {
        if (i == 0) {
          for (ProcId w = 1; w < p; ++w)
            co_await pr.send(w, static_cast<Word>(x), bsf_x_tag(t));
          partial = bsf_partial(*su, i, x);
          co_await pr.compute(charge);
          std::uint64_t S = static_cast<std::uint64_t>(partial);
          for (ProcId w = 1; w < p; ++w)
            S += static_cast<std::uint64_t>(
                (co_await recv_tag(mb, bsf_part_tag(t))).payload);
          x = bsf_next(x, S);
        } else {
          x = static_cast<std::uint64_t>(
              (co_await recv_tag(mb, bsf_x_tag(t))).payload);
          partial = bsf_partial(*su, i, x);
          co_await pr.compute(charge);
          co_await pr.send(0, partial, bsf_part_tag(t));
        }
      }
      if (i == 0)
        for (ProcId w = 1; w < p; ++w)
          co_await pr.send(w, static_cast<Word>(x), bsf_x_tag(su->rounds));
      else
        x = static_cast<std::uint64_t>(
            (co_await recv_tag(mb, bsf_x_tag(su->rounds))).payload);
      capture(result, i, bsf_hash(x, partial));
    });
  return progs;
}

std::vector<std::unique_ptr<bsp::ProcProgram>> bsf_bsp(const Spec& s) {
  auto su = build_bsf(s);
  if (s.result != nullptr) s.result->assign(static_cast<std::size_t>(s.p), 0);
  std::vector<std::unique_ptr<bsp::ProcProgram>> progs;
  progs.reserve(static_cast<std::size_t>(s.p));
  for (ProcId i = 0; i < s.p; ++i)
    progs.push_back(std::make_unique<BsfBspProgram>(su, i, s.result));
  return progs;
}

std::vector<Word> bsf_expected(const Spec& s) {
  auto su = build_bsf(s);
  std::uint64_t x = su->x0;
  std::vector<Word> partials(static_cast<std::size_t>(s.p), 0);
  for (int t = 0; t < s.rounds; ++t) {
    std::uint64_t S = 0;
    for (ProcId r = 0; r < s.p; ++r) {
      partials[static_cast<std::size_t>(r)] = bsf_partial(*su, r, x);
      S += static_cast<std::uint64_t>(partials[static_cast<std::size_t>(r)]);
    }
    x = bsf_next(x, S);
  }
  std::vector<Word> out(static_cast<std::size_t>(s.p));
  for (ProcId r = 0; r < s.p; ++r)
    out[static_cast<std::size_t>(r)] =
        static_cast<Word>(bsf_hash(x, partials[static_cast<std::size_t>(r)]));
  return out;
}

}  // namespace bsplogp::workload

// Application-shaped workload families built on src/part.
//
// The synthetic registry families exercise the models' cost terms in
// isolation; these three reproduce the communication shapes of programs
// people actually run, so the crossover studies (bench_app_crossover) say
// something about applications, not just traffic patterns:
//
//   * stencil-2d — iterative 2-D diffusion on a Block-partitioned
//     nx x ny mesh over a rows x cols processor grid: nearest-neighbour
//     halo h-relations plus a global residual reduction every iteration
//     (the CMFD-style mesh-exchange shape).
//   * sample-sort — one-shot BSP sample sort of nx keys, block-cyclic
//     dealt: local sort, regular sampling, splitter broadcast, bucket
//     all-to-all, final local sort ("BSP Sorting: An Experimental Study").
//   * bsf-iterative — master-worker iterative numerical kernel over nx
//     cyclically dealt elements: broadcast x_t, partial reductions back to
//     the master, next iterate (Sokolinsky's BSF model shape).
//
// Each family is defined exactly once as a pair of pure factories — a LogP
// coroutine program vector and a BSP ProcProgram vector — that compute the
// SAME per-processor result words from the same Spec, so one family runs
// on all five executors (logp::Machine, bsp::Machine, both src/xsim
// cross-sims, and the src/native thread backend) and differential tests
// can pin the results against each other and against the serial oracles
// below. BSP-side messages use only (dst, payload, tag): Theorem 2's
// sort-and-route (xsim::BspOnLogp) does not carry aux/channel headers.
#pragma once

#include <memory>
#include <vector>

#include "src/bsp/program.h"
#include "src/logp/proc.h"
#include "src/part/partition.h"
#include "src/workload/workload.h"

namespace bsplogp::workload {

/// The processor grid a 2-D partitioned family resolves from (p,
/// grid_rows): rows x (p / rows), near-square when grid_rows == 0.
[[nodiscard]] part::Grid app_grid(const Spec& s);

/// stencil-2d: `rounds` Jacobi-style iterations on the nx x ny mesh.
/// result (if set) is resized to p; processor i stores a hash of its final
/// local cells plus the global residual history, so any two executors that
/// agree on result agree on every cell and every reduction.
[[nodiscard]] std::vector<logp::ProgramFn> stencil2d_logp(const Spec& s);
[[nodiscard]] std::vector<std::unique_ptr<bsp::ProcProgram>> stencil2d_bsp(
    const Spec& s);

/// sample-sort: sorts nx keys dealt block-cyclically (block 4) across p.
/// result (if set) holds per processor a hash of (final bucket size,
/// sorted bucket contents).
[[nodiscard]] std::vector<logp::ProgramFn> samplesort_logp(const Spec& s);
[[nodiscard]] std::vector<std::unique_ptr<bsp::ProcProgram>> samplesort_bsp(
    const Spec& s);

/// bsf-iterative: `rounds` broadcast/reduce iterations over nx cyclically
/// dealt elements. result (if set) holds per processor a hash of (final
/// iterate x_T, the processor's last partial sum).
[[nodiscard]] std::vector<logp::ProgramFn> bsf_logp(const Spec& s);
[[nodiscard]] std::vector<std::unique_ptr<bsp::ProcProgram>> bsf_bsp(
    const Spec& s);

/// Serial oracles: the per-processor result vector each family must
/// produce, computed with no message passing at all. The app differential
/// tests pin every executor against these.
[[nodiscard]] std::vector<Word> stencil2d_expected(const Spec& s);
[[nodiscard]] std::vector<Word> samplesort_expected(const Spec& s);
[[nodiscard]] std::vector<Word> bsf_expected(const Spec& s);

}  // namespace bsplogp::workload

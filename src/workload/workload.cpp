#include "src/workload/workload.h"

#include <algorithm>
#include <utility>

#include <string>

#include "src/algo/bsp_algorithms.h"
#include "src/algo/logp_broadcast_opt.h"
#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"
#include "src/core/contracts.h"
#include "src/logp/params.h"
#include "src/workload/apps.h"

namespace bsplogp::workload {

// ---- LogP program families --------------------------------------------------

std::vector<logp::ProgramFn> all_to_all(ProcId p, std::vector<Word>* sums) {
  if (sums != nullptr) sums->assign(static_cast<std::size_t>(p), 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([p, sums](logp::Proc& pr) -> logp::Task<> {
      for (ProcId d = 1; d < p; ++d)
        co_await pr.send(static_cast<ProcId>((pr.id() + d) % p), pr.id() + 1);
      Word sum = 0;
      for (ProcId k = 1; k < p; ++k) sum += (co_await pr.recv()).payload;
      if (sums != nullptr) (*sums)[static_cast<std::size_t>(pr.id())] = sum;
    });
  return progs;
}

std::vector<logp::ProgramFn> cb_rounds(ProcId p, int rounds,
                                       algo::ReduceOp op,
                                       std::function<Word(ProcId)> value,
                                       std::vector<Word>* out) {
  BSPLOGP_EXPECTS(rounds >= 1);
  if (out != nullptr) out->assign(static_cast<std::size_t>(p), 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i) {
    const Word v0 = value ? value(i) : static_cast<Word>(i);
    progs.emplace_back([v0, rounds, op, out](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      Word v = v0;
      for (int k = 0; k < rounds; ++k)
        v = co_await algo::combine_broadcast(mb, v, op);
      if (out != nullptr) (*out)[static_cast<std::size_t>(pr.id())] = v;
    });
  }
  return progs;
}

std::vector<logp::ProgramFn> cb_arity(ProcId p, ProcId arity,
                                      std::vector<Word>* out) {
  if (out != nullptr) out->assign(static_cast<std::size_t>(p), 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([i, arity, out](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      const Word v = co_await algo::combine_broadcast_arity(
          mb, i, algo::ReduceOp::Max, arity);
      if (out != nullptr) (*out)[static_cast<std::size_t>(pr.id())] = v;
    });
  return progs;
}

std::vector<logp::ProgramFn> cb_greedy_pair(ProcId p, const logp::Params& prm,
                                            std::vector<Word>* out) {
  // The schedule is shared by all p programs and must outlive them.
  const auto sched = std::make_shared<const algo::BroadcastSchedule>(
      algo::optimal_broadcast_schedule(p, prm));
  if (out != nullptr) out->assign(static_cast<std::size_t>(p), 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([i, sched, out](logp::Proc& pr) -> logp::Task<> {
      algo::Mailbox mb(pr);
      const Word total =
          co_await algo::reduce_opt(mb, i, algo::ReduceOp::Max, *sched);
      const Word v = co_await algo::broadcast_opt(mb, total, *sched);
      if (out != nullptr) (*out)[static_cast<std::size_t>(pr.id())] = v;
    });
  return progs;
}

std::vector<logp::ProgramFn> ring_shift(ProcId p, int rounds,
                                        std::vector<Word>* sums) {
  if (sums != nullptr) sums->assign(static_cast<std::size_t>(p), 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([p, rounds, sums](logp::Proc& pr) -> logp::Task<> {
      Word sum = 0;
      for (int r = 0; r < rounds; ++r) {
        co_await pr.send(static_cast<ProcId>((pr.id() + 1) % p), r);
        sum += (co_await pr.recv()).payload;
      }
      if (sums != nullptr) (*sums)[static_cast<std::size_t>(pr.id())] = sum;
    });
  return progs;
}

std::vector<logp::ProgramFn> hotspot(ProcId p, Time k, bool staged,
                                     std::vector<Word>* sum) {
  if (sum != nullptr) sum->assign(1, 0);
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  progs.emplace_back([p, k, sum](logp::Proc& pr) -> logp::Task<> {
    Word total = 0;
    for (Time j = 0; j < static_cast<Time>(p - 1) * k; ++j)
      total += (co_await pr.recv()).payload;
    if (sum != nullptr) (*sum)[0] = total;
  });
  for (ProcId i = 1; i < p; ++i)
    progs.emplace_back([i, k, staged](logp::Proc& pr) -> logp::Task<> {
      for (Time j = 0; j < k; ++j) {
        if (staged) {
          // Sender i owns the G-aligned slot (j*(p-1) + i): at most
          // capacity messages are ever in transit to the hot spot.
          const Time slot =
              (j * static_cast<Time>(pr.nprocs() - 1) + i) * pr.params().G;
          co_await pr.wait_until(std::max<Time>(0, slot - pr.params().o));
        }
        co_await pr.send(0, static_cast<Word>(i) * 100 + j);
      }
    });
  return progs;
}

std::vector<logp::ProgramFn> random_traffic(ProcId p, int msgs_per_proc,
                                            Time max_jump, std::uint64_t seed,
                                            std::vector<Word>* sums) {
  if (sums != nullptr) sums->assign(static_cast<std::size_t>(p), 0);
  core::Rng rng(seed);
  std::vector<std::vector<std::pair<ProcId, Time>>> plan(
      static_cast<std::size_t>(p));
  std::vector<int> expected(static_cast<std::size_t>(p), 0);
  for (ProcId i = 0; i < p; ++i)
    for (int m = 0; m < msgs_per_proc; ++m) {
      auto dst =
          static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(p - 1)));
      if (dst >= i) dst += 1;  // uniform over the other processors
      const Time jump = static_cast<Time>(
          rng.below(static_cast<std::uint64_t>(max_jump) + 1));
      plan[static_cast<std::size_t>(i)].emplace_back(dst, jump);
      expected[static_cast<std::size_t>(dst)] += 1;
    }
  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    progs.emplace_back([mine = std::move(plan[static_cast<std::size_t>(i)]),
                        need = expected[static_cast<std::size_t>(i)],
                        sums](logp::Proc& pr) -> logp::Task<> {
      for (const auto& [dst, jump] : mine) {
        co_await pr.compute(jump);
        co_await pr.send(dst, jump);
      }
      Word sum = 0;
      for (int m = 0; m < need; ++m) sum += (co_await pr.recv()).payload;
      if (sums != nullptr) (*sums)[static_cast<std::size_t>(pr.id())] = sum;
    });
  return progs;
}

// ---- BSP program families ---------------------------------------------------

std::vector<std::unique_ptr<bsp::ProcProgram>> relation_step(
    const routing::HRelation& rel) {
  auto messages = std::make_shared<std::vector<std::vector<Message>>>(
      static_cast<std::size_t>(rel.nprocs()));
  for (const Message& m : rel.messages())
    (*messages)[static_cast<std::size_t>(m.src)].push_back(m);
  return bsp::make_programs(rel.nprocs(), [messages](bsp::Ctx& c) {
    if (c.superstep() == 0) {
      for (const Message& m : (*messages)[static_cast<std::size_t>(c.pid())])
        c.send(m.dst, m.payload, m.tag);
      return true;
    }
    return false;
  });
}

routing::HRelation all_pairs(ProcId p) {
  routing::HRelation rel(p);
  for (ProcId s = 0; s < p; ++s)
    for (ProcId d = 0; d < p; ++d)
      if (d != s) rel.add(s, d, 1);
  return rel;
}

std::vector<std::unique_ptr<bsp::ProcProgram>> fuzz_supersteps(
    ProcId p, std::int64_t supersteps, std::uint64_t seed, FuzzLog& log) {
  log.received.assign(
      static_cast<std::size_t>(supersteps) + 1,
      std::vector<std::vector<std::tuple<ProcId, Word, std::int32_t>>>(
          static_cast<std::size_t>(p)));
  return bsp::make_programs(p, [&log, p, supersteps, seed](bsp::Ctx& c) {
    auto& slot = log.received[static_cast<std::size_t>(c.superstep())]
                             [static_cast<std::size_t>(c.pid())];
    slot.clear();
    for (const Message& m : c.inbox())
      slot.emplace_back(m.src, m.payload, m.tag);
    std::sort(slot.begin(), slot.end());

    if (c.superstep() >= supersteps) return false;
    // Deterministic per (seed, pid, superstep) traffic.
    core::Rng rng(seed ^ (static_cast<std::uint64_t>(c.pid()) << 32) ^
                  static_cast<std::uint64_t>(c.superstep()));
    const auto kind = rng.below(4);
    std::int64_t count = 0;
    if (kind == 0) count = 0;  // silent
    else if (kind == 1) count = static_cast<std::int64_t>(rng.below(4));
    else if (kind == 2) count = static_cast<std::int64_t>(rng.below(12));
    else count = c.pid() == 0 ? 0 : 3;  // fan-in to processor 0
    for (std::int64_t k = 0; k < count; ++k) {
      const auto dst =
          kind == 3 ? ProcId{0}
                    : static_cast<ProcId>(
                          rng.below(static_cast<std::uint64_t>(p)));
      c.send(dst, rng.uniform(-1000, 1000),
             static_cast<std::int32_t>(rng.below(100)));
    }
    c.charge(static_cast<Time>(rng.below(20)));
    return true;
  });
}

namespace {

/// Delegating wrapper that records each step's inbox into one processor's
/// slot of an InboxLog (see workload.h): per-processor storage, so filling
/// the log is race-free even when the programs run on the native backend's
/// concurrent threads.
class LoggedProgram final : public bsp::ProcProgram {
 public:
  LoggedProgram(
      std::unique_ptr<bsp::ProcProgram> inner,
      std::vector<std::vector<std::tuple<ProcId, Word, std::int32_t>>>* slot)
      : inner_(std::move(inner)), slot_(slot) {}

  bool step(bsp::Ctx& ctx) override {
    std::vector<std::tuple<ProcId, Word, std::int32_t>> seen;
    seen.reserve(ctx.inbox().size());
    for (const Message& m : ctx.inbox())
      seen.emplace_back(m.src, m.payload, m.tag);
    std::sort(seen.begin(), seen.end());
    slot_->push_back(std::move(seen));
    return inner_->step(ctx);
  }

 private:
  std::unique_ptr<bsp::ProcProgram> inner_;
  std::vector<std::vector<std::tuple<ProcId, Word, std::int32_t>>>* slot_;
};

}  // namespace

std::vector<std::unique_ptr<bsp::ProcProgram>> logged(
    std::vector<std::unique_ptr<bsp::ProcProgram>> programs, InboxLog& log) {
  log.per_pid.assign(programs.size(), {});
  std::vector<std::unique_ptr<bsp::ProcProgram>> out;
  out.reserve(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i)
    out.push_back(std::make_unique<LoggedProgram>(std::move(programs[i]),
                                                  &log.per_pid[i]));
  return out;
}

// ---- Sorting inputs ---------------------------------------------------------

std::vector<std::vector<Word>> random_blocks(ProcId p, std::size_t n,
                                             Word lo, Word hi,
                                             core::Rng& rng) {
  std::vector<std::vector<Word>> blocks(static_cast<std::size_t>(p));
  for (auto& blk : blocks) {
    blk.reserve(n);
    for (std::size_t j = 0; j < n; ++j) blk.push_back(rng.uniform(lo, hi));
  }
  return blocks;
}

// ---- Registry ---------------------------------------------------------------

namespace {

/// Keeps family-shared state (input blocks, result sinks, logs) alive for
/// generically instantiated BSP programs whose algo factories bind
/// references to caller-owned storage.
class HoldingProgram final : public bsp::ProcProgram {
 public:
  HoldingProgram(std::shared_ptr<void> keep,
                 std::unique_ptr<bsp::ProcProgram> inner)
      : keep_(std::move(keep)), inner_(std::move(inner)) {}
  bool step(bsp::Ctx& ctx) override { return inner_->step(ctx); }

 private:
  std::shared_ptr<void> keep_;
  std::unique_ptr<bsp::ProcProgram> inner_;
};

std::vector<std::unique_ptr<bsp::ProcProgram>> holding(
    std::shared_ptr<void> keep,
    std::vector<std::unique_ptr<bsp::ProcProgram>> progs) {
  std::vector<std::unique_ptr<bsp::ProcProgram>> out;
  out.reserve(progs.size());
  for (auto& pr : progs)
    out.push_back(std::make_unique<HoldingProgram>(keep, std::move(pr)));
  return out;
}

/// Shared cross-field check for the grid-partitioned families: grid_rows
/// must evenly tile p (0 delegates to the near-square factorization).
bool grid_divides_p(const Spec& s, const char* family, std::string* error) {
  if (s.grid_rows == 0 || (s.grid_rows <= s.p && s.p % s.grid_rows == 0))
    return true;
  if (error != nullptr)
    *error = "bad grid_rows '" + std::to_string(s.grid_rows) + "' for " +
             family + " (want a divisor of p=" + std::to_string(s.p) +
             ", or 0 = auto)";
  return false;
}

std::vector<Entry> build_registry() {
  std::vector<Entry> reg;
  reg.push_back(Entry{
      "all-to-all",
      "p(p-1)-message total exchange; every destination window active at "
      "once (knobs: p)",
      [](const Spec& s) { return all_to_all(s.p, s.result); },
      [](const Spec& s) { return relation_step(all_pairs(s.p)); }});
  reg.push_back(Entry{
      "cb-rounds",
      "chained Combine-and-Broadcast rounds on the paper's "
      "max{2,ceil(L/G)}-ary tree (knobs: p, rounds)",
      [](const Spec& s) { return cb_rounds(s.p, s.rounds, algo::ReduceOp::Max,
                                           {}, s.result); },
      nullptr});
  reg.push_back(Entry{
      "cb-arity",
      "one CB with a forced tree arity — the ablation knob (knobs: p, k = "
      "arity)",
      [](const Spec& s) {
        return cb_arity(s.p, static_cast<ProcId>(s.k), s.result);
      },
      nullptr});
  reg.push_back(Entry{
      "cb-greedy-pair",
      "combine+broadcast as the Karp-et-al greedy schedule pair (knobs: p; "
      "L=16,o=1,G=4 schedule unless instantiated directly)",
      [](const Spec& s) {
        return cb_greedy_pair(s.p, logp::Params{16, 1, 4}, s.result);
      },
      nullptr});
  reg.push_back(Entry{
      "ring-shift",
      "rounds of nearest-neighbor shifts around the ring — balanced sparse "
      "1-relations (knobs: p, rounds)",
      [](const Spec& s) { return ring_shift(s.p, s.rounds, s.result); },
      nullptr});
  reg.push_back(Entry{
      "hotspot",
      "all-to-one fan-in, k messages per sender (k-hotspot); staged=true is "
      "the slot-staged stall-free variant (knobs: p, k, staged)",
      [](const Spec& s) { return hotspot(s.p, s.k, s.staged, s.result); },
      nullptr});
  reg.push_back(Entry{
      "random-traffic",
      "seeded random point-to-point traffic with compute jitter up to "
      "max_jump (knobs: p, rounds = msgs/proc, max_jump, seed)",
      [](const Spec& s) {
        return random_traffic(s.p, s.rounds, s.max_jump, s.seed, s.result);
      },
      nullptr});
  reg.push_back(Entry{
      "h-relation-step",
      "one BSP superstep routing a random h-regular relation (knobs: p, "
      "k = h, seed)",
      nullptr,
      [](const Spec& s) {
        core::Rng rng(s.seed);
        return relation_step(routing::random_regular(s.p, s.k, rng));
      }});
  reg.push_back(Entry{
      "fuzz-supersteps",
      "random multi-superstep BSP traffic (silent/sparse/bursty/fan-in) "
      "with a received-multiset log (knobs: p, rounds, seed)",
      nullptr,
      [](const Spec& s) {
        auto log = std::make_shared<FuzzLog>();
        auto progs = fuzz_supersteps(s.p, s.rounds, s.seed, *log);
        return holding(log, std::move(progs));
      }});
  reg.push_back(Entry{
      "odd-even-sort",
      "odd-even transposition sort of p random blocks of k keys — the "
      "sorting input family (knobs: p, k = block size, seed)",
      nullptr,
      [](const Spec& s) {
        core::Rng rng(s.seed);
        struct State {
          std::vector<std::vector<Word>> blocks;
          std::vector<std::vector<Word>> out;
        };
        auto state = std::make_shared<State>();
        state->blocks = random_blocks(
            s.p, static_cast<std::size_t>(s.k), -999, 999, rng);
        auto progs = algo::bsp_odd_even_sort(s.p, state->blocks, state->out);
        return holding(state, std::move(progs));
      }});
  reg.push_back(Entry{
      "stencil-2d",
      "iterative 2-D diffusion on a Block-partitioned nx x ny mesh: "
      "nearest-neighbour halo exchange + global residual reduction per "
      "iteration (knobs: p, nx, ny, rounds, grid_rows, seed)",
      [](const Spec& s) { return stencil2d_logp(s); },
      [](const Spec& s) { return stencil2d_bsp(s); },
      {{"p", 1, 512, ""},
       {"nx", 1, 4096, "mesh rows"},
       {"ny", 1, 4096, "mesh columns"},
       {"rounds", 1, 64, "iterations"},
       {"grid_rows", 0, 512, "0 = auto near-square"}},
      [](const Spec& s, std::string* error) {
        return grid_divides_p(s, "stencil-2d", error);
      }});
  reg.push_back(Entry{
      "sample-sort",
      "one-shot BSP sample sort of nx keys dealt block-cyclically: local "
      "sort, regular sampling, splitter broadcast, bucket all-to-all, "
      "final sort (knobs: p, nx, seed)",
      [](const Spec& s) { return samplesort_logp(s); },
      [](const Spec& s) { return samplesort_bsp(s); },
      {{"p", 1, 512, ""}, {"nx", 4, 1048576, "total keys; >= 4*p"}},
      [](const Spec& s, std::string* error) {
        if (s.nx >= 4 * static_cast<std::int64_t>(s.p)) return true;
        if (error != nullptr)
          *error = "bad nx '" + std::to_string(s.nx) +
                   "' for sample-sort (want >= 4*p = " +
                   std::to_string(4 * static_cast<std::int64_t>(s.p)) + ")";
        return false;
      }});
  reg.push_back(Entry{
      "bsf-iterative",
      "master-worker BSF iterative kernel over nx cyclically dealt "
      "elements: broadcast the iterate, partial reductions back to the "
      "master (knobs: p, nx, rounds, seed)",
      [](const Spec& s) { return bsf_logp(s); },
      [](const Spec& s) { return bsf_bsp(s); },
      {{"p", 1, 512, ""},
       {"nx", 1, 1048576, "elements"},
       {"rounds", 1, 64, "iterations"}},
      nullptr});
  return reg;
}

}  // namespace

const std::vector<Entry>& registry() {
  static const std::vector<Entry> reg = build_registry();
  return reg;
}

const Entry* find(std::string_view name) {
  for (const Entry& e : registry())
    if (e.name == name) return &e;
  return nullptr;
}

std::int64_t spec_field(const Spec& s, std::string_view name) {
  if (name == "p") return s.p;
  if (name == "k") return s.k;
  if (name == "rounds") return s.rounds;
  if (name == "max_jump") return s.max_jump;
  if (name == "staged") return s.staged ? 1 : 0;
  if (name == "seed") return static_cast<std::int64_t>(s.seed);
  if (name == "nx") return s.nx;
  if (name == "ny") return s.ny;
  if (name == "grid_rows") return s.grid_rows;
  BSPLOGP_EXPECTS(false && "unknown Spec field in a ParamDomain");
  return 0;
}

std::string describe_domains(const Entry& e) {
  std::string out;
  for (const ParamDomain& d : e.domains) {
    if (!out.empty()) out += "; ";
    out += d.name + " in " + std::to_string(d.lo) + ".." +
           std::to_string(d.hi);
    if (!d.note.empty()) out += " (" + d.note + ")";
  }
  return out;
}

bool validate(const Entry& e, const Spec& s, std::string* error) {
  for (const ParamDomain& d : e.domains) {
    const std::int64_t v = spec_field(s, d.name);
    if (v < d.lo || v > d.hi) {
      if (error != nullptr) {
        *error = "bad " + d.name + " '" + std::to_string(v) + "' for " +
                 e.name + " (want " + std::to_string(d.lo) + ".." +
                 std::to_string(d.hi) +
                 (d.note.empty() ? "" : ", " + d.note) + ")";
      }
      return false;
    }
  }
  if (e.constraint) return e.constraint(s, error);
  return true;
}

}  // namespace bsplogp::workload

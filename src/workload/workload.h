// The workload registry: every named program family the paper's
// experiments (E1-E9, A1) sweep over, defined exactly once.
//
// Before this library each bench binary, example, and parameterized test
// carried its own anonymous-namespace copy of the same LogP/BSP programs
// (all-to-all, CB rounds, hotspots, random h-relations, ...). Here each
// family exists once, as a factory:
//
//   * LogP families return std::vector<logp::ProgramFn> and run unchanged
//     on the native logp::Machine or under xsim::LogpOnBsp (Theorem 1);
//   * BSP families return bsp::ProcProgram vectors and run unchanged on
//     the native bsp::Machine or under xsim::BspOnLogp (Theorem 2).
//
// The free functions below are the single definitions; the registry() at
// the bottom names them for `--list`, validation, and generic Spec-based
// instantiation (bench/harness.h, DESIGN.md §9). Factories are pure: no
// shared mutable state between two instantiations, so grid sweeps may
// instantiate and run points concurrently (one machine per point).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "src/algo/reduce_op.h"
#include "src/bsp/program.h"
#include "src/core/rng.h"
#include "src/core/types.h"
#include "src/logp/proc.h"
#include "src/logp/task.h"
#include "src/routing/h_relation.h"

namespace bsplogp::workload {

// ---- LogP program families --------------------------------------------------

/// All-to-all exchange: every processor sends payload (id + 1) to each of
/// the other p-1 processors, then receives p-1 messages. If `sums` is
/// given (resized to p), processor i stores the sum of received payloads —
/// sum of 1..p minus (i + 1) — for end-to-end result checking.
[[nodiscard]] std::vector<logp::ProgramFn> all_to_all(
    ProcId p, std::vector<Word>* sums = nullptr);

/// `rounds` consecutive Combine-and-Broadcasts (Section 4.1) on the
/// paper's max{2, ceil(L/G)}-ary tree, chained: round k combines round
/// k-1's result. value(i) is processor i's initial contribution (default:
/// the id itself); if `out` is given (resized to p) each processor stores
/// its final CB result.
[[nodiscard]] std::vector<logp::ProgramFn> cb_rounds(
    ProcId p, int rounds, algo::ReduceOp op = algo::ReduceOp::Max,
    std::function<Word(ProcId)> value = {}, std::vector<Word>* out = nullptr);

/// One CB on a tree of the given arity instead of the paper's choice —
/// the ablation knob for bench_ablation_cb (a). If `out` is given (resized
/// to p) each processor stores its CB result (max of all ids = p - 1).
[[nodiscard]] std::vector<logp::ProgramFn> cb_arity(
    ProcId p, ProcId arity, std::vector<Word>* out = nullptr);

/// One combine+broadcast realized as the Karp-et-al greedy schedule pair
/// (reduce_opt then broadcast_opt); the schedule is computed internally
/// from (p, prm) and owned by the programs. If `out` is given (resized to
/// p) each processor stores the broadcast total.
[[nodiscard]] std::vector<logp::ProgramFn> cb_greedy_pair(
    ProcId p, const logp::Params& prm, std::vector<Word>* out = nullptr);

/// Ring shift: `rounds` rounds in which every processor sends its round
/// counter to (id + 1) mod p and receives from (id - 1) mod p. A sparse,
/// perfectly balanced 1-relation workload (contrast with hotspot). If
/// `sums` is given (resized to p) each processor stores the sum of
/// received payloads — rounds*(rounds-1)/2 when everything arrives.
[[nodiscard]] std::vector<logp::ProgramFn> ring_shift(
    ProcId p, int rounds, std::vector<Word>* sums = nullptr);

/// Hot spot (Section 2.2): processors 1..p-1 each fire k messages at
/// processor 0, which receives all (p-1)*k. k = 1 is the classic all-to-one
/// fan-in; k > 1 is the k-hotspot that keeps the acceptance queue saturated.
/// staged = false is the naive program that runs into the Stalling Rule;
/// staged = true is the slot-staged stall-free variant (sender i waits for
/// its own G-aligned slot), the comparison program of E5. Sender i's j-th
/// payload is the label i*100 + j (distinct while k <= 100); if `sum` is
/// given (resized to 1) the receiver stores the payload total, so
/// differential tests can check delivery end to end.
[[nodiscard]] std::vector<logp::ProgramFn> hotspot(
    ProcId p, Time k, bool staged = false, std::vector<Word>* sum = nullptr);

/// Random point-to-point traffic with compute jitter: each processor sends
/// msgs_per_proc messages to uniform other processors, computing a uniform
/// [0, max_jump] burst before each send, then receives its exact expected
/// count (the traffic matrix is drawn up front from `seed`, so the program
/// is deterministic and deadlock-free). Large max_jump pushes events past
/// the calendar queue's wheel horizon — the scheduler-equivalence stress.
[[nodiscard]] std::vector<logp::ProgramFn> random_traffic(
    ProcId p, int msgs_per_proc, Time max_jump, std::uint64_t seed,
    std::vector<Word>* sums = nullptr);

// ---- BSP program families ---------------------------------------------------

/// One-superstep program routing a fixed h-relation: in superstep 0
/// processor i sends exactly its messages of `rel`, then halts after
/// reading its inbox in superstep 1. The workhorse of E2, E6, and the
/// clocked-cycles ablation.
[[nodiscard]] std::vector<std::unique_ptr<bsp::ProcProgram>> relation_step(
    const routing::HRelation& rel);

/// The complete (p-1)-regular all-pairs relation: every processor sends one
/// message (payload 1) to every other. relation_step(all_pairs(p)) is the
/// BSP twin of the LogP all_to_all family.
[[nodiscard]] routing::HRelation all_pairs(ProcId p);

/// Received-message log of a fuzz_supersteps program:
/// received[superstep][pid] = sorted (src, payload, tag) triples. Two
/// instances built from the same seed must produce identical logs on any
/// correct executor — the differential-testing oracle.
struct FuzzLog {
  std::vector<
      std::vector<std::vector<std::tuple<ProcId, Word, std::int32_t>>>>
      received;
};

/// A deterministic random multi-superstep BSP program: in each superstep
/// every processor draws a traffic pattern (silent / sparse / bursty /
/// fan-in to processor 0) from (seed, pid, superstep) and logs the sorted
/// multiset of everything it received. Behavior depends only on the seed
/// triple, so native BSP and any simulation must produce identical logs.
[[nodiscard]] std::vector<std::unique_ptr<bsp::ProcProgram>> fuzz_supersteps(
    ProcId p, std::int64_t supersteps, std::uint64_t seed, FuzzLog& log);

/// Per-processor inbox log of an arbitrary BSP program:
/// per_pid[pid][superstep] = sorted (src, payload, tag) triples the
/// processor's program saw in that step. Storage is per-processor (each
/// program instance appends only to its own vector), so a log can be
/// filled from the native backend's concurrent threads as safely as from
/// the serial Machine.
struct InboxLog {
  std::vector<
      std::vector<std::vector<std::tuple<ProcId, Word, std::int32_t>>>>
      per_pid;
};

/// Wraps each program so every step's inbox is recorded into `log` (resized
/// to programs.size()) before delegating. Any two executors that present
/// the same pools in any order produce identical logs — the generic
/// differential-testing oracle for BSP families without result captures.
[[nodiscard]] std::vector<std::unique_ptr<bsp::ProcProgram>> logged(
    std::vector<std::unique_ptr<bsp::ProcProgram>> programs, InboxLog& log);

// ---- Sorting inputs ---------------------------------------------------------

/// p blocks of n uniform words in [lo, hi] — the input family for the
/// sorting experiments (odd-even block sort, bitonic merge-split).
[[nodiscard]] std::vector<std::vector<Word>> random_blocks(ProcId p,
                                                           std::size_t n,
                                                           Word lo, Word hi,
                                                           core::Rng& rng);

// ---- Registry ---------------------------------------------------------------

/// Knobs for generic instantiation of a registered family. Each entry's
/// description says which knobs it reads; unread knobs are ignored.
struct Spec {
  ProcId p = 8;
  /// Messages per sender (hotspot), relation degree h (h-relation-step),
  /// or block size (odd-even-sort).
  Time k = 1;
  /// CB / ring-shift rounds, fuzz supersteps, random-traffic messages per
  /// processor.
  int rounds = 1;
  /// Compute jitter bound (random-traffic).
  Time max_jump = 8;
  /// Staged stall-free variant (hotspot).
  bool staged = false;
  /// Seed for the stochastic families.
  std::uint64_t seed = 1;
  /// Global problem size along the first axis: stencil-2d grid rows,
  /// sample-sort total keys, bsf-iterative elements.
  std::int64_t nx = 64;
  /// Global problem size along the second axis (stencil-2d grid columns).
  std::int64_t ny = 32;
  /// Processor-grid rows for the 2-D partitioned families; must divide p.
  /// 0 picks the most nearly square factorization of p.
  ProcId grid_rows = 0;
  /// Optional end-to-end result capture for the families that support one
  /// (all-to-all, cb-rounds, cb-arity, cb-greedy-pair, ring-shift,
  /// hotspot, random-traffic, and — on both the LogP and BSP side —
  /// stencil-2d, sample-sort, bsf-iterative): resized by the factory; must
  /// outlive the programs. The differential suite instantiates the same
  /// Spec twice with two captures and compares them across executors.
  std::vector<Word>* result = nullptr;
};

/// One accepted parameter range of a family: Spec field `name` must lie in
/// [lo, hi]. Printed by `--list` and enforced by validate(); `note`
/// documents sentinel values ("0 = auto") or units.
struct ParamDomain {
  std::string name;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::string note;
};

struct Entry {
  std::string name;
  std::string description;
  /// Null when the family is not a LogP (resp. BSP) program family. A LogP
  /// factory's programs run natively or under xsim::LogpOnBsp; a BSP
  /// factory's programs run natively or under xsim::BspOnLogp.
  std::function<std::vector<logp::ProgramFn>(const Spec&)> logp;
  std::function<std::vector<std::unique_ptr<bsp::ProcProgram>>(const Spec&)>
      bsp;
  /// Accepted Spec parameter domains. Empty means "unconstrained": the
  /// family reads whatever knobs its description names and tolerates any
  /// value the Spec defaults make sensible.
  std::vector<ParamDomain> domains;
  /// Optional cross-field check (e.g. grid_rows must divide p). Returns
  /// false and fills *error in the farm-spec style on violation.
  std::function<bool(const Spec&, std::string*)> constraint;
};

/// Reads the Spec field `name` ("p", "k", "rounds", "max_jump", "staged",
/// "seed", "nx", "ny", "grid_rows") as an integer, for domain checks and
/// domain-aware printing.
[[nodiscard]] std::int64_t spec_field(const Spec& s, std::string_view name);

/// One line per domain, e.g. "p in 1..512; nx in 4..1048576 (total keys)".
/// Empty string when the entry declares no domains.
[[nodiscard]] std::string describe_domains(const Entry& e);

/// True iff `s` lies inside every declared domain of `e` and satisfies its
/// constraint. On violation fills *error (if non-null) in the farm spec
/// style, naming the offending value and the accepted domain, e.g.
/// "bad nx '8' for sample-sort (want 4..1048576)".
[[nodiscard]] bool validate(const Entry& e, const Spec& s,
                            std::string* error = nullptr);

/// All registered families, in stable display order.
[[nodiscard]] const std::vector<Entry>& registry();

/// Lookup by name; null if not registered.
[[nodiscard]] const Entry* find(std::string_view name);

}  // namespace bsplogp::workload

#include "src/routing/bitonic.h"

#include <algorithm>

#include "src/core/contracts.h"

namespace bsplogp::routing {

std::vector<std::vector<CompareExchange>> bitonic_schedule(ProcId p) {
  BSPLOGP_EXPECTS(is_pow2(p));
  std::vector<std::vector<CompareExchange>> rounds;
  const int lg = floor_log2(p);
  // Stage k (1..lg) merges bitonic sequences of length 2^k; within a stage,
  // sub-rounds use strides 2^(k-1) .. 1. Direction of a wire is set by bit
  // k of its low index: 0 => ascending block, 1 => descending.
  for (int k = 1; k <= lg; ++k) {
    for (int j = k - 1; j >= 0; --j) {
      std::vector<CompareExchange> round;
      const ProcId stride = ProcId{1} << j;
      for (ProcId i = 0; i < p; ++i) {
        const ProcId partner = i | stride;
        if (partner == i || partner >= p) continue;
        if ((i & stride) != 0) continue;  // enumerate each pair once
        const bool ascending = ((i >> k) & 1) == 0;
        round.push_back(CompareExchange{i, partner, ascending});
      }
      rounds.push_back(std::move(round));
    }
  }
  return rounds;
}

int bitonic_depth(ProcId p) {
  const int lg = floor_log2(p);
  return lg * (lg + 1) / 2;
}

void merge_split(std::vector<Word>& lo, std::vector<Word>& hi) {
  BSPLOGP_EXPECTS(lo.size() == hi.size());
  std::vector<Word> merged;
  merged.reserve(lo.size() * 2);
  std::merge(lo.begin(), lo.end(), hi.begin(), hi.end(),
             std::back_inserter(merged));
  const auto b = static_cast<std::ptrdiff_t>(lo.size());
  lo.assign(merged.begin(), merged.begin() + b);
  hi.assign(merged.begin() + b, merged.end());
}

void bitonic_sort_blocks(std::vector<std::vector<Word>>& blocks) {
  const auto p = static_cast<ProcId>(blocks.size());
  BSPLOGP_EXPECTS(is_pow2(p));
  for (auto& b : blocks) std::sort(b.begin(), b.end());
  for (const auto& round : bitonic_schedule(p)) {
    for (const CompareExchange& ce : round) {
      auto& lo = blocks[static_cast<std::size_t>(ce.lo)];
      auto& hi = blocks[static_cast<std::size_t>(ce.hi)];
      if (ce.ascending) {
        merge_split(lo, hi);
      } else {
        merge_split(hi, lo);
      }
    }
  }
}

}  // namespace bsplogp::routing

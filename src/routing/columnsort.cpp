#include "src/routing/columnsort.h"

#include <algorithm>
#include <utility>

#include "src/core/contracts.h"

namespace bsplogp::routing {

bool columnsort_applicable(std::int64_t r, std::int64_t s) {
  if (s <= 0 || r <= 0) return false;
  if (s == 1) return true;  // a single column: local sort suffices
  return r % s == 0 && r >= 2 * (s - 1) * (s - 1);
}

MatrixPos transpose_pos(std::int64_t r, std::int64_t s, MatrixPos from) {
  BSPLOGP_EXPECTS(from.col >= 0 && from.col < s);
  BSPLOGP_EXPECTS(from.row >= 0 && from.row < r);
  // Column-major reading order of the source...
  const std::int64_t n = from.col * r + from.row;
  // ...written in row-major order into the same r x s shape.
  return MatrixPos{n % s, n / s};
}

MatrixPos untranspose_pos(std::int64_t r, std::int64_t s, MatrixPos from) {
  BSPLOGP_EXPECTS(from.col >= 0 && from.col < s);
  BSPLOGP_EXPECTS(from.row >= 0 && from.row < r);
  // Row-major reading order of the source...
  const std::int64_t n = from.row * s + from.col;
  // ...written in column-major order.
  return MatrixPos{n / r, n % r};
}

namespace {

void sort_columns(std::vector<std::vector<Word>>& columns) {
  for (auto& col : columns) std::sort(col.begin(), col.end());
}

/// Applies an index map as a full redistribution.
template <typename PosFn>
void redistribute(std::vector<std::vector<Word>>& columns, PosFn pos) {
  const auto s = static_cast<std::int64_t>(columns.size());
  const auto r = static_cast<std::int64_t>(columns[0].size());
  std::vector<std::vector<Word>> next(
      columns.size(), std::vector<Word>(static_cast<std::size_t>(r)));
  for (std::int64_t c = 0; c < s; ++c)
    for (std::int64_t i = 0; i < r; ++i) {
      const MatrixPos to = pos(MatrixPos{c, i});
      next[static_cast<std::size_t>(to.col)]
          [static_cast<std::size_t>(to.row)] =
              columns[static_cast<std::size_t>(c)]
                     [static_cast<std::size_t>(i)];
    }
  columns = std::move(next);
}

/// Steps 6-8 in boundary-window form: jointly sort bottom half of column c
/// with top half of column c+1, for every c. Windows are disjoint.
void sort_boundary_windows(std::vector<std::vector<Word>>& columns) {
  const auto s = static_cast<std::int64_t>(columns.size());
  const auto r = static_cast<std::int64_t>(columns[0].size());
  const auto half = static_cast<std::ptrdiff_t>(r / 2);
  for (std::int64_t c = 0; c + 1 < s; ++c) {
    auto& a = columns[static_cast<std::size_t>(c)];
    auto& b = columns[static_cast<std::size_t>(c + 1)];
    std::vector<Word> window(a.end() - (static_cast<std::ptrdiff_t>(r) -
                                        half),
                             a.end());
    window.insert(window.end(), b.begin(), b.begin() + half);
    std::sort(window.begin(), window.end());
    std::copy(window.begin(),
              window.begin() + (static_cast<std::ptrdiff_t>(r) - half),
              a.begin() + half);
    std::copy(window.begin() + (static_cast<std::ptrdiff_t>(r) - half),
              window.end(), b.begin());
  }
}

}  // namespace

void columnsort(std::vector<std::vector<Word>>& columns) {
  BSPLOGP_EXPECTS(!columns.empty());
  const auto s = static_cast<std::int64_t>(columns.size());
  const auto r = static_cast<std::int64_t>(columns[0].size());
  for (const auto& col : columns) BSPLOGP_EXPECTS(std::cmp_equal(col.size(), r));
  BSPLOGP_EXPECTS(columnsort_applicable(r, s));
  if (s == 1) {
    sort_columns(columns);
    return;
  }
  sort_columns(columns);                                          // 1
  redistribute(columns,
               [r, s](MatrixPos p) { return transpose_pos(r, s, p); });  // 2
  sort_columns(columns);                                          // 3
  redistribute(columns, [r, s](MatrixPos p) {
    return untranspose_pos(r, s, p);
  });                                                             // 4
  sort_columns(columns);                                          // 5
  sort_boundary_windows(columns);                                 // 6-8
}

}  // namespace bsplogp::routing

// Batcher's bitonic sorting network, used as the implementable stand-in for
// the AKS network of Section 4.2 (see DESIGN.md, Substitutions). What the
// paper's simulation needs from AKS is obliviousness: the network is a fixed
// sequence of rounds, each a perfect matching of the p processors, known in
// advance — so on LogP each round's block exchange decomposes into
// 1-relations routed at full bandwidth. Bitonic has exactly that structure
// with depth log2(p) * (log2(p)+1) / 2 instead of AKS's O(log p).
//
// Extended to r records per processor in the standard way (Knuth, cited as
// [30] in the paper): presort locally, then replace each compare-exchange
// by a merge-split of sorted blocks; the network then sorts the pr records
// globally in block order (the 0-1 principle lifts to blocks).
#pragma once

#include <span>
#include <vector>

#include "src/core/types.h"

namespace bsplogp::routing {

/// One wire of a sorting-network round: processors lo < hi exchange blocks;
/// if `ascending`, lo keeps the smaller half, else the larger.
struct CompareExchange {
  ProcId lo = 0;
  ProcId hi = 0;
  bool ascending = true;

  friend bool operator==(const CompareExchange&,
                         const CompareExchange&) = default;
};

/// The bitonic network for p processors (p a power of two) as a sequence of
/// rounds; each round's pairs form a perfect matching.
[[nodiscard]] std::vector<std::vector<CompareExchange>> bitonic_schedule(
    ProcId p);

/// Number of rounds of the schedule: log2(p)(log2(p)+1)/2.
[[nodiscard]] int bitonic_depth(ProcId p);

/// Host-side reference executor for tests and cost modeling: applies the
/// schedule to p blocks of equal size (blocks need not be presorted; this
/// sorts them first, as the LogP execution does). After the call the
/// concatenation blocks[0] + blocks[1] + ... is globally sorted.
void bitonic_sort_blocks(std::vector<std::vector<Word>>& blocks);

/// The merge-split primitive: given the two sorted blocks of a pair, puts
/// the smaller half (of the 2b records) in `lo` and the larger in `hi`.
void merge_split(std::vector<Word>& lo, std::vector<Word>& hi);

}  // namespace bsplogp::routing

// h-relations: the communication currency of both models (paper, Sections
// 2.1 and 4.2). An h-relation is a set of point-to-point messages in which
// every processor sends at most h and receives at most h messages; h is the
// degree. This header provides the container, degree computation, and the
// workload generators used by the simulations, tests, and benchmarks.
#pragma once

#include <vector>

#include "src/core/rng.h"
#include "src/core/types.h"

namespace bsplogp::routing {

class HRelation {
 public:
  explicit HRelation(ProcId p) : p_(p) {}
  HRelation(ProcId p, std::vector<Message> messages);

  [[nodiscard]] ProcId nprocs() const { return p_; }
  [[nodiscard]] const std::vector<Message>& messages() const {
    return messages_;
  }
  [[nodiscard]] std::size_t size() const { return messages_.size(); }

  void add(ProcId src, ProcId dst, Word payload = 0, std::int32_t tag = 0);

  /// Messages sent by / destined to each processor.
  [[nodiscard]] std::vector<Time> out_degrees() const;
  [[nodiscard]] std::vector<Time> in_degrees() const;
  /// max send degree (r in the paper's Section 4.2).
  [[nodiscard]] Time max_out_degree() const;
  /// max receive degree (s in the paper's Section 4.2).
  [[nodiscard]] Time max_in_degree() const;
  /// h = max(r, s).
  [[nodiscard]] Time degree() const;

 private:
  ProcId p_;
  std::vector<Message> messages_;
};

/// m messages with independently uniform sources and destinations
/// (src != dst). Expected degree ~ m/p + O(sqrt(m/p log p)).
[[nodiscard]] HRelation random_messages(ProcId p, std::int64_t m,
                                        core::Rng& rng);

/// An exactly-h-regular relation: the union of h random permutations with
/// fixed points removed by swaps, so every processor sends exactly h and
/// receives exactly h messages.
[[nodiscard]] HRelation random_regular(ProcId p, Time h, core::Rng& rng);

/// Every processor sends its full quota of h messages to uniformly random
/// destinations: out-degree exactly h, in-degree binomial (max typically
/// h + O(sqrt(h log p))). The natural "degree known in advance" workload of
/// Theorem 3.
[[nodiscard]] HRelation random_sends(ProcId p, Time h, core::Rng& rng);

/// A single random partial permutation (a 1-relation) over a fraction of
/// the processors.
[[nodiscard]] HRelation random_permutation(ProcId p, core::Rng& rng,
                                           double fill = 1.0);

/// All-to-one: every other processor sends k messages to `target` — the
/// Section 2.2 hot-spot workload.
[[nodiscard]] HRelation hotspot(ProcId p, ProcId target, Time k);

}  // namespace bsplogp::routing

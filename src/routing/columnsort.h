// Leighton's Columnsort, the implementable stand-in for Cubesort in the
// large-r regime of Section 4.2 (see DESIGN.md, Substitutions). Sorts an
// r x s matrix (s columns of r records; column j lives on processor j) into
// column-major order using a constant number of local sorts and fixed,
// input-independent redistributions — exactly the structure the paper
// exploits in Cubesort to reach O(T_seq-sort(r) + Gr + L) time on LogP for
// r = p^epsilon.
//
// Steps (Leighton 1985):
//   1. sort each column            4. untranspose (inverse of 2)
//   2. transpose-reshape ("deal")  5. sort each column
//   3. sort each column            6-8. shift by r/2, sort, unshift
// Steps 6-8 are realized in their equivalent "boundary window" form: for
// each adjacent column pair (c, c+1), jointly sort the window made of the
// bottom half of column c and the top half of column c+1 (the windows are
// disjoint, so this is one parallel phase). Correct when r >= 2(s-1)^2 and
// s divides r.
#pragma once

#include <vector>

#include "src/core/types.h"

namespace bsplogp::routing {

/// Geometry check for the classical correctness guarantee.
[[nodiscard]] bool columnsort_applicable(std::int64_t r, std::int64_t s);

/// Index map of step 2: records are read in column-major order and laid
/// down in row-major order. Maps (column, row) to (column', row').
struct MatrixPos {
  std::int64_t col = 0;
  std::int64_t row = 0;
  friend bool operator==(const MatrixPos&, const MatrixPos&) = default;
};
[[nodiscard]] MatrixPos transpose_pos(std::int64_t r, std::int64_t s,
                                      MatrixPos from);
/// Index map of step 4 (the inverse of transpose_pos).
[[nodiscard]] MatrixPos untranspose_pos(std::int64_t r, std::int64_t s,
                                        MatrixPos from);

/// Host-side reference executor for tests and cost modeling: sorts the
/// columns so that their concatenation columns[0] + columns[1] + ... is
/// globally sorted. Requires columnsort_applicable(r, s).
void columnsort(std::vector<std::vector<Word>>& columns);

}  // namespace bsplogp::routing

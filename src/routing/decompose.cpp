#include "src/routing/decompose.h"

#include <algorithm>

#include "src/core/contracts.h"

namespace bsplogp::routing {

std::vector<std::vector<Message>> decompose_into_1_relations(
    const HRelation& rel) {
  const auto p = static_cast<std::size_t>(rel.nprocs());
  const auto h = static_cast<std::size_t>(std::max<Time>(rel.degree(), 0));
  if (rel.size() == 0) return {};

  constexpr std::int32_t kNone = -1;
  // color_at_src[u][c] / color_at_dst[v][c]: index of the message colored c
  // incident to sender u / receiver v, or kNone. A proper coloring keeps
  // both injective per vertex.
  std::vector<std::vector<std::int32_t>> at_src(
      p, std::vector<std::int32_t>(h, kNone));
  std::vector<std::vector<std::int32_t>> at_dst(
      p, std::vector<std::int32_t>(h, kNone));
  const auto& msgs = rel.messages();
  std::vector<std::size_t> color(msgs.size(), h);  // h = uncolored

  auto free_color = [h](const std::vector<std::int32_t>& used) {
    for (std::size_t c = 0; c < h; ++c)
      if (used[c] == kNone) return c;
    BSPLOGP_ASSERT(false && "vertex has no free color (degree > h?)");
    return h;
  };

  for (std::size_t e = 0; e < msgs.size(); ++e) {
    const auto u = static_cast<std::size_t>(msgs[e].src);
    const auto v = static_cast<std::size_t>(msgs[e].dst);
    const std::size_t a = free_color(at_src[u]);  // free at the sender
    const std::size_t b = free_color(at_dst[v]);  // free at the receiver
    if (a != b) {
      // Walk the maximal alternating a/b path starting at v, then flip it.
      // The path cannot reach u: u-side vertices on it are entered through
      // a-colored edges, and a is free at u. After the flip, a is free at
      // both u and v.
      std::vector<std::size_t> path;
      std::size_t vert = v;
      bool vert_is_dst = true;
      std::size_t want = a;  // color of the edge we walk next
      while (true) {
        const std::int32_t edge =
            (vert_is_dst ? at_dst[vert] : at_src[vert])[want];
        if (edge == kNone) break;
        const auto ei = static_cast<std::size_t>(edge);
        path.push_back(ei);
        vert = vert_is_dst ? static_cast<std::size_t>(msgs[ei].src)
                           : static_cast<std::size_t>(msgs[ei].dst);
        vert_is_dst = !vert_is_dst;
        want = (want == a) ? b : a;
      }
      // Flip: clear all old table entries first, then write the new ones,
      // so swaps within a shared vertex cannot clobber each other.
      for (const std::size_t ei : path) {
        at_src[static_cast<std::size_t>(msgs[ei].src)][color[ei]] = kNone;
        at_dst[static_cast<std::size_t>(msgs[ei].dst)][color[ei]] = kNone;
      }
      for (const std::size_t ei : path) {
        const std::size_t nc = (color[ei] == a) ? b : a;
        color[ei] = nc;
        at_src[static_cast<std::size_t>(msgs[ei].src)][nc] =
            static_cast<std::int32_t>(ei);
        at_dst[static_cast<std::size_t>(msgs[ei].dst)][nc] =
            static_cast<std::int32_t>(ei);
      }
    }
    color[e] = a;
    at_src[u][a] = static_cast<std::int32_t>(e);
    BSPLOGP_ASSERT(at_dst[v][a] == kNone);
    at_dst[v][a] = static_cast<std::int32_t>(e);
  }

  std::vector<std::vector<Message>> layers(h);
  for (std::size_t e = 0; e < msgs.size(); ++e) {
    BSPLOGP_ASSERT(color[e] < h);
    layers[color[e]].push_back(msgs[e]);
  }
  // Drop empty layers (possible when some colors go unused on sparse
  // relations).
  layers.erase(std::remove_if(layers.begin(), layers.end(),
                              [](const auto& l) { return l.empty(); }),
               layers.end());
  return layers;
}

bool is_partial_permutation(ProcId p, const std::vector<Message>& layer) {
  std::vector<char> src_seen(static_cast<std::size_t>(p), 0);
  std::vector<char> dst_seen(static_cast<std::size_t>(p), 0);
  for (const Message& m : layer) {
    if (m.src < 0 || m.src >= p || m.dst < 0 || m.dst >= p) return false;
    if (src_seen[static_cast<std::size_t>(m.src)]) return false;
    if (dst_seen[static_cast<std::size_t>(m.dst)]) return false;
    src_seen[static_cast<std::size_t>(m.src)] = 1;
    dst_seen[static_cast<std::size_t>(m.dst)] = 1;
  }
  return true;
}

}  // namespace bsplogp::routing

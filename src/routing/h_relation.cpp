#include "src/routing/h_relation.h"

#include <algorithm>
#include <numeric>

#include "src/core/contracts.h"

namespace bsplogp::routing {

HRelation::HRelation(ProcId p, std::vector<Message> messages)
    : p_(p), messages_(std::move(messages)) {
  BSPLOGP_EXPECTS(p >= 1);
  for (const Message& m : messages_) {
    BSPLOGP_EXPECTS(m.src >= 0 && m.src < p_);
    BSPLOGP_EXPECTS(m.dst >= 0 && m.dst < p_);
  }
}

void HRelation::add(ProcId src, ProcId dst, Word payload, std::int32_t tag) {
  BSPLOGP_EXPECTS(src >= 0 && src < p_);
  BSPLOGP_EXPECTS(dst >= 0 && dst < p_);
  messages_.push_back(Message{src, dst, payload, tag});
}

std::vector<Time> HRelation::out_degrees() const {
  std::vector<Time> deg(static_cast<std::size_t>(p_), 0);
  for (const Message& m : messages_) deg[static_cast<std::size_t>(m.src)] += 1;
  return deg;
}

std::vector<Time> HRelation::in_degrees() const {
  std::vector<Time> deg(static_cast<std::size_t>(p_), 0);
  for (const Message& m : messages_) deg[static_cast<std::size_t>(m.dst)] += 1;
  return deg;
}

Time HRelation::max_out_degree() const {
  const auto deg = out_degrees();
  return deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());
}

Time HRelation::max_in_degree() const {
  const auto deg = in_degrees();
  return deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());
}

Time HRelation::degree() const {
  return std::max(max_out_degree(), max_in_degree());
}

HRelation random_messages(ProcId p, std::int64_t m, core::Rng& rng) {
  BSPLOGP_EXPECTS(p >= 2);
  HRelation rel(p);
  for (std::int64_t i = 0; i < m; ++i) {
    const auto src = static_cast<ProcId>(rng.below(
        static_cast<std::uint64_t>(p)));
    auto dst = static_cast<ProcId>(rng.below(
        static_cast<std::uint64_t>(p - 1)));
    if (dst >= src) ++dst;  // uniform over the p-1 other processors
    rel.add(src, dst, static_cast<Word>(i));
  }
  return rel;
}

namespace {

/// Random permutation of 0..p-1 with no fixed points (fixed points are
/// repaired by swapping with a neighbor, preserving permutation-ness).
std::vector<ProcId> random_derangement(ProcId p, core::Rng& rng) {
  std::vector<ProcId> perm(static_cast<std::size_t>(p));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (ProcId i = 0; i < p; ++i) {
    if (perm[static_cast<std::size_t>(i)] == i) {
      const ProcId j = (i + 1) % p;
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
  }
  return perm;
}

}  // namespace

HRelation random_regular(ProcId p, Time h, core::Rng& rng) {
  BSPLOGP_EXPECTS(p >= 2);
  BSPLOGP_EXPECTS(h >= 0);
  HRelation rel(p);
  for (Time round = 0; round < h; ++round) {
    const auto perm = random_derangement(p, rng);
    for (ProcId i = 0; i < p; ++i)
      rel.add(i, perm[static_cast<std::size_t>(i)],
              round * p + i);
  }
  return rel;
}

HRelation random_sends(ProcId p, Time h, core::Rng& rng) {
  BSPLOGP_EXPECTS(p >= 2);
  HRelation rel(p);
  for (ProcId i = 0; i < p; ++i)
    for (Time k = 0; k < h; ++k) {
      auto dst = static_cast<ProcId>(
          rng.below(static_cast<std::uint64_t>(p - 1)));
      if (dst >= i) ++dst;
      rel.add(i, dst, static_cast<Word>(k));
    }
  return rel;
}

HRelation random_permutation(ProcId p, core::Rng& rng, double fill) {
  BSPLOGP_EXPECTS(p >= 2);
  BSPLOGP_EXPECTS(fill >= 0.0 && fill <= 1.0);
  HRelation rel(p);
  const auto perm = random_derangement(p, rng);
  for (ProcId i = 0; i < p; ++i)
    if (rng.uniform01() < fill)
      rel.add(i, perm[static_cast<std::size_t>(i)], i);
  return rel;
}

HRelation hotspot(ProcId p, ProcId target, Time k) {
  BSPLOGP_EXPECTS(p >= 2);
  BSPLOGP_EXPECTS(target >= 0 && target < p);
  HRelation rel(p);
  for (ProcId i = 0; i < p; ++i)
    if (i != target)
      for (Time j = 0; j < k; ++j) rel.add(i, target, j);
  return rel;
}

}  // namespace bsplogp::routing

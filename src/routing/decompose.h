// Off-line decomposition of h-relations into 1-relations (partial
// permutations), the mechanism Section 4.2 invokes through Hall's theorem:
// "any h-relation can be decomposed into disjoint 1-relations and,
// therefore, be routed off-line in optimal 2o + G(h-1) + L time".
//
// Constructively, the message multiset is a bipartite multigraph
// senders x receivers with maximum degree h; König's edge-coloring theorem
// gives a proper edge coloring with exactly h colors, and each color class
// is a 1-relation. We implement the classical alternating-path coloring
// (O(m * h) time), which needs no Euler splits or matching subroutines.
#pragma once

#include <vector>

#include "src/routing/h_relation.h"

namespace bsplogp::routing {

/// Splits `rel` into at most degree() layers, each a partial permutation
/// (no two messages in a layer share a source or a destination). The union
/// of the layers is exactly the input multiset.
[[nodiscard]] std::vector<std::vector<Message>> decompose_into_1_relations(
    const HRelation& rel);

/// True iff `layer` is a partial permutation on p processors.
[[nodiscard]] bool is_partial_permutation(ProcId p,
                                          const std::vector<Message>& layer);

}  // namespace bsplogp::routing

// Typed trace event records: the vocabulary in which the machines narrate
// an execution to a TraceSink (sink.h).
//
// The paper's claims are about where time goes — overhead vs. gap vs.
// latency vs. stalling in LogP (Section 2.2), the per-superstep
// w_s + g*h_s + l decomposition in BSP (Section 2.1) — so the event set
// mirrors exactly those accounting boundaries:
//
//   * LogP engine:  Submit, Accept, StallBegin/StallEnd (the Stalling
//     Rule's sender-blocked interval), Delivery, Acquire, GapWait (idle
//     imposed by the G-spacing rule), QueueDepth (input-buffer samples);
//   * BSP machine:  SuperstepBegin/SuperstepEnd carrying (w_s, h_s);
//   * cross-simulations: PhaseBegin/PhaseEnd markers for the protocol
//     phases of Theorem 2's superstep simulation (local computation, CB
//     barrier, global sort, routing cycles, drain).
//
// One POD record serves every kind; the field-mapping table below is the
// contract. Events carry model time, never wall-clock. Emission order is
// the order the simulation discovers events, which for a single kind on a
// single processor is non-decreasing in t; sinks that need a globally
// time-sorted view (e.g. the Chrome exporter) sort by t themselves.
#pragma once

#include <cstdint>

#include "src/core/types.h"

namespace bsplogp::trace {

enum class EventKind : std::uint8_t {
  // -- LogP engine ----------------------------------------------------------
  Submit,      // proc=sender   t=submission step        peer=destination
  Accept,      // proc=sender   t=acceptance step        peer=dst  t2=submit
  StallBegin,  // proc=sender   t=first blocked step     peer=dst
  StallEnd,    // proc=sender   t=acceptance step        peer=dst  t2=begin
  Delivery,    // proc=dst      t=delivery step          peer=src
  Acquire,     // proc=owner    t=acquisition start      peer=src
  GapWait,     // proc          t=issue time  t2=resume  a=steps lost to gap
  QueueDepth,  // proc          t=sample time            a=input-buffer depth
  // -- BSP machine ----------------------------------------------------------
  SuperstepBegin,  // proc=-1  t=cumulative cost before  idx=superstep
  SuperstepEnd,    // proc=-1  t=cumulative cost after   idx  t2=begin
                   //          a=w_s  b=h_s
  // -- Cross-simulation protocol phases -------------------------------------
  PhaseBegin,  // proc  t=phase entry  a=SimPhase  idx=superstep
  PhaseEnd,    // proc  t=phase exit   a=SimPhase  idx=superstep
};

/// Protocol phases of the Theorem-2 superstep simulation (bsp_on_logp),
/// carried in the `a` field of PhaseBegin/PhaseEnd.
enum class SimPhase : std::int64_t { Local, Cb, Sort, Route, Drain };

struct Event {
  EventKind kind = EventKind::Submit;
  /// Subject processor (-1 for machine-wide events).
  ProcId proc = -1;
  /// Model time of the event.
  Time t = 0;
  /// The other endpoint, where there is one (see the table above).
  ProcId peer = -1;
  /// Secondary time: interval start for *End records, submit time for
  /// Accept.
  Time t2 = 0;
  /// Kind-specific payloads (see the table above).
  std::int64_t a = 0;
  std::int64_t b = 0;
  /// Superstep index for BSP/phase records, -1 elsewhere.
  std::int64_t idx = -1;

  friend bool operator==(const Event&, const Event&) = default;

  // Named constructors: call sites stay typed even though the record is
  // generic.
  static Event submit(ProcId sender, Time t, ProcId dst) {
    return {EventKind::Submit, sender, t, dst, 0, 0, 0, -1};
  }
  static Event accept(ProcId sender, Time t, ProcId dst, Time submit_t) {
    return {EventKind::Accept, sender, t, dst, submit_t, 0, 0, -1};
  }
  static Event stall_begin(ProcId sender, Time t, ProcId dst) {
    return {EventKind::StallBegin, sender, t, dst, 0, 0, 0, -1};
  }
  static Event stall_end(ProcId sender, Time t, ProcId dst, Time begin_t) {
    return {EventKind::StallEnd, sender, t, dst, begin_t, 0, 0, -1};
  }
  static Event delivery(ProcId dst, Time t, ProcId src) {
    return {EventKind::Delivery, dst, t, src, 0, 0, 0, -1};
  }
  static Event acquire(ProcId owner, Time t, ProcId src) {
    return {EventKind::Acquire, owner, t, src, 0, 0, 0, -1};
  }
  static Event gap_wait(ProcId proc, Time issue_t, Time resume_t,
                        Time lost) {
    return {EventKind::GapWait, proc, issue_t, -1, resume_t, lost, 0, -1};
  }
  static Event queue_depth(ProcId proc, Time t, std::int64_t depth) {
    return {EventKind::QueueDepth, proc, t, -1, 0, depth, 0, -1};
  }
  static Event superstep_begin(Time cost_before, std::int64_t step) {
    return {EventKind::SuperstepBegin, -1, cost_before, -1, 0, 0, 0, step};
  }
  static Event superstep_end(Time cost_after, Time cost_before, Time w,
                             Time h, std::int64_t step) {
    return {EventKind::SuperstepEnd, -1, cost_after, -1, cost_before, w, h,
            step};
  }
  static Event phase_begin(ProcId proc, Time t, SimPhase phase,
                           std::int64_t step) {
    return {EventKind::PhaseBegin, proc, t, -1, 0,
            static_cast<std::int64_t>(phase), 0, step};
  }
  static Event phase_end(ProcId proc, Time t, SimPhase phase,
                         std::int64_t step) {
    return {EventKind::PhaseEnd, proc, t, -1, 0,
            static_cast<std::int64_t>(phase), 0, step};
  }
};

inline constexpr int kNumEventKinds =
    static_cast<int>(EventKind::PhaseEnd) + 1;
inline constexpr int kNumSimPhases = static_cast<int>(SimPhase::Drain) + 1;

[[nodiscard]] const char* kind_name(EventKind kind);
[[nodiscard]] const char* phase_name(SimPhase phase);

}  // namespace bsplogp::trace

#include "src/trace/event.h"

namespace bsplogp::trace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Submit: return "submit";
    case EventKind::Accept: return "accept";
    case EventKind::StallBegin: return "stall_begin";
    case EventKind::StallEnd: return "stall_end";
    case EventKind::Delivery: return "delivery";
    case EventKind::Acquire: return "acquire";
    case EventKind::GapWait: return "gap_wait";
    case EventKind::QueueDepth: return "queue_depth";
    case EventKind::SuperstepBegin: return "superstep_begin";
    case EventKind::SuperstepEnd: return "superstep_end";
    case EventKind::PhaseBegin: return "phase_begin";
    case EventKind::PhaseEnd: return "phase_end";
  }
  return "unknown";
}

const char* phase_name(SimPhase phase) {
  switch (phase) {
    case SimPhase::Local: return "local";
    case SimPhase::Cb: return "cb";
    case SimPhase::Sort: return "sort";
    case SimPhase::Route: return "route";
    case SimPhase::Drain: return "drain";
  }
  return "unknown";
}

}  // namespace bsplogp::trace

// CountingSink: aggregate view of a trace — per-kind / per-processor event
// counters, per-phase occupancy, and time-in-state distributions (stall
// spans, gap waits) summarized through core::stats.
//
// This is the cheap always-on sink: it keeps O(p + kinds) counters plus
// the duration samples, so it can ride along full bench sweeps where a
// verbatim recorder would not fit.
#pragma once

#include <vector>

#include "src/core/types.h"
#include "src/trace/sink.h"

namespace bsplogp::trace {

/// Summary of a duration distribution (model-time steps).
struct DurationSummary {
  std::int64_t count = 0;
  Time total = 0;
  Time max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

class CountingSink final : public TraceSink {
 public:
  void run_begin(const RunInfo& info) override;
  void run_end(Time finish) override;
  void emit(const Event& event) override;

  /// Events of `kind` across all processors (accumulated over all runs
  /// observed since construction).
  [[nodiscard]] std::int64_t count(EventKind kind) const;
  /// Events of `kind` attributed to processor `proc`.
  [[nodiscard]] std::int64_t count(EventKind kind, ProcId proc) const;
  /// Total events of every kind.
  [[nodiscard]] std::int64_t total() const;

  /// PhaseBegin markers seen for `phase` (xsim runs only).
  [[nodiscard]] std::int64_t phase_count(SimPhase phase) const;
  /// Summed processor-time between each PhaseBegin/PhaseEnd pair.
  [[nodiscard]] Time time_in_phase(SimPhase phase) const;

  /// Distribution of StallEnd spans (time senders spent blocked by the
  /// Stalling Rule).
  [[nodiscard]] DurationSummary stall_summary() const;
  /// Distribution of GapWait spans (idle imposed by the G-spacing rule).
  [[nodiscard]] DurationSummary gap_wait_summary() const;
  /// Per-processor totals of the same two quantities.
  [[nodiscard]] Time stall_time(ProcId proc) const;
  [[nodiscard]] Time gap_wait_time(ProcId proc) const;

  /// Largest QueueDepth sample seen.
  [[nodiscard]] std::int64_t max_queue_depth() const { return max_depth_; }

  [[nodiscard]] int runs() const { return runs_; }
  [[nodiscard]] Time last_finish() const { return finish_; }

 private:
  [[nodiscard]] static DurationSummary summarize(
      const std::vector<double>& samples);
  void ensure_proc(ProcId proc);

  std::int64_t counts_[kNumEventKinds] = {};
  // per_proc_[kind][proc]; sized lazily from the largest proc id seen.
  std::vector<std::int64_t> per_proc_[kNumEventKinds];
  std::int64_t phase_counts_[kNumSimPhases] = {};
  Time phase_time_[kNumSimPhases] = {};
  // Open phase entry time per processor, per phase (for PhaseEnd pairing).
  std::vector<Time> phase_open_[kNumSimPhases];
  std::vector<double> stall_samples_;
  std::vector<double> gap_samples_;
  std::vector<Time> stall_time_;
  std::vector<Time> gap_time_;
  std::int64_t max_depth_ = 0;
  int runs_ = 0;
  Time finish_ = 0;
};

}  // namespace bsplogp::trace

// The machine observer API: a TraceSink receives the typed event stream
// (event.h) of one or more runs.
//
// Contract (DESIGN.md §8):
//   * Installation is a raw pointer in the machine's Options (`sink`);
//     the machine never owns the sink. A null sink is the production
//     configuration: every emission site is guarded by a single pointer
//     test, so tracing costs nothing when disabled.
//   * For each run the machine calls run_begin(info) first, then emit()
//     for every event, then run_end(finish). A sink may observe several
//     runs back to back (benches sweep configurations); per-run state is
//     reset in run_begin.
//   * Sinks must not mutate the machine. Emission never influences the
//     execution: traced and untraced runs of the same seed are step-for-
//     step identical (the scheduler-equivalence guarantee extends to
//     traced runs).
//   * Events arrive in simulation-discovery order; per processor and
//     kind, timestamps are non-decreasing. Sinks needing a global
//     time-sorted view sort by Event::t.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/trace/event.h"

namespace bsplogp::trace {

/// Static facts about the run being observed, supplied to run_begin.
/// Model parameters that do not apply are zero (e.g. L/o/G for a BSP run).
struct RunInfo {
  /// Which machine is emitting: "logp", "bsp", "xsim.bsp_on_logp",
  /// "xsim.logp_on_bsp".
  std::string machine;
  ProcId nprocs = 0;
  /// LogP parameters (0 when not a LogP run).
  Time L = 0;
  Time o = 0;
  Time G = 0;
  /// The capacity threshold ceil(L/G) (0 when not a LogP run).
  Time capacity = 0;
  /// BSP parameters (0 when not a BSP run).
  Time g = 0;
  Time l = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A new run starts; resets per-run sink state.
  virtual void run_begin(const RunInfo& info) { (void)info; }
  /// The run ended at model time `finish`.
  virtual void run_end(Time finish) { (void)finish; }
  /// One event. The reference is valid only for the duration of the call.
  virtual void emit(const Event& event) = 0;
};

/// Verbatim event recorder: the run's event stream as a vector, for tests
/// and ad-hoc inspection.
class RecordingSink final : public TraceSink {
 public:
  void run_begin(const RunInfo& info) override {
    info_ = info;
    runs_ += 1;
  }
  void run_end(Time finish) override { finish_ = finish; }
  void emit(const Event& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const RunInfo& info() const { return info_; }
  [[nodiscard]] Time finish() const { return finish_; }
  [[nodiscard]] int runs() const { return runs_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
  RunInfo info_;
  Time finish_ = 0;
  int runs_ = 0;
};

/// Fan-out to several sinks (e.g. a ChromeTraceSink for the timeline plus
/// an InvariantSink for checking, on the same run). Does not own them.
class TeeSink final : public TraceSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void run_begin(const RunInfo& info) override {
    for (TraceSink* s : sinks_) s->run_begin(info);
  }
  void run_end(Time finish) override {
    for (TraceSink* s : sinks_) s->run_end(finish);
  }
  void emit(const Event& event) override {
    for (TraceSink* s : sinks_) s->emit(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Serializing adapter for multi-threaded emitters. Every sink in this
/// module is written for the machines' single-threaded emission contract;
/// the native shared-memory backend (src/native) emits from p real threads
/// at once. MutexSink forwards each call to the wrapped sink under one
/// mutex, so events are never torn or dropped and the inner sink's
/// bookkeeping stays exactly as correct as under a simulator. Does not own
/// the inner sink. Cross-thread emission order is whatever the lock
/// arbitration yields: per-kind counts are exact, interleavings are not
/// reproducible.
class MutexSink final : public TraceSink {
 public:
  explicit MutexSink(TraceSink* inner) : inner_(inner) {}

  void run_begin(const RunInfo& info) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->run_begin(info);
  }
  void run_end(Time finish) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->run_end(finish);
  }
  void emit(const Event& event) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->emit(event);
  }

 private:
  std::mutex mu_;
  TraceSink* inner_;
};

}  // namespace bsplogp::trace

#include "src/trace/counting_sink.h"

#include <algorithm>

#include "src/core/contracts.h"
#include "src/core/stats.h"

namespace bsplogp::trace {

namespace {

std::size_t kind_index(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  BSPLOGP_ASSERT(i < static_cast<std::size_t>(kNumEventKinds));
  return i;
}

std::size_t phase_index(std::int64_t phase) {
  BSPLOGP_ASSERT(phase >= 0 && phase < kNumSimPhases);
  return static_cast<std::size_t>(phase);
}

}  // namespace

void CountingSink::run_begin(const RunInfo& info) {
  runs_ += 1;
  ensure_proc(info.nprocs > 0 ? info.nprocs - 1 : 0);
  // Counters accumulate across runs; only the open-phase pairing state is
  // per-run.
  for (auto& open : phase_open_) std::fill(open.begin(), open.end(), -1);
}

void CountingSink::run_end(Time finish) { finish_ = finish; }

void CountingSink::ensure_proc(ProcId proc) {
  const auto need = static_cast<std::size_t>(proc) + 1;
  if (stall_time_.size() >= need) return;
  for (auto& v : per_proc_) v.resize(need, 0);
  for (auto& v : phase_open_) v.resize(need, -1);
  stall_time_.resize(need, 0);
  gap_time_.resize(need, 0);
}

void CountingSink::emit(const Event& event) {
  counts_[kind_index(event.kind)] += 1;
  if (event.proc >= 0) {
    ensure_proc(event.proc);
    per_proc_[kind_index(event.kind)][static_cast<std::size_t>(event.proc)] +=
        1;
  }
  switch (event.kind) {
    case EventKind::StallEnd: {
      const Time span = event.t - event.t2;
      stall_samples_.push_back(static_cast<double>(span));
      if (event.proc >= 0)
        stall_time_[static_cast<std::size_t>(event.proc)] += span;
      break;
    }
    case EventKind::GapWait: {
      gap_samples_.push_back(static_cast<double>(event.a));
      if (event.proc >= 0)
        gap_time_[static_cast<std::size_t>(event.proc)] += event.a;
      break;
    }
    case EventKind::QueueDepth:
      max_depth_ = std::max(max_depth_, event.a);
      break;
    case EventKind::PhaseBegin: {
      phase_counts_[phase_index(event.a)] += 1;
      if (event.proc >= 0)
        phase_open_[phase_index(event.a)][static_cast<std::size_t>(
            event.proc)] = event.t;
      break;
    }
    case EventKind::PhaseEnd: {
      if (event.proc < 0) break;
      Time& open =
          phase_open_[phase_index(event.a)][static_cast<std::size_t>(
              event.proc)];
      if (open >= 0) {
        phase_time_[phase_index(event.a)] += event.t - open;
        open = -1;
      }
      break;
    }
    default:
      break;
  }
}

std::int64_t CountingSink::count(EventKind kind) const {
  return counts_[kind_index(kind)];
}

std::int64_t CountingSink::count(EventKind kind, ProcId proc) const {
  const auto& v = per_proc_[kind_index(kind)];
  const auto i = static_cast<std::size_t>(proc);
  return i < v.size() ? v[i] : 0;
}

std::int64_t CountingSink::total() const {
  std::int64_t sum = 0;
  for (const std::int64_t c : counts_) sum += c;
  return sum;
}

std::int64_t CountingSink::phase_count(SimPhase phase) const {
  return phase_counts_[phase_index(static_cast<std::int64_t>(phase))];
}

Time CountingSink::time_in_phase(SimPhase phase) const {
  return phase_time_[phase_index(static_cast<std::int64_t>(phase))];
}

Time CountingSink::stall_time(ProcId proc) const {
  const auto i = static_cast<std::size_t>(proc);
  return i < stall_time_.size() ? stall_time_[i] : 0;
}

Time CountingSink::gap_wait_time(ProcId proc) const {
  const auto i = static_cast<std::size_t>(proc);
  return i < gap_time_.size() ? gap_time_[i] : 0;
}

DurationSummary CountingSink::summarize(const std::vector<double>& samples) {
  DurationSummary s;
  s.count = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return s;
  for (const double v : samples) {
    s.total += static_cast<Time>(v);
    s.max = std::max(s.max, static_cast<Time>(v));
  }
  s.mean = core::mean(samples);
  s.p50 = core::quantile(samples, 0.5);
  s.p95 = core::quantile(samples, 0.95);
  return s;
}

DurationSummary CountingSink::stall_summary() const {
  return summarize(stall_samples_);
}

DurationSummary CountingSink::gap_wait_summary() const {
  return summarize(gap_samples_);
}

}  // namespace bsplogp::trace

#include "src/trace/chrome_sink.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace bsplogp::trace {

namespace {

std::string num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ChromeTraceSink::push(Row row) {
  if (row.ph != 'M') event_rows_ += 1;
  rows_.push_back(std::move(row));
}

void ChromeTraceSink::meta(const std::string& name, std::int64_t tid,
                           const std::string& value) {
  Row row;
  row.name = name;
  row.ph = 'M';
  row.pid = static_cast<ProcId>(pid_);
  row.tid = tid;
  row.args = "\"name\": \"" + json_escape(value) + "\"";
  rows_.push_back(std::move(row));
}

void ChromeTraceSink::run_begin(const RunInfo& info) {
  pid_ += 1;
  nprocs_ = info.nprocs;
  meta("process_name", 0,
       info.machine + " run " + num(pid_) + " (p=" + num(info.nprocs) + ")");
  for (ProcId i = 0; i < info.nprocs; ++i)
    meta("thread_name", i, "proc " + num(i));
  meta("thread_name", info.nprocs, "machine");
}

void ChromeTraceSink::run_end(Time finish) {
  (void)finish;
  if (!path_.empty()) (void)write_file();
}

void ChromeTraceSink::emit(const Event& event) {
  Row row;
  row.pid = static_cast<ProcId>(pid_);
  row.tid = event.proc >= 0 ? event.proc : nprocs_;
  row.ts = event.t;
  switch (event.kind) {
    case EventKind::StallEnd:
      row.name = "stall";
      row.ph = 'X';
      row.ts = event.t2;
      row.dur = event.t - event.t2;
      row.args = "\"dst\": " + num(event.peer);
      break;
    case EventKind::GapWait:
      row.name = "gap_wait";
      row.ph = 'X';
      row.dur = event.t2 - event.t;
      row.args = "\"lost\": " + num(event.a);
      break;
    case EventKind::SuperstepEnd:
      row.name = "superstep " + num(event.idx);
      row.ph = 'X';
      row.ts = event.t2;
      row.dur = event.t - event.t2;
      row.args = "\"w\": " + num(event.a) + ", \"h\": " + num(event.b);
      break;
    case EventKind::PhaseBegin:
      row.name = phase_name(static_cast<SimPhase>(event.a));
      row.ph = 'B';
      break;
    case EventKind::PhaseEnd:
      row.name = phase_name(static_cast<SimPhase>(event.a));
      row.ph = 'E';
      break;
    case EventKind::QueueDepth:
      // Counters key on (pid, name): one series per processor.
      row.name = "inbox " + num(event.proc);
      row.ph = 'C';
      row.args = "\"depth\": " + num(event.a);
      break;
    case EventKind::Submit:
    case EventKind::Accept:
    case EventKind::StallBegin:
    case EventKind::Delivery:
    case EventKind::Acquire:
      row.name = kind_name(event.kind);
      row.ph = 'i';
      row.args = "\"peer\": " + num(event.peer);
      break;
    case EventKind::SuperstepBegin:
      // The matching SuperstepEnd renders the interval; nothing to draw.
      return;
  }
  push(std::move(row));
}

void ChromeTraceSink::write(std::ostream& os) const {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const Row& row : rows_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\": \"" << json_escape(row.name) << "\", \"ph\": \""
       << row.ph << "\", \"pid\": " << row.pid << ", \"tid\": " << row.tid;
    if (row.ph != 'M') os << ", \"ts\": " << row.ts;
    if (row.ph == 'X') os << ", \"dur\": " << row.dur;
    if (row.ph == 'i') os << ", \"s\": \"t\"";
    if (!row.args.empty()) os << ", \"args\": {" << row.args << "}";
    os << "}";
  }
  os << "\n]}\n";
}

bool ChromeTraceSink::write_file(const std::string& path) const {
  const std::string& target = path.empty() ? path_ : path;
  if (target.empty()) return false;
  std::ofstream os(target);
  if (!os) return false;
  write(os);
  return os.good();
}

}  // namespace bsplogp::trace

#include "src/trace/invariant_sink.h"

#include <cinttypes>
#include <cstdio>

namespace bsplogp::trace {

namespace {

std::string at(Time t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, " at step %" PRId64, t);
  return buf;
}

std::string proc_str(ProcId p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "proc %d", p);
  return buf;
}

}  // namespace

void InvariantSink::run_begin(const RunInfo& info) {
  capacity_ = info.capacity;
  nprocs_ = info.nprocs;
  in_transit_.assign(static_cast<std::size_t>(info.nprocs), 0);
  last_delivery_.assign(static_cast<std::size_t>(info.nprocs), -1);
}

void InvariantSink::run_end(Time finish) { (void)finish; }

void InvariantSink::violation(std::string what) {
  violations_ += 1;
  if (messages_.size() < kMaxMessages) messages_.push_back(std::move(what));
}

void InvariantSink::emit(const Event& event) {
  auto dst_ok = [&](ProcId dst) { return dst >= 0 && dst < nprocs_; };
  switch (event.kind) {
    case EventKind::Accept: {
      if (event.t < event.t2)
        violation("acceptance before submission for " + proc_str(event.proc) +
                  at(event.t));
      const ProcId dst = event.peer;
      if (!dst_ok(dst)) break;
      Time& transit = in_transit_[static_cast<std::size_t>(dst)];
      transit += 1;
      if (capacity_ > 0 && transit > capacity_)
        violation("capacity constraint violated: " +
                  std::to_string(transit) + " in transit to " +
                  proc_str(dst) + at(event.t));
      break;
    }
    case EventKind::Delivery: {
      const ProcId dst = event.proc;
      if (!dst_ok(dst)) break;
      Time& transit = in_transit_[static_cast<std::size_t>(dst)];
      if (transit <= 0) {
        violation("delivery without a matching acceptance to " +
                  proc_str(dst) + at(event.t));
      } else {
        transit -= 1;
      }
      Time& last = last_delivery_[static_cast<std::size_t>(dst)];
      if (last == event.t)
        violation("two deliveries to " + proc_str(dst) + " in one step" +
                  at(event.t));
      last = event.t;
      break;
    }
    case EventKind::StallEnd:
      if (event.t < event.t2)
        violation("negative stall span for " + proc_str(event.proc) +
                  at(event.t));
      break;
    default:
      break;
  }
}

}  // namespace bsplogp::trace

// InvariantSink: replays the model rules over the event stream and
// records violations — an independent re-check of the engine, for tests.
//
// Invariants enforced (paper, Section 2.2):
//   * Capacity constraint: accepted-but-undelivered messages per
//     destination never exceed ceil(L/G) (RunInfo::capacity).
//   * The medium delivers at most one message per destination per step.
//   * Interval sanity: acceptance at or after submission (Accept.t >=
//     Accept.t2), stall spans non-negative, deliveries only of accepted
//     messages (per-destination accept/delivery conservation).
//
// The sink is deliberately machine-independent: it sees only the event
// stream, so feeding it a corrupted stream (tests/trace) proves the
// checks have teeth.
#pragma once

#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/trace/sink.h"

namespace bsplogp::trace {

class InvariantSink final : public TraceSink {
 public:
  void run_begin(const RunInfo& info) override;
  void run_end(Time finish) override;
  void emit(const Event& event) override;

  /// Total violations recorded (accumulated across runs).
  [[nodiscard]] std::int64_t violations() const { return violations_; }
  [[nodiscard]] bool ok() const { return violations_ == 0; }
  /// Human-readable description of each violation, in stream order
  /// (capped; see kMaxMessages).
  [[nodiscard]] const std::vector<std::string>& messages() const {
    return messages_;
  }

  static constexpr std::size_t kMaxMessages = 64;

 private:
  void violation(std::string what);

  Time capacity_ = 0;
  ProcId nprocs_ = 0;
  std::vector<Time> in_transit_;      // accepted, not yet delivered, per dst
  std::vector<Time> last_delivery_;   // step of the last delivery, per dst
  std::int64_t violations_ = 0;
  std::vector<std::string> messages_;
};

}  // namespace bsplogp::trace

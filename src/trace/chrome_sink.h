// ChromeTraceSink: exports the event stream as Chrome trace-event JSON
// (the "JSON Array Format" of the Trace Event spec), loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Track layout: each observed run becomes one process (pid = run index,
// named after RunInfo::machine), with one thread track per processor
// (tid = ProcId) plus a "machine" track (tid = nprocs) for machine-wide
// records (BSP supersteps). Mapping:
//
//   * interval records — stall spans, gap waits, supersteps, protocol
//     phases — become complete ("ph":"X") duration events;
//   * point records — submit/accept/delivery/acquire — become thread-
//     scoped instant ("ph":"i") events;
//   * QueueDepth samples become counter ("ph":"C") events, so Perfetto
//     renders input-buffer occupancy as a graph per processor.
//
// Timestamps are model steps written as microseconds (1 step = 1 us);
// only relative durations are meaningful.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/trace/sink.h"

namespace bsplogp::trace {

class ChromeTraceSink final : public TraceSink {
 public:
  ChromeTraceSink() = default;
  /// Auto-write mode: the trace file is (re)written at every run_end, so
  /// the file holds a complete valid document whenever the caller stops.
  explicit ChromeTraceSink(std::string path) : path_(std::move(path)) {}

  void run_begin(const RunInfo& info) override;
  void run_end(Time finish) override;
  void emit(const Event& event) override;

  /// Serializes the full document collected so far.
  void write(std::ostream& os) const;
  /// Writes to `path` (or the constructor path if empty). Returns false
  /// if the file cannot be written.
  [[nodiscard]] bool write_file(const std::string& path = {}) const;

  /// Trace-event rows collected (excluding metadata rows).
  [[nodiscard]] std::int64_t event_rows() const { return event_rows_; }
  [[nodiscard]] int runs() const { return pid_; }

 private:
  struct Row {
    std::string name;
    char ph = 'i';         // X, i, C, M
    ProcId pid = 0;        // run index
    std::int64_t tid = 0;  // processor (nprocs = machine track)
    Time ts = 0;
    Time dur = 0;          // X only
    std::string args;      // pre-rendered JSON object body, may be empty
  };

  void push(Row row);
  void meta(const std::string& name, std::int64_t tid,
            const std::string& value);

  std::string path_;
  std::vector<Row> rows_;
  std::int64_t event_rows_ = 0;
  int pid_ = 0;  // current run; incremented by run_begin
  ProcId nprocs_ = 0;
};

/// JSON string escaping shared by the sink and its tests.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace bsplogp::trace

#include "src/algo/logp_collectives.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/algo/mailbox.h"
#include "src/algo/tree.h"
#include "src/core/contracts.h"

namespace bsplogp::algo {

namespace {

/// Smallest S >= earliest with S = k*L and k of the given parity — the
/// paper's transmission slots for the binary-tree (capacity 1) case.
Time next_parity_slot(Time earliest, Time L, Time parity) {
  Time k = ceil_div(earliest, L);
  if ((k & 1) != parity) ++k;
  return k * L;
}

/// Sends to the parent, honoring the parity slot rule when capacity is 1
/// and the tree is the canonical binary one.
logp::Task<> send_up(Mailbox& mb, const DAryTree& tree, Word value) {
  logp::Proc& p = mb.proc();
  const logp::Params& prm = p.params();
  if (prm.capacity() == 1 && tree.arity() == 2) {
    const Time parity = tree.child_index(p.id()) % 2;
    const Time slot = next_parity_slot(p.earliest_submit(), prm.L, parity);
    co_await p.wait_until(slot - prm.o);
  }
  co_await p.send(tree.parent(p.id()), value, 0, 0, Channel::kCbUp);
}

}  // namespace

ProcId cb_arity(const logp::Params& prm) {
  return static_cast<ProcId>(std::max<Time>(2, prm.capacity()));
}

logp::Task<Word> combine_broadcast(Mailbox& mb, Word local, ReduceOp op) {
  return combine_broadcast_arity(mb, local, op, cb_arity(mb.proc().params()));
}

logp::Task<Word> combine_broadcast_arity(Mailbox& mb, Word local, ReduceOp op,
                                         ProcId arity) {
  logp::Proc& p = mb.proc();
  const DAryTree tree(p.nprocs(), arity);
  const ProcId me = p.id();
  const std::vector<ProcId> kids = tree.children(me);

  // Ascend: combine the inputs of this node's subtree.
  Word acc = local;
  for (std::size_t k = 0; k < kids.size(); ++k) {
    const Message m = co_await mb.recv_channel(Channel::kCbUp);
    acc = apply(op, acc, m.payload);
  }
  // Forward to the parent and wait for the global result to descend.
  if (!tree.is_root(me)) {
    co_await send_up(mb, tree, acc);
    acc = (co_await mb.recv_channel(Channel::kCbDown)).payload;
  }
  // Descend: broadcast the result into the subtree.
  for (const ProcId c : kids)
    co_await p.send(c, acc, 0, 0, Channel::kCbDown);
  co_return acc;
}

logp::Task<> barrier(Mailbox& mb) {
  // CB with AND over all-ones: returns (to everyone) only after everyone
  // joined. The value is 1 by construction; discard it.
  (void)co_await combine_broadcast(mb, 1, ReduceOp::And);
}

logp::Task<Word> tree_broadcast(Mailbox& mb, Word value) {
  logp::Proc& p = mb.proc();
  const DAryTree tree(p.nprocs(), cb_arity(p.params()));
  const ProcId me = p.id();
  Word v = value;
  if (!tree.is_root(me))
    v = (co_await mb.recv_channel(Channel::kBroadcast)).payload;
  for (const ProcId c : tree.children(me))
    co_await p.send(c, v, 0, 0, Channel::kBroadcast);
  co_return v;
}

logp::Task<Word> prefix_scan(Mailbox& mb, Word local, ReduceOp op) {
  logp::Proc& p = mb.proc();
  const ProcId np = p.nprocs();
  const ProcId me = p.id();
  Word acc = local;  // inclusive prefix of the inputs in (me - 2^k, me]
  for (std::int32_t k = 0; (ProcId{1} << k) < np; ++k) {
    const ProcId stride = ProcId{1} << k;
    if (me + stride < np)
      co_await p.send(me + stride, acc, k, 0, Channel::kScan);
    if (me >= stride) {
      // Rounds are tagged: a fast left neighbor's round-(k+1) message can
      // overtake a slow one's round-k message in transit.
      const Message m = co_await mb.recv_channel_tag(Channel::kScan, k);
      acc = apply(op, m.payload, acc);
    }
  }
  co_return acc;
}

logp::Task<Word> scatter(Mailbox& mb, std::span<const Word> values) {
  logp::Proc& p = mb.proc();
  BSPLOGP_EXPECTS(std::cmp_equal(values.size(), p.nprocs()));
  if (p.id() == 0) {
    for (ProcId d = 1; d < p.nprocs(); ++d)
      co_await p.send(d, values[static_cast<std::size_t>(d)], 0, 0,
                      Channel::kData);
    co_return values[0];
  }
  co_return (co_await mb.recv_channel(Channel::kData)).payload;
}

logp::Task<std::vector<Word>> gather(Mailbox& mb, Word local, Time start) {
  logp::Proc& p = mb.proc();
  const ProcId np = p.nprocs();
  if (p.id() != 0) {
    if (start >= 0) {
      // G-staggered slots keep the fan-in within the capacity constraint.
      const Time slot = start + static_cast<Time>(p.id()) * p.params().G;
      co_await p.wait_until(std::max(p.now(), slot - p.params().o));
    }
    co_await p.send(0, local, p.id(), 0, Channel::kData);
    co_return std::vector<Word>{};
  }
  std::vector<Word> out(static_cast<std::size_t>(np), 0);
  out[0] = local;
  for (ProcId k = 1; k < np; ++k) {
    const Message m = co_await mb.recv_channel(Channel::kData);
    out[static_cast<std::size_t>(m.src)] = m.payload;
  }
  co_return out;
}

Time cb_time_bound(const logp::Params& prm, ProcId p) {
  const DAryTree tree(p, cb_arity(prm));
  const Time levels = tree.height();
  // Each level costs at most one send (o + gap slack) plus one delivery
  // (L) plus one acquisition (o) in each phase; the paper's constant is 3.
  Time per_level = 3 * (prm.L + prm.o);
  // The parity rule can add up to one 2L slot-alignment wait per level.
  if (prm.capacity() == 1) per_level += 2 * prm.L;
  return per_level * std::max<Time>(levels, 1) + 4 * (prm.L + prm.o);
}

}  // namespace bsplogp::algo

// Complete d-ary tree over processor ids in BFS order: the communication
// structure of the paper's Combine-and-Broadcast algorithm (Section 4.1),
// which uses a complete max{2, ceil(L/G)}-ary tree with p nodes.
#pragma once

#include <vector>

#include "src/core/contracts.h"
#include "src/core/types.h"

namespace bsplogp::algo {

/// Nodes are 0..p-1; node 0 is the root; node i's children are
/// d*i+1 .. d*i+d (those < p) and its parent is (i-1)/d.
class DAryTree {
 public:
  DAryTree(ProcId p, ProcId arity) : p_(p), d_(arity) {
    BSPLOGP_EXPECTS(p >= 1);
    BSPLOGP_EXPECTS(arity >= 2);
  }

  [[nodiscard]] ProcId size() const { return p_; }
  [[nodiscard]] ProcId arity() const { return d_; }
  [[nodiscard]] bool is_root(ProcId i) const { return i == 0; }

  [[nodiscard]] ProcId parent(ProcId i) const {
    BSPLOGP_EXPECTS(i > 0 && i < p_);
    return (i - 1) / d_;
  }

  /// Position of i among its parent's children, 0-based.
  [[nodiscard]] ProcId child_index(ProcId i) const {
    BSPLOGP_EXPECTS(i > 0 && i < p_);
    return (i - 1) % d_;
  }

  [[nodiscard]] std::vector<ProcId> children(ProcId i) const {
    BSPLOGP_EXPECTS(i >= 0 && i < p_);
    std::vector<ProcId> out;
    const std::int64_t first = std::int64_t{d_} * i + 1;
    for (std::int64_t c = first; c < first + d_ && c < p_; ++c)
      out.push_back(static_cast<ProcId>(c));
    return out;
  }

  /// Distance from the root (root has depth 0).
  [[nodiscard]] int depth(ProcId i) const {
    BSPLOGP_EXPECTS(i >= 0 && i < p_);
    int dep = 0;
    while (i != 0) {
      i = parent(i);
      ++dep;
    }
    return dep;
  }

  /// Height of the whole tree: max depth over nodes.
  [[nodiscard]] int height() const { return p_ > 1 ? depth(p_ - 1) : 0; }

 private:
  ProcId p_;
  ProcId d_;
};

}  // namespace bsplogp::algo

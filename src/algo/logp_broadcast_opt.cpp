#include "src/algo/logp_broadcast_opt.h"

#include <algorithm>
#include <queue>

#include "src/core/contracts.h"

namespace bsplogp::algo {

Time BroadcastSchedule::makespan() const {
  Time m = 0;
  for (const Time t : informed_at) m = std::max(m, t);
  return m;
}

BroadcastSchedule optimal_broadcast_schedule(ProcId p,
                                             const logp::Params& prm) {
  BSPLOGP_EXPECTS(p >= 1);
  BroadcastSchedule s;
  s.children.resize(static_cast<std::size_t>(p));
  s.informed_at.assign(static_cast<std::size_t>(p), 0);

  // (next submission time, processor), earliest first; ties by id for
  // determinism.
  using Slot = std::pair<Time, ProcId>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> ready;
  ready.emplace(prm.o, ProcId{0});  // root's first submission at t = o

  for (ProcId next = 1; next < p; ++next) {
    const auto [submit, src] = ready.top();
    ready.pop();
    s.children[static_cast<std::size_t>(src)].push_back(next);
    // Worst-case delivery at submit+L; acquisition costs o; the new
    // processor's own first submission needs o more.
    const Time informed = submit + prm.L + prm.o;
    s.informed_at[static_cast<std::size_t>(next)] = informed;
    ready.emplace(submit + prm.G, src);      // src's next slot (gap rule)
    ready.emplace(informed + prm.o, next);   // recruit joins the senders
  }
  return s;
}

logp::Task<Word> reduce_opt(Mailbox& mb, Word local, ReduceOp op,
                            const BroadcastSchedule& schedule) {
  logp::Proc& p = mb.proc();
  const ProcId me = p.id();
  const logp::Params& prm = p.params();
  BSPLOGP_EXPECTS(std::cmp_equal(schedule.children.size(),
                                 static_cast<std::size_t>(p.nprocs())));
  // Time-reversal: the broadcast message (v -> c) submitted at
  // sigma = informed_at[c] - L - o becomes a reverse message (c -> v)
  // submitted at T - sigma - L. T leaves room for the earliest slot.
  const Time horizon = schedule.makespan() + 2 * (prm.L + prm.o);

  const auto& kids = schedule.children[static_cast<std::size_t>(me)];
  Word acc = local;
  for (std::size_t k = 0; k < kids.size(); ++k) {
    const Message m = co_await mb.recv_channel(Channel::kCbUp);
    acc = apply(op, acc, m.payload);
  }
  if (me != 0) {
    // Find my parent: the node whose child list contains me.
    ProcId parent = -1;
    for (ProcId v = 0; v < p.nprocs(); ++v)
      for (const ProcId c : schedule.children[static_cast<std::size_t>(v)])
        if (c == me) parent = v;
    BSPLOGP_ASSERT(parent >= 0);
    const Time sigma =
        schedule.informed_at[static_cast<std::size_t>(me)] - prm.L - prm.o;
    const Time submit = horizon - sigma - prm.L;
    co_await p.wait_until(std::max(p.now(), submit - prm.o));
    co_await p.send(parent, acc, 0, 0, Channel::kCbUp);
  }
  co_return acc;
}

logp::Task<Word> broadcast_opt(Mailbox& mb, Word value,
                               const BroadcastSchedule& schedule) {
  logp::Proc& p = mb.proc();
  const ProcId me = p.id();
  BSPLOGP_EXPECTS(std::cmp_equal(schedule.children.size(),
                                 static_cast<std::size_t>(p.nprocs())));
  Word v = value;
  if (me != 0) v = (co_await mb.recv_channel(Channel::kBroadcast)).payload;
  for (const ProcId c : schedule.children[static_cast<std::size_t>(me)])
    co_await p.send(c, v, 0, 0, Channel::kBroadcast);
  co_return v;
}

}  // namespace bsplogp::algo

// A small library of classic BSP algorithms. They serve three roles:
// (1) realistic workloads for the Theorem-2 simulation of BSP on LogP,
// (2) the example applications, and (3) cost-model regression tests (their
// superstep costs have closed forms).
//
// Each factory returns one ProcProgram per processor; results are written
// into caller-owned output ranges when the program halts.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/algo/reduce_op.h"
#include "src/bsp/machine.h"
#include "src/core/types.h"

namespace bsplogp::algo {

using BspPrograms = std::vector<std::unique_ptr<bsp::ProcProgram>>;

/// One-superstep broadcast: the root sends `value` to everyone (an
/// h-relation with h = p-1). out[i] receives the value. 2 supersteps total
/// (send, read).
[[nodiscard]] BspPrograms bsp_broadcast_direct(ProcId p, Word value,
                                               std::vector<Word>& out);

/// d-ary tree broadcast: ceil(log_d p) communication supersteps, each an
/// h-relation with h <= d. Trades supersteps (latency l) for degree
/// (bandwidth g) against the direct version — the classic BSP tradeoff.
[[nodiscard]] BspPrograms bsp_broadcast_tree(ProcId p, ProcId arity,
                                             Word value,
                                             std::vector<Word>& out);

/// All-reduce under `op`: every processor ends with the reduction of in[i]
/// over all i. Hillis–Steele doubling: ceil(log2 p) supersteps of degree 1.
[[nodiscard]] BspPrograms bsp_allreduce(ProcId p, std::span<const Word> in,
                                        ReduceOp op, std::vector<Word>& out);

/// Inclusive prefix scan: out[i] = op(in[0..i]). ceil(log2 p) supersteps of
/// degree 1.
[[nodiscard]] BspPrograms bsp_prefix_scan(ProcId p, std::span<const Word> in,
                                          ReduceOp op,
                                          std::vector<Word>& out);

/// Odd–even transposition sort of p blocks of b keys each. Each processor
/// starts with blocks[i] (size b) and ends with the globally sorted
/// sequence's i-th block. p merge-split phases; each phase exchanges whole
/// blocks (h = b) between neighbors.
[[nodiscard]] BspPrograms bsp_odd_even_sort(
    ProcId p, const std::vector<std::vector<Word>>& blocks,
    std::vector<std::vector<Word>>& out);

/// Parallel LSD radix sort with radix p: each round routes every key to
/// the processor named by its current base-p digit (stability by (src,
/// sequence) order), for ceil(log_p(key_range)) rounds. Keys must lie in
/// [0, key_range). The per-round relations are irregular and can be very
/// lopsided — exactly the workload the paper's Section 6 cites (the LogP
/// Radixsort of [16]) as prone to violating the capacity constraint, and
/// which Theorem 2's router must nonetheless run stall-free. Output blocks
/// are the final buckets (sizes vary; concatenation is sorted).
[[nodiscard]] BspPrograms bsp_radix_sort(
    ProcId p, const std::vector<std::vector<Word>>& blocks, Word key_range,
    std::vector<std::vector<Word>>& out);

/// Sample sort: local sort, regular sampling, splitter broadcast, one
/// all-to-all partition superstep, local merge. O(1) supersteps with
/// h ~ 2n/p for well-spread inputs — the classic "direct" BSP algorithm
/// family of Gerbessiotis–Valiant ([4] in the paper).
[[nodiscard]] BspPrograms bsp_sample_sort(
    ProcId p, const std::vector<std::vector<Word>>& blocks,
    std::vector<std::vector<Word>>& out);

/// Dense n x n matrix–vector multiply with block-row distribution
/// (n divisible by p): two supersteps — broadcast the needed x fragments
/// (an h-relation with h = n), then local dot products (w = n^2/p).
/// Matrix rows are generated deterministically from `seed` on each
/// processor; out collects y = A x.
[[nodiscard]] BspPrograms bsp_matvec(ProcId p, std::int64_t n,
                                     std::span<const Word> x,
                                     std::uint64_t seed,
                                     std::vector<Word>& out);

}  // namespace bsplogp::algo

// LogP collectives from Section 4.1 of the paper, written as composable
// coroutine sub-tasks: Combine-and-Broadcast (CB), the barrier built on it,
// tree broadcast, and a prefix scan.
//
// CB runs on a complete max{2, ceil(L/G)}-ary tree: with arity equal to the
// capacity threshold, no more than ceil(L/G) messages are ever in transit
// to one node, so the algorithm is stall-free by construction. For
// ceil(L/G) = 1 the tree is binary and the paper's parity rule applies:
// transmissions to the parent occur only at even multiples of L for left
// children and odd multiples for right children, keeping at most one
// message in transit per parent.
//
// Running time (Proposition 2): T_CB = O(L log p / log(1 + ceil(L/G))),
// measured from the joining time of the latest processor — the algorithm is
// correct when processors join at different times, which is exactly what
// the superstep synchronization of Theorem 2 needs.
//
// All collectives receive through a Mailbox so they compose with other
// protocol layers running on the same processors (see mailbox.h).
#pragma once

#include <span>
#include <vector>

#include "src/algo/mailbox.h"
#include "src/algo/reduce_op.h"
#include "src/core/types.h"
#include "src/logp/machine.h"
#include "src/logp/task.h"

namespace bsplogp::algo {

/// The tree arity CB uses for the given machine parameters:
/// max{2, ceil(L/G)}.
[[nodiscard]] ProcId cb_arity(const logp::Params& prm);

/// Combine-and-Broadcast: combines every processor's `local` under `op` and
/// returns the result to all processors. Stall-free for any join times.
[[nodiscard]] logp::Task<Word> combine_broadcast(Mailbox& mb, Word local,
                                                 ReduceOp op);

/// CB on a tree of explicit arity — the ablation hook behind the paper's
/// max{2, ceil(L/G)} choice. Arities above the capacity threshold can make
/// the ascend phase stall (that is the experiment); the parity rule is
/// applied only in the canonical binary/capacity-1 case.
[[nodiscard]] logp::Task<Word> combine_broadcast_arity(Mailbox& mb,
                                                       Word local,
                                                       ReduceOp op,
                                                       ProcId arity);

/// Barrier synchronization: CB with AND over 1-inputs (Section 4's
/// superstep synchronization). Completes, on every processor, only after
/// every processor has joined.
[[nodiscard]] logp::Task<> barrier(Mailbox& mb);

/// One-to-all broadcast of processor 0's `value` down the CB tree (the
/// descend phase of CB alone). Returns the broadcast value on every
/// processor; `value` is ignored on non-roots. Stall-free at any capacity.
[[nodiscard]] logp::Task<Word> tree_broadcast(Mailbox& mb, Word value);

/// Inclusive prefix scan over processor ids (Hillis–Steele doubling,
/// ceil(log2 p) rounds, one message sent/received per processor per round).
/// Out-of-order round arrivals are handled by tagged receives. With
/// ceil(L/G) = 1, adjacent rounds can transiently stall; prefer capacity
/// >= 2 machines when stall-freeness matters.
[[nodiscard]] logp::Task<Word> prefix_scan(Mailbox& mb, Word local,
                                           ReduceOp op);

/// Closed-form bound on CB completion time used by tests and benches:
/// the paper's 3(L+o) per level over ceil(log p / log(1+ceil(L/G))) levels,
/// plus slot-alignment slack for the capacity-1 parity rule.
[[nodiscard]] Time cb_time_bound(const logp::Params& prm, ProcId p);

/// Scatter: processor 0 holds `values` (one word per processor) and
/// delivers values[i] to processor i, pipelined at the gap. Returns each
/// processor's word. Stall-free (distinct destinations).
[[nodiscard]] logp::Task<Word> scatter(Mailbox& mb,
                                       std::span<const Word> values);

/// Gather: every processor's `local` word is collected at processor 0,
/// which returns the vector indexed by source (other processors return an
/// empty vector). `start` is a common base time for the senders'
/// G-staggered slots; with one it is stall-free (the fan-in stays within
/// capacity), without (start = -1) senders transmit immediately and the
/// Stalling Rule absorbs the burst (same asymptotic time — the Section-2.2
/// anomaly).
[[nodiscard]] logp::Task<std::vector<Word>> gather(Mailbox& mb, Word local,
                                                   Time start = -1);

}  // namespace bsplogp::algo

#include "src/algo/bsp_algorithms.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "src/algo/tree.h"
#include "src/core/contracts.h"
#include "src/core/rng.h"

namespace bsplogp::algo {

namespace {

/// Builds one FnProgram per processor from a factory of step functions.
template <typename MakeFn>
BspPrograms build(ProcId p, MakeFn make) {
  BspPrograms progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    progs.push_back(std::make_unique<bsp::FnProgram>(make(i)));
  return progs;
}

}  // namespace

BspPrograms bsp_broadcast_direct(ProcId p, Word value,
                                 std::vector<Word>& out) {
  BSPLOGP_EXPECTS(p >= 1);
  out.assign(static_cast<std::size_t>(p), 0);
  return build(p, [&out, value, p](ProcId) {
    return [&out, value, p](bsp::Ctx& c) {
      if (c.superstep() == 0) {
        if (c.pid() == 0) {
          out[0] = value;
          for (ProcId d = 1; d < p; ++d) c.send(d, value);
        }
        return p > 1;  // single processor: done immediately
      }
      if (!c.inbox().empty())
        out[static_cast<std::size_t>(c.pid())] = c.inbox()[0].payload;
      return false;
    };
  });
}

BspPrograms bsp_broadcast_tree(ProcId p, ProcId arity, Word value,
                               std::vector<Word>& out) {
  BSPLOGP_EXPECTS(p >= 1);
  out.assign(static_cast<std::size_t>(p), 0);
  // The tree is shared, immutable machinery; capture by value per program.
  const DAryTree tree(p, arity);
  return build(p, [&out, value, tree](ProcId me) {
    const int my_depth = tree.depth(me);
    const int height = tree.height();
    return [&out, value, tree, me, my_depth, height](bsp::Ctx& c) {
      // A node at depth k receives the value at the start of superstep k
      // (the root "has" it at superstep 0) and forwards it in the same
      // superstep.
      if (c.superstep() == my_depth) {
        Word v = value;
        if (me != 0) {
          BSPLOGP_ASSERT(c.inbox().size() == 1);
          v = c.inbox()[0].payload;
        }
        out[static_cast<std::size_t>(me)] = v;
        for (const ProcId child : tree.children(me)) c.send(child, v);
      }
      return c.superstep() < height;
    };
  });
}

BspPrograms bsp_allreduce(ProcId p, std::span<const Word> in, ReduceOp op,
                          std::vector<Word>& out) {
  BSPLOGP_EXPECTS(std::cmp_equal(in.size(), p));
  out.assign(static_cast<std::size_t>(p), 0);
  // Binary-tree reduce (supersteps 0..H-1, node at depth k sends at
  // superstep H-1-k... scheduled uniformly as H - depth) followed by a
  // tree broadcast of the total. 2H+1 supersteps, degree <= arity.
  const DAryTree tree(p, 2);
  const int height = tree.height();
  struct State {
    Word acc = 0;
  };
  auto states = std::make_shared<std::vector<State>>(
      static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    (*states)[static_cast<std::size_t>(i)].acc =
        in[static_cast<std::size_t>(i)];
  return build(p, [states, &out, op, tree, height](ProcId me) {
    const int my_depth = tree.depth(me);
    return [states, &out, op, tree, height, my_depth, me](bsp::Ctx& c) {
      State& st = (*states)[static_cast<std::size_t>(me)];
      for (const Message& m : c.inbox()) {
        if (m.tag == 0) {
          st.acc = apply(op, st.acc, m.payload);  // ascending partial
          c.charge(1);
        } else {
          st.acc = m.payload;  // descending total
        }
      }
      // Ascend: depth k sends its combined subtree value at superstep
      // height - k (every child, even a shallow leaf, has sent by then).
      if (me != 0 && c.superstep() == height - my_depth + 0)
        c.send(tree.parent(me), st.acc, 0);
      // Descend: the root's total is complete at superstep height+1.
      const std::int64_t send_down_at = height + 1 + my_depth;
      if (c.superstep() == send_down_at) {
        for (const ProcId child : tree.children(me))
          c.send(child, st.acc, 1);
        out[static_cast<std::size_t>(me)] = st.acc;
      }
      return c.superstep() < send_down_at;
    };
  });
}

BspPrograms bsp_prefix_scan(ProcId p, std::span<const Word> in, ReduceOp op,
                            std::vector<Word>& out) {
  BSPLOGP_EXPECTS(std::cmp_equal(in.size(), p));
  out.assign(static_cast<std::size_t>(p), 0);
  const int rounds = p > 1 ? ceil_log2(p) : 0;
  struct State {
    Word acc = 0;
  };
  auto states =
      std::make_shared<std::vector<State>>(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    (*states)[static_cast<std::size_t>(i)].acc =
        in[static_cast<std::size_t>(i)];
  return build(p, [states, &out, op, p, rounds](ProcId me) {
    return [states, &out, op, p, rounds, me](bsp::Ctx& c) {
      State& st = (*states)[static_cast<std::size_t>(me)];
      // Hillis–Steele: at superstep k, combine the window arriving from
      // me - 2^(k-1), then send the updated window to me + 2^k.
      for (const Message& m : c.inbox()) {
        st.acc = apply(op, m.payload, st.acc);
        c.charge(1);
      }
      const std::int64_t k = c.superstep();
      if (k < rounds) {
        const ProcId stride = static_cast<ProcId>(ProcId{1} << k);
        if (me + stride < p) c.send(me + stride, st.acc);
        return true;
      }
      out[static_cast<std::size_t>(me)] = st.acc;
      return false;
    };
  });
}

BspPrograms bsp_odd_even_sort(ProcId p,
                              const std::vector<std::vector<Word>>& blocks,
                              std::vector<std::vector<Word>>& out) {
  BSPLOGP_EXPECTS(std::cmp_equal(blocks.size(), p));
  const std::size_t b = blocks.empty() ? 0 : blocks[0].size();
  for (const auto& blk : blocks) BSPLOGP_EXPECTS(blk.size() == b);
  out.assign(static_cast<std::size_t>(p), {});

  struct State {
    std::vector<Word> block;
  };
  auto states =
      std::make_shared<std::vector<State>>(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    (*states)[static_cast<std::size_t>(i)].block =
        blocks[static_cast<std::size_t>(i)];

  return build(p, [states, &out, p, b](ProcId me) {
    return [states, &out, p, b, me](bsp::Ctx& c) {
      State& st = (*states)[static_cast<std::size_t>(me)];
      const std::int64_t s = c.superstep();
      if (s == 0) {
        std::sort(st.block.begin(), st.block.end());
        c.charge(static_cast<Time>(b) * std::max(1, ceil_log2(
                     static_cast<std::int64_t>(b) + 1)));
      } else {
        // Merge-split with the previous phase's partner: keep the low half
        // if we are the left element of the pair, high half otherwise.
        if (!c.inbox().empty()) {
          std::vector<Word> merged;
          merged.reserve(2 * b);
          for (const Message& m : c.inbox()) merged.push_back(m.payload);
          const ProcId partner = c.inbox()[0].src;
          merged.insert(merged.end(), st.block.begin(), st.block.end());
          std::sort(merged.begin(), merged.end());
          c.charge(static_cast<Time>(merged.size()));
          if (me < partner)
            st.block.assign(merged.begin(),
                            merged.begin() + static_cast<std::ptrdiff_t>(b));
          else
            st.block.assign(merged.end() - static_cast<std::ptrdiff_t>(b),
                            merged.end());
        }
      }
      // p phases of odd-even transposition: phase t pairs (i, i+1) with
      // i + t even. Phase t's exchange is sent in superstep t (0-based
      // phases start at superstep 1).
      const std::int64_t phase = s + 1;
      if (phase <= p) {
        const std::int64_t t = phase - 1;
        ProcId partner = -1;
        if ((me + t) % 2 == 0 && me + 1 < p) partner = me + 1;
        if ((me + t) % 2 == 1 && me - 1 >= 0)
          partner = static_cast<ProcId>(me - 1);
        if (partner >= 0)
          for (const Word w : st.block) c.send(partner, w);
        return true;
      }
      out[static_cast<std::size_t>(me)] = st.block;
      return false;
    };
  });
}

BspPrograms bsp_radix_sort(ProcId p,
                           const std::vector<std::vector<Word>>& blocks,
                           Word key_range,
                           std::vector<std::vector<Word>>& out) {
  BSPLOGP_EXPECTS(std::cmp_equal(blocks.size(), p));
  BSPLOGP_EXPECTS(key_range >= 1);
  for (const auto& blk : blocks)
    for (const Word k : blk) BSPLOGP_EXPECTS(k >= 0 && k < key_range);
  out.assign(static_cast<std::size_t>(p), {});

  // Number of base-p digits needed to cover the key range.
  int rounds = 1;
  {
    Word span = p;
    while (span < key_range) {
      span *= p;
      ++rounds;
    }
  }

  struct State {
    std::vector<Word> keys;
  };
  auto states =
      std::make_shared<std::vector<State>>(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    (*states)[static_cast<std::size_t>(i)].keys =
        blocks[static_cast<std::size_t>(i)];

  return build(p, [states, &out, p, rounds](ProcId me) {
    return [states, &out, p, rounds, me](bsp::Ctx& c) {
      State& st = (*states)[static_cast<std::size_t>(me)];
      if (c.superstep() > 0) {
        // Collect the previous round stably: order by (src, sequence).
        std::vector<Message> msgs(c.inbox().begin(), c.inbox().end());
        std::stable_sort(msgs.begin(), msgs.end(),
                         [](const Message& a, const Message& b) {
                           return std::tie(a.src, a.tag) <
                                  std::tie(b.src, b.tag);
                         });
        c.charge(static_cast<Time>(msgs.size()));
        st.keys.clear();
        for (const Message& m : msgs) st.keys.push_back(m.payload);
      }
      const std::int64_t s = c.superstep();
      if (s < rounds) {
        Word divisor = 1;
        for (std::int64_t d = 0; d < s; ++d) divisor *= p;
        for (std::size_t j = 0; j < st.keys.size(); ++j) {
          const auto digit =
              static_cast<ProcId>((st.keys[j] / divisor) % p);
          c.send(digit, st.keys[j], static_cast<std::int32_t>(j));
        }
        return true;
      }
      out[static_cast<std::size_t>(me)] = st.keys;
      return false;
    };
  });
}

BspPrograms bsp_sample_sort(ProcId p,
                            const std::vector<std::vector<Word>>& blocks,
                            std::vector<std::vector<Word>>& out) {
  BSPLOGP_EXPECTS(std::cmp_equal(blocks.size(), p));
  out.assign(static_cast<std::size_t>(p), {});
  constexpr std::int32_t kTagSample = 1;
  constexpr std::int32_t kTagSplitter = 2;
  constexpr std::int32_t kTagData = 3;

  struct State {
    std::vector<Word> keys;
    std::vector<Word> splitters;
  };
  auto states =
      std::make_shared<std::vector<State>>(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i)
    (*states)[static_cast<std::size_t>(i)].keys =
        blocks[static_cast<std::size_t>(i)];

  return build(p, [states, &out, p](ProcId me) {
    return [states, &out, p, me](bsp::Ctx& c) {
      State& st = (*states)[static_cast<std::size_t>(me)];
      switch (c.superstep()) {
        case 0: {
          // Local sort + regular sampling: p samples per processor.
          std::sort(st.keys.begin(), st.keys.end());
          c.charge(static_cast<Time>(st.keys.size()) *
                   std::max(1, ceil_log2(static_cast<std::int64_t>(
                                   st.keys.size()) + 1)));
          const auto n = static_cast<std::int64_t>(st.keys.size());
          for (ProcId k = 0; k < p && n > 0; ++k) {
            const auto pos = static_cast<std::size_t>(
                (static_cast<std::int64_t>(k) * n) / p);
            c.send(0, st.keys[pos], kTagSample);
          }
          return true;
        }
        case 1: {
          // Processor 0 sorts the <= p^2 samples and broadcasts p-1
          // regular splitters.
          if (me == 0) {
            std::vector<Word> samples;
            for (const Message& m : c.inbox())
              if (m.tag == kTagSample) samples.push_back(m.payload);
            std::sort(samples.begin(), samples.end());
            c.charge(static_cast<Time>(samples.size()) *
                     std::max(1, ceil_log2(static_cast<std::int64_t>(
                                     samples.size()) + 1)));
            const auto n = static_cast<std::int64_t>(samples.size());
            for (ProcId k = 1; k < p; ++k) {
              const Word splitter =
                  n == 0 ? 0
                         : samples[static_cast<std::size_t>(
                               (static_cast<std::int64_t>(k) * n) / p)];
              for (ProcId d = 0; d < p; ++d)
                c.send(d, splitter, kTagSplitter);
            }
          }
          return true;
        }
        case 2: {
          // Partition by the splitters; route each key to its bucket.
          for (const Message& m : c.inbox())
            if (m.tag == kTagSplitter) st.splitters.push_back(m.payload);
          std::sort(st.splitters.begin(), st.splitters.end());
          for (const Word k : st.keys) {
            const auto bucket = static_cast<ProcId>(
                std::upper_bound(st.splitters.begin(), st.splitters.end(),
                                 k) -
                st.splitters.begin());
            c.send(bucket, k, kTagData);
          }
          c.charge(static_cast<Time>(st.keys.size()));
          return true;
        }
        default: {
          std::vector<Word> bucket;
          for (const Message& m : c.inbox())
            if (m.tag == kTagData) bucket.push_back(m.payload);
          std::sort(bucket.begin(), bucket.end());
          c.charge(static_cast<Time>(bucket.size()) *
                   std::max(1, ceil_log2(static_cast<std::int64_t>(
                                   bucket.size()) + 1)));
          out[static_cast<std::size_t>(me)] = std::move(bucket);
          return false;
        }
      }
    };
  });
}

BspPrograms bsp_matvec(ProcId p, std::int64_t n, std::span<const Word> x,
                       std::uint64_t seed, std::vector<Word>& out) {
  BSPLOGP_EXPECTS(p >= 1);
  BSPLOGP_EXPECTS(n % p == 0);
  BSPLOGP_EXPECTS(std::cmp_equal(x.size(), n));
  out.assign(static_cast<std::size_t>(n), 0);
  const std::int64_t rows = n / p;

  // Deterministic matrix entry: a small mixed hash, identical on every
  // processor (the matrix is conceptually replicated read-only input).
  auto entry = [seed](std::int64_t r, std::int64_t col) -> Word {
    std::uint64_t h = seed ^ (static_cast<std::uint64_t>(r) * 0x9e3779b9ULL) ^
                      (static_cast<std::uint64_t>(col) * 0x85ebca6bULL);
    h = core::splitmix64(h);
    return static_cast<Word>(h % 10);
  };

  struct State {
    std::vector<Word> xfull;
  };
  auto states =
      std::make_shared<std::vector<State>>(static_cast<std::size_t>(p));

  return build(p, [states, &out, x, p, n, rows, entry](ProcId me) {
    return [states, &out, x, p, n, rows, entry, me](bsp::Ctx& c) {
      State& st = (*states)[static_cast<std::size_t>(me)];
      if (c.superstep() == 0) {
        // Everyone owns the x-block [me*rows, (me+1)*rows) and sends it to
        // every other processor: an h-relation with h = (p-1)*n/p < n.
        st.xfull.assign(static_cast<std::size_t>(n), 0);
        for (std::int64_t j = 0; j < rows; ++j) {
          const std::int64_t gj = me * rows + j;
          st.xfull[static_cast<std::size_t>(gj)] =
              x[static_cast<std::size_t>(gj)];
          for (ProcId d = 0; d < p; ++d)
            if (d != me)
              c.send(d, x[static_cast<std::size_t>(gj)],
                     static_cast<std::int32_t>(gj));
        }
        return true;
      }
      if (c.superstep() == 1) {
        for (const Message& m : c.inbox())
          st.xfull[static_cast<std::size_t>(m.tag)] = m.payload;
        // Local block-row dot products: w = rows * n.
        for (std::int64_t r = me * rows; r < (me + 1) * rows; ++r) {
          Word acc = 0;
          for (std::int64_t col = 0; col < n; ++col)
            acc += entry(r, col) * st.xfull[static_cast<std::size_t>(col)];
          out[static_cast<std::size_t>(r)] = acc;
          c.charge(n);
        }
      }
      return false;
    };
  });
}

}  // namespace bsplogp::algo

// Associative reduction operators shared by the LogP and BSP collectives.
// A closed enum (rather than callables) keeps collective frames small and
// runs reproducible; every operator the paper's algorithms need is here
// (CB is invoked with AND for barriers, MAX for degree computation, and the
// lower bound of Proposition 1 is stated for OR).
#pragma once

#include <limits>

#include "src/core/types.h"

namespace bsplogp::algo {

enum class ReduceOp { Sum, Max, Min, And, Or };

[[nodiscard]] constexpr Word apply(ReduceOp op, Word a, Word b) {
  switch (op) {
    case ReduceOp::Sum:
      return a + b;
    case ReduceOp::Max:
      return a > b ? a : b;
    case ReduceOp::Min:
      return a < b ? a : b;
    case ReduceOp::And:
      return (a != 0 && b != 0) ? 1 : 0;
    case ReduceOp::Or:
      return (a != 0 || b != 0) ? 1 : 0;
  }
  return 0;
}

/// Identity element of op (x = apply(op, x, identity(op)) for all inputs
/// the collectives feed it).
[[nodiscard]] constexpr Word identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
      return 0;
    case ReduceOp::Max:
      return std::numeric_limits<Word>::min();
    case ReduceOp::Min:
      return std::numeric_limits<Word>::max();
    case ReduceOp::And:
      return 1;
    case ReduceOp::Or:
      return 0;
  }
  return 0;
}

}  // namespace bsplogp::algo

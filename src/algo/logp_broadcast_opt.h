// Optimal-style single-item broadcast for LogP, after Karp, Sahay, Santos,
// Schauser (SPAA'93), cited by the paper ([17]) as the alternative
// tree-based CB/broadcast whose time is not in closed form.
//
// The idea: every informed processor keeps transmitting to new processors,
// one submission every G steps; the greedy schedule that always directs the
// earliest available submission to the earliest still-uninformed slot is
// optimal in the LogP cost model. The schedule depends only on (p, L, o, G),
// so it is computed offline and executed as a static tree.
#pragma once

#include <vector>

#include "src/algo/mailbox.h"
#include "src/algo/reduce_op.h"
#include "src/core/types.h"
#include "src/logp/machine.h"
#include "src/logp/task.h"

namespace bsplogp::algo {

struct BroadcastSchedule {
  /// children[i] = destinations processor i transmits to, in send order.
  std::vector<std::vector<ProcId>> children;
  /// informed_at[i] = model time the schedule predicts processor i becomes
  /// ready to act on the value (root: 0). Worst-case (delivery = L).
  std::vector<Time> informed_at;
  /// Predicted completion: max over processors of informed_at.
  [[nodiscard]] Time makespan() const;
};

/// Builds the greedy broadcast schedule for p processors rooted at 0.
[[nodiscard]] BroadcastSchedule optimal_broadcast_schedule(
    ProcId p, const logp::Params& prm);

/// Executes `schedule` to broadcast processor 0's `value`; returns it on
/// every processor. Stall-free: every processor receives exactly one
/// message.
[[nodiscard]] logp::Task<Word> broadcast_opt(Mailbox& mb, Word value,
                                             const BroadcastSchedule& schedule);

/// Optimal-style reduction: the exact time reversal of `schedule` (Karp et
/// al.'s observation that summation mirrors broadcast in LogP). Each
/// message of the broadcast becomes a reverse message with a prescribed
/// submission slot, so arrivals at every node stay G-spaced — stall-free —
/// and the makespan mirrors the broadcast's. Returns the reduction of all
/// `local` values under `op` at processor 0 (other processors return their
/// subtree's partial).
[[nodiscard]] logp::Task<Word> reduce_opt(Mailbox& mb, Word local,
                                          ReduceOp op,
                                          const BroadcastSchedule& schedule);

}  // namespace bsplogp::algo

// Message demultiplexing for layered LogP protocols.
//
// A LogP processor has a single input buffer and `recv` yields messages in
// delivery order — but a protocol stack (e.g. Theorem 2's superstep
// simulation) interleaves barrier traffic, routing control, and data on the
// same processors, and deliveries from different layers can overtake each
// other in transit. A Mailbox wraps a Proc and lets each layer receive from
// its own logical channel: non-matching acquisitions are stashed (a local
// bookkeeping action, free in the model beyond the acquisition overhead the
// engine already charged) and handed to the layer that asks for them later.
//
// All layers on one processor must share one Mailbox; mixing raw
// `proc.recv()` with Mailbox receives would lose stashed messages.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "src/core/contracts.h"
#include "src/core/types.h"
#include "src/logp/machine.h"
#include "src/logp/task.h"

namespace bsplogp::algo {

/// Well-known channels used by the shipped protocols. User data should use
/// channels >= kUser.
struct Channel {
  static constexpr std::int32_t kCbUp = -1;
  static constexpr std::int32_t kCbDown = -2;
  static constexpr std::int32_t kScan = -3;
  static constexpr std::int32_t kBroadcast = -4;
  static constexpr std::int32_t kData = -5;
  static constexpr std::int32_t kControl = -6;
  static constexpr std::int32_t kUser = 0;
};

class Mailbox {
 public:
  explicit Mailbox(logp::Proc& proc) : proc_(proc) {}

  [[nodiscard]] logp::Proc& proc() { return proc_; }

  /// Receives the oldest message matching `pred`, acquiring (and stashing)
  /// non-matching messages as needed.
  [[nodiscard]] logp::Task<Message> recv_match(
      std::function<bool(const Message&)> pred) {
    for (std::size_t i = 0; i < stash_.size(); ++i) {
      if (pred(stash_[i])) {
        Message m = stash_[i];
        stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
        co_return m;
      }
    }
    for (;;) {
      Message m = co_await proc_.recv();
      if (pred(m)) co_return m;
      stash_.push_back(m);
    }
  }

  /// Receives the oldest message on `channel`.
  [[nodiscard]] logp::Task<Message> recv_channel(std::int32_t channel) {
    return recv_match(
        [channel](const Message& m) { return m.channel == channel; });
  }

  /// Receives the oldest message on `channel` with tag `tag`.
  [[nodiscard]] logp::Task<Message> recv_channel_tag(std::int32_t channel,
                                                     std::int32_t tag) {
    return recv_match([channel, tag](const Message& m) {
      return m.channel == channel && m.tag == tag;
    });
  }

  /// Acquires everything currently buffered in the processor's input
  /// buffer into the stash (paying the usual acquisition overhead and gap
  /// per message). Used by drain protocols that know, from a barrier
  /// argument, that all expected traffic has been delivered.
  [[nodiscard]] logp::Task<> acquire_pending() {
    std::size_t n = proc_.inbox_size();
    while (n-- > 0) stash_.push_back(co_await proc_.recv());
  }

  /// Removes and returns all stashed messages on `channel`, oldest first.
  [[nodiscard]] std::vector<Message> take_stashed(std::int32_t channel) {
    std::vector<Message> out;
    for (std::size_t i = 0; i < stash_.size();) {
      if (stash_[i].channel == channel) {
        out.push_back(stash_[i]);
        stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    return out;
  }

  /// Messages already acquired but not yet claimed by any layer.
  [[nodiscard]] std::size_t stashed() const { return stash_.size(); }
  /// Stashed + buffered-but-unacquired messages (free local peek).
  [[nodiscard]] std::size_t available() const {
    return stash_.size() + proc_.inbox_size();
  }

 private:
  logp::Proc& proc_;
  std::deque<Message> stash_;
};

}  // namespace bsplogp::algo

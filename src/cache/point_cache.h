// Policy half of the content-addressed sweep cache (DESIGN.md §10): mode
// handling (--cache on|off|readonly), hit/miss/stale accounting, and the
// result codec that turns a bench's PointResult into the entry payload
// and back, byte-exactly.
//
// A result type opts in by exposing
//
//   template <class Ar> void io(Ar& ar) { ar(a); ar(b); ... }
//
// listing every member in a fixed order; nested structs with io() compose.
// Arithmetic result types (Time, double, ...) need nothing. The codec
// round-trips exactly: int64 as decimal, double as %.17g (re-parsed by
// strtod to the identical bits), bool as true/false, strings escaped —
// which is what makes a replayed sweep's stdout/JSON byte-identical to
// the computed one (the byte-identity ctest enforces this end to end).
//
// Decode failures (a hand-edited or schema-drifted payload) demote the
// hit to a miss and fall back to live compute; they can only happen to
// tampered entries, since any binary change reissues the build
// fingerprint and evicts the entry as stale before decode is reached.
#pragma once

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <vector>

#include "src/cache/build_id.h"
#include "src/cache/store.h"

namespace bsplogp::cache {

enum class Mode { kOff, kOn, kReadOnly };

[[nodiscard]] const char* to_string(Mode m);
/// Parses "on"/"off"/"readonly"; false on anything else (strict CLI).
[[nodiscard]] bool parse_mode(const std::string& s, Mode* out);

/// Per-point identity within one bench: the parameter encoding and the
/// base RNG seed. Benches whose points draw from core::rng_for_index
/// streams must fold the grid index into `params` — the stream, and so
/// the result, depends on it.
struct PointKey {
  std::string params;
  std::uint64_t seed = 0;
};

struct Stats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t stale_evictions = 0;
};

// ---- Result codec -----------------------------------------------------------

/// Accumulates fields into the JSON payload array.
class Encoder {
 public:
  template <typename T>
  void operator()(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      append(v ? "true" : "false");
    } else if constexpr (std::is_integral_v<T>) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64,
                    static_cast<std::int64_t>(v));
      append(buf);
    } else if constexpr (std::is_floating_point_v<T>) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(v));
      append(buf);
    } else if constexpr (std::is_same_v<T, std::string>) {
      append("\"" + escaped(v) + "\"");
    } else {
      const_cast<T&>(v).io(*this);  // io() only reads under an Encoder
    }
  }

  [[nodiscard]] std::string str() const { return "[" + body_ + "]"; }

 private:
  static std::string escaped(const std::string& s);
  void append(const std::string& tok) {
    if (!body_.empty()) body_ += ", ";
    body_ += tok;
  }
  std::string body_;
};

/// Replays a payload array into the same field sequence. Any arity or
/// type mismatch poisons the decode (ok() goes false); partial writes
/// are discarded by the caller.
class Decoder {
 public:
  explicit Decoder(const core::JsonValue& payload) : payload_(payload) {}

  template <typename T>
  void operator()(T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      const core::JsonValue* j = next(core::JsonValue::Type::Bool);
      if (j != nullptr) v = j->boolean;
    } else if constexpr (std::is_integral_v<T>) {
      const core::JsonValue* j = next(core::JsonValue::Type::Number);
      if (j != nullptr) {
        char* end = nullptr;
        const long long parsed = std::strtoll(j->raw.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          ok_ = false;  // fractional or malformed where an integer belongs
        } else {
          v = static_cast<T>(parsed);
          if (static_cast<long long>(v) != parsed) ok_ = false;  // narrowed
        }
      }
    } else if constexpr (std::is_floating_point_v<T>) {
      const core::JsonValue* j = next(core::JsonValue::Type::Number);
      if (j != nullptr) v = static_cast<T>(std::strtod(j->raw.c_str(), nullptr));
    } else if constexpr (std::is_same_v<T, std::string>) {
      const core::JsonValue* j = next(core::JsonValue::Type::String);
      if (j != nullptr) v = j->str;
    } else {
      v.io(*this);
    }
  }

  /// True iff every field matched and the payload was fully consumed.
  [[nodiscard]] bool ok() const { return ok_ && next_ == payload_.array.size(); }

 private:
  const core::JsonValue* next(core::JsonValue::Type want) {
    if (!ok_ || next_ >= payload_.array.size() ||
        payload_.array[next_].type != want) {
      ok_ = false;
      return nullptr;
    }
    return &payload_.array[next_++];
  }

  const core::JsonValue& payload_;
  std::size_t next_ = 0;
  bool ok_ = true;
};

template <typename R>
[[nodiscard]] std::string encode_result(const R& r) {
  Encoder enc;
  enc(r);
  return enc.str();
}

template <typename R>
[[nodiscard]] bool decode_result(const core::JsonValue& payload, R* out) {
  R tmp{};
  Decoder dec(payload);
  dec(tmp);
  if (!dec.ok()) return false;
  *out = tmp;
  return true;
}

// ---- PointCache -------------------------------------------------------------

/// One bench run's view of a cache directory. Thread-safe: try_get/put
/// may be called from SweepRunner workers concurrently.
class PointCache {
 public:
  PointCache(Mode mode, std::string dir, std::string bench,
             std::string workload_spec,
             std::string build = effective_build_id());

  [[nodiscard]] bool enabled() const { return mode_ != Mode::kOff; }
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const Store& store() const { return store_; }
  [[nodiscard]] Stats stats() const;

  template <typename R>
  [[nodiscard]] bool try_get(const PointKey& pk, R* out) {
    if (!enabled()) return false;
    const Store::Lookup found = store_.lookup(make_key(pk));
    if (found.outcome == Store::Outcome::Stale)
      stale_evictions_.fetch_add(1, std::memory_order_relaxed);
    if (found.outcome == Store::Outcome::Hit &&
        decode_result(found.payload, out)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  template <typename R>
  void put(const PointKey& pk, const R& r) {
    if (mode_ != Mode::kOn) return;  // readonly never writes
    store_.commit(make_key(pk), encode_result(r));
  }

 private:
  [[nodiscard]] Key make_key(const PointKey& pk) const {
    return Key{bench_, pk.params, pk.seed, workload_spec_};
  }

  Mode mode_;
  std::string bench_;
  std::string workload_spec_;
  Store store_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> stale_evictions_{0};
};

}  // namespace bsplogp::cache

// Policy half of the content-addressed sweep cache (DESIGN.md §10): mode
// handling (--cache on|off|readonly) and hit/miss/stale accounting. The
// byte-exact result codec that turns a bench's PointResult into the
// entry payload and back lives in point_codec.h (cache::PointCodec) —
// public because the sweep farm (src/farm, DESIGN.md §13) reuses it
// verbatim as its wire format.
//
// Decode failures (a hand-edited or schema-drifted payload) demote the
// hit to a miss and fall back to live compute; they can only happen to
// tampered entries, since any binary change reissues the build
// fingerprint and evicts the entry as stale before decode is reached.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "src/cache/build_id.h"
#include "src/cache/point_codec.h"
#include "src/cache/store.h"

namespace bsplogp::cache {

enum class Mode { kOff, kOn, kReadOnly };

[[nodiscard]] const char* to_string(Mode m);
/// Parses "on"/"off"/"readonly"; false on anything else (strict CLI).
[[nodiscard]] bool parse_mode(const std::string& s, Mode* out);

/// Per-point identity within one bench: the parameter encoding and the
/// base RNG seed. Benches whose points draw from core::rng_for_index
/// streams must fold the grid index into `params` — the stream, and so
/// the result, depends on it.
struct PointKey {
  std::string params;
  std::uint64_t seed = 0;
};

struct Stats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t stale_evictions = 0;
};

// ---- PointCache -------------------------------------------------------------

/// One bench run's view of a cache directory. Thread-safe: try_get/put
/// may be called from SweepRunner workers concurrently.
class PointCache {
 public:
  PointCache(Mode mode, std::string dir, std::string bench,
             std::string workload_spec,
             std::string build = effective_build_id());

  [[nodiscard]] bool enabled() const { return mode_ != Mode::kOff; }
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const Store& store() const { return store_; }
  [[nodiscard]] Stats stats() const;

  template <typename R>
  [[nodiscard]] bool try_get(const PointKey& pk, R* out) {
    if (!enabled()) return false;
    const Store::Lookup found = store_.lookup(make_key(pk));
    if (found.outcome == Store::Outcome::Stale)
      stale_evictions_.fetch_add(1, std::memory_order_relaxed);
    if (found.outcome == Store::Outcome::Hit &&
        decode_result(found.payload, out)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  template <typename R>
  void put(const PointKey& pk, const R& r) {
    if (mode_ != Mode::kOn) return;  // readonly never writes
    store_.commit(make_key(pk), encode_result(r));
  }

 private:
  [[nodiscard]] Key make_key(const PointKey& pk) const {
    return Key{bench_, pk.params, pk.seed, workload_spec_};
  }

  Mode mode_;
  std::string bench_;
  std::string workload_spec_;
  Store store_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> stale_evictions_{0};
};

}  // namespace bsplogp::cache

#include "src/cache/point_cache.h"

namespace bsplogp::cache {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kOn: return "on";
    case Mode::kReadOnly: return "readonly";
  }
  return "off";
}

bool parse_mode(const std::string& s, Mode* out) {
  if (s == "on") *out = Mode::kOn;
  else if (s == "off") *out = Mode::kOff;
  else if (s == "readonly") *out = Mode::kReadOnly;
  else return false;
  return true;
}

std::string Encoder::escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

PointCache::PointCache(Mode mode, std::string dir, std::string bench,
                       std::string workload_spec, std::string build)
    : mode_(mode),
      bench_(std::move(bench)),
      workload_spec_(std::move(workload_spec)),
      store_(std::move(dir), std::move(build)) {}

Stats PointCache::stats() const {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed),
               stale_evictions_.load(std::memory_order_relaxed)};
}

}  // namespace bsplogp::cache

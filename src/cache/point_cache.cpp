#include "src/cache/point_cache.h"

namespace bsplogp::cache {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kOn: return "on";
    case Mode::kReadOnly: return "readonly";
  }
  return "off";
}

bool parse_mode(const std::string& s, Mode* out) {
  if (s == "on") *out = Mode::kOn;
  else if (s == "off") *out = Mode::kOff;
  else if (s == "readonly") *out = Mode::kReadOnly;
  else return false;
  return true;
}

PointCache::PointCache(Mode mode, std::string dir, std::string bench,
                       std::string workload_spec, std::string build)
    : mode_(mode),
      bench_(std::move(bench)),
      workload_spec_(std::move(workload_spec)),
      store_(std::move(dir), std::move(build)) {}

Stats PointCache::stats() const {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed),
               stale_evictions_.load(std::memory_order_relaxed)};
}

}  // namespace bsplogp::cache

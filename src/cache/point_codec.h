// Byte-exact point-result codec, shared by the sweep cache's on-disk
// entries (point_cache.h) and the sweep farm's wire payloads
// (src/farm) — one serialization path, so a result that replays from
// disk and one that arrives over a socket are the same bytes.
//
// A result type opts in by exposing
//
//   template <class Ar> void io(Ar& ar) { ar(a); ar(b); ... }
//
// listing every member in a fixed order; nested structs with io() compose.
// Arithmetic result types (Time, double, ...) need nothing. The codec
// round-trips exactly: int64 as decimal, double as %.17g (re-parsed by
// strtod to the identical bits), bool as true/false, strings escaped —
// which is what makes a replayed or farmed sweep's stdout/JSON
// byte-identical to the locally computed one (the byte-identity ctests
// enforce this end to end).
//
// Decode failures (a tampered payload, a schema drift between peers)
// never produce a partial result: decode returns false and the caller's
// value is untouched. The farm treats a failed decode as a poisoned
// worker; the cache demotes it to a miss.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>

#include "src/core/json.h"

namespace bsplogp::cache {

/// Accumulates fields into the JSON payload array.
class Encoder {
 public:
  template <typename T>
  void operator()(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      append(v ? "true" : "false");
    } else if constexpr (std::is_integral_v<T>) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64,
                    static_cast<std::int64_t>(v));
      append(buf);
    } else if constexpr (std::is_floating_point_v<T>) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(v));
      append(buf);
    } else if constexpr (std::is_same_v<T, std::string>) {
      append("\"" + escaped(v) + "\"");
    } else {
      const_cast<T&>(v).io(*this);  // io() only reads under an Encoder
    }
  }

  [[nodiscard]] std::string str() const { return "[" + body_ + "]"; }

 private:
  static std::string escaped(const std::string& s);
  void append(const std::string& tok) {
    if (!body_.empty()) body_ += ", ";
    body_ += tok;
  }
  std::string body_;
};

/// Replays a payload array into the same field sequence. Any arity or
/// type mismatch poisons the decode (ok() goes false); partial writes
/// are discarded by the caller.
class Decoder {
 public:
  explicit Decoder(const core::JsonValue& payload) : payload_(payload) {}

  template <typename T>
  void operator()(T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      const core::JsonValue* j = next(core::JsonValue::Type::Bool);
      if (j != nullptr) v = j->boolean;
    } else if constexpr (std::is_integral_v<T>) {
      const core::JsonValue* j = next(core::JsonValue::Type::Number);
      if (j != nullptr) {
        char* end = nullptr;
        const long long parsed = std::strtoll(j->raw.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          ok_ = false;  // fractional or malformed where an integer belongs
        } else {
          v = static_cast<T>(parsed);
          if (static_cast<long long>(v) != parsed) ok_ = false;  // narrowed
        }
      }
    } else if constexpr (std::is_floating_point_v<T>) {
      const core::JsonValue* j = next(core::JsonValue::Type::Number);
      if (j != nullptr) v = static_cast<T>(std::strtod(j->raw.c_str(), nullptr));
    } else if constexpr (std::is_same_v<T, std::string>) {
      const core::JsonValue* j = next(core::JsonValue::Type::String);
      if (j != nullptr) v = j->str;
    } else {
      v.io(*this);
    }
  }

  /// True iff every field matched and the payload was fully consumed.
  [[nodiscard]] bool ok() const { return ok_ && next_ == payload_.array.size(); }

 private:
  const core::JsonValue* next(core::JsonValue::Type want) {
    if (!ok_ || next_ >= payload_.array.size() ||
        payload_.array[next_].type != want) {
      ok_ = false;
      return nullptr;
    }
    return &payload_.array[next_++];
  }

  const core::JsonValue& payload_;
  std::size_t next_ = 0;
  bool ok_ = true;
};

/// The public face: PointCodec::encode / PointCodec::decode. The
/// string-taking decode overload parses the payload first (the farm's
/// wire entry point); the JsonValue overload is for callers that already
/// hold a parsed entry (the cache store).
struct PointCodec {
  template <typename R>
  [[nodiscard]] static std::string encode(const R& r) {
    Encoder enc;
    enc(r);
    return enc.str();
  }

  template <typename R>
  [[nodiscard]] static bool decode(const core::JsonValue& payload, R* out) {
    if (payload.type != core::JsonValue::Type::Array) return false;
    R tmp{};
    Decoder dec(payload);
    dec(tmp);
    if (!dec.ok()) return false;
    *out = tmp;
    return true;
  }

  template <typename R>
  [[nodiscard]] static bool decode(const std::string& payload_json, R* out) {
    core::JsonValue payload;
    if (!core::JsonParser(payload_json).parse(payload)) return false;
    return decode(payload, out);
  }
};

// Compatibility spellings used by the cache internals.
template <typename R>
[[nodiscard]] std::string encode_result(const R& r) {
  return PointCodec::encode(r);
}

template <typename R>
[[nodiscard]] bool decode_result(const core::JsonValue& payload, R* out) {
  return PointCodec::decode(payload, out);
}

}  // namespace bsplogp::cache

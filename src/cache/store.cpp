#include "src/cache/store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/cache/hash.h"

namespace bsplogp::cache {

namespace fs = std::filesystem;

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string seed_str(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// Hashes the logical point identity; the build fingerprint is chained
/// on top by key_hex() but deliberately kept out of the filename.
Hash128 point_hash(const Key& key) {
  Hasher h;
  h.field(key.bench).field(key.point).u64(key.seed).field(key.workload);
  return h.digest();
}

}  // namespace

Store::Store(std::string dir, std::string build_id)
    : dir_(std::move(dir)), build_id_(std::move(build_id)) {}

std::string Store::entry_name(const Key& key) const {
  return to_hex(point_hash(key)) + ".json";
}

std::string Store::key_hex(const Key& key) const {
  Hasher h;
  h.field(build_id_)
      .field(key.bench)
      .field(key.point)
      .u64(key.seed)
      .field(key.workload);
  return to_hex(h.digest());
}

Store::Lookup Store::lookup(const Key& key) const {
  const fs::path path = fs::path(dir_) / entry_name(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  core::JsonValue root;
  if (!core::JsonParser(text).parse(root) ||
      root.type != core::JsonValue::Type::Object)
    return {};  // truncated or corrupt: plain miss, next commit overwrites

  const core::JsonValue* format = root.find("format");
  const core::JsonValue* build = root.find("build_id");
  const core::JsonValue* preimage = root.find("preimage");
  const core::JsonValue* payload = root.find("payload");
  if (format == nullptr || format->raw != "1" || build == nullptr ||
      build->type != core::JsonValue::Type::String || preimage == nullptr ||
      preimage->type != core::JsonValue::Type::Object || payload == nullptr ||
      payload->type != core::JsonValue::Type::Array)
    return {};

  // The preimage is the ground truth; hashes only picked the filename.
  const core::JsonValue* bench = preimage->find("bench");
  const core::JsonValue* point = preimage->find("point");
  const core::JsonValue* seed = preimage->find("seed");
  const core::JsonValue* wl = preimage->find("workload");
  if (bench == nullptr || bench->str != key.bench || point == nullptr ||
      point->str != key.point || seed == nullptr ||
      seed->str != seed_str(key.seed) || wl == nullptr ||
      wl->str != key.workload)
    return {};  // filename collision: treat as a miss

  if (build->str != build_id_) {
    // A different binary generation wrote this point: evict so the
    // directory holds at most one generation per point.
    std::error_code ec;
    fs::remove(path, ec);
    return {Outcome::Stale, {}};
  }
  return {Outcome::Hit, *payload};
}

void Store::commit(const Key& key, const std::string& payload_json) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return;

  std::ostringstream os;
  os << "{\"format\": 1, \"build_id\": \"" << escape(build_id_)
     << "\", \"key\": \"" << key_hex(key)
     << "\",\n \"preimage\": {\"bench\": \"" << escape(key.bench)
     << "\", \"point\": \"" << escape(key.point) << "\", \"seed\": \""
     << seed_str(key.seed) << "\", \"workload\": \"" << escape(key.workload)
     << "\"},\n \"payload\": " << payload_json << "}\n";

  // Unique temp name per (thread, commit): concurrent workers never share
  // a temp file, and rename() makes publication atomic.
  const std::uint64_t n =
      temp_counter_.fetch_add(1, std::memory_order_relaxed);
  const auto tid =
      static_cast<std::uint64_t>(std::hash<std::thread::id>{}(
          std::this_thread::get_id()));
  const fs::path final_path = fs::path(dir_) / entry_name(key);
  const fs::path tmp_path =
      final_path.string() + ".tmp." + seed_str(tid) + "." + seed_str(n);
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << os.str();
    if (!out.good()) {
      out.close();
      fs::remove(tmp_path, ec);
      return;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) fs::remove(tmp_path, ec);
}

}  // namespace bsplogp::cache

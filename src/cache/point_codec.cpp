#include "src/cache/point_codec.h"

namespace bsplogp::cache {

std::string Encoder::escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace bsplogp::cache

#include "src/cache/hash.h"

#include <cstdio>

namespace bsplogp::cache {

namespace {
constexpr std::uint64_t kPrime = 0x100000001b3ULL;
}  // namespace

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    lo_ = (lo_ ^ b[i]) * kPrime;
    hi_ = (hi_ ^ static_cast<unsigned char>(b[i] ^ 0x5c)) * kPrime;
  }
  return *this;
}

Hasher& Hasher::u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(b, sizeof b);
}

std::string to_hex(const Hash128& h) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h.hi),
                static_cast<unsigned long long>(h.lo));
  return buf;
}

}  // namespace bsplogp::cache

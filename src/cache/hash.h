// Self-contained 128-bit content hash for cache keys (DESIGN.md §10).
//
// Two independent 64-bit FNV-1a lanes: the low lane is textbook FNV-1a
// (offset 0xcbf29ce484222325, prime 0x100000001b3); the high lane uses the
// same prime from a different offset and perturbs each byte, so the lanes
// do not cancel on permuted input. 128 bits keeps the birthday bound far
// below any realistic sweep-cache population; correctness never rests on
// it anyway — the store verifies the full key preimage on every lookup,
// so a filename collision degrades to a cache miss, never a wrong result.
//
// Stability matters: these constants are part of the on-disk format. A
// lane change orphans existing cache dirs (harmless — entries just miss)
// but must never change silently, hence the known-answer test in
// tests/cache/hash_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bsplogp::cache {

struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
};

/// 32 lowercase hex characters, hi lane first.
[[nodiscard]] std::string to_hex(const Hash128& h);

/// Incremental FNV-1a x2 hasher. field() frames its input with a length
/// prefix so ("ab","c") and ("a","bc") hash differently — key fields are
/// hashed as a sequence of fields, never as a raw concatenation.
class Hasher {
 public:
  Hasher& bytes(const void* data, std::size_t n);
  Hasher& u64(std::uint64_t v);  // little-endian framing
  Hasher& field(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  [[nodiscard]] Hash128 digest() const { return {hi_, lo_}; }

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;
  std::uint64_t hi_ = 0x6c62272e07bb0142ULL;
};

}  // namespace bsplogp::cache

// The build fingerprint that makes stale cache binaries self-invalidate
// (DESIGN.md §10). build_id() is baked into the generated build_id.cpp:
// cmake/build_id.cmake hashes every source file under src/ and bench/
// plus the compiler id/version/flags, and regenerates the constant
// whenever any of them changes — so a cache entry written by an older
// binary is evicted instead of replayed.
#pragma once

#include <string>

namespace bsplogp::cache {

/// The generated fingerprint (16 hex chars). Implemented by the
/// build-tree build_id.cpp, never by a checked-in file.
[[nodiscard]] const char* build_id();

/// build_id(), unless the BSPLOGP_BUILD_ID environment variable is set —
/// the test hook that lets ctest flip the fingerprint without rebuilding
/// (cmake/cache_replay.cmake's stale-eviction leg).
[[nodiscard]] std::string effective_build_id();

}  // namespace bsplogp::cache

#include <cstdlib>

#include "src/cache/build_id.h"

namespace bsplogp::cache {

std::string effective_build_id() {
  const char* env = std::getenv("BSPLOGP_BUILD_ID");
  if (env != nullptr && env[0] != '\0') return env;
  return build_id();
}

}  // namespace bsplogp::cache

// On-disk half of the content-addressed sweep cache (DESIGN.md §10).
//
// One JSON file per grid point under the cache directory:
//
//   <hex128(bench, point, seed, workload)>.json
//   { "format": 1,
//     "build_id": "<fingerprint of the binary that wrote it>",
//     "key": "<hex128 over (build_id, bench, point, seed, workload)>",
//     "preimage": { "bench": ..., "point": ..., "seed": "...",
//                   "workload": ... },
//     "payload": [ ... ] }
//
// The *filename* hash excludes the build fingerprint on purpose: a new
// binary must find (and evict) the entries an old binary wrote, instead
// of leaving them to shadow the directory forever. The *recorded* key
// hash covers all five fields for audit. Lookups never trust either
// hash: the stored preimage is compared field-by-field against the
// requested key, so a hash collision degrades to a miss, never to a
// wrong result.
//
// Commits write a uniquely-named temp file and rename() it into place —
// atomic on POSIX — so concurrent --jobs workers (or two processes
// sharing a nightly cache dir) can race on the same entry and the loser
// simply overwrites the winner with identical bytes. Corrupt, truncated,
// or foreign files behave as misses and are overwritten by the next
// commit. The Store is pure mechanism: hit/miss/stale accounting lives
// in PointCache (point_cache.h), which owns the policy.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/core/json.h"

namespace bsplogp::cache {

/// Logical identity of one cached grid point. `point` is the bench's
/// parameter encoding (e.g. "wl=all-to-all;p=16;gr=2;lr=1;i=3"); `seed`
/// is the base RNG seed (0 for deterministic workloads); `workload` is
/// the bench's workload spec (registry family names).
struct Key {
  std::string bench;
  std::string point;
  std::uint64_t seed = 0;
  std::string workload;
};

class Store {
 public:
  enum class Outcome { Hit, Miss, Stale };

  struct Lookup {
    Outcome outcome = Outcome::Miss;
    core::JsonValue payload;  // array; valid only when outcome == Hit
  };

  /// `dir` is created lazily on first commit; lookups against a missing
  /// directory are plain misses. `build_id` is the fingerprint entries
  /// are validated against (production: cache::effective_build_id()).
  Store(std::string dir, std::string build_id);

  /// Stale entries (valid file, different build fingerprint) are removed
  /// from disk so the directory never accumulates dead generations.
  [[nodiscard]] Lookup lookup(const Key& key) const;

  /// Atomically writes the entry for `key`. `payload_json` must be a
  /// JSON array (the encoded point result). Failures (unwritable dir,
  /// full disk) are swallowed: the cache is an accelerator, never a
  /// correctness dependency.
  void commit(const Key& key, const std::string& payload_json) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::string& build_id() const { return build_id_; }

  /// Entry filename (no directory) for `key` — exposed for tests that
  /// corrupt or inspect entries.
  [[nodiscard]] std::string entry_name(const Key& key) const;

  /// Full key hash over (build_id, bench, point, seed, workload), as
  /// recorded in the entry for audit.
  [[nodiscard]] std::string key_hex(const Key& key) const;

 private:
  std::string dir_;
  std::string build_id_;
  mutable std::atomic<std::uint64_t> temp_counter_{0};
};

}  // namespace bsplogp::cache

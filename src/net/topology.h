// Point-to-point network topologies for the Section-5 analysis: the paper's
// Table 1 lists, for each prominent interconnection, the bandwidth
// parameter gamma(p) and diameter delta(p) that govern the best attainable
// BSP and LogP parameters (g ~ gamma, l ~ delta; G ~ gamma, L ~ gamma +
// delta). This module builds the graphs and reports their analytic
// parameters; net/packet_sim.h measures them empirically.
//
// Table 1 entries (gamma, delta):
//   d-dim array:        p^{1/d},  p^{1/d}
//   hypercube (multi):  1,        log p
//   hypercube (single): log p,    log p
//   butterfly/CCC/SE:   log p,    log p
//   pruned butterfly /
//   mesh-of-trees:      sqrt(p),  log p
#pragma once

#include <string>
#include <vector>

#include "src/core/types.h"

namespace bsplogp::net {

using NodeId = std::int32_t;

enum class TopologyKind {
  Ring,              // 1-dim array (wraparound)
  Mesh2D,            // 2-dim array (torus)
  Mesh3D,            // 3-dim array (torus)
  HypercubeMulti,    // hypercube, all dimensions usable per step
  HypercubeSingle,   // hypercube, one port per node per step
  Butterfly,         // wrapped butterfly: n*2^n nodes
  CubeConnectedCycles,
  ShuffleExchange,
  MeshOfTrees,       // the pruned-butterfly / mesh-of-trees row
};

[[nodiscard]] std::string to_string(TopologyKind kind);

/// An undirected point-to-point network. Nodes 0..size-1; a subset of
/// nodes (the "processor" nodes) carries the p logical endpoints — for most
/// topologies every node is a processor, but e.g. a mesh-of-trees computes
/// only at the leaves.
class Topology {
 public:
  Topology(TopologyKind kind, NodeId size,
           std::vector<std::vector<NodeId>> adjacency,
           std::vector<NodeId> processors);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] NodeId size() const { return size_; }
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId v) const;
  /// The processor nodes, in logical order: processor i lives at node
  /// processors()[i].
  [[nodiscard]] const std::vector<NodeId>& processors() const {
    return processors_;
  }
  [[nodiscard]] ProcId nprocs() const {
    return static_cast<ProcId>(processors_.size());
  }

  [[nodiscard]] NodeId max_degree() const;
  /// Exact graph diameter (BFS from every node; fine at library scale).
  [[nodiscard]] NodeId diameter() const;
  /// BFS distances from a single source.
  [[nodiscard]] std::vector<NodeId> distances_from(NodeId v) const;
  /// True iff the graph is connected.
  [[nodiscard]] bool connected() const;
  /// Whether single-port semantics apply (one message per node per step
  /// over all links) rather than multi-port (one per link per step).
  [[nodiscard]] bool single_port() const {
    return kind_ == TopologyKind::HypercubeSingle;
  }

  /// Table-1 analytic bandwidth parameter gamma(p) for this instance.
  [[nodiscard]] double analytic_gamma() const;
  /// Table-1 analytic latency parameter delta(p) for this instance.
  [[nodiscard]] double analytic_delta() const;

 private:
  TopologyKind kind_;
  NodeId size_;
  std::vector<std::vector<NodeId>> adj_;
  std::vector<NodeId> processors_;
};

/// Factory: builds the topology whose processor count is >= p_request
/// (rounded up to the kind's natural size: power of two, square, etc.).
[[nodiscard]] Topology make_topology(TopologyKind kind, ProcId p_request);

}  // namespace bsplogp::net

// Synchronous store-and-forward packet simulator: the "real machine" for
// Section 5. Each step, every link transmits one packet (multi-port
// semantics) or every node transmits one packet over one of its links
// (single-port, the Table-1 distinction for the hypercube). Packets follow
// shortest-path next-hops with deterministic, load-spreading tie-breaks;
// Valiant two-phase routing (random intermediate processor) is available
// to flatten adversarial patterns.
//
// The paper's Section-5 claim is measured on top of this: routing a random
// h-relation costs T(h) ~ gamma(p)*h + delta(p), and fitting that line
// yields the empirical bandwidth/latency parameters per topology.
#pragma once

#include <span>
#include <vector>

#include "src/core/rng.h"
#include "src/core/stats.h"
#include "src/core/types.h"
#include "src/net/topology.h"
#include "src/routing/h_relation.h"

namespace bsplogp::net {

class PacketSim {
 public:
  struct Options {
    /// Route via a uniformly random intermediate processor first.
    bool valiant = false;
    std::uint64_t seed = 1;
    Time max_steps = 10'000'000;
  };

  /// Precomputes per-destination distance fields (BFS from every processor
  /// node). The topology is copied, so the simulator owns its world.
  explicit PacketSim(Topology topology);

  struct Result {
    /// Steps until the last packet was delivered.
    Time steps = 0;
    std::int64_t packets = 0;
    std::int64_t total_hops = 0;
    /// High-water mark of any single link queue.
    std::int64_t max_queue = 0;
    bool timed_out = false;
  };

  /// Routes all messages of `rel` (injected at step 0) to completion.
  [[nodiscard]] Result route(const routing::HRelation& rel,
                             Options opt) const;

  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  [[nodiscard]] NodeId next_hop(NodeId at, ProcId dst_proc,
                                std::uint64_t salt) const;

  Topology topo_;
  /// dist_[d][v]: hops from node v to processor d's node.
  std::vector<std::vector<NodeId>> dist_;
};

/// Sweeps h over `hs`, routing `trials` random h-regular relations per
/// point, and fits  T(h) = gamma_hat * h + delta_hat.
struct ParamFit {
  core::LinearFit fit;
  /// (h, mean steps) samples behind the fit.
  std::vector<std::pair<Time, double>> samples;
  [[nodiscard]] double gamma_hat() const { return fit.slope; }
  [[nodiscard]] double delta_hat() const { return fit.intercept; }
};

[[nodiscard]] ParamFit fit_route_params(const PacketSim& sim,
                                        std::span<const Time> hs, int trials,
                                        std::uint64_t seed,
                                        PacketSim::Options opt = {});

}  // namespace bsplogp::net

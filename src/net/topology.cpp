#include "src/net/topology.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <numeric>
#include <queue>

#include "src/core/contracts.h"

namespace bsplogp::net {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Ring: return "ring";
    case TopologyKind::Mesh2D: return "mesh2d";
    case TopologyKind::Mesh3D: return "mesh3d";
    case TopologyKind::HypercubeMulti: return "hypercube-multi";
    case TopologyKind::HypercubeSingle: return "hypercube-single";
    case TopologyKind::Butterfly: return "butterfly";
    case TopologyKind::CubeConnectedCycles: return "ccc";
    case TopologyKind::ShuffleExchange: return "shuffle-exchange";
    case TopologyKind::MeshOfTrees: return "mesh-of-trees";
  }
  return "?";
}

Topology::Topology(TopologyKind kind, NodeId size,
                   std::vector<std::vector<NodeId>> adjacency,
                   std::vector<NodeId> processors)
    : kind_(kind),
      size_(size),
      adj_(std::move(adjacency)),
      processors_(std::move(processors)) {
  BSPLOGP_EXPECTS(size_ >= 1);
  BSPLOGP_EXPECTS(std::cmp_equal(adj_.size(), size_));
  BSPLOGP_EXPECTS(!processors_.empty());
  for (const NodeId v : processors_) BSPLOGP_EXPECTS(v >= 0 && v < size_);
  // Normalize adjacency: sorted, deduplicated, no self loops.
  for (NodeId v = 0; v < size_; ++v) {
    auto& nb = adj_[static_cast<std::size_t>(v)];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    nb.erase(std::remove(nb.begin(), nb.end(), v), nb.end());
    for (const NodeId u : nb) BSPLOGP_EXPECTS(u >= 0 && u < size_);
  }
}

const std::vector<NodeId>& Topology::neighbors(NodeId v) const {
  BSPLOGP_EXPECTS(v >= 0 && v < size_);
  return adj_[static_cast<std::size_t>(v)];
}

NodeId Topology::max_degree() const {
  std::size_t d = 0;
  for (const auto& nb : adj_) d = std::max(d, nb.size());
  return static_cast<NodeId>(d);
}

std::vector<NodeId> Topology::distances_from(NodeId v) const {
  BSPLOGP_EXPECTS(v >= 0 && v < size_);
  std::vector<NodeId> dist(static_cast<std::size_t>(size_), -1);
  std::queue<NodeId> frontier;
  dist[static_cast<std::size_t>(v)] = 0;
  frontier.push(v);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId w : adj_[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(u)] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

bool Topology::connected() const {
  const auto dist = distances_from(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](NodeId d) { return d < 0; });
}

NodeId Topology::diameter() const {
  NodeId diam = 0;
  for (NodeId v = 0; v < size_; ++v) {
    const auto dist = distances_from(v);
    for (const NodeId d : dist) {
      BSPLOGP_ASSERT(d >= 0 && "diameter of a disconnected graph");
      diam = std::max(diam, d);
    }
  }
  return diam;
}

double Topology::analytic_gamma() const {
  const auto p = static_cast<double>(nprocs());
  switch (kind_) {
    case TopologyKind::Ring: return p;
    case TopologyKind::Mesh2D: return std::sqrt(p);
    case TopologyKind::Mesh3D: return std::cbrt(p);
    case TopologyKind::HypercubeMulti: return 1.0;
    case TopologyKind::HypercubeSingle:
    case TopologyKind::Butterfly:
    case TopologyKind::CubeConnectedCycles:
    case TopologyKind::ShuffleExchange: return std::log2(p);
    case TopologyKind::MeshOfTrees: return std::sqrt(p);
  }
  return 0;
}

double Topology::analytic_delta() const {
  const auto p = static_cast<double>(nprocs());
  switch (kind_) {
    case TopologyKind::Ring: return p;
    case TopologyKind::Mesh2D: return std::sqrt(p);
    case TopologyKind::Mesh3D: return std::cbrt(p);
    default: return std::log2(p);
  }
}

namespace {

Topology make_ring(ProcId p) {
  const NodeId n = std::max<NodeId>(p, 2);
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    adj[static_cast<std::size_t>(i)].push_back((i + 1) % n);
    adj[static_cast<std::size_t>(i)].push_back((i + n - 1) % n);
  }
  std::vector<NodeId> procs(static_cast<std::size_t>(n));
  std::iota(procs.begin(), procs.end(), 0);
  return Topology(TopologyKind::Ring, n, std::move(adj), std::move(procs));
}

Topology make_mesh(TopologyKind kind, ProcId p, int dims) {
  NodeId side = 2;
  auto total = [&](NodeId s) {
    NodeId t = 1;
    for (int d = 0; d < dims; ++d) t *= s;
    return t;
  };
  while (total(side) < p) ++side;
  const NodeId n = total(side);
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  // Torus links along each dimension.
  for (NodeId v = 0; v < n; ++v) {
    NodeId stride = 1;
    for (int d = 0; d < dims; ++d) {
      const NodeId coord = (v / stride) % side;
      const NodeId up = v + ((coord + 1) % side - coord) * stride;
      const NodeId down = v + ((coord + side - 1) % side - coord) * stride;
      adj[static_cast<std::size_t>(v)].push_back(up);
      adj[static_cast<std::size_t>(v)].push_back(down);
      stride *= side;
    }
  }
  std::vector<NodeId> procs(static_cast<std::size_t>(n));
  std::iota(procs.begin(), procs.end(), 0);
  return Topology(kind, n, std::move(adj), std::move(procs));
}

Topology make_hypercube(TopologyKind kind, ProcId p) {
  const int n = std::max(1, ceil_log2(std::max<ProcId>(p, 2)));
  const NodeId size = NodeId{1} << n;
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(size));
  for (NodeId v = 0; v < size; ++v)
    for (int k = 0; k < n; ++k)
      adj[static_cast<std::size_t>(v)].push_back(v ^ (NodeId{1} << k));
  std::vector<NodeId> procs(static_cast<std::size_t>(size));
  std::iota(procs.begin(), procs.end(), 0);
  return Topology(kind, size, std::move(adj), std::move(procs));
}

Topology make_butterfly(ProcId p) {
  // Wrapped butterfly with n levels and 2^n rows: nodes (level, row);
  // straight and cross edges to the next level (mod n). n*2^n nodes, all
  // processors.
  int n = 2;
  while (n * (NodeId{1} << n) < p) ++n;
  const NodeId rows = NodeId{1} << n;
  const NodeId size = static_cast<NodeId>(n) * rows;
  auto id = [&](int level, NodeId row) {
    return static_cast<NodeId>(level) * rows + row;
  };
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(size));
  for (int level = 0; level < n; ++level) {
    const int next = (level + 1) % n;
    for (NodeId row = 0; row < rows; ++row) {
      const NodeId a = id(level, row);
      const NodeId straight = id(next, row);
      const NodeId cross = id(next, row ^ (NodeId{1} << level));
      adj[static_cast<std::size_t>(a)].push_back(straight);
      adj[static_cast<std::size_t>(straight)].push_back(a);
      adj[static_cast<std::size_t>(a)].push_back(cross);
      adj[static_cast<std::size_t>(cross)].push_back(a);
    }
  }
  std::vector<NodeId> procs(static_cast<std::size_t>(size));
  std::iota(procs.begin(), procs.end(), 0);
  return Topology(TopologyKind::Butterfly, size, std::move(adj),
                  std::move(procs));
}

Topology make_ccc(ProcId p) {
  // Cube-connected cycles: hypercube corners expanded into n-cycles.
  int n = 3;
  while (n * (NodeId{1} << n) < p) ++n;
  const NodeId corners = NodeId{1} << n;
  const NodeId size = static_cast<NodeId>(n) * corners;
  auto id = [&](NodeId corner, int pos) {
    return corner * static_cast<NodeId>(n) + static_cast<NodeId>(pos);
  };
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(size));
  for (NodeId w = 0; w < corners; ++w) {
    for (int l = 0; l < n; ++l) {
      const NodeId a = id(w, l);
      adj[static_cast<std::size_t>(a)].push_back(id(w, (l + 1) % n));
      adj[static_cast<std::size_t>(a)].push_back(id(w, (l + n - 1) % n));
      adj[static_cast<std::size_t>(a)].push_back(
          id(w ^ (NodeId{1} << l), l));
    }
  }
  std::vector<NodeId> procs(static_cast<std::size_t>(size));
  std::iota(procs.begin(), procs.end(), 0);
  return Topology(TopologyKind::CubeConnectedCycles, size, std::move(adj),
                  std::move(procs));
}

Topology make_shuffle_exchange(ProcId p) {
  const int n = std::max(2, ceil_log2(std::max<ProcId>(p, 4)));
  const NodeId size = NodeId{1} << n;
  const NodeId mask = size - 1;
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(size));
  for (NodeId v = 0; v < size; ++v) {
    auto& nb = adj[static_cast<std::size_t>(v)];
    nb.push_back(v ^ 1);                                  // exchange
    nb.push_back(((v << 1) | (v >> (n - 1))) & mask);     // shuffle
    // unshuffle (the shuffle edge seen from the other side)
    nb.push_back(((v >> 1) | ((v & 1) << (n - 1))) & mask);
  }
  std::vector<NodeId> procs(static_cast<std::size_t>(size));
  std::iota(procs.begin(), procs.end(), 0);
  return Topology(TopologyKind::ShuffleExchange, size, std::move(adj),
                  std::move(procs));
}

Topology make_mesh_of_trees(ProcId p) {
  // side x side grid of leaf processors; a complete binary tree over every
  // row and every column (internal nodes are routing-only).
  NodeId side = 2;
  while (side * side < p) side *= 2;  // power of two for clean trees
  const NodeId leaves = side * side;
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(leaves));
  auto leaf = [&](NodeId row, NodeId col) { return row * side + col; };
  auto new_node = [&]() {
    adj.emplace_back();
    return static_cast<NodeId>(adj.size() - 1);
  };
  auto connect = [&](NodeId a, NodeId b) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  };
  // Builds a binary tree whose leaf layer is `level`; returns nothing —
  // edges are added as internal nodes are allocated.
  auto build_tree = [&](std::vector<NodeId> level) {
    while (level.size() > 1) {
      std::vector<NodeId> up;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        const NodeId parent = new_node();
        connect(parent, level[i]);
        connect(parent, level[i + 1]);
        up.push_back(parent);
      }
      if (level.size() % 2 == 1) up.push_back(level.back());
      level = std::move(up);
    }
  };
  for (NodeId r = 0; r < side; ++r) {
    std::vector<NodeId> row;
    for (NodeId c = 0; c < side; ++c) row.push_back(leaf(r, c));
    build_tree(std::move(row));
  }
  for (NodeId c = 0; c < side; ++c) {
    std::vector<NodeId> col;
    for (NodeId r = 0; r < side; ++r) col.push_back(leaf(r, c));
    build_tree(std::move(col));
  }
  std::vector<NodeId> procs(static_cast<std::size_t>(leaves));
  std::iota(procs.begin(), procs.end(), 0);
  const auto size = static_cast<NodeId>(adj.size());
  return Topology(TopologyKind::MeshOfTrees, size, std::move(adj),
                  std::move(procs));
}

}  // namespace

Topology make_topology(TopologyKind kind, ProcId p_request) {
  BSPLOGP_EXPECTS(p_request >= 2);
  switch (kind) {
    case TopologyKind::Ring:
      return make_ring(p_request);
    case TopologyKind::Mesh2D:
      return make_mesh(kind, p_request, 2);
    case TopologyKind::Mesh3D:
      return make_mesh(kind, p_request, 3);
    case TopologyKind::HypercubeMulti:
    case TopologyKind::HypercubeSingle:
      return make_hypercube(kind, p_request);
    case TopologyKind::Butterfly:
      return make_butterfly(p_request);
    case TopologyKind::CubeConnectedCycles:
      return make_ccc(p_request);
    case TopologyKind::ShuffleExchange:
      return make_shuffle_exchange(p_request);
    case TopologyKind::MeshOfTrees:
      return make_mesh_of_trees(p_request);
  }
  BSPLOGP_ASSERT(false && "unknown topology kind");
  return make_ring(p_request);
}

}  // namespace bsplogp::net

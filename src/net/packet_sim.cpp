#include "src/net/packet_sim.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "src/core/contracts.h"

namespace bsplogp::net {

namespace {

struct Packet {
  ProcId final_dst = 0;     // processor index
  ProcId via = -1;          // Valiant intermediate (-1: none/already passed)
  std::uint64_t salt = 0;   // tie-break diversifier
  std::int64_t hops = 0;
};

/// Current routing target (processor index) of a packet.
ProcId target_of(const Packet& pk) {
  return pk.via >= 0 ? pk.via : pk.final_dst;
}

}  // namespace

PacketSim::PacketSim(Topology topology) : topo_(std::move(topology)) {
  BSPLOGP_EXPECTS(topo_.connected());
  dist_.reserve(static_cast<std::size_t>(topo_.nprocs()));
  for (const NodeId node : topo_.processors())
    dist_.push_back(topo_.distances_from(node));
}

NodeId PacketSim::next_hop(NodeId at, ProcId dst_proc,
                           std::uint64_t salt) const {
  const auto& dist = dist_[static_cast<std::size_t>(dst_proc)];
  const NodeId here = dist[static_cast<std::size_t>(at)];
  BSPLOGP_ASSERT(here > 0);
  // All shortest-path neighbors are admissible; pick one by a salted hash
  // so different packets spread across the equivalent links.
  const auto& nb = topo_.neighbors(at);
  std::int64_t candidates = 0;
  for (const NodeId u : nb)
    candidates += (dist[static_cast<std::size_t>(u)] == here - 1);
  BSPLOGP_ASSERT(candidates > 0);
  std::uint64_t mix = salt ^ (static_cast<std::uint64_t>(at) << 32) ^
                      static_cast<std::uint64_t>(dst_proc);
  const auto pick = static_cast<std::int64_t>(
      core::splitmix64(mix) % static_cast<std::uint64_t>(candidates));
  std::int64_t seen = 0;
  for (const NodeId u : nb) {
    if (dist[static_cast<std::size_t>(u)] == here - 1) {
      if (seen == pick) return u;
      ++seen;
    }
  }
  BSPLOGP_ASSERT(false);
  return nb.front();
}

PacketSim::Result PacketSim::route(const routing::HRelation& rel,
                                   Options opt) const {
  BSPLOGP_EXPECTS(rel.nprocs() == topo_.nprocs());
  core::Rng rng(opt.seed);
  Result result;
  result.packets = static_cast<std::int64_t>(rel.size());
  if (rel.size() == 0) return result;

  const auto n = static_cast<std::size_t>(topo_.size());
  // out[v][k]: FIFO queue of packets waiting to cross the k-th link of v.
  std::vector<std::vector<std::deque<Packet>>> out(n);
  for (std::size_t v = 0; v < n; ++v)
    out[v].resize(topo_.neighbors(static_cast<NodeId>(v)).size());

  std::int64_t in_flight = 0;

  // Enqueues pk at node v (delivering it if v is its final node).
  auto place = [&](NodeId v, Packet pk) {
    for (;;) {
      const ProcId tgt = target_of(pk);
      const NodeId tgt_node =
          topo_.processors()[static_cast<std::size_t>(tgt)];
      if (v == tgt_node) {
        if (pk.via >= 0) {
          pk.via = -1;  // phase 2 of Valiant: continue to the real target
          continue;
        }
        in_flight -= 1;  // delivered
        return;
      }
      const NodeId nxt = next_hop(v, tgt, pk.salt);
      const auto& nb = topo_.neighbors(v);
      const auto k = static_cast<std::size_t>(
          std::find(nb.begin(), nb.end(), nxt) - nb.begin());
      out[static_cast<std::size_t>(v)][k].push_back(pk);
      result.max_queue = std::max(
          result.max_queue,
          static_cast<std::int64_t>(out[static_cast<std::size_t>(v)][k]
                                        .size()));
      return;
    }
  };

  for (const Message& m : rel.messages()) {
    Packet pk;
    pk.final_dst = m.dst;
    pk.salt = rng();
    if (opt.valiant) {
      pk.via = static_cast<ProcId>(
          rng.below(static_cast<std::uint64_t>(topo_.nprocs())));
      if (pk.via == m.dst) pk.via = -1;
    }
    in_flight += 1;
    place(topo_.processors()[static_cast<std::size_t>(m.src)], pk);
  }

  // Synchronous steps: move one packet per link (multi-port) or one per
  // node (single-port). Transfers within a step are staged so a packet
  // moves at most one hop per step.
  std::vector<std::pair<NodeId, Packet>> moved;
  std::vector<std::size_t> rotate(n, 0);  // single-port fairness
  while (in_flight > 0) {
    if (result.steps >= opt.max_steps) {
      result.timed_out = true;
      break;
    }
    result.steps += 1;
    moved.clear();
    for (std::size_t v = 0; v < n; ++v) {
      auto& queues = out[v];
      if (queues.empty()) continue;
      if (topo_.single_port()) {
        // Send the head of one nonempty queue, round robin over links.
        for (std::size_t probe = 0; probe < queues.size(); ++probe) {
          const std::size_t k = (rotate[v] + probe) % queues.size();
          if (!queues[k].empty()) {
            moved.emplace_back(
                topo_.neighbors(static_cast<NodeId>(v))[k],
                queues[k].front());
            queues[k].pop_front();
            rotate[v] = (k + 1) % queues.size();
            break;
          }
        }
      } else {
        for (std::size_t k = 0; k < queues.size(); ++k) {
          if (!queues[k].empty()) {
            moved.emplace_back(
                topo_.neighbors(static_cast<NodeId>(v))[k],
                queues[k].front());
            queues[k].pop_front();
          }
        }
      }
    }
    if (moved.empty()) break;  // nothing can move: impossible if in_flight>0
    for (auto& [node, pk] : moved) {
      pk.hops += 1;
      result.total_hops += 1;
      place(node, pk);
    }
  }
  BSPLOGP_ASSERT(result.timed_out || in_flight == 0);
  return result;
}

ParamFit fit_route_params(const PacketSim& sim, std::span<const Time> hs,
                          int trials, std::uint64_t seed,
                          PacketSim::Options opt) {
  BSPLOGP_EXPECTS(hs.size() >= 2);
  BSPLOGP_EXPECTS(trials >= 1);
  core::Rng rng(seed);
  ParamFit out;
  std::vector<double> xs, ys;
  for (const Time h : hs) {
    double total = 0;
    for (int t = 0; t < trials; ++t) {
      const auto rel =
          routing::random_regular(sim.topology().nprocs(), h, rng);
      PacketSim::Options o = opt;
      o.seed = rng();
      const auto res = sim.route(rel, o);
      BSPLOGP_EXPECTS(!res.timed_out);
      total += static_cast<double>(res.steps);
    }
    const double mean = total / trials;
    out.samples.emplace_back(h, mean);
    xs.push_back(static_cast<double>(h));
    ys.push_back(mean);
  }
  out.fit = core::fit_linear(xs, ys);
  return out;
}

}  // namespace bsplogp::net

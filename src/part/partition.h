// Multi-dimensional data decompositions over N-D index spaces.
//
// Application workloads (stencil meshes, sorted key ranges, BSF element
// pools) all answer the same three questions: which processor owns global
// index i, what is i's local index there, and how many indices does each
// processor hold? This library answers them for the three classic
// distributions — block, cyclic, and block-cyclic — applied independently
// per axis over a processor grid, in the style of Bulk's
// partitionings/partitioning.hpp. Block and cyclic are the b = ceil(n/g)
// and b = 1 special cases of block-cyclic, so one closed-form index
// calculation serves all three; no per-processor tables are built, and
// every query is O(dims).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.h"

namespace bsplogp::part {

/// A coordinate along one axis of a global index space, or a whole
/// multi-dimensional index when used as part::Point.
using Index = std::int64_t;
using Point = std::vector<Index>;

/// A d-dimensional processor grid: ranks 0..size()-1 laid out row-major
/// over dims(), so the last axis varies fastest (matching C array order
/// and the paper's 0..p-1 processor numbering).
class Grid {
 public:
  explicit Grid(std::vector<Index> dims);

  /// Rectangular grid over exactly `p` processors with `rows` rows; `rows`
  /// must divide p. rows == 0 picks the most nearly square factorization
  /// (largest divisor of p that is <= sqrt(p)).
  static Grid rectangle(ProcId p, Index rows = 0);

  [[nodiscard]] Index size() const { return size_; }
  [[nodiscard]] int ndims() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const std::vector<Index>& dims() const { return dims_; }

  /// Row-major rank of grid coordinates `c` (one per axis, each in range).
  [[nodiscard]] ProcId rank(const Point& c) const;

  /// Inverse of rank().
  [[nodiscard]] Point coords(ProcId r) const;

 private:
  std::vector<Index> dims_;
  Index size_ = 1;
};

/// Which distribution a Partitioning applies along every axis.
enum class Scheme {
  Block,        // contiguous runs of ceil(n/g) indices per processor
  Cyclic,       // index i on processor i % g (block size 1)
  BlockCyclic,  // rounds of g blocks of a caller-chosen size b
};

[[nodiscard]] const char* scheme_name(Scheme s);

/// One axis of a distribution: n global indices dealt to g grid positions
/// in blocks of b. All of Block / Cyclic / BlockCyclic reduce to this with
/// the right b, so the closed forms below are the whole implementation.
struct AxisPart {
  Index n = 0;  // global extent
  Index g = 1;  // grid positions along this axis
  Index b = 1;  // block size

  /// Grid position owning global index i.
  [[nodiscard]] Index owner(Index i) const { return (i / b) % g; }

  /// Local index of global index i on its owner.
  [[nodiscard]] Index to_local(Index i) const {
    return (i / (b * g)) * b + i % b;
  }

  /// Global index of local index l on grid position part.
  [[nodiscard]] Index to_global(Index part, Index l) const {
    return (l / b) * b * g + part * b + l % b;
  }

  /// Number of global indices owned by grid position part.
  [[nodiscard]] Index extent(Index part) const {
    const Index full_cycles = n / (b * g);
    const Index rem = n % (b * g) - part * b;
    const Index partial = rem < 0 ? 0 : (rem < b ? rem : b);
    return full_cycles * b + partial;
  }
};

/// A Scheme applied independently along every axis of a global shape over
/// a processor grid of the same dimensionality. Immutable once built;
/// every query is a pure closed-form index calculation.
class Partitioning {
 public:
  /// `block` is the per-axis block size for Scheme::BlockCyclic and is
  /// ignored (derived) for Block and Cyclic. global_shape and grid must
  /// have the same number of axes, every global extent must be >= 1, and
  /// BlockCyclic requires block >= 1.
  Partitioning(Scheme scheme, Point global_shape, Grid grid,
               Index block = 1);

  [[nodiscard]] Scheme scheme() const { return scheme_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const Point& global_shape() const { return shape_; }
  [[nodiscard]] const AxisPart& axis(int d) const {
    return axes_[static_cast<std::size_t>(d)];
  }

  /// Total number of global indices.
  [[nodiscard]] Index global_count() const;

  /// Rank of the processor owning global point `g`.
  [[nodiscard]] ProcId owner(const Point& g) const;

  /// Local coordinates of global point `g` on its owner.
  [[nodiscard]] Point to_local(const Point& g) const;

  /// Global coordinates of local point `l` on processor `r`.
  [[nodiscard]] Point to_global(ProcId r, const Point& l) const;

  /// Per-axis extents of processor r's local block.
  [[nodiscard]] Point local_shape(ProcId r) const;

  /// Number of global indices owned by processor r (product of
  /// local_shape(r); zero when any axis extent is zero).
  [[nodiscard]] Index local_count(ProcId r) const;

 private:
  Scheme scheme_;
  Point shape_;
  Grid grid_;
  std::vector<AxisPart> axes_;
};

}  // namespace bsplogp::part

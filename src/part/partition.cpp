#include "src/part/partition.h"

#include <utility>

#include "src/core/contracts.h"

namespace bsplogp::part {

Grid::Grid(std::vector<Index> dims) : dims_(std::move(dims)) {
  BSPLOGP_EXPECTS(!dims_.empty());
  for (const Index d : dims_) {
    BSPLOGP_EXPECTS(d >= 1);
    size_ *= d;
  }
}

Grid Grid::rectangle(ProcId p, Index rows) {
  BSPLOGP_EXPECTS(p >= 1);
  if (rows == 0) {
    for (Index r = 1; r * r <= p; ++r) {
      if (p % r == 0) rows = r;
    }
  }
  BSPLOGP_EXPECTS(rows >= 1 && p % rows == 0);
  return Grid({rows, p / rows});
}

ProcId Grid::rank(const Point& c) const {
  BSPLOGP_EXPECTS(c.size() == dims_.size());
  Index r = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    BSPLOGP_EXPECTS(c[d] >= 0 && c[d] < dims_[d]);
    r = r * dims_[d] + c[d];
  }
  return static_cast<ProcId>(r);
}

Point Grid::coords(ProcId r) const {
  BSPLOGP_EXPECTS(r >= 0 && r < size_);
  Point c(dims_.size());
  Index rest = r;
  for (std::size_t d = dims_.size(); d-- > 0;) {
    c[d] = rest % dims_[d];
    rest /= dims_[d];
  }
  return c;
}

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::Block:
      return "block";
    case Scheme::Cyclic:
      return "cyclic";
    case Scheme::BlockCyclic:
      return "block-cyclic";
  }
  return "?";
}

Partitioning::Partitioning(Scheme scheme, Point global_shape, Grid grid,
                           Index block)
    : scheme_(scheme), shape_(std::move(global_shape)), grid_(std::move(grid)) {
  BSPLOGP_EXPECTS(static_cast<int>(shape_.size()) == grid_.ndims());
  BSPLOGP_EXPECTS(block >= 1);
  axes_.reserve(shape_.size());
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    const Index n = shape_[d];
    const Index g = grid_.dims()[d];
    BSPLOGP_EXPECTS(n >= 1);
    Index b = block;
    if (scheme == Scheme::Block) b = ceil_div(n, g);
    if (scheme == Scheme::Cyclic) b = 1;
    axes_.push_back(AxisPart{n, g, b});
  }
}

Index Partitioning::global_count() const {
  Index total = 1;
  for (const Index n : shape_) total *= n;
  return total;
}

ProcId Partitioning::owner(const Point& g) const {
  BSPLOGP_EXPECTS(g.size() == shape_.size());
  Point c(g.size());
  for (std::size_t d = 0; d < g.size(); ++d) {
    BSPLOGP_EXPECTS(g[d] >= 0 && g[d] < shape_[d]);
    c[d] = axes_[d].owner(g[d]);
  }
  return grid_.rank(c);
}

Point Partitioning::to_local(const Point& g) const {
  BSPLOGP_EXPECTS(g.size() == shape_.size());
  Point l(g.size());
  for (std::size_t d = 0; d < g.size(); ++d) {
    BSPLOGP_EXPECTS(g[d] >= 0 && g[d] < shape_[d]);
    l[d] = axes_[d].to_local(g[d]);
  }
  return l;
}

Point Partitioning::to_global(ProcId r, const Point& l) const {
  BSPLOGP_EXPECTS(l.size() == shape_.size());
  const Point c = grid_.coords(r);
  Point g(l.size());
  for (std::size_t d = 0; d < l.size(); ++d) {
    BSPLOGP_EXPECTS(l[d] >= 0 && l[d] < axes_[d].extent(c[d]));
    g[d] = axes_[d].to_global(c[d], l[d]);
  }
  return g;
}

Point Partitioning::local_shape(ProcId r) const {
  const Point c = grid_.coords(r);
  Point s(shape_.size());
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    s[d] = axes_[d].extent(c[d]);
  }
  return s;
}

Index Partitioning::local_count(ProcId r) const {
  Index total = 1;
  for (const Index e : local_shape(r)) total *= e;
  return total;
}

}  // namespace bsplogp::part

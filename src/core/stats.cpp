#include "src/core/stats.h"

#include <algorithm>
#include <cmath>

#include "src/core/contracts.h"

namespace bsplogp::core {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  BSPLOGP_EXPECTS(x.size() == y.size());
  BSPLOGP_EXPECTS(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  BSPLOGP_EXPECTS(sxx > 0.0);
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double mean(std::span<const double> v) {
  BSPLOGP_EXPECTS(!v.empty());
  double s = 0;
  for (double d : v) s += d;
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) {
  BSPLOGP_EXPECTS(v.size() >= 2);
  const double m = mean(v);
  double s = 0;
  for (double d : v) s += (d - m) * (d - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double quantile(std::span<const double> v, double q) {
  BSPLOGP_EXPECTS(!v.empty());
  BSPLOGP_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace bsplogp::core

#include "src/core/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/core/contracts.h"

namespace bsplogp::core {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BSPLOGP_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  BSPLOGP_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt(std::int64_t v) { return std::to_string(v); }

}  // namespace bsplogp::core

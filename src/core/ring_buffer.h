// Flat circular FIFO for the engines' in-flight value queues.
//
// The LogP machine keeps two queues per processor/destination — the input
// buffer of delivered-but-unacquired messages and the pending-submission
// queue of the Stalling Rule — whose elements are small trivially-copyable
// records (Message, PendingSubmission). std::deque pays a node allocation
// for its very first element and frees chunks back on pop, so a machine
// running millions of events churns the allocator with fixed-size blocks.
// RingBuffer replaces that with one power-of-two vector per queue: pushes
// and pops move head/size indices, storage is recycled in place (the
// free-list degenerates to "the slots behind head"), and a Machine reused
// across run() calls performs zero steady-state queue allocations.
//
// Deliberately minimal: elements are overwritten, not destroyed, on pop —
// use it only for trivially-destructible value types.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "src/core/contracts.h"

namespace bsplogp::core {

template <typename T>
class RingBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "RingBuffer elements are overwritten, never destroyed");

 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Drops every element; keeps the storage for reuse.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Ensures capacity for at least `n` elements without reallocation.
  void reserve(std::size_t n) {
    if (n > slots_.size()) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == slots_.size()) grow(size_ + 1);
    slots_[wrap(head_ + size_)] = v;
    size_ += 1;
  }

  [[nodiscard]] T& front() {
    BSPLOGP_ASSERT(size_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] T& back() {
    BSPLOGP_ASSERT(size_ > 0);
    return slots_[wrap(head_ + size_ - 1)];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    BSPLOGP_ASSERT(i < size_);
    return slots_[wrap(head_ + i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    BSPLOGP_ASSERT(i < size_);
    return slots_[wrap(head_ + i)];
  }

  void pop_front() {
    BSPLOGP_ASSERT(size_ > 0);
    head_ = wrap(head_ + 1);
    size_ -= 1;
  }
  void pop_back() {
    BSPLOGP_ASSERT(size_ > 0);
    size_ -= 1;
  }

  /// Removes the i-th element (0 = front), preserving the relative order
  /// of the rest; shifts whichever side is shorter.
  void erase(std::size_t i) {
    BSPLOGP_ASSERT(i < size_);
    if (i < size_ / 2) {
      for (std::size_t j = i; j > 0; --j)
        (*this)[j] = (*this)[j - 1];
      head_ = wrap(head_ + 1);
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j)
        (*this)[j] = (*this)[j + 1];
    }
    size_ -= 1;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    return i & (slots_.size() - 1);
  }

  void grow(std::size_t need) {
    std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
    while (cap < need) cap *= 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = (*this)[i];
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> slots_;  // power-of-two size, or empty
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace bsplogp::core

// Global-allocation counting for perf tests and the bench harness.
//
// The engine's perf contract is stronger than "fast": the steady-state hot
// loop performs ZERO heap allocations per event (frame arena, ring
// buffers, SoA calendar queue — DESIGN.md §15). Wall-clock benches can't
// pin that — an allocation regression hides inside runner jitter — so the
// contract is enforced by counting.
//
// Counting is opt-in per binary: linking the `bsplogp_alloc_hooks` object
// library (src/core/alloc_hooks.cpp) replaces the global operator
// new/delete with counting forwarders to malloc/free. Binaries that don't
// link it run the stock allocator and every AllocCounter query returns
// zeros with installed() == false — callers (bench_engine_throughput's
// allocs_per_event metrics, tests/logp/machine_alloc_test.cpp) must gate
// on installed().
//
// Counters are process-wide relaxed atomics: cheap enough to leave on in
// the linked binaries, precise enough for delta measurements around a
// single-threaded region. Use Snapshot/since() for deltas.
#pragma once

#include <atomic>
#include <cstdint>

namespace bsplogp::core {

class AllocCounter {
 public:
  struct Snapshot {
    std::int64_t allocs = 0;
    std::int64_t frees = 0;
    std::int64_t bytes = 0;
  };

  /// True iff the counting operator new/delete replacements are linked
  /// into this binary (bsplogp_alloc_hooks).
  [[nodiscard]] static bool installed() noexcept;

  /// Totals since process start (zeros when !installed()).
  [[nodiscard]] static Snapshot now() noexcept;

  /// Delta of the current totals against an earlier snapshot.
  [[nodiscard]] static Snapshot since(const Snapshot& start) noexcept {
    const Snapshot cur = now();
    return Snapshot{cur.allocs - start.allocs, cur.frees - start.frees,
                    cur.bytes - start.bytes};
  }
};

namespace detail {
// Backing counters, bumped by the alloc_hooks.cpp operators. Defined in
// alloc_counter.cpp so they exist (as zeros) even without the hooks.
struct AllocCounters {
  std::atomic<std::int64_t> allocs;
  std::atomic<std::int64_t> frees;
  std::atomic<std::int64_t> bytes;
  std::atomic<bool> installed;
};
AllocCounters* alloc_counters() noexcept;
}  // namespace detail

}  // namespace bsplogp::core

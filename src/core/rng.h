// Deterministic, splittable pseudo-randomness for simulations.
//
// Every stochastic piece of the library (randomized routing batches,
// delivery-time policies, workload generators) draws from an Rng seeded from
// a single experiment seed, so each experiment is reproducible from the seed
// its harness prints. SplitMix64 is used for seeding/splitting and
// xoshiro256** as the bulk generator — both tiny, well-studied, and free of
// the std::mt19937 cross-platform seeding pitfalls.
#pragma once

#include <cstdint>

#include "src/core/contracts.h"

namespace bsplogp::core {

/// SplitMix64 step: maps any 64-bit state to a well-mixed output. Used to
/// derive independent child seeds and to initialize xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with helpers for the distributions the library
/// needs. Satisfies UniformRandomBitGenerator, so it also works with <random>
/// and <algorithm> (e.g. std::shuffle).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method: unbiased without the modulo bias of `() % bound`.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    BSPLOGP_EXPECTS(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    BSPLOGP_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability prob.
  [[nodiscard]] bool flip(double prob) { return uniform01() < prob; }

  /// Derives an independent child generator; the parent advances once, so
  /// successive splits are independent of each other too.
  [[nodiscard]] Rng split() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// The generator for grid point `index` of the SplitMix64 stream seeded by
/// `base_seed`: element #index of that stream becomes the xoshiro seed.
/// Parallel sweeps (bench::SweepRunner, the pooled equivalence tests) give
/// every grid point its own stream this way, so each point's randomness is
/// a pure function of (base_seed, index) — independent of thread count,
/// execution order, and every other point.
[[nodiscard]] inline Rng rng_for_index(std::uint64_t base_seed,
                                       std::uint64_t index) {
  std::uint64_t state = base_seed + index * 0x9e3779b97f4a7c15ULL;
  return Rng(splitmix64(state));
}

}  // namespace bsplogp::core

// Shared vocabulary types for the BSP and LogP machines.
//
// Both models (paper, Section 2) are defined over p serial processors with
// ids 0..p-1 exchanging point-to-point messages; model time advances in
// integer steps whose unit is the duration of one local operation. We keep
// those two quantities as distinct aliases so signatures say which one they
// mean, and use signed 64-bit throughout: superstep costs are sums of
// products (w + g*h + l) that can overflow 32 bits in large sweeps.
#pragma once

#include <cstdint>
#include <vector>

namespace bsplogp {

/// Processor identifier, 0-based, < p.
using ProcId = std::int32_t;

/// Model time in unit-operation steps (BSP: accumulated superstep cost;
/// LogP: the global step counter).
using Time = std::int64_t;

/// Message payload word. The models charge per message, independent of
/// content, so one machine word is enough for every algorithm in the paper;
/// algorithms needing records pack them or send several messages.
using Word = std::int64_t;

/// A point-to-point message, the unit of communication in both models.
struct Message {
  ProcId src = -1;
  ProcId dst = -1;
  Word payload = 0;
  /// Algorithm-level tag (e.g. CB round, sort lane). Not charged by either
  /// cost model; real implementations carry it in the message header.
  std::int32_t tag = 0;
  /// Scratch header word for protocols that forward messages through
  /// intermediaries (e.g. Theorem 2's sort-and-route carries the final BSP
  /// destination here). Like tag, it models header bits, not payload.
  Word aux = 0;
  /// Protocol channel for demultiplexing when independent protocol layers
  /// (collectives, routing cycles, application data) share a processor's
  /// input buffer — see algo::Mailbox. Header bits, not charged.
  std::int32_t channel = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// ceil(a/b) for non-negative a, positive b.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a,
                                              std::int64_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int floor_log2(std::int64_t x) {
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr int ceil_log2(std::int64_t x) {
  int r = floor_log2(x);
  return (std::int64_t{1} << r) == x ? r : r + 1;
}

/// True iff x is a power of two (x >= 1).
[[nodiscard]] constexpr bool is_pow2(std::int64_t x) {
  return x >= 1 && (x & (x - 1)) == 0;
}

}  // namespace bsplogp

// Counting replacements for the global operator new/delete family.
//
// Compiled into the `bsplogp_alloc_hooks` OBJECT library — an object
// library, not a static archive, because the linker only prefers these
// replacements over libstdc++'s operators when the object file is force-
// included in the link. Binaries that link it get every global allocation
// counted via core::AllocCounter; binaries that don't are untouched.
//
// The replacements forward to std::malloc / std::aligned_alloc / std::free
// and bump process-wide relaxed atomics. No allocation happens inside the
// hooks themselves (the counter storage is a function-local struct of
// atomics), so they are safe from static initializers onward.
#include <cstdlib>
#include <new>

#include "src/core/alloc_counter.h"

namespace {

using bsplogp::core::detail::alloc_counters;

// Runs during static initialization of any binary linking this object,
// flipping AllocCounter::installed() to true.
const bool g_mark_installed = [] {
  alloc_counters()->installed.store(true, std::memory_order_relaxed);
  return true;
}();

void* counted_alloc(std::size_t size) noexcept {
  auto* c = alloc_counters();
  c->allocs.fetch_add(1, std::memory_order_relaxed);
  c->bytes.fetch_add(static_cast<std::int64_t>(size),
                     std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  auto* c = alloc_counters();
  c->allocs.fetch_add(1, std::memory_order_relaxed);
  c->bytes.fetch_add(static_cast<std::int64_t>(size),
                     std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  alloc_counters()->frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

// ---- throwing allocation ---------------------------------------------------

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

// ---- nothrow allocation ----------------------------------------------------

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

// ---- deallocation ----------------------------------------------------------

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

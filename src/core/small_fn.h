// A small-buffer-optimized owning callable: std::function's shape without
// its guaranteed heap round-trip for engine-sized captures.
//
// logp::ProgramFn and the workload factories bind per-processor lambdas
// whose captures are a few pointers (result arrays, parameters, a proc
// count). libstdc++'s std::function only inlines captures up to 16 bytes,
// so binding p programs costs p heap allocations — measurable at
// p = 65536 and counted by the AllocCounter harness. SmallFn inlines
// captures up to kInlineBytes (48 by default: two cache lines total with
// the two dispatch pointers), falling back to the heap only for larger
// state.
//
// Dispatch is two raw function pointers (invoke + manage) rather than a
// virtual table: calling through a SmallFn is one indirect call with no
// vtable load. Like std::function, operator() is const-qualified but
// invokes the stored callable as non-const (mutable lambdas work), and the
// stored callable must be copy-constructible.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "src/core/contracts.h"

namespace bsplogp::core {

template <typename Signature, std::size_t InlineBytes = 48>
class SmallFn;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  SmallFn(const SmallFn& other) { copy_from(other); }
  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(const SmallFn& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }
  friend bool operator==(const SmallFn& f, std::nullptr_t) noexcept {
    return f.invoke_ == nullptr;
  }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) noexcept {
    return f.invoke_ != nullptr;
  }

  R operator()(Args... args) const {
    BSPLOGP_EXPECTS(invoke_ != nullptr);
    return invoke_(this, std::forward<Args>(args)...);
  }

 private:
  enum class Op { Destroy, Copy, Move };

  using Invoke = R (*)(const SmallFn*, Args&&...);
  // Destroy: (self, nullptr). Copy: (destination, source).
  // Move: (destination, source) — source is left empty (its invoke_ and
  // manage_ are cleared by the op).
  using Manage = void (*)(Op, SmallFn*, SmallFn*);

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  D* target() const noexcept {
    if constexpr (fits_inline<D>()) {
      return std::launder(
          reinterpret_cast<D*>(const_cast<unsigned char*>(buffer_)));
    } else {
      D* p;
      std::memcpy(&p, buffer_, sizeof(p));
      return p;
    }
  }

  template <typename D, typename F>
  void construct(F&& f) {
    static_assert(std::is_copy_constructible_v<D>,
                  "SmallFn requires a copy-constructible callable");
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
    } else {
      D* p = new D(std::forward<F>(f));
      std::memcpy(buffer_, &p, sizeof(p));
    }
    invoke_ = [](const SmallFn* self, Args&&... args) -> R {
      return (*self->target<D>())(std::forward<Args>(args)...);
    };
    manage_ = [](Op op, SmallFn* dst, SmallFn* src) {
      switch (op) {
        case Op::Destroy:
          if constexpr (fits_inline<D>()) {
            dst->target<D>()->~D();
          } else {
            delete dst->target<D>();
          }
          break;
        case Op::Copy:
          dst->construct<D>(*src->target<D>());
          break;
        case Op::Move:
          if constexpr (fits_inline<D>()) {
            dst->construct<D>(std::move(*src->target<D>()));
            src->target<D>()->~D();
          } else {
            // Steal the heap pointer; no per-object work.
            std::memcpy(dst->buffer_, src->buffer_, sizeof(D*));
            dst->invoke_ = src->invoke_;
            dst->manage_ = src->manage_;
          }
          src->invoke_ = nullptr;
          src->manage_ = nullptr;
          break;
      }
    };
  }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(Op::Destroy, this, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  void copy_from(const SmallFn& other) {
    if (other.invoke_ != nullptr)
      other.manage_(Op::Copy, this, const_cast<SmallFn*>(&other));
  }

  void move_from(SmallFn& other) noexcept {
    if (other.invoke_ != nullptr) other.manage_(Op::Move, this, &other);
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes] = {};
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace bsplogp::core

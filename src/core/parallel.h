// Deterministic fork-join parallelism for grid sweeps.
//
// Every experiment in the paper is a sweep — a grid over (p, L, G, h, g/G,
// l/L) — whose points are independent machine instantiations. ThreadPool
// runs such a batch data-parallel: items are claimed dynamically (so uneven
// point costs balance), but callers that want deterministic output commit
// results *by index* into pre-sized slots, never in completion order. The
// bench harness's SweepRunner (bench/harness.h) and the parameterized
// equivalence tests are the two consumers; both pair each index with its
// own core::rng_for_index stream so results are independent of both thread
// count and execution order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bsplogp::core {

/// Number of worker threads that saturates this host (>= 1).
[[nodiscard]] int hardware_jobs();

/// A fixed-size worker pool for blocking, batch-at-a-time parallel loops.
/// One orchestrating thread submits batches via for_indexed(); the pool is
/// not a general task queue. Thread-compatible, not thread-safe: concurrent
/// for_indexed() calls from different threads are not supported.
class ThreadPool {
 public:
  /// Spawns `workers` background threads (0 is valid: for_indexed then
  /// runs entirely on the calling thread).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(i) exactly once for every i in [0, n), on the pool's workers
  /// plus the calling thread, and blocks until all items completed. Items
  /// are claimed dynamically; fn must therefore not depend on execution
  /// order. If any item throws, the first exception (in completion order)
  /// is rethrown on the caller after the batch drains; the remaining items
  /// still run.
  void for_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;

  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::shared_ptr<Batch> batch_;
  std::vector<std::thread> threads_;
};

/// One-shot helper: for_indexed on a transient pool of `jobs` total
/// threads (jobs - 1 workers plus the caller). jobs <= 1 runs inline.
void parallel_for_indexed(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& fn);

}  // namespace bsplogp::core

// Deterministic fork-join parallelism for grid sweeps.
//
// Every experiment in the paper is a sweep — a grid over (p, L, G, h, g/G,
// l/L) — whose points are independent machine instantiations. ThreadPool
// runs such a batch data-parallel: workers claim contiguous index *ranges*
// (so uneven point costs still balance, but the per-claim atomic traffic
// and std::function dispatch are paid once per chunk, not once per point),
// while callers that want deterministic output commit results *by index*
// into pre-sized slots, never in completion order. The bench harness's
// SweepRunner (bench/harness.h) and the parameterized equivalence tests
// are the two consumers; both pair each index with its own
// core::rng_for_index stream so results are independent of thread count,
// chunk size, and execution order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bsplogp::core {

/// Number of worker threads that saturates this host (>= 1).
[[nodiscard]] int hardware_jobs();

/// The chunk size a batch of `n` items will actually use on `threads`
/// total threads: `requested` if positive, else the BSPLOGP_SWEEP_CHUNK
/// environment override if set (pathological-size forcing for determinism
/// tests), else an automatic size targeting a few claims per thread.
/// Always in [1, n] for n >= 1.
[[nodiscard]] std::size_t sweep_chunk(std::size_t n, int threads,
                                      std::size_t requested);

/// A fixed-size worker pool for blocking, batch-at-a-time parallel loops.
/// One orchestrating thread submits batches via for_indexed()/for_ranges();
/// the pool is not a general task queue. Thread-compatible, not
/// thread-safe: concurrent batch calls from different threads are not
/// supported.
class ThreadPool {
 public:
  /// Spawns `workers` background threads (0 is valid: batches then run
  /// entirely on the calling thread).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(i) exactly once for every i in [0, n), on the pool's workers
  /// plus the calling thread, and blocks until all items completed. Items
  /// are claimed in chunks (see sweep_chunk; `chunk` forces a size) but fn
  /// must not depend on execution order. If any item throws, the first
  /// exception (in completion order) is rethrown on the caller after the
  /// batch drains; the remaining items — including the rest of the
  /// throwing item's chunk — still run, and the pool stays reusable.
  void for_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                   std::size_t chunk = 0);

  /// Range-at-a-time variant: fn(begin, end) covers [begin, end) and is
  /// invoked once per claimed chunk, so per-item dispatch can be a direct
  /// (inlinable) call inside the callback. A throwing callback abandons
  /// the *rest of its own range* (unlike for_indexed, which isolates
  /// items); other ranges still run and the first exception is rethrown
  /// after the batch drains.
  void for_ranges(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t chunk = 0);

  /// SPMD batch: runs fn(i) for every i in [0, n) with every item on a
  /// *distinct* thread, all items live concurrently. This is the primitive
  /// the native shared-memory backend (src/native) builds on: unlike
  /// for_indexed, items may synchronize with each other (barriers,
  /// condition variables), because no thread ever claims a second item
  /// while holding the first. Requires n <= workers() + 1 — there must be
  /// a thread for every item or the batch would deadlock on its own
  /// synchronization. Exceptions propagate like for_ranges (first one is
  /// rethrown after the batch drains); items blocked on a sibling that
  /// threw must unblock themselves (see native::Barrier poisoning).
  void for_spmd(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;

  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::shared_ptr<Batch> batch_;
  std::vector<std::thread> threads_;
};

/// One-shot helper: for_indexed on a transient pool of `jobs` total
/// threads (jobs - 1 workers plus the caller). jobs <= 1 runs inline (an
/// exception then propagates immediately, aborting the remaining items).
void parallel_for_indexed(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t chunk = 0);

/// One-shot helper for for_ranges. jobs <= 1 runs fn(0, n) inline.
void parallel_for_ranges(
    std::size_t n, int jobs,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk = 0);

}  // namespace bsplogp::core

// The model-independent core of a run's result record.
//
// Both abstract machines (bsp::Machine, logp::Machine) and both
// cross-simulations report the same three facts about an execution —
// when it finished, which processors finished, and how much was
// communicated — with model-specific extensions layered on top:
//
//   * bsp::RunStats  adds superstep counts and the per-superstep
//     (w_s, h_s) cost trace;
//   * logp::RunStats adds stalling, capacity and buffer statistics and
//     the engine's event counter.
//
// Keeping the shared shape here (rather than duplicating it per model)
// is what lets harnesses, sinks and cross-simulation reports treat "a
// run result" uniformly; extensions derive from RunStatsBase so the
// shared fields have one name everywhere.
#pragma once

#include <vector>

#include "src/core/types.h"

namespace bsplogp::core {

struct RunStatsBase {
  /// Completion time of the computation in model steps: for LogP the max
  /// over processors of the time its program finished; for BSP the sum of
  /// superstep costs (the time of the closing barrier).
  Time finish_time = 0;

  /// Per-processor finish times, indexed by ProcId: the model time at
  /// which each processor's program completed (for BSP, the cumulative
  /// cost at the end of the superstep in which it halted). 0 for
  /// processors that never finished; those are listed in blocked_procs.
  std::vector<Time> proc_finish;

  /// Ids of processors that had not finished when the run ended (empty
  /// for a run that completed normally).
  std::vector<ProcId> blocked_procs;

  /// Messages transferred end-to-end during the run (LogP: deliveries
  /// into destination buffers; BSP: pool-to-pool transfers).
  std::int64_t messages = 0;

  [[nodiscard]] bool all_finished() const { return blocked_procs.empty(); }

  /// Field-wise equality, so derived stats records can default their own
  /// (the LogP scheduler-equivalence guard compares entire RunStats).
  friend bool operator==(const RunStatsBase&, const RunStatsBase&) = default;
};

}  // namespace bsplogp::core

// Plain-text table printer for the benchmark harnesses. Every experiment in
// EXPERIMENTS.md is regenerated as an aligned table (the paper's Table 1 and
// the per-theorem sweeps), so the formatting lives in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bsplogp::core {

/// Collects rows of strings and prints them with columns padded to the
/// widest cell. Numeric formatting is left to the caller (helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double -> string (default 2 decimals).
[[nodiscard]] std::string fmt(double v, int precision = 2);
[[nodiscard]] std::string fmt(std::int64_t v);

}  // namespace bsplogp::core

// Minimal JSON parser for subsystems that must read back documents the
// repo itself emits (the sweep cache's on-disk entries). The repo has no
// JSON dependency; this is the production sibling of tests/support/json.h
// with one extra guarantee the cache needs: numbers keep their raw
// spelling (`raw`) so callers can reparse them as int64 or double without
// going through a lossy double (model times are int64 and can exceed
// 2^53 in principle).
//
// Scope: well-formed documents produced by this codebase. \uXXXX escapes
// decode to UTF-8 (the codec emits \u00XX for control bytes in strings,
// and round-tripping them must be bit-exact).
#pragma once

#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace bsplogp::core {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string raw;  // numbers only: the exact source spelling
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      pos_ += 1;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = JsonValue::Type::String;
      return string(out.str);
    }
    if (c == 't') {
      out.type = JsonValue::Type::Bool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = JsonValue::Type::Bool;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    return number(out);
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    pos_ += 1;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        pos_ += 1;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return false;
            unsigned v = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = s_[pos_ + i];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            pos_ += 4;
            if (v < 0x80) {
              out += static_cast<char>(v);
            } else if (v < 0x800) {
              out += static_cast<char>(0xC0 | (v >> 6));
              out += static_cast<char>(0x80 | (v & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (v >> 12));
              out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (v & 0x3F));
            }
            break;
          }
          default: return false;
        }
        pos_ += 1;
      } else {
        out += s_[pos_];
        pos_ += 1;
      }
    }
    if (pos_ >= s_.size()) return false;
    pos_ += 1;  // closing quote
    return true;
  }
  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) pos_ += 1;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      pos_ += 1;
    if (pos_ == start) return false;
    out.type = JsonValue::Type::Number;
    out.raw = s_.substr(start, pos_ - start);
    // strtod, not std::stod: stod throws on subnormal underflow (ERANGE)
    // where strtod just returns the denormal/0 — both legitimate payloads.
    out.number = std::strtod(out.raw.c_str(), nullptr);
    return true;
  }
  bool array(JsonValue& out) {
    out.type = JsonValue::Type::Array;
    pos_ += 1;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      pos_ += 1;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        pos_ += 1;
        continue;
      }
      if (s_[pos_] == ']') {
        pos_ += 1;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue& out) {
    out.type = JsonValue::Type::Object;
    pos_ += 1;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      pos_ += 1;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      pos_ += 1;
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        pos_ += 1;
        continue;
      }
      if (s_[pos_] == '}') {
        pos_ += 1;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace bsplogp::core

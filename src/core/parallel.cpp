#include "src/core/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "src/core/contracts.h"

namespace bsplogp::core {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

/// BSPLOGP_SWEEP_CHUNK, parsed once: the jobs-determinism ctest scripts
/// force pathological chunk sizes (1, odd, > n) through the environment to
/// prove chunking never leaks into results. 0 = not set / invalid.
std::size_t env_chunk_override() {
  static const std::size_t value = [] {
    const char* s = std::getenv("BSPLOGP_SWEEP_CHUNK");
    if (s == nullptr || *s == '\0') return std::size_t{0};
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    return (end != nullptr && *end == '\0') ? static_cast<std::size_t>(v)
                                            : std::size_t{0};
  }();
  return value;
}

}  // namespace

std::size_t sweep_chunk(std::size_t n, int threads, std::size_t requested) {
  if (n <= 1) return 1;
  std::size_t c = requested;
  if (c == 0) c = env_chunk_override();
  if (c == 0) {
    // ~4 claims per thread: enough slack for uneven point costs to
    // balance, few enough claims that dispatch stops mattering on tiny
    // grids (the sweep_speedup 0.83 regression was per-point claims).
    const auto t = static_cast<std::size_t>(std::max(threads, 1));
    c = (n + 4 * t - 1) / (4 * t);
  }
  return std::clamp<std::size_t>(c, 1, n);
}

/// One batch submission. Heap-allocated and shared with the workers so a
/// worker that wakes late (after the batch already drained) still holds a
/// valid object: it claims an out-of-range chunk and goes back to sleep
/// without ever touching the pool's next batch mid-setup.
struct ThreadPool::Batch {
  Batch(std::size_t n_items, std::size_t chunk_size,
        const std::function<void(std::size_t, std::size_t)>& f,
        bool one_claim_per_thread = false)
      : fn(f), n(n_items), chunk(chunk_size), one_shot(one_claim_per_thread) {}

  const std::function<void(std::size_t, std::size_t)>& fn;
  const std::size_t n;
  const std::size_t chunk;
  /// SPMD mode (for_spmd): a thread claims at most one chunk, so items can
  /// synchronize with each other without a claimer deadlocking on itself.
  const bool one_shot;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;

  /// Claims and runs chunks until the batch is exhausted. Safe to call
  /// from any number of threads. A throwing callback abandons only its
  /// own range; the chunk still counts as done so the batch drains.
  void run() {
    while (true) {
      const std::size_t b = next.fetch_add(chunk, std::memory_order_relaxed);
      if (b >= n) return;
      const std::size_t e = std::min(b + chunk, n);
      try {
        fn(b, e);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (error == nullptr) error = std::current_exception();
      }
      if (done.fetch_add(e - b, std::memory_order_acq_rel) + (e - b) == n) {
        { const std::lock_guard<std::mutex> lock(mu); }
        done_cv.notify_all();
      }
      if (one_shot) return;
    }
  }
};

ThreadPool::ThreadPool(int workers) {
  BSPLOGP_EXPECTS(workers >= 0);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::shared_ptr<Batch> batch = batch_;
    lock.unlock();
    batch->run();
    lock.lock();
  }
}

void ThreadPool::for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk) {
  if (n == 0) return;
  // The batch lives on the heap: stragglers from a previous generation may
  // still hold their (drained) batch while this one runs.
  const auto batch =
      std::make_shared<Batch>(n, sweep_chunk(n, workers() + 1, chunk), fn);
  if (!threads_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      batch_ = batch;
      ++generation_;
    }
    work_cv_.notify_all();
  }
  batch->run();  // the calling thread is always one of the workers
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done_cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
    if (batch->error != nullptr) std::rethrow_exception(batch->error);
  }
}

void ThreadPool::for_spmd(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One thread per item or the batch deadlocks on its own barriers.
  BSPLOGP_EXPECTS(n <= static_cast<std::size_t>(workers()) + 1);
  const std::function<void(std::size_t, std::size_t)> range_fn =
      [&fn](std::size_t b, std::size_t e) {
        BSPLOGP_ASSERT(e == b + 1);
        fn(b);
      };
  const auto batch = std::make_shared<Batch>(n, std::size_t{1}, range_fn,
                                             /*one_claim_per_thread=*/true);
  if (!threads_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      batch_ = batch;
      ++generation_;
    }
    work_cv_.notify_all();
  }
  batch->run();  // the calling thread runs one of the items
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done_cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
    if (batch->error != nullptr) std::rethrow_exception(batch->error);
  }
}

void ThreadPool::for_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t chunk) {
  for_ranges(
      n,
      [&fn](std::size_t b, std::size_t e) {
        // Per-item isolation: a throwing item must not abandon the rest
        // of its chunk (the documented for_indexed contract). The first
        // failure resurfaces at the end of the chunk and becomes the
        // batch's recorded error.
        std::exception_ptr first;
        for (std::size_t i = b; i < e; ++i) {
          try {
            fn(i);
          } catch (...) {
            if (first == nullptr) first = std::current_exception();
          }
        }
        if (first != nullptr) std::rethrow_exception(first);
      },
      chunk);
}

void parallel_for_indexed(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t chunk) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(jobs - 1);
  pool.for_indexed(n, fn, chunk);
}

void parallel_for_ranges(
    std::size_t n, int jobs,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk) {
  if (n == 0) return;
  if (jobs <= 1 || n <= 1) {
    fn(0, n);
    return;
  }
  ThreadPool pool(jobs - 1);
  pool.for_ranges(n, fn, chunk);
}

}  // namespace bsplogp::core

#include "src/core/parallel.h"

#include <atomic>
#include <exception>

#include "src/core/contracts.h"

namespace bsplogp::core {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// One for_indexed() call. Heap-allocated and shared with the workers so a
/// worker that wakes late (after the batch already drained) still holds a
/// valid object: it claims an out-of-range index and goes back to sleep
/// without ever touching the pool's next batch mid-setup.
struct ThreadPool::Batch {
  Batch(std::size_t n_items, const std::function<void(std::size_t)>& f)
      : fn(f), n(n_items) {}

  const std::function<void(std::size_t)>& fn;
  const std::size_t n;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;

  /// Claims and runs items until the batch is exhausted. Safe to call from
  /// any number of threads.
  void run() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (error == nullptr) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        { const std::lock_guard<std::mutex> lock(mu); }
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int workers) {
  BSPLOGP_EXPECTS(workers >= 0);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::shared_ptr<Batch> batch = batch_;
    lock.unlock();
    batch->run();
    lock.lock();
  }
}

void ThreadPool::for_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // The batch lives on the heap: stragglers from a previous generation may
  // still hold their (drained) batch while this one runs.
  const auto batch = std::make_shared<Batch>(n, fn);
  if (!threads_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      batch_ = batch;
      ++generation_;
    }
    work_cv_.notify_all();
  }
  batch->run();  // the calling thread is always one of the workers
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done_cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
    if (batch->error != nullptr) std::rethrow_exception(batch->error);
  }
}

void parallel_for_indexed(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(jobs - 1);
  pool.for_indexed(n, fn);
}

}  // namespace bsplogp::core

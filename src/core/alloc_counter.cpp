#include "src/core/alloc_counter.h"

namespace bsplogp::core {

namespace detail {

AllocCounters* alloc_counters() noexcept {
  // Function-local so the hooks (which run before main, possibly before
  // any namespace-scope dynamic initializer) always see a constructed
  // object. Atomics zero-initialize; constinit-equivalent.
  static AllocCounters counters{};
  return &counters;
}

}  // namespace detail

bool AllocCounter::installed() noexcept {
  return detail::alloc_counters()->installed.load(std::memory_order_relaxed);
}

AllocCounter::Snapshot AllocCounter::now() noexcept {
  detail::AllocCounters* c = detail::alloc_counters();
  return Snapshot{c->allocs.load(std::memory_order_relaxed),
                  c->frees.load(std::memory_order_relaxed),
                  c->bytes.load(std::memory_order_relaxed)};
}

}  // namespace bsplogp::core

// Size-bucketed free-list arena for coroutine frames.
//
// Every logp::Task<T> coroutine frame is allocated through here (the
// promise's class-level operator new/delete in src/logp/task.h). The arena
// exists because frames are the last per-event heap traffic in the engine's
// steady state: re-running a program on a reused logp::Machine, or awaiting
// a collective sub-task inside one, creates and destroys frames of the same
// handful of sizes over and over. Routing them through a per-machine
// free-list turns that churn into a pointer pop/push.
//
// Mechanics:
//   * An allocation is headed by 16 bytes recording the owning arena and
//     the block's rounded size, so deallocation needs no thread-local or
//     context — it reads the header and returns the block to its owner
//     (or to the global heap when the frame was created with no arena
//     active). The header keeps the payload max_align-aligned.
//   * Sizes round up to 64-byte classes; freed blocks park on a per-class
//     LIFO so the next same-class frame reuses the hottest block.
//   * FrameArena::Scope installs an arena as the thread's current one for
//     a dynamic extent; Task's operator new consults exactly that.
//     logp::Machine::run_impl scopes its member arena around the event
//     loop, and native::run_logp scopes one per processor thread.
//
// Lifetime rule (DESIGN.md §15): a frame allocated under an arena must be
// destroyed before that arena — for engine frames, before the Machine that
// ran the program is destroyed — and on the thread that runs that machine.
// The engine guarantees this for everything it owns (root tasks live in
// EngineProcs; sub-task frames die inside their parent's frame); a program
// that smuggles a Task out through a capture takes the rule on itself.
// The arena is deliberately NOT thread-safe: one machine, one thread.
//
// All backing memory comes from ::operator new/delete (never raw malloc),
// so the core::AllocCounter harness observes arena growth like any other
// allocation — which is what lets tests pin "zero allocations per run
// after warmup" without a blind spot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "src/core/contracts.h"

namespace bsplogp::core {

class FrameArena {
 public:
  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  ~FrameArena() {
    // Only parked (freed) blocks are owned here; live frames must already
    // be gone (see the lifetime rule above).
    for (std::vector<void*>& bucket : free_)
      for (void* raw : bucket) ::operator delete(raw);
  }

  /// Allocates a frame of at least `size` bytes, reusing a parked block of
  /// the same size class when one exists.
  void* allocate(std::size_t size) {
    const std::size_t total = rounded(size);
    const std::size_t cls = total / kGranularity;
    if (cls < free_.size() && !free_[cls].empty()) {
      void* raw = free_[cls].back();
      free_[cls].pop_back();
      reused_ += 1;
      return payload_of(raw);
    }
    fresh_ += 1;
    return stamp(::operator new(total), this, total);
  }

  /// Returns a frame to its owning arena's free list — or to the global
  /// heap if it was allocated with no arena active. Static: the owner is
  /// read from the block header, never from thread state.
  static void deallocate(void* payload) noexcept {
    Header* h = header_of(payload);
    if (h->owner == nullptr) {
      ::operator delete(static_cast<void*>(h));
      return;
    }
    h->owner->park(static_cast<void*>(h), h->bytes);
  }

  /// Allocation entry point for coroutine promises: the thread's current
  /// arena if one is scoped, else a headed global-heap block.
  static void* allocate_frame(std::size_t size) {
    FrameArena* a = current();
    if (a != nullptr) return a->allocate(size);
    const std::size_t total = rounded(size);
    return stamp(::operator new(total), nullptr, total);
  }

  [[nodiscard]] static FrameArena* current() noexcept { return tl_current; }

  /// Installs an arena as the thread's current one for a dynamic extent
  /// (nestable: restores the previous arena on exit).
  class Scope {
   public:
    explicit Scope(FrameArena* a) noexcept : prev_(tl_current) {
      tl_current = a;
    }
    ~Scope() { tl_current = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FrameArena* prev_;
  };

  /// Blocks taken from ::operator new (growth) vs. recycled off a free
  /// list. After warmup a steady-state engine loop adds only reuses.
  [[nodiscard]] std::int64_t fresh_blocks() const { return fresh_; }
  [[nodiscard]] std::int64_t reused_blocks() const { return reused_; }

 private:
  struct alignas(alignof(std::max_align_t)) Header {
    FrameArena* owner;
    std::size_t bytes;  // rounded total, header included
  };
  static_assert(sizeof(Header) % alignof(std::max_align_t) == 0,
                "header must preserve payload alignment");

  static constexpr std::size_t kGranularity = 64;

  static std::size_t rounded(std::size_t size) {
    return (size + sizeof(Header) + kGranularity - 1) & ~(kGranularity - 1);
  }
  static Header* header_of(void* payload) noexcept {
    return static_cast<Header*>(payload) - 1;
  }
  static void* payload_of(void* raw) noexcept {
    return static_cast<void*>(static_cast<Header*>(raw) + 1);
  }
  static void* stamp(void* raw, FrameArena* owner, std::size_t total) {
    auto* h = static_cast<Header*>(raw);
    h->owner = owner;
    h->bytes = total;
    return payload_of(raw);
  }

  void park(void* raw, std::size_t total) {
    const std::size_t cls = total / kGranularity;
    if (cls >= free_.size()) free_.resize(cls + 1);
    free_[cls].push_back(raw);
  }

  static inline thread_local FrameArena* tl_current = nullptr;

  std::vector<std::vector<void*>> free_;  // [size class] -> parked blocks
  std::int64_t fresh_ = 0;
  std::int64_t reused_ = 0;
};

}  // namespace bsplogp::core

// Small statistics helpers used by the benchmark harnesses: the Section-5
// experiments fit measured routing times T(h) to the affine model
// T = gamma*h + delta to extract per-topology bandwidth/latency parameters,
// and several experiments summarize distributions over seeds.
#pragma once

#include <span>
#include <vector>

namespace bsplogp::core {

/// Result of an ordinary least-squares fit of y = slope*x + intercept,
/// with the coefficient of determination for judging fit quality.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Least-squares fit over paired samples. Requires >= 2 points and
/// non-constant x.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

[[nodiscard]] double mean(std::span<const double> v);
[[nodiscard]] double stddev(std::span<const double> v);

/// q-quantile (0 <= q <= 1) by linear interpolation of the sorted sample.
/// Copies and sorts internally; fine at harness scale.
[[nodiscard]] double quantile(std::span<const double> v, double q);

}  // namespace bsplogp::core

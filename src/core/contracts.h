// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures. Violations are programming errors, never recoverable
// conditions, so they abort with a source location rather than throw.
//
// The checks stay on in release builds: the library is a simulator whose
// value is fidelity to the model rules, and silent rule violations would
// invalidate every measurement downstream. The predicates on hot paths are
// integer comparisons; profiling (bench_engines_micro) shows them in the
// noise.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bsplogp::core::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "bsplogp: %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace bsplogp::core::detail

#define BSPLOGP_EXPECTS(cond)                                            \
  ((cond) ? static_cast<void>(0)                                         \
          : ::bsplogp::core::detail::contract_failure("precondition",    \
                                                      #cond, __FILE__,   \
                                                      __LINE__))

#define BSPLOGP_ENSURES(cond)                                             \
  ((cond) ? static_cast<void>(0)                                          \
          : ::bsplogp::core::detail::contract_failure("postcondition",    \
                                                      #cond, __FILE__,    \
                                                      __LINE__))

#define BSPLOGP_ASSERT(cond)                                              \
  ((cond) ? static_cast<void>(0)                                          \
          : ::bsplogp::core::detail::contract_failure("invariant", #cond, \
                                                      __FILE__, __LINE__))

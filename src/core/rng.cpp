#include "src/core/rng.h"

// Header-only today; the translation unit anchors the library and keeps a
// home for any future out-of-line distribution helpers.

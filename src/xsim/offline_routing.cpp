#include "src/xsim/offline_routing.h"

#include <algorithm>
#include <vector>

#include "src/algo/mailbox.h"
#include "src/core/contracts.h"
#include "src/routing/decompose.h"

namespace bsplogp::xsim {

OfflineRoutingReport route_offline(const routing::HRelation& rel,
                                   logp::Params params,
                                   logp::Machine::Options engine) {
  params.validate();
  const ProcId p = rel.nprocs();

  // Off-line phase: color the relation into 1-relation layers and hand
  // every processor its per-layer send (the "known before the program is
  // run" schedule the paper refers to).
  const auto layers = routing::decompose_into_1_relations(rel);
  struct Slot {
    Time layer;
    Message msg;
  };
  std::vector<std::vector<Slot>> sends(static_cast<std::size_t>(p));
  std::vector<Time> in_count(static_cast<std::size_t>(p), 0);
  for (std::size_t k = 0; k < layers.size(); ++k) {
    BSPLOGP_ASSERT(routing::is_partial_permutation(p, layers[k]));
    for (const Message& m : layers[k]) {
      sends[static_cast<std::size_t>(m.src)].push_back(
          Slot{static_cast<Time>(k), m});
      in_count[static_cast<std::size_t>(m.dst)] += 1;
    }
  }

  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i) {
    progs.emplace_back([&sends, &in_count, i](logp::Proc& pr)
                           -> logp::Task<> {
      const logp::Params& prm = pr.params();
      Time acquired = 0;
      const Time expect = in_count[static_cast<std::size_t>(i)];
      // Layer k's submission slot is o + k*G; with one message per
      // destination per layer this is within capacity at all times.
      // Acquisitions are interleaved into the slack between submissions
      // (an acquisition starting at a finishes at a+o, and the next
      // submission needs o of preparation — both fit before the next slot
      // whenever 2o <= G of slack remains), which is how the paper's
      // 2o + G(h-1) + L accounts for the receive side.
      for (const Slot& slot : sends[static_cast<std::size_t>(i)]) {
        const Time submit = prm.o + slot.layer * prm.G;
        while (acquired < expect && pr.inbox_size() > 0 &&
               pr.earliest_acquire() + 2 * prm.o <= submit) {
          (void)co_await pr.recv();
          acquired += 1;
        }
        co_await pr.wait_until(submit - prm.o);
        co_await pr.send_msg(slot.msg);
      }
      while (acquired < expect) {
        (void)co_await pr.recv();
        acquired += 1;
      }
    });
  }

  logp::Machine machine(p, params, engine);
  OfflineRoutingReport report;
  report.logp = machine.run(progs);
  report.layers = static_cast<Time>(layers.size());
  return report;
}

}  // namespace bsplogp::xsim

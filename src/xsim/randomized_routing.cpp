#include "src/xsim/randomized_routing.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/algo/mailbox.h"
#include "src/core/contracts.h"
#include "src/core/rng.h"

namespace bsplogp::xsim {

namespace {

using algo::Channel;

}  // namespace

RandomizedRoutingReport route_randomized(const routing::HRelation& rel,
                                         logp::Params params,
                                         RandomizedRoutingOptions opt) {
  params.validate();
  BSPLOGP_EXPECTS(opt.oversample >= 1.0);
  const ProcId p = rel.nprocs();
  const Time h = std::max<Time>(rel.degree(), 1);
  const Time cap = params.capacity();
  const Time rounds =
      std::max<Time>(1, static_cast<Time>(std::ceil(
                            opt.oversample * static_cast<double>(h) /
                            static_cast<double>(cap))));
  const Time round_len = 2 * (params.L + params.o);

  // Distribute the relation: per-processor send lists and receive counts.
  std::vector<std::vector<Message>> sends(static_cast<std::size_t>(p));
  std::vector<Time> in_count(static_cast<std::size_t>(p), 0);
  for (const Message& m : rel.messages()) {
    sends[static_cast<std::size_t>(m.src)].push_back(m);
    in_count[static_cast<std::size_t>(m.dst)] += 1;
  }

  auto leftover_total = std::make_shared<std::int64_t>(0);
  core::Rng seeder(opt.seed);

  std::vector<logp::ProgramFn> progs;
  progs.reserve(static_cast<std::size_t>(p));
  for (ProcId i = 0; i < p; ++i) {
    const std::uint64_t proc_seed = seeder();
    progs.emplace_back([&sends, &in_count, leftover_total, proc_seed, rounds,
                        round_len, cap, i](logp::Proc& pr) -> logp::Task<> {
      const logp::Params& prm = pr.params();
      // Step 1: independent uniform batch per message.
      core::Rng rng(proc_seed);
      std::vector<std::vector<Message>> batch(
          static_cast<std::size_t>(rounds));
      for (const Message& m : sends[static_cast<std::size_t>(i)])
        batch[rng.below(static_cast<std::uint64_t>(rounds))].push_back(m);

      // Step 2: R rounds of 2(L+o) steps; up to cap messages per round.
      std::vector<Message> leftover;
      for (Time j = 0; j < rounds; ++j) {
        co_await pr.wait_until(j * round_len);
        auto& b = batch[static_cast<std::size_t>(j)];
        Time quota = cap;
        for (const Message& m : b) {
          if (quota == 0) {
            leftover.push_back(m);
            continue;
          }
          quota -= 1;
          co_await pr.send(m.dst, m.payload, m.tag, 0, Channel::kData);
        }
      }
      // Step 3: cleanup — may stall, which the Stalling Rule resolves.
      *leftover_total += static_cast<std::int64_t>(leftover.size());
      for (const Message& m : leftover)
        co_await pr.send(m.dst, m.payload, m.tag, 0, Channel::kData);

      // Drain: the receive count is known in advance (theorem hypothesis).
      for (Time k = 0; k < in_count[static_cast<std::size_t>(i)]; ++k)
        (void)co_await pr.recv();
    });
  }

  logp::Machine machine(p, params, opt.engine);
  RandomizedRoutingReport report;
  report.logp = machine.run(progs);
  report.rounds = rounds;
  report.h = h;
  report.leftover = *leftover_total;
  return report;
}

}  // namespace bsplogp::xsim

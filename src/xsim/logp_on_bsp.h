// Theorem 1: simulating stall-free LogP programs on BSP.
//
// The simulation (paper, Section 3) executes the LogP program in cycles of
// C = L/2 consecutive LogP steps, one BSP superstep per cycle:
//   * within a superstep, BSP processor i executes the instructions the
//     program prescribes for LogP processor i in that cycle, with the
//     native overhead/gap timing on its local clock;
//   * message submissions become insertions into the BSP output pool, so
//     everything submitted in cycle c reaches its destination's input pool
//     at the start of cycle c+1 — an admissible LogP delivery schedule,
//     because a stall-free program submits at most ceil(L/G) <= L/2
//     messages per destination per cycle, and those can be assigned
//     distinct arrival times within the next cycle, each within latency L;
//   * acquisitions read from a local FIFO fed by the input pool.
//
// Each superstep routes an h-relation with h <= ceil(L/G) and performs
// w = Theta(L) local work, so the cost is O(L + g ceil(L/G) + l) BSP time
// per L/2 LogP steps: slowdown O(1 + g/G + l/L), constant when g = Theta(G)
// and l = Theta(L).
//
// Programs are the same logp::ProgramFn coroutines the native machine runs;
// CycleProc is the second Proc implementation (see proc.h).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/bsp/machine.h"
#include "src/core/types.h"
#include "src/logp/params.h"
#include "src/logp/proc.h"

namespace bsplogp::xsim {

struct LogpOnBspOptions {
  /// BSP cost parameters of the host machine.
  bsp::Params bsp;
  /// Cycle length in LogP steps; 0 selects the paper's L/2 (at least 1).
  Time cycle_length = 0;
  /// Superstep budget before the run is declared stuck (covers LogP
  /// deadlock, which BSP cannot detect locally).
  std::int64_t max_supersteps = 1'000'000;
  /// Observer for the simulation's event stream (src/trace): the host BSP
  /// machine's superstep records plus the simulated LogP interactions
  /// (submit/accept/stall/delivery/acquire, at LogP model times). Not
  /// owned; must outlive run(). Leave null for production runs.
  trace::TraceSink* sink = nullptr;
};

struct LogpOnBspReport {
  /// Full BSP cost accounting of the simulation run.
  bsp::RunStats bsp;
  /// LogP steps per superstep used.
  Time cycle_length = 0;
  /// LogP model time the simulated execution reached (max processor clock):
  /// the denominator of the slowdown for this — admissible — execution.
  Time logical_finish = 0;
  /// True iff every (cycle, destination) saw at most ceil(L/G) submissions
  /// — the stall-freeness precondition of Theorem 1. When it fails the
  /// program stalls: the executor emulates the Stalling Rule (senders
  /// pause until the hot spot's bandwidth admits them), results stay
  /// faithful, but Theorem 1's constant-slowdown guarantee is void (the
  /// Section-3 regime; see preprocessed_time()).
  bool capacity_ok = true;
  /// Largest per-(cycle, destination) submission count observed.
  Time max_cycle_fan_in = 0;
  /// Stalling-rule emulation: delayed acceptances and total sender time
  /// lost (0 for stall-free programs).
  std::int64_t stall_events = 0;
  Time stall_time_total = 0;
  /// Supersteps in which some destination was overloaded.
  std::int64_t overloaded_supersteps = 0;
  /// Per-superstep overload flags (parallel to bsp.trace).
  std::vector<bool> superstep_overloaded;
  /// True if some processors never finished within the superstep budget.
  bool stuck = false;

  /// Measured slowdown: BSP time per simulated LogP step.
  [[nodiscard]] double slowdown() const {
    return logical_finish > 0 ? static_cast<double>(bsp.finish_time) /
                                    static_cast<double>(logical_finish)
                              : 0.0;
  }

  /// The Section-3 refinement: replace each overloaded superstep's naive
  /// cost w + g*h + l (h unbounded at a hot spot) with the cost of the
  /// sort/prefix preprocessing the paper sketches — O(log p) supersteps of
  /// capacity-bounded relations — yielding the O(((l+g)/G) log p)
  /// per-cycle slowdown. Charged analytically from the recorded trace
  /// (the decomposition itself is not executed; see DESIGN.md §3).
  [[nodiscard]] Time preprocessed_time(const bsp::Params& prm, ProcId p,
                                       Time capacity) const;
};

/// Theorem 1's predicted slowdown shape: c * (1 + g/G + l/L).
[[nodiscard]] double predicted_slowdown_thm1(const logp::Params& logp_prm,
                                             const bsp::Params& bsp_prm);

class LogpOnBsp {
 public:
  LogpOnBsp(ProcId nprocs, logp::Params logp_params, LogpOnBspOptions opt);

  /// Simulates one program per processor (or the same SPMD program).
  [[nodiscard]] LogpOnBspReport run(std::span<const logp::ProgramFn> programs);
  [[nodiscard]] LogpOnBspReport run(const logp::ProgramFn& program);

  [[nodiscard]] Time cycle_length() const { return cycle_; }

 private:
  ProcId nprocs_;
  logp::Params logp_params_;
  LogpOnBspOptions opt_;
  Time cycle_;
};

}  // namespace bsplogp::xsim

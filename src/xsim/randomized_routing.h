// Theorem 3: randomized routing of known-degree h-relations on LogP.
//
// When every processor knows the degree h in advance and the capacity
// threshold is large enough (ceil(L/G) >= c1 log p), an h-relation is
// realized without stalling in time <= beta*G*h with probability at least
// 1 - p^{-c2}. The protocol:
//   1. each processor independently assigns each of its messages a uniform
//      batch number in [1, R], R = (1+delta) h / ceil(L/G);
//   2. R rounds of 2(L+o) steps each: in round j, transmit up to ceil(L/G)
//      messages of batch j, one submission every G steps;
//   3. any messages left over (a batch overflowed its round quota) are sent
//      afterwards, one every G steps — stalling is possible here, but only
//      with polynomially small probability.
#pragma once

#include "src/core/types.h"
#include "src/logp/machine.h"
#include "src/routing/h_relation.h"

namespace bsplogp::xsim {

struct RandomizedRoutingOptions {
  /// The factor 1 + delta in R = (1+delta) h / ceil(L/G). Larger values
  /// lower the stall probability at the cost of proportionally more
  /// rounds.
  double oversample = 2.0;
  /// Seed for the batch assignment (split per processor).
  std::uint64_t seed = 1;
  logp::Machine::Options engine;
};

struct RandomizedRoutingReport {
  logp::RunStats logp;
  /// Number of rounds R used by step 2.
  Time rounds = 0;
  /// Degree h the protocol was told.
  Time h = 0;
  /// Messages that missed their round's quota and went through the cleanup
  /// step (0 in the high-probability case).
  std::int64_t leftover = 0;

  /// Completion time of the protocol (all messages delivered and
  /// acquired).
  [[nodiscard]] Time protocol_time() const { return logp.finish_time; }
  /// True iff the run realized the theorem's event: no stalling and no
  /// cleanup traffic.
  [[nodiscard]] bool clean() const {
    return logp.stall_free() && leftover == 0;
  }
  /// The theorem's time bound 4(1+delta)Gh for the given parameters.
  [[nodiscard]] static Time bound(const logp::Params& prm, Time h,
                                  double oversample) {
    return static_cast<Time>(4.0 * oversample *
                             static_cast<double>(prm.G) *
                             static_cast<double>(h)) +
           4 * (prm.L + prm.o);
  }
};

/// Routes `rel` with the Theorem-3 protocol. Every processor is told the
/// degree h = rel.degree() and its own receive count (both "known in
/// advance" per the theorem's hypothesis).
[[nodiscard]] RandomizedRoutingReport route_randomized(
    const routing::HRelation& rel, logp::Params params,
    RandomizedRoutingOptions opt = {});

}  // namespace bsplogp::xsim

#include "src/xsim/logp_on_bsp.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/core/contracts.h"

namespace bsplogp::xsim {

namespace {

/// The BSP-backed LogP processor: parks each interaction and lets pump()
/// resolve it under cycle semantics (submissions insert into the BSP output
/// pool; arrivals come from the input pool at cycle starts).
class CycleProc final : public logp::Proc {
 public:
  CycleProc(ProcId id, ProcId nprocs, const logp::Params& prm,
            trace::TraceSink* sink)
      : Proc(id), nprocs_(nprocs), prm_(prm), sink_(sink) {}

  [[nodiscard]] ProcId nprocs() const override { return nprocs_; }
  [[nodiscard]] const logp::Params& params() const override { return prm_; }

  void start(const logp::ProgramFn& fn) {
    root_ = fn(*this);
    BSPLOGP_EXPECTS(root_.valid());
    frame_ = root_.handle();
    started_ = false;
  }

  [[nodiscard]] bool done() const { return root_.done(); }

  /// A message from the BSP input pool: arrived at the cycle boundary.
  void deliver(const Message& m, Time arrival) {
    inbox_.push_back(m);
    arrivals_.push_back(arrival);
    if (sink_ != nullptr) {
      sink_->emit(trace::Event::delivery(id_, arrival, m.src));
      sink_->emit(trace::Event::queue_depth(
          id_, arrival, static_cast<std::int64_t>(inbox_.size())));
    }
  }

  /// Drives the program while its next interaction resolves before
  /// cycle_end.
  ///
  /// `decide(msg, submit_time) -> Time` implements message acceptance: it
  /// is called exactly once per submission, at the submission's cycle, and
  /// returns the acceptance time (== submit_time when the destination has
  /// a free capacity slot; later when the Stalling Rule defers the
  /// sender). `transmit(msg)` inserts the accepted message into the BSP
  /// output pool — in the acceptance's cycle, so it is delivered at the
  /// start of the next one.
  template <typename DecideFn, typename TransmitFn>
  void pump(Time cycle_end, DecideFn&& decide, TransmitFn&& transmit) {
    while (!done()) {
      if (!started_) {
        started_ = true;
        frame_.resume();  // runs to the first interaction
        continue;
      }
      switch (pending_) {
        case Op::None:
          return;  // nothing parked and not done: impossible unless stuck
        case Op::Wait: {
          if (wait_target_ >= cycle_end) return;
          clock_ = wait_target_;
          break;
        }
        case Op::Send: {
          if (submit_at_ >= cycle_end) return;  // submits in a later cycle
          if (!accept_decided_) {
            accept_at_ = decide(out_, submit_at_);
            BSPLOGP_ASSERT(accept_at_ >= submit_at_);
            accept_decided_ = true;
          }
          if (accept_at_ >= cycle_end) return;  // stalling into later cycle
          transmit(out_);
          clock_ = accept_at_;  // operational again at acceptance
          last_submit_ = submit_at_;
          has_submitted_ = true;
          accept_decided_ = false;
          break;
        }
        case Op::Recv: {
          if (inbox_.empty()) return;  // parked until a later cycle
          const Time a =
              std::max(recv_earliest_, arrivals_.front());
          if (a >= cycle_end) return;
          acquired_ = inbox_.front();
          inbox_.pop_front();
          arrivals_.pop_front();
          last_acquire_ = a;
          has_acquired_ = true;
          clock_ = a + prm_.o;
          if (sink_ != nullptr)
            sink_->emit(trace::Event::acquire(id_, a, acquired_.src));
          break;
        }
      }
      pending_ = Op::None;
      frame_.resume();  // runs to the next interaction (or completion)
    }
  }

  void rethrow_if_failed() const { root_.rethrow_if_failed(); }

 private:
  enum class Op { None, Wait, Send, Recv };

  void issue_wait(Time target, std::coroutine_handle<> frame) override {
    BSPLOGP_EXPECTS(target > clock_);
    frame_ = frame;
    pending_ = Op::Wait;
    wait_target_ = target;
  }
  void issue_send(Message m, std::coroutine_handle<> frame) override {
    BSPLOGP_EXPECTS(m.dst >= 0 && m.dst < nprocs_);
    BSPLOGP_EXPECTS(m.dst != id_);
    frame_ = frame;
    pending_ = Op::Send;
    out_ = m;
    submit_at_ = earliest_submit();
  }
  void issue_recv(std::coroutine_handle<> frame) override {
    frame_ = frame;
    pending_ = Op::Recv;
    recv_earliest_ = clock_;
    if (has_acquired_)
      recv_earliest_ = std::max(recv_earliest_, last_acquire_ + prm_.G);
  }

  ProcId nprocs_;
  logp::Params prm_;
  trace::TraceSink* sink_;
  logp::Task<> root_;
  std::coroutine_handle<> frame_;
  bool started_ = false;

  Op pending_ = Op::None;
  Message out_{};
  Time submit_at_ = 0;
  Time accept_at_ = 0;
  bool accept_decided_ = false;
  Time wait_target_ = 0;
  Time recv_earliest_ = 0;
  core::RingBuffer<Time> arrivals_;  // parallel to inbox_
};

/// Per-destination acceptance limiter emulating the Stalling Rule at cycle
/// granularity: a burst of capacity() messages is admitted instantly, after
/// which acceptances mature one per G steps — the hot-spot drain rate the
/// rule guarantees (paper, Section 2.2).
class AcceptanceBucket {
 public:
  AcceptanceBucket(Time capacity, Time gap) : cap_(capacity), gap_(gap) {}

  /// Returns the acceptance time (>= t) for a submission at time t.
  [[nodiscard]] Time admit(Time t) {
    if (!init_) {
      init_ = true;
      tokens_ = cap_;
      next_at_ = t + gap_;
    }
    while (tokens_ < cap_ && next_at_ <= t) {
      tokens_ += 1;
      next_at_ += gap_;
    }
    if (tokens_ > 0) {
      tokens_ -= 1;
      if (tokens_ == cap_ - 1) next_at_ = std::max(next_at_, t + gap_);
      return t;
    }
    const Time a = next_at_;
    next_at_ += gap_;
    return a;
  }

 private:
  Time cap_;
  Time gap_;
  Time tokens_ = 0;
  Time next_at_ = 0;
  bool init_ = false;
};

}  // namespace

double predicted_slowdown_thm1(const logp::Params& logp_prm,
                               const bsp::Params& bsp_prm) {
  const double g_ratio = static_cast<double>(bsp_prm.g) /
                         static_cast<double>(logp_prm.G);
  const double l_ratio = static_cast<double>(bsp_prm.l) /
                         static_cast<double>(logp_prm.L);
  return 1.0 + g_ratio + l_ratio;
}

LogpOnBsp::LogpOnBsp(ProcId nprocs, logp::Params logp_params,
                     LogpOnBspOptions opt)
    : nprocs_(nprocs), logp_params_(logp_params), opt_(opt) {
  BSPLOGP_EXPECTS(nprocs >= 1);
  logp_params_.validate();
  opt_.bsp.validate();
  cycle_ = opt.cycle_length > 0 ? opt.cycle_length
                                : std::max<Time>(1, logp_params_.L / 2);
}

LogpOnBspReport LogpOnBsp::run(const logp::ProgramFn& program) {
  std::vector<logp::ProgramFn> programs(static_cast<std::size_t>(nprocs_),
                                        program);
  return run(std::span<const logp::ProgramFn>(programs));
}

LogpOnBspReport LogpOnBsp::run(std::span<const logp::ProgramFn> programs) {
  BSPLOGP_EXPECTS(std::cmp_equal(programs.size(), nprocs_));

  std::vector<std::unique_ptr<CycleProc>> cprocs;
  cprocs.reserve(static_cast<std::size_t>(nprocs_));
  for (ProcId i = 0; i < nprocs_; ++i) {
    cprocs.push_back(
        std::make_unique<CycleProc>(i, nprocs_, logp_params_, opt_.sink));
    cprocs.back()->start(programs[static_cast<std::size_t>(i)]);
  }

  // Shared executor state: per-cycle capacity accounting and the
  // Stalling-Rule acceptance buckets. The BSP machine runs processors
  // sequentially, so plain shared state is safe.
  struct Shared {
    std::int64_t cycle = -1;
    std::vector<Time> fan_in;  // submissions per destination, this cycle
    Time max_fan_in = 0;
    // Cycles in which the Stalling Rule was active: where an overload was
    // submitted and every cycle a delayed acceptance resolved in (those
    // are the cycles whose schedule the Section-3 preprocessing would
    // have to compute).
    std::set<std::int64_t> overloaded_cycles;
    std::vector<AcceptanceBucket> buckets;
    std::int64_t stall_events = 0;
    Time stall_time = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->fan_in.assign(static_cast<std::size_t>(nprocs_), 0);
  const Time cap = logp_params_.capacity();
  shared->buckets.assign(static_cast<std::size_t>(nprocs_),
                         AcceptanceBucket(cap, logp_params_.G));

  const Time cycle_len = cycle_;
  bool capacity_ok = true;

  auto step_fn = [&, shared](bsp::Ctx& c) -> bool {
    if (shared->cycle != c.superstep()) {
      shared->cycle = c.superstep();
      std::fill(shared->fan_in.begin(), shared->fan_in.end(), 0);
    }
    CycleProc& cp = *cprocs[static_cast<std::size_t>(c.pid())];
    const Time cycle_start = c.superstep() * cycle_len;
    const Time cycle_end = cycle_start + cycle_len;
    for (const Message& m : c.inbox()) cp.deliver(m, cycle_start);
    // The superstep executes (up to) cycle_len LogP instructions.
    c.charge(cycle_len);
    cp.pump(
        cycle_end,
        [&](const Message& m, Time submit_time) -> Time {
          // Per-cycle stall-freeness accounting (Theorem 1's
          // precondition), judged at the submission's cycle.
          Time& fan = shared->fan_in[static_cast<std::size_t>(m.dst)];
          fan += 1;
          shared->max_fan_in = std::max(shared->max_fan_in, fan);
          if (fan > cap) {
            capacity_ok = false;
            shared->overloaded_cycles.insert(c.superstep());
          }
          // Stalling Rule emulation: acceptance when the destination's
          // bandwidth admits it.
          const Time accept =
              shared->buckets[static_cast<std::size_t>(m.dst)].admit(
                  submit_time);
          if (accept > submit_time) {
            shared->stall_events += 1;
            shared->stall_time += accept - submit_time;
            // Every cycle between submission and acceptance carries part
            // of the deferred schedule.
            for (Time cyc = submit_time / cycle_len;
                 cyc <= accept / cycle_len; ++cyc)
              shared->overloaded_cycles.insert(cyc);
          }
          if (opt_.sink != nullptr) {
            opt_.sink->emit(
                trace::Event::submit(c.pid(), submit_time, m.dst));
            if (accept > submit_time) {
              opt_.sink->emit(trace::Event::stall_begin(c.pid(), submit_time,
                                                        m.dst));
              opt_.sink->emit(trace::Event::stall_end(c.pid(), accept, m.dst,
                                                      submit_time));
            }
            opt_.sink->emit(
                trace::Event::accept(c.pid(), accept, m.dst, submit_time));
          }
          return accept;
        },
        [&](const Message& m) { c.send_msg(m); });
    cp.rethrow_if_failed();
    return !cp.done();
  };

  std::vector<std::unique_ptr<bsp::ProcProgram>> bsp_programs;
  for (ProcId i = 0; i < nprocs_; ++i)
    bsp_programs.push_back(std::make_unique<bsp::FnProgram>(step_fn));

  bsp::Machine::Options bsp_opt;
  bsp_opt.max_supersteps = opt_.max_supersteps;
  // The host machine narrates the supersteps to the same sink; the
  // simulated LogP interactions above ride within that run (their
  // timestamps are LogP model times, the superstep records BSP cost).
  bsp_opt.sink = opt_.sink;
  bsp::Machine machine(nprocs_, opt_.bsp, bsp_opt);

  LogpOnBspReport report;
  report.bsp = machine.run(bsp_programs);
  report.cycle_length = cycle_len;
  report.capacity_ok = capacity_ok;
  report.max_cycle_fan_in = shared->max_fan_in;
  report.stall_events = shared->stall_events;
  report.stall_time_total = shared->stall_time;
  report.stuck = report.bsp.hit_superstep_limit;
  report.superstep_overloaded.assign(report.bsp.trace.size(), false);
  for (const std::int64_t cyc : shared->overloaded_cycles)
    if (std::cmp_less(cyc, report.superstep_overloaded.size()))
      report.superstep_overloaded[static_cast<std::size_t>(cyc)] = true;
  for (const bool over : report.superstep_overloaded)
    report.overloaded_supersteps += over;
  Time logical = 0;
  for (const auto& cp : cprocs) logical = std::max(logical, cp->now());
  report.logical_finish = logical;
  return report;
}

Time LogpOnBspReport::preprocessed_time(const bsp::Params& prm, ProcId p,
                                        Time capacity) const {
  // The Section-3 scheme: in a cycle where stalling occurred, the
  // simulation sorts the cycle's messages and prefix-computes the
  // acceptance order before routing — O(log p) additional supersteps, each
  // an h-relation with h <= ceil(L/G) plus O(capacity) local work.
  Time total = 0;
  const Time extra = static_cast<Time>(ceil_log2(std::max<ProcId>(p, 2))) *
                     (prm.l + prm.g * capacity + capacity);
  for (std::size_t s = 0; s < bsp.trace.size(); ++s) {
    total += bsp.trace[s].total(prm);
    if (s < superstep_overloaded.size() && superstep_overloaded[s])
      total += extra;
  }
  return total;
}

}  // namespace bsplogp::xsim

// Section 4.2, first paragraph: "By Hall's Theorem, any h-relation can be
// decomposed into disjoint 1-relations and, therefore, be routed off-line
// in optimal 2o + G(h-1) + L time in LogP."
//
// This module executes exactly that: the relation is edge-colored into
// 1-relation layers off-line (routing/decompose.h) and the layers are
// pipelined with period G — layer k's submissions all happen at slot kG.
// Each destination receives at most one message per layer, so at most
// ceil(L/G) are ever in transit per destination: stall-free by
// construction, and the last delivery lands by o + (h-1)G + L.
#pragma once

#include "src/core/types.h"
#include "src/logp/machine.h"
#include "src/routing/h_relation.h"

namespace bsplogp::xsim {

struct OfflineRoutingReport {
  logp::RunStats logp;
  /// Number of 1-relation layers used (<= degree of the relation).
  Time layers = 0;
  /// The paper's optimal-time expression for this relation and machine.
  [[nodiscard]] static Time optimal_bound(const logp::Params& prm, Time h) {
    return 2 * prm.o + prm.G * (h - 1) + prm.L;
  }
};

/// Routes `rel` off-line-scheduled on a LogP machine; receivers acquire
/// their (known) counts after delivery.
[[nodiscard]] OfflineRoutingReport route_offline(
    const routing::HRelation& rel, logp::Params params,
    logp::Machine::Options engine = {});

}  // namespace bsplogp::xsim

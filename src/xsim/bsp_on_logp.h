// Theorem 2: simulating arbitrary BSP programs on stall-free LogP.
//
// A BSP superstep with w local operations per processor and an h-relation
// is simulated in O(w + (Gh + L) * S(L,G,p,h)) LogP time:
//
//   1. Local phase: LogP processor i runs BSP processor i's superstep code,
//      buffering the generated messages (w operations).
//   2. Synchronization: Combine-and-Broadcast (Proposition 2) — the CB that
//      computes the padding target r = max outgoing degree doubles as the
//      superstep barrier.
//   3. Routing (Section 4.2): pad every processor to exactly r records
//      (dummies with destination key p), sort all records globally by
//      destination (bitonic merge-split for small r, Columnsort for
//      r = Omega(p^2); both are oblivious, so every exchange is a fixed
//      relation executed stall-free under global time windows), compute the
//      maximum receive degree s exactly with a neighbor shift + prefix-max
//      scan + CB, then deliver in h = max(r, s) globally clocked cycles:
//      cycle k sends the records of global rank ≡ k (mod h). Sortedness
//      makes each cycle a partial permutation, and the G-spaced cycle clock
//      keeps every destination within the capacity constraint — no
//      stalling.
//   4. Termination: a final CB (which also ORs the per-processor
//      continue flags) plus an L-step wait guarantees every data message
//      has been delivered; each processor then drains its buffer.
//
// The BSP programs are the same bsp::ProcProgram objects bsp::Machine runs:
// the simulation is "BSP executed by LogP", program-for-program.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/bsp/machine.h"
#include "src/core/types.h"
#include "src/logp/machine.h"

namespace bsplogp::xsim {

/// Which distributed sort realizes step 2 of the routing protocol.
enum class SortMethod {
  /// Columnsort when r is already in its validity regime, else bitonic
  /// (power-of-two p), else Columnsort with padded r.
  Auto,
  /// Batcher bitonic merge-split: O((Gr + L) log^2 p). Requires p = 2^k.
  Bitonic,
  /// Leighton Columnsort: O(T_seq-sort(r) + Gr + L) for r >= 2(p-1)^2
  /// (r is padded up to the validity threshold if needed).
  Columnsort,
};

struct BspOnLogpOptions {
  SortMethod sort = SortMethod::Auto;
  /// Ablation switch: when false, step 4's routing cycles are not aligned
  /// to the global G-spaced clock — every processor transmits its sorted
  /// records as fast as the gap allows. Results stay correct (the Stalling
  /// Rule resolves collisions), but the stall-freeness guarantee is lost:
  /// this is precisely what the paper's cycle decomposition buys.
  bool clocked_cycles = true;
  /// Engine options for the underlying LogP machine (policies, seed).
  logp::Machine::Options engine;
  std::int64_t max_supersteps = 100'000;
};

struct BspOnLogpReport {
  /// LogP machine statistics for the whole simulation. stall_events == 0
  /// certifies the protocol ran stall-free, as Theorem 2 requires.
  logp::RunStats logp;
  std::int64_t supersteps = 0;

  struct SuperstepInfo {
    Time w_max = 0;  // max local operations charged by the BSP programs
    Time r = 0;      // padded send degree used by the sort
    Time s = 0;      // exact max receive degree
    Time h = 0;      // cycles routed = max(r, s)
    Time messages = 0;
  };
  std::vector<SuperstepInfo> steps;

  /// Times a processor missed a prescribed protocol window (0 in a healthy
  /// run; nonzero means the conservative window bounds were too tight and
  /// stall-freeness may have been lost, though results stay correct).
  std::int64_t schedule_violations = 0;

  /// The BSP cost of the same execution under parameters (g, l): the
  /// baseline against which the simulation's slowdown is measured
  /// (Theorem 2 compares against g = Theta(G), l = Theta(L)).
  [[nodiscard]] Time bsp_reference_time(const bsp::Params& prm) const;

  /// Measured slowdown relative to the g = G, l = L BSP baseline.
  [[nodiscard]] double slowdown(const logp::Params& prm) const;
};

class BspOnLogp {
 public:
  BspOnLogp(ProcId nprocs, logp::Params params, BspOnLogpOptions opt = {});

  /// Runs the BSP programs to completion (all step() functions return
  /// false in the same superstep) on the LogP machine. Caller retains
  /// ownership of the programs and reads results from them afterwards.
  [[nodiscard]] BspOnLogpReport run(
      std::span<const std::unique_ptr<bsp::ProcProgram>> programs);

 private:
  ProcId nprocs_;
  logp::Params params_;
  BspOnLogpOptions opt_;
};

}  // namespace bsplogp::xsim

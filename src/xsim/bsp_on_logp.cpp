#include "src/xsim/bsp_on_logp.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "src/algo/logp_collectives.h"
#include "src/algo/mailbox.h"
#include "src/core/contracts.h"
#include "src/routing/bitonic.h"
#include "src/routing/columnsort.h"

namespace bsplogp::xsim {

namespace {

using algo::Channel;
using algo::combine_broadcast;
using algo::Mailbox;
using algo::ReduceOp;
using algo::tree_broadcast;
using logp::Proc;
using logp::Task;

/// A message-in-flight of the routing protocol: key is the destination
/// (p = dummy), src the BSP sender, payload/tag the BSP message's contents.
struct Record {
  Word key = 0;
  Word payload = 0;
  std::int32_t tag = 0;
  ProcId src = 0;
};

bool record_less(const Record& a, const Record& b) {
  return std::tie(a.key, a.payload, a.tag, a.src) <
         std::tie(b.key, b.payload, b.tag, b.src);
}

/// Sort traffic carries (key, BSP source) packed in the aux header word.
Word pack_aux(Word key, ProcId src) {
  return (key << 32) | static_cast<Word>(static_cast<std::uint32_t>(src));
}
Record unpack_record(const Message& m) {
  return Record{m.aux >> 32, m.payload, m.tag,
                static_cast<ProcId>(m.aux & 0xffffffff)};
}

// Sort-traffic channels: one per network round so that deliveries from
// adjacent rounds can never be confused, whatever their transit order.
constexpr std::int32_t kChSortBase = -1000;    // bitonic round k: base - k
constexpr std::int32_t kChColDeal = -1500;     // columnsort redistributions
constexpr std::int32_t kChColUndeal = -1501;
constexpr std::int32_t kChColBoundA = -1502;
constexpr std::int32_t kChColBoundB = -1503;
// Control tags on Channel::kControl.
constexpr std::int32_t kTagLastKey = 1;
constexpr std::int32_t kTagExclScan = 2;
constexpr std::int32_t kTagFirstKey = 3;
constexpr std::int32_t kTagScanBase = 100;  // scan round k: base + k

/// Cost of sequentially sorting n records by destination key (keys in
/// [0, p]): Radixsort passes min(log n, ceil(log p / log n)), as the paper
/// charges in Section 4.2 — O(n) once n = p^Theta(1).
Time seq_sort_charge(Time n, ProcId p) {
  if (n <= 1) return 1;
  const int logn = ceil_log2(n + 1);
  const int logp = ceil_log2(static_cast<Time>(p) + 1);
  const int passes = std::max(1, (logp + logn - 1) / logn);
  return n * std::min(logn, passes);
}

/// Cost of merging two sorted runs of n records total: linear, as the
/// paper charges for the AKS merge-split steps.
Time merge_charge(Time n) { return n + 1; }

/// Conservative window for one merge-split exchange of r records per side:
/// send r (paced G), receive r (deliveries within L, acquisitions paced G
/// after the sends), merge 2r.
Time exchange_window(Time r, const logp::Params& prm) {
  return 2 * prm.o + 2 * r * prm.G + prm.L + merge_charge(2 * r) + 8;
}

/// Conservative window for a columnsort redistribution: p groups of q
/// G-spaced slots, then receive up to r and radix-sort.
Time redist_window(Time r, Time q, ProcId p, const logp::Params& prm) {
  return 2 * prm.o + (static_cast<Time>(p) * q + r) * prm.G + prm.L +
         seq_sort_charge(r, p) + 8;
}

/// Conservative window for one boundary phase (send/receive up to r
/// records with a neighbor and radix-sort the r-record window).
Time boundary_window(Time r, ProcId p, const logp::Params& prm) {
  return 2 * prm.o + 2 * r * prm.G + prm.L + seq_sort_charge(r, p) + 8;
}

/// Window for a single-message neighbor exchange (the shifts and scan
/// rounds of the receive-degree computation).
Time control_window(const logp::Params& prm) {
  return 2 * (prm.L + 2 * prm.o) + 2 * prm.G + 4;
}


struct Shared {
  ProcId p = 0;
  logp::Params prm;
  BspOnLogpOptions opt;
  /// Same sink the LogP engine reports to (opt.engine.sink): the protocol
  /// coroutines add PhaseBegin/PhaseEnd markers for the superstep
  /// structure on top of the engine's message-level events.
  trace::TraceSink* sink = nullptr;

  void phase_begin(ProcId proc, Time t, trace::SimPhase ph,
                   std::int64_t step) {
    if (sink != nullptr)
      sink->emit(trace::Event::phase_begin(proc, t, ph, step));
  }
  void phase_end(ProcId proc, Time t, trace::SimPhase ph,
                 std::int64_t step) {
    if (sink != nullptr)
      sink->emit(trace::Event::phase_end(proc, t, ph, step));
  }
  // Host-side aggregation; the engine is single-threaded so shared writes
  // from the per-processor coroutines are safe.
  std::vector<BspOnLogpReport::SuperstepInfo> steps;
  std::int64_t schedule_violations = 0;
  // Precomputed bitonic matchings: partner_keep_low[round][proc].
  std::vector<std::vector<std::pair<ProcId, bool>>> bitonic_partners;

  BspOnLogpReport::SuperstepInfo& info(std::int64_t step) {
    if (std::cmp_less_equal(steps.size(), step))
      steps.resize(static_cast<std::size_t>(step) + 1);
    return steps[static_cast<std::size_t>(step)];
  }
};

enum class Method { Bitonic, Columnsort };

/// Deterministic sort-method choice (identical on every processor).
std::pair<Method, Time> choose_sort(const Shared& sh, Time r_raw) {
  const Time thresh =
      2 * static_cast<Time>(sh.p - 1) * static_cast<Time>(sh.p - 1);
  auto pad_col = [&](Time r) {
    r = std::max<Time>(std::max(r, thresh), 1);
    return ceil_div(r, sh.p) * sh.p;
  };
  switch (sh.opt.sort) {
    case SortMethod::Bitonic:
      BSPLOGP_EXPECTS(is_pow2(sh.p));
      return {Method::Bitonic, r_raw};
    case SortMethod::Columnsort:
      return {Method::Columnsort, pad_col(r_raw)};
    case SortMethod::Auto:
      if (r_raw >= thresh) return {Method::Columnsort, pad_col(r_raw)};
      if (is_pow2(sh.p)) return {Method::Bitonic, r_raw};
      return {Method::Columnsort, pad_col(r_raw)};
  }
  return {Method::Bitonic, r_raw};
}

/// Total model time the distributed sort occupies from its start t0 —
/// identical on every processor, which is what lets the rest of the
/// routing protocol run on a static schedule.
Time sort_duration(Method method, Time r, ProcId p, const logp::Params& prm,
                   std::size_t bitonic_rounds) {
  if (method == Method::Bitonic)
    return static_cast<Time>(bitonic_rounds) * exchange_window(r, prm);
  const Time q = r / p + 1;
  return 2 * redist_window(r, q, p, prm) + 2 * boundary_window(r, p, prm);
}

/// Exchange full blocks with `partner` on `channel` and keep the low or
/// high half of the merged 2r records.
Task<> merge_exchange(Mailbox& mb, std::vector<Record>& recs, ProcId partner,
                      bool keep_low, std::int32_t channel) {
  Proc& pr = mb.proc();
  const std::size_t r = recs.size();
  for (const Record& rec : recs)
    co_await pr.send(partner, rec.payload, rec.tag,
                     pack_aux(rec.key, rec.src), channel);
  std::vector<Record> merged = recs;
  merged.reserve(2 * r);
  for (std::size_t k = 0; k < r; ++k) {
    const Message m = co_await mb.recv_channel(channel);
    merged.push_back(unpack_record(m));
  }
  co_await pr.compute(merge_charge(static_cast<Time>(2 * r)));
  std::sort(merged.begin(), merged.end(), record_less);
  const auto half = static_cast<std::ptrdiff_t>(r);
  if (keep_low)
    recs.assign(merged.begin(), merged.begin() + half);
  else
    recs.assign(merged.begin() + half, merged.end());
}

/// Bitonic merge-split sort across all processors, rounds aligned to
/// global windows from t0 so that only the round's partner ever sends to a
/// processor (stall-freeness).
Task<> sort_bitonic(Mailbox& mb, std::vector<Record>& recs, Time t0,
                    Shared& sh) {
  Proc& pr = mb.proc();
  const Time w = exchange_window(static_cast<Time>(recs.size()), sh.prm);
  for (std::size_t round = 0; round < sh.bitonic_partners.size(); ++round) {
    const Time wstart = t0 + static_cast<Time>(round) * w;
    co_await pr.wait_until(wstart);
    const auto [partner, keep_low] =
        sh.bitonic_partners[round][static_cast<std::size_t>(pr.id())];
    co_await merge_exchange(mb, recs, partner, keep_low,
                            kChSortBase - static_cast<std::int32_t>(round));
    if (pr.now() > wstart + w) sh.schedule_violations += 1;
  }
}

/// Columnsort across all processors (column j = processor j). recs must be
/// presorted and have size r with p | r and r >= 2(p-1)^2.
Task<> sort_columnsort(Mailbox& mb, std::vector<Record>& recs, Time t0,
                       Shared& sh) {
  Proc& pr = mb.proc();
  const ProcId p = sh.p;
  const ProcId me = pr.id();
  const logp::Params& prm = sh.prm;
  if (p == 1) co_return;
  const auto r = static_cast<Time>(recs.size());
  const Time q = r / p + 1;
  const Time wr = redist_window(r, q, p, prm);

  // Phases 2-5: deal (transpose) then undeal (untranspose), each followed
  // by a local sort. Destination columns depend only on the sorted
  // position i: deal: i mod p; undeal: (i*p + me) / r. Group-by-destination
  // send order with per-group slot quotas makes every G-slot a partial
  // permutation (see DESIGN.md), hence stall-free.
  for (int phase = 0; phase < 2; ++phase) {
    const std::int32_t channel = phase == 0 ? kChColDeal : kChColUndeal;
    const Time w0 = t0 + phase * wr;
    co_await pr.wait_until(w0);
    std::vector<Record> kept;
    for (ProcId k = 0; k < p; ++k) {
      const auto d = static_cast<ProcId>((me + k) % p);
      Time idx = 0;
      for (Time i = 0; i < r; ++i) {
        const auto dest = phase == 0
                              ? static_cast<ProcId>(i % p)
                              : static_cast<ProcId>((i * p + me) / r);
        if (dest != d) continue;
        if (d == me) {
          kept.push_back(recs[static_cast<std::size_t>(i)]);
        } else {
          const Time slot = w0 + (static_cast<Time>(k) * q + idx) * prm.G;
          if (pr.earliest_submit() > slot) sh.schedule_violations += 1;
          co_await pr.wait_until(std::max(pr.now(), slot - prm.o));
          const Record& rec = recs[static_cast<std::size_t>(i)];
          co_await pr.send(d, rec.payload, rec.tag,
                           pack_aux(rec.key, rec.src), channel);
        }
        idx += 1;
      }
      BSPLOGP_ASSERT(idx <= q);
    }
    const auto expect = r - static_cast<Time>(kept.size());
    std::vector<Record> next = std::move(kept);
    next.reserve(static_cast<std::size_t>(r));
    for (Time k = 0; k < expect; ++k) {
      const Message m = co_await mb.recv_channel(channel);
      next.push_back(unpack_record(m));
    }
    BSPLOGP_ASSERT(std::cmp_equal(next.size(), r));
    co_await pr.compute(seq_sort_charge(r, p));
    std::sort(next.begin(), next.end(), record_less);
    recs = std::move(next);
    if (pr.now() > w0 + wr) sh.schedule_violations += 1;
  }

  // Steps 6-8 in boundary-window form. Shifted column c+1 is
  // [last r/2 records of column c ; first r - r/2 records of column c+1];
  // processor c owns window (c, c+1).
  const Time half = r / 2;       // contribution of the left column
  const Time tcnt = r - half;    // contribution of the right column
  const Time wb = t0 + 2 * wr;
  co_await pr.wait_until(wb);
  // Phase A: send my first tcnt records (smallest) left.
  if (me > 0) {
    for (Time i = 0; i < tcnt; ++i) {
      const Record& rec = recs[static_cast<std::size_t>(i)];
      co_await pr.send(static_cast<ProcId>(me - 1), rec.payload, rec.tag,
                       pack_aux(rec.key, rec.src), kChColBoundA);
    }
  }
  std::vector<Record> window;
  if (me < p - 1) {
    window.assign(recs.begin() + static_cast<std::ptrdiff_t>(tcnt),
                  recs.end());  // my last half records
    for (Time k = 0; k < tcnt; ++k) {
      const Message m = co_await mb.recv_channel(kChColBoundA);
      window.push_back(unpack_record(m));
    }
    co_await pr.compute(seq_sort_charge(r, p));
    std::sort(window.begin(), window.end(), record_less);
  }
  // Phase B: return the window's largest tcnt records to the right
  // neighbor (its new first records); keep the smallest half as my last.
  const Time wb2 = wb + boundary_window(r, p, prm);
  co_await pr.wait_until(wb2);
  if (me < p - 1) {
    for (Time i = half; i < r; ++i) {
      const Record& rec = window[static_cast<std::size_t>(i)];
      co_await pr.send(static_cast<ProcId>(me + 1), rec.payload, rec.tag,
                       pack_aux(rec.key, rec.src), kChColBoundB);
    }
  }
  std::vector<Record> next;
  next.reserve(static_cast<std::size_t>(r));
  if (me > 0) {
    for (Time k = 0; k < tcnt; ++k) {
      const Message m = co_await mb.recv_channel(kChColBoundB);
      next.push_back(unpack_record(m));
    }
  } else {
    next.assign(recs.begin(), recs.begin() + static_cast<std::ptrdiff_t>(tcnt));
  }
  if (me < p - 1) {
    next.insert(next.end(), window.begin(),
                window.begin() + static_cast<std::ptrdiff_t>(half));
  } else {
    next.insert(next.end(),
                recs.begin() + static_cast<std::ptrdiff_t>(tcnt), recs.end());
  }
  BSPLOGP_ASSERT(std::cmp_equal(next.size(), r));
  co_await pr.compute(seq_sort_charge(r, p));
  std::sort(next.begin(), next.end(), record_less);
  recs = std::move(next);
  if (pr.now() > wb2 + boundary_window(r, p, prm)) sh.schedule_violations += 1;
}

/// Number of control windows compute_s consumes (used to build the static
/// schedule): two boundary-key shifts, ceil(log2 p) scan rounds, and the
/// exclusive-scan shift.
Time s_window_count(ProcId p) {
  return 3 + (p > 1 ? ceil_log2(p) : 0);
}

/// Model time compute_s occupies from its base: its control windows plus
/// the trailing local group-length pass (r operations).
Time s_duration(ProcId p, Time r, const logp::Params& prm) {
  return s_window_count(p) * control_window(prm) + r + 4;
}

/// Exact maximum receive degree of the sorted relation: group runs can span
/// processors, so group starts are located with boundary-key shifts plus a
/// prefix-max scan of start ranks, and lengths are evaluated at group ends.
/// Every neighbor exchange and scan round runs in its own control window
/// starting at `base`, so at most one message is ever in transit per
/// destination (stall-free at any capacity).
Task<Time> compute_s(Mailbox& mb, const std::vector<Record>& recs, Time r,
                     Time base, Shared& sh) {
  Proc& pr = mb.proc();
  const ProcId p = sh.p;
  const ProcId me = pr.id();
  const Word dummy_key = p;
  const Time wc = control_window(sh.prm);
  Time window = 0;
  auto next_window = [&]() -> Time { return base + (window++) * wc; };

  // 1a. Every processor learns its left neighbor's last key.
  co_await pr.wait_until(next_window());
  Word left_last = -1;
  if (me + 1 < p)
    co_await pr.send(static_cast<ProcId>(me + 1), recs.back().key,
                     kTagLastKey, 0, Channel::kControl);
  if (me > 0)
    left_last =
        (co_await mb.recv_channel_tag(Channel::kControl, kTagLastKey))
            .payload;
  // 1b. ...and its right neighbor's first key (for boundary group ends).
  co_await pr.wait_until(next_window());
  Word right_first = -1;
  if (me > 0)
    co_await pr.send(static_cast<ProcId>(me - 1), recs.front().key,
                     kTagFirstKey, 0, Channel::kControl);
  if (me + 1 < p)
    right_first =
        (co_await mb.recv_channel_tag(Channel::kControl, kTagFirstKey))
            .payload;

  // 2. Local group starts; v = rank of the last start in my block (-1 if
  // my whole block continues an earlier group).
  auto rank_of = [&](Time j) { return static_cast<Word>(me) * r + j; };
  std::vector<Time> starts;
  for (Time j = 0; j < r; ++j) {
    const Word key = recs[static_cast<std::size_t>(j)].key;
    const bool start =
        j == 0 ? (me == 0 || key != left_last)
               : key != recs[static_cast<std::size_t>(j - 1)].key;
    if (start) starts.push_back(j);
  }
  const Word v = starts.empty() ? Word{-1} : rank_of(starts.back());

  // 3. Inclusive prefix max of start ranks, Hillis-Steele with one control
  // window per round.
  Word incl = v;
  for (std::int32_t k = 0; (ProcId{1} << k) < p; ++k) {
    co_await pr.wait_until(next_window());
    const ProcId stride = ProcId{1} << k;
    if (me + stride < p)
      co_await pr.send(me + stride, incl, kTagScanBase + k, 0,
                       Channel::kControl);
    if (me >= stride) {
      const Message m =
          co_await mb.recv_channel_tag(Channel::kControl, kTagScanBase + k);
      incl = std::max(incl, m.payload);
    }
  }
  // 4. Shift to make it exclusive: the start of the group overlapping my
  // block's beginning.
  co_await pr.wait_until(next_window());
  Word excl = -1;
  if (me + 1 < p)
    co_await pr.send(static_cast<ProcId>(me + 1), incl, kTagExclScan, 0,
                     Channel::kControl);
  if (me > 0)
    excl = (co_await mb.recv_channel_tag(Channel::kControl, kTagExclScan))
               .payload;

  // 5. Longest real (non-dummy) group ending in my block. A group ends at
  // local position j if the following record (local or the right
  // neighbor's first) has a different key; the global last record always
  // ends its group.
  Time best = 0;
  std::size_t next_start = 0;
  Word cur_start = excl;  // start rank of the group containing position j
  for (Time j = 0; j < r; ++j) {
    if (next_start < starts.size() && starts[next_start] == j) {
      cur_start = rank_of(j);
      ++next_start;
    }
    const Word key = recs[static_cast<std::size_t>(j)].key;
    const bool end =
        j + 1 < r ? key != recs[static_cast<std::size_t>(j + 1)].key
                  : (me == p - 1 || key != right_first);
    if (end && key != dummy_key) {
      BSPLOGP_ASSERT(cur_start >= 0);
      best = std::max<Time>(best, rank_of(j) - cur_start + 1);
    }
  }
  co_await pr.compute(r);
  if (pr.now() > base + s_duration(p, r, sh.prm))
    sh.schedule_violations += 1;

  // 6. Global maximum; all processors enter at or before the common
  // schedule point, so CB traffic meets an otherwise-quiet network.
  co_await pr.wait_until(base + s_duration(p, r, sh.prm));
  co_return co_await combine_broadcast(mb, best, ReduceOp::Max);
}

struct RouteResult {
  std::vector<Message> incoming;
  bool continue_flag = false;
};

/// One superstep's synchronization + communication phase (steps 2-4 of the
/// simulation; the caller has already run the local phase).
Task<RouteResult> route_superstep(Mailbox& mb, std::vector<Message> outbox,
                                  bool more, std::int64_t step, Shared& sh) {
  Proc& pr = mb.proc();
  const ProcId p = sh.p;
  const ProcId me = pr.id();
  const logp::Params& prm = sh.prm;
  RouteResult res;

  // Self-messages never touch the network in LogP (the model forbids
  // self-sends); they are a local pool move.
  std::vector<Record> recs;
  for (Message& m : outbox) {
    if (m.dst == me) {
      m.src = me;
      res.incoming.push_back(m);
    } else {
      recs.push_back(Record{m.dst, m.payload, m.tag, me});
    }
  }

  // Step 1+2 of the paper's superstep structure: the CB computing
  // r = max out-degree is also the barrier.
  sh.phase_begin(me, pr.now(), trace::SimPhase::Cb, step);
  const Word r_raw = co_await combine_broadcast(
      mb, static_cast<Word>(recs.size()), ReduceOp::Max);
  sh.phase_end(me, pr.now(), trace::SimPhase::Cb, step);

  if (r_raw == 0) {
    res.continue_flag =
        co_await combine_broadcast(mb, more ? 1 : 0, ReduceOp::Or) != 0;
    std::stable_sort(res.incoming.begin(), res.incoming.end(),
                     [](const Message& a, const Message& b) {
                       return a.src < b.src;
                     });
    co_return res;
  }

  sh.phase_begin(me, pr.now(), trace::SimPhase::Sort, step);
  const auto [method, r] = choose_sort(sh, r_raw);
  while (std::cmp_less(recs.size(), r))
    recs.push_back(Record{p, 0, 0, me});  // dummies sort after real keys

  // Broadcast the sort start time T0 (covers the broadcast itself plus
  // everyone's presort).
  const Time presort = seq_sort_charge(r, p);
  const Word t0 = co_await tree_broadcast(
      mb, me == 0 ? pr.now() + algo::cb_time_bound(prm, p) + presort + 4 : 0);
  co_await pr.compute(presort);
  std::sort(recs.begin(), recs.end(), record_less);
  if (pr.now() > t0) sh.schedule_violations += 1;
  co_await pr.wait_until(t0);

  // Everything after t0 runs on a static schedule, identical on every
  // processor: phases can never overlap in time, so no destination ever
  // sees traffic from two protocol layers at once.
  const Time t_sort_end =
      t0 + sort_duration(method, r, p, prm, sh.bitonic_partners.size());
  if (method == Method::Bitonic) {
    co_await sort_bitonic(mb, recs, t0, sh);
  } else {
    co_await sort_columnsort(mb, recs, t0, sh);
  }
  if (pr.now() > t_sort_end) sh.schedule_violations += 1;
  co_await pr.wait_until(t_sort_end);
  sh.phase_end(me, pr.now(), trace::SimPhase::Sort, step);

  // Step 3: exact max receive degree.
  sh.phase_begin(me, pr.now(), trace::SimPhase::Route, step);
  const Time s = co_await compute_s(mb, recs, r, t_sort_end, sh);
  const Time h = std::max<Time>(r, s);

  // Step 4: h globally clocked routing cycles; cycle k starts at
  // t_cycles + k*G and carries the records of global rank ≡ k (mod h).
  // t_cycles bounds the completion of compute_s's closing CB from its
  // common entry point, so it is computable locally by every processor.
  const Time t_cycles =
      t_sort_end + s_duration(p, r, prm) + algo::cb_time_bound(prm, p);
  if (pr.now() > t_cycles) sh.schedule_violations += 1;
  // Visit my records in slot order (their cycles form a wrapped range).
  std::vector<std::pair<Time, Time>> by_cycle;  // (cycle, local index)
  for (Time j = 0; j < r; ++j) {
    const Record& rec = recs[static_cast<std::size_t>(j)];
    if (rec.key == p) continue;  // dummy
    by_cycle.emplace_back((static_cast<Time>(me) * r + j) % h, j);
  }
  std::sort(by_cycle.begin(), by_cycle.end());
  for (const auto& [cycle, j] : by_cycle) {
    const Record& rec = recs[static_cast<std::size_t>(j)];
    if (rec.key == me) {
      // A record that ended up on its destination: local delivery.
      res.incoming.push_back(
          Message{rec.src, me, rec.payload, rec.tag, 0, Channel::kData});
      continue;
    }
    if (sh.opt.clocked_cycles) {
      const Time slot = t_cycles + cycle * prm.G;
      if (pr.earliest_submit() > slot) sh.schedule_violations += 1;
      co_await pr.wait_until(std::max(pr.now(), slot - prm.o));
    }
    co_await pr.send(static_cast<ProcId>(rec.key), rec.payload, rec.tag,
                     rec.src, Channel::kData);
  }
  sh.phase_end(me, pr.now(), trace::SimPhase::Route, step);
  sh.phase_begin(me, pr.now(), trace::SimPhase::Drain, step);

  // Termination. Clocked: the last cycle's submissions happen by
  // t_cycles + (h-1)G and are delivered within L, so at t_drain every
  // processor's data is buffered; drain, then run the closing CB (which
  // also ORs the continue flags). Unclocked (ablation): no static bound
  // exists, so the CB itself is the proof that every send was accepted —
  // CB first, then wait L and drain.
  if (sh.opt.clocked_cycles) {
    const Time t_drain = t_cycles + h * prm.G + prm.L;
    co_await pr.wait_until(t_drain);
    co_await mb.acquire_pending();
    for (Message& m : mb.take_stashed(Channel::kData)) {
      m.src = static_cast<ProcId>(m.aux);  // original BSP sender
      m.dst = me;
      res.incoming.push_back(m);
    }
    res.continue_flag =
        co_await combine_broadcast(mb, more ? 1 : 0, ReduceOp::Or) != 0;
  } else {
    res.continue_flag =
        co_await combine_broadcast(mb, more ? 1 : 0, ReduceOp::Or) != 0;
    co_await pr.wait_until(pr.now() + prm.L);
    co_await mb.acquire_pending();
    for (Message& m : mb.take_stashed(Channel::kData)) {
      m.src = static_cast<ProcId>(m.aux);
      m.dst = me;
      res.incoming.push_back(m);
    }
  }
  sh.phase_end(me, pr.now(), trace::SimPhase::Drain, step);
  std::stable_sort(
      res.incoming.begin(), res.incoming.end(),
      [](const Message& a, const Message& b) { return a.src < b.src; });

  auto& info = sh.info(step);
  info.r = std::max(info.r, r);
  info.s = std::max(info.s, s);
  info.h = std::max(info.h, h);
  info.messages += static_cast<Time>(by_cycle.size());
  co_return res;
}

Task<> simulate_proc(Proc& pr, bsp::ProcProgram& prog, Shared& sh) {
  Mailbox mb(pr);
  std::vector<Message> inbox;
  for (std::int64_t step = 0; step < sh.opt.max_supersteps; ++step) {
    std::vector<Message> outbox;
    Time work = static_cast<Time>(inbox.size());  // pool extraction cost
    bsp::Ctx ctx(pr.id(), sh.p, step, inbox, outbox, work);
    sh.phase_begin(pr.id(), pr.now(), trace::SimPhase::Local, step);
    const bool more = prog.step(ctx);
    co_await pr.compute(work);
    sh.phase_end(pr.id(), pr.now(), trace::SimPhase::Local, step);
    auto& info = sh.info(step);
    info.w_max = std::max(info.w_max, work);

    RouteResult result =
        co_await route_superstep(mb, std::move(outbox), more, step, sh);
    inbox = std::move(result.incoming);
    if (!result.continue_flag) break;
  }
}

}  // namespace

Time BspOnLogpReport::bsp_reference_time(const bsp::Params& prm) const {
  Time total = 0;
  for (const auto& st : steps) {
    // The reference BSP machine routes the true h-relation: degree at most
    // max(r, s) (our r may include padding; use the exact s and the real
    // message count bound). h here is the cycles value max(r, s).
    total += st.w_max + prm.g * st.h + prm.l;
  }
  return total;
}

double BspOnLogpReport::slowdown(const logp::Params& prm) const {
  const Time ref = bsp_reference_time(bsp::Params{prm.G, prm.L});
  return ref > 0 ? static_cast<double>(logp.finish_time) /
                       static_cast<double>(ref)
                 : 0.0;
}

BspOnLogp::BspOnLogp(ProcId nprocs, logp::Params params, BspOnLogpOptions opt)
    : nprocs_(nprocs), params_(params), opt_(opt) {
  BSPLOGP_EXPECTS(nprocs >= 1);
  params_.validate();
}

BspOnLogpReport BspOnLogp::run(
    std::span<const std::unique_ptr<bsp::ProcProgram>> programs) {
  BSPLOGP_EXPECTS(std::cmp_equal(programs.size(), nprocs_));
  for (const auto& prog : programs) BSPLOGP_EXPECTS(prog != nullptr);

  Shared sh;
  sh.p = nprocs_;
  sh.prm = params_;
  sh.opt = opt_;
  sh.sink = opt_.engine.sink;
  if (is_pow2(nprocs_) && nprocs_ > 1) {
    for (const auto& round : routing::bitonic_schedule(nprocs_)) {
      std::vector<std::pair<ProcId, bool>> partners(
          static_cast<std::size_t>(nprocs_));
      for (const routing::CompareExchange& ce : round) {
        partners[static_cast<std::size_t>(ce.lo)] = {ce.hi, ce.ascending};
        partners[static_cast<std::size_t>(ce.hi)] = {ce.lo, !ce.ascending};
      }
      sh.bitonic_partners.push_back(std::move(partners));
    }
  }

  std::vector<logp::ProgramFn> fns;
  fns.reserve(static_cast<std::size_t>(nprocs_));
  for (ProcId i = 0; i < nprocs_; ++i) {
    bsp::ProcProgram* prog = programs[static_cast<std::size_t>(i)].get();
    fns.emplace_back([prog, &sh](Proc& pr) -> Task<> {
      return simulate_proc(pr, *prog, sh);
    });
  }

  logp::Machine machine(nprocs_, params_, opt_.engine);
  BspOnLogpReport report;
  report.logp = machine.run(fns);
  report.supersteps = static_cast<std::int64_t>(sh.steps.size());
  report.steps = std::move(sh.steps);
  report.schedule_violations = sh.schedule_violations;
  return report;
}

}  // namespace bsplogp::xsim

#include "src/native/spmd.h"

#include <optional>
#include <utility>

namespace bsplogp::native {

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) throw AbortedError();
  arrived_ += 1;
  if (arrived_ >= parties_) {
    arrived_ = 0;
    phase_ += 1;
    cv_.notify_all();
    return;
  }
  const std::uint64_t my_phase = phase_;
  cv_.wait(lock, [&] { return poisoned_ || phase_ != my_phase; });
  if (poisoned_) throw AbortedError();
}

void Barrier::drop() {
  const std::lock_guard<std::mutex> lock(mu_);
  parties_ -= 1;
  BSPLOGP_ASSERT(parties_ >= 0);
  // The departing party may have been the last one everyone else was
  // waiting for.
  if (parties_ > 0 && arrived_ >= parties_) {
    arrived_ = 0;
    phase_ += 1;
    cv_.notify_all();
  }
}

void Barrier::poison() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

void World::sync() {
  detail::WorldState& st = *state_;
  const auto p = static_cast<std::size_t>(st.nprocs);
  const auto me = static_cast<std::size_t>(pid_);

  // Wave 1: everyone's puts/gets of this superstep are buffered and all
  // local computation (writes to registered cells) is done.
  st.barrier.arrive_and_wait();

  // Gets first, against pre-put values: each processor resolves its *own*
  // gets (reads of remote cells — remote threads are parked, so the reads
  // are race-free and see the pre-sync state).
  for (detail::PendingOp& op : st.gets[me]) {
    void* cell = st.slots[static_cast<std::size_t>(op.target)][op.slot];
    BSPLOGP_EXPECTS(cell != nullptr);
    op.apply(cell);
  }
  st.gets[me].clear();

  // Wave 2: all gets resolved; puts may now overwrite cells. Each
  // processor applies the puts *addressed to it*, scanning senders in id
  // order so racing puts to one cell have a deterministic winner.
  st.barrier.arrive_and_wait();
  for (std::size_t src = 0; src < p; ++src) {
    for (detail::PendingOp& op : st.puts[src]) {
      if (static_cast<std::size_t>(op.target) != me) continue;
      void* cell = st.slots[me][op.slot];
      BSPLOGP_EXPECTS(cell != nullptr);
      op.apply(cell);
    }
  }

  // Wave 3: all puts landed; senders may now clear their queues (nobody
  // reads them again until after the next sync's wave 1).
  st.barrier.arrive_and_wait();
  st.puts[me].clear();
}

void spawn(ProcId nprocs, const std::function<void(World&)>& spmd,
           core::ThreadPool* pool) {
  BSPLOGP_EXPECTS(nprocs >= 1);
  BSPLOGP_EXPECTS(spmd != nullptr);

  std::optional<core::ThreadPool> transient;
  if (pool == nullptr) {
    transient.emplace(static_cast<int>(nprocs) - 1);
    pool = &*transient;
  }
  BSPLOGP_EXPECTS(pool->workers() + 1 >= static_cast<int>(nprocs));

  detail::WorldState state(nprocs);
  std::mutex error_mu;
  std::exception_ptr first_error;

  pool->for_spmd(static_cast<std::size_t>(nprocs), [&](std::size_t i) {
    World world(&state, static_cast<ProcId>(i));
    try {
      spmd(world);
      // Finished processors leave the group so siblings with more
      // supersteps to run don't block on them (BSPlib bsp_end).
      state.barrier.drop();
    } catch (const AbortedError&) {
      // Secondary: some sibling failed first and poisoned the barrier.
      // Its exception is the one worth reporting.
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
      state.barrier.poison();
    }
  });

  // for_spmd rethrows too, but only whichever exception won its internal
  // race — which may be a secondary AbortedError. Prefer the real cause.
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace bsplogp::native

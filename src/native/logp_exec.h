// Native execution of LogP coroutine programs: the same logp::ProgramFn
// that runs on logp::Machine (simulated) or under xsim::LogpOnBsp
// (Theorem 1) runs here on p real threads exchanging real messages.
//
// Each program instance drives its coroutine on its own OS thread
// (core::ThreadPool::for_spmd). The three Proc interaction points resolve
// against reality instead of a discrete-event queue:
//
//   send  — the message is pushed into the destination's locked arrival
//           queue and the destination's condition variable is signalled.
//           Submission is instantaneous: there is no Stalling Rule, no
//           capacity ceiling, no delivery latency.
//   recv  — arrivals are drained into the model input buffer; an empty
//           buffer blocks on the condition variable (with a timeout that
//           converts a real deadlock into an exception instead of a hang).
//   wait  — advances only the model clock; the thread does not sleep.
//
// The Proc bookkeeping (clock, o/G gap rules, earliest_submit slots) is
// maintained exactly as the model prescribes, so programs whose *logic*
// consults the clock — the staged hotspot's G-aligned slots, CB's
// wait_until rounds — take the same branches natively as under the
// simulator. The resulting clock is a per-processor lower bound that
// ignores stalling and latency; it is reported for curiosity, not
// comparability. What IS comparable, and what the differential suite
// (tests/native/differential_test.cpp) checks, is the logical outcome:
// computed results, per-processor acquired-message multisets, and message
// counts must match the simulators exactly.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/types.h"
#include "src/logp/params.h"
#include "src/logp/proc.h"
#include "src/trace/sink.h"

namespace bsplogp::native {

struct NativeLogpOptions {
  /// Thread pool to run on (needs >= p - 1 workers); null spawns a
  /// transient pool. Reuse a pool across runs to amortize thread start-up.
  core::ThreadPool* pool = nullptr;
  /// Observer for Submit/Delivery/Acquire events. Unlike the simulators,
  /// emission happens concurrently from p threads: the sink MUST be
  /// thread-safe — wrap any ordinary sink in trace::MutexSink. Not owned.
  trace::TraceSink* sink = nullptr;
  /// If non-null, resized to p; [i] receives processor i's acquired
  /// messages in acquisition order (the differential suite compares these
  /// as multisets — cross-sender arrival order is real, not simulated).
  std::vector<std::vector<Message>>* acquired = nullptr;
  /// A recv with an empty buffer waits at most this long for an arrival
  /// before throwing: a real deadlock (recv without a matching send)
  /// surfaces as an error, not a hang.
  std::chrono::milliseconds recv_timeout{30'000};
};

struct NativeLogpStats {
  /// max over processors of the final model clock — a lower bound that
  /// ignores stalling and delivery latency (see header comment).
  Time model_finish_time = 0;
  /// Messages sent (== staged into destination buffers: native submission
  /// and delivery coincide, so this is comparable to the simulator's
  /// `messages` delivery count).
  std::int64_t messages_sent = 0;
  /// Messages acquired by recv across all processors.
  std::int64_t messages_acquired = 0;
  /// Real elapsed time of the run (excluding pool construction when a pool
  /// is supplied).
  double wall_ns = 0;
};

/// Runs one program per processor (programs.size() = p) to completion on
/// real threads. Throws what a program throws; if one fails, its siblings
/// are aborted (native::AbortedError internally) and the original
/// exception propagates.
[[nodiscard]] NativeLogpStats run_logp(
    std::span<const logp::ProgramFn> programs, const logp::Params& params,
    const NativeLogpOptions& options = {});

/// SPMD convenience: the one program on every processor, mirroring
/// logp::Machine::run(const ProgramFn&).
[[nodiscard]] NativeLogpStats run_logp(ProcId nprocs,
                                       const logp::ProgramFn& program,
                                       const logp::Params& params,
                                       const NativeLogpOptions& options = {});

}  // namespace bsplogp::native

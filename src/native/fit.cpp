#include "src/native/fit.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "src/bsp/program.h"
#include "src/core/contracts.h"
#include "src/logp/proc.h"
#include "src/logp/task.h"
#include "src/native/bsp_exec.h"
#include "src/native/logp_exec.h"
#include "src/native/spmd.h"

namespace bsplogp::native {
namespace {

double wall_ns_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/// Minimum of `k` timings: the standard defense against scheduler noise —
/// the minimum is the run least perturbed by preemption.
double best_of(int k, const std::function<void()>& fn) {
  double best = wall_ns_of(fn);
  for (int i = 1; i < k; ++i) best = std::min(best, wall_ns_of(fn));
  return best;
}

/// Wall time of one run of `reps` full-exchange supersteps at degree h
/// (every processor sends h messages spread over the other processors: a
/// balanced h-relation, like the paper's exchange benchmarks).
double exchange_ns(ProcId p, Time h, int reps, core::ThreadPool* pool) {
  NativeBspOptions options;
  options.pool = pool;
  const auto programs =
      bsp::make_programs(p, [h, reps](bsp::Ctx& c) {
        for (Time j = 0; j < h; ++j) {
          const auto dst = static_cast<ProcId>(
              (c.pid() + 1 + j % (c.nprocs() - 1)) % c.nprocs());
          c.send(dst, j);
        }
        return c.superstep() + 1 < reps;
      });
  return wall_ns_of([&] { (void)run_bsp(programs, options); });
}

logp::Task<> ping_program(logp::Proc& pr, int reps) {
  for (int r = 0; r < reps; ++r) {
    co_await pr.send(1, r);
    (void)co_await pr.recv();
  }
}

logp::Task<> pong_program(logp::Proc& pr, int reps) {
  for (int r = 0; r < reps; ++r) {
    (void)co_await pr.recv();
    co_await pr.send(0, r);
  }
}

logp::Task<> flood_send_program(logp::Proc& pr, int n) {
  for (int i = 0; i < n; ++i) co_await pr.send(1, i);
}

logp::Task<> flood_recv_program(logp::Proc& pr, int n) {
  for (int i = 0; i < n; ++i) (void)co_await pr.recv();
}

}  // namespace

bsp::Params BspFit::params() const {
  return bsp::Params{std::max<Time>(1, std::llround(g_ns)),
                     std::max<Time>(1, std::llround(l_ns))};
}

logp::Params LogpFit::params() const {
  const Time o = std::max<Time>(0, std::llround(o_ns));
  const Time G = std::max({Time{2}, o, static_cast<Time>(std::llround(G_ns))});
  const Time L = std::max(G, static_cast<Time>(std::llround(L_ns)));
  return logp::Params{L, o, G};
}

BspFit fit_bsp(ProcId p, core::ThreadPool* pool, const FitOptions& options) {
  BSPLOGP_EXPECTS(p >= 2);
  BSPLOGP_EXPECTS(options.barrier_reps >= 1 && options.exchange_reps >= 1);
  BSPLOGP_EXPECTS(options.h_lo >= 1 && options.h_hi > options.h_lo);
  BspFit fit;
  fit.p = p;

  // l: barrier-only supersteps, with the constant spawn/teardown overhead
  // measured separately and subtracted.
  const int reps = options.barrier_reps;
  const double with_barriers = best_of(3, [&] {
    spawn(p, [reps](World& w) {
      for (int r = 0; r < reps; ++r) w.barrier();
    }, pool);
  });
  const double empty = best_of(3, [&] { spawn(p, [](World&) {}, pool); });
  fit.l_ns = std::max(0.0, (with_barriers - empty) / reps);

  // g: slope of exchange-superstep time in h (the barrier term cancels).
  double lo = exchange_ns(p, options.h_lo, options.exchange_reps, pool);
  double hi = exchange_ns(p, options.h_hi, options.exchange_reps, pool);
  for (int i = 1; i < 3; ++i) {
    lo = std::min(lo, exchange_ns(p, options.h_lo, options.exchange_reps, pool));
    hi = std::min(hi, exchange_ns(p, options.h_hi, options.exchange_reps, pool));
  }
  fit.g_ns = std::max(
      0.0, (hi - lo) / (static_cast<double>(options.exchange_reps) *
                        static_cast<double>(options.h_hi - options.h_lo)));
  return fit;
}

LogpFit fit_logp(ProcId p, core::ThreadPool* pool,
                 const FitOptions& options) {
  BSPLOGP_EXPECTS(p >= 2);
  BSPLOGP_EXPECTS(options.pingpong_reps >= 1 && options.flood_msgs >= 1);
  BSPLOGP_EXPECTS(options.overhead_reps >= 1);
  LogpFit fit;
  fit.p = p;

  // o: uncontended staging of one message (lock, push, unlock) — the
  // processor-occupied cost of a send with nobody racing for the queue.
  {
    std::mutex mu;
    std::deque<Message> queue;
    const int n = options.overhead_reps;
    const double total = best_of(3, [&] {
      for (int i = 0; i < n; ++i) {
        const std::lock_guard<std::mutex> lock(mu);
        queue.push_back(Message{0, 1, i});
      }
      queue.clear();
    });
    fit.o_ns = total / n;
  }

  // The traffic microbenchmarks run on the real executor, parameterized
  // with any valid model params (the model clock does not pace real
  // execution).
  const logp::Params model_params{};
  NativeLogpOptions run_options;
  run_options.pool = pool;

  // L: ping-pong; rtt = 2L + 2o for one-word messages.
  {
    const int reps = options.pingpong_reps;
    std::vector<logp::ProgramFn> programs;
    programs.emplace_back(
        [reps](logp::Proc& pr) { return ping_program(pr, reps); });
    programs.emplace_back(
        [reps](logp::Proc& pr) { return pong_program(pr, reps); });
    const double total = best_of(
        3, [&] { (void)run_logp(programs, model_params, run_options); });
    const double rtt = total / reps;
    fit.L_ns = std::max(0.0, rtt / 2 - 2 * fit.o_ns);
  }

  // G: sustained per-message cost flooding one destination.
  {
    const int n = options.flood_msgs;
    std::vector<logp::ProgramFn> programs;
    programs.emplace_back(
        [n](logp::Proc& pr) { return flood_send_program(pr, n); });
    programs.emplace_back(
        [n](logp::Proc& pr) { return flood_recv_program(pr, n); });
    const double total = best_of(
        3, [&] { (void)run_logp(programs, model_params, run_options); });
    fit.G_ns = std::max(fit.o_ns, total / n);
  }
  return fit;
}

}  // namespace bsplogp::native
